// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark wraps one experiment from internal/experiments; run
// cmd/crystalbench for the full paper-formatted sweep and EXPERIMENTS.md
// for the paper-vs-measured record.
//
// These are macro-benchmarks: an iteration is a full experiment (often
// entire emulation lifecycles in virtual time), so b.N typically stays 1.
// Set CRYSTALNET_FULL=1 to run Figure 8/9 with more repetitions and a
// larger L-DC scale.
package crystalnet_test

import (
	"os"
	"testing"

	"crystalnet/internal/experiments"
)

func full() bool { return os.Getenv("CRYSTALNET_FULL") != "" }

// BenchmarkTable1_IncidentCoverage replays one incident per Table 1 root-
// cause class under the emulation and the verification baseline.
func BenchmarkTable1_IncidentCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 5 {
			b.Fatal("bad row count")
		}
		for _, r := range rows {
			if r.RootCause == "Software bugs" && (!r.CrystalNet || r.Verification) {
				b.Fatalf("software-bug coverage wrong: %+v", r)
			}
		}
	}
}

// BenchmarkFigure1_AggregationImbalance measures the vendor-divergent
// aggregation imbalance at R8.
func BenchmarkFigure1_AggregationImbalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1(200)
		if r.R7Share < 0.95 {
			b.Fatalf("imbalance not reproduced: %+v", r)
		}
		b.ReportMetric(r.R7Share*100, "r7-share-%")
	}
}

// BenchmarkFigure7_BoundarySafety checks the three Figure 7 boundaries with
// the Lemma 5.1 propagation checker and Propositions 5.2/5.3.
func BenchmarkFigure7_BoundarySafety(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7()
		if rows[0].LemmaSafe || !rows[1].LemmaSafe || !rows[2].LemmaSafe {
			b.Fatalf("safety verdicts wrong: %+v", rows)
		}
	}
}

// BenchmarkTable3_NetworkScales generates the three evaluation fabrics.
func BenchmarkTable3_NetworkScales(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3()
		b.ReportMetric(float64(rows[2].Routes), "ldc-routes")
	}
}

// BenchmarkFigure8_MockupLatency runs the whole-DC emulation latency sweep.
// Default: S-DC and M-DC at 2 reps (regression-grade; cmd/crystalbench is
// the full driver with L-DC and percentiles); CRYSTALNET_FULL=1 adds a
// 1/4-scale L-DC at 5 reps; -short keeps only S-DC.
func BenchmarkFigure8_MockupLatency(b *testing.B) {
	cfg := experiments.Figure8Config{Reps: 2, LDCScale: 8, SkipLDC: true}
	if full() {
		cfg.Reps, cfg.LDCScale, cfg.SkipLDC = 5, 4, false
	}
	if testing.Short() {
		cfg.SkipMDC, cfg.SkipLDC = true, true
	}
	for i := 0; i < b.N; i++ {
		points := experiments.Figure8(cfg)
		for _, p := range points {
			if p.Mockup.P50 <= 0 {
				b.Fatalf("no mockup latency for %s/%d", p.DC, p.VMs)
			}
		}
		b.ReportMetric(points[0].Mockup.P50.Minutes(), "sdc-mockup-min")
	}
}

// BenchmarkFigure9_CPUUtilization records the p95 per-VM CPU curve during
// Mockup.
func BenchmarkFigure9_CPUUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := experiments.Figure9(8, !full())
		peak := 0.0
		for _, u := range series[0].MinutesP95 {
			if u > peak {
				peak = u
			}
		}
		if peak < 0.5 {
			b.Fatalf("no CPU burst recorded: peak %.2f", peak)
		}
		b.ReportMetric(peak*100, "peak-p95-cpu-%")
	}
}

// BenchmarkSec83_ReloadRecovery measures two-layer vs strawman reload and
// VM failure recovery.
func BenchmarkSec83_ReloadRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Sec83()
		if r.StrawmanReload <= r.TwoLayerReload {
			b.Fatalf("ablation inverted: %+v", r)
		}
		b.ReportMetric(r.TwoLayerReload.Seconds(), "two-layer-reload-s")
		b.ReportMetric(r.StrawmanReload.Seconds(), "strawman-reload-s")
		b.ReportMetric(r.RecoveryDense.Seconds(), "vm-recovery-s")
	}
}

// BenchmarkTable4_SafeBoundaryScale runs Algorithm 1 on the full L-DC for
// the two §8.4 validation cases.
func BenchmarkTable4_SafeBoundaryScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4()
		if rows[0].CostReduction < 0.9 {
			b.Fatalf("cost reduction %.2f < 90%%", rows[0].CostReduction)
		}
		b.ReportMetric(rows[0].CostReduction*100, "one-pod-cost-cut-%")
	}
}

// BenchmarkSec9_CrossValidation runs the §9 FIB-comparator experiment.
func BenchmarkSec9_CrossValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CrossValidate()
		if r.ECMPAwareDiffs != 0 || r.StrictDiffs == 0 {
			b.Fatalf("comparator behaviour wrong: %+v", r)
		}
		b.ReportMetric(float64(r.StrictDiffs), "strict-diffs")
	}
}
