// Package topo models production network topologies: devices, interfaces
// and links, organized into the layered Clos fabrics CrystalNet emulates
// (ToR → Leaf → Spine → Border, §5.2), plus the WAN/regional-backbone
// shapes from §7. It also carries the address and AS-number plan
// (RFC 7938-style BGP datacenter design) that the config generator renders.
//
// DESIGN.md §2 (substrates) and §3 (Table 3 fabrics) place the topology
// model.
package topo

import (
	"fmt"
	"sort"

	"crystalnet/internal/netpkt"
)

// Layer identifies a device's tier in the fabric. Higher values are higher
// layers; Algorithm 1's "upper devices" walk uses this ordering.
type Layer int

// Fabric layers, bottom to top, plus off-fabric roles.
const (
	LayerHost Layer = iota
	LayerToR
	LayerLeaf
	LayerSpine
	LayerBorder
	LayerBackbone // regional backbone routers (§7 Case 1)
	LayerWAN      // legacy inter-DC WAN cores
	LayerExternal // devices outside the administrative domain
)

var layerNames = map[Layer]string{
	LayerHost:     "host",
	LayerToR:      "tor",
	LayerLeaf:     "leaf",
	LayerSpine:    "spine",
	LayerBorder:   "border",
	LayerBackbone: "backbone",
	LayerWAN:      "wan",
	LayerExternal: "external",
}

// String returns the lower-case layer name.
func (l Layer) String() string {
	if s, ok := layerNames[l]; ok {
		return s
	}
	return fmt.Sprintf("layer(%d)", int(l))
}

// Interface is one port of a device. Addressing is point-to-point /31 on
// fabric links, per common production practice.
type Interface struct {
	Name   string // e.g. "et0"
	Device *Device
	Index  int // position within Device.Interfaces
	Addr   netpkt.Prefix
	MAC    netpkt.MAC
	Peer   *Interface // far end, nil when unconnected
}

// FullName returns "device:interface".
func (i *Interface) FullName() string { return i.Device.Name + ":" + i.Name }

// PeerAddr returns the IP of the far end of a connected point-to-point
// interface.
func (i *Interface) PeerAddr() netpkt.IP {
	if i.Peer == nil {
		return 0
	}
	return i.Peer.Addr.Addr
}

// Device is a network device in the topology.
type Device struct {
	Name       string
	Index      int // dense index within the Network, assigned on add
	Layer      Layer
	ASN        uint32
	Vendor     string // firmware image name, e.g. "ctnra"
	Pod        int    // pod number for ToR/Leaf devices, -1 otherwise
	Group      int    // spine group / border group, -1 otherwise
	Loopback   netpkt.Prefix
	Interfaces []*Interface
	// Originated are the prefixes this device announces into BGP beyond its
	// loopback (e.g. a ToR's server subnets).
	Originated []netpkt.Prefix
	// MgmtIP is the management-plane address (§4.2).
	MgmtIP netpkt.IP
}

// AddInterface appends a new unconnected interface and returns it.
func (d *Device) AddInterface(name string) *Interface {
	intf := &Interface{Name: name, Device: d, Index: len(d.Interfaces)}
	intf.MAC = macFor(d.Index, intf.Index)
	d.Interfaces = append(d.Interfaces, intf)
	return intf
}

// Intf returns the named interface, or nil.
func (d *Device) Intf(name string) *Interface {
	for _, i := range d.Interfaces {
		if i.Name == name {
			return i
		}
	}
	return nil
}

// Neighbors returns the distinct devices connected to d, in interface order.
func (d *Device) Neighbors() []*Device {
	seen := map[*Device]bool{}
	var out []*Device
	for _, i := range d.Interfaces {
		if i.Peer != nil && !seen[i.Peer.Device] {
			seen[i.Peer.Device] = true
			out = append(out, i.Peer.Device)
		}
	}
	return out
}

// macFor derives a stable, locally-administered MAC from device and
// interface indices.
func macFor(dev, intf int) netpkt.MAC {
	return netpkt.MAC{0x02, 0x43, byte(dev >> 16), byte(dev >> 8), byte(dev), byte(intf)}
}

// Link is an undirected connection between two interfaces.
type Link struct {
	A, B *Interface
	// Subnet is the /31 assigned to the link (A gets .0, B gets .1), or the
	// zero Prefix for unnumbered links.
	Subnet netpkt.Prefix
}

// Other returns the far-side interface relative to i, or nil if i is not an
// endpoint of the link.
func (l *Link) Other(i *Interface) *Interface {
	switch i {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	return nil
}

// String formats the link as "devA:ifA <-> devB:ifB".
func (l *Link) String() string {
	return l.A.FullName() + " <-> " + l.B.FullName()
}

// Network is a complete topology.
type Network struct {
	Name    string
	devices map[string]*Device
	order   []*Device // insertion order; Index fields match positions
	Links   []*Link

	nextP2P  uint32 // allocator for point-to-point /31 subnets
	nextLoop uint32 // allocator for loopbacks
	nextMgmt uint32 // allocator for management IPs
}

// NewNetwork returns an empty topology.
func NewNetwork(name string) *Network {
	return &Network{
		Name:    name,
		devices: map[string]*Device{},
		// 10.128.0.0/9 for p2p, 10.0.0.0/16 for loopbacks, 172.16.0.0/12 for mgmt
		nextP2P:  uint32(netpkt.IPFromBytes(10, 128, 0, 0)),
		nextLoop: uint32(netpkt.IPFromBytes(10, 0, 0, 1)),
		nextMgmt: uint32(netpkt.IPFromBytes(172, 16, 0, 1)),
	}
}

// AddDevice creates and registers a device. It panics on duplicate names —
// topology construction errors are programming errors in generators.
func (n *Network) AddDevice(name string, layer Layer, asn uint32, vendor string) *Device {
	if _, dup := n.devices[name]; dup {
		panic(fmt.Sprintf("topo: duplicate device %q", name))
	}
	d := &Device{
		Name:   name,
		Index:  len(n.order),
		Layer:  layer,
		ASN:    asn,
		Vendor: vendor,
		Pod:    -1,
		Group:  -1,
	}
	d.Loopback = netpkt.Prefix{Addr: netpkt.IP(n.nextLoop), Len: 32}
	n.nextLoop++
	d.MgmtIP = netpkt.IP(n.nextMgmt)
	n.nextMgmt++
	n.devices[name] = d
	n.order = append(n.order, d)
	return d
}

// Device returns the named device, or nil.
func (n *Network) Device(name string) *Device { return n.devices[name] }

// MustDevice returns the named device or panics.
func (n *Network) MustDevice(name string) *Device {
	d := n.devices[name]
	if d == nil {
		panic(fmt.Sprintf("topo: no device %q", name))
	}
	return d
}

// Devices returns all devices in insertion order. Callers must not mutate
// the returned slice.
func (n *Network) Devices() []*Device { return n.order }

// NumDevices returns the device count.
func (n *Network) NumDevices() int { return len(n.order) }

// Connect joins the next free auto-named interfaces of a and b with a /31
// point-to-point subnet and records the link.
func (n *Network) Connect(a, b *Device) *Link {
	ia := a.AddInterface(fmt.Sprintf("et%d", len(a.Interfaces)))
	ib := b.AddInterface(fmt.Sprintf("et%d", len(b.Interfaces)))
	return n.ConnectInterfaces(ia, ib)
}

// ConnectInterfaces joins two existing interfaces, allocating a /31.
func (n *Network) ConnectInterfaces(ia, ib *Interface) *Link {
	if ia.Peer != nil || ib.Peer != nil {
		panic(fmt.Sprintf("topo: interface already connected: %s or %s", ia.FullName(), ib.FullName()))
	}
	subnet := netpkt.Prefix{Addr: netpkt.IP(n.nextP2P), Len: 31}
	n.nextP2P += 2
	ia.Addr = netpkt.Prefix{Addr: subnet.Addr, Len: 31}
	ib.Addr = netpkt.Prefix{Addr: subnet.Addr + 1, Len: 31}
	ia.Peer, ib.Peer = ib, ia
	l := &Link{A: ia, B: ib, Subnet: subnet}
	n.Links = append(n.Links, l)
	return l
}

// Disconnect removes the link between interfaces ia and ib, if present. It
// returns true if a link was removed. Addresses are retained so a later
// reconnect restores the same subnet (as in the paper's Connect/Disconnect
// control APIs).
func (n *Network) Disconnect(ia, ib *Interface) bool {
	if ia.Peer != ib || ib.Peer != ia {
		return false
	}
	ia.Peer, ib.Peer = nil, nil
	for idx, l := range n.Links {
		if (l.A == ia && l.B == ib) || (l.A == ib && l.B == ia) {
			n.Links = append(n.Links[:idx], n.Links[idx+1:]...)
			break
		}
	}
	return true
}

// Reconnect restores a previously disconnected interface pair.
func (n *Network) Reconnect(ia, ib *Interface) *Link {
	if ia.Peer != nil || ib.Peer != nil {
		panic("topo: reconnect of connected interface")
	}
	ia.Peer, ib.Peer = ib, ia
	l := &Link{A: ia, B: ib, Subnet: netpkt.Prefix{Addr: ia.Addr.Addr, Len: 31}}
	n.Links = append(n.Links, l)
	return l
}

// DevicesByLayer returns devices on the given layer, in insertion order.
func (n *Network) DevicesByLayer(l Layer) []*Device {
	var out []*Device
	for _, d := range n.order {
		if d.Layer == l {
			out = append(out, d)
		}
	}
	return out
}

// DevicesInPod returns the ToR and Leaf devices of pod p.
func (n *Network) DevicesInPod(p int) []*Device {
	var out []*Device
	for _, d := range n.order {
		if d.Pod == p {
			out = append(out, d)
		}
	}
	return out
}

// UpperNeighbors returns d's neighbors on strictly higher layers — the
// parent set Algorithm 1 walks (child-to-parent edges).
func (n *Network) UpperNeighbors(d *Device) []*Device {
	var out []*Device
	seen := map[*Device]bool{}
	for _, i := range d.Interfaces {
		if i.Peer == nil {
			continue
		}
		up := i.Peer.Device
		if up.Layer > d.Layer && !seen[up] {
			seen[up] = true
			out = append(out, up)
		}
	}
	return out
}

// HighestLayer returns the maximum layer present among non-external devices.
func (n *Network) HighestLayer() Layer {
	max := LayerHost
	for _, d := range n.order {
		if d.Layer != LayerExternal && d.Layer > max {
			max = d.Layer
		}
	}
	return max
}

// LayerCounts returns a map from layer to device count.
func (n *Network) LayerCounts() map[Layer]int {
	out := map[Layer]int{}
	for _, d := range n.order {
		out[d.Layer]++
	}
	return out
}

// Validate checks structural invariants: link symmetry, /31 pairing, unique
// interface addresses, unique loopbacks. Generators call it in tests.
func (n *Network) Validate() error {
	addrs := map[netpkt.IP]string{}
	for _, d := range n.order {
		if prev, dup := addrs[d.Loopback.Addr]; dup {
			return fmt.Errorf("topo: loopback %v reused by %s and %s", d.Loopback.Addr, prev, d.Name)
		}
		addrs[d.Loopback.Addr] = d.Name
		for _, i := range d.Interfaces {
			if i.Peer != nil {
				if i.Peer.Peer != i {
					return fmt.Errorf("topo: asymmetric link at %s", i.FullName())
				}
				if i.Addr.Len == 31 && i.Addr.Addr&^1 != i.Peer.Addr.Addr&^1 {
					return fmt.Errorf("topo: /31 mismatch on %s", i.FullName())
				}
			}
			if i.Addr.Addr != 0 {
				if prev, dup := addrs[i.Addr.Addr]; dup {
					return fmt.Errorf("topo: address %v reused by %s and %s", i.Addr.Addr, prev, i.FullName())
				}
				addrs[i.Addr.Addr] = i.FullName()
			}
		}
	}
	for _, l := range n.Links {
		if l.A.Peer != l.B || l.B.Peer != l.A {
			return fmt.Errorf("topo: stale link record %s", l)
		}
	}
	return nil
}

// SortedNames returns all device names sorted, for deterministic reporting.
func (n *Network) SortedNames() []string {
	names := make([]string, 0, len(n.order))
	for _, d := range n.order {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}
