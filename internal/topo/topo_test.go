package topo

import (
	"testing"

	"crystalnet/internal/netpkt"
)

func TestAddDeviceAndLookup(t *testing.T) {
	n := NewNetwork("test")
	d := n.AddDevice("r1", LayerSpine, 65100, "ctnra")
	if n.Device("r1") != d {
		t.Fatal("Device lookup failed")
	}
	if n.Device("nope") != nil {
		t.Fatal("missing device should be nil")
	}
	if d.Index != 0 || d.Pod != -1 {
		t.Fatalf("defaults wrong: index=%d pod=%d", d.Index, d.Pod)
	}
	if d.Loopback.Len != 32 || d.Loopback.Addr == 0 {
		t.Fatalf("loopback not assigned: %v", d.Loopback)
	}
	if d.MgmtIP == 0 {
		t.Fatal("management IP not assigned")
	}
}

func TestDuplicateDevicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddDevice did not panic")
		}
	}()
	n := NewNetwork("test")
	n.AddDevice("r1", LayerToR, 1, "ctnra")
	n.AddDevice("r1", LayerToR, 2, "ctnra")
}

func TestConnectAllocatesP2P(t *testing.T) {
	n := NewNetwork("test")
	a := n.AddDevice("a", LayerToR, 1, "ctnra")
	b := n.AddDevice("b", LayerLeaf, 2, "ctnra")
	l := n.Connect(a, b)

	ia, ib := l.A, l.B
	if ia.Peer != ib || ib.Peer != ia {
		t.Fatal("peers not wired")
	}
	if ia.Addr.Len != 31 || ib.Addr.Len != 31 {
		t.Fatal("expected /31 addressing")
	}
	if ia.Addr.Addr+1 != ib.Addr.Addr {
		t.Fatalf("not adjacent /31 pair: %v %v", ia.Addr, ib.Addr)
	}
	if ia.PeerAddr() != ib.Addr.Addr {
		t.Fatal("PeerAddr wrong")
	}
	if l.Other(ia) != ib || l.Other(ib) != ia || l.Other(&Interface{}) != nil {
		t.Fatal("Other wrong")
	}
	// Second link must use a different subnet.
	l2 := n.Connect(a, b)
	if l2.Subnet.Addr == l.Subnet.Addr {
		t.Fatal("subnet reuse")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInterfaceNamesAndMACs(t *testing.T) {
	n := NewNetwork("test")
	a := n.AddDevice("a", LayerToR, 1, "ctnra")
	b := n.AddDevice("b", LayerLeaf, 2, "ctnra")
	n.Connect(a, b)
	n.Connect(a, b)
	if a.Interfaces[0].Name != "et0" || a.Interfaces[1].Name != "et1" {
		t.Fatalf("interface names: %s %s", a.Interfaces[0].Name, a.Interfaces[1].Name)
	}
	if a.Intf("et1") != a.Interfaces[1] || a.Intf("nope") != nil {
		t.Fatal("Intf lookup wrong")
	}
	if a.Interfaces[0].MAC == a.Interfaces[1].MAC {
		t.Fatal("MAC collision on same device")
	}
	if a.Interfaces[0].MAC == b.Interfaces[0].MAC {
		t.Fatal("MAC collision across devices")
	}
	if a.Interfaces[0].FullName() != "a:et0" {
		t.Fatalf("FullName = %q", a.Interfaces[0].FullName())
	}
}

func TestDisconnectReconnect(t *testing.T) {
	n := NewNetwork("test")
	a := n.AddDevice("a", LayerToR, 1, "ctnra")
	b := n.AddDevice("b", LayerLeaf, 2, "ctnra")
	l := n.Connect(a, b)
	ia, ib := l.A, l.B

	if !n.Disconnect(ia, ib) {
		t.Fatal("Disconnect failed")
	}
	if ia.Peer != nil || ib.Peer != nil {
		t.Fatal("peers not cleared")
	}
	if len(n.Links) != 0 {
		t.Fatal("link record not removed")
	}
	if n.Disconnect(ia, ib) {
		t.Fatal("double disconnect returned true")
	}
	n.Reconnect(ia, ib)
	if ia.Peer != ib {
		t.Fatal("reconnect failed")
	}
	if ia.Addr.Addr == 0 {
		t.Fatal("address lost across reconnect")
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAndUpperNeighbors(t *testing.T) {
	n := NewNetwork("test")
	tor := n.AddDevice("tor", LayerToR, 1, "ctnra")
	leaf1 := n.AddDevice("leaf1", LayerLeaf, 2, "ctnra")
	leaf2 := n.AddDevice("leaf2", LayerLeaf, 3, "ctnra")
	host := n.AddDevice("host", LayerHost, 0, "host")
	n.Connect(tor, leaf1)
	n.Connect(tor, leaf2)
	n.Connect(tor, leaf1) // second parallel link must not duplicate neighbor
	n.Connect(host, tor)

	if got := tor.Neighbors(); len(got) != 3 {
		t.Fatalf("Neighbors = %d, want 3", len(got))
	}
	up := n.UpperNeighbors(tor)
	if len(up) != 2 {
		t.Fatalf("UpperNeighbors = %d, want 2 (leaves only)", len(up))
	}
	for _, d := range up {
		if d.Layer != LayerLeaf {
			t.Fatalf("upper neighbor on layer %v", d.Layer)
		}
	}
}

func TestLayerString(t *testing.T) {
	if LayerSpine.String() != "spine" || Layer(99).String() != "layer(99)" {
		t.Fatal("Layer.String wrong")
	}
}

func TestGenerateClosSDCShape(t *testing.T) {
	spec := SDC()
	n := GenerateClos(spec)
	counts := n.LayerCounts()
	if counts[LayerBorder] != 2 {
		t.Errorf("borders = %d, want 2", counts[LayerBorder])
	}
	if counts[LayerSpine] != 4 {
		t.Errorf("spines = %d, want 4", counts[LayerSpine])
	}
	if counts[LayerLeaf] != 16 {
		t.Errorf("leaves = %d, want 16", counts[LayerLeaf])
	}
	if counts[LayerToR] != 96 {
		t.Errorf("tors = %d, want 96", counts[LayerToR])
	}
	if n.NumDevices() != spec.NumDevices() {
		t.Errorf("NumDevices = %d, spec says %d", n.NumDevices(), spec.NumDevices())
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateClosConnectivity(t *testing.T) {
	n := GenerateClos(SDC())
	// Every ToR connects to exactly LeavesPerPod leaves, all in its pod.
	for _, tor := range n.DevicesByLayer(LayerToR) {
		nbrs := tor.Neighbors()
		if len(nbrs) != 2 {
			t.Fatalf("%s has %d neighbors, want 2 leaves", tor.Name, len(nbrs))
		}
		for _, nb := range nbrs {
			if nb.Layer != LayerLeaf || nb.Pod != tor.Pod {
				t.Fatalf("%s connected to %s (layer %v pod %d)", tor.Name, nb.Name, nb.Layer, nb.Pod)
			}
		}
	}
	// Every leaf connects to its pod's ToRs plus SpinesPerPlane spines.
	for _, leaf := range n.DevicesByLayer(LayerLeaf) {
		var tors, spines int
		for _, nb := range leaf.Neighbors() {
			switch nb.Layer {
			case LayerToR:
				tors++
			case LayerSpine:
				spines++
			default:
				t.Fatalf("%s connected to unexpected layer %v", leaf.Name, nb.Layer)
			}
		}
		if tors != 12 || spines != 2 {
			t.Fatalf("%s: tors=%d spines=%d, want 12/2", leaf.Name, tors, spines)
		}
	}
	// Every spine connects to all its group's borders.
	for _, sp := range n.DevicesByLayer(LayerSpine) {
		var borders int
		for _, nb := range sp.Neighbors() {
			if nb.Layer == LayerBorder {
				borders++
				if nb.Group != sp.Group {
					t.Fatalf("%s connected to border of group %d", sp.Name, nb.Group)
				}
			}
		}
		if borders != 2 {
			t.Fatalf("%s: borders=%d, want 2", sp.Name, borders)
		}
	}
}

func TestGenerateClosASPlan(t *testing.T) {
	n := GenerateClos(SDC())
	seenToR := map[uint32]bool{}
	for _, d := range n.Devices() {
		switch d.Layer {
		case LayerBorder:
			if d.ASN != BorderAS {
				t.Fatalf("%s ASN %d, want BorderAS", d.Name, d.ASN)
			}
		case LayerSpine:
			if d.ASN != SpineAS {
				t.Fatalf("%s ASN %d, want SpineAS", d.Name, d.ASN)
			}
		case LayerLeaf:
			if d.ASN != PodAS(d.Pod) {
				t.Fatalf("%s ASN %d, want %d", d.Name, d.ASN, PodAS(d.Pod))
			}
		case LayerToR:
			if seenToR[d.ASN] {
				t.Fatalf("duplicate ToR ASN %d", d.ASN)
			}
			seenToR[d.ASN] = true
		}
	}
}

func TestGenerateClosOriginatedPrefixes(t *testing.T) {
	n := GenerateClos(SDC())
	seen := map[netpkt.Prefix]string{}
	for _, d := range n.DevicesByLayer(LayerToR) {
		if len(d.Originated) != 1 {
			t.Fatalf("%s originates %d prefixes, want 1", d.Name, len(d.Originated))
		}
		for _, p := range d.Originated {
			if p.Len != 24 {
				t.Fatalf("%s originates %v, want /24", d.Name, p)
			}
			if prev, dup := seen[p]; dup {
				t.Fatalf("prefix %v reused by %s and %s", p, prev, d.Name)
			}
			seen[p] = d.Name
		}
	}
	// Non-ToR devices originate nothing.
	for _, d := range n.DevicesByLayer(LayerSpine) {
		if len(d.Originated) != 0 {
			t.Fatalf("%s should not originate prefixes", d.Name)
		}
	}
}

func TestLDCPodMatchesTable4(t *testing.T) {
	spec := LDCScaled(10) // shape-preserving scale-down
	n := GenerateClos(spec)
	// A single pod's upward closure must be 4 leaves + 16? ToRs... verified
	// in the boundary package; here verify the upper-layer shape feeding it:
	// the pod's group has 4 planes x 16 spines and 4 borders (Table 4 row 1).
	var spines, borders int
	for _, d := range n.Devices() {
		if d.Group == 0 {
			switch d.Layer {
			case LayerSpine:
				spines++
			case LayerBorder:
				borders++
			}
		}
	}
	if spines != 64 || borders != 4 {
		t.Fatalf("group 0: spines=%d borders=%d, want 64/4 (Table 4 Case-1)", spines, borders)
	}
}

func TestLDCFullShapeIsTable3Order(t *testing.T) {
	spec := LDC()
	if spec.NumDevices() != 4636 {
		t.Fatalf("L-DC devices = %d, want 4636", spec.NumDevices())
	}
	c := spec // shape sanity without generating 5k devices
	if c.Pods*c.ToRsPerPod != 3600 {
		t.Fatalf("L-DC ToRs = %d, want 3600 (O(3000))", c.Pods*c.ToRsPerPod)
	}
	if got := c.SpineGroups * c.LeavesPerPod * c.SpinesPerPlane; got != 128 {
		t.Fatalf("L-DC spines = %d, want 128 (O(100))", got)
	}
	if r := spec.EstimatedRoutes(); r < 10_000_000 {
		t.Fatalf("L-DC estimated routes = %d, want O(20M)", r)
	}
	if r := MDC().EstimatedRoutes(); r < 300_000 || r > 3_000_000 {
		t.Fatalf("M-DC estimated routes = %d, want O(1M)", r)
	}
	if r := SDC().EstimatedRoutes(); r < 10_000 || r > 100_000 {
		t.Fatalf("S-DC estimated routes = %d, want O(50K)", r)
	}
}

func TestLDCScaledMinimumPods(t *testing.T) {
	s := LDCScaled(1000)
	if s.Pods != 2*s.SpineGroups {
		t.Fatalf("Pods = %d, want %d", s.Pods, 2*s.SpineGroups)
	}
	if LDCScaled(1).Name != "L-DC" {
		t.Fatal("factor 1 must not rename")
	}
}

func TestAttachWAN(t *testing.T) {
	spec := SDC()
	n := GenerateClos(spec)
	wans := AttachWAN(n, spec, 2)
	if len(wans) != 2 {
		t.Fatalf("wans = %d, want 2", len(wans))
	}
	for _, w := range wans {
		if w.Layer != LayerExternal {
			t.Fatal("WAN device not external")
		}
		nbrs := w.Neighbors()
		if len(nbrs) != 2 {
			t.Fatalf("%s neighbors = %d, want all 2 borders", w.Name, len(nbrs))
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.HighestLayer() != LayerBorder {
		t.Fatalf("HighestLayer = %v, want border (externals excluded)", n.HighestLayer())
	}
}

func TestGenerateRegion(t *testing.T) {
	spec := RegionSpec{
		Name: "region-east", DCs: 2,
		DCSpec:          SDC(),
		BackboneRouters: 4, WANCores: 2,
	}
	n := GenerateRegion(spec)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := n.LayerCounts()
	if counts[LayerBackbone] != 4 || counts[LayerWAN] != 2 {
		t.Fatalf("backbone=%d wan=%d", counts[LayerBackbone], counts[LayerWAN])
	}
	if counts[LayerBorder] != 4 { // 2 DCs x 2 borders
		t.Fatalf("borders = %d, want 4", counts[LayerBorder])
	}
	// Every DC border connects to all backbones and all WAN cores.
	for _, d := range n.DevicesByLayer(LayerBorder) {
		var bb, wan int
		for _, nb := range d.Neighbors() {
			switch nb.Layer {
			case LayerBackbone:
				bb++
			case LayerWAN:
				wan++
			}
		}
		if bb != 4 || wan != 2 {
			t.Fatalf("%s: backbone=%d wan=%d", d.Name, bb, wan)
		}
	}
	// ToR server prefixes must not collide across DCs.
	seen := map[netpkt.Prefix]string{}
	for _, d := range n.DevicesByLayer(LayerToR) {
		for _, p := range d.Originated {
			if prev, dup := seen[p]; dup {
				t.Fatalf("prefix %v reused by %s and %s", p, prev, d.Name)
			}
			seen[p] = d.Name
		}
	}
	// AS numbers of same-role devices differ across DCs.
	if n.MustDevice("dc0-border-g0-0").ASN == n.MustDevice("dc1-border-g0-0").ASN {
		t.Fatal("border AS collision across DCs")
	}
}

func TestDevicesInPodAndSortedNames(t *testing.T) {
	n := GenerateClos(SDC())
	pod := n.DevicesInPod(3)
	if len(pod) != 14 { // 12 ToRs + 2 leaves
		t.Fatalf("pod devices = %d, want 14", len(pod))
	}
	names := n.SortedNames()
	if len(names) != n.NumDevices() {
		t.Fatal("SortedNames incomplete")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("SortedNames not sorted/unique")
		}
	}
}

func TestValidateDetectsAsymmetry(t *testing.T) {
	n := NewNetwork("bad")
	a := n.AddDevice("a", LayerToR, 1, "x")
	b := n.AddDevice("b", LayerToR, 2, "x")
	l := n.Connect(a, b)
	l.B.Peer = nil // corrupt
	if err := n.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric link")
	}
}
