package topo

import (
	"fmt"

	"crystalnet/internal/netpkt"
)

// ClosSpec parameterizes a layered BGP Clos datacenter fabric in the style
// of RFC 7938 and the paper's L-DC/M-DC/S-DC networks (Table 3).
//
// The fabric is organized as:
//
//   - Pods of ToRsPerPod ToRs fully meshed to LeavesPerPod leaves.
//   - LeavesPerPod spine planes; leaf i of every pod connects to the spines
//     of plane i within the pod's spine group.
//   - SpineGroups groups; each group owns SpinesPerPlane spines in every
//     plane and BordersPerGroup border routers. Pods are assigned to groups
//     round-robin. Every spine in a group connects to all of the group's
//     borders.
//   - Borders peer upward with external WAN devices (outside the fabric);
//     those become speaker candidates at emulation time.
//
// AS plan (RFC 7938 style, matching the paper's §5.2 assumptions): all
// borders share one AS; all spines share one AS; the leaves of a pod share
// a per-pod AS; every ToR has a unique AS.
type ClosSpec struct {
	Name            string
	Pods            int
	ToRsPerPod      int
	LeavesPerPod    int // = number of spine planes
	SpineGroups     int
	SpinesPerPlane  int // per group, per plane
	BordersPerGroup int
	// PrefixesPerToR is how many server subnets each ToR originates.
	PrefixesPerToR int
	// Vendors by layer; empty means "ctnra".
	ToRVendor, LeafVendor, SpineVendor, BorderVendor string
}

// Vendor defaults used when a ClosSpec leaves vendor fields empty. The
// evaluation setup (§8.1) runs CTNR-B on ToRs and CTNR-A above them.
const (
	DefaultToRVendor   = "ctnrb"
	DefaultUpperVendor = "ctnra"
)

// AS plan constants.
const (
	BorderAS  uint32 = 65000
	SpineAS   uint32 = 65100
	podASBase uint32 = 65200 // pod p leaves get podASBase+p
	torASBase uint32 = 4200000000
)

// PodAS returns the shared AS of pod p's leaves.
func PodAS(p int) uint32 { return podASBase + uint32(p) }

// ToRAS returns the unique AS of the i'th ToR overall.
func ToRAS(i int) uint32 { return torASBase + uint32(i) }

// SDC returns the small-datacenter spec (Table 3 S-DC: O(1) borders,
// O(1) spines, O(10) leaves, O(100) ToRs, O(50K) routes).
func SDC() ClosSpec {
	return ClosSpec{
		Name: "S-DC", Pods: 8, ToRsPerPod: 12, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
}

// MDC returns the medium-datacenter spec (Table 3 M-DC: O(10) borders,
// O(10) spines, O(100) leaves, O(400) ToRs, O(1M) routes).
func MDC() ClosSpec {
	return ClosSpec{
		Name: "M-DC", Pods: 40, ToRsPerPod: 10, LeavesPerPod: 4,
		SpineGroups: 1, SpinesPerPlane: 4, BordersPerGroup: 4,
		PrefixesPerToR: 1,
	}
}

// LDC returns the large-datacenter spec (Table 3 L-DC: O(10) borders,
// O(100) spines, O(1000) leaves, O(3000) ToRs, O(20M) routes). A single pod
// of this fabric sees exactly the Table 4 Case-1 boundary: 4 borders,
// 64 spines, 4 leaves, 16 ToRs.
func LDC() ClosSpec {
	return ClosSpec{
		Name: "L-DC", Pods: 225, ToRsPerPod: 16, LeavesPerPod: 4,
		SpineGroups: 2, SpinesPerPlane: 16, BordersPerGroup: 4,
		PrefixesPerToR: 1,
	}
}

// LDCScaled returns the L-DC spec with the pod count divided by factor
// (minimum 2 pods per spine group), preserving the spine/border shape so
// boundary experiments keep Table 4's upper-layer counts.
func LDCScaled(factor int) ClosSpec {
	s := LDC()
	if factor > 1 {
		s.Pods = s.Pods / factor
		if s.Pods < 2*s.SpineGroups {
			s.Pods = 2 * s.SpineGroups
		}
		s.Name = fmt.Sprintf("L-DC/%d", factor)
	}
	return s
}

// NumDevices returns the total device count the spec will generate.
func (s ClosSpec) NumDevices() int {
	return s.Pods*(s.ToRsPerPod+s.LeavesPerPod) +
		s.SpineGroups*(s.LeavesPerPod*s.SpinesPerPlane+s.BordersPerGroup)
}

// EstimatedRoutes estimates the total number of routing-table entries across
// all switches once converged (Table 3's #Routes column): every device holds
// a route for every originated server prefix and every loopback.
func (s ClosSpec) EstimatedRoutes() int {
	dests := s.Pods*s.ToRsPerPod*s.PrefixesPerToR + s.NumDevices()
	return dests * s.NumDevices()
}

// GenerateClos builds the fabric. Device names follow production-style
// conventions: tor-p3-7 (pod 3, index 7), leaf-p3-0, spine-g1-pl2-5
// (group 1, plane 2, index 5), border-g1-2.
func GenerateClos(spec ClosSpec) *Network {
	if spec.ToRVendor == "" {
		spec.ToRVendor = DefaultToRVendor
	}
	if spec.LeafVendor == "" {
		spec.LeafVendor = DefaultUpperVendor
	}
	if spec.SpineVendor == "" {
		spec.SpineVendor = DefaultUpperVendor
	}
	if spec.BorderVendor == "" {
		spec.BorderVendor = DefaultUpperVendor
	}
	n := NewNetwork(spec.Name)

	// Borders and spines per group.
	borders := make([][]*Device, spec.SpineGroups)
	spines := make([][][]*Device, spec.SpineGroups) // [group][plane][i]
	for g := 0; g < spec.SpineGroups; g++ {
		for b := 0; b < spec.BordersPerGroup; b++ {
			d := n.AddDevice(fmt.Sprintf("border-g%d-%d", g, b), LayerBorder, BorderAS, spec.BorderVendor)
			d.Group = g
			borders[g] = append(borders[g], d)
		}
		spines[g] = make([][]*Device, spec.LeavesPerPod)
		for pl := 0; pl < spec.LeavesPerPod; pl++ {
			for i := 0; i < spec.SpinesPerPlane; i++ {
				d := n.AddDevice(fmt.Sprintf("spine-g%d-pl%d-%d", g, pl, i), LayerSpine, SpineAS, spec.SpineVendor)
				d.Group = g
				spines[g][pl] = append(spines[g][pl], d)
				// Spine connects to every border of its group.
				for _, bd := range borders[g] {
					n.Connect(d, bd)
				}
			}
		}
	}

	// Pods.
	torIndex := 0
	serverBase := uint32(netpkt.IPFromBytes(100, 64, 0, 0)) // /24s from 100.64/10
	for p := 0; p < spec.Pods; p++ {
		g := p % spec.SpineGroups
		leaves := make([]*Device, spec.LeavesPerPod)
		for l := 0; l < spec.LeavesPerPod; l++ {
			d := n.AddDevice(fmt.Sprintf("leaf-p%d-%d", p, l), LayerLeaf, PodAS(p), spec.LeafVendor)
			d.Pod, d.Group = p, g
			leaves[l] = d
			// Leaf l connects to all spines of plane l in the pod's group.
			for _, sp := range spines[g][l] {
				n.Connect(d, sp)
			}
		}
		for t := 0; t < spec.ToRsPerPod; t++ {
			d := n.AddDevice(fmt.Sprintf("tor-p%d-%d", p, t), LayerToR, ToRAS(torIndex), spec.ToRVendor)
			d.Pod, d.Group = p, g
			for i := 0; i < spec.PrefixesPerToR; i++ {
				d.Originated = append(d.Originated, netpkt.Prefix{Addr: netpkt.IP(serverBase), Len: 24})
				serverBase += 256
			}
			torIndex++
			for _, lf := range leaves {
				n.Connect(d, lf)
			}
		}
	}
	return n
}

// AttachWAN adds external WAN devices above the borders: per border group,
// wanPerGroup external routers each connected to every border in the group.
// These model the upstream devices outside the administrative domain; the
// boundary search treats them as speaker candidates. They are given distinct
// external ASes.
func AttachWAN(n *Network, spec ClosSpec, wanPerGroup int) []*Device {
	var wans []*Device
	asn := uint32(64600)
	for g := 0; g < spec.SpineGroups; g++ {
		var groupBorders []*Device
		for _, d := range n.DevicesByLayer(LayerBorder) {
			if d.Group == g {
				groupBorders = append(groupBorders, d)
			}
		}
		for w := 0; w < wanPerGroup; w++ {
			wd := n.AddDevice(fmt.Sprintf("wan-g%d-%d", g, w), LayerExternal, asn, "external")
			asn++
			wans = append(wans, wd)
			for _, bd := range groupBorders {
				n.Connect(wd, bd)
			}
		}
	}
	return wans
}

// RegionSpec parameterizes the §7 Case-1 scenario: multiple datacenters in
// a region, joined today through legacy WAN cores, migrating to a new
// regional backbone that bypasses the WAN.
type RegionSpec struct {
	Name            string
	DCs             int      // datacenters in the region
	DCSpec          ClosSpec // fabric of each DC (only spines+borders emulated in the case study)
	BackboneRouters int      // new regional backbone
	WANCores        int      // legacy WAN cores
}

// GenerateRegion builds the region: every DC border connects to every
// backbone router and every WAN core. DC devices are named with a dc<i>-
// prefix.
func GenerateRegion(spec RegionSpec) *Network {
	n := NewNetwork(spec.Name)
	var backbones, cores []*Device
	for b := 0; b < spec.BackboneRouters; b++ {
		backbones = append(backbones, n.AddDevice(fmt.Sprintf("rbb-%d", b), LayerBackbone, 64900, "vmb"))
	}
	for w := 0; w < spec.WANCores; w++ {
		cores = append(cores, n.AddDevice(fmt.Sprintf("wan-core-%d", w), LayerWAN, 64950+uint32(w), "vmb"))
	}
	for dc := 0; dc < spec.DCs; dc++ {
		sub := GenerateClos(spec.DCSpec)
		merge(n, sub, fmt.Sprintf("dc%d-", dc), uint32(dc)*1000, uint32(dc)<<20)
		for _, d := range n.Devices() {
			if d.Layer == LayerBorder && d.Pod == -1 && hasPrefix(d.Name, fmt.Sprintf("dc%d-", dc)) {
				for _, bb := range backbones {
					n.Connect(d, bb)
				}
				for _, wc := range cores {
					n.Connect(d, wc)
				}
			}
		}
	}
	for _, bb := range backbones {
		for _, wc := range cores {
			n.Connect(bb, wc)
		}
	}
	return n
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// merge copies sub's devices and links into n with a name prefix, an AS
// offset (so multiple DCs keep distinct pod/ToR AS numbers) and an origin
// address offset (so server prefixes never collide across DCs).
func merge(n *Network, sub *Network, prefix string, asOffset, originOffset uint32) {
	mapping := map[*Device]*Device{}
	for _, d := range sub.Devices() {
		// Keep globally-shared ASes (border/spine) per-DC distinct as well:
		// each DC is its own administrative fabric.
		nd := n.AddDevice(prefix+d.Name, d.Layer, d.ASN+asOffset, d.Vendor)
		nd.Pod, nd.Group = d.Pod, d.Group
		for _, p := range d.Originated {
			nd.Originated = append(nd.Originated, netpkt.Prefix{Addr: p.Addr + netpkt.IP(originOffset), Len: p.Len})
		}
		mapping[d] = nd
	}
	for _, l := range sub.Links {
		na, nb := mapping[l.A.Device], mapping[l.B.Device]
		n.Connect(na, nb)
	}
}
