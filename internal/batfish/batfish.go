// Package batfish implements the configuration-verification baseline the
// paper compares against (§1, §2, §10): an idealized control-plane
// simulator that ingests topology and configuration files and computes
// forwarding tables assuming RFC-perfect, bug-free, vendor-uniform device
// behaviour.
//
// By construction it cannot see firmware bugs, vendor-divergent corner
// cases (Figure 1), or anything "baked into custom software" — the paper's
// argument for why emulation is needed. The Table 1 coverage experiment
// runs incident scenarios under both this baseline and the CrystalNet
// emulation and records who detects what.
//
// The coverage argument is tabulated in DESIGN.md §3 (Table 1 row of the
// per-experiment index).
package batfish

import (
	"sort"

	"crystalnet/internal/bgp"
	"crystalnet/internal/config"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
	"crystalnet/internal/topo"
	"crystalnet/internal/trie"
)

// maxRounds bounds the synchronous convergence loop; eBGP path lengths are
// bounded by the AS graph diameter, far below this.
const maxRounds = 128

// adjKey identifies a (device, neighborIndex) adjacency.
type simRoute struct {
	attrs   *bgp.Attrs
	isLocal bool
}

type simNeighbor struct {
	cfg       config.BGPNeighbor
	remote    *simDevice
	remoteNbr int // index of the reverse adjacency on the remote device
}

type simDevice struct {
	name      string
	cfg       *config.DeviceConfig
	neighbors []simNeighbor
	// adjIn[prefix][neighborIdx] = accepted route
	adjIn map[netpkt.Prefix]map[int]*bgp.Attrs
	local map[netpkt.Prefix]*bgp.Attrs
	// best[prefix] = chosen candidates (neighbor indexes; -1 local)
	best map[netpkt.Prefix][]int
}

// Simulate computes the idealized FIBs of every configured device. External
// devices (no config) do not participate — exactly like feeding Batfish
// only your own configs.
func Simulate(n *topo.Network, cfgs map[string]*config.DeviceConfig) map[string]rib.Snapshot {
	// Build the simulation graph.
	devs := map[string]*simDevice{}
	for name, c := range cfgs {
		sd := &simDevice{
			name: name, cfg: c,
			adjIn: map[netpkt.Prefix]map[int]*bgp.Attrs{},
			local: map[netpkt.Prefix]*bgp.Attrs{},
			best:  map[netpkt.Prefix][]int{},
		}
		for _, p := range c.Networks {
			sd.local[p] = &bgp.Attrs{Origin: bgp.OriginIGP, Path: bgp.EmptyPath}
		}
		devs[name] = sd
	}
	// Wire neighbors by configured session addresses.
	ipOwner := map[netpkt.IP]*simDevice{}
	ifOwner := map[netpkt.IP]string{}
	for _, sd := range devs {
		for _, ic := range sd.cfg.Interfaces {
			ipOwner[ic.Addr.Addr] = sd
			ifOwner[ic.Addr.Addr] = ic.Name
		}
	}
	for _, sd := range devs {
		for _, nb := range sd.cfg.Neighbors {
			remote := ipOwner[nb.IP]
			sd.neighbors = append(sd.neighbors, simNeighbor{cfg: nb, remote: remote})
		}
	}
	// Resolve reverse adjacency indexes.
	for _, sd := range devs {
		for i := range sd.neighbors {
			nbr := &sd.neighbors[i]
			if nbr.remote == nil {
				nbr.remoteNbr = -1
				continue
			}
			nbr.remoteNbr = -1
			localIP := sessionLocalIP(sd.cfg, nbr.cfg)
			for j, rn := range nbr.remote.neighbors {
				if rn.cfg.IP == localIP {
					nbr.remoteNbr = j
					break
				}
			}
		}
	}

	names := make([]string, 0, len(devs))
	for name := range devs {
		names = append(names, name)
	}
	sort.Strings(names)

	// Initial decision (locals only), then synchronous rounds.
	for _, name := range names {
		devs[name].decideAll()
	}
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, name := range names {
			sd := devs[name]
			for i := range sd.neighbors {
				if sd.exchange(i) {
					changed = true
				}
			}
		}
		for _, name := range names {
			if devs[name].decideAll() {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Emit FIB snapshots.
	out := map[string]rib.Snapshot{}
	for _, name := range names {
		out[name] = devs[name].snapshot(ifOwner)
	}
	return out
}

// sessionLocalIP returns the local address of the session (the interface
// the neighbor statement binds).
func sessionLocalIP(c *config.DeviceConfig, nb config.BGPNeighbor) netpkt.IP {
	if ic := c.Interface(nb.Interface); ic != nil {
		return ic.Addr.Addr
	}
	return 0
}

// exchange pushes the device's current best routes to neighbor i. Returns
// true if the neighbor's adjIn changed.
func (sd *simDevice) exchange(i int) bool {
	nbr := &sd.neighbors[i]
	if nbr.remote == nil || nbr.remoteNbr < 0 {
		return false
	}
	changed := false
	// Announce / update.
	prefixes := make([]netpkt.Prefix, 0, len(sd.best))
	for p := range sd.best {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	announced := map[netpkt.Prefix]bool{}
	for _, p := range prefixes {
		attrs, ok := sd.export(p, nbr)
		if !ok {
			continue
		}
		announced[p] = true
		if nbr.remote.importRoute(p, nbr.remoteNbr, attrs, nbr.cfg.Interface) {
			changed = true
		}
	}
	// Implicit withdrawals: anything previously in the remote adjIn from us
	// that we no longer announce.
	for p, sources := range nbr.remote.adjIn {
		if _, ok := sources[nbr.remoteNbr]; ok && !announced[p] {
			delete(sources, nbr.remoteNbr)
			changed = true
		}
	}
	return changed
}

// export mirrors the ideal eBGP export: best route, split horizon, AS loop
// avoidance, export policy, prepend, next-hop-self.
func (sd *simDevice) export(p netpkt.Prefix, nbr *simNeighbor) (*bgp.Attrs, bool) {
	best := sd.best[p]
	if len(best) == 0 {
		return nil, false
	}
	src := best[0]
	var attrs *bgp.Attrs
	if src == -1 {
		attrs = sd.local[p]
	} else {
		attrs = sd.adjIn[p][src]
		// Split horizon back to the same neighbor.
		if &sd.neighbors[src] == nbr {
			return nil, false
		}
	}
	if attrs == nil {
		return nil, false
	}
	if attrs.Path.Contains(nbr.cfg.RemoteAS) || nbr.cfg.RemoteAS == sd.cfg.ASN {
		return nil, false
	}
	var pol *bgp.Policy
	if nbr.cfg.ExportPolicy != "" {
		pol = sd.cfg.RouteMaps[nbr.cfg.ExportPolicy]
	}
	out, permit := pol.Apply(p, attrs)
	if !permit {
		return nil, false
	}
	c := *out
	c.Path = c.Path.Prepend(sd.cfg.ASN)
	c.NextHop = sessionLocalIP(sd.cfg, nbr.cfg)
	c.HasLP = false
	if src != -1 {
		c.HasMED = false
	}
	return &c, true
}

// importRoute applies the receiver side; returns true if adjIn changed.
func (sd *simDevice) importRoute(p netpkt.Prefix, fromNbr int, attrs *bgp.Attrs, _ string) bool {
	if attrs.Path.Contains(sd.cfg.ASN) {
		return false
	}
	var pol *bgp.Policy
	if fromNbr < len(sd.neighbors) && sd.neighbors[fromNbr].cfg.ImportPolicy != "" {
		pol = sd.cfg.RouteMaps[sd.neighbors[fromNbr].cfg.ImportPolicy]
	}
	in, permit := pol.Apply(p, attrs)
	if !permit {
		sources := sd.adjIn[p]
		if sources != nil {
			if _, had := sources[fromNbr]; had {
				delete(sources, fromNbr)
				return true
			}
		}
		return false
	}
	sources := sd.adjIn[p]
	if sources == nil {
		sources = map[int]*bgp.Attrs{}
		sd.adjIn[p] = sources
	}
	prev := sources[fromNbr]
	if prev != nil && attrsEqual(prev, in) {
		return false
	}
	sources[fromNbr] = in
	return true
}

func attrsEqual(a, b *bgp.Attrs) bool {
	return a.Origin == b.Origin && a.NextHop == b.NextHop &&
		a.HasMED == b.HasMED && a.MED == b.MED &&
		a.EffectiveLocalPref() == b.EffectiveLocalPref() &&
		a.Path.Equal(b.Path)
}

// decideAll recomputes best paths for every known prefix; returns true on
// any change.
func (sd *simDevice) decideAll() bool {
	prefixes := map[netpkt.Prefix]bool{}
	for p := range sd.local {
		prefixes[p] = true
	}
	for p := range sd.adjIn {
		prefixes[p] = true
	}
	changed := false
	for p := range prefixes {
		type cand struct {
			idx   int
			attrs *bgp.Attrs
		}
		var cands []cand
		if a, ok := sd.local[p]; ok {
			cands = append(cands, cand{-1, a})
		}
		idxs := make([]int, 0, len(sd.adjIn[p]))
		for i := range sd.adjIn[p] {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			cands = append(cands, cand{i, sd.adjIn[p][i]})
		}
		var best []int
		if len(cands) > 0 {
			bi := 0
			for i := 1; i < len(cands); i++ {
				if betterIdeal(cands[i].attrs, cands[bi].attrs, cands[i].idx == -1, cands[bi].idx == -1) {
					bi = i
				}
			}
			best = append(best, cands[bi].idx)
			max := sd.cfg.MaxPaths
			if max <= 0 {
				max = 1
			}
			for i := range cands {
				if i != bi && len(best) < max && multipathOK(cands[i].attrs, cands[bi].attrs, cands[i].idx == -1, cands[bi].idx == -1) {
					best = append(best, cands[i].idx)
				}
			}
		}
		if !intsEqual(sd.best[p], best) {
			if len(best) == 0 {
				delete(sd.best, p)
			} else {
				sd.best[p] = best
			}
			changed = true
		}
	}
	return changed
}

// betterIdeal is the canonical, vendor-uniform decision process.
func betterIdeal(a, b *bgp.Attrs, aLocal, bLocal bool) bool {
	if la, lb := a.EffectiveLocalPref(), b.EffectiveLocalPref(); la != lb {
		return la > lb
	}
	if aLocal != bLocal {
		return aLocal
	}
	if la, lb := a.Path.Length(), b.Path.Length(); la != lb {
		return la < lb
	}
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.Path.First() == b.Path.First() {
		ma, mb := uint32(0), uint32(0)
		if a.HasMED {
			ma = a.MED
		}
		if b.HasMED {
			mb = b.MED
		}
		if ma != mb {
			return ma < mb
		}
	}
	return a.NextHop < b.NextHop
}

func multipathOK(a, b *bgp.Attrs, aLocal, bLocal bool) bool {
	return a.EffectiveLocalPref() == b.EffectiveLocalPref() &&
		aLocal == bLocal &&
		a.Path.Length() == b.Path.Length() &&
		a.Origin == b.Origin
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshot converts the device's best routes into a FIB snapshot:
// connected interfaces plus BGP-selected next hops.
func (sd *simDevice) snapshot(ifOwner map[netpkt.IP]string) rib.Snapshot {
	var snap rib.Snapshot
	for _, ic := range sd.cfg.Interfaces {
		sub := netpkt.Prefix{Addr: ic.Addr.Addr & ic.Addr.MaskIP(), Len: ic.Addr.Len}
		snap = append(snap, &rib.Entry{
			Prefix: sub, Proto: rib.ProtoConnected,
			NextHops: []rib.NextHop{{Interface: ic.Name}},
		})
	}
	prefixes := make([]netpkt.Prefix, 0, len(sd.best))
	for p := range sd.best {
		prefixes = append(prefixes, p)
	}
	sortPrefixes(prefixes)
	for _, p := range prefixes {
		var hops []rib.NextHop
		for _, idx := range sd.best[p] {
			if idx == -1 {
				continue
			}
			nbr := sd.neighbors[idx]
			hops = append(hops, rib.NextHop{IP: nbr.cfg.IP, Interface: nbr.cfg.Interface})
		}
		if len(hops) == 0 {
			continue
		}
		snap = append(snap, &rib.Entry{Prefix: p, Proto: rib.ProtoBGP, NextHops: hops})
	}
	sort.Slice(snap, func(i, j int) bool {
		if snap[i].Prefix.Addr != snap[j].Prefix.Addr {
			return snap[i].Prefix.Addr < snap[j].Prefix.Addr
		}
		return snap[i].Prefix.Len < snap[j].Prefix.Len
	})
	return snap
}

func sortPrefixes(ps []netpkt.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr < ps[j].Addr
		}
		return ps[i].Len < ps[j].Len
	})
}

// Reachable walks the computed FIBs from a device toward an address,
// answering the reachability queries verification tools are used for.
// It returns the device path and whether delivery succeeds. For many
// queries over the same state, build a Walker once instead.
func Reachable(fibs map[string]rib.Snapshot, cfgs map[string]*config.DeviceConfig, from string, dst netpkt.IP) ([]string, bool) {
	return NewWalker(fibs, cfgs).Reachable(from, dst)
}

// Walker answers repeated reachability queries against one pulled state.
// It hoists the interface-owner index out of the per-query path and builds
// a longest-prefix-match trie per device the first time that device is
// walked through, which is what makes fabric-wide sweeps (every device x
// every prefix x every hop) affordable. The lazy indexing makes a Walker
// unsafe for concurrent use; build one per goroutine.
type Walker struct {
	fibs map[string]rib.Snapshot
	cfgs map[string]*config.DeviceConfig
	// owner maps a session/interface IP to the device that owns it (to
	// follow next hops).
	owner map[netpkt.IP]string
	// lpm holds the per-device longest-prefix-match index, built on first
	// lookup (a sweep rarely routes through every device it starts from).
	lpm map[string]*trie.Trie[*rib.Entry]
	// live, when set, resolves lookups against live FIB tries instead of
	// indexed snapshots (see NewLiveWalker).
	live LookupFunc
	// devIdx interns device names so Delivered's memo can be a flat array
	// per destination instead of a string-keyed map.
	devIdx map[string]int
	// verdicts memoizes Delivered per (dst, device): 0 unknown, 1
	// delivered, 2 undelivered. Fabric walks from different sources
	// converge onto the same downstream devices after a hop or two, so a
	// sweep resolves each (device, dst) pair once.
	verdicts map[netpkt.IP][]int8
	// visited is Delivered's scratch path buffer (reused across queries;
	// Walkers are single-goroutine).
	visited []int
}

// LookupFunc resolves a longest-prefix match in one device's forwarding
// state; it must return false for unknown devices.
type LookupFunc func(dev string, dst netpkt.IP) (*rib.Entry, bool)

// NewWalker indexes pulled FIBs and configurations for repeated queries.
func NewWalker(fibs map[string]rib.Snapshot, cfgs map[string]*config.DeviceConfig) *Walker {
	w := &Walker{
		fibs: fibs, cfgs: cfgs,
		owner:  map[netpkt.IP]string{},
		lpm:    map[string]*trie.Trie[*rib.Entry]{},
		devIdx: make(map[string]int, len(cfgs)),
	}
	for name, c := range cfgs {
		w.devIdx[name] = len(w.devIdx)
		for _, ic := range c.Interfaces {
			w.owner[ic.Addr.Addr] = name
		}
	}
	return w
}

// NewLiveWalker answers queries straight off live per-device FIB tries
// (device FIBs are tries already, so re-indexing pulled snapshots would
// only duplicate them). The caller guarantees the forwarding state does
// not change for the walker's lifetime — sweeps between mutations qualify.
func NewLiveWalker(fn LookupFunc, cfgs map[string]*config.DeviceConfig) *Walker {
	w := NewWalker(nil, cfgs)
	w.live = fn
	return w
}

// lookup longest-prefix-matches dst in a device's FIB snapshot, indexing
// the snapshot on first use.
func (w *Walker) lookup(dev string, dst netpkt.IP) (*rib.Entry, bool) {
	if w.live != nil {
		return w.live(dev, dst)
	}
	t, ok := w.lpm[dev]
	if !ok {
		t = trie.New[*rib.Entry]()
		for _, e := range w.fibs[dev] {
			t.Insert(e.Prefix, e)
		}
		w.lpm[dev] = t
	}
	_, e, ok := t.Lookup(dst)
	return e, ok
}

// Reachable walks from a device toward an address, returning the device
// path and whether delivery succeeds.
func (w *Walker) Reachable(from string, dst netpkt.IP) ([]string, bool) {
	cur := from
	var path []string
	for hops := 0; hops < 64; hops++ {
		path = append(path, cur)
		next, delivered, ok := w.hop(cur, dst)
		if delivered || !ok {
			return path, delivered
		}
		cur = next
	}
	return path, false
}

// Delivered reports whether a packet from a device reaches dst without
// materializing the hop path — the allocation-free form fabric-wide
// sweeps use (they only name the endpoints of failing pairs). The verdict
// is memoized for every device on the walked path: each device forwards
// toward dst the same way no matter who handed it the packet, so once the
// verdict downstream of a device is known it holds for all later sources.
func (w *Walker) Delivered(from string, dst netpkt.IP) bool {
	if w.verdicts == nil {
		w.verdicts = map[netpkt.IP][]int8{}
	}
	vs := w.verdicts[dst]
	if vs == nil {
		vs = make([]int8, len(w.devIdx))
		w.verdicts[dst] = vs
	}
	w.visited = w.visited[:0]
	cur := from
	delivered := false
	for hops := 0; hops < 64; hops++ {
		if idx, tracked := w.devIdx[cur]; tracked {
			if v := vs[idx]; v != 0 {
				delivered = v == 1
				break
			}
			w.visited = append(w.visited, idx)
		}
		next, del, ok := w.hop(cur, dst)
		if del || !ok {
			delivered = del
			break
		}
		cur = next
		// Falling out of the loop means a forwarding loop: every visited
		// device keeps cycling, so the undelivered verdict is right for
		// all of them.
	}
	verdict := int8(2)
	if delivered {
		verdict = 1
	}
	for _, idx := range w.visited {
		vs[idx] = verdict
	}
	return delivered
}

// hop advances one forwarding step from cur toward dst: delivered reports
// local origination or delivery to an unowned (host) address, ok=false a
// forwarding failure, and otherwise next is the downstream device.
func (w *Walker) hop(cur string, dst netpkt.IP) (next string, delivered, ok bool) {
	if c := w.cfgs[cur]; c != nil {
		for _, p := range c.Networks {
			if p.Contains(dst) {
				return "", true, true
			}
		}
	}
	best, ok := w.lookup(cur, dst)
	if !ok || len(best.NextHops) == 0 {
		return "", false, false
	}
	nh := best.NextHops[0]
	if nh.IP == 0 {
		// Connected: delivered if no device owns it (it is a host).
		next, ok := w.owner[dst]
		if !ok {
			return "", true, true
		}
		return next, false, true
	}
	next, ok = w.owner[nh.IP]
	return next, false, ok
}
