package batfish

import (
	"testing"

	"crystalnet/internal/bgp"
	"crystalnet/internal/config"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
	"crystalnet/internal/topo"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }

func small() (*topo.Network, map[string]*config.DeviceConfig) {
	n := topo.GenerateClos(topo.ClosSpec{
		Name: "mini", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	})
	return n, config.Generate(n)
}

func TestSimulateConverges(t *testing.T) {
	n, cfgs := small()
	fibs := Simulate(n, cfgs)
	if len(fibs) != n.NumDevices() {
		t.Fatalf("fibs = %d", len(fibs))
	}
	// Every device reaches every ToR server prefix (unique ToR ASes).
	for _, d := range n.DevicesByLayer(topo.LayerToR) {
		for name := range cfgs {
			if name == d.Name {
				continue
			}
			found := false
			for _, e := range fibs[name] {
				if e.Prefix == d.Originated[0] {
					found = true
					if len(e.NextHops) == 0 {
						t.Fatalf("%s: empty next hops for %v", name, e.Prefix)
					}
				}
			}
			if !found {
				t.Fatalf("%s missing route to %v", name, d.Originated[0])
			}
		}
	}
}

func TestSimulateECMP(t *testing.T) {
	n, cfgs := small()
	fibs := Simulate(n, cfgs)
	// A ToR reaches a remote pod prefix via both its leaves.
	remote := n.MustDevice("tor-p1-0").Originated[0]
	for _, e := range fibs["tor-p0-0"] {
		if e.Prefix == remote {
			if len(e.NextHops) != 2 {
				t.Fatalf("ECMP hops = %v", e.NextHops)
			}
			return
		}
	}
	t.Fatal("route missing")
}

func TestSimulateMatchesEmulationIdealCase(t *testing.T) {
	// On a bug-free network, the idealized simulator and the emulation
	// should agree (the §10 point that verification remains useful as a
	// first, low-fidelity check). Spot-check path shape: a border's route
	// to a ToR prefix goes via a spine.
	n, cfgs := small()
	fibs := Simulate(n, cfgs)
	dst := n.MustDevice("tor-p0-0").Originated[0]
	for _, e := range fibs["border-g0-0"] {
		if e.Prefix == dst {
			for _, nh := range e.NextHops {
				if nh.IP == 0 {
					t.Fatal("border route should have a next hop")
				}
			}
			return
		}
	}
	t.Fatal("border missing ToR route")
}

func TestSimulateAppliesExportPolicy(t *testing.T) {
	n, cfgs := small()
	// Deny everything pod 0's leaves export toward the spines: the pod's
	// prefixes must vanish from the rest of the fabric while intra-pod
	// routing (ToR-facing sessions) stays intact.
	for _, name := range []string{"leaf-p0-0", "leaf-p0-1"} {
		c := cfgs[name]
		c.RouteMaps["BLOCK"] = bgp.DenyAll
		for i := range c.Neighbors {
			if c.Neighbors[i].RemoteAS == topo.SpineAS {
				c.Neighbors[i].ExportPolicy = "BLOCK"
			}
		}
	}
	fibs := Simulate(n, cfgs)
	victim := n.MustDevice("tor-p0-0").Originated[0]
	for _, e := range fibs["border-g0-0"] {
		if e.Prefix == victim {
			t.Fatal("export deny leaked through the ideal simulator")
		}
	}
	// Intra-pod routing is unaffected (import side untouched).
	found := false
	for _, e := range fibs["tor-p0-1"] {
		if e.Prefix == victim {
			found = true
		}
	}
	if !found {
		t.Fatal("intra-pod route lost")
	}
}

func TestReachableWalk(t *testing.T) {
	n, cfgs := small()
	fibs := Simulate(n, cfgs)
	dst := n.MustDevice("tor-p1-1").Originated[0].Addr + 5
	path, ok := Reachable(fibs, cfgs, "tor-p0-0", dst)
	if !ok {
		t.Fatalf("unreachable, path %v", path)
	}
	if len(path) != 5 || path[0] != "tor-p0-0" || path[len(path)-1] != "tor-p1-1" {
		t.Fatalf("path = %v", path)
	}
	// Unknown destination fails.
	if _, ok := Reachable(fibs, cfgs, "tor-p0-0", netpkt.MustParseIP("203.0.113.1")); ok {
		t.Fatal("bogus destination reachable")
	}
}

func TestIdealSimulatorMissesFigure1(t *testing.T) {
	// Figure 1 rebuilt as configs: R6 and R7 both aggregate P1/P2 into P3.
	// The idealized simulator treats both vendors identically, so R8 sees
	// two equal aggregates and load-balances — it cannot predict the real
	// imbalance the emulation reproduces (TestFigure1Imbalance in the bgp
	// package). This test pins the *miss*.
	n := topo.NewNetwork("fig1")
	r1 := n.AddDevice("r1", topo.LayerToR, 1, "ctnra")
	r1.Originated = append(r1.Originated, pfx("100.64.0.0/24"), pfx("100.64.1.0/24"))
	mk := func(name string, as uint32) *topo.Device { return n.AddDevice(name, topo.LayerLeaf, as, "ctnra") }
	r2, r3, r4, r5 := mk("r2", 2), mk("r3", 3), mk("r4", 4), mk("r5", 5)
	r6 := n.AddDevice("r6", topo.LayerSpine, 6, "ctnra")
	r7 := n.AddDevice("r7", topo.LayerSpine, 7, "vma")
	r8 := n.AddDevice("r8", topo.LayerBorder, 8, "ctnra")
	n.Connect(r1, r2)
	n.Connect(r1, r3)
	n.Connect(r1, r4)
	n.Connect(r1, r5)
	n.Connect(r2, r6)
	n.Connect(r3, r6)
	n.Connect(r4, r7)
	n.Connect(r5, r7)
	n.Connect(r6, r8)
	n.Connect(r7, r8)
	cfgs := config.Generate(n)
	agg := config.Aggregate{Prefix: pfx("100.64.0.0/23"), SummaryOnly: true}
	cfgs["r6"].Aggregates = append(cfgs["r6"].Aggregates, agg)
	cfgs["r7"].Aggregates = append(cfgs["r7"].Aggregates, agg)
	// NOTE: the idealized simulator below does not even model aggregation
	// (like config-only tools, custom/ambiguous behaviour is out of scope);
	// R8 simply sees the two /24s via both R6 and R7 with equal-length
	// paths and ECMPs across them. Either way: no imbalance predicted.
	fibs := Simulate(n, cfgs)
	for _, e := range fibs["r8"] {
		if e.Prefix == pfx("100.64.0.0/24") || e.Prefix == pfx("100.64.1.0/24") {
			if len(e.NextHops) != 2 {
				t.Fatalf("ideal model should balance across R6/R7, got %v", e.NextHops)
			}
		}
		if e.Prefix == pfx("100.64.0.0/23") {
			t.Fatal("ideal model unexpectedly produced the vendor aggregate")
		}
	}
}

func TestSnapshotContainsConnected(t *testing.T) {
	n, cfgs := small()
	fibs := Simulate(n, cfgs)
	found := false
	for _, e := range fibs["tor-p0-0"] {
		if e.Proto == rib.ProtoConnected {
			found = true
		}
	}
	if !found {
		t.Fatal("connected routes missing from snapshot")
	}
}
