package scenario

import (
	"fmt"

	"crystalnet/internal/checkpoint"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/topo"
)

// Converged is a reusable converged baseline for a spec: the fabric has
// been built, mocked up and driven to route-ready exactly once, and every
// call to Run forks it instead of re-converging. The N-run campaign cost
// drops from N×(mockup+convergence+steps) to 1×convergence + N×steps.
//
// A Converged value may serve concurrent Run calls (the chaos campaign
// forks from worker goroutines); the underlying emulation is only ever
// read. It must not be used after its parent emulation is advanced,
// mutated or cleared by other means.
type Converged struct {
	seed int64
	orch *core.Orchestrator
	snap *checkpoint.Snapshot
	net  *topo.Network

	origConfigs map[string]*config.DeviceConfig
	baseline    *core.State
	step0       StepResult
	header      Report
}

// Converge builds sp's fabric and drives it to route-ready, returning a
// forkable baseline. Only the mockup prologue runs — sp's steps are left
// for Converged.Run, which executes them on a fork. The spec's invariants
// are swept once at the converged point and recorded in the step-0 result
// every forked report starts from, exactly as a fresh run would record
// them.
func Converge(sp *Spec, opts Options) (*Converged, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	seed := resolveSeed(sp, opts)
	r := &runner{
		sp: sp, opts: opts,
		origConfigs: map[string]*config.DeviceConfig{},
		baselines:   map[string]*core.State{},
		report:      &Report{Scenario: sp.Name, Seed: seed},
	}
	if err := r.mockup(seed); err != nil {
		return nil, err
	}
	snap, err := r.em.Checkpoint()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: checkpoint: %w", sp.Name, err)
	}
	header := *r.report
	header.Steps = nil
	return &Converged{
		seed:        seed,
		orch:        r.orch,
		snap:        snap,
		net:         r.net,
		origConfigs: r.origConfigs,
		baseline:    r.baselines[DefaultBaseline],
		step0:       r.report.Steps[0],
		header:      header,
	}, nil
}

// Run forks the converged emulation and drives sp's steps on the fork.
// The report is byte-identical to what a fresh Run of sp with the same
// seed would produce: the forked engine continues the captured clock, FIFO
// sequence and RNG stream, so every step latency, jitter draw and event
// count matches.
//
// sp must resolve to the Converged's seed (forking cannot replay a
// different convergence) and must not contain attach-device steps — those
// grow the topology, which forks share copy-on-write with the parent.
func (cv *Converged) Run(sp *Spec, opts Options) (*Report, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if seed := resolveSeed(sp, opts); seed != cv.seed {
		return nil, fmt.Errorf("scenario %s: seed %d does not match converged baseline seed %d",
			sp.Name, seed, cv.seed)
	}
	if err := CheckForkable(sp, opts); err != nil {
		return nil, err
	}
	em, err := cv.orch.Fork(cv.snap)
	if err != nil {
		return nil, err
	}
	if opts.Cancel != nil {
		em.SetCancel(opts.Cancel)
	}
	if opts.Rec != nil {
		// Hand the fork's recorder (a deep copy of everything the shared
		// convergence recorded) to the caller's handle, then rebind the
		// fork's engine to it so the steps below land in the same trace.
		opts.Rec.Adopt(em.Orchestrator().Eng.Recorder())
		em.Orchestrator().Eng.SetRecorder(opts.Rec)
	}
	r := &runner{
		sp: sp, opts: opts,
		orch:        em.Orchestrator(),
		em:          em,
		net:         cv.net,
		origConfigs: cv.origConfigs,
		baselines:   map[string]*core.State{DefaultBaseline: cv.baseline},
		report: &Report{
			Scenario:      sp.Name,
			Seed:          cv.seed,
			Fabric:        cv.header.Fabric,
			Emulated:      cv.header.Emulated,
			Speakers:      cv.header.Speakers,
			VMs:           cv.header.VMs,
			NetworkReady:  cv.header.NetworkReady,
			RouteReady:    cv.header.RouteReady,
			MockupLatency: cv.header.MockupLatency,
		},
	}
	step0 := cv.step0
	step0.Diffs = checkpoint.CloneSlice(cv.step0.Diffs)
	step0.Invariants = checkpoint.CloneSlice(cv.step0.Invariants)
	r.report.Steps = append(r.report.Steps, step0)
	return r.drive()
}

// Seed returns the resolved seed the baseline converged with. Specs run
// against this Converged must resolve to the same value.
func (cv *Converged) Seed() int64 { return cv.seed }

// Invalidate permanently retires the baseline: subsequent Run calls fail
// instead of forking. A warm pool calls it when it evicts the entry, so
// stale handles cannot revive state the pool has given up on. In-flight
// forks already materialized are unaffected. Safe from any goroutine.
func (cv *Converged) Invalidate() { cv.snap.Invalidate() }

// CheckForkable reports whether sp can run against a forked baseline
// instead of a fresh convergence. Two things disqualify it: armed MTBF
// failures (daemon timers cannot cross a checkpoint — Converge would have
// refused) and attach-device steps (they grow the topology, which forks
// share copy-on-write with the parent). Both the chaos Reuse path and the
// rehearsal service use this to decide fork-vs-fresh up front.
func CheckForkable(sp *Spec, opts Options) error {
	if opts.MTBF > 0 {
		return fmt.Errorf("scenario %s: MTBF failure injection cannot run on a forked emulation (daemon timers cannot cross a checkpoint)", sp.Name)
	}
	for i := range sp.Steps {
		if sp.Steps[i].Op == OpAttachDevice {
			return fmt.Errorf("scenario %s: attach-device cannot run on a forked emulation (mutates the shared topology)", sp.Name)
		}
	}
	return nil
}

// resolveSeed applies the same seed-resolution rules as Run: override,
// spec, then the default seed 1.
func resolveSeed(sp *Spec, opts Options) int64 {
	seed := sp.Seed
	if opts.SeedOverride != nil {
		seed = *opts.SeedOverride
	}
	if seed == 0 {
		seed = 1
	}
	return seed
}

// EffectiveSeed exposes the resolved (override → spec → default) seed for
// a spec/options pair without running anything; the serving layer keys its
// warm pool on it.
func EffectiveSeed(sp *Spec, opts Options) int64 { return resolveSeed(sp, opts) }
