// Package scenario implements CrystalNet's declarative operation-rehearsal
// engine: the JSON scenario specs operators write, the deterministic runner
// that replays them against an emulation on the simulation clock with
// continuous invariant checking, and the seeded chaos-campaign layer that
// expands one spec into many randomized fault sequences fanned across cores.
//
// The paper's whole argument (§2, §9) is that risky operations — pod
// upgrades, firmware rollouts, failure drills — should be *rehearsed*
// against an emulated production network before they touch production. A
// spec captures one such rehearsal as data: the fabric to mock up, the
// operation steps (link flaps, config reloads, device attachments, VM
// failures, probes) and the assertions that must hold, so the same
// rehearsal is reproducible from a seed, diffable in review, and
// composable into chaos campaigns.
//
// DESIGN.md §5 is the full scenario-engine write-up: the step/invariant
// catalog, determinism contract and campaign layer.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"crystalnet/internal/topo"
	"crystalnet/internal/traffic"
)

// Step operations. The non-assert ops cover the core.Emulation control API
// surface (Table 2); the assert-* ops are the invariant vocabulary.
const (
	OpSetLink         = "set-link"
	OpReloadConfig    = "reload-config"
	OpAttachDevice    = "attach-device"
	OpInjectPackets   = "inject-packets"
	OpInjectVMFailure = "inject-vm-failure"
	OpExec            = "exec"
	OpWaitConverge    = "wait-converge"
	OpSleep           = "sleep"
	OpSaveBaseline    = "save-baseline"
	OpInjectTraffic   = "inject-traffic"

	OpAssertReachable       = "assert-reachable"
	OpAssertFIBDiff         = "assert-fib-diff"
	OpAssertNoBlackhole     = "assert-no-blackhole"
	OpAssertRecoveredWithin = "assert-recovered-within"
	OpAssertProbe           = "assert-probe"
	OpAssertSessions        = "assert-sessions"
	OpAssertFIBLookup       = "assert-fib-lookup"
	OpAssertDeviceState     = "assert-device-state"
	OpAssertFlowSLO         = "assert-flow-slo"
)

// DefaultBaseline is the snapshot the runner saves automatically after the
// initial convergence; assert-fib-diff steps reference it when they name no
// explicit baseline.
const DefaultBaseline = "init"

// Duration marshals a time.Duration as a Go duration string ("45s") so
// specs stay human-readable.
type Duration time.Duration

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or a bare number of nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("scenario: bad duration %s", b)
	}
	*d = Duration(n)
	return nil
}

// Std returns the duration as a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// ImageRef names a vendor image by exact version ("" = production default).
type ImageRef struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
}

// ClosSpec mirrors topo.ClosSpec with JSON tags, for custom fabrics.
type ClosSpec struct {
	Name            string `json:"name"`
	Pods            int    `json:"pods"`
	ToRsPerPod      int    `json:"torsPerPod"`
	LeavesPerPod    int    `json:"leavesPerPod"`
	SpineGroups     int    `json:"spineGroups"`
	SpinesPerPlane  int    `json:"spinesPerPlane"`
	BordersPerGroup int    `json:"bordersPerGroup"`
	PrefixesPerToR  int    `json:"prefixesPerToR"`
}

// Topology selects the fabric a scenario mocks up: one of the named
// evaluation fabrics (Table 3) or a custom Clos spec, with optional WAN
// routers attached above the borders (they become boundary speakers).
type Topology struct {
	// DC is "sdc", "mdc" or "ldc"; empty requires Clos.
	DC string `json:"dc,omitempty"`
	// LDCScale downscales the L-DC fabric (default 8, as crystalctl).
	LDCScale int `json:"ldcScale,omitempty"`
	// WANPerGroup attaches this many external WAN routers per spine group.
	WANPerGroup int `json:"wanPerGroup,omitempty"`
	// Clos is a custom fabric spec (used when DC is empty).
	Clos *ClosSpec `json:"clos,omitempty"`
}

// NewDevice describes a device an attach-device step adds to the running
// emulation (the §3.2 new-rack-deployment rehearsal).
type NewDevice struct {
	Name   string `json:"name"`
	Layer  string `json:"layer"` // tor, leaf, spine, border
	ASN    uint32 `json:"asn"`
	Vendor string `json:"vendor"`
	// Version pins the image; empty uses the vendor's production release.
	Version string `json:"version,omitempty"`
	// Peers are existing devices the new device links to.
	Peers []string `json:"peers"`
	// Originated are server prefixes the new device announces.
	Originated []string `json:"originated,omitempty"`
}

// ACLPatch is the declarative config mutation a reload-config step applies:
// clone the device's baseline configuration and add one deny-source ACL
// (the pod-upgrade rehearsal's shape — both the intended change and the
// fat-fingered variant are instances of it).
type ACLPatch struct {
	Name string `json:"name"`
	// DenySrc is the source prefix to deny; everything else is permitted.
	DenySrc string `json:"denySrc"`
	// BindIngress binds the ACL inbound on every non-loopback interface.
	BindIngress bool `json:"bindIngress"`
}

// Step is one operation or assertion. It is a flat union: Op selects the
// kind and Validate enforces which fields it requires.
type Step struct {
	Op    string `json:"op"`
	Label string `json:"label,omitempty"`

	// set-link: endpoints as "device:interface".
	A  string `json:"a,omitempty"`
	B  string `json:"b,omitempty"`
	Up *bool  `json:"up,omitempty"`

	// Device names the target of reload-config, inject-vm-failure, exec,
	// assert-device-state and assert-fib-lookup (single-device form).
	Device string `json:"device,omitempty"`

	// reload-config: exactly one of FromBaseline or ACL.
	FromBaseline bool      `json:"fromBaseline,omitempty"`
	ACL          *ACLPatch `json:"acl,omitempty"`

	// attach-device.
	NewDevice *NewDevice `json:"newDevice,omitempty"`

	// inject-packets / assert-reachable: probe source and destination. Dst
	// is a literal IP; DstDevice+DstOffset addresses into the first prefix
	// originated by a device (offset 0 is the subnet base).
	From      string   `json:"from,omitempty"`
	Dst       string   `json:"dst,omitempty"`
	DstDevice string   `json:"dstDevice,omitempty"`
	DstOffset uint32   `json:"dstOffset,omitempty"`
	Count     int      `json:"count,omitempty"`
	Interval  Duration `json:"interval,omitempty"`

	// exec.
	Command        string `json:"command,omitempty"`
	ExpectContains string `json:"expectContains,omitempty"`

	// wait-converge.
	MaxEvents uint64 `json:"maxEvents,omitempty"`

	// sleep / assert-recovered-within bound.
	Duration Duration `json:"duration,omitempty"`

	// save-baseline / assert-fib-diff reference.
	Baseline string `json:"baseline,omitempty"`

	// Assertions.
	Expect      *bool    `json:"expect,omitempty"`      // reachable / probe / fib-lookup
	MaxDiffs    int      `json:"maxDiffs,omitempty"`    // assert-fib-diff tolerance
	Devices     []string `json:"devices,omitempty"`     // scope for blackhole/fib-diff checks
	Vendor      string   `json:"vendor,omitempty"`      // assert-sessions / assert-fib-lookup scope
	Established int      `json:"established,omitempty"` // assert-sessions expected count
	IP          string   `json:"ip,omitempty"`          // assert-fib-lookup target
	State       string   `json:"state,omitempty"`       // assert-device-state expected state
	Recoveries  int      `json:"recoveries,omitempty"`  // assert-recovered-within min count

	// inject-traffic: the flow matrix to attach mid-run.
	Traffic *traffic.Spec `json:"traffic,omitempty"`
	// assert-flow-slo bounds. Window tolerates black-holes shorter than it
	// (transient convergence loss); zero means any black-hole counts.
	MaxBlackholedPct *float64 `json:"maxBlackholedPct,omitempty"`
	MaxLostPct       *float64 `json:"maxLostPct,omitempty"`
	Window           Duration `json:"window,omitempty"`
}

// Spec is one declarative rehearsal: fabric, emulation scope, steps and
// the invariants re-checked at every convergence point.
type Spec struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Topology    Topology `json:"topology"`

	// MustEmulate seeds Algorithm 1 with explicit device names;
	// MustEmulatePods expands to every device of the named pods. Both empty
	// means "emulate the whole fabric".
	MustEmulate     []string `json:"mustEmulate,omitempty"`
	MustEmulatePods []int    `json:"mustEmulatePods,omitempty"`

	// Emulate is the exact emulated set — no Algorithm 1 growth. It is
	// how /v1/plan and `crystalctl plan -solve` output is executed, so a
	// rehearsal forks a fabric no bigger than its plan. Mutually
	// exclusive with MustEmulate and MustEmulatePods.
	Emulate []string `json:"emulate,omitempty"`

	// Images pins vendor images ({vendor: {name, version}}).
	Images map[string]ImageRef `json:"images,omitempty"`

	// Invariants are assert-* steps evaluated after the initial convergence
	// and after every wait-converge step — the continuous checking layer.
	Invariants []Step `json:"invariants,omitempty"`

	// Traffic, when set, attaches a flow-level load matrix right after the
	// initial convergence, before the first invariant sweep — every
	// wait-converge then re-settles it and assert-flow-slo invariants
	// measure user impact continuously. A zero traffic seed inherits the
	// run seed.
	Traffic *traffic.Spec `json:"traffic,omitempty"`

	Steps []Step `json:"steps"`
}

// assertOps marks the step kinds allowed as invariants.
var assertOps = map[string]bool{
	OpAssertReachable:       true,
	OpAssertFIBDiff:         true,
	OpAssertNoBlackhole:     true,
	OpAssertRecoveredWithin: true,
	OpAssertProbe:           true,
	OpAssertSessions:        true,
	OpAssertFIBLookup:       true,
	OpAssertDeviceState:     true,
	OpAssertFlowSLO:         true,
}

// IsAssert reports whether the step is an assertion (usable as invariant).
func (s *Step) IsAssert() bool { return assertOps[s.Op] }

// Validate checks one step's required fields.
func (s *Step) Validate() error {
	switch s.Op {
	case OpSetLink:
		if s.A == "" || s.B == "" || s.Up == nil {
			return fmt.Errorf("set-link needs a, b and up")
		}
	case OpReloadConfig:
		if s.Device == "" {
			return fmt.Errorf("reload-config needs device")
		}
		if s.FromBaseline == (s.ACL != nil) {
			return fmt.Errorf("reload-config needs exactly one of fromBaseline or acl")
		}
		if s.ACL != nil && (s.ACL.Name == "" || s.ACL.DenySrc == "") {
			return fmt.Errorf("reload-config acl needs name and denySrc")
		}
	case OpAttachDevice:
		nd := s.NewDevice
		if nd == nil || nd.Name == "" || nd.Vendor == "" || len(nd.Peers) == 0 {
			return fmt.Errorf("attach-device needs newDevice{name, vendor, peers}")
		}
		if _, err := parseLayer(nd.Layer); err != nil {
			return err
		}
	case OpInjectPackets:
		if s.From == "" || (s.Dst == "" && s.DstDevice == "") {
			return fmt.Errorf("inject-packets needs from and dst or dstDevice")
		}
	case OpInjectVMFailure:
		if s.Device == "" {
			return fmt.Errorf("inject-vm-failure needs device")
		}
	case OpExec:
		if s.Device == "" || s.Command == "" {
			return fmt.Errorf("exec needs device and command")
		}
	case OpWaitConverge, OpSaveBaseline:
		// No required fields.
	case OpInjectTraffic:
		if s.Traffic == nil {
			return fmt.Errorf("inject-traffic needs traffic")
		}
		if err := s.Traffic.Validate(); err != nil {
			return err
		}
	case OpAssertFlowSLO:
		if s.MaxBlackholedPct == nil && s.MaxLostPct == nil {
			return fmt.Errorf("assert-flow-slo needs maxBlackholedPct or maxLostPct")
		}
		if (s.MaxBlackholedPct != nil && *s.MaxBlackholedPct < 0) ||
			(s.MaxLostPct != nil && *s.MaxLostPct < 0) {
			return fmt.Errorf("assert-flow-slo bounds must be >= 0")
		}
		if s.Window < 0 {
			return fmt.Errorf("assert-flow-slo window must be >= 0")
		}
	case OpSleep:
		if s.Duration <= 0 {
			return fmt.Errorf("sleep needs a positive duration")
		}
	case OpAssertReachable:
		if s.From == "" || (s.Dst == "" && s.DstDevice == "") {
			return fmt.Errorf("assert-reachable needs from and dst or dstDevice")
		}
	case OpAssertFIBDiff, OpAssertNoBlackhole, OpAssertProbe:
		// All fields optional (defaults cover the common case).
	case OpAssertRecoveredWithin:
		if s.Duration <= 0 {
			return fmt.Errorf("assert-recovered-within needs a positive duration")
		}
	case OpAssertSessions:
		if s.Established <= 0 {
			return fmt.Errorf("assert-sessions needs established > 0")
		}
	case OpAssertFIBLookup:
		if s.IP == "" || (s.Device == "" && s.Vendor == "") {
			return fmt.Errorf("assert-fib-lookup needs ip and device or vendor")
		}
	case OpAssertDeviceState:
		if s.Device == "" || s.State == "" {
			return fmt.Errorf("assert-device-state needs device and state")
		}
	default:
		return fmt.Errorf("unknown op %q", s.Op)
	}
	return nil
}

// Validate checks the whole spec.
func (sp *Spec) Validate() error {
	if sp.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if sp.Topology.DC == "" && sp.Topology.Clos == nil {
		return fmt.Errorf("scenario %s: topology needs dc or clos", sp.Name)
	}
	if sp.Topology.DC != "" {
		switch sp.Topology.DC {
		case "sdc", "mdc", "ldc":
		default:
			return fmt.Errorf("scenario %s: unknown dc %q", sp.Name, sp.Topology.DC)
		}
	}
	if len(sp.Emulate) > 0 && (len(sp.MustEmulate) > 0 || len(sp.MustEmulatePods) > 0) {
		return fmt.Errorf("scenario %s: emulate (an exact set) is mutually exclusive with mustEmulate/mustEmulatePods", sp.Name)
	}
	for i := range sp.Invariants {
		inv := &sp.Invariants[i]
		if !inv.IsAssert() {
			return fmt.Errorf("scenario %s: invariant %d: %q is not an assertion", sp.Name, i, inv.Op)
		}
		if err := inv.Validate(); err != nil {
			return fmt.Errorf("scenario %s: invariant %d: %w", sp.Name, i, err)
		}
	}
	if sp.Traffic != nil {
		if err := sp.Traffic.Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", sp.Name, err)
		}
	}
	if len(sp.Steps) == 0 {
		return fmt.Errorf("scenario %s: no steps", sp.Name)
	}
	for i := range sp.Steps {
		if err := sp.Steps[i].Validate(); err != nil {
			return fmt.Errorf("scenario %s: step %d: %w", sp.Name, i, err)
		}
	}
	return nil
}

// Parse decodes and validates a spec from JSON. Unknown fields are
// rejected so typos in hand-written specs fail loudly.
func Parse(data []byte) (*Spec, error) {
	var sp Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return &sp, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	sp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// Clone deep-copies the spec so campaign expansion can append fault steps
// without mutating the base.
func (sp *Spec) Clone() *Spec {
	c := *sp
	c.MustEmulate = append([]string(nil), sp.MustEmulate...)
	c.MustEmulatePods = append([]int(nil), sp.MustEmulatePods...)
	c.Emulate = append([]string(nil), sp.Emulate...)
	if sp.Images != nil {
		c.Images = make(map[string]ImageRef, len(sp.Images))
		for k, v := range sp.Images {
			c.Images[k] = v
		}
	}
	if sp.Topology.Clos != nil {
		cl := *sp.Topology.Clos
		c.Topology.Clos = &cl
	}
	c.Traffic = sp.Traffic.Clone()
	c.Invariants = cloneSteps(sp.Invariants)
	c.Steps = cloneSteps(sp.Steps)
	return &c
}

func cloneSteps(steps []Step) []Step {
	out := append([]Step(nil), steps...)
	for i := range out {
		s := &out[i]
		if s.Up != nil {
			v := *s.Up
			s.Up = &v
		}
		if s.Expect != nil {
			v := *s.Expect
			s.Expect = &v
		}
		if s.ACL != nil {
			a := *s.ACL
			s.ACL = &a
		}
		if s.NewDevice != nil {
			nd := *s.NewDevice
			nd.Peers = append([]string(nil), nd.Peers...)
			nd.Originated = append([]string(nil), nd.Originated...)
			s.NewDevice = &nd
		}
		s.Traffic = s.Traffic.Clone()
		if s.MaxBlackholedPct != nil {
			v := *s.MaxBlackholedPct
			s.MaxBlackholedPct = &v
		}
		if s.MaxLostPct != nil {
			v := *s.MaxLostPct
			s.MaxLostPct = &v
		}
		s.Devices = append([]string(nil), s.Devices...)
	}
	return out
}

// BuildNetwork materializes the spec's fabric (deterministically — the
// chaos layer also calls this at expansion time to enumerate flappable
// links).
func (sp *Spec) BuildNetwork() (*topo.Network, topo.ClosSpec, error) {
	var clos topo.ClosSpec
	switch {
	case sp.Topology.DC == "sdc":
		clos = topo.SDC()
	case sp.Topology.DC == "mdc":
		clos = topo.MDC()
	case sp.Topology.DC == "ldc":
		scale := sp.Topology.LDCScale
		if scale <= 0 {
			scale = 8
		}
		clos = topo.LDCScaled(scale)
	case sp.Topology.Clos != nil:
		c := sp.Topology.Clos
		clos = topo.ClosSpec{
			Name: c.Name, Pods: c.Pods, ToRsPerPod: c.ToRsPerPod,
			LeavesPerPod: c.LeavesPerPod, SpineGroups: c.SpineGroups,
			SpinesPerPlane: c.SpinesPerPlane, BordersPerGroup: c.BordersPerGroup,
			PrefixesPerToR: c.PrefixesPerToR,
		}
	default:
		return nil, clos, fmt.Errorf("scenario %s: no topology", sp.Name)
	}
	n := topo.GenerateClos(clos)
	if w := sp.Topology.WANPerGroup; w > 0 {
		topo.AttachWAN(n, clos, w)
	}
	return n, clos, nil
}

func parseLayer(s string) (topo.Layer, error) {
	switch s {
	case "tor":
		return topo.LayerToR, nil
	case "leaf":
		return topo.LayerLeaf, nil
	case "spine":
		return topo.LayerSpine, nil
	case "border":
		return topo.LayerBorder, nil
	}
	return 0, fmt.Errorf("unknown layer %q (want tor, leaf, spine or border)", s)
}
