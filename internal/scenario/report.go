package scenario

import (
	"encoding/json"
	"fmt"

	"crystalnet/internal/obs"
	"crystalnet/internal/traffic"
)

// Check is the outcome of one assertion — a step's own assert or one
// invariant evaluated at a convergence point.
type Check struct {
	Op     string `json:"op"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail,omitempty"`
}

// StepResult records one executed step: virtual-time cost, pass/fail, and
// the invariant sweep run at its convergence point (wait-converge steps and
// the initial mockup).
type StepResult struct {
	Index int    `json:"index"`
	Op    string `json:"op"`
	Label string `json:"label,omitempty"`
	// Start/End/VirtualLatency are virtual (simulation-clock) times.
	Start          string `json:"start"`
	End            string `json:"end"`
	VirtualLatency string `json:"virtualLatency"`
	Pass           bool   `json:"pass"`
	Detail         string `json:"detail,omitempty"`
	// Diffs carries assert-fib-diff findings (bounded, per-device sorted).
	Diffs []string `json:"diffs,omitempty"`
	// Invariants are the continuous checks swept at this step's
	// convergence point.
	Invariants []Check `json:"invariants,omitempty"`
}

// Report is the structured output of one scenario run. Every field is
// derived from the seeded simulation, so identically-seeded runs marshal
// to byte-identical JSON regardless of scheduling (the chaos layer's
// serial-vs-parallel contract).
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Fabric   string `json:"fabric"`
	// Emulated/Speakers/VMs summarize the mocked-up boundary.
	Emulated int `json:"emulated"`
	Speakers int `json:"speakers"`
	VMs      int `json:"vms"`
	// NetworkReady/RouteReady/MockupLatency are the §8.1 metrics.
	NetworkReady  string `json:"networkReady"`
	RouteReady    string `json:"routeReady"`
	MockupLatency string `json:"mockupLatency"`
	// VirtualDuration is total virtual time from mockup to the last step.
	VirtualDuration string       `json:"virtualDuration"`
	Steps           []StepResult `json:"steps"`
	// Traffic is the per-class flow accounting at the run's last settle,
	// present when the run attached a traffic matrix (spec traffic or an
	// inject-traffic step).
	Traffic *traffic.Report `json:"traffic,omitempty"`
	Passed  bool            `json:"passed"`
	// Alerts are the §6.2 health-monitor alerts raised during the run.
	Alerts []string `json:"alerts,omitempty"`
	// Degraded lists recovery episodes that were abandoned (deadline
	// exceeded, VM gone) and left devices down — the run completed in
	// degraded mode rather than hanging.
	Degraded []string `json:"degraded,omitempty"`
	// PendingFaults counts injected VM faults that were still queued when
	// the run ended — a nonzero value means a fault was lost, and the run
	// is failed regardless of its checks.
	PendingFaults int `json:"pendingFaults,omitempty"`
	// Error is set when the run aborted before completing all steps.
	Error string `json:"error,omitempty"`
}

// JSON marshals the report with stable indentation.
func (r *Report) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		// Reports are plain data; marshaling cannot fail on them.
		panic(fmt.Sprintf("scenario: marshal report: %v", err))
	}
	return append(b, '\n')
}

// Summary renders a one-line human outcome.
func (r *Report) Summary() string {
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	failed := 0
	for i := range r.Steps {
		if !r.Steps[i].Pass {
			failed++
		}
		for _, c := range r.Steps[i].Invariants {
			if !c.Pass {
				failed++
			}
		}
	}
	return fmt.Sprintf("%s: %s (%d steps, %d failed checks, virtual %s)",
		r.Scenario, verdict, len(r.Steps), failed, r.VirtualDuration)
}

// CampaignReport aggregates a chaos campaign's runs in input order.
type CampaignReport struct {
	Scenario string    `json:"scenario"`
	Seed     int64     `json:"seed"`
	Runs     []*Report `json:"runs"`
	Passed   int       `json:"passed"`
	Failed   int       `json:"failed"`
	// Traces holds each run's recorder when CampaignConfig.Trace is set,
	// indexed like Runs. Excluded from the JSON report — export them with
	// obs.WriteChrome (one process per run) or per-run WriteJSON.
	Traces []*obs.Recorder `json:"-"`
}

// JSON marshals the campaign report with stable indentation.
func (c *CampaignReport) JSON() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("scenario: marshal campaign report: %v", err))
	}
	return append(b, '\n')
}
