package scenario

import (
	"bytes"
	"testing"
	"time"

	"crystalnet/internal/parallel"
)

// rehearsalSteps is a broad-surface step mix (link flap, ACL reload +
// rollback, probes, VM kill, FIB diff) used to compare fresh vs forked.
func rehearsalSteps() []Step {
	return []Step{
		{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
		{Op: OpWaitConverge},
		{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(true)},
		{Op: OpWaitConverge},
		{Op: OpReloadConfig, Device: "leaf-p0-0",
			ACL: &ACLPatch{Name: "GUARD", DenySrc: "203.0.113.0/24", BindIngress: true}},
		{Op: OpWaitConverge},
		{Op: OpReloadConfig, Device: "leaf-p0-0", FromBaseline: true},
		{Op: OpWaitConverge},
		{Op: OpInjectPackets, From: "border-g0-0", DstDevice: "tor-p1-0", DstOffset: 9},
		{Op: OpWaitConverge},
		{Op: OpAssertProbe},
		{Op: OpInjectVMFailure, Device: "tor-p0-0"},
		{Op: OpWaitConverge},
		{Op: OpAssertRecoveredWithin, Duration: Duration(5 * time.Minute)},
		{Op: OpAssertFIBDiff},
	}
}

func TestForkedRunMatchesFreshRun(t *testing.T) {
	// The tentpole correctness bar: a forked run's JSON report must be
	// byte-identical to a fresh from-scratch run of the same seeded spec.
	sp := tinySpec(rehearsalSteps()...)
	fresh, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Passed {
		t.Fatalf("fresh run failed:\n%s", fresh.JSON())
	}

	conv, err := Converge(tinySpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	forked, err := conv.Run(tinySpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.JSON(), forked.JSON()) {
		t.Fatalf("forked report differs from fresh run\nfresh:\n%s\nforked:\n%s",
			fresh.JSON(), forked.JSON())
	}
}

func TestConvergedRunsConcurrently(t *testing.T) {
	// One Converged serving parallel forks (the campaign shape) must give
	// every fork the same bytes a serial fork gets; scripts/check.sh runs
	// this under -race.
	conv, err := Converge(tinySpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := conv.Run(tinySpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := parallel.Map(4, 4, func(i int) []byte {
		rep, err := conv.Run(tinySpec(rehearsalSteps()...), Options{})
		if err != nil {
			t.Error(err)
			return nil
		}
		return rep.JSON()
	})
	for i, g := range got {
		if !bytes.Equal(g, want.JSON()) {
			t.Fatalf("concurrent fork %d produced different bytes", i)
		}
	}
}

func TestConvergedRunRejectsMismatches(t *testing.T) {
	conv, err := Converge(tinySpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	other := tinySpec()
	other.Seed = 99
	if _, err := conv.Run(other, Options{}); err == nil {
		t.Fatal("seed mismatch accepted")
	}
	attach := tinySpec(Step{Op: OpAttachDevice, NewDevice: &NewDevice{
		Name: "tor-new", Layer: "tor", Vendor: "ctnra", Peers: []string{"leaf-p0-0", "leaf-p0-1"},
	}})
	if _, err := conv.Run(attach, Options{}); err == nil {
		t.Fatal("attach-device step accepted on a fork")
	}
}

func TestChaosReuseMatchesClassicFaults(t *testing.T) {
	// Reuse keeps the exact fault sequences of a classic campaign (fault
	// draws stay seeded per run) and every run must still pass; only the
	// per-run emulation seed differs by design, so compare structure, not
	// bytes.
	base := tinySpec(Step{Op: OpWaitConverge})
	cfg := CampaignConfig{N: 4, Seed: 42, FaultsPerRun: 3, Workers: 2}
	classic, err := Chaos(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Reuse = true
	reused, err := Chaos(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reused.Passed != classic.Passed || reused.Failed != classic.Failed {
		t.Fatalf("reuse pass/fail %d/%d, classic %d/%d",
			reused.Passed, reused.Failed, classic.Passed, classic.Failed)
	}
	if len(reused.Runs) != len(classic.Runs) {
		t.Fatalf("runs %d vs %d", len(reused.Runs), len(classic.Runs))
	}
	for i := range reused.Runs {
		a, b := reused.Runs[i], classic.Runs[i]
		if a.Scenario != b.Scenario {
			t.Fatalf("run %d name %q vs %q", i, a.Scenario, b.Scenario)
		}
		if len(a.Steps) != len(b.Steps) {
			t.Fatalf("run %d: %d steps vs %d", i, len(a.Steps), len(b.Steps))
		}
		for j := range a.Steps {
			if a.Steps[j].Op != b.Steps[j].Op || a.Steps[j].Label != b.Steps[j].Label {
				t.Fatalf("run %d step %d: %s/%s vs %s/%s — fault sequence changed",
					i, j, a.Steps[j].Op, a.Steps[j].Label, b.Steps[j].Op, b.Steps[j].Label)
			}
		}
		if a.Seed != cfg.Seed {
			t.Fatalf("reuse run %d seed %d, want campaign seed %d", i, a.Seed, cfg.Seed)
		}
	}
}

func TestChaosReuseMatchesFreshRunBytes(t *testing.T) {
	// The fresh==forked chaos contract: every report in a reuse campaign
	// must byte-match a fresh from-scratch Run of the same expanded spec.
	base := tinySpec(Step{Op: OpWaitConverge})
	cfg := CampaignConfig{N: 2, Seed: 11, FaultsPerRun: 2, Workers: 1, Reuse: true}
	camp, err := Chaos(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	net, _, err := base.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	cand, err := faultCandidates(net)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range camp.Runs {
		sp := expandRun(base, cand, i, cfg.Seed, runSeed(cfg.Seed, i), cfg.FaultsPerRun)
		fresh, err := Run(sp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.JSON(), fresh.JSON()) {
			t.Fatalf("reuse run %d differs from fresh run\nreuse:\n%s\nfresh:\n%s",
				i, got.JSON(), fresh.JSON())
		}
	}
}

func TestChaosReuseSerialParallelIdentical(t *testing.T) {
	base := tinySpec(Step{Op: OpWaitConverge})
	serial, err := Chaos(base, CampaignConfig{N: 4, Seed: 21, FaultsPerRun: 2, Workers: 1, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Chaos(base, CampaignConfig{N: 4, Seed: 21, FaultsPerRun: 2, Workers: 4, Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.JSON(), par.JSON()) {
		t.Fatal("reuse campaign not byte-identical across worker counts")
	}
}
