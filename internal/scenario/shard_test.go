package scenario

import (
	"bytes"
	"runtime"
	"testing"
)

// TestShardedRunIdenticalAcrossWorkers is the §10 scale-determinism bar:
// one spec, sharded convergence, worker counts 1/2/4/GOMAXPROCS — every
// report must be byte-identical to the workers=1 reference schedule.
// scripts/check.sh runs this under -race, which also proves the parallel
// domain drains share no unsynchronized state.
func TestShardedRunIdenticalAcrossWorkers(t *testing.T) {
	var want *Report
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		rep, err := Run(tinySpec(rehearsalSteps()...), Options{Shards: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !rep.Passed {
			t.Fatalf("workers=%d run failed:\n%s", w, rep.JSON())
		}
		if want == nil {
			want = rep
			continue
		}
		if !bytes.Equal(rep.JSON(), want.JSON()) {
			t.Fatalf("workers=%d report differs from workers=1 reference\ngot:\n%s\nwant:\n%s",
				w, rep.JSON(), want.JSON())
		}
	}
}

// TestShardedForkMatchesFreshShardedRun extends the fork-equality contract
// (TestForkedRunMatchesFreshRun) to sharded emulations: forking a
// sharded-converged baseline and replaying the steps must reproduce a fresh
// sharded run byte-for-byte — the domain engines' RNG streams and clocks
// cross the checkpoint exactly.
func TestShardedForkMatchesFreshShardedRun(t *testing.T) {
	opts := Options{Shards: 2}
	fresh, err := Run(tinySpec(rehearsalSteps()...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Passed {
		t.Fatalf("fresh sharded run failed:\n%s", fresh.JSON())
	}
	conv, err := Converge(tinySpec(rehearsalSteps()...), opts)
	if err != nil {
		t.Fatal(err)
	}
	forked, err := conv.Run(tinySpec(rehearsalSteps()...), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.JSON(), forked.JSON()) {
		t.Fatalf("sharded fork differs from fresh sharded run\nfresh:\n%s\nforked:\n%s",
			fresh.JSON(), forked.JSON())
	}
}
