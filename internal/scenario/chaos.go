package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"crystalnet/internal/cloud"
	"crystalnet/internal/obs"
	"crystalnet/internal/parallel"
	"crystalnet/internal/topo"
)

// CampaignConfig parameterizes a chaos campaign: N randomized fault
// sequences expanded from one base spec, seeded so the whole campaign is
// reproducible, fanned across cores with the experiment worker pool.
type CampaignConfig struct {
	// N is the number of fault sequences (runs).
	N int
	// Seed seeds the campaign; run i derives its own seed from it, so
	// reports are identical for any worker count.
	Seed int64
	// FaultsPerRun is the number of fault events per sequence (default 6).
	FaultsPerRun int
	// Workers bounds the pool (<= 0 means GOMAXPROCS, 1 means serial).
	Workers int
	// MaxEvents caps each convergence drive (0 = default).
	MaxEvents uint64
	// Reuse converges the base fabric once and forks the checkpoint per
	// run instead of re-converging N times (crystalctl chaos -reuse).
	// Fault sequences and reports are unchanged except for the per-run
	// seed field: every run shares the campaign seed's convergence, and
	// the fault draws keep their own per-run derived seeds.
	Reuse bool
	// Trace gives every run a private obs.Recorder and collects them in
	// CampaignReport.Traces, in run order regardless of worker count —
	// the same determinism contract the reports already have. Under Reuse
	// the shared convergence is traced once and each run's trace starts
	// with a copy of it, exactly as a fresh traced run would look.
	Trace bool
	// MTBF arms seeded random VM failures in every run (Options.MTBF),
	// layering background faults on top of the injected sequences.
	// Incompatible with Reuse: the failure timers are daemon events that
	// cannot cross the shared checkpoint.
	MTBF time.Duration
	// Retry supervises VM boots in every run (Options.Retry).
	Retry cloud.RetryPolicy
	// RecoveryDeadline bounds each recovery episode in every run
	// (Options.RecoveryDeadline).
	RecoveryDeadline time.Duration
	// Cancel, when non-nil, aborts the campaign's runs once it fires
	// (Options.Cancel); already-finished reports are unaffected, in-flight
	// runs tear down and report core.ErrCanceled.
	Cancel <-chan struct{}
}

// runOptions builds one run's Options from the campaign knobs.
func (cfg *CampaignConfig) runOptions() Options {
	opts := Options{
		MaxEvents: cfg.MaxEvents,
		MTBF:      cfg.MTBF, Retry: cfg.Retry, RecoveryDeadline: cfg.RecoveryDeadline,
		Cancel: cfg.Cancel,
	}
	if cfg.Trace {
		opts.Rec = obs.New()
	}
	return opts
}

// tracedReport pairs one run's report with its recorder (nil unless the
// campaign traces). parallel.Map keeps input order, so traces line up with
// runs whatever the worker count.
type tracedReport struct {
	rep *Report
	rec *obs.Recorder
}

// Fault kinds the expander draws from.
const (
	faultLinkFlap = iota
	faultVMKill
	faultPerturbConfig
	numFaultKinds
)

// benignPrefixes are RFC 5737 / benchmarking source ranges no fabric
// device uses: denying them exercises the reload path without changing
// forwarding behaviour, so the end-of-run FIB diff stays clean.
var benignPrefixes = []string{
	"192.0.2.0/24", "198.51.100.0/25", "203.0.113.0/24", "198.18.0.0/15",
}

// runSeed derives run i's seed from the campaign seed (splitmix64-style
// constant keeps neighboring runs decorrelated).
func runSeed(campaignSeed int64, i int) int64 {
	return campaignSeed + int64(i+1)*-0x61c8864680b583eb
}

// Chaos expands the base spec into cfg.N seeded fault sequences and runs
// them across the worker pool. Runs are fully independent — each owns its
// engine, cloud and emulation — so the aggregated report is byte-identical
// no matter how many workers execute it (the determinism contract the
// experiment harness already provides for figures).
func Chaos(base *Spec, cfg CampaignConfig) (*CampaignReport, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if cfg.N <= 0 {
		cfg.N = 20
	}
	if cfg.FaultsPerRun <= 0 {
		cfg.FaultsPerRun = 6
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	// Enumerate fault candidates once, deterministically, from the base
	// fabric (every run rebuilds the same topology).
	net, _, err := base.BuildNetwork()
	if err != nil {
		return nil, err
	}
	cand, err := faultCandidates(net)
	if err != nil {
		return nil, err
	}

	var traces []*tracedReport
	if cfg.Reuse {
		if err := CheckForkable(base, cfg.runOptions()); err != nil {
			return nil, fmt.Errorf("scenario: chaos Reuse: %w", err)
		}
		// Converge the base fabric exactly once, then fork it per run. The
		// emulation seed is the campaign seed for every run (they share one
		// convergence); only the fault draws stay per-run.
		convBase := base.Clone()
		convBase.Seed = cfg.Seed
		// runOptions traces the shared convergence when cfg.Trace; every
		// fork starts from a deep copy of that recorder, so each run's
		// trace is complete.
		conv, err := Converge(convBase, cfg.runOptions())
		if err != nil {
			return nil, err
		}
		traces = parallel.Map(cfg.N, cfg.Workers, func(i int) *tracedReport {
			sp := expandRun(base, cand, i, cfg.Seed, runSeed(cfg.Seed, i), cfg.FaultsPerRun)
			opts := cfg.runOptions()
			rep, err := conv.Run(sp, opts)
			if err != nil {
				return &tracedReport{rep: &Report{Scenario: sp.Name, Seed: cfg.Seed, Error: err.Error()}, rec: opts.Rec}
			}
			return &tracedReport{rep: rep, rec: opts.Rec}
		})
	} else {
		traces = parallel.Map(cfg.N, cfg.Workers, func(i int) *tracedReport {
			seed := runSeed(cfg.Seed, i)
			sp := expandRun(base, cand, i, seed, seed, cfg.FaultsPerRun)
			opts := cfg.runOptions()
			rep, err := Run(sp, opts)
			if err != nil {
				return &tracedReport{rep: &Report{Scenario: sp.Name, Seed: seed, Error: err.Error()}, rec: opts.Rec}
			}
			return &tracedReport{rep: rep, rec: opts.Rec}
		})
	}

	reports := make([]*Report, len(traces))
	out := &CampaignReport{Scenario: base.Name, Seed: cfg.Seed, Runs: reports}
	for i, tr := range traces {
		reports[i] = tr.rep
		if cfg.Trace {
			out.Traces = append(out.Traces, tr.rec)
		}
	}
	for _, r := range reports {
		if r.Passed {
			out.Passed++
		} else {
			out.Failed++
		}
	}
	return out, nil
}

// candidates are the deterministic pools the fault expander draws from.
type candidates struct {
	// links are internal fabric links as [a, b] "device:iface" endpoints.
	links [][2]string
	// killable devices (their hosting VM is failed).
	killable []string
	// perturbable devices (benign ACL reload + rollback).
	perturbable []string
}

// faultCandidates enumerates flappable links and target devices. Only
// fully-internal links qualify: flapping a boundary link would cut a
// speaker's only session and leave the run's final state dependent on the
// fault draw.
func faultCandidates(net *topo.Network) (*candidates, error) {
	c := &candidates{}
	internal := func(l topo.Layer) bool {
		switch l {
		case topo.LayerToR, topo.LayerLeaf, topo.LayerSpine, topo.LayerBorder:
			return true
		}
		return false
	}
	for _, l := range net.Links {
		if internal(l.A.Device.Layer) && internal(l.B.Device.Layer) {
			c.links = append(c.links, [2]string{
				l.A.Device.Name + ":" + l.A.Name,
				l.B.Device.Name + ":" + l.B.Name,
			})
		}
	}
	for _, d := range net.Devices() {
		switch d.Layer {
		case topo.LayerToR, topo.LayerLeaf, topo.LayerSpine, topo.LayerBorder:
			c.killable = append(c.killable, d.Name)
		}
		switch d.Layer {
		case topo.LayerToR, topo.LayerLeaf:
			c.perturbable = append(c.perturbable, d.Name)
		}
	}
	if len(c.links) == 0 || len(c.killable) == 0 || len(c.perturbable) == 0 {
		return nil, fmt.Errorf("scenario: fabric has no chaos fault candidates")
	}
	return c, nil
}

// expandRun derives run i's concrete spec: the base steps, then
// faultsPerRun randomized fault events (each followed by convergence and
// the invariant sweep), then a final FIB diff against the initial baseline
// — every fault in the campaign is repaired, so a clean run ends exactly
// where it started. emSeed seeds the emulation (the spec's seed field);
// faultSeed seeds the fault draws. Classic campaigns pass the same per-run
// seed for both; reuse campaigns share one emulation seed across runs.
func expandRun(base *Spec, cand *candidates, i int, emSeed, faultSeed int64, faultsPerRun int) *Spec {
	sp := base.Clone()
	sp.Name = fmt.Sprintf("%s/run-%03d", base.Name, i)
	sp.Seed = emSeed
	rng := rand.New(rand.NewSource(faultSeed))

	up, down := true, false
	kills := 0
	for f := 0; f < faultsPerRun; f++ {
		switch rng.Intn(numFaultKinds) {
		case faultLinkFlap:
			l := cand.links[rng.Intn(len(cand.links))]
			sp.Steps = append(sp.Steps,
				Step{Op: OpSetLink, Label: fmt.Sprintf("fault %d: flap", f), A: l[0], B: l[1], Up: &down},
				Step{Op: OpWaitConverge},
				Step{Op: OpSetLink, A: l[0], B: l[1], Up: &up},
				Step{Op: OpWaitConverge},
			)
		case faultVMKill:
			dev := cand.killable[rng.Intn(len(cand.killable))]
			kills++
			sp.Steps = append(sp.Steps,
				Step{Op: OpInjectVMFailure, Label: fmt.Sprintf("fault %d: vm-kill", f), Device: dev},
				Step{Op: OpWaitConverge},
				Step{Op: OpAssertRecoveredWithin, Duration: Duration(5 * time.Minute), Recoveries: kills},
			)
		case faultPerturbConfig:
			dev := cand.perturbable[rng.Intn(len(cand.perturbable))]
			pfx := benignPrefixes[rng.Intn(len(benignPrefixes))]
			sp.Steps = append(sp.Steps,
				Step{
					Op: OpReloadConfig, Label: fmt.Sprintf("fault %d: perturb", f), Device: dev,
					ACL: &ACLPatch{Name: "CHAOS-GUARD", DenySrc: pfx, BindIngress: true},
				},
				Step{Op: OpWaitConverge},
				Step{Op: OpReloadConfig, Device: dev, FromBaseline: true},
				Step{Op: OpWaitConverge},
			)
		}
	}
	sp.Steps = append(sp.Steps, Step{
		Op: OpAssertFIBDiff, Label: "campaign epilogue: forwarding state restored",
	})
	return sp
}
