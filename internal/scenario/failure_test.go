package scenario

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"crystalnet/internal/cloud"
)

// mtbfSpec layers background MTBF faults under the driven steps: a long
// sleep lets the seeded failure timers fire, then convergence drives the
// recoveries home before the invariant sweep.
func mtbfSpec() *Spec {
	return tinySpec(
		Step{Op: OpSleep, Duration: Duration(30 * time.Minute)},
		Step{Op: OpWaitConverge},
		Step{Op: OpInjectVMFailure, Device: "tor-p0-0"},
		Step{Op: OpWaitConverge},
		Step{Op: OpSleep, Duration: Duration(30 * time.Minute)},
		Step{Op: OpWaitConverge},
	)
}

// TestMTBFCampaignSerialParallelIdentical is the failure-path chaos
// contract: a campaign with background MTBF faults layered on top of the
// injected sequences completes with zero lost faults, bounded alert
// growth, and byte-identical reports for any worker count.
func TestMTBFCampaignSerialParallelIdentical(t *testing.T) {
	base := mtbfSpec()
	cfg := CampaignConfig{
		N: 4, Seed: 99, FaultsPerRun: 2,
		MTBF:             2 * time.Hour,
		Retry:            cloud.RetryPolicy{MaxAttempts: 3, BootDeadline: 90 * time.Second},
		RecoveryDeadline: 30 * time.Minute,
	}

	cfg.Workers = 1
	serial, err := Chaos(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Chaos(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.JSON(), par.JSON()) {
		t.Fatalf("MTBF campaign reports differ between 1 and 4 workers")
	}
	if serial.Passed+serial.Failed != cfg.N {
		t.Fatalf("campaign lost runs: %d + %d != %d", serial.Passed, serial.Failed, cfg.N)
	}
	background := 0
	for _, r := range serial.Runs {
		if r.PendingFaults != 0 {
			t.Fatalf("%s: %d faults lost:\n%s", r.Scenario, r.PendingFaults, r.JSON())
		}
		if !r.Passed {
			t.Fatalf("%s failed:\n%s", r.Scenario, r.JSON())
		}
		// Every alert must be a discrete recovery-lifecycle event, not an
		// unbounded repeat: with dedup in place a tiny run stays small.
		if len(r.Alerts) > 60 {
			t.Fatalf("%s: %d alerts — unbounded growth", r.Scenario, len(r.Alerts))
		}
		// Background faults raise the same failure alerts as injected ones;
		// any failure alert beyond the injected count came from MTBF.
		injected, failures := 0, 0
		for _, st := range r.Steps {
			if st.Op == string(OpInjectVMFailure) {
				injected++
			}
		}
		for _, a := range r.Alerts {
			if strings.Contains(a, "failed") {
				failures++
			}
		}
		if failures < injected {
			t.Fatalf("%s: %d injected faults but only %d failure alerts — a fault vanished",
				r.Scenario, injected, failures)
		}
		background += failures - injected
	}
	if background == 0 {
		t.Fatal("no background MTBF fault fired in any run; raise the sleep or lower MTBF")
	}
}

// TestChaosReuseRejectsMTBF: daemon failure timers cannot cross the shared
// checkpoint, so the combination must be an explicit error rather than a
// cryptic snapshot failure N runs in.
func TestChaosReuseRejectsMTBF(t *testing.T) {
	base := tinySpec(Step{Op: OpWaitConverge})
	_, err := Chaos(base, CampaignConfig{N: 2, Seed: 1, Reuse: true, MTBF: time.Hour})
	if err == nil || !strings.Contains(err.Error(), "MTBF") {
		t.Fatalf("Chaos(Reuse, MTBF) = %v, want MTBF incompatibility error", err)
	}
}

// TestLostFaultFailsRun ends a run with a fault still queued (injected
// while its VM was mid-reboot, never driven to convergence): the report
// must carry the pending count and fail, not pass silently.
func TestLostFaultFailsRun(t *testing.T) {
	sp := tinySpec(
		Step{Op: OpInjectVMFailure, Device: "tor-p0-0"},
		Step{Op: OpInjectVMFailure, Device: "tor-p0-0"},
	)
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PendingFaults != 1 {
		t.Fatalf("PendingFaults = %d, want 1", rep.PendingFaults)
	}
	if rep.Passed {
		t.Fatalf("run passed with a pending fault:\n%s", rep.JSON())
	}
	if !strings.Contains(rep.Steps[2].Detail, "queued VM failure") {
		t.Fatalf("second inject not reported as queued: %q", rep.Steps[2].Detail)
	}
	// Both steps themselves succeeded — only the lost fault fails the run.
	for _, st := range rep.Steps {
		if !st.Pass {
			t.Fatalf("step %d failed: %s", st.Index, st.Detail)
		}
	}
}

// TestFailurePathByteDeterminism runs the full hardening stack — boot
// supervision, recovery deadlines, background MTBF faults — twice with one
// seed and demands byte-identical reports: the retry layer draws all its
// jitter from the engine stream.
func TestFailurePathByteDeterminism(t *testing.T) {
	opts := Options{
		MTBF:             90 * time.Minute,
		Retry:            cloud.RetryPolicy{MaxAttempts: 2, BootDeadline: 60 * time.Second},
		RecoveryDeadline: 20 * time.Minute,
	}
	a, err := Run(mtbfSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mtbfSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("failure-path runs diverged:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
	if a.PendingFaults != 0 {
		t.Fatalf("%d faults lost under the failure stack", a.PendingFaults)
	}
}
