package scenario

import (
	"bytes"
	"testing"

	"crystalnet/internal/obs"
)

// traceBytes renders both export formats of a recorder; comparing the
// concatenation compares everything the Monitor plane can emit.
func traceBytes(t *testing.T, rec *obs.Recorder) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceDeterminism(t *testing.T) {
	// Two same-seed runs must produce byte-identical trace files: spans are
	// stamped with virtual time and recorded in engine order, both of which
	// the determinism contract already pins.
	run := func() []byte {
		rec := obs.New()
		rep, err := Run(tinySpec(rehearsalSteps()...), Options{Rec: rec})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Passed {
			t.Fatalf("run failed:\n%s", rep.JSON())
		}
		return traceBytes(t, rec)
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same-seed runs produced different trace bytes")
	}
}

func TestTraceSurvivesFork(t *testing.T) {
	// A forked run's trace must be byte-identical to a fresh same-seed
	// run's: the fork deep-copies the recorder at the checkpoint and its
	// engine continues the same virtual clock.
	freshRec := obs.New()
	fresh, err := Run(tinySpec(rehearsalSteps()...), Options{Rec: freshRec})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Passed {
		t.Fatalf("fresh run failed:\n%s", fresh.JSON())
	}

	conv, err := Converge(tinySpec(rehearsalSteps()...), Options{Rec: obs.New()})
	if err != nil {
		t.Fatal(err)
	}
	forkRec := obs.New()
	forked, err := conv.Run(tinySpec(rehearsalSteps()...), Options{Rec: forkRec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.JSON(), forked.JSON()) {
		t.Fatal("forked report differs from fresh run")
	}
	if !bytes.Equal(traceBytes(t, freshRec), traceBytes(t, forkRec)) {
		t.Fatal("forked trace differs from fresh same-seed trace")
	}
}

func TestTraceHasPhaseAndConvergeSpans(t *testing.T) {
	rec := obs.New()
	if _, err := Run(tinySpec(rehearsalSteps()...), Options{Rec: rec}); err != nil {
		t.Fatal(err)
	}
	byTrack := map[string]int{}
	for _, sp := range rec.Spans() {
		byTrack[sp.Track]++
		if sp.End < sp.Start {
			t.Fatalf("span %s/%s ends before it starts", sp.Track, sp.Name)
		}
	}
	for _, track := range []string{"phase", "converge", "boot", "scenario", "engine"} {
		if byTrack[track] == 0 {
			t.Fatalf("no spans on track %q (got %v)", track, byTrack)
		}
	}
	// BGP counters must have accumulated during convergence.
	var total uint64
	for _, d := range []string{"tor-p0-0", "leaf-p0-0"} {
		total += rec.Counter("bgp.msgs_out", d).Value()
	}
	if total == 0 {
		t.Fatal("bgp.msgs_out counters never incremented")
	}
}

func TestChaosTraceDeterminism(t *testing.T) {
	// Traced campaigns keep the serial == parallel contract for the traces
	// too, and Reuse traces must match classic traces of... note: reuse
	// changes per-run emulation seeds, so only serial-vs-parallel equality
	// holds for a given mode.
	base := tinySpec(Step{Op: OpWaitConverge})
	run := func(workers int, reuse bool) [][]byte {
		cfg := CampaignConfig{N: 3, Seed: 5, FaultsPerRun: 2, Workers: workers, Reuse: reuse, Trace: true}
		rep, err := Chaos(base, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Traces) != 3 {
			t.Fatalf("got %d traces, want 3", len(rep.Traces))
		}
		out := make([][]byte, len(rep.Traces))
		for i, rec := range rep.Traces {
			out[i] = traceBytes(t, rec)
		}
		return out
	}
	serial, par := run(1, false), run(3, false)
	for i := range serial {
		if !bytes.Equal(serial[i], par[i]) {
			t.Fatalf("classic campaign: run %d trace differs between serial and parallel", i)
		}
	}
	serialR, parR := run(1, true), run(3, true)
	for i := range serialR {
		if !bytes.Equal(serialR[i], parR[i]) {
			t.Fatalf("reuse campaign: run %d trace differs between serial and parallel", i)
		}
	}
}
