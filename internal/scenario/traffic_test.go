package scenario

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"crystalnet/internal/traffic"
)

// trafficSpec is tinySpec carrying a two-class 100k-flow matrix from the
// start of the run.
func trafficSpec(steps ...Step) *Spec {
	sp := tinySpec(steps...)
	sp.Traffic = &traffic.Spec{Flows: 100_000, Classes: []traffic.ClassSpec{
		{Name: "web", Share: 3, DstPort: 80},
		{Name: "bulk", Share: 1, DstPort: 443},
	}}
	return sp
}

func TestTrafficSettlesThroughRehearsal(t *testing.T) {
	// The full rehearsal under load: the matrix re-settles at every
	// convergence point, and after the last recovery no flow is lost or
	// blackholed — asserted by the new op.
	steps := append(rehearsalSteps(),
		Step{Op: OpAssertFlowSLO, MaxBlackholedPct: floatp(0), MaxLostPct: floatp(0)},
	)
	rep, err := Run(trafficSpec(steps...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("rehearsal under traffic failed:\n%s", rep.JSON())
	}
	tr := rep.Traffic
	if tr == nil {
		t.Fatal("report carries no traffic section")
	}
	if tr.Flows != 100_000 {
		t.Fatalf("flows = %d, want 100000 (exact conservation)", tr.Flows)
	}
	if tr.Settles < 7 {
		t.Fatalf("settles = %d, want one per convergence point (>= 7)", tr.Settles)
	}
	if len(tr.Classes) != 2 {
		t.Fatalf("classes = %+v", tr.Classes)
	}
	var delivered uint64
	for _, c := range tr.Classes {
		delivered += c.Delivered
	}
	if delivered != tr.Flows {
		t.Fatalf("delivered %d of %d flows at final settle:\n%s", delivered, tr.Flows, rep.JSON())
	}
}

func TestInjectTrafficAndSLOCatchesACLLoss(t *testing.T) {
	// inject-traffic mid-run, then a fat-fingered ACL that denies the
	// server range on a transit leaf: assert-flow-slo must fail on lost
	// flows, failing the run.
	sp := tinySpec(
		Step{Op: OpInjectTraffic, Traffic: &traffic.Spec{Flows: 10_000}},
		Step{Op: OpReloadConfig, Device: "leaf-p0-0",
			ACL: &ACLPatch{Name: "OOPS", DenySrc: "100.64.0.0/10", BindIngress: true}},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertFlowSLO, MaxLostPct: floatp(0)},
	)
	// The blanket deny also kills transit probes; the run is expected to
	// fail — the point is *which* checks fail.
	sp.Invariants = nil
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatalf("run passed despite ACL flow loss:\n%s", rep.JSON())
	}
	last := rep.Steps[len(rep.Steps)-1]
	if last.Op != OpAssertFlowSLO || last.Pass {
		t.Fatalf("assert-flow-slo did not fail: %+v", last)
	}
	if !strings.Contains(last.Detail, "flow SLO violated") {
		t.Fatalf("detail = %q", last.Detail)
	}
	if rep.Traffic == nil || rep.Traffic.Classes[0].Lost == 0 {
		t.Fatalf("traffic report does not show the loss:\n%s", rep.JSON())
	}
}

func TestAssertFlowSLOWithoutTrafficFails(t *testing.T) {
	rep, err := Run(tinySpec(
		Step{Op: OpAssertFlowSLO, MaxBlackholedPct: floatp(1)},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatal("assert-flow-slo passed with no traffic attached")
	}
	last := rep.Steps[len(rep.Steps)-1]
	if !strings.Contains(last.Detail, "no traffic attached") {
		t.Fatalf("detail = %q", last.Detail)
	}
}

func TestTrafficReroutesOnLinkFlap(t *testing.T) {
	// Taking a ToR uplink down forces its flows onto the surviving paths;
	// the fingerprint change must surface as rerouted flows.
	rep, err := Run(trafficSpec(
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertFlowSLO, MaxBlackholedPct: floatp(0), Window: Duration(time.Second)},
	), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("flap under traffic failed:\n%s", rep.JSON())
	}
	var rerouted uint64
	for _, c := range rep.Traffic.Classes {
		rerouted += c.Rerouted
	}
	if rerouted == 0 {
		t.Fatalf("no flows counted as rerouted after uplink loss:\n%s", rep.JSON())
	}
}

// TestTrafficIdenticalAcrossWorkers extends the §10 scale-determinism bar
// to the traffic plane: the whole report — traffic section included — must
// be byte-identical across sharded worker counts 1/2/4/GOMAXPROCS.
func TestTrafficIdenticalAcrossWorkers(t *testing.T) {
	var want *Report
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		rep, err := Run(trafficSpec(rehearsalSteps()...), Options{Shards: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !rep.Passed {
			t.Fatalf("workers=%d run failed:\n%s", w, rep.JSON())
		}
		if rep.Traffic == nil {
			t.Fatalf("workers=%d: no traffic section", w)
		}
		if want == nil {
			want = rep
			continue
		}
		if !bytes.Equal(rep.JSON(), want.JSON()) {
			t.Fatalf("workers=%d report differs from workers=1 reference\ngot:\n%s\nwant:\n%s",
				w, rep.JSON(), want.JSON())
		}
	}
}

// TestTrafficIdenticalAcrossShardCounts checks the settle results are a
// function of the converged state alone: unsharded and sharded runs of the
// same spec produce byte-identical traffic sections.
func TestTrafficIdenticalAcrossShardCounts(t *testing.T) {
	var want []byte
	for _, shards := range []int{0, 2, 4} {
		rep, err := Run(trafficSpec(
			Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
			Step{Op: OpWaitConverge},
		), Options{Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !rep.Passed {
			t.Fatalf("shards=%d run failed:\n%s", shards, rep.JSON())
		}
		b, err := json.Marshal(rep.Traffic)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = b
			continue
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("shards=%d traffic section differs\ngot:\n%s\nwant:\n%s", shards, b, want)
		}
	}
}

// TestTrafficForkMatchesFresh proves the matrix crosses checkpoints: a
// forked rehearsal carries its load and reproduces a fresh run under load
// byte-for-byte, including every settle along the way.
func TestTrafficForkMatchesFresh(t *testing.T) {
	fresh, err := Run(trafficSpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Passed {
		t.Fatalf("fresh run failed:\n%s", fresh.JSON())
	}
	conv, err := Converge(trafficSpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	forked, err := conv.Run(trafficSpec(rehearsalSteps()...), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh.JSON(), forked.JSON()) {
		t.Fatalf("forked run under traffic differs from fresh run\nfresh:\n%s\nforked:\n%s",
			fresh.JSON(), forked.JSON())
	}
	if forked.Traffic == nil || forked.Traffic.Flows == 0 {
		t.Fatal("forked run lost its traffic matrix")
	}
}

func TestTrafficSpecValidation(t *testing.T) {
	sp := tinySpec(Step{Op: OpInjectTraffic})
	if err := sp.Validate(); err == nil {
		t.Fatal("inject-traffic without a spec validated")
	}
	sp = tinySpec(Step{Op: OpAssertFlowSLO})
	if err := sp.Validate(); err == nil {
		t.Fatal("assert-flow-slo without bounds validated")
	}
	sp = tinySpec(Step{Op: OpAssertFlowSLO, MaxLostPct: floatp(-1)})
	if err := sp.Validate(); err == nil {
		t.Fatal("negative bound validated")
	}
	sp = trafficSpec()
	sp.Traffic.Flows = 0
	if err := sp.Validate(); err == nil {
		t.Fatal("zero-flow spec traffic validated")
	}
}

func floatp(v float64) *float64 { return &v }
