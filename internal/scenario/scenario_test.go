package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// tinyClos is the smallest fabric that still has redundancy on every tier.
func tinyClos() *ClosSpec {
	return &ClosSpec{
		Name: "tiny", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
}

func tinySpec(steps ...Step) *Spec {
	return &Spec{
		Name: "unit", Seed: 7,
		Topology:   Topology{Clos: tinyClos(), WANPerGroup: 1},
		Invariants: []Step{{Op: OpAssertNoBlackhole}},
		Steps:      steps,
	}
}

func boolp(v bool) *bool { return &v }

func TestRunOperationRehearsal(t *testing.T) {
	// A full rehearsal: link flap, ACL change + rollback, probe, VM
	// failure drill — every convergence point swept by the no-blackhole
	// invariant.
	sp := tinySpec(
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
		Step{Op: OpWaitConverge},
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(true)},
		Step{Op: OpWaitConverge},
		Step{Op: OpReloadConfig, Device: "leaf-p0-0",
			ACL: &ACLPatch{Name: "GUARD", DenySrc: "203.0.113.0/24", BindIngress: true}},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertFIBDiff},
		Step{Op: OpReloadConfig, Device: "leaf-p0-0", FromBaseline: true},
		Step{Op: OpWaitConverge},
		Step{Op: OpInjectPackets, From: "border-g0-0", DstDevice: "tor-p1-0", DstOffset: 9},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertProbe},
		Step{Op: OpAssertReachable, From: "tor-p0-0", DstDevice: "tor-p1-1", DstOffset: 1},
		Step{Op: OpAssertSessions, Vendor: "ctnrb", Established: 2},
		Step{Op: OpExec, Device: "tor-p0-0", Command: "show version", ExpectContains: "running"},
		Step{Op: OpInjectVMFailure, Device: "tor-p0-0"},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertRecoveredWithin, Duration: Duration(5 * time.Minute)},
		Step{Op: OpAssertFIBDiff},
		Step{Op: OpAssertDeviceState, Device: "tor-p0-0", State: "running"},
	)
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("rehearsal failed:\n%s", rep.JSON())
	}
	if len(rep.Steps) != len(sp.Steps)+1 {
		t.Fatalf("got %d step results, want %d", len(rep.Steps), len(sp.Steps)+1)
	}
	// The mockup result and every wait-converge carry the invariant sweep.
	sweeps := 0
	for i := range rep.Steps {
		sweeps += len(rep.Steps[i].Invariants)
	}
	if wantMin := 7; sweeps < wantMin { // mockup + six wait-converge points
		t.Fatalf("only %d invariant evaluations, want >= %d", sweeps, wantMin)
	}
}

func TestRunCatchesFatFingeredACL(t *testing.T) {
	// The pod-upgrade rehearsal's step 2: a typo'd deny 0.0.0.0/2 must
	// surface as an undelivered probe.
	sp := tinySpec(
		Step{Op: OpInjectPackets, From: "border-g0-0", DstDevice: "tor-p0-0", DstOffset: 9},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertProbe},
		Step{Op: OpReloadConfig, Device: "tor-p0-0",
			ACL: &ACLPatch{Name: "TYPO", DenySrc: "0.0.0.0/2", BindIngress: true}},
		Step{Op: OpWaitConverge},
		Step{Op: OpInjectPackets, From: "border-g0-0", DstDevice: "tor-p0-0", DstOffset: 9},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertProbe, Expect: boolp(false)},
	)
	sp.Invariants = nil // the ACL legitimately blackholes the dataplane
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("typo rehearsal should pass (probe expected undelivered):\n%s", rep.JSON())
	}
}

func TestRunAttachDevice(t *testing.T) {
	sp := tinySpec(
		Step{Op: OpAttachDevice, NewDevice: &NewDevice{
			Name: "tor-p0-new", Layer: "tor", Vendor: "ctnrb",
			Peers:      []string{"leaf-p0-0", "leaf-p0-1"},
			Originated: []string{"10.210.0.0/24"},
		}},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertSessions, Devices: []string{"tor-p0-new"}, Established: 2},
		Step{Op: OpAssertReachable, From: "border-g0-0", DstDevice: "tor-p0-new", DstOffset: 1},
	)
	// Attaching a rack changes forwarding state by design; drop the
	// baseline-diff invariant but keep reachability.
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("attach rehearsal failed:\n%s", rep.JSON())
	}
}

func TestRunDeterministicReports(t *testing.T) {
	sp := tinySpec(
		Step{Op: OpInjectVMFailure, Device: "leaf-p1-0"},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertRecoveredWithin, Duration: Duration(5 * time.Minute)},
		Step{Op: OpAssertFIBDiff},
	)
	a, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sp.Clone(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.JSON(), b.JSON()) {
		t.Fatalf("identically-seeded runs diverged:\n%s\nvs\n%s", a.JSON(), b.JSON())
	}
}

func TestChaosSerialParallelIdentical(t *testing.T) {
	base := tinySpec(Step{Op: OpWaitConverge})
	cfg := CampaignConfig{N: 6, Seed: 42, FaultsPerRun: 3}

	cfg.Workers = 1
	serial, err := Chaos(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Chaos(base.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.JSON(), par.JSON()) {
		t.Fatalf("serial and parallel campaign reports differ")
	}
	if serial.Passed+serial.Failed != cfg.N {
		t.Fatalf("campaign lost runs: %d passed + %d failed != %d",
			serial.Passed, serial.Failed, cfg.N)
	}
	if serial.Failed != 0 {
		t.Fatalf("chaos campaign had failing runs:\n%s", serial.JSON())
	}
}

// TestSmoke is the check.sh -race smoke: the smallest useful spec, one
// fault, one invariant sweep.
func TestSmoke(t *testing.T) {
	sp := tinySpec(
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
		Step{Op: OpWaitConverge},
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(true)},
		Step{Op: OpWaitConverge},
		Step{Op: OpAssertFIBDiff},
	)
	rep, err := Run(sp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("smoke failed:\n%s", rep.JSON())
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"no name", func(sp *Spec) { sp.Name = "" }},
		{"no topology", func(sp *Spec) { sp.Topology = Topology{} }},
		{"bad dc", func(sp *Spec) { sp.Topology = Topology{DC: "xdc"} }},
		{"no steps", func(sp *Spec) { sp.Steps = nil }},
		{"bad op", func(sp *Spec) { sp.Steps = []Step{{Op: "explode"}} }},
		{"set-link missing up", func(sp *Spec) { sp.Steps = []Step{{Op: OpSetLink, A: "a:b", B: "c:d"}} }},
		{"reload both modes", func(sp *Spec) {
			sp.Steps = []Step{{Op: OpReloadConfig, Device: "d", FromBaseline: true,
				ACL: &ACLPatch{Name: "x", DenySrc: "10.0.0.0/8"}}}
		}},
		{"non-assert invariant", func(sp *Spec) { sp.Invariants = []Step{{Op: OpWaitConverge}} }},
		{"attach bad layer", func(sp *Spec) {
			sp.Steps = []Step{{Op: OpAttachDevice, NewDevice: &NewDevice{
				Name: "x", Layer: "blimp", Vendor: "ctnrb", Peers: []string{"y"}}}}
		}},
	}
	for _, tc := range cases {
		sp := tinySpec(Step{Op: OpWaitConverge})
		tc.mut(sp)
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","topology":{"dc":"sdc"},"steps":[{"op":"wait-converge"}],"typo":1}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestDurationJSON(t *testing.T) {
	var d Duration
	if err := json.Unmarshal([]byte(`"90s"`), &d); err != nil {
		t.Fatal(err)
	}
	if d.Std() != 90*time.Second {
		t.Fatalf("parsed %s, want 90s", d.Std())
	}
	b, err := json.Marshal(Duration(45 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"45s"` {
		t.Fatalf("marshaled %s, want \"45s\"", b)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	sp := tinySpec(
		Step{Op: OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
		Step{Op: OpWaitConverge},
	)
	data, err := json.MarshalIndent(sp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := json.MarshalIndent(back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip drifted:\n%s\nvs\n%s", data, data2)
	}
}
