package scenario

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"crystalnet/internal/batfish"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/core"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/rib"
	"crystalnet/internal/telemetry"
	"crystalnet/internal/topo"
	"crystalnet/internal/traffic"
	"crystalnet/internal/vendors"
)

// Probe defaults: traceroute-style UDP with a generous TTL, one packet.
const (
	probePort     = 33434
	probeTTL      = 32
	probeInterval = time.Millisecond
	// defaultMaxEvents caps one convergence drive (same default as
	// Emulation.RunUntilConverged).
	defaultMaxEvents = 500_000_000
	// maxDetail bounds per-check failure listings in reports.
	maxDetail = 5
)

// Options tune a single scenario run.
type Options struct {
	// SeedOverride replaces the spec's seed when non-nil (campaigns use it
	// to derive per-run seeds).
	SeedOverride *int64
	// Images overrides/extends the spec's image pins — the firmware-
	// validation pipeline sweeps dev builds through one spec this way.
	Images map[string]ImageRef
	// MaxEvents caps each convergence drive (0 = default).
	MaxEvents uint64
	// Rec enables the Monitor plane's tracer for this run
	// (docs/OBSERVABILITY.md). On a fresh Run it becomes the emulation's
	// recorder; on Converged.Run it adopts the fork's recorder — including
	// everything the shared convergence recorded — so the caller's handle
	// always holds the run's complete trace.
	Rec *obs.Recorder
	// MTBF arms seeded random VM failures on every provisioned VM
	// (core.Options.MTBF); zero disables them. The failure timers are
	// daemon events, so convergence drives still terminate with them
	// armed — but they preclude checkpointing (Converge rejects it).
	MTBF time.Duration
	// Retry supervises VM boots with per-attempt deadlines, backoff and
	// replacement (core.Options.Retry). The zero value reproduces
	// unsupervised boots byte-for-byte.
	Retry cloud.RetryPolicy
	// RecoveryDeadline bounds each VM-failure recovery episode
	// (core.Options.RecoveryDeadline); zero means unbounded. Episodes
	// that exceed it are abandoned into the report's Degraded list.
	RecoveryDeadline time.Duration
	// Cancel, when non-nil, aborts the run once the channel fires: between
	// steps and — via core.Emulation.SetCancel — mid-convergence. The
	// abandoned emulation is torn down deterministically (events dropped,
	// firmware stopped, VMs cleared) before the run returns
	// core.ErrCanceled. The serving path (internal/serve) wires a request
	// context's Done channel here; nil leaves runs uncancelable and
	// byte-identical to before.
	Cancel <-chan struct{}
	// Shards, when positive, runs convergence sharded across one domain
	// per VM with this many worker goroutines (core.Options.Shards).
	// Reports are byte-identical across positive values; 0 keeps the
	// classic single-engine schedule, whose event order (and therefore
	// report bytes) differs from any sharded run.
	Shards int
}

// runner executes one spec against one emulation.
type runner struct {
	sp   *Spec
	opts Options

	orch *core.Orchestrator
	em   *core.Emulation
	net  *topo.Network

	// origConfigs are the post-mockup device configurations; reload-config
	// patches clone from here and fromBaseline rolls back to here.
	origConfigs map[string]*config.DeviceConfig
	baselines   map[string]*core.State
	lastFlow    uint64

	report *Report
}

// Run executes a validated spec from scratch: build the fabric, mock up
// the emulation, then drive every step on the simulation clock, sweeping
// the spec's invariants at each convergence point. The returned report is
// fully determined by (spec, seed): identically-seeded runs produce
// byte-identical JSON.
func Run(sp *Spec, opts Options) (*Report, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	seed := resolveSeed(sp, opts)

	r := &runner{
		sp: sp, opts: opts,
		origConfigs: map[string]*config.DeviceConfig{},
		baselines:   map[string]*core.State{},
		report:      &Report{Scenario: sp.Name, Seed: seed},
	}
	if err := r.mockup(seed); err != nil {
		return nil, err
	}
	return r.drive()
}

// canceled reports whether the run's cancel channel has fired.
func (r *runner) canceled() bool {
	if r.opts.Cancel == nil {
		return false
	}
	select {
	case <-r.opts.Cancel:
		return true
	default:
		return false
	}
}

// abort tears the abandoned emulation down deterministically and returns
// the cancellation error the caller propagates.
func (r *runner) abort() error {
	r.em.Teardown()
	return fmt.Errorf("scenario %s: %w", r.sp.Name, core.ErrCanceled)
}

// drive executes every spec step against the runner's emulation and seals
// the report — the shared back half of Run and Converged.Run. A canceled
// run tears the emulation down and returns core.ErrCanceled instead of a
// report.
func (r *runner) drive() (*Report, error) {
	rec := r.orch.Eng.Recorder()
	for i := range r.sp.Steps {
		if r.canceled() {
			return nil, r.abort()
		}
		st := &r.sp.Steps[i]
		res := StepResult{Index: i + 1, Op: st.Op, Label: st.Label}
		start := r.orch.Eng.Now()
		res.Start = start.String()
		r.step(st, &res)
		end := r.orch.Eng.Now()
		res.End = end.String()
		res.VirtualLatency = end.Sub(start).String()
		if rec != nil {
			name := string(st.Op)
			if st.Label != "" {
				name = st.Label
			}
			rec.SpanAt("scenario", name, int64(start), int64(end),
				obs.Attr{K: "step", V: fmt.Sprint(res.Index)},
				obs.Attr{K: "pass", V: fmt.Sprint(res.Pass)})
		}
		r.report.Steps = append(r.report.Steps, res)
	}
	if r.canceled() {
		return nil, r.abort()
	}

	r.report.VirtualDuration = r.orch.Eng.Now().Sub(r.em.MockupStart).String()
	r.report.Traffic = r.em.Traffic().Report()
	r.report.Alerts = append([]string(nil), r.em.Alerts...)
	r.report.Degraded = append([]string(nil), r.em.Degraded()...)
	r.report.PendingFaults = r.em.FaultsPending()
	r.report.Passed = r.passed()
	return r.report, nil
}

// passed folds every step and invariant outcome. A fault still pending at
// the end of the run means an injected failure never fired — a lost fault
// must fail the run rather than pass silently.
func (r *runner) passed() bool {
	if r.report.Error != "" {
		return false
	}
	if r.report.PendingFaults > 0 {
		return false
	}
	for i := range r.report.Steps {
		if !r.report.Steps[i].Pass {
			return false
		}
		for _, c := range r.report.Steps[i].Invariants {
			if !c.Pass {
				return false
			}
		}
	}
	return true
}

// mockup builds the fabric and drives the emulation to route-ready,
// recording the synthetic step-0 result with the §8.1 metrics and the
// first invariant sweep.
func (r *runner) mockup(seed int64) error {
	net, clos, err := r.sp.BuildNetwork()
	if err != nil {
		return err
	}
	r.net = net
	r.report.Fabric = clos.Name

	images := map[string]firmware.VendorImage{}
	addImage := func(vendor string, ref ImageRef) error {
		name := ref.Name
		if name == "" {
			name = vendor
		}
		var img firmware.VendorImage
		var err error
		if ref.Version == "" {
			img, err = vendors.Default(name)
		} else {
			img, err = vendors.Get(name, ref.Version)
		}
		if err != nil {
			return fmt.Errorf("scenario %s: image %s: %w", r.sp.Name, vendor, err)
		}
		images[vendor] = img
		return nil
	}
	for vendor, ref := range r.sp.Images {
		if err := addImage(vendor, ref); err != nil {
			return err
		}
	}
	for vendor, ref := range r.opts.Images {
		if err := addImage(vendor, ref); err != nil {
			return err
		}
	}

	must := append([]string(nil), r.sp.MustEmulate...)
	for _, pod := range r.sp.MustEmulatePods {
		for _, d := range net.DevicesInPod(pod) {
			must = append(must, d.Name)
		}
	}

	r.orch = core.New(core.Options{
		Seed: seed, Rec: r.opts.Rec,
		MTBF: r.opts.MTBF, Retry: r.opts.Retry, RecoveryDeadline: r.opts.RecoveryDeadline,
		Shards: r.opts.Shards,
	})
	prep, err := r.orch.Prepare(core.PrepareInput{
		Network: net, MustEmulate: must, Emulate: r.sp.Emulate, Images: images,
	})
	if err != nil {
		return err
	}
	if prep.SafetyErr != nil {
		return fmt.Errorf("scenario %s: boundary unsafe: %w", r.sp.Name, prep.SafetyErr)
	}
	em, err := r.orch.Mockup(prep, false)
	if err != nil {
		return err
	}
	r.em = em
	if r.opts.Cancel != nil {
		em.SetCancel(r.opts.Cancel)
	}

	res := StepResult{Index: 0, Op: "mockup", Start: r.orch.Eng.Now().String(), Pass: true}
	metrics, err := em.RunUntilConverged(r.maxEvents(0))
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			return r.abort()
		}
		return fmt.Errorf("scenario %s: mockup did not converge: %w", r.sp.Name, err)
	}
	scale := prep.Plan.Scale()
	r.report.Emulated = scale.TotalEmulated
	r.report.Speakers = scale.Speakers
	r.report.VMs = len(prep.VMs())
	r.report.NetworkReady = metrics.NetworkReady.String()
	r.report.RouteReady = metrics.RouteReady.String()
	r.report.MockupLatency = metrics.Mockup.String()

	for name, d := range em.Devices {
		r.origConfigs[name] = d.Config().Clone()
	}
	r.baselines[DefaultBaseline] = em.Save()

	// Attach the spec's traffic matrix at the converged baseline, before
	// the first invariant sweep: assert-flow-slo invariants see settled
	// traffic from convergence point zero onward.
	if r.sp.Traffic != nil {
		if err := r.attachTraffic(r.sp.Traffic, seed); err != nil {
			return fmt.Errorf("scenario %s: traffic: %w", r.sp.Name, err)
		}
	}

	res.End = r.orch.Eng.Now().String()
	res.VirtualLatency = metrics.Mockup.String()
	res.Detail = fmt.Sprintf("%d devices emulated, %d speakers, %d VMs",
		scale.TotalEmulated, scale.Speakers, r.report.VMs)
	r.sweepInvariants(&res)
	r.report.Steps = append(r.report.Steps, res)
	return nil
}

func (r *runner) maxEvents(stepCap uint64) uint64 {
	if stepCap > 0 {
		return stepCap
	}
	if r.opts.MaxEvents > 0 {
		return r.opts.MaxEvents
	}
	return defaultMaxEvents
}

// sweepInvariants evaluates every spec invariant into res — the continuous
// checking done at each convergence point.
func (r *runner) sweepInvariants(res *StepResult) {
	for i := range r.sp.Invariants {
		res.Invariants = append(res.Invariants, r.check(&r.sp.Invariants[i]))
	}
}

// step executes one step, filling res. Control-op errors mark the step
// failed but do not abort the run: a rehearsal wants the full trajectory.
func (r *runner) step(st *Step, res *StepResult) {
	if st.IsAssert() {
		c := r.check(st)
		res.Pass, res.Detail = c.Pass, c.Detail
		if st.Op == OpAssertFIBDiff {
			res.Diffs = r.fibDiffStrings(st)
		}
		return
	}
	res.Pass = true
	fail := func(format string, args ...any) {
		res.Pass = false
		res.Detail = fmt.Sprintf(format, args...)
	}

	switch st.Op {
	case OpSetLink:
		da, ia, err := splitEndpoint(st.A)
		if err != nil {
			fail("%v", err)
			return
		}
		db, ib, err := splitEndpoint(st.B)
		if err != nil {
			fail("%v", err)
			return
		}
		if err := r.em.SetLink(da, ia, db, ib, *st.Up); err != nil {
			fail("%v", err)
			return
		}
		state := "down"
		if *st.Up {
			state = "up"
		}
		res.Detail = fmt.Sprintf("%s <-> %s %s", st.A, st.B, state)

	case OpReloadConfig:
		orig := r.origConfigs[st.Device]
		if orig == nil {
			fail("no baseline configuration for %q", st.Device)
			return
		}
		cfg := orig.Clone()
		if st.ACL != nil {
			if err := applyACLPatch(cfg, st.ACL); err != nil {
				fail("%v", err)
				return
			}
			res.Detail = fmt.Sprintf("%s: ACL %s deny %s", st.Device, st.ACL.Name, st.ACL.DenySrc)
		} else {
			res.Detail = fmt.Sprintf("%s: rollback to baseline", st.Device)
		}
		if err := r.em.ReloadDevice(st.Device, cfg, nil); err != nil {
			fail("%v", err)
		}

	case OpAttachDevice:
		if err := r.attachDevice(st.NewDevice); err != nil {
			fail("%v", err)
			return
		}
		res.Detail = fmt.Sprintf("attached %s (%s) to %s",
			st.NewDevice.Name, st.NewDevice.Vendor, strings.Join(st.NewDevice.Peers, ", "))

	case OpInjectPackets:
		dev := r.em.Devices[st.From]
		if dev == nil {
			fail("no device %q", st.From)
			return
		}
		dst, err := r.resolveDst(st)
		if err != nil {
			fail("%v", err)
			return
		}
		count := st.Count
		if count <= 0 {
			count = 1
		}
		interval := st.Interval.Std()
		if interval <= 0 {
			interval = probeInterval
		}
		flow, err := r.em.InjectPackets(st.From, dataplane.PacketMeta{
			Src: dev.Config().Loopback.Addr, Dst: dst,
			Proto: netpkt.ProtoUDP, SrcPort: probePort, DstPort: probePort,
			TTL: probeTTL,
		}, count, interval)
		if err != nil {
			fail("%v", err)
			return
		}
		r.lastFlow = flow
		res.Detail = fmt.Sprintf("%d probe(s) %s -> %s", count, st.From, dst)

	case OpInjectVMFailure:
		vm := r.em.VMName(st.Device)
		outcome, err := r.em.InjectVMFailure(st.Device)
		if err != nil {
			fail("%v", err)
			return
		}
		if outcome == core.FaultQueued {
			// The VM is mid-boot or mid-recovery: the fault is armed to
			// fire on its next Running transition, and the report's
			// PendingFaults tally keeps it visible until it does.
			res.Detail = fmt.Sprintf("queued VM failure for %s (hosting %s)", vm, st.Device)
		} else {
			res.Detail = fmt.Sprintf("failed VM %s (hosting %s)", vm, st.Device)
		}

	case OpExec:
		s, err := r.em.Login(st.Device)
		if err != nil {
			fail("%v", err)
			return
		}
		out, err := s.Exec(st.Command)
		if err != nil {
			fail("%v", err)
			return
		}
		if st.ExpectContains != "" && !strings.Contains(out, st.ExpectContains) {
			fail("output of %q missing %q", st.Command, st.ExpectContains)
			return
		}
		res.Detail = fmt.Sprintf("%s: %s (%d bytes)", st.Device, st.Command, len(out))

	case OpWaitConverge:
		before := r.orch.Eng.Fired()
		if _, err := r.em.RunUntilConverged(r.maxEvents(st.MaxEvents)); err != nil {
			fail("%v", err)
			return
		}
		res.Detail = fmt.Sprintf("%d events", r.orch.Eng.Fired()-before)
		r.sweepInvariants(res)

	case OpSleep:
		r.orch.Eng.RunFor(st.Duration.Std())
		res.Detail = fmt.Sprintf("slept %s", st.Duration.Std())

	case OpSaveBaseline:
		name := st.Baseline
		if name == "" {
			name = DefaultBaseline
		}
		r.baselines[name] = r.em.Save()
		res.Detail = fmt.Sprintf("saved baseline %q", name)

	case OpInjectTraffic:
		if err := r.attachTraffic(st.Traffic, r.report.Seed); err != nil {
			fail("%v", err)
			return
		}
		m := r.em.Traffic()
		res.Detail = fmt.Sprintf("%d flows in %d aggregates settled", m.Flows(), m.Aggregates())

	default:
		fail("unknown op %q", st.Op)
	}
}

// attachTraffic attaches a flow matrix to the emulation, defaulting its
// seed to the run seed so an unseeded traffic block still yields the
// deterministic, campaign-reproducible placement the report contract
// promises.
func (r *runner) attachTraffic(spec *traffic.Spec, seed int64) error {
	sp := *spec.Clone()
	if sp.Seed == 0 {
		sp.Seed = seed
	}
	return r.em.AttachTraffic(sp)
}

// attachDevice grows the topology and the running emulation (the new-rack
// rehearsal): add the device and its links, boot it, and reload each peer
// with a regenerated configuration so it learns the new sessions — exactly
// the operator workflow in production.
func (r *runner) attachDevice(nd *NewDevice) error {
	layer, err := parseLayer(nd.Layer)
	if err != nil {
		return err
	}
	if r.net.Device(nd.Name) != nil {
		return fmt.Errorf("device %q already in topology", nd.Name)
	}
	for _, peer := range nd.Peers {
		if r.em.Devices[peer] == nil {
			return fmt.Errorf("peer %q is not emulated", peer)
		}
	}
	asn := nd.ASN
	if asn == 0 {
		asn = topo.ToRAS(r.net.NumDevices())
	}
	d := r.net.AddDevice(nd.Name, layer, asn, nd.Vendor)
	for _, p := range nd.Originated {
		pfx, err := netpkt.ParsePrefix(p)
		if err != nil {
			return fmt.Errorf("originated %q: %w", p, err)
		}
		d.Originated = append(d.Originated, pfx)
	}
	for _, peer := range nd.Peers {
		r.net.Connect(d, r.net.MustDevice(peer))
	}
	var img firmware.VendorImage
	if nd.Version == "" {
		img, err = vendors.Default(nd.Vendor)
	} else {
		img, err = vendors.Get(nd.Vendor, nd.Version)
	}
	if err != nil {
		return err
	}
	if err := r.em.AttachNewDevice(nd.Name, img, nil, nil); err != nil {
		return err
	}
	// Neighbors learn the new sessions via operator reloads, as in
	// production (§3.2).
	for _, peer := range nd.Peers {
		cur := r.em.Devices[peer].Config()
		cfg := config.GenerateDevice(r.net.MustDevice(peer))
		cfg.Credential = cur.Credential
		if err := r.em.ReloadDevice(peer, cfg, nil); err != nil {
			return err
		}
	}
	return nil
}

// resolveDst resolves a step's probe destination: a literal IP or an
// offset into a device's first originated server prefix.
func (r *runner) resolveDst(st *Step) (netpkt.IP, error) {
	if st.Dst != "" {
		ip, err := netpkt.ParseIP(st.Dst)
		if err != nil {
			return 0, fmt.Errorf("dst %q: %w", st.Dst, err)
		}
		return ip, nil
	}
	d := r.net.Device(st.DstDevice)
	if d == nil {
		return 0, fmt.Errorf("dstDevice %q not in topology", st.DstDevice)
	}
	if len(d.Originated) == 0 {
		return 0, fmt.Errorf("dstDevice %q originates no prefixes", st.DstDevice)
	}
	return d.Originated[0].Addr + netpkt.IP(st.DstOffset), nil
}

// check evaluates one assertion against current emulation state.
func (r *runner) check(st *Step) Check {
	c := Check{Op: st.Op, Pass: true}
	fail := func(format string, args ...any) {
		c.Pass = false
		c.Detail = fmt.Sprintf(format, args...)
	}

	switch st.Op {
	case OpAssertReachable:
		dst, err := r.resolveDst(st)
		if err != nil {
			fail("%v", err)
			return c
		}
		path, ok := batfish.Reachable(r.em.PullFIBs(), r.liveConfigs(), st.From, dst)
		want := st.Expect == nil || *st.Expect
		if ok != want {
			fail("reachable(%s -> %s) = %v, want %v (path %s)",
				st.From, dst, ok, want, strings.Join(path, " -> "))
		} else {
			c.Detail = fmt.Sprintf("%s -> %s via %d hops", st.From, dst, len(path))
		}

	case OpAssertFIBDiff:
		diffs := r.fibDiffs(st)
		total := 0
		for _, d := range diffs {
			total += len(d)
		}
		if total > st.MaxDiffs {
			names := make([]string, 0, len(diffs))
			for n := range diffs {
				names = append(names, n)
			}
			sort.Strings(names)
			if len(names) > maxDetail {
				names = names[:maxDetail]
			}
			fail("%d FIB differences vs baseline %q (max %d) on %s",
				total, r.baselineName(st), st.MaxDiffs, strings.Join(names, ", "))
		} else {
			c.Detail = fmt.Sprintf("%d differences (max %d)", total, st.MaxDiffs)
		}

	case OpAssertNoBlackhole:
		failures := r.blackholes(st)
		if len(failures) > 0 {
			shown := failures
			if len(shown) > maxDetail {
				shown = shown[:maxDetail]
			}
			fail("%d blackholed pairs: %s", len(failures), strings.Join(shown, "; "))
		} else {
			c.Detail = "all server prefixes reachable"
		}

	case OpAssertRecoveredWithin:
		rec := r.em.Recoveries()
		min := st.Recoveries
		if min <= 0 {
			min = 1
		}
		if len(rec) < min {
			fail("%d recoveries recorded, want >= %d", len(rec), min)
			return c
		}
		var worst time.Duration
		for _, d := range rec {
			if d > worst {
				worst = d
			}
		}
		if worst > st.Duration.Std() {
			fail("slowest recovery %s exceeds bound %s", worst, st.Duration.Std())
		} else {
			c.Detail = fmt.Sprintf("%d recoveries, slowest %s (bound %s)",
				len(rec), worst, st.Duration.Std())
		}

	case OpAssertProbe:
		paths := r.probePaths()
		want := st.Expect == nil || *st.Expect
		if len(paths) == 0 {
			fail("no probe paths captured (inject-packets + wait-converge first)")
			return c
		}
		var rendered []string
		ok := true
		for _, p := range paths {
			if p.Delivered != want {
				ok = false
			}
			if len(rendered) < maxDetail {
				rendered = append(rendered, p.String())
			}
		}
		if !ok {
			fail("probe delivery != %v: %s", want, strings.Join(rendered, "; "))
		} else {
			c.Detail = strings.Join(rendered, "; ")
		}

	case OpAssertSessions:
		states := r.em.PullStates()
		names := r.filterDevices(st.Devices, st.Vendor)
		var bad []string
		for _, name := range names {
			if got := states[name].Established; got != st.Established {
				bad = append(bad, fmt.Sprintf("%s=%d", name, got))
			}
		}
		if len(bad) > 0 {
			if len(bad) > maxDetail {
				bad = bad[:maxDetail]
			}
			fail("sessions != %d on %s", st.Established, strings.Join(bad, ", "))
		} else {
			c.Detail = fmt.Sprintf("%d devices at %d established sessions", len(names), st.Established)
		}

	case OpAssertFIBLookup:
		ip, err := netpkt.ParseIP(st.IP)
		if err != nil {
			fail("ip %q: %v", st.IP, err)
			return c
		}
		want := st.Expect == nil || *st.Expect
		var names []string
		if st.Device != "" {
			names = []string{st.Device}
		} else {
			names = r.filterDevices(st.Devices, st.Vendor)
		}
		var bad []string
		for _, name := range names {
			d := r.em.Devices[name]
			if d == nil || d.FIB() == nil {
				bad = append(bad, name+"=no-fib")
				continue
			}
			if _, ok := d.FIB().Lookup(ip); ok != want {
				bad = append(bad, fmt.Sprintf("%s=%v", name, ok))
			}
		}
		if len(bad) > 0 {
			if len(bad) > maxDetail {
				bad = bad[:maxDetail]
			}
			fail("lookup(%s) != %v on %s", st.IP, want, strings.Join(bad, ", "))
		} else {
			c.Detail = fmt.Sprintf("%d devices route %s", len(names), st.IP)
		}

	case OpAssertDeviceState:
		d := r.em.Devices[st.Device]
		if d == nil {
			fail("no device %q", st.Device)
			return c
		}
		if got := d.State().String(); got != st.State {
			fail("%s state %s, want %s", st.Device, got, st.State)
		} else {
			c.Detail = fmt.Sprintf("%s is %s", st.Device, st.State)
		}

	case OpAssertFlowSLO:
		m := r.em.Traffic()
		if m == nil || m.Settles() == 0 {
			fail("no traffic attached (spec traffic or inject-traffic first)")
			return c
		}
		slo := m.SLO(st.Window.Std())
		var bad []string
		if st.MaxBlackholedPct != nil && slo.BlackholedPct > *st.MaxBlackholedPct {
			bad = append(bad, fmt.Sprintf("blackholed %.3f%% > %.3f%%", slo.BlackholedPct, *st.MaxBlackholedPct))
		}
		if st.MaxLostPct != nil && slo.LostPct > *st.MaxLostPct {
			bad = append(bad, fmt.Sprintf("lost %.3f%% > %.3f%%", slo.LostPct, *st.MaxLostPct))
		}
		if len(bad) > 0 {
			fail("flow SLO violated (window %s): %s", st.Window.Std(), strings.Join(bad, ", "))
		} else {
			c.Detail = fmt.Sprintf("blackholed %.3f%%, lost %.3f%% within SLO (window %s)",
				slo.BlackholedPct, slo.LostPct, st.Window.Std())
		}

	default:
		fail("unknown assertion %q", st.Op)
	}
	return c
}

// baselineName resolves a step's baseline reference.
func (r *runner) baselineName(st *Step) string {
	if st.Baseline != "" {
		return st.Baseline
	}
	return DefaultBaseline
}

// fibDiffs compares the current FIBs against the referenced baseline,
// optionally scoped to named devices.
func (r *runner) fibDiffs(st *Step) map[string][]rib.Diff {
	base := r.baselines[r.baselineName(st)]
	if base == nil {
		return map[string][]rib.Diff{"<missing-baseline>": {{}}}
	}
	diffs := r.em.DiffAgainst(base)
	if len(st.Devices) > 0 {
		scope := map[string]bool{}
		for _, d := range st.Devices {
			scope[d] = true
		}
		for name := range diffs {
			if !scope[name] {
				delete(diffs, name)
			}
		}
	}
	return diffs
}

// fibDiffStrings renders bounded, deterministic diff lines for the report.
func (r *runner) fibDiffStrings(st *Step) []string {
	diffs := r.fibDiffs(st)
	names := make([]string, 0, len(diffs))
	for n := range diffs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		for _, d := range diffs[name] {
			if len(out) >= 2*maxDetail {
				out = append(out, "...")
				return out
			}
			out = append(out, fmt.Sprintf("%s: %s", name, d))
		}
	}
	return out
}

// liveConfigs returns the active per-device configurations for FIB walks.
// The prepared-config snapshot goes stale after reload-config and
// attach-device (hot-added peering interfaces live only in the running
// firmware's config), so reachability must resolve next hops against what
// each device is running now.
func (r *runner) liveConfigs() map[string]*config.DeviceConfig {
	cfgs := make(map[string]*config.DeviceConfig, len(r.em.Devices))
	for name, c := range r.em.Configs() {
		cfgs[name] = c
	}
	for name, d := range r.em.Devices {
		if c := d.Config(); c != nil {
			cfgs[name] = c
		}
	}
	return cfgs
}

// blackholes sweeps reachability from every emulated fabric device toward
// a host in every server prefix the fabric originates, returning failing
// pairs. Speakers are excluded on both sides: they replay recorded
// boundary routes, not their own state. st.Devices scopes the source set.
func (r *runner) blackholes(st *Step) []string {
	cfgs := r.liveConfigs()
	plan := r.em.Plan()
	fabric := append(append([]string{}, plan.Internal...), plan.Boundary...)
	sort.Strings(fabric)

	sources := st.Devices
	if len(sources) == 0 {
		for _, name := range fabric {
			if r.em.Devices[name] != nil {
				sources = append(sources, name)
			}
		}
	}

	// Destinations: one host inside every originated server prefix,
	// attributed to its owning device so self-pairs are skipped.
	type dest struct {
		owner string
		ip    netpkt.IP
	}
	var dests []dest
	for _, name := range fabric {
		d := r.net.Device(name)
		if d == nil {
			continue
		}
		for _, p := range d.Originated {
			host := p.Addr
			if p.Len < 31 {
				host++ // subnet base is not a host on broadcast subnets
			}
			dests = append(dests, dest{owner: name, ip: host})
		}
	}

	// The sweep walks the devices' live FIB tries in place: the emulation
	// is quiescent between steps, so snapshotting every FIB just to index
	// the snapshots again would double the sweep's cost for nothing.
	var failures []string
	w := batfish.NewLiveWalker(func(dev string, dst netpkt.IP) (*rib.Entry, bool) {
		d := r.em.Devices[dev]
		if d == nil {
			return nil, false
		}
		return d.FIB().Lookup(dst)
	}, cfgs)
	for _, src := range sources {
		for _, d := range dests {
			if d.owner == src {
				continue
			}
			if !w.Delivered(src, d.ip) {
				failures = append(failures, fmt.Sprintf("%s -> %s", src, d.ip))
			}
		}
	}
	return failures
}

// probePaths drains telemetry captures and returns the paths of the most
// recently injected flow.
func (r *runner) probePaths() []telemetry.Path {
	all := telemetry.ComputePaths(r.em.PullPackets())
	var out []telemetry.Path
	for _, p := range all {
		if p.Flow == r.lastFlow {
			out = append(out, p)
		}
	}
	return out
}

// filterDevices returns emulated device names scoped by an explicit list
// or a vendor-image name, sorted.
func (r *runner) filterDevices(devices []string, vendor string) []string {
	if len(devices) > 0 {
		out := append([]string(nil), devices...)
		sort.Strings(out)
		return out
	}
	var out []string
	for _, name := range r.em.List() {
		d := r.em.Devices[name]
		if d == nil {
			continue
		}
		if vendor == "" || d.Image.Name == vendor {
			out = append(out, name)
		}
	}
	return out
}

// applyACLPatch adds the patch's deny-source ACL to cfg and binds it
// inbound on every non-loopback interface when requested.
func applyACLPatch(cfg *config.DeviceConfig, patch *ACLPatch) error {
	pfx, err := netpkt.ParsePrefix(patch.DenySrc)
	if err != nil {
		return fmt.Errorf("acl denySrc %q: %w", patch.DenySrc, err)
	}
	if cfg.ACLs == nil {
		cfg.ACLs = map[string]*dataplane.ACL{}
	}
	cfg.ACLs[patch.Name] = &dataplane.ACL{
		Name:          patch.Name,
		Rules:         []dataplane.ACLRule{{Action: dataplane.ACLDeny, Src: &pfx}},
		DefaultAction: dataplane.ACLPermit,
	}
	if patch.BindIngress {
		for _, ic := range cfg.Interfaces {
			if ic.Name == "lo" {
				continue
			}
			cfg.Bindings = append(cfg.Bindings, config.ACLBinding{
				ACLName: patch.Name, Interface: ic.Name, Direction: config.In,
			})
		}
	}
	return nil
}

// splitEndpoint parses "device:interface".
func splitEndpoint(s string) (dev, iface string, err error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("bad endpoint %q (want device:interface)", s)
	}
	return s[:i], s[i+1:], nil
}
