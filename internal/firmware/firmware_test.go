package firmware

import (
	"strings"
	"testing"
	"time"

	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
	"crystalnet/internal/topo"
)

// testImage is a fast-booting image for unit tests.
func testImage() VendorImage {
	return VendorImage{
		Name: "test", Version: "1.0", Kind: ContainerImage,
		BootFixed: time.Second, BootJitter: time.Second, BootWork: 0,
		MsgWork: 0, RouteWork: 0,
	}
}

// rig builds a fabric of devices from a topology, one container per device,
// all on a single host, with generated configs.
type rig struct {
	t       *testing.T
	eng     *sim.Engine
	fabric  *phynet.Fabric
	devices map[string]*Device
	cfgs    map[string]*config.DeviceConfig
}

func buildRig(t *testing.T, netw *topo.Network, imageFor func(d *topo.Device) VendorImage) *rig {
	r := &rig{
		t: t, eng: sim.NewEngine(1),
		devices: map[string]*Device{},
		cfgs:    config.Generate(netw),
	}
	r.fabric = phynet.NewFabric(r.eng, phynet.LinuxBridge)
	host := r.fabric.AddHost("vm-0")
	containers := map[string]*phynet.Container{}
	for _, d := range netw.Devices() {
		if d.Layer == topo.LayerExternal {
			continue
		}
		c := host.AddContainer(d.Name)
		containers[d.Name] = c
		for _, intf := range d.Interfaces {
			c.AddIface(intf.Name, intf.MAC)
		}
	}
	for _, l := range netw.Links {
		ca, cb := containers[l.A.Device.Name], containers[l.B.Device.Name]
		if ca == nil || cb == nil {
			continue
		}
		r.fabric.Connect(ca.Iface(l.A.Name), cb.Iface(l.B.Name))
	}
	for _, d := range netw.Devices() {
		if d.Layer == topo.LayerExternal {
			continue
		}
		img := testImage()
		if imageFor != nil {
			img = imageFor(d)
		}
		dev := New(d.Name, img, r.cfgs[d.Name], r.eng, r.fabric, containers[d.Name])
		r.devices[d.Name] = dev
	}
	return r
}

func (r *rig) bootAll() {
	for _, d := range r.devices {
		d.Boot(nil)
	}
	r.run()
}

func (r *rig) run() {
	if _, err := r.eng.Run(20_000_000); err != nil {
		r.t.Fatalf("did not converge: %v", err)
	}
}

// pair returns a trivial two-device topology.
func pairTopo() *topo.Network {
	n := topo.NewNetwork("pair")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	b := n.AddDevice("b", topo.LayerLeaf, 65002, "test")
	a.Originated = append(a.Originated, netpkt.MustParsePrefix("100.64.0.0/24"))
	n.Connect(a, b)
	return n
}

func TestBootAndSessionOverRealFrames(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a, b := r.devices["a"], r.devices["b"]
	if a.State() != DeviceRunning || b.State() != DeviceRunning {
		t.Fatalf("states: %v %v", a.State(), b.State())
	}
	sa, sb := a.PullStates(), b.PullStates()
	if sa.Established != 1 || sb.Established != 1 {
		t.Fatalf("established: %d %d", sa.Established, sb.Established)
	}
	// b learned a's loopback and server prefix over the wire; with b's own
	// loopback that is 3 usable prefixes.
	if sb.LocRIB != 3 {
		t.Fatalf("b LocRIB = %d, want 3", sb.LocRIB)
	}
	entry, ok := b.FIB().Lookup(netpkt.MustParseIP("100.64.0.9"))
	if !ok {
		t.Fatal("b FIB missing a's server prefix")
	}
	if len(entry.NextHops) != 1 || entry.NextHops[0].Interface != "et0" {
		t.Fatalf("b FIB entry: %+v", entry)
	}
	// ARP was really exchanged.
	if len(a.arp) == 0 || len(b.arp) == 0 {
		t.Fatal("ARP caches empty — frames not exchanged?")
	}
	// VXLAN-free single host: frames delivered without drops of substance.
	if r.fabric.FramesDelivered == 0 {
		t.Fatal("no frames delivered")
	}
}

// smallClos is a 14-device Clos for integration tests.
func smallClos() topo.ClosSpec {
	return topo.ClosSpec{
		Name: "mini", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
}

func TestClosFullConvergence(t *testing.T) {
	netw := topo.GenerateClos(smallClos())
	r := buildRig(t, netw, nil)
	r.bootAll()

	// Every device must reach every ToR loopback and server prefix (ToR
	// ASes are unique, so eBGP propagates them fabric-wide; shared-AS
	// loopbacks — two borders, a pod's leaves — legitimately stay mutually
	// unreachable under RFC 7938 loop prevention).
	type dest struct {
		p  netpkt.Prefix
		as uint32
	}
	var dests []dest
	for _, d := range netw.DevicesByLayer(topo.LayerToR) {
		dests = append(dests, dest{d.Loopback, d.ASN})
		for _, p := range d.Originated {
			dests = append(dests, dest{p, d.ASN})
		}
	}
	if len(dests) != 8 {
		t.Fatalf("dests = %d", len(dests))
	}
	for name, dev := range r.devices {
		for _, ds := range dests {
			if dev.Config().ASN == ds.as {
				continue
			}
			if _, ok := dev.FIB().Lookup(ds.p.Addr); !ok {
				t.Fatalf("%s cannot reach %v", name, ds.p)
			}
		}
	}
	// ECMP in effect: a ToR reaches a remote prefix via both its leaves.
	tor := r.devices["tor-p0-0"]
	remote := r.devices["tor-p1-0"].Config().Networks[1]
	e, _ := tor.FIB().Lookup(remote.Addr)
	if len(e.NextHops) != 2 {
		t.Fatalf("tor-p0-0 to remote pod: %d hops, want 2 (ECMP)", len(e.NextHops))
	}
}

func TestTelemetryPathTrace(t *testing.T) {
	netw := topo.GenerateClos(smallClos())
	r := buildRig(t, netw, nil)
	r.bootAll()

	src := r.devices["tor-p0-0"]
	dstPrefix := r.devices["tor-p1-1"].Config().Networks[1]
	src.InjectPacket(dataplane.PacketMeta{
		Src: src.Config().Loopback.Addr, Dst: dstPrefix.Addr + 9,
		Proto: netpkt.ProtoUDP, SrcPort: 7777, DstPort: 7, TTL: 64,
	}, 42, 1)
	r.run()

	// Gather captures: expect tor -> leaf -> spine -> leaf -> tor (5 hops).
	var path []CaptureRecord
	for _, d := range r.devices {
		path = append(path, d.PullPackets()...)
	}
	if len(path) != 5 {
		t.Fatalf("captured %d hops, want 5: %+v", len(path), path)
	}
	var terminated bool
	for _, rec := range path {
		if rec.FlowID != 42 || rec.Seq != 1 {
			t.Fatalf("signature corrupted: %+v", rec)
		}
		if rec.Egress == ServerIface {
			terminated = true
			if rec.Device != "tor-p1-1" {
				t.Fatalf("terminated at %s", rec.Device)
			}
		}
	}
	if !terminated {
		t.Fatalf("packet never reached the destination rack: %+v", path)
	}
	// Buffers drained.
	for _, d := range r.devices {
		if len(d.PullPackets()) != 0 {
			t.Fatal("PullPackets did not drain")
		}
	}
}

func TestPingOverFabric(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a, b := r.devices["a"], r.devices["b"]
	echo := &netpkt.ICMPMessage{Type: netpkt.ICMPEchoRequest, ID: 7, Seq: 1}
	out := &netpkt.IPv4Packet{
		TTL: 64, Protocol: netpkt.ProtoICMP,
		Src: a.Config().Loopback.Addr, Dst: b.Config().Loopback.Addr,
		Payload: echo.Marshal(),
	}
	delivered := r.fabric.FramesDelivered
	a.sendFromSelf(out)
	r.run()
	// Request + reply crossed the fabric.
	if r.fabric.FramesDelivered < delivered+2 {
		t.Fatalf("frames delivered: %d -> %d, want request+reply", delivered, r.fabric.FramesDelivered)
	}
}

func TestStopDetachesButNamespaceSurvives(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a := r.devices["a"]
	c := a.Container()
	n := c.NumIfaces()
	a.Stop("test")
	if a.State() != DeviceStopped || c.Attached() {
		t.Fatal("stop did not detach")
	}
	if c.NumIfaces() != n {
		t.Fatal("interfaces destroyed on stop — two-layer design violated")
	}
	// b's session eventually drops (notification was sent on Stop).
	r.run()
	if r.devices["b"].PullStates().Established != 0 {
		t.Fatal("b still established after a stopped")
	}
}

func TestReloadThreeSecondsAndReconverge(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a := r.devices["a"]
	start := r.eng.Now()
	ready := sim.Time(0)
	a.Reload(nil, func() { ready = r.eng.Now() })
	r.run()
	if got := ready.Sub(start); got != ReloadDuration {
		t.Fatalf("reload took %v, want %v", got, ReloadDuration)
	}
	if a.PullStates().Established != 1 {
		t.Fatal("session not re-established after reload")
	}
}

func TestReloadAppliesNewConfig(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a, b := r.devices["a"], r.devices["b"]
	newCfg := a.Config().Clone()
	newCfg.Networks = append(newCfg.Networks, netpkt.MustParsePrefix("100.99.0.0/24"))
	a.Reload(newCfg, nil)
	r.run()
	if _, ok := b.FIB().Lookup(netpkt.MustParseIP("100.99.0.5")); !ok {
		t.Fatal("new network not announced after reload")
	}
}

func TestLinkDownUpFailover(t *testing.T) {
	// a has two parallel links to b; kill one.
	n := topo.NewNetwork("dual")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	b := n.AddDevice("b", topo.LayerLeaf, 65002, "test")
	a.Originated = append(a.Originated, netpkt.MustParsePrefix("100.64.0.0/24"))
	l1 := n.Connect(a, b)
	n.Connect(a, b)
	r := buildRig(t, n, nil)
	r.bootAll()

	db := r.devices["b"]
	e, _ := db.FIB().Lookup(netpkt.MustParseIP("100.64.0.1"))
	if len(e.NextHops) != 2 {
		t.Fatalf("want 2 ECMP paths before failure, got %+v", e)
	}
	// Cut link 1: notify firmware on both sides (the orchestrator's job)
	// and drop the fabric link.
	var vlink *phynet.VirtualLink
	for _, vl := range r.fabric.Links() {
		if vl.A.Container.Name == "a" && vl.A.Name == l1.A.Name {
			vlink = vl
		}
	}
	r.fabric.SetLinkState(vlink, false)
	r.devices["a"].LinkDown(l1.A.Name)
	db.LinkDown(l1.B.Name)
	r.run()
	e, ok := db.FIB().Lookup(netpkt.MustParseIP("100.64.0.1"))
	if !ok || len(e.NextHops) != 1 {
		t.Fatalf("after failure: %+v", e)
	}
	// Restore.
	r.fabric.SetLinkState(vlink, true)
	r.devices["a"].LinkUp(l1.A.Name)
	db.LinkUp(l1.B.Name)
	r.run()
	e, _ = db.FIB().Lookup(netpkt.MustParseIP("100.64.0.1"))
	if len(e.NextHops) != 2 {
		t.Fatalf("after recovery: %+v", e)
	}
}

// ---- vendor bugs ----

func TestBugSilentFIBOverflowBlackholes(t *testing.T) {
	n := topo.NewNetwork("overflow")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	mid := n.AddDevice("mid", topo.LayerLeaf, 65002, "test")
	c := n.AddDevice("c", topo.LayerSpine, 65003, "test")
	for i := 0; i < 100; i++ {
		a.Originated = append(a.Originated, netpkt.Prefix{Addr: netpkt.IPFromBytes(100, 64, byte(i), 0), Len: 24})
	}
	n.Connect(a, mid)
	n.Connect(mid, c)
	r := buildRig(t, n, func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "mid" {
			img.FIBCapacity = 50
			img.Bugs.SilentFIBOverflow = true
		}
		return img
	})
	r.bootAll()

	dm, dc := r.devices["mid"], r.devices["c"]
	if dm.FIB().Len() != 50 {
		t.Fatalf("mid FIB = %d, want capacity 50", dm.FIB().Len())
	}
	// BGP kept everything and advertised downstream — c believes all is
	// reachable; mid black-holes the missing prefixes.
	if got := dm.PullStates().LocRIB; got < 100 {
		t.Fatalf("mid RIB = %d, want >= 100", got)
	}
	missing := 0
	for i := 0; i < 100; i++ {
		p := netpkt.IPFromBytes(100, 64, byte(i), 1)
		_, inC := dc.FIB().Lookup(p)
		if !inC {
			t.Fatalf("c missing route %v — bug should be invisible upstream", p)
		}
		if _, inMid := dm.FIB().Lookup(p); !inMid {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("no black-holed prefixes — overflow did not happen")
	}
	// A probe to a black-holed prefix dies at mid with no-route.
	var hole netpkt.IP
	for i := 0; i < 100; i++ {
		p := netpkt.IPFromBytes(100, 64, byte(i), 1)
		if _, ok := dm.FIB().Lookup(p); !ok {
			hole = p
			break
		}
	}
	dc.InjectPacket(dataplane.PacketMeta{Src: dc.Config().Loopback.Addr, Dst: hole, Proto: netpkt.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 64}, 7, 1)
	r.run()
	recs := dm.PullPackets()
	if len(recs) != 1 || recs[0].Verdict != dataplane.VerdictNoRoute {
		t.Fatalf("mid verdict = %+v, want no-route black hole", recs)
	}
}

func TestBugARPTrapBrokenBlocksSessions(t *testing.T) {
	r := buildRig(t, pairTopo(), func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "b" {
			img.Bugs.ARPTrapBroken = true
		}
		return img
	})
	r.bootAll()
	if r.devices["a"].PullStates().Established != 0 {
		t.Fatal("session established despite broken ARP trap")
	}
	// The buggy device ignores ARP replies, so its own resolution attempts
	// exhaust and it logs the drop.
	if !strings.Contains(strings.Join(r.devices["b"].Logs, "\n"), "arp: resolution") {
		t.Fatal("ARP failure not logged on the buggy device")
	}
}

func TestBugDefaultRouteNotProgrammed(t *testing.T) {
	n := topo.NewNetwork("default")
	a := n.AddDevice("a", topo.LayerBorder, 65001, "test")
	b := n.AddDevice("b", topo.LayerToR, 65002, "test")
	a.Originated = append(a.Originated, netpkt.MustParsePrefix("0.0.0.0/0"))
	n.Connect(a, b)
	r := buildRig(t, n, func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "b" {
			img.Bugs.DefaultRouteBroken = true
		}
		return img
	})
	r.bootAll()
	db := r.devices["b"]
	// RIB has the default; FIB does not — §7 Case 2.
	if _, ok := db.BGP().BestRoute(netpkt.MustParsePrefix("0.0.0.0/0")); !ok {
		t.Fatal("RIB missing default (propagation broken, not the bug)")
	}
	if _, ok := db.FIB().Lookup(netpkt.MustParseIP("8.8.8.8")); ok {
		t.Fatal("default route programmed despite bug")
	}
	// A healthy image programs it.
	r2 := buildRig(t, n, nil)
	r2.bootAll()
	if _, ok := r2.devices["b"].FIB().Lookup(netpkt.MustParseIP("8.8.8.8")); !ok {
		t.Fatal("healthy image missing default route")
	}
}

func TestBugCrashAfterFlaps(t *testing.T) {
	r := buildRig(t, pairTopo(), func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "b" {
			img.Bugs.CrashAfterFlaps = 3
		}
		return img
	})
	r.bootAll()
	a, b := r.devices["a"], r.devices["b"]
	for i := 0; i < 3 && b.State() == DeviceRunning; i++ {
		a.Reload(nil, nil) // each reload flaps b's session
		r.run()
	}
	if b.State() != DeviceCrashed {
		t.Fatalf("b state = %v, want crashed after 3 flaps", b.State())
	}
}

func TestBugStopAnnouncingOddPrefixes(t *testing.T) {
	n := topo.NewNetwork("odd")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	b := n.AddDevice("b", topo.LayerLeaf, 65002, "test")
	a.Originated = append(a.Originated,
		netpkt.MustParsePrefix("100.64.2.0/24"), // even: announced
		netpkt.MustParsePrefix("100.64.3.0/24"), // odd: silently dropped
	)
	n.Connect(a, b)
	r := buildRig(t, n, func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "a" {
			img.Bugs.StopAnnouncingOddPrefixes = true
		}
		return img
	})
	r.bootAll()
	db := r.devices["b"]
	if _, ok := db.FIB().Lookup(netpkt.MustParseIP("100.64.2.1")); !ok {
		t.Fatal("even prefix missing")
	}
	if _, ok := db.FIB().Lookup(netpkt.MustParseIP("100.64.3.1")); ok {
		t.Fatal("odd prefix announced despite firmware bug")
	}
}

func TestBugARPRefreshBrokenAfterReload(t *testing.T) {
	// a(image with bug) - b, and a second link a - c configured only after
	// a reload: the new neighbor needs fresh ARP, which the bug suppresses.
	n := topo.NewNetwork("arpfresh")
	a := n.AddDevice("a", topo.LayerLeaf, 65001, "test")
	b := n.AddDevice("b", topo.LayerToR, 65002, "test")
	c := n.AddDevice("c", topo.LayerToR, 65003, "test")
	n.Connect(a, b)
	n.Connect(a, c)
	r := buildRig(t, n, func(d *topo.Device) VendorImage {
		img := testImage()
		if d.Name == "a" {
			img.Bugs.ARPRefreshBroken = true
		}
		return img
	})
	// First boot: a peers only with b; the a-c link is physically down (the
	// new peering has not been cabled into service yet).
	var acLink *phynet.VirtualLink
	for _, vl := range r.fabric.Links() {
		if vl.A.Container.Name == "a" && vl.B.Container.Name == "c" {
			acLink = vl
		}
	}
	r.fabric.SetLinkState(acLink, false)
	full := r.cfgs["a"]
	initial := full.Clone()
	initial.Neighbors = initial.Neighbors[:1]
	r.devices["a"].cfg = initial
	r.bootAll()
	if r.devices["a"].PullStates().Established != 1 {
		t.Fatal("setup: a-b session missing")
	}
	// Operator turns up the new peering and reloads a with it configured.
	r.fabric.SetLinkState(acLink, true)
	r.devices["a"].Reload(full, nil)
	r.devices["c"].LinkUp("et0")
	r.run()
	st := r.devices["a"].PullStates()
	if st.Established != 1 {
		t.Fatalf("established = %d; the a-c session should be stuck on ARP", st.Established)
	}
	if !strings.Contains(strings.Join(r.devices["a"].Logs, "\n"), "BUG arp-refresh") {
		t.Fatal("bug not logged")
	}
}

func TestCrashNoGracefulTeardown(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a, b := r.devices["a"], r.devices["b"]
	a.Crash("test")
	r.run()
	if a.State() != DeviceCrashed {
		t.Fatal("not crashed")
	}
	// No NOTIFICATION was sent: b still believes the session is up until
	// liveness detection (health monitor) intervenes.
	if b.PullStates().Established != 1 {
		t.Fatal("crash should not gracefully close the peer session")
	}
}

func TestMistypedACLDropsLegitimateTraffic(t *testing.T) {
	// The §2 human-error scenario end-to-end: an operator intends to block
	// 10.0.0.0/20 but types /2, black-holing nearly a quarter of the space.
	n := pairTopo()
	r := buildRig(t, n, nil)
	typo := netpkt.MustParsePrefix("10.0.0.0/2")
	cfg := r.cfgs["b"]
	cfg.ACLs["OOPS"] = &dataplane.ACL{
		Name:          "OOPS",
		Rules:         []dataplane.ACLRule{{Action: dataplane.ACLDeny, Dst: &typo}},
		DefaultAction: dataplane.ACLPermit,
	}
	cfg.Bindings = append(cfg.Bindings, config.ACLBinding{ACLName: "OOPS", Interface: "et0", Direction: config.In})
	r.bootAll()

	// A probe from a to b's loopback (10.0.0.x, inside the typo's /2) dies.
	a := r.devices["a"]
	a.InjectPacket(dataplane.PacketMeta{
		Src: a.Config().Loopback.Addr, Dst: r.devices["b"].Config().Loopback.Addr,
		Proto: netpkt.ProtoUDP, SrcPort: 5, DstPort: 6, TTL: 8,
	}, 9, 1)
	r.run()
	recs := r.devices["b"].PullPackets()
	if len(recs) != 1 || recs[0].Verdict != dataplane.VerdictACLDenied {
		t.Fatalf("b verdict = %+v, want acl-denied", recs)
	}
}

func TestVendorImageSemantics(t *testing.T) {
	if DeviceRunning.String() != "running" || DeviceState(9).String() != "unknown" {
		t.Fatal("state names")
	}
}

// TestOSPFOverFabric boots a line of three OSPF-only routers (a WAN-style
// deployment) and verifies LSDB flooding and SPF routes end to end over
// real frames.
func TestOSPFOverFabric(t *testing.T) {
	n := topo.NewNetwork("ospf-line")
	a := n.AddDevice("a", topo.LayerWAN, 0, "test")
	b := n.AddDevice("b", topo.LayerWAN, 0, "test")
	c := n.AddDevice("c", topo.LayerWAN, 0, "test")
	n.Connect(a, b)
	n.Connect(b, c)
	r := buildRig(t, n, nil)
	// Strip the generated BGP sessions; enable OSPF on every fabric port.
	for name, cfg := range r.cfgs {
		cfg.Neighbors = nil
		cfg.Networks = nil
		cfg.OSPF = &config.OSPFConfig{}
		for _, ic := range cfg.Interfaces {
			if ic.Name == "lo" {
				continue
			}
			cfg.OSPF.Interfaces = append(cfg.OSPF.Interfaces, config.OSPFIfaceConfig{
				Name: ic.Name, Cost: 10,
			})
		}
		_ = name
	}
	r.bootAll()

	da, dc := r.devices["a"], r.devices["c"]
	if da.OSPF() == nil {
		t.Fatal("OSPF not started")
	}
	// a reaches c's loopback two hops away via OSPF routes in the FIB.
	e, ok := da.FIB().Lookup(dc.Config().Loopback.Addr)
	if !ok {
		t.Fatalf("a missing OSPF route to c: %v", da.FIB().Snapshot())
	}
	if e.Proto != rib.ProtoOSPF {
		t.Fatalf("route proto = %v, want ospf", e.Proto)
	}
	// LSDBs synchronized across the fabric.
	if da.OSPF().LSDBLen() != dc.OSPF().LSDBLen() || da.OSPF().LSDBLen() < 3 {
		t.Fatalf("LSDB sizes: %d vs %d", da.OSPF().LSDBLen(), dc.OSPF().LSDBLen())
	}
	// Link failure reroutes... no alternate path here: the route vanishes.
	lk := n.Links[0]
	for _, vl := range r.fabric.Links() {
		if vl.A.Container.Name == "a" {
			r.fabric.SetLinkState(vl, false)
		}
	}
	r.devices["a"].LinkDown(lk.A.Name)
	r.devices["b"].LinkDown(lk.B.Name)
	r.run()
	if _, ok := da.FIB().Lookup(dc.Config().Loopback.Addr); ok {
		t.Fatal("route survived the only link's failure")
	}
}

// TestSoftASICTrapPipeline boots a SoftASIC image and checks the ARP trap
// flows through the P4 pipeline: the healthy build establishes sessions and
// shows pipeline hits; the dev build's missing trap entry blocks ARP.
func TestSoftASICTrapPipeline(t *testing.T) {
	build := func(arpBug bool) *rig {
		return buildRig(t, pairTopo(), func(d *topo.Device) VendorImage {
			img := testImage()
			if d.Name == "b" {
				img.SoftASIC = true
				img.Bugs.ARPTrapBroken = arpBug
			}
			return img
		})
	}
	healthy := build(false)
	healthy.bootAll()
	b := healthy.devices["b"]
	if b.ASIC() == nil {
		t.Fatal("soft ASIC not programmed")
	}
	if b.PullStates().Established != 1 {
		t.Fatal("healthy soft-ASIC build failed to establish")
	}
	if trap := b.ASIC().Table("cpu_trap"); trap == nil || trap.Hits == 0 {
		t.Fatal("ARP never traversed the trap table")
	}

	buggy := build(true)
	buggy.bootAll()
	if buggy.devices["a"].PullStates().Established != 0 {
		t.Fatal("session established despite missing pipeline trap entry")
	}
}

// TestDualProtocolDevice runs BGP and OSPF side by side on one box (a
// border router speaking eBGP to the fabric and OSPF into the WAN), with
// both protocols programming the same FIB.
func TestDualProtocolDevice(t *testing.T) {
	n := topo.NewNetwork("dual")
	border := n.AddDevice("border", topo.LayerBorder, 65000, "test")
	spine := n.AddDevice("spine", topo.LayerSpine, 65100, "test")
	wan := n.AddDevice("wan", topo.LayerWAN, 0, "test")
	spine.Originated = append(spine.Originated, netpkt.MustParsePrefix("100.64.0.0/24"))
	n.Connect(border, spine) // eBGP side
	n.Connect(border, wan)   // OSPF side
	r := buildRig(t, n, nil)

	// border: drop the generated BGP session toward the WAN, add OSPF there.
	bc := r.cfgs["border"]
	var kept []config.BGPNeighbor
	for _, nb := range bc.Neighbors {
		if nb.Desc == "spine" {
			kept = append(kept, nb)
		}
	}
	bc.Neighbors = kept
	bc.OSPF = &config.OSPFConfig{Interfaces: []config.OSPFIfaceConfig{{Name: "et1", Cost: 10}}}
	// wan: OSPF only.
	wc := r.cfgs["wan"]
	wc.Neighbors = nil
	wc.Networks = nil
	wc.OSPF = &config.OSPFConfig{Interfaces: []config.OSPFIfaceConfig{{Name: "et0", Cost: 10}}}
	r.bootAll()

	b := r.devices["border"]
	// BGP route from the spine side.
	e, ok := b.FIB().Lookup(netpkt.MustParseIP("100.64.0.1"))
	if !ok || e.Proto != rib.ProtoBGP {
		t.Fatalf("BGP route: %+v %v", e, ok)
	}
	// OSPF route to the WAN loopback.
	e, ok = b.FIB().Lookup(r.devices["wan"].Config().Loopback.Addr)
	if !ok || e.Proto != rib.ProtoOSPF {
		t.Fatalf("OSPF route: %+v %v", e, ok)
	}
	if b.PullStates().Established != 1 {
		t.Fatal("BGP session count wrong")
	}
	if b.OSPF() == nil || b.OSPF().LSDBLen() < 2 {
		t.Fatal("OSPF LSDB empty")
	}
}

// TestHandleFrameRejectsJunk exercises the NIC-level guards: frames for
// other MACs, truncated ethernet, unknown ethertypes and frames arriving
// while the firmware is down are all dropped without side effects.
func TestHandleFrameRejectsJunk(t *testing.T) {
	r := buildRig(t, pairTopo(), nil)
	r.bootAll()
	a := r.devices["a"]
	before := len(a.Captures)

	// Unicast to someone else's MAC.
	other := &netpkt.EthernetFrame{Dst: netpkt.MAC{9, 9, 9, 9, 9, 9}, EtherType: netpkt.EtherTypeIPv4,
		Payload: (&netpkt.IPv4Packet{TTL: 4, Protocol: netpkt.ProtoUDP, Src: 1, Dst: 2}).Marshal()}
	a.handleFrame("et0", other.Marshal())
	// Truncated frame.
	a.handleFrame("et0", []byte{1, 2, 3})
	// Unknown ethertype.
	weird := &netpkt.EthernetFrame{Dst: a.Container().Iface("et0").MAC, EtherType: 0x86dd, Payload: []byte{0}}
	a.handleFrame("et0", weird.Marshal())
	// Unknown interface name.
	a.handleFrame("et99", weird.Marshal())
	// Corrupt IPv4 payload.
	bad := &netpkt.EthernetFrame{Dst: a.Container().Iface("et0").MAC, EtherType: netpkt.EtherTypeIPv4, Payload: []byte{0x45, 0}}
	a.handleFrame("et0", bad.Marshal())

	if len(a.Captures) != before {
		t.Fatal("junk frames were captured")
	}
	// Stopped firmware ignores everything.
	a.Stop("test")
	a.handleFrame("et0", weird.Marshal())
}
