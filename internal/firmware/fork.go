package firmware

import (
	"crystalnet/internal/bgp"
	"crystalnet/internal/checkpoint"
	"crystalnet/internal/cloud"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/ospf"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
)

// Fork returns a deep copy of the device for a forked emulation: bound to
// the fork's engine, fabric, container clone and VM clone, with all routing
// and dataplane state deep-copied and every protocol hook closure rebuilt
// against the clone (the hooks constructed at boot close over the parent
// and must not leak into the fork). The source device is read strictly
// read-only, so concurrent forks are safe.
//
// The device's configuration pointer is shared copy-on-write: config
// reloads replace the pointer (ReloadConfig installs a fresh
// *config.DeviceConfig), they never mutate the shared value in place.
func (d *Device) Fork(eng *sim.Engine, fabric *phynet.Fabric, container *phynet.Container, vm *cloud.VM) *Device {
	c := &Device{
		Name:  d.Name,
		Image: d.Image,

		eng:       eng,
		fabric:    fabric,
		container: container,
		vm:        vm,

		cfg:   d.cfg,
		state: d.state,
		epoch: d.epoch,

		peerIface:   checkpoint.CloneMap(d.peerIface),
		peerIP:      checkpoint.CloneMap(d.peerIP),
		localIPs:    checkpoint.CloneMap(d.localIPs),
		ifaceAddr:   checkpoint.CloneMap(d.ifaceAddr),
		ospfIfaces:  checkpoint.CloneMap(d.ospfIfaces),
		arp:         checkpoint.CloneMap(d.arp),
		arpAttempts: checkpoint.CloneMap(d.arpAttempts),
		peerWasUp:   checkpoint.CloneMap(d.peerWasUp),

		flaps: d.flaps,

		Captures:       checkpoint.CloneSlice(d.Captures),
		Logs:           checkpoint.CloneSlice(d.Logs),
		BGPUpdatesSent: d.BGPUpdatesSent,
		LastFIBChange:  d.LastFIBChange,
	}
	// Queued frames are deep-copied: frame delivery rewrites the Ethernet
	// header in the buffer once ARP resolves, so sharing the bytes would
	// let a fork scribble on its parent's queue.
	if d.arpPending != nil {
		c.arpPending = make(map[netpkt.IP][][]byte, len(d.arpPending))
		for ip, frames := range d.arpPending {
			nf := make([][]byte, len(frames))
			for i, fr := range frames {
				nf[i] = append([]byte(nil), fr...)
			}
			c.arpPending[ip] = nf
		}
	}
	if d.fib != nil {
		c.fib = d.fib.Clone()
	}
	if d.fwd != nil {
		c.fwd = d.fwd.Clone(c.fib)
	}
	if d.asic != nil {
		c.asic = d.asic.Clone()
	}
	if d.bgp != nil {
		// The hooks mirror startBGP's exactly, rebound to the clone.
		c.bgp = d.bgp.Fork(bgpClock{eng}, bgp.Hooks{
			SendToPeer:   c.sendBGP,
			InstallRoute: c.installBGPRoute,
			RemoveRoute: func(p netpkt.Prefix) {
				if c.fib != nil {
					c.fib.Remove(p)
					c.LastFIBChange = c.eng.Now()
				}
			},
			SessionEvent: c.onSessionEvent,
			Logf:         func(f string, a ...any) { c.logf(f, a...) },
			Rec:          eng.Recorder(),
		})
	}
	if d.peerByIP != nil {
		c.peerByIP = make(map[netpkt.IP]*bgp.Peer, len(d.peerByIP))
		for ip, p := range d.peerByIP {
			c.peerByIP[ip] = c.bgp.Peer(p.Index)
		}
	}
	if d.osp != nil {
		// Mirrors startOSPF's hooks, rebound to the clone.
		c.osp = d.osp.Fork(ospfClock{eng}, ospf.Hooks{
			Send: c.sendOSPF,
			InstallRoute: func(p netpkt.Prefix, nhs []rib.NextHop) error {
				return c.fib.InstallHops(p, rib.ProtoOSPF, nhs)
			},
			RemoveRoute: func(p netpkt.Prefix) { c.fib.Remove(p) },
			Logf:        func(f string, a ...any) { c.logf(f, a...) },
			Rec:         eng.Recorder(),
		})
	}
	// Re-attach the frame handler exactly when the parent's firmware was
	// live on the wire.
	if d.container != nil && d.container.Attached() {
		container.Attach(c.handleFrame)
	}
	return c
}
