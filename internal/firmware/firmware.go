// Package firmware implements the emulated device runtime: the "vendor
// image" that boots inside a PhyNet container sandbox, speaks BGP/OSPF over
// the virtual links, programs a FIB, forwards data-plane packets, and
// exhibits the vendor-specific behaviours and injectable bugs that make
// CrystalNet "bug compatible" with production (§2, §7).
//
// Real CrystalNet runs unmodified vendor binaries; this package is the
// synthetic equivalent: four vendor images built on a shared runtime whose
// divergences are exactly the documented incident classes (aggregation
// AS-path selection, FIB-overflow handling, ACL dialect drift, ARP trap
// bugs, default-route bugs, crash-on-flap).
//
// DESIGN.md §1 records the synthetic-firmware substitution; §4 lists the
// per-vendor divergences.
package firmware

import (
	"fmt"
	"time"

	"crystalnet/internal/bgp"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/ospf"
	"crystalnet/internal/p4"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
)

// ImageKind distinguishes container images from VM images (§4.1: VM images
// need nested virtualization and boot slower).
type ImageKind uint8

// Image kinds.
const (
	ContainerImage ImageKind = iota
	VMImage
	// HardwareDevice marks a real switch plugged into the emulation through
	// a fanout server (§4.1): it runs on its own silicon (no cloud VM, no
	// shared-CPU contention) and is reached across the Internet overlay.
	HardwareDevice
)

// AsHardware converts a vendor image into its physical-switch incarnation:
// the box is already racked and powered, so "boot" is just the firmware
// restart, and its CPU is its own (no BootWork on any VM).
func AsHardware(img VendorImage) VendorImage {
	img.Kind = HardwareDevice
	img.BootFixed = 30 * time.Second
	img.BootJitter = 15 * time.Second
	img.BootWork = 0
	return img
}

// Bugs is the injectable-bug registry of a vendor image. Every field maps
// to an incident class from Table 1 or §7 Case 2.
type Bugs struct {
	// StopAnnouncingOddPrefixes makes the export path silently skip /24
	// prefixes whose third octet is odd — "new router firmware erroneously
	// stopped announcing certain IP prefixes" (§2).
	StopAnnouncingOddPrefixes bool
	// SilentFIBOverflow drops routes on a full FIB without reporting —
	// the §2 load-balancer black-hole incident.
	SilentFIBOverflow bool
	// ARPTrapBroken stops the ASIC from trapping ARP to the CPU, so the
	// device never answers ARP — §7 Case 2.
	ARPTrapBroken bool
	// DefaultRouteBroken fails to program 0.0.0.0/0 learned from BGP —
	// §7 Case 2.
	DefaultRouteBroken bool
	// CrashAfterFlaps crashes the firmware after this many BGP session
	// flaps (0 disables) — §7 Case 2.
	CrashAfterFlaps int
	// ARPRefreshBroken stops ARP resolution for new next hops after a
	// reload — "ARP refreshing failed when peering configuration was
	// changed" (§2).
	ARPRefreshBroken bool
}

// VendorImage describes a bootable device software image.
type VendorImage struct {
	Name    string
	Version string
	Kind    ImageKind
	// BootFixed is the non-CPU part of boot (image pull, init scripts);
	// BootJitter randomizes it. BootWork is CPU core-seconds consumed on
	// the hosting VM (contended across collocated devices).
	BootFixed  time.Duration
	BootJitter time.Duration
	BootWork   float64
	// AggregationMode is the Figure 1 vendor divergence.
	AggregationMode bgp.AggregationASPathMode
	// FIBCapacity limits the hardware table (0 = unlimited).
	FIBCapacity int
	// MsgWork/RouteWork model control-plane CPU cost per message and per
	// prefix processed.
	MsgWork   float64
	RouteWork float64
	// StaticSpeaker marks the boundary-speaker image: sessions only ever
	// announce locally injected routes (§5.1).
	StaticSpeaker bool
	// NonDeterministicTies marks firmware whose BGP tie-break depends on
	// announcement arrival order — the §9 behaviour the FIB comparator
	// must tolerate.
	NonDeterministicTies bool
	// SoftASIC runs the image's control-plane trap path through a P4
	// behavioural-model pipeline (the §6.2 BMv2 integration for the
	// open-source OS); the ARP-trap bug then manifests as a missing
	// pipeline entry rather than a hardcoded branch.
	SoftASIC bool
	Bugs     Bugs
}

// DeviceState is the firmware lifecycle state.
type DeviceState uint8

// Firmware lifecycle states.
const (
	DeviceStopped DeviceState = iota
	DeviceBooting
	DeviceRunning
	DeviceCrashed
)

var deviceStateNames = [...]string{"stopped", "booting", "running", "crashed"}

// String returns the state name.
func (s DeviceState) String() string {
	if int(s) < len(deviceStateNames) {
		return deviceStateNames[s]
	}
	return "unknown"
}

// CaptureRecord is one packet observation for the telemetry pipeline
// (§3.3: devices capture signature-matched packets).
type CaptureRecord struct {
	Time    sim.Time
	Device  string
	FlowID  uint64
	Seq     uint32
	Iface   string // ingress interface ("" for locally injected)
	Verdict dataplane.Verdict
	Egress  string
	Meta    dataplane.PacketMeta
}

// TelemetryMagic tags injected packets (§3.3 "pre-defined signature").
var TelemetryMagic = []byte("CNETTLM1")

// ServerIface is the pseudo-interface originated server subnets resolve to;
// packets forwarded to it have reached their rack.
const ServerIface = "servers"

// Device is one emulated network device.
type Device struct {
	Name  string
	Image VendorImage

	eng       *sim.Engine
	fabric    *phynet.Fabric
	container *phynet.Container
	vm        *cloud.VM // nil in unit tests

	cfg   *config.DeviceConfig
	state DeviceState
	epoch int // increments per boot; stale timers check it

	fib *rib.FIB
	fwd *dataplane.Forwarder
	bgp *bgp.Router
	osp *ospf.Instance

	peerByIP    map[netpkt.IP]*bgp.Peer
	peerIface   map[int]string     // peer index -> egress interface
	peerIP      map[int]netpkt.IP  // peer index -> remote IP
	localIPs    map[netpkt.IP]bool // addresses owned by the device
	ifaceAddr   map[string]netpkt.Prefix
	ospfIfaces  map[string]int
	arp         map[netpkt.IP]netpkt.MAC
	arpPending  map[netpkt.IP][][]byte // queued frames' IP payloads
	arpAttempts map[netpkt.IP]int
	peerWasUp   map[int]bool // per-peer "was Established" for flap counting

	flaps int

	// asic is the P4 trap pipeline for SoftASIC images (nil otherwise).
	asic *p4.Program

	// Captures accumulates signature-matched packet observations until
	// PullPackets drains them.
	Captures []CaptureRecord
	// Logs accumulate device syslog-style lines.
	Logs []string

	// BGPUpdatesSent counts control-plane messages for the CPU model and
	// monitoring.
	BGPUpdatesSent uint64
	// LastFIBChange is the virtual time of the most recent FIB mutation —
	// the orchestrator's route-ready detector (§8.1) reads it after the
	// network quiesces.
	LastFIBChange sim.Time
}

// Option mutates a device at construction.
type Option func(*Device)

// WithVM pins the device's CPU work to a cloud VM.
func WithVM(vm *cloud.VM) Option {
	return func(d *Device) { d.vm = vm }
}

// AssignVM re-points the device's CPU work at a different VM. The
// orchestration layer uses it when a failed VM is replaced rather than
// rebooted: subsequent boot/route work must be charged to the VM that
// actually hosts the container now.
func (d *Device) AssignVM(vm *cloud.VM) { d.vm = vm }

// New creates a stopped device bound to a PhyNet container. The container's
// interfaces must already exist (the PhyNet layer owns them).
func New(name string, image VendorImage, cfg *config.DeviceConfig,
	eng *sim.Engine, fabric *phynet.Fabric, container *phynet.Container, opts ...Option) *Device {
	d := &Device{
		Name: name, Image: image, cfg: cfg,
		eng: eng, fabric: fabric, container: container,
	}
	for _, o := range opts {
		o(d)
	}
	return d
}

// State returns the firmware lifecycle state.
func (d *Device) State() DeviceState { return d.state }

// Config returns the active configuration.
func (d *Device) Config() *config.DeviceConfig { return d.cfg }

// FIB returns the device's forwarding table (nil until running).
func (d *Device) FIB() *rib.FIB { return d.fib }

// Forwarder returns the device's live forwarding engine (nil until running,
// and nil again after Stop/Crash). The traffic plane settles flow
// aggregates against it directly — a stopped device blackholes its flows.
func (d *Device) Forwarder() *dataplane.Forwarder { return d.fwd }

// BGP returns the device's BGP router (nil until running).
func (d *Device) BGP() *bgp.Router { return d.bgp }

// OSPF returns the device's OSPF instance (nil unless configured).
func (d *Device) OSPF() *ospf.Instance { return d.osp }

// Container returns the PhyNet container hosting the device.
func (d *Device) Container() *phynet.Container { return d.container }

// ASIC returns the device's P4 trap pipeline (nil for fixed-function
// images) — the §9 programmable-data-plane debugging surface.
func (d *Device) ASIC() *p4.Program { return d.asic }

// Reattach rebinds the device to a (re)built container — used after a VM
// recovery or a strawman reload recreates the namespace. A running device
// resumes receiving frames immediately.
func (d *Device) Reattach(c *phynet.Container) {
	d.container = c
	if d.state == DeviceRunning {
		c.Attach(d.handleFrame)
	}
}

// logf appends to the device log.
func (d *Device) logf(format string, args ...any) {
	d.Logs = append(d.Logs, fmt.Sprintf("[%s] ", d.eng.Now())+fmt.Sprintf(format, args...))
}

// submit runs CPU work on the hosting VM (or immediately without one). The
// completion event is scheduled on the device's own engine, which in a
// sharded emulation is its domain engine rather than the master.
func (d *Device) submit(coreSeconds float64, fn func()) {
	if d.vm != nil {
		d.vm.SubmitOn(d.eng, coreSeconds, fn)
		return
	}
	if fn != nil {
		d.eng.After(0, fn)
	}
}

// Boot starts the firmware: after the image's boot latency and CPU work,
// the device attaches to its container, programs connected routes and
// starts its routing protocols. onReady (optional) fires when Running.
func (d *Device) Boot(onReady func()) {
	if d.state == DeviceBooting || d.state == DeviceRunning {
		return
	}
	d.state = DeviceBooting
	d.epoch++
	epoch := d.epoch
	start := d.eng.Now()
	fixed := d.eng.Jitter(d.Image.BootFixed, d.Image.BootJitter)
	d.eng.After(fixed, func() {
		if d.epoch != epoch || d.state != DeviceBooting {
			return
		}
		d.submit(d.Image.BootWork, func() {
			if d.epoch != epoch || d.state != DeviceBooting {
				return
			}
			d.finishBoot()
			d.eng.Recorder().SpanAt("boot", d.Name, int64(start), int64(d.eng.Now()))
			if onReady != nil {
				onReady()
			}
		})
	})
}

// finishBoot brings the control plane up.
func (d *Device) finishBoot() {
	d.state = DeviceRunning
	d.fib = rib.NewFIB()
	d.fib.Capacity = d.Image.FIBCapacity
	d.fwd = dataplane.NewForwarder(d.fib, uint32(d.eng.Rand().Int63()))
	d.peerByIP = map[netpkt.IP]*bgp.Peer{}
	d.peerIface = map[int]string{}
	d.peerIP = map[int]netpkt.IP{}
	d.localIPs = map[netpkt.IP]bool{}
	d.ifaceAddr = map[string]netpkt.Prefix{}
	d.ospfIfaces = map[string]int{}
	if d.arp == nil || !d.Image.Bugs.ARPRefreshBroken {
		d.arp = map[netpkt.IP]netpkt.MAC{}
	}
	d.arpPending = map[netpkt.IP][][]byte{}
	d.arpAttempts = map[netpkt.IP]int{}
	d.peerWasUp = map[int]bool{}
	if d.Image.SoftASIC {
		// Program the behavioural-model ASIC: a buggy build simply lacks
		// the ARP trap entry (§7 Case 2).
		d.asic = p4.TrapProgram(!d.Image.Bugs.ARPTrapBroken, true)
	}
	d.logf("%s %s (%s) boot complete", d.Image.Name, d.Image.Version, d.Name)

	// Connected routes + local addresses.
	for _, ic := range d.cfg.Interfaces {
		d.ifaceAddr[ic.Name] = ic.Addr
		d.localIPs[ic.Addr.Addr] = true
		d.fwd.AddLocal(ic.Addr.Addr)
		subnet := netpkt.Prefix{Addr: ic.Addr.Addr & ic.Addr.MaskIP(), Len: ic.Addr.Len}
		d.fib.Install(&rib.Entry{
			Prefix: subnet, Proto: rib.ProtoConnected,
			NextHops: []rib.NextHop{{Interface: ic.Name}},
		})
	}
	// Originated server subnets (a ToR's racks) are attached networks: they
	// resolve out of the "servers" attachment point so probes to them
	// terminate at this device instead of falling off the FIB.
	for _, p := range d.cfg.Networks {
		if p == d.cfg.Loopback {
			continue
		}
		if _, exists := d.fib.Get(p); exists {
			continue
		}
		d.fib.Install(&rib.Entry{
			Prefix: p, Proto: rib.ProtoConnected,
			NextHops: []rib.NextHop{{Interface: ServerIface}},
		})
	}
	// ACL bindings.
	for _, b := range d.cfg.Bindings {
		acl := d.cfg.ACLs[b.ACLName]
		if b.Direction == config.In {
			d.fwd.SetInACL(b.Interface, acl)
		} else {
			d.fwd.SetOutACL(b.Interface, acl)
		}
	}

	d.startBGP()
	d.startOSPF()

	// Attach to the namespace last: the device now receives frames.
	d.container.Attach(d.handleFrame)
}

// startBGP builds the BGP router from the config and begins session
// bring-up with retries.
func (d *Device) startBGP() {
	if len(d.cfg.Neighbors) == 0 && len(d.cfg.Networks) == 0 {
		return
	}
	rcfg := bgp.Config{
		Name: d.Name, AS: d.cfg.ASN, RouterID: d.cfg.RouterID,
		MaxPaths:             d.cfg.MaxPaths,
		MRAI:                 50 * time.Millisecond,
		AggregationMode:      d.Image.AggregationMode,
		NonDeterministicTies: d.Image.NonDeterministicTies,
	}
	for _, a := range d.cfg.Aggregates {
		rcfg.Aggregates = append(rcfg.Aggregates, bgp.AggregateSpec{Prefix: a.Prefix, SummaryOnly: a.SummaryOnly})
	}
	d.bgp = bgp.New(rcfg, bgpClock{d.eng}, bgp.Hooks{
		SendToPeer:   d.sendBGP,
		InstallRoute: d.installBGPRoute,
		// The FIB may already be gone when a crash interrupts the router's
		// own teardown (e.g. CrashAfterFlaps fires mid-reset).
		RemoveRoute: func(p netpkt.Prefix) {
			if d.fib != nil {
				d.fib.Remove(p)
				d.LastFIBChange = d.eng.Now()
			}
		},
		SessionEvent: d.onSessionEvent,
		Logf:         func(f string, a ...any) { d.logf(f, a...) },
		Rec:          d.eng.Recorder(),
	})
	for _, n := range d.cfg.Neighbors {
		local := netpkt.IP(0)
		if ic := d.cfg.Interface(n.Interface); ic != nil {
			local = ic.Addr.Addr
		}
		exp := bgp.PermitAll
		if n.ExportPolicy != "" {
			exp = d.cfg.RouteMaps[n.ExportPolicy]
		}
		if d.Image.Bugs.StopAnnouncingOddPrefixes {
			exp = withOddPrefixBug(exp)
		}
		imp := bgp.PermitAll
		if n.ImportPolicy != "" {
			imp = d.cfg.RouteMaps[n.ImportPolicy]
		}
		peer := d.bgp.AddPeer(bgp.PeerConfig{
			Name: n.Desc, LocalIP: local, RemoteIP: n.IP, RemoteAS: n.RemoteAS,
			Interface: n.Interface, ImportPolicy: imp, ExportPolicy: exp,
			AdvertiseLocalOnly: d.Image.StaticSpeaker,
		})
		d.peerByIP[n.IP] = peer
		d.peerIface[peer.Index] = n.Interface
		d.peerIP[peer.Index] = n.IP
	}
	for _, p := range d.cfg.Networks {
		d.bgp.Originate(p)
	}
	epoch := d.epoch
	for _, peer := range d.bgp.Peers() {
		peer.Start()
		d.scheduleSessionRetry(peer, epoch, 0)
	}
}

// scheduleSessionRetry re-attempts session establishment (the neighbor may
// still be booting). Exponential-ish, bounded.
func (d *Device) scheduleSessionRetry(peer *bgp.Peer, epoch, attempt int) {
	if attempt >= 120 {
		d.logf("bgp: giving up on neighbor %s", peer.Config.Name)
		return
	}
	d.eng.After(15*time.Second, func() {
		if d.epoch != epoch || d.state != DeviceRunning {
			return
		}
		if peer.State() == bgp.StateEstablished {
			return
		}
		peer.Stop("connect retry")
		peer.Start()
		d.scheduleSessionRetry(peer, epoch, attempt+1)
	})
}

// installBGPRoute is the vendor hook between the BGP RIB and the hardware
// FIB — where the FIB-capacity and default-route bugs live.
func (d *Device) installBGPRoute(p netpkt.Prefix, nhs []rib.NextHop) error {
	if d.fib == nil {
		return nil // firmware crashed mid-teardown
	}
	if d.Image.Bugs.DefaultRouteBroken && p.Len == 0 {
		// §7 Case 2: "failing to update the default route when routes are
		// learned from BGP". Silently skips programming.
		d.logf("BUG default-route: skipped programming %s", p)
		return nil
	}
	err := d.fib.InstallHops(p, rib.ProtoBGP, nhs)
	if err == nil {
		d.LastFIBChange = d.eng.Now()
	}
	if err == rib.ErrFull && d.Image.Bugs.SilentFIBOverflow {
		// §2: the vendor hook swallows the overflow, black-holing traffic.
		return nil
	}
	return err
}

func (d *Device) onSessionEvent(peerIdx int, st bgp.SessionState) {
	// A flap is an Established session dropping — connect-retry churn
	// during bring-up does not count.
	wasEstablished := d.peerWasUp[peerIdx]
	d.peerWasUp[peerIdx] = st == bgp.StateEstablished
	if st == bgp.StateEstablished && !wasEstablished {
		d.eng.Recorder().Counter("bgp.sessions_established", d.Name).Inc()
	}
	if st == bgp.StateIdle && wasEstablished && d.state == DeviceRunning {
		d.flaps++
		d.eng.Recorder().Counter("bgp.flaps", d.Name).Inc()
		if d.Image.Bugs.CrashAfterFlaps > 0 && d.flaps >= d.Image.Bugs.CrashAfterFlaps {
			d.Crash("session flap storm")
		}
	}
}

// startOSPF builds the OSPF instance if configured.
func (d *Device) startOSPF() {
	if d.cfg.OSPF == nil {
		return
	}
	d.osp = ospf.New(ospf.Config{Name: d.Name, RouterID: d.cfg.RouterID}, ospfClock{d.eng}, ospf.Hooks{
		Send: d.sendOSPF,
		InstallRoute: func(p netpkt.Prefix, nhs []rib.NextHop) error {
			return d.fib.InstallHops(p, rib.ProtoOSPF, nhs)
		},
		RemoveRoute: func(p netpkt.Prefix) { d.fib.Remove(p) },
		Logf:        func(f string, a ...any) { d.logf(f, a...) },
		Rec:         d.eng.Recorder(),
	})
	d.osp.AddStub(d.cfg.Loopback)
	for _, oi := range d.cfg.OSPF.Interfaces {
		ic := d.cfg.Interface(oi.Name)
		if ic == nil {
			continue
		}
		typ := ospf.P2P
		if oi.Broadcast {
			typ = ospf.Broadcast
		}
		idx := d.osp.AddInterface(ospf.IfaceConfig{
			Name: oi.Name, Addr: ic.Addr, Type: typ, Cost: oi.Cost, Priority: oi.Priority,
		})
		d.ospfIfaces[oi.Name] = idx
	}
	d.osp.Start()
}

// Stop halts the firmware (administrative shutdown). The PhyNet container
// and its interfaces survive.
func (d *Device) Stop(reason string) {
	if d.state == DeviceStopped {
		return
	}
	d.logf("stopping: %s", reason)
	if d.bgp != nil {
		for _, p := range d.bgp.Peers() {
			p.Stop(reason)
		}
	}
	d.container.Detach()
	d.state = DeviceStopped
	d.epoch++
	d.bgp, d.osp, d.fib, d.fwd = nil, nil, nil, nil
}

// Crash models a firmware crash: like Stop, but without graceful session
// teardown (peers discover via liveness, i.e. the orchestrator's health
// monitor or link events).
func (d *Device) Crash(reason string) {
	if d.state != DeviceRunning {
		return
	}
	d.logf("CRASH: %s", reason)
	d.eng.Recorder().Event("device", d.Name, obs.Attr{K: "what", V: "crash"}, obs.Attr{K: "reason", V: reason})
	d.container.Detach()
	d.state = DeviceCrashed
	d.epoch++
	d.bgp, d.osp, d.fib, d.fwd = nil, nil, nil, nil
}

// ReloadDuration is the two-layer-design reload time measured in §8.3: the
// container restarts with interfaces intact.
const ReloadDuration = 3 * time.Second

// Reload applies a (possibly new) configuration by restarting the firmware
// on top of the surviving PhyNet namespace — the 3-second path of §8.3.
// onReady fires when the device is Running again.
func (d *Device) Reload(newCfg *config.DeviceConfig, onReady func()) {
	if newCfg != nil {
		d.cfg = newCfg
	}
	d.Stop("reload")
	d.state = DeviceBooting
	d.epoch++
	epoch := d.epoch
	start := d.eng.Now()
	d.eng.After(ReloadDuration, func() {
		if d.epoch != epoch || d.state != DeviceBooting {
			return
		}
		d.finishBoot()
		d.eng.Recorder().SpanAt("reload", d.Name, int64(start), int64(d.eng.Now()))
		if onReady != nil {
			onReady()
		}
	})
}

// LinkDown tells the firmware one of its interfaces lost carrier: BGP
// sessions on it reset; OSPF re-floods.
func (d *Device) LinkDown(iface string) {
	if d.state != DeviceRunning {
		return
	}
	d.eng.Recorder().Event("link", d.Name+"/"+iface, obs.Attr{K: "what", V: "down"})
	if d.bgp != nil {
		for idx, ifname := range d.peerIface {
			if ifname == iface {
				d.bgp.Peer(idx).Stop("link down")
			}
		}
	}
	if d.osp != nil {
		if idx, ok := d.ospfIfaces[iface]; ok {
			d.osp.InterfaceDown(idx)
		}
	}
}

// LinkUp restores an interface; BGP sessions restart.
func (d *Device) LinkUp(iface string) {
	if d.state != DeviceRunning {
		return
	}
	d.eng.Recorder().Event("link", d.Name+"/"+iface, obs.Attr{K: "what", V: "up"})
	epoch := d.epoch
	if d.bgp != nil {
		for idx, ifname := range d.peerIface {
			if ifname == iface {
				peer := d.bgp.Peer(idx)
				peer.Start()
				d.scheduleSessionRetry(peer, epoch, 0)
			}
		}
	}
	if d.osp != nil {
		if idx, ok := d.ospfIfaces[iface]; ok {
			d.osp.InterfaceUp(idx)
		}
	}
}

// bgpClock adapts sim.Engine to bgp.Clock.
type bgpClock struct{ e *sim.Engine }

func (c bgpClock) After(dur time.Duration, fn func()) bgp.Timer { return c.e.After(dur, fn) }

// ospfClock adapts sim.Engine to ospf.Clock.
type ospfClock struct{ e *sim.Engine }

func (c ospfClock) After(dur time.Duration, fn func()) ospf.Timer { return c.e.After(dur, fn) }

// withOddPrefixBug wraps an export policy with the "stopped announcing
// certain IP prefixes" firmware bug.
func withOddPrefixBug(base *bgp.Policy) *bgp.Policy {
	if base == nil {
		base = bgp.PermitAll
	}
	return &bgp.Policy{
		Name:          base.Name + "+fw-bug",
		Rules:         append([]bgp.Rule{{Name: "fw-bug", Match: bgp.Match{OddThirdOctet24: true}, Action: bgp.Deny}}, base.Rules...),
		DefaultAction: base.DefaultAction,
	}
}
