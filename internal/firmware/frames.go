package firmware

import (
	"bytes"
	"encoding/binary"
	"time"

	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/p4"
)

// BGPPort is the conventional BGP transport port; the emulator carries BGP
// messages directly as the payload of protocol-6 datagrams over the virtual
// links (the byte-level message codec is exercised on every hop; the TCP
// reliable-stream machinery is subsumed by the reliable virtual link).
const BGPPort = 179

// arpRetryInterval and arpMaxAttempts bound next-hop resolution.
const (
	arpRetryInterval = 3 * time.Second
	arpMaxAttempts   = 5
)

// sendBGP transmits an encoded BGP message to the peer with the given index.
func (d *Device) sendBGP(peerIdx int, data []byte) {
	iface := d.peerIface[peerIdx]
	dst := d.peerIP[peerIdx]
	local, ok := d.ifaceAddr[iface]
	if !ok {
		return
	}
	d.BGPUpdatesSent++
	pkt := netpkt.IPv4Packet{
		TTL: 64, Protocol: netpkt.ProtoTCP,
		Src: local.Addr, Dst: dst,
		Payload: data,
	}
	d.sendIPFrame(iface, dst, pkt.MarshalFramed(netpkt.EthernetHeaderLen))
}

// sendOSPF transmits an OSPF packet out the instance's interface idx. dst 0
// multicasts to the segment (broadcast MAC, no ARP needed).
func (d *Device) sendOSPF(ospfIdx int, _ netpkt.IP, data []byte) {
	var ifaceName string
	for name, idx := range d.ospfIfaces {
		if idx == ospfIdx {
			ifaceName = name
			break
		}
	}
	if ifaceName == "" {
		return
	}
	local, ok := d.ifaceAddr[ifaceName]
	if !ok {
		return
	}
	pkt := netpkt.IPv4Packet{
		TTL: 1, Protocol: netpkt.ProtoOSPF,
		Src: local.Addr, Dst: netpkt.IPFromBytes(224, 0, 0, 5),
		Payload: data,
	}
	vi := d.container.Iface(ifaceName)
	if vi == nil {
		return
	}
	frame := pkt.MarshalFramed(netpkt.EthernetHeaderLen)
	netpkt.PutEthernetHeader(frame, netpkt.BroadcastMAC, vi.MAC, netpkt.EtherTypeIPv4)
	d.fabric.Send(vi, frame)
}

// sendIPFrame routes an IP packet out the given interface towards an on-link
// next hop, resolving its MAC via ARP (queueing while unresolved). frame is
// a single buffer holding the encoded IP packet at offset EthernetHeaderLen;
// the Ethernet header in front is filled in here once the MAC is known, so
// the whole send path costs one allocation. Ownership of frame passes to the
// fabric (or to the ARP pending queue).
func (d *Device) sendIPFrame(iface string, nextHop netpkt.IP, frame []byte) {
	vi := d.container.Iface(iface)
	if vi == nil {
		return
	}
	mac, ok := d.arp[nextHop]
	if !ok {
		d.arpPending[nextHop] = append(d.arpPending[nextHop], frame)
		d.requestARP(iface, nextHop, 0)
		return
	}
	netpkt.PutEthernetHeader(frame, mac, vi.MAC, netpkt.EtherTypeIPv4)
	d.fabric.Send(vi, frame)
}

// requestARP broadcasts an ARP request for target, retrying a few times.
func (d *Device) requestARP(iface string, target netpkt.IP, attempt int) {
	if attempt >= arpMaxAttempts {
		d.logf("arp: resolution of %s failed, dropping %d queued packets", target, len(d.arpPending[target]))
		delete(d.arpPending, target)
		return
	}
	if d.Image.Bugs.ARPRefreshBroken && d.epoch > 1 {
		// §2: after a peering/config change (reload), ARP refresh silently
		// stops working; queued packets rot.
		d.logf("BUG arp-refresh: suppressed ARP request for %s", target)
		return
	}
	if attempt > 0 && d.arpAttempts[target] >= attempt+1 {
		return // a concurrent resolution already progressed
	}
	d.arpAttempts[target] = attempt + 1
	vi := d.container.Iface(iface)
	local, ok := d.ifaceAddr[iface]
	if vi == nil || !ok {
		return
	}
	req := &netpkt.ARPPacket{
		Op: netpkt.ARPRequest, SenderMAC: vi.MAC, SenderIP: local.Addr, TargetIP: target,
	}
	frame := &netpkt.EthernetFrame{Dst: netpkt.BroadcastMAC, Src: vi.MAC, EtherType: netpkt.EtherTypeARP, Payload: req.Marshal()}
	d.fabric.Send(vi, frame.Marshal())
	epoch := d.epoch
	d.eng.After(arpRetryInterval, func() {
		if d.epoch != epoch || d.state != DeviceRunning {
			return
		}
		if _, resolved := d.arp[target]; resolved {
			return
		}
		if len(d.arpPending[target]) == 0 {
			return
		}
		d.requestARP(iface, target, attempt+1)
	})
}

// handleFrame is the container's frame handler — the device's "NIC receive
// interrupt".
func (d *Device) handleFrame(iface string, data []byte) {
	if d.state != DeviceRunning {
		return
	}
	eth, err := netpkt.UnmarshalEthernet(data)
	if err != nil {
		return
	}
	vi := d.container.Iface(iface)
	if vi == nil {
		return
	}
	if !eth.Dst.IsBroadcast() && eth.Dst != vi.MAC {
		return // not for us
	}
	switch eth.EtherType {
	case netpkt.EtherTypeARP:
		d.handleARP(iface, vi.MAC, eth.Payload)
	case netpkt.EtherTypeIPv4:
		ip, err := netpkt.UnmarshalIPv4(eth.Payload)
		if err != nil {
			return
		}
		d.handleIP(iface, ip)
	}
}

func (d *Device) handleARP(iface string, myMAC netpkt.MAC, payload []byte) {
	if d.asic != nil {
		// SoftASIC images decide the trap in the P4 pipeline (ARP parses
		// as protocol 0 in the header vector).
		res := d.asic.Run(p4.NewPacket(0, 0, 0, 0, 0, 0, 0))
		if res.Verdict != p4.PuntedToCPU {
			// §7 Case 2: the dev build's pipeline lacks the ARP trap entry;
			// the frame never reaches the CPU.
			return
		}
	} else if d.Image.Bugs.ARPTrapBroken {
		// Fixed-function images model the same defect as a dead trap.
		return
	}
	if d.Image.Bugs.ARPRefreshBroken && d.epoch > 1 {
		// §2: after a peering-configuration change the ARP machinery wedges
		// entirely — stale cache entries keep old sessions alive, but no
		// new resolution happens in either direction.
		return
	}
	arp, err := netpkt.UnmarshalARP(payload)
	if err != nil {
		return
	}
	local, ok := d.ifaceAddr[iface]
	if !ok {
		return
	}
	switch arp.Op {
	case netpkt.ARPRequest:
		if arp.TargetIP != local.Addr {
			return
		}
		// Learn the asker and reply.
		d.learnARP(arp.SenderIP, arp.SenderMAC)
		reply := &netpkt.ARPPacket{
			Op: netpkt.ARPReply, SenderMAC: myMAC, SenderIP: local.Addr,
			TargetMAC: arp.SenderMAC, TargetIP: arp.SenderIP,
		}
		vi := d.container.Iface(iface)
		frame := &netpkt.EthernetFrame{Dst: arp.SenderMAC, Src: myMAC, EtherType: netpkt.EtherTypeARP, Payload: reply.Marshal()}
		d.fabric.Send(vi, frame.Marshal())
	case netpkt.ARPReply:
		d.learnARP(arp.SenderIP, arp.SenderMAC)
	}
}

// learnARP caches a binding and flushes packets queued on it.
func (d *Device) learnARP(ip netpkt.IP, mac netpkt.MAC) {
	d.arp[ip] = mac
	delete(d.arpAttempts, ip)
	pending := d.arpPending[ip]
	if len(pending) == 0 {
		return
	}
	delete(d.arpPending, ip)
	// Re-route each queued frame now that the next hop resolves. The
	// egress interface is recomputed (the FIB may have moved meanwhile).
	for _, frame := range pending {
		iface := d.ifaceForOnLink(ip)
		if iface == "" {
			continue
		}
		d.sendIPFrame(iface, ip, frame)
	}
}

// ifaceForOnLink returns the interface whose subnet covers the on-link IP.
func (d *Device) ifaceForOnLink(ip netpkt.IP) string {
	for name, addr := range d.ifaceAddr {
		sub := netpkt.Prefix{Addr: addr.Addr & addr.MaskIP(), Len: addr.Len}
		if sub.Contains(ip) && name != "lo" {
			return name
		}
	}
	return ""
}

// handleIP dispatches a received IP packet: local control-plane delivery or
// data-plane forwarding.
func (d *Device) handleIP(iface string, ip *netpkt.IPv4Packet) {
	meta := metaFromIP(ip)
	if flow, seq, ok := telemetrySignature(ip); ok {
		// Capture at ingress with the forwarding decision (§3.3).
		dec := d.fwd.Forward(iface, meta)
		d.capture(iface, flow, seq, *meta, dec)
		if dec.Verdict != dataplane.VerdictForward {
			return
		}
		d.emitForward(ip, dec)
		return
	}

	if d.localIPs[ip.Dst] || ip.Protocol == netpkt.ProtoOSPF {
		d.handleLocal(iface, ip)
		return
	}
	dec := d.fwd.Forward(iface, meta)
	if dec.Verdict != dataplane.VerdictForward {
		return
	}
	d.emitForward(ip, dec)
}

// emitForward decrements TTL, re-encodes and transmits toward the decided
// next hop.
func (d *Device) emitForward(ip *netpkt.IPv4Packet, dec dataplane.Decision) {
	out := *ip
	out.TTL--
	nh := dec.NextHop
	if nh == 0 {
		nh = ip.Dst // directly connected destination
	}
	d.sendIPFrame(dec.Egress, nh, out.MarshalFramed(netpkt.EthernetHeaderLen))
}

// handleLocal terminates a packet addressed to the device.
func (d *Device) handleLocal(iface string, ip *netpkt.IPv4Packet) {
	switch ip.Protocol {
	case netpkt.ProtoTCP:
		// BGP: look up the session by remote address.
		if d.bgp == nil {
			return
		}
		peer := d.peerByIP[ip.Src]
		if peer == nil {
			return
		}
		// The payload can be retained across the deferred processing without
		// a copy: fabric frame buffers are never recycled (see Fabric.Send).
		data := ip.Payload
		// Control-plane processing consumes VM CPU: base cost plus
		// per-route cost approximated from message size.
		work := d.Image.MsgWork + d.Image.RouteWork*float64(len(data))/5
		epoch := d.epoch
		d.submit(work, func() {
			if d.epoch != epoch || d.state != DeviceRunning {
				return
			}
			peer.HandleMessage(data)
		})
	case netpkt.ProtoOSPF:
		if d.osp == nil {
			return
		}
		if idx, ok := d.ospfIfaces[iface]; ok {
			data := ip.Payload
			src := ip.Src
			epoch := d.epoch
			d.submit(d.Image.MsgWork, func() {
				if d.epoch != epoch || d.state != DeviceRunning {
					return
				}
				d.osp.HandlePacket(idx, src, data)
			})
		}
	case netpkt.ProtoICMP:
		icmp, err := netpkt.UnmarshalICMP(ip.Payload)
		if err != nil || icmp.Type != netpkt.ICMPEchoRequest {
			return
		}
		reply := &netpkt.ICMPMessage{Type: netpkt.ICMPEchoReply, ID: icmp.ID, Seq: icmp.Seq, Payload: icmp.Payload}
		out := &netpkt.IPv4Packet{
			TTL: 64, Protocol: netpkt.ProtoICMP,
			Src: ip.Dst, Dst: ip.Src, Payload: reply.Marshal(),
		}
		d.sendFromSelf(out)
	}
}

// sendFromSelf routes a locally originated packet.
func (d *Device) sendFromSelf(ip *netpkt.IPv4Packet) {
	meta := metaFromIP(ip)
	dec := d.fwd.Forward("", meta)
	if dec.Verdict != dataplane.VerdictForward {
		return
	}
	nh := dec.NextHop
	if nh == 0 {
		nh = ip.Dst
	}
	d.sendIPFrame(dec.Egress, nh, ip.MarshalFramed(netpkt.EthernetHeaderLen))
}

// InjectPacket originates a telemetry probe from this device (the
// InjectPackets API, §3.3). The probe is a UDP datagram carrying the
// telemetry signature; every device it traverses captures it.
func (d *Device) InjectPacket(meta dataplane.PacketMeta, flow uint64, seq uint32) {
	if d.state != DeviceRunning {
		return
	}
	payload := make([]byte, len(TelemetryMagic)+12)
	copy(payload, TelemetryMagic)
	binary.BigEndian.PutUint64(payload[len(TelemetryMagic):], flow)
	binary.BigEndian.PutUint32(payload[len(TelemetryMagic)+8:], seq)
	udp := &netpkt.UDPDatagram{SrcPort: meta.SrcPort, DstPort: meta.DstPort, Payload: payload}
	ip := &netpkt.IPv4Packet{
		TTL: meta.TTL, Protocol: netpkt.ProtoUDP,
		Src: meta.Src, Dst: meta.Dst,
		Payload: udp.Marshal(),
	}
	dec := d.fwd.Forward("", metaFromIP(ip))
	d.capture("", flow, seq, meta, dec)
	if dec.Verdict != dataplane.VerdictForward {
		return
	}
	d.emitForward(ip, dec)
}

// capture records a telemetry observation.
func (d *Device) capture(iface string, flow uint64, seq uint32, meta dataplane.PacketMeta, dec dataplane.Decision) {
	d.Captures = append(d.Captures, CaptureRecord{
		Time: d.eng.Now(), Device: d.Name,
		FlowID: flow, Seq: seq,
		Iface: iface, Verdict: dec.Verdict, Egress: dec.Egress,
		Meta: meta,
	})
}

// PullPackets drains and returns the capture buffer (§3.3 PullPackets with
// clean-after-pull).
func (d *Device) PullPackets() []CaptureRecord {
	out := d.Captures
	d.Captures = nil
	return out
}

// telemetrySignature extracts (flow, seq) if the packet is a telemetry
// probe.
func telemetrySignature(ip *netpkt.IPv4Packet) (uint64, uint32, bool) {
	if ip.Protocol != netpkt.ProtoUDP {
		return 0, 0, false
	}
	udp, err := netpkt.UnmarshalUDP(ip.Payload)
	if err != nil || len(udp.Payload) < len(TelemetryMagic)+12 {
		return 0, 0, false
	}
	if !bytes.HasPrefix(udp.Payload, TelemetryMagic) {
		return 0, 0, false
	}
	flow := binary.BigEndian.Uint64(udp.Payload[len(TelemetryMagic):])
	seq := binary.BigEndian.Uint32(udp.Payload[len(TelemetryMagic)+8:])
	return flow, seq, true
}

// metaFromIP derives the forwarding 5-tuple, pulling ports from UDP
// payloads.
func metaFromIP(ip *netpkt.IPv4Packet) *dataplane.PacketMeta {
	m := &dataplane.PacketMeta{Src: ip.Src, Dst: ip.Dst, Proto: ip.Protocol, TTL: ip.TTL}
	if ip.Protocol == netpkt.ProtoUDP {
		if udp, err := netpkt.UnmarshalUDP(ip.Payload); err == nil {
			m.SrcPort, m.DstPort = udp.SrcPort, udp.DstPort
		}
	}
	return m
}

// Stats is the PullStates payload for one device.
type Stats struct {
	Name        string
	State       DeviceState
	FIBLen      int
	LocRIB      int
	Established int
	Flaps       int
	MsgsSent    uint64
}

// PullStates summarizes device state (§3.3 PullStates).
func (d *Device) PullStates() Stats {
	st := Stats{Name: d.Name, State: d.state, Flaps: d.flaps, MsgsSent: d.BGPUpdatesSent}
	if d.fib != nil {
		st.FIBLen = d.fib.Len()
	}
	if d.bgp != nil {
		bs := d.bgp.Stats()
		st.LocRIB = bs.LocRIB
		st.Established = bs.Established
	}
	return st
}
