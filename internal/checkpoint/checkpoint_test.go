package checkpoint

import (
	"testing"
	"time"

	"crystalnet/internal/sim"
)

func TestCloneMap(t *testing.T) {
	if CloneMap[string, int](nil) != nil {
		t.Fatal("nil map did not stay nil")
	}
	m := map[string]int{"a": 1, "b": 2}
	c := CloneMap(m)
	c["a"] = 9
	c["c"] = 3
	if m["a"] != 1 || len(m) != 2 {
		t.Fatalf("clone mutation leaked into source: %v", m)
	}
}

func TestCloneSlice(t *testing.T) {
	if CloneSlice[[]int](nil) != nil {
		t.Fatal("nil slice did not stay nil")
	}
	s := []int{1, 2, 3}
	c := CloneSlice(s)
	c[0] = 9
	if s[0] != 1 {
		t.Fatalf("clone mutation leaked into source: %v", s)
	}
}

func TestSnapshotCarriesEngineState(t *testing.T) {
	eng := sim.NewEngine(11)
	eng.After(time.Second, func() {})
	eng.Run(0)
	st, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{TakenAt: st.Now, Engine: st, Origin: "opaque"}
	forked := sim.NewEngineFrom(snap.Engine)
	if forked.Now() != eng.Now() || forked.Fired() != eng.Fired() {
		t.Fatalf("forked engine now=%s fired=%d, want now=%s fired=%d",
			forked.Now(), forked.Fired(), eng.Now(), eng.Fired())
	}
	for i := 0; i < 50; i++ {
		if a, b := eng.Jitter(time.Second, time.Minute), forked.Jitter(time.Second, time.Minute); a != b {
			t.Fatalf("draw %d diverged: %s != %s", i, a, b)
		}
	}
}
