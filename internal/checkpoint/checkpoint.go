// Package checkpoint defines the snapshot handle used to branch a converged
// emulation: converge once, fork N times.
//
// A Snapshot is cheap to take — it records the engine's serializable scalar
// state (clock, scheduling counters, RNG stream position) plus a frozen
// reference to the source emulation. The deep copy happens at fork time,
// in Orchestrator.Fork, which walks the frozen emulation strictly read-only
// so any number of forks can materialize concurrently.
//
// The contract that makes this sound is quiescence: a snapshot can only be
// taken when the engine's event queue is empty (RunUntilConverged drains it).
// An empty queue means there are no pending closures to duplicate, every
// protocol timer (BGP MRAI flush, OSPF SPF debounce, session retries) has
// fired or been canceled, and no VM boot callbacks are outstanding. Forks
// therefore restore only data, never control flow.
//
// What is shared copy-on-write versus deep-copied:
//
//   - Shared (immutable after convergence): the topology *topo.Network, the
//     parsed device configs, BGP policies, encoded *bgp.ASPath values and
//     *bgp.Attrs path attributes (cloned once per fork via a pointer memo so
//     intra-router sharing — Adj-RIB-In, Loc-RIB candidates, last-best — is
//     preserved exactly), ACL rule objects, and P4 table entries.
//   - Deep-copied (mutable routing state): FIB tries, BGP peer and Loc-RIB
//     state, OSPF LSDBs and adjacency state, phynet hosts/containers/links,
//     VM accounting, ARP caches and pending frames, telemetry counters.
//
// The sharing of *bgp.Attrs relies on the no-retention contract from the
// routing hooks (Hooks.InstallRoute and friends): consumers must not hold
// references to hook arguments beyond the call, so attribute objects are
// only reachable through the router structures the fork rewrites.
//
// DESIGN.md §6 is the full snapshot-model write-up this comment summarizes.
package checkpoint

import (
	"sync/atomic"

	"crystalnet/internal/sim"
)

// Snapshot is a frozen, forkable image of a converged emulation.
//
// It does not deep-copy anything itself: Origin points at the live source
// emulation, which must not be mutated (stepped, cleared, reconfigured)
// while forks are outstanding. Orchestrator.Fork performs the deep copy,
// reading the origin without writing it, so concurrent forks are safe.
type Snapshot struct {
	// TakenAt is the virtual time at which the snapshot was captured.
	TakenAt sim.Time
	// Engine is the serializable engine state; forks boot a fresh engine
	// from it so virtual clocks, FIFO sequence numbers and RNG draws
	// continue exactly as a fresh run's would.
	Engine sim.EngineState
	// Shards holds the per-domain engine states of a sharded emulation
	// (DESIGN.md §10), in domain order; nil for the classic single-engine
	// schedule. Forks restore one engine per entry so every domain's RNG
	// stream and sequence counter continue exactly where they stopped.
	Shards []sim.EngineState
	// Origin is the frozen source emulation. It is typed as any so the
	// leaf packages that clone themselves into a fork need not import the
	// orchestration layer; core.Orchestrator.Fork asserts it back.
	Origin any

	// invalid is set by Invalidate; Fork refuses invalidated snapshots.
	invalid atomic.Bool
}

// Invalidate marks the snapshot permanently unforkable. A warm-pool owner
// calls it when an entry is evicted and its last borrower releases: any
// stale handle that tries to fork afterwards gets an error instead of
// silently reviving state the pool has given up. Safe to call from any
// goroutine, and idempotent.
func (s *Snapshot) Invalidate() { s.invalid.Store(true) }

// Invalidated reports whether Invalidate has been called.
func (s *Snapshot) Invalidated() bool { return s.invalid.Load() }

// CloneMap returns a shallow copy of m, preserving nil.
//
// It is the workhorse of the fork paths: most per-device maps (interface
// addressing, ARP caches, peer bookkeeping) have value types that are
// plain data, so a key/value copy is a deep copy.
func CloneMap[K comparable, V any](m map[K]V) map[K]V {
	if m == nil {
		return nil
	}
	c := make(map[K]V, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// CloneSlice returns a copy of s, preserving nil.
func CloneSlice[S ~[]E, E any](s S) S {
	if s == nil {
		return nil
	}
	c := make(S, len(s))
	copy(c, s)
	return c
}
