package sim

import (
	"math"
	"math/bits"
)

// RNG is the engine's deterministic random source: a PCG-XSH-RR 64/32
// generator (O'Neill 2014). Unlike math/rand's hidden-state sources, its
// entire state is two exported-able words, so an engine snapshot can record
// the stream position exactly and a forked engine resumes the identical
// draw sequence — the reproducibility contract internal/checkpoint needs.
//
// The value methods mirror the subset of *math/rand.Rand the emulator uses
// (Int63, Int63n, Float64, ExpFloat64), so call sites read the same.
type RNG struct {
	state uint64
	inc   uint64 // stream selector; always odd
}

// pcgMult is the 64-bit LCG multiplier from the PCG reference implementation.
const pcgMult = 6364136223846793005

// defaultStream is the default PCG sequence constant (the reference
// implementation's initseq), pre-shifted into its odd form.
const defaultStream = 1442695040888963407 | 1

// NewRNG returns a generator seeded with seed on the default stream,
// following the reference pcg32_srandom initialization.
func NewRNG(seed int64) *RNG {
	r := &RNG{state: 0, inc: defaultStream}
	r.next32()
	r.state += uint64(seed)
	r.next32()
	return r
}

// RNGState is the full serializable state of an RNG. Restoring it with
// NewRNGFrom yields a generator that continues the exact draw stream.
type RNGState struct {
	State uint64
	Inc   uint64
}

// State captures the generator's current position.
func (r *RNG) State() RNGState { return RNGState{State: r.state, Inc: r.inc} }

// NewRNGFrom restores a generator from a captured state.
func NewRNGFrom(st RNGState) *RNG { return &RNG{state: st.State, inc: st.Inc | 1} }

// next32 advances the LCG state and returns the permuted 32-bit output.
func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := int(old >> 59)
	return bits.RotateLeft32(xorshifted, -rot)
}

// Uint64 returns a uniformly random 64-bit value (two PCG outputs).
func (r *RNG) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Int63 returns a uniformly random non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Int63n returns a uniformly random value in [0, n). It panics if n <= 0.
// Like math/rand, it rejects the biased tail rather than folding it in.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	if n&(n-1) == 0 { // power of two
		return r.Int63() & (n - 1)
	}
	max := int64((1 << 63) - 1 - (1<<63)%uint64(n))
	v := r.Int63()
	for v > max {
		v = r.Int63()
	}
	return v % n
}

// Float64 returns a uniformly random value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1, by
// inversion sampling (simpler than math/rand's ziggurat and exactly
// reproducible from the state words alone).
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}
