// Package sim provides the discrete-event simulation engine that drives
// every CrystalNet emulation in this repository.
//
// The real CrystalNet runs vendor firmware in wall-clock time on cloud VMs.
// Here, every component — cloud provisioning, firmware boot, BGP message
// processing, link propagation — is an event scheduled on a single virtual
// clock. This makes emulations of thousands of devices deterministic,
// seedable and fast on a single core, while preserving the latency shape the
// paper reports (Figures 8 and 9).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation.
type Time time.Duration

// String formats the virtual time as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Minutes returns the virtual time in minutes.
func (t Time) Minutes() float64 { return time.Duration(t).Minutes() }

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// event is a scheduled callback.
type event struct {
	at     Time
	seq    uint64 // tie-breaker for deterministic FIFO ordering at equal times
	fn     func()
	index  int // heap index, -1 once popped or canceled
	cancel bool
}

// eventQueue is a min-heap of events ordered by (time, insertion sequence).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be canceled before it fires.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's callback from running. Canceling an
// already-fired or already-canceled timer is a no-op. It returns true if the
// timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancel || t.ev.index == -1 {
		return false
	}
	t.ev.cancel = true
	return true
}

// Engine is a discrete-event simulator: a virtual clock plus an ordered
// queue of pending callbacks. It is not safe for concurrent use; CrystalNet
// emulations are single-threaded by design so that runs are reproducible.
type Engine struct {
	now    Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	maxed  bool
	halted bool
}

// NewEngine returns an engine whose random source is seeded with seed.
// Two engines built with the same seed and fed the same schedule produce
// identical executions.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All randomness in
// an emulation (boot jitter, failure injection, ECMP seeds) must come from
// here to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Pending reports the number of events still queued (including canceled
// events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have executed since the engine was created.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs next, after events already
// queued for the current instant).
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Jitter returns a duration drawn uniformly from [d, d+spread).
func (e *Engine) Jitter(d, spread time.Duration) time.Duration {
	if spread <= 0 {
		return d
	}
	return d + time.Duration(e.rng.Int63n(int64(spread)))
}

// Halt stops the currently running Run/RunUntil/RunFor loop after the
// in-flight event returns. Pending events remain queued.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single next event, advancing the clock to its time.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains (quiescence), Halt is called,
// or maxEvents fire (0 means no limit). It returns the number of events
// executed and an error if the event cap was hit — which in an emulation
// almost always means a routing loop or livelock.
func (e *Engine) Run(maxEvents uint64) (uint64, error) {
	e.halted = false
	var n uint64
	for !e.halted {
		if maxEvents > 0 && n >= maxEvents {
			e.maxed = true
			return n, fmt.Errorf("sim: event cap %d reached at t=%s (possible livelock)", maxEvents, e.now)
		}
		if !e.Step() {
			break
		}
		n++
	}
	return n, nil
}

// RunUntil executes events with time ≤ deadline. Events scheduled beyond the
// deadline stay queued; the clock is advanced to the deadline if it was
// reached without draining. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.halted = false
	var n uint64
	for !e.halted {
		if len(e.queue) == 0 {
			break
		}
		if next := e.peekTime(); next > deadline {
			e.now = deadline
			return n
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor executes events for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) uint64 {
	return e.RunUntil(e.now.Add(d))
}

func (e *Engine) peekTime() Time {
	// Skip leading canceled events so a far-future canceled timer does not
	// stall RunUntil.
	for len(e.queue) > 0 && e.queue[0].cancel {
		heap.Pop(&e.queue)
	}
	if len(e.queue) == 0 {
		return e.now
	}
	return e.queue[0].at
}
