// Package sim provides the discrete-event simulation engine that drives
// every CrystalNet emulation in this repository.
//
// The real CrystalNet runs vendor firmware in wall-clock time on cloud VMs.
// Here, every component — cloud provisioning, firmware boot, BGP message
// processing, link propagation — is an event scheduled on a single virtual
// clock. This makes emulations of thousands of devices deterministic,
// seedable and fast on a single core, while preserving the latency shape the
// paper reports (Figures 8 and 9).
//
// DESIGN.md §1 records virtual time as the repo's central substitution;
// traced runs stamp spans with this clock (DESIGN.md §7,
// docs/OBSERVABILITY.md).
package sim

import (
	"fmt"
	"strconv"
	"time"

	"crystalnet/internal/obs"
)

// Time is a point in virtual time, measured as an offset from the start of
// the simulation.
type Time time.Duration

// String formats the virtual time as a duration from simulation start.
func (t Time) String() string { return time.Duration(t).String() }

// Seconds returns the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Minutes returns the virtual time in minutes.
func (t Time) Minutes() float64 { return time.Duration(t).Minutes() }

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// event is a scheduled callback. Events are recycled through the engine's
// free list once they fire or are canceled; gen guards stale Timer handles
// against canceling an unrelated reuse.
type event struct {
	at     Time
	seq    uint64 // tie-breaker for deterministic FIFO ordering at equal times
	fn     func()
	index  int // heap index, -1 once popped or canceled
	gen    uint32
	daemon bool // background event: does not keep Run from converging
	eng    *Engine
}

// eventQueue is a hand-rolled binary min-heap of events ordered by
// (time, insertion sequence). container/heap's interface indirection and
// swap-based sifting showed up as ~9% of a mockup's CPU profile, so the
// sifts here move a hole instead (one assignment per level) with the
// comparison inlined. The pop order — strictly ascending (at, seq), a total
// order — is identical to the interface version's.
type eventQueue []*event

// evLess reports whether a fires before b: earlier time, then FIFO seq.
func evLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up.
func (q *eventQueue) push(ev *event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
	*q = h
}

// popMin removes and returns the next event to fire.
func (q *eventQueue) popMin() *event {
	h := *q
	min := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	*q = h[:n]
	min.index = -1
	if n > 0 {
		q.siftDown(0, last)
	}
	return min
}

// siftDown places ev into the hole at i, descending while a child orders
// before it.
func (q *eventQueue) siftDown(i int, ev *event) {
	h := *q
	n := len(h)
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && evLess(h[r], h[c]) {
			c = r
		}
		if !evLess(h[c], ev) {
			break
		}
		h[i] = h[c]
		h[i].index = i
		i = c
	}
	h[i] = ev
	ev.index = i
}

// siftUp re-raises the event at i after a removal placed it there.
func (q *eventQueue) siftUp(i int) {
	h := *q
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 2
		if !evLess(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].index = i
		i = p
	}
	h[i] = ev
	ev.index = i
}

// removeAt deletes the event at index i (used by Timer.Cancel).
func (q *eventQueue) removeAt(i int) {
	h := *q
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	*q = h[:n]
	ev.index = -1
	if i < n {
		q.siftDown(i, last)
		if last.index == i {
			q.siftUp(i)
		}
	}
}

// Timer is a handle to a scheduled event that can be canceled before it fires.
type Timer struct {
	ev  *event
	gen uint32
}

// Cancel prevents the timer's callback from running and removes the event
// from the queue immediately, so mass-cancellation never bloats the heap.
// Canceling an already-fired or already-canceled timer is a no-op. It
// returns true if the timer was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil {
		return false
	}
	ev := t.ev
	if ev.gen != t.gen || ev.index < 0 {
		return false
	}
	if ev.daemon {
		ev.eng.daemons--
	}
	ev.eng.queue.removeAt(ev.index)
	ev.eng.recycle(ev)
	return true
}

// maxFreeEvents caps the event free list so a burst of churn does not pin
// memory forever.
const maxFreeEvents = 1 << 16

// Engine is a discrete-event simulator: a virtual clock plus an ordered
// queue of pending callbacks. It is not safe for concurrent use; CrystalNet
// emulations are single-threaded by design so that runs are reproducible
// (the experiment harness parallelizes across independent engines, never
// within one).
type Engine struct {
	now     Time
	queue   eventQueue
	free    []*event // recycled events, bounded by maxFreeEvents
	seq     uint64
	rng     *RNG
	fired   uint64
	daemons int // pending daemon events (subset of queue)
	maxed   bool
	halted  bool
	rec     *obs.Recorder // nil unless tracing is enabled
}

// NewEngine returns an engine whose random source is seeded with seed.
// Two engines built with the same seed and fed the same schedule produce
// identical executions.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// EngineState is the serializable scalar state of a quiescent engine: the
// clock, the scheduling and fired counters, and the RNG stream position.
// It deliberately excludes the event queue — an engine can only be
// snapshotted when the queue is empty, because pending events are closures
// that cannot be duplicated into another run.
type EngineState struct {
	Now   Time
	Seq   uint64
	Fired uint64
	RNG   RNGState
}

// Snapshot captures the engine's state. It fails unless the engine is
// quiescent (no pending events): quiescence is the contract that makes a
// restored engine's future identical to the original's.
func (e *Engine) Snapshot() (EngineState, error) {
	if len(e.queue) != 0 {
		if e.daemons == len(e.queue) {
			return EngineState{}, fmt.Errorf("sim: cannot snapshot engine with %d pending daemon events (background failure/health timers cannot cross a snapshot)", e.daemons)
		}
		return EngineState{}, fmt.Errorf("sim: cannot snapshot engine with %d pending events", len(e.queue))
	}
	return EngineState{Now: e.now, Seq: e.seq, Fired: e.fired, RNG: e.rng.State()}, nil
}

// NewEngineFrom restores an engine from a snapshot. The restored engine has
// an empty queue, the captured clock/counters, and an RNG that continues
// the captured draw stream — scheduling the same events on it produces the
// same execution the original engine would have produced.
func NewEngineFrom(st EngineState) *Engine {
	return &Engine{now: st.Now, seq: st.Seq, fired: st.Fired, rng: NewRNGFrom(st.RNG)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. All randomness in
// an emulation (boot jitter, failure injection, ECMP seeds) must come from
// here to keep runs reproducible.
func (e *Engine) Rand() *RNG { return e.rng }

// SetRecorder attaches an observability recorder and binds its clock to
// this engine's virtual time. Passing nil disables tracing. The recorder
// rides along with the engine so every layer that can see the engine (or
// is forked with it) shares one trace; the Step/Run hot loop itself is
// never instrumented per event.
func (e *Engine) SetRecorder(rec *obs.Recorder) {
	e.rec = rec
	if rec != nil {
		rec.SetClock(func() int64 { return int64(e.now) })
	}
}

// Recorder returns the attached recorder, nil when tracing is disabled.
// A nil result is safe to call methods on — obs treats it as the
// disabled tracer.
func (e *Engine) Recorder() *obs.Recorder { return e.rec }

// Pending reports the number of live events still queued. Canceled events
// are removed from the queue eagerly, so they never count.
func (e *Engine) Pending() int { return len(e.queue) }

// PendingDaemons reports how many of the pending events are daemon
// (background) events scheduled via Daemon.
func (e *Engine) PendingDaemons() int { return e.daemons }

// Fired reports how many events have executed since the engine was created.
func (e *Engine) Fired() uint64 { return e.fired }

// recycle returns a fired or canceled event to the free list. The
// generation bump invalidates any Timer handle still pointing at it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.index = -1
	ev.daemon = false
	ev.gen++
	if len(e.free) < maxFreeEvents {
		e.free = append(e.free, ev)
	}
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// is clamped to the current time (the event runs next, after events already
// queued for the current instant).
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		t = e.now
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	ev.at, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.queue.push(ev)
	return &Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Daemon schedules fn like After, but marks the event as a background
// (daemon) event: Run treats a queue holding only daemon events as
// quiescent and returns instead of chasing them forever. MTBF failure
// timers and health-monitor ticks are daemons — they are always armed, so
// without this marker an emulation with random failures enabled could
// never "converge" (the queue would never drain). Daemon events still fire
// normally whenever ordinary events scheduled after them keep the run
// alive, and always fire under RunUntil/RunFor within the deadline.
//
// Work that a daemon event spawns should be scheduled as ordinary events
// (or further daemons, for the recurring timer itself) so that convergence
// tracks real pending work.
func (e *Engine) Daemon(d time.Duration, fn func()) *Timer {
	t := e.After(d, fn)
	t.ev.daemon = true
	e.daemons++
	return t
}

// Jitter returns a duration drawn uniformly from [d, d+spread).
func (e *Engine) Jitter(d, spread time.Duration) time.Duration {
	if spread <= 0 {
		return d
	}
	return d + time.Duration(e.rng.Int63n(int64(spread)))
}

// Halt stops the currently running Run/RunUntil/RunFor loop after the
// in-flight event returns. Pending events remain queued.
func (e *Engine) Halt() { e.halted = true }

// CancelAll drops every pending event — daemon timers included — without
// firing it. It is the teardown primitive behind a canceled emulation: an
// abandoned rehearsal discards its in-flight protocol work wholesale, then
// schedules (and drains) only the Clear sequence. Timer handles to dropped
// events become inert, exactly as after Cancel.
func (e *Engine) CancelAll() {
	for len(e.queue) > 0 {
		ev := e.queue.popMin()
		if ev.daemon {
			e.daemons--
		}
		e.recycle(ev)
	}
}

// Step executes the single next event, advancing the clock to its time.
// It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.popMin()
	if ev.daemon {
		e.daemons--
	}
	e.now = ev.at
	e.fired++
	fn := ev.fn
	e.recycle(ev)
	fn()
	return true
}

// Run executes events until the queue drains to quiescence (no events, or
// only daemon events, remain), Halt is called, or maxEvents fire (0 means
// no limit). It returns the number of events
// executed and an error if the event cap was hit — which in an emulation
// almost always means a routing loop or livelock.
//
// When a recorder is attached, each Run call records one "engine/run"
// span tagged with the number of events it fired — the coarse unit of
// engine work. Individual events are never traced; that would both drown
// the trace and put work on the hot loop.
func (e *Engine) Run(maxEvents uint64) (uint64, error) {
	if e.rec == nil {
		return e.run(maxEvents)
	}
	sp := e.rec.Start("engine", "run")
	n, err := e.run(maxEvents)
	sp.End(obs.Attr{K: "events", V: strconv.FormatUint(n, 10)})
	return n, err
}

func (e *Engine) run(maxEvents uint64) (uint64, error) {
	e.halted = false
	var n uint64
	for !e.halted {
		if maxEvents > 0 && n >= maxEvents {
			e.maxed = true
			return n, fmt.Errorf("sim: event cap %d reached at t=%s (possible livelock)", maxEvents, e.now)
		}
		// Quiescent when only daemon events (recurring background timers)
		// remain: the emulation has no real work left, so Run converges
		// instead of firing failure/health timers until the end of time.
		if len(e.queue) == e.daemons {
			break
		}
		if !e.Step() {
			break
		}
		n++
	}
	return n, nil
}

// RunUntil executes events with time ≤ deadline. Events scheduled beyond the
// deadline stay queued; the clock is advanced to the deadline if it was
// reached without draining. It returns the number of events executed.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.halted = false
	var n uint64
	for !e.halted {
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].at > deadline {
			e.now = deadline
			return n
		}
		if !e.Step() {
			break
		}
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}

// RunFor executes events for d of virtual time from now.
func (e *Engine) RunFor(d time.Duration) uint64 {
	return e.RunUntil(e.now.Add(d))
}
