package sim

import (
	"fmt"
	"time"

	"crystalnet/internal/parallel"
)

// ShardSet scales one emulation across cores without giving up determinism
// (DESIGN.md §10). The device population is partitioned into domains — one
// per VM, fixed by the topology, never by the worker count — and each domain
// owns a private Engine (its own queue, clock, sequence counter and RNG
// stream). A master engine keeps everything that is not a device: cloud
// provisioning, build orchestration, fault injection, recovery supervision.
//
// Execution is lockstep per virtual instant T:
//
//  1. clocks of all engines are synchronized to T,
//  2. the master drains its events at T serially,
//  3. every domain drains its events at T, domains running in parallel on up
//     to `workers` goroutines,
//  4. fold hooks run serially (shared counters accumulated per-domain during
//     the parallel phase are merged), and
//  5. cross-domain deliveries staged during the parallel phase are flushed
//     onto their target engines in (source domain, append order) — an order
//     independent of how goroutines were scheduled.
//
// Within a domain execution is single-threaded and (time, seq)-ordered;
// across domains every interaction happens at a barrier in a canonical
// order; and each domain's RNG stream depends only on the root seed and the
// domain index. The observable output of a sharded run is therefore
// byte-identical for any worker count, including workers=1. (It is *not*
// identical to the classic single-engine schedule: per-domain RNG streams
// draw differently than one shared stream, which is why sharding is opt-in
// per emulation rather than a drop-in replacement.)
type ShardSet struct {
	master  *Engine
	domains []*Engine
	workers int
	// outboxes[d] holds cross-engine deliveries staged by domain d during a
	// parallel drain. Each domain appends only to its own outbox, so the
	// parallel phase needs no locks.
	outboxes [][]stagedEvent
	// inParallel is true while domain goroutines are draining. It is written
	// by the lockstep loop around Pool.Do, whose dispatch (channel send) and
	// join (WaitGroup wait) edges give the necessary happens-before for the
	// domain readers.
	inParallel bool
	// folds run serially at every barrier, merging per-domain accumulators
	// into their shared homes (e.g. fabric frame counters).
	folds []func()
	// Check, when non-nil, is polled once per instant; a non-nil error
	// aborts Run with that error (the cancellation hook).
	Check func() error
}

type stagedEvent struct {
	at     Time
	target *Engine
	fn     func()
}

// goldenGamma spreads the root seed across domain RNG streams (the
// fixed-point golden ratio increment used by splittable PRNGs).
const goldenGamma = int64(-7046029254386353131) // 0x9E3779B97F4A7C15 as int64

// NewShardSet builds a shard set over master with `domains` per-domain
// engines. Domain engine d is seeded from f(rootSeed, d), so the ensemble's
// randomness is a pure function of the root seed and the (topology-fixed)
// domain partition — never of the worker count. workers <= 1 drains domains
// serially on the calling goroutine, which is the reference schedule the
// parallel runs must match byte-for-byte.
func NewShardSet(master *Engine, rootSeed int64, domains, workers int) *ShardSet {
	s := &ShardSet{
		master:   master,
		domains:  make([]*Engine, domains),
		workers:  workers,
		outboxes: make([][]stagedEvent, domains),
	}
	for d := range s.domains {
		s.domains[d] = NewEngine(rootSeed ^ goldenGamma*int64(d+1))
	}
	return s
}

// Domains returns the number of per-domain engines.
func (s *ShardSet) Domains() int { return len(s.domains) }

// Workers returns the configured parallelism of the domain phase.
func (s *ShardSet) Workers() int { return s.workers }

// Engine returns the engine owning domain d; d == -1 is the master.
func (s *ShardSet) Engine(d int) *Engine {
	if d < 0 {
		return s.master
	}
	return s.domains[d]
}

// InParallel reports whether a parallel domain drain is executing — the
// signal shared-counter owners use to switch from direct writes to their
// per-domain accumulation slots.
func (s *ShardSet) InParallel() bool { return s.inParallel }

// AddFold registers a barrier hook, run serially after every parallel phase.
func (s *ShardSet) AddFold(fn func()) { s.folds = append(s.folds, fn) }

// ScheduleAfter schedules fn to run d after the current instant on the
// engine owning dst. src must identify the executing domain (-1 when called
// from master-serial context). During a parallel drain, cross-domain targets
// are staged in the source domain's outbox and flushed at the barrier; every
// other combination schedules directly, which is safe because either the
// target engine belongs to the executing goroutine or no parallel phase is
// running. d must be positive for cross-domain sends so staged deliveries
// land strictly after the current instant.
func (s *ShardSet) ScheduleAfter(src, dst int, d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	at := s.Engine(src).now.Add(d)
	target := s.Engine(dst)
	if !s.inParallel || src == dst {
		target.At(at, fn)
		return
	}
	s.outboxes[src] = append(s.outboxes[src], stagedEvent{at: at, target: target, fn: fn})
}

// pendingTotals sums queue lengths and daemon counts across all engines.
func (s *ShardSet) pendingTotals() (total, daemons int) {
	total, daemons = len(s.master.queue), s.master.daemons
	for _, e := range s.domains {
		total += len(e.queue)
		daemons += e.daemons
	}
	return total, daemons
}

// nextInstant returns the earliest pending event time across all engines.
func (s *ShardSet) nextInstant() (Time, bool) {
	var t Time
	found := false
	if len(s.master.queue) > 0 {
		t, found = s.master.queue[0].at, true
	}
	for _, e := range s.domains {
		if len(e.queue) > 0 && (!found || e.queue[0].at < t) {
			t, found = e.queue[0].at, true
		}
	}
	return t, found
}

// drainThrough steps e until its next event is beyond t, it halts, or the
// budget (0 = unlimited) is exhausted. Returns events fired.
func drainThrough(e *Engine, t Time, budget uint64) uint64 {
	var n uint64
	for len(e.queue) > 0 && e.queue[0].at <= t && !e.halted {
		if budget > 0 && n >= budget {
			break
		}
		e.Step()
		n++
	}
	return n
}

func (s *ShardSet) halted() bool {
	if s.master.halted {
		return true
	}
	for _, e := range s.domains {
		if e.halted {
			return true
		}
	}
	return false
}

// Run executes the lockstep schedule until global quiescence (only daemon
// events remain anywhere), Halt on any engine, a Check error, or maxEvents
// total fired events (0 = no limit; the cap error matches Engine.Run's).
func (s *ShardSet) Run(maxEvents uint64) (uint64, error) {
	s.master.halted = false
	for _, e := range s.domains {
		e.halted = false
	}
	var n uint64
	counts := make([]uint64, len(s.domains))
	// One resident worker set for the whole run: the lockstep loop fans out
	// once (often several times) per virtual instant, so per-phase goroutine
	// spawn/join — what parallel.Run would cost here — is paid millions of
	// times per emulation. Closed on every exit path so runs never leak
	// goroutines into long-lived processes (crystald keeps emulations warm).
	pool := parallel.NewPool(s.workers)
	defer pool.Close()
	for {
		if s.Check != nil {
			if err := s.Check(); err != nil {
				return n, err
			}
		}
		if s.halted() {
			return n, nil
		}
		if total, daemons := s.pendingTotals(); total == daemons {
			return n, nil
		}
		t, ok := s.nextInstant()
		if !ok {
			return n, nil
		}
		// Synchronize clocks so every engine agrees on "now" for the whole
		// instant — serial master code scheduling on a domain engine (and
		// vice versa) must measure delays from T, not from whenever that
		// engine last fired an event. Safe: t is the global minimum, so no
		// engine has a pending event before it.
		s.master.now = t
		for _, e := range s.domains {
			e.now = t
		}
		// Rounds at this instant: master serially, then domains in
		// parallel, until no engine has events left at t. (Master events at
		// t can seed domain events at t; staged cross-domain deliveries are
		// strictly later, so this converges.)
		for {
			budget := uint64(0)
			if maxEvents > 0 {
				if n >= maxEvents {
					return n, fmt.Errorf("sim: event cap %d reached at t=%s (possible livelock)", maxEvents, t)
				}
				budget = maxEvents - n
			}
			n += drainThrough(s.master, t, budget)
			s.inParallel = true
			pool.Do(len(s.domains), func(d int) {
				counts[d] = drainThrough(s.domains[d], t, budget)
			})
			s.inParallel = false
			for d, c := range counts {
				n += c
				counts[d] = 0
			}
			for _, fold := range s.folds {
				fold()
			}
			// Flush staged cross-domain deliveries in canonical (source
			// domain, append) order so target-engine sequence numbers are
			// independent of goroutine scheduling.
			for d := range s.outboxes {
				for _, se := range s.outboxes[d] {
					se.target.At(se.at, se.fn)
				}
				s.outboxes[d] = s.outboxes[d][:0]
			}
			if maxEvents > 0 && n >= maxEvents {
				return n, fmt.Errorf("sim: event cap %d reached at t=%s (possible livelock)", maxEvents, t)
			}
			if s.halted() {
				return n, nil
			}
			if !s.anyAt(t) {
				break
			}
		}
	}
}

// anyAt reports whether any engine still has an event at or before t.
func (s *ShardSet) anyAt(t Time) bool {
	if len(s.master.queue) > 0 && s.master.queue[0].at <= t {
		return true
	}
	for _, e := range s.domains {
		if len(e.queue) > 0 && e.queue[0].at <= t {
			return true
		}
	}
	return false
}

// CancelAll drops every pending event on every engine in the set.
func (s *ShardSet) CancelAll() {
	s.master.CancelAll()
	for _, e := range s.domains {
		e.CancelAll()
	}
}

// SnapshotDomains captures the state of every domain engine; it fails if any
// is not quiescent (same contract as Engine.Snapshot).
func (s *ShardSet) SnapshotDomains() ([]EngineState, error) {
	out := make([]EngineState, len(s.domains))
	for d, e := range s.domains {
		st, err := e.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("sim: domain %d: %w", d, err)
		}
		out[d] = st
	}
	return out, nil
}

// NewShardSetFrom rebuilds a shard set from a master engine and captured
// domain states — the fork path. The restored domain engines continue their
// captured RNG streams exactly as NewEngineFrom does for the master.
func NewShardSetFrom(master *Engine, states []EngineState, workers int) *ShardSet {
	s := &ShardSet{
		master:   master,
		domains:  make([]*Engine, len(states)),
		workers:  workers,
		outboxes: make([][]stagedEvent, len(states)),
	}
	for d, st := range states {
		s.domains[d] = NewEngineFrom(st)
	}
	return s
}

// Fired sums fired-event counters across the ensemble.
func (s *ShardSet) Fired() uint64 {
	n := s.master.Fired()
	for _, e := range s.domains {
		n += e.Fired()
	}
	return n
}

// Pending sums pending events across the ensemble.
func (s *ShardSet) Pending() int {
	total, _ := s.pendingTotals()
	return total
}
