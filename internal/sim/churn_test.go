package sim

import (
	"testing"
	"time"
)

// TestMassCancelDoesNotBloatQueue is the regression test for the lazily-
// canceled-timer bloat: canceling must remove the event from the heap
// immediately, so Pending reports only live events and heap costs do not
// grow with churn.
func TestMassCancelDoesNotBloatQueue(t *testing.T) {
	e := NewEngine(1)
	const n = 10000
	timers := make([]*Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Millisecond, func() {
			t.Fatal("canceled event fired")
		}))
	}
	if got := e.Pending(); got != n {
		t.Fatalf("Pending = %d before cancel, want %d", got, n)
	}
	for _, tm := range timers {
		if !tm.Cancel() {
			t.Fatal("Cancel on a pending timer returned false")
		}
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d after mass cancel, want 0", got)
	}
	fired := false
	e.After(time.Second, func() { fired = true })
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d with one live event, want 1", got)
	}
	e.Run(0)
	if !fired {
		t.Fatal("live event did not fire")
	}
}

// TestStaleTimerHandleCannotCancelReusedEvent guards the free-list design:
// a handle to an already-fired (recycled) event must not cancel whatever
// event reuses that slot.
func TestStaleTimerHandleCannotCancelReusedEvent(t *testing.T) {
	e := NewEngine(1)
	first := e.After(time.Millisecond, func() {})
	e.Run(0)
	if first.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
	fired := false
	e.After(time.Millisecond, func() { fired = true })
	// The new event recycles the first one's storage; the stale handle must
	// be a no-op against it.
	if first.Cancel() {
		t.Fatal("stale handle canceled a reused event")
	}
	e.Run(0)
	if !fired {
		t.Fatal("reused event was suppressed by a stale handle")
	}
}

// BenchmarkTimerChurn models the BGP MRAI pattern that dominates the event
// queue in a mockup: schedule a timer, cancel it, schedule a replacement.
func BenchmarkTimerChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t1 := e.After(50*time.Millisecond, fn)
		t2 := e.After(80*time.Millisecond, fn)
		t1.Cancel()
		t2.Cancel()
		if i%64 == 0 {
			e.After(time.Microsecond, fn)
			e.Step()
		}
	}
}
