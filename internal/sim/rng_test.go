package sim

import (
	"testing"
	"time"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided on %d/100 draws", same)
	}
}

func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(7)
	// Burn a mixed prefix so the state is mid-stream.
	for i := 0; i < 17; i++ {
		r.Int63()
	}
	r.Int63n(1000)
	r.Float64()
	r.ExpFloat64()

	st := r.State()
	clone := NewRNGFrom(st)
	for i := 0; i < 1000; i++ {
		if x, y := r.Uint64(), clone.Uint64(); x != y {
			t.Fatalf("restored stream diverged at draw %d: %d != %d", i, x, y)
		}
	}
}

func TestRNGInt63nBounds(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int64{1, 2, 3, 7, 1000, 1 << 40, (1 << 62) + 12345} {
		for i := 0; i < 200; i++ {
			v := r.Int63n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int63n(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	r.Int63n(0)
}

func TestRNGDistributionsSane(t *testing.T) {
	r := NewRNG(99)
	const n = 100_000
	var sumF, sumE float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sumF += f
		e := r.ExpFloat64()
		if e < 0 {
			t.Fatalf("ExpFloat64 = %v negative", e)
		}
		sumE += e
	}
	if mean := sumF / n; mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
	if mean := sumE / n; mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean %v, want ~1", mean)
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	e := NewEngine(5)
	var fired []Time
	e.After(10*time.Millisecond, func() { fired = append(fired, e.Now()) })
	e.After(20*time.Millisecond, func() { fired = append(fired, e.Now()) })
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("snapshot of non-quiescent engine succeeded")
	}
	e.Run(0)

	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if st.Now != e.Now() || st.Fired != e.Fired() {
		t.Fatalf("snapshot %+v does not match engine now=%s fired=%d", st, e.Now(), e.Fired())
	}

	// The restored engine and the original must produce identical futures:
	// same clock, same jitter draws, same fired counts.
	f := NewEngineFrom(st)
	if f.Now() != e.Now() || f.Fired() != e.Fired() || f.Pending() != 0 {
		t.Fatalf("restored engine now=%s fired=%d pending=%d, want now=%s fired=%d pending=0",
			f.Now(), f.Fired(), f.Pending(), e.Now(), e.Fired())
	}
	for i := 0; i < 100; i++ {
		je := e.Jitter(time.Second, time.Minute)
		jf := f.Jitter(time.Second, time.Minute)
		if je != jf {
			t.Fatalf("jitter draw %d diverged: %s != %s", i, je, jf)
		}
	}
	var a, b []Time
	e.After(time.Second, func() { a = append(a, e.Now()) })
	f.After(time.Second, func() { b = append(b, f.Now()) })
	e.Run(0)
	f.Run(0)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("restored schedule diverged: %v vs %v", a, b)
	}
	if e.Fired() != f.Fired() {
		t.Fatalf("fired counters diverged: %d vs %d", e.Fired(), f.Fired())
	}
}

func TestEngineSeqPreservedAcrossSnapshot(t *testing.T) {
	// Two events at the same instant tie-break on seq; a restored engine
	// must continue the sequence so FIFO order is preserved.
	e := NewEngine(3)
	e.After(time.Millisecond, func() {})
	e.Run(0)
	st, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	f := NewEngineFrom(st)
	var order []int
	f.At(f.Now().Add(time.Second), func() { order = append(order, 1) })
	f.At(f.Now().Add(time.Second), func() { order = append(order, 2) })
	f.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("FIFO order broken after restore: %v", order)
	}
}
