package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Fatalf("new engine Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending() = %d, want 0", e.Pending())
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(5*time.Second, func() { at = e.Now() })
	if n, err := e.Run(0); err != nil || n != 1 {
		t.Fatalf("Run = %d, %v; want 1, nil", n, err)
	}
	if at != Time(5*time.Second) {
		t.Fatalf("event fired at %v, want 5s", at)
	}
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestEventOrderingByTime(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.After(3*time.Second, func() { order = append(order, 3) })
	e.After(1*time.Second, func() { order = append(order, 1) })
	e.After(2*time.Second, func() { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (same-time events must be FIFO)", i, v, i)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	e.After(time.Second, func() {
		hits = append(hits, e.Now())
		e.After(time.Second, func() {
			hits = append(hits, e.Now())
		})
	})
	e.Run(0)
	if len(hits) != 2 || hits[0] != Time(time.Second) || hits[1] != Time(2*time.Second) {
		t.Fatalf("hits = %v, want [1s 2s]", hits)
	}
}

func TestSchedulingInPastClamps(t *testing.T) {
	e := NewEngine(1)
	var fired Time
	e.After(10*time.Second, func() {
		e.At(Time(3*time.Second), func() { fired = e.Now() }) // in the past
	})
	e.Run(0)
	if fired != Time(10*time.Second) {
		t.Fatalf("past event fired at %v, want clamped to 10s", fired)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending timer")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run(0)
	if fired {
		t.Fatal("canceled timer fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(time.Second, func() {})
	e.Run(0)
	if tm.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunEventCap(t *testing.T) {
	e := NewEngine(1)
	var loop func()
	loop = func() { e.After(time.Millisecond, loop) }
	e.After(0, loop)
	n, err := e.Run(100)
	if err == nil {
		t.Fatal("Run with livelock returned nil error")
	}
	if n != 100 {
		t.Fatalf("Run executed %d events, want 100", n)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.After(d, func() { fired = append(fired, e.Now()) })
	}
	n := e.RunUntil(Time(3 * time.Second))
	if n != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", n)
	}
	if e.Now() != Time(3*time.Second) {
		t.Fatalf("clock = %v, want 3s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	// The remaining event still fires later.
	e.Run(0)
	if len(fired) != 3 || fired[2] != Time(5*time.Second) {
		t.Fatalf("fired = %v, want last at 5s", fired)
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(Time(7 * time.Second))
	if e.Now() != Time(7*time.Second) {
		t.Fatalf("clock = %v, want 7s", e.Now())
	}
}

func TestRunForRelative(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(2 * time.Second)
	e.RunFor(3 * time.Second)
	if e.Now() != Time(5*time.Second) {
		t.Fatalf("clock = %v, want 5s", e.Now())
	}
}

func TestHaltStopsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Second, func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Halt should stop the loop)", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("Pending = %d, want 7", e.Pending())
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var vals []int64
		for i := 0; i < 50; i++ {
			e.After(e.Jitter(time.Second, time.Second), func() {
				vals = append(vals, e.rng.Int63n(1000))
			})
		}
		e.Run(0)
		return vals
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("value %d differs: %d vs %d (engine not deterministic)", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestJitterBounds(t *testing.T) {
	e := NewEngine(9)
	for i := 0; i < 1000; i++ {
		d := e.Jitter(time.Second, 500*time.Millisecond)
		if d < time.Second || d >= 1500*time.Millisecond {
			t.Fatalf("Jitter = %v, want [1s, 1.5s)", d)
		}
	}
	if d := e.Jitter(time.Second, 0); d != time.Second {
		t.Fatalf("Jitter with zero spread = %v, want 1s", d)
	}
}

func TestCanceledFarFutureTimerDoesNotStallRunUntil(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(time.Hour, func() {})
	tm.Cancel()
	fired := false
	e.After(time.Second, func() { fired = true })
	e.RunUntil(Time(2 * time.Second))
	if !fired {
		t.Fatal("near event did not fire")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 after canceled event discarded", e.Pending())
	}
}

func TestTimeArithmetic(t *testing.T) {
	a := Time(90 * time.Second)
	if a.Seconds() != 90 {
		t.Fatalf("Seconds = %v", a.Seconds())
	}
	if a.Minutes() != 1.5 {
		t.Fatalf("Minutes = %v", a.Minutes())
	}
	if a.Add(30*time.Second) != Time(2*time.Minute) {
		t.Fatal("Add wrong")
	}
	if a.Sub(Time(30*time.Second)) != time.Minute {
		t.Fatal("Sub wrong")
	}
	if a.String() != "1m30s" {
		t.Fatalf("String = %q", a.String())
	}
}

// Property: for any batch of non-negative delays, Run executes exactly one
// event per delay and the clock ends at the maximum delay.
func TestPropertyRunExecutesAll(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		var max time.Duration
		for _, d := range delays {
			dd := time.Duration(d) * time.Millisecond
			if dd > max {
				max = dd
			}
			e.After(dd, func() {})
		}
		n, err := e.Run(0)
		if err != nil {
			return false
		}
		if n != uint64(len(delays)) {
			return false
		}
		return len(delays) == 0 || e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: events always fire in nondecreasing time order.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(3)
		var times []Time
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() { times = append(times, e.Now()) })
		}
		e.Run(0)
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonDoesNotBlockRunConvergence(t *testing.T) {
	e := NewEngine(1)
	var work, ticks int
	e.After(2*time.Second, func() { work++ })
	e.Daemon(10*time.Second, func() { ticks++ })
	n, err := e.Run(0)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n != 1 || work != 1 || ticks != 0 {
		t.Fatalf("Run fired n=%d work=%d ticks=%d; want 1,1,0 (daemon must stay queued)", n, work, ticks)
	}
	if e.Now() != Time(2*time.Second) {
		t.Fatalf("clock = %v, want 2s (Run must not chase the daemon)", e.Now())
	}
	if e.Pending() != 1 || e.PendingDaemons() != 1 {
		t.Fatalf("Pending=%d PendingDaemons=%d, want 1,1", e.Pending(), e.PendingDaemons())
	}
}

func TestDaemonFiresWhenOvertakenByRealWork(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.Daemon(5*time.Second, func() { order = append(order, "daemon") })
	e.After(10*time.Second, func() { order = append(order, "work") })
	e.Run(0)
	// The daemon's time precedes pending real work, so it fires in order.
	if len(order) != 2 || order[0] != "daemon" || order[1] != "work" {
		t.Fatalf("order = %v, want [daemon work]", order)
	}
	if e.PendingDaemons() != 0 {
		t.Fatalf("PendingDaemons = %d after firing, want 0", e.PendingDaemons())
	}
}

func TestDaemonFiresUnderRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ticks int
	var rearm func()
	rearm = func() { e.Daemon(time.Minute, func() { ticks++; rearm() }) }
	rearm()
	e.RunFor(10 * time.Minute)
	if ticks != 10 {
		t.Fatalf("ticks = %d over 10m of RunFor, want 10", ticks)
	}
	if e.PendingDaemons() != 1 {
		t.Fatalf("PendingDaemons = %d, want 1 (re-armed tick)", e.PendingDaemons())
	}
}

func TestDaemonCancelRestoresQuiescence(t *testing.T) {
	e := NewEngine(1)
	tm := e.Daemon(time.Hour, func() {})
	if e.PendingDaemons() != 1 {
		t.Fatalf("PendingDaemons = %d, want 1", e.PendingDaemons())
	}
	if !tm.Cancel() {
		t.Fatal("Cancel returned false for pending daemon")
	}
	if e.Pending() != 0 || e.PendingDaemons() != 0 {
		t.Fatalf("Pending=%d PendingDaemons=%d after cancel, want 0,0", e.Pending(), e.PendingDaemons())
	}
	if _, err := e.Snapshot(); err != nil {
		t.Fatalf("Snapshot after daemon cancel: %v", err)
	}
}

func TestSnapshotRefusesPendingDaemons(t *testing.T) {
	e := NewEngine(1)
	e.Daemon(time.Hour, func() {})
	if _, err := e.Snapshot(); err == nil {
		t.Fatal("Snapshot succeeded with a pending daemon event; want error")
	}
}
