package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// runShardWorkload drives a fixed cross-domain workload — per-domain event
// chains with RNG-jittered delays plus cross-domain sends every third step —
// and returns the per-domain observation logs and the ensemble's final
// clock. Each log is appended only by its own domain's engine, so the logs
// are race-free and capture exactly the per-engine execution order.
func runShardWorkload(t *testing.T, workers int) ([]string, Time) {
	t.Helper()
	const domains = 3
	master := NewEngine(42)
	s := NewShardSet(master, 42, domains, workers)
	logs := make([][]string, domains)
	for d := 0; d < domains; d++ {
		d := d
		eng := s.Engine(d)
		var step func(i int)
		step = func(i int) {
			logs[d] = append(logs[d], fmt.Sprintf("d%d:i%d:t%s:r%d", d, i, eng.Now(), eng.Rand().Int63n(100)))
			if i >= 8 {
				return
			}
			eng.After(time.Duration(1+eng.Rand().Int63n(5))*time.Millisecond, func() { step(i + 1) })
			if i%3 == 0 {
				dst := (d + 1) % domains
				s.ScheduleAfter(d, dst, time.Millisecond, func() {
					logs[dst] = append(logs[dst], fmt.Sprintf("d%d:from-d%d:t%s", dst, d, s.Engine(dst).Now()))
				})
			}
		}
		eng.At(0, func() { step(0) })
	}
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	out := make([]string, domains)
	for d := range logs {
		out[d] = strings.Join(logs[d], "\n")
	}
	return out, master.Now()
}

func TestShardSetDeterministicAcrossWorkers(t *testing.T) {
	// The §10 contract: per-domain execution order, RNG draws and clocks
	// must be byte-identical for every worker count; workers=1 is the
	// serial reference schedule.
	refLogs, refNow := runShardWorkload(t, 1)
	for _, w := range []int{2, 4, 16} {
		logs, now := runShardWorkload(t, w)
		if now != refNow {
			t.Fatalf("workers=%d: final clock %s, want %s", w, now, refNow)
		}
		for d := range logs {
			if logs[d] != refLogs[d] {
				t.Fatalf("workers=%d domain %d log differs from serial reference:\n%s\n--- want ---\n%s",
					w, d, logs[d], refLogs[d])
			}
		}
	}
}

func TestShardSetQuiescenceIgnoresDaemons(t *testing.T) {
	master := NewEngine(1)
	s := NewShardSet(master, 1, 2, 2)
	ticks := 0
	var rearm func()
	rearm = func() { master.Daemon(time.Second, func() { ticks++; rearm() }) }
	rearm()
	ran := false
	s.Engine(1).After(5*time.Second, func() { ran = true })
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("domain event never fired")
	}
	// The daemon tick fired while the real event kept the run alive, then
	// quiescence was declared with the re-armed daemon still pending.
	if ticks == 0 {
		t.Fatal("daemon never ticked")
	}
	if s.Pending() == 0 {
		t.Fatal("re-armed daemon should remain queued at quiescence")
	}
}

func TestShardSetEventCap(t *testing.T) {
	master := NewEngine(1)
	s := NewShardSet(master, 1, 1, 1)
	var spin func()
	spin = func() { s.Engine(0).After(0, spin) }
	s.Engine(0).At(0, spin)
	_, err := s.Run(10)
	if err == nil || !strings.Contains(err.Error(), "event cap 10 reached") {
		t.Fatalf("want cap error, got %v", err)
	}
}

func TestShardSetCheckAborts(t *testing.T) {
	master := NewEngine(1)
	s := NewShardSet(master, 1, 1, 1)
	var spin func()
	spin = func() { s.Engine(0).After(time.Millisecond, spin) }
	s.Engine(0).At(0, spin)
	calls := 0
	want := fmt.Errorf("canceled")
	s.Check = func() error {
		calls++
		if calls > 3 {
			return want
		}
		return nil
	}
	if _, err := s.Run(0); err != want {
		t.Fatalf("want check error, got %v", err)
	}
}

func TestShardSetSnapshotRestoreContinues(t *testing.T) {
	// Converge, snapshot the domains, rebuild via NewShardSetFrom, and
	// verify the restored ensemble continues the same RNG streams and
	// clocks an uninterrupted ensemble would.
	build := func() (*ShardSet, *[]string) {
		master := NewEngine(7)
		s := NewShardSet(master, 7, 2, 1)
		var log []string
		for d := 0; d < 2; d++ {
			d := d
			eng := s.Engine(d)
			eng.After(time.Duration(d+1)*time.Second, func() {
				log = append(log, fmt.Sprintf("pre:d%d:%d", d, eng.Rand().Int63()))
			})
		}
		return s, &log
	}
	phase2 := func(s *ShardSet, log *[]string) {
		for d := 0; d < 2; d++ {
			d := d
			eng := s.Engine(d)
			eng.After(time.Second, func() {
				*log = append(*log, fmt.Sprintf("post:d%d:t%s:%d", d, eng.Now(), eng.Rand().Int63()))
			})
		}
		if _, err := s.Run(0); err != nil {
			panic(err)
		}
	}

	// Uninterrupted reference.
	ref, refLog := build()
	if _, err := ref.Run(0); err != nil {
		t.Fatal(err)
	}
	phase2(ref, refLog)

	// Snapshot/restore path.
	s, log := build()
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	states, err := s.SnapshotDomains()
	if err != nil {
		t.Fatal(err)
	}
	mst, err := s.Engine(-1).Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewShardSetFrom(NewEngineFrom(mst), states, 1)
	phase2(restored, log)

	if got, want := strings.Join(*log, "\n"), strings.Join(*refLog, "\n"); got != want {
		t.Fatalf("restored ensemble diverged:\n%s\n--- want ---\n%s", got, want)
	}
}
