// Package trie implements a binary (Patricia-style, path-compressed) trie
// over IPv4 prefixes. It is the storage core for every RIB and FIB in the
// emulator: insert, delete, exact match, longest-prefix match and ordered
// walks, all allocation-lean so that L-DC-scale tables (Table 3: O(20M)
// entries across the fabric) stay affordable.
//
// DESIGN.md §4 records the allocation-lean trie as a key performance
// decision.
package trie

import (
	"math/bits"

	"crystalnet/internal/netpkt"
)

// node is a trie node. Leaf-ness is "has a value"; internal nodes may also
// carry values (a /16 above a /24).
type node[V any] struct {
	prefix   netpkt.Prefix
	children [2]*node[V]
	value    V
	hasValue bool
}

// Trie maps IPv4 prefixes to values of type V.
// The zero value is NOT ready to use; call New.
type Trie[V any] struct {
	root *node[V]
	size int
}

// New returns an empty trie.
func New[V any]() *Trie[V] {
	return &Trie[V]{root: &node[V]{prefix: netpkt.Prefix{Addr: 0, Len: 0}}}
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// bitAt returns bit i (0 = most significant) of addr.
func bitAt(addr netpkt.IP, i uint8) int {
	return int(addr>>(31-i)) & 1
}

// maskTab[l] is the netmask for a prefix of length l; a table lookup keeps
// the branch for l == 0 out of the per-node descent loops.
var maskTab [33]netpkt.IP

func init() {
	for l := 1; l <= 32; l++ {
		maskTab[l] = netpkt.IP(^uint32(0) << (32 - l))
	}
}

// commonPrefixLen returns the length of the longest common prefix of a and b,
// capped at maxLen.
func commonPrefixLen(a, b netpkt.IP, maxLen uint8) uint8 {
	n := uint8(bits.LeadingZeros32(uint32(a ^ b)))
	if n > maxLen {
		n = maxLen
	}
	return n
}

// Insert adds or replaces the value for prefix p. It returns true if the
// prefix was newly added, false if an existing value was replaced.
func (t *Trie[V]) Insert(p netpkt.Prefix, v V) bool {
	p.Addr &= maskTab[p.Len]
	n := t.root
	for {
		if n.prefix.Len == p.Len && n.prefix.Addr == p.Addr {
			added := !n.hasValue
			n.value, n.hasValue = v, true
			if added {
				t.size++
			}
			return added
		}
		// p extends below n.
		dir := bitAt(p.Addr, n.prefix.Len)
		child := n.children[dir]
		if child == nil {
			n.children[dir] = &node[V]{prefix: p, value: v, hasValue: true}
			t.size++
			return true
		}
		// How much of child's prefix does p share?
		common := commonPrefixLen(p.Addr, child.prefix.Addr, min8(p.Len, child.prefix.Len))
		if common == child.prefix.Len {
			// p lies below child; descend.
			n = child
			continue
		}
		if common == p.Len {
			// p is an ancestor of child: splice p in between n and child.
			mid := &node[V]{prefix: p, value: v, hasValue: true}
			mid.children[bitAt(child.prefix.Addr, p.Len)] = child
			n.children[dir] = mid
			t.size++
			return true
		}
		// Diverge: create a glue node at the common length.
		glue := &node[V]{prefix: netpkt.Prefix{Addr: p.Addr & maskTab[common], Len: common}}
		glue.children[bitAt(child.prefix.Addr, common)] = child
		leaf := &node[V]{prefix: p, value: v, hasValue: true}
		glue.children[bitAt(p.Addr, common)] = leaf
		n.children[dir] = glue
		t.size++
		return true
	}
}

func maskFor(l uint8) netpkt.IP { return maskTab[l] }

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// Get returns the value stored for exactly prefix p. The descent is a tight
// iterative loop — one mask-table lookup and one shift per node — because
// every FIB install on the BGP hot path funnels through here.
func (t *Trie[V]) Get(p netpkt.Prefix) (V, bool) {
	addr := p.Addr & maskTab[p.Len]
	n := t.root
	for {
		nl := n.prefix.Len
		if nl >= p.Len {
			if nl == p.Len && n.prefix.Addr == addr && n.hasValue {
				return n.value, true
			}
			break
		}
		if n.prefix.Addr != addr&maskTab[nl] {
			break
		}
		if n = n.children[(addr>>(31-nl))&1]; n == nil {
			break
		}
	}
	var zero V
	return zero, false
}

// Delete removes prefix p. It returns true if the prefix was present.
// Structural glue nodes are left in place; they are cheap and simplify
// deletion, and tables in the emulator are rebuilt wholesale on reload.
func (t *Trie[V]) Delete(p netpkt.Prefix) bool {
	addr := p.Addr & maskTab[p.Len]
	n := t.root
	for n != nil {
		nl := n.prefix.Len
		if nl == p.Len && n.prefix.Addr == addr {
			if !n.hasValue {
				return false
			}
			var zero V
			n.value, n.hasValue = zero, false
			t.size--
			return true
		}
		if nl >= p.Len {
			return false
		}
		n = n.children[(addr>>(31-nl))&1]
	}
	return false
}

// Lookup performs longest-prefix match for ip, returning the most specific
// covering prefix and its value.
func (t *Trie[V]) Lookup(ip netpkt.IP) (netpkt.Prefix, V, bool) {
	var (
		bestP netpkt.Prefix
		bestV V
		found bool
		n     = t.root
	)
	for {
		nl := n.prefix.Len
		if n.prefix.Addr != ip&maskTab[nl] {
			break
		}
		if n.hasValue {
			bestP, bestV, found = n.prefix, n.value, true
		}
		if nl == 32 {
			break
		}
		if n = n.children[(ip>>(31-nl))&1]; n == nil {
			break
		}
	}
	return bestP, bestV, found
}

// Walk visits every stored prefix in ascending (address, length) order.
// Returning false from fn stops the walk.
func (t *Trie[V]) Walk(fn func(p netpkt.Prefix, v V) bool) {
	t.walk(t.root, fn)
}

func (t *Trie[V]) walk(n *node[V], fn func(p netpkt.Prefix, v V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue {
		if !fn(n.prefix, n.value) {
			return false
		}
	}
	if !t.walk(n.children[0], fn) {
		return false
	}
	return t.walk(n.children[1], fn)
}

// Clone returns a structural copy of the trie, with every stored value
// passed through cloneV (identity for shared values, a deep copy for owned
// ones). Copying nodes directly skips the per-prefix descents and path
// splits a rebuild via Insert would redo, which is what keeps forking a
// fabric's worth of FIBs cheap.
func (t *Trie[V]) Clone(cloneV func(p netpkt.Prefix, v V) V) *Trie[V] {
	return &Trie[V]{root: cloneNode(t.root, cloneV), size: t.size}
}

func cloneNode[V any](n *node[V], cloneV func(p netpkt.Prefix, v V) V) *node[V] {
	if n == nil {
		return nil
	}
	c := &node[V]{prefix: n.prefix, hasValue: n.hasValue}
	if n.hasValue {
		c.value = cloneV(n.prefix, n.value)
	}
	c.children[0] = cloneNode(n.children[0], cloneV)
	c.children[1] = cloneNode(n.children[1], cloneV)
	return c
}

// WalkCovered visits every stored prefix contained in p (including p itself).
func (t *Trie[V]) WalkCovered(p netpkt.Prefix, fn func(q netpkt.Prefix, v V) bool) {
	p.Addr &= maskTab[p.Len]
	n := t.root
	// Descend to the node region covering p.
	for n != nil && n.prefix.Len < p.Len {
		if n.prefix.Addr != p.Addr&maskTab[n.prefix.Len] {
			return
		}
		n = n.children[bitAt(p.Addr, n.prefix.Len)]
	}
	if n == nil || !p.ContainsPrefix(n.prefix) {
		return
	}
	t.walk(n, fn)
}

// Prefixes returns all stored prefixes in walk order.
func (t *Trie[V]) Prefixes() []netpkt.Prefix {
	out := make([]netpkt.Prefix, 0, t.size)
	t.Walk(func(p netpkt.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
