package trie

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"crystalnet/internal/netpkt"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }
func ip(s string) netpkt.IP      { return netpkt.MustParseIP(s) }

func TestInsertGet(t *testing.T) {
	tr := New[string]()
	if !tr.Insert(pfx("10.0.0.0/8"), "a") {
		t.Fatal("first insert should report new")
	}
	if tr.Insert(pfx("10.0.0.0/8"), "b") {
		t.Fatal("re-insert should report replace")
	}
	if v, ok := tr.Get(pfx("10.0.0.0/8")); !ok || v != "b" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get(pfx("10.0.0.0/9")); ok {
		t.Fatal("unexpected /9 present")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestLPMBasic(t *testing.T) {
	tr := New[string]()
	tr.Insert(pfx("0.0.0.0/0"), "default")
	tr.Insert(pfx("10.0.0.0/8"), "eight")
	tr.Insert(pfx("10.1.0.0/16"), "sixteen")
	tr.Insert(pfx("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		ip   string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.3", "sixteen"},
		{"10.2.0.1", "eight"},
		{"11.0.0.1", "default"},
	}
	for _, c := range cases {
		_, v, ok := tr.Lookup(ip(c.ip))
		if !ok || v != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", c.ip, v, ok, c.want)
		}
	}
}

func TestLPMNoDefault(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("192.168.0.0/16"), 1)
	if _, _, ok := tr.Lookup(ip("10.0.0.1")); ok {
		t.Fatal("lookup outside table should miss")
	}
}

func TestHostRoutes(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.1/32"), 1)
	tr.Insert(pfx("10.0.0.0/24"), 2)
	if _, v, _ := tr.Lookup(ip("10.0.0.1")); v != 1 {
		t.Fatalf("host route not preferred: got %d", v)
	}
	if _, v, _ := tr.Lookup(ip("10.0.0.2")); v != 2 {
		t.Fatalf("covering /24 not matched: got %d", v)
	}
}

func TestDelete(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.0/8"), 1)
	tr.Insert(pfx("10.1.0.0/16"), 2)
	if !tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("delete existing returned false")
	}
	if tr.Delete(pfx("10.1.0.0/16")) {
		t.Fatal("double delete returned true")
	}
	if tr.Delete(pfx("10.9.0.0/16")) {
		t.Fatal("delete absent returned true")
	}
	if _, v, _ := tr.Lookup(ip("10.1.2.3")); v != 1 {
		t.Fatalf("after delete, lookup = %d, want 1 (fall back to /8)", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
}

func TestSiblingSplit(t *testing.T) {
	// Two prefixes that diverge mid-way force a glue node.
	tr := New[int]()
	tr.Insert(pfx("10.1.0.0/16"), 1)
	tr.Insert(pfx("10.2.0.0/16"), 2)
	if _, v, _ := tr.Lookup(ip("10.1.5.5")); v != 1 {
		t.Fatal("sibling 1 unreachable")
	}
	if _, v, _ := tr.Lookup(ip("10.2.5.5")); v != 2 {
		t.Fatal("sibling 2 unreachable")
	}
	if _, _, ok := tr.Lookup(ip("10.3.0.1")); ok {
		t.Fatal("glue node must not match")
	}
}

func TestAncestorInsertAfterDescendant(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.1.2.0/24"), 24)
	tr.Insert(pfx("10.1.0.0/16"), 16) // splice above existing leaf
	if _, v, _ := tr.Lookup(ip("10.1.2.1")); v != 24 {
		t.Fatal("descendant lost")
	}
	if _, v, _ := tr.Lookup(ip("10.1.9.1")); v != 16 {
		t.Fatal("ancestor not inserted")
	}
}

func TestWalkOrderAndCompleteness(t *testing.T) {
	tr := New[int]()
	ps := []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "192.168.0.0/16", "0.0.0.0/0", "172.16.0.0/12"}
	for i, s := range ps {
		tr.Insert(pfx(s), i)
	}
	var got []netpkt.Prefix
	tr.Walk(func(p netpkt.Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != len(ps) {
		t.Fatalf("walk visited %d, want %d", len(got), len(ps))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Addr > b.Addr || (a.Addr == b.Addr && a.Len > b.Len) {
			t.Fatalf("walk order violated: %v before %v", a, b)
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 10; i++ {
		tr.Insert(netpkt.Prefix{Addr: netpkt.IP(i << 24), Len: 8}, i)
	}
	count := 0
	tr.Walk(func(netpkt.Prefix, int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d, want 3", count)
	}
}

func TestWalkCovered(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("10.0.0.0/8"), 0)
	tr.Insert(pfx("10.1.0.0/16"), 1)
	tr.Insert(pfx("10.1.2.0/24"), 2)
	tr.Insert(pfx("10.2.0.0/16"), 3)
	tr.Insert(pfx("11.0.0.0/8"), 4)

	var got []string
	tr.WalkCovered(pfx("10.1.0.0/16"), func(q netpkt.Prefix, _ int) bool {
		got = append(got, q.String())
		return true
	})
	sort.Strings(got)
	want := []string{"10.1.0.0/16", "10.1.2.0/24"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("WalkCovered = %v, want %v", got, want)
	}

	// Covering region with no exact node: /15 over the two /16s.
	got = nil
	tr.WalkCovered(pfx("10.0.0.0/15"), func(q netpkt.Prefix, _ int) bool {
		got = append(got, q.String())
		return true
	})
	sort.Strings(got)
	if len(got) != 2 {
		t.Fatalf("WalkCovered(/15) = %v, want the two /16 descendants, got %v", got, got)
	}
}

func TestDefaultRouteOnly(t *testing.T) {
	tr := New[int]()
	tr.Insert(pfx("0.0.0.0/0"), 42)
	if _, v, ok := tr.Lookup(ip("203.0.113.9")); !ok || v != 42 {
		t.Fatal("default route must match everything")
	}
	if !tr.Delete(pfx("0.0.0.0/0")) {
		t.Fatal("cannot delete default")
	}
	if _, _, ok := tr.Lookup(ip("203.0.113.9")); ok {
		t.Fatal("default still matching after delete")
	}
}

// referenceLPM is an O(n) model to check the trie against.
type referenceLPM struct {
	entries map[netpkt.Prefix]int
}

func (r *referenceLPM) lookup(a netpkt.IP) (netpkt.Prefix, int, bool) {
	var (
		best  netpkt.Prefix
		bestV int
		found bool
	)
	for p, v := range r.entries {
		if p.Contains(a) && (!found || p.Len > best.Len) {
			best, bestV, found = p, v, true
		}
	}
	return best, bestV, found
}

func TestAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New[int]()
	ref := &referenceLPM{entries: map[netpkt.Prefix]int{}}

	for i := 0; i < 3000; i++ {
		p := netpkt.Prefix{Addr: netpkt.IP(rng.Uint32()), Len: uint8(rng.Intn(33))}
		p.Addr &= p.MaskIP()
		switch rng.Intn(3) {
		case 0, 1:
			tr.Insert(p, i)
			ref.entries[p] = i
		case 2:
			delete(ref.entries, p)
			tr.Delete(p)
		}
	}
	if tr.Len() != len(ref.entries) {
		t.Fatalf("Len = %d, reference = %d", tr.Len(), len(ref.entries))
	}
	for i := 0; i < 5000; i++ {
		a := netpkt.IP(rng.Uint32())
		gp, gv, gok := tr.Lookup(a)
		wp, wv, wok := ref.lookup(a)
		if gok != wok || (gok && (gp != wp || gv != wv)) {
			t.Fatalf("Lookup(%v) = %v,%d,%v; reference %v,%d,%v", a, gp, gv, gok, wp, wv, wok)
		}
	}
	// Every reference entry must be exactly retrievable.
	for p, v := range ref.entries {
		if got, ok := tr.Get(p); !ok || got != v {
			t.Fatalf("Get(%v) = %d,%v; want %d", p, got, ok, v)
		}
	}
}

func TestPropertyInsertThenLookupSelf(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		p := netpkt.Prefix{Addr: netpkt.IP(addr), Len: l % 33}
		p.Addr &= p.MaskIP()
		tr := New[bool]()
		tr.Insert(p, true)
		// The prefix's own base address must resolve to the prefix.
		got, _, ok := tr.Lookup(p.Addr)
		return ok && got == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLenMatchesDistinctInserts(t *testing.T) {
	f := func(addrs []uint32) bool {
		tr := New[int]()
		seen := map[netpkt.Prefix]bool{}
		for i, a := range addrs {
			p := netpkt.Prefix{Addr: netpkt.IP(a), Len: uint8(8 + i%25)}
			p.Addr &= p.MaskIP()
			tr.Insert(p, i)
			seen[p] = true
		}
		return tr.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prefixes := make([]netpkt.Prefix, 100000)
	for i := range prefixes {
		prefixes[i] = netpkt.Prefix{Addr: netpkt.IP(rng.Uint32()), Len: uint8(8 + rng.Intn(25))}
		prefixes[i].Addr &= prefixes[i].MaskIP()
	}
	b.ResetTimer()
	tr := New[int]()
	for i := 0; i < b.N; i++ {
		tr.Insert(prefixes[i%len(prefixes)], i)
	}
}

func BenchmarkLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	for i := 0; i < 100000; i++ {
		p := netpkt.Prefix{Addr: netpkt.IP(rng.Uint32()), Len: uint8(8 + rng.Intn(25))}
		p.Addr &= p.MaskIP()
		tr.Insert(p, i)
	}
	addrs := make([]netpkt.IP, 1024)
	for i := range addrs {
		addrs[i] = netpkt.IP(rng.Uint32())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prefixes := make([]netpkt.Prefix, 65536)
	for i := range prefixes {
		prefixes[i] = netpkt.Prefix{Addr: netpkt.IP(rng.Uint32()), Len: uint8(8 + rng.Intn(25))}
		prefixes[i].Addr &= prefixes[i].MaskIP()
	}
	b.ResetTimer()
	tr := New[int]()
	for i := 0; i < b.N; i++ {
		p := prefixes[i%len(prefixes)]
		tr.Insert(p, i)
		tr.Delete(p)
	}
}

func BenchmarkGet(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New[int]()
	prefixes := make([]netpkt.Prefix, 0, 100000)
	for i := 0; i < 100000; i++ {
		p := netpkt.Prefix{Addr: netpkt.IP(rng.Uint32()), Len: uint8(8 + rng.Intn(25))}
		p.Addr &= p.MaskIP()
		tr.Insert(p, i)
		prefixes = append(prefixes, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(prefixes[i%len(prefixes)])
	}
}
