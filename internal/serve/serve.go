// Package serve is crystald's rehearsal-as-a-service layer: an HTTP/JSON
// front end over the scenario engine that keeps converged base fabrics
// warm in a checkpoint pool and forks one per request.
//
// The contract that makes the service trustworthy is byte-identity: the
// body of a 200 response from POST /v1/rehearse is exactly what a batch
// `crystalctl run-scenario` of the same spec prints, and /v1/chaos
// likewise matches `crystalctl chaos`. The warm pool is a pure latency
// optimization — forks continue the captured clock, FIFO sequence and RNG
// stream, so a served report cannot be distinguished from a cold one.
//
// Lifecycle: every request becomes a session with a server-assigned ID,
// admitted against a global and a per-tenant concurrency quota. A client
// disconnect cancels the session's run mid-convergence (scenario
// Options.Cancel → core teardown), so abandoned rehearsals release their
// VMs deterministically instead of leaking goroutines. Drain flips the
// daemon into a refuse-new/finish-in-flight mode for graceful SIGTERM.
//
// docs/API.md is the endpoint reference; DESIGN.md §"Rehearsal service"
// is the architecture write-up.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"crystalnet/internal/core"
	"crystalnet/internal/obs"
	"crystalnet/internal/scenario"
)

// maxSpecBytes bounds a request body; hand-written specs are a few KB.
const maxSpecBytes = 4 << 20

// Config tunes a Server. Zero values take the documented defaults.
type Config struct {
	// PoolSize caps the warm checkpoint pool (default 4).
	PoolSize int
	// MaxInFlight caps concurrent sessions across all tenants
	// (default 16; <0 disables the cap).
	MaxInFlight int
	// TenantInFlight caps concurrent sessions per tenant (default 4;
	// <0 disables the cap).
	TenantInFlight int
	// MaxEvents caps each convergence drive (0 = scenario default).
	MaxEvents uint64
	// NoRewarm disables background re-convergence of invalidated pool
	// entries.
	NoRewarm bool
	// Live receives operational metrics; nil gets the server a fresh
	// private registry (so /metrics always works).
	Live *obs.Live
}

func (c Config) withDefaults() Config {
	if c.PoolSize == 0 {
		c.PoolSize = 4
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 16
	}
	if c.TenantInFlight == 0 {
		c.TenantInFlight = 4
	}
	if c.Live == nil {
		c.Live = obs.NewLive()
	}
	return c
}

// session is one admitted request.
type session struct {
	ID       string
	Tenant   string
	Kind     string
	Scenario string
	Started  time.Time
}

// Server implements crystald's HTTP API. Create with NewServer, mount via
// Handler, stop with Drain.
type Server struct {
	cfg  Config
	live *obs.Live
	pool *Pool
	mux  http.Handler

	mu       sync.Mutex
	idle     *sync.Cond // broadcast when inFlight drops to zero
	nextID   uint64
	sessions map[string]*session
	tenants  map[string]int
	served   map[string]uint64
	inFlight int
	draining bool
}

// NewServer builds a Server and its warm pool from cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		live:     cfg.Live,
		pool:     NewPool(cfg.PoolSize, cfg.MaxEvents, !cfg.NoRewarm, cfg.Live),
		sessions: map[string]*session{},
		tenants:  map[string]int{},
		served:   map[string]uint64{},
	}
	s.idle = sync.NewCond(&s.mu)
	mux := http.NewServeMux()
	for _, route := range Routes {
		var h http.HandlerFunc
		switch route {
		case "/v1/rehearse":
			h = s.handleRehearse
		case "/v1/chaos":
			h = s.handleChaos
		case "/v1/plan":
			h = s.handlePlan
		case "/v1/status":
			h = s.handleStatus
		case "/v1/pool/invalidate":
			h = s.handleInvalidate
		case "/healthz":
			h = s.handleHealthz
		case "/metrics":
			h = s.handleMetrics
		}
		mux.Handle(route, s.live.Middleware(route, h))
	}
	s.mux = mux
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Pool exposes the warm pool (status endpoints, tests).
func (s *Server) Pool() *Pool { return s.pool }

// Warm pre-converges a baseline for sp so the first rehearsal against its
// fabric is already a pool hit. crystald -warm uses it at boot.
func (s *Server) Warm(sp *scenario.Spec) error {
	opts := scenario.Options{MaxEvents: s.cfg.MaxEvents}
	if err := scenario.CheckForkable(sp, opts); err != nil {
		return err
	}
	_, release, _, err := s.pool.Acquire(sp, opts, nil)
	if err != nil {
		return err
	}
	release()
	return nil
}

// Drain begins graceful shutdown: new sessions are refused with 503 while
// in-flight ones finish. It returns once the server is idle and the pool
// is closed, or with ctx's error if the deadline passes first.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inFlight > 0 {
			s.idle.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		s.pool.Close()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// begin admits a request as a session, enforcing drain and quotas. The
// returned status code is set only on refusal.
func (s *Server) begin(kind, tenant, name string) (*session, int, error) {
	if tenant == "" {
		tenant = "default"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("serve: draining, not accepting new work")
	}
	if s.cfg.MaxInFlight > 0 && s.inFlight >= s.cfg.MaxInFlight {
		return nil, http.StatusTooManyRequests, fmt.Errorf("serve: server at capacity (%d in flight)", s.inFlight)
	}
	if s.cfg.TenantInFlight > 0 && s.tenants[tenant] >= s.cfg.TenantInFlight {
		return nil, http.StatusTooManyRequests, fmt.Errorf("serve: tenant %q at capacity (%d in flight)", tenant, s.tenants[tenant])
	}
	s.nextID++
	sess := &session{
		ID:     fmt.Sprintf("r-%06d", s.nextID),
		Tenant: tenant, Kind: kind, Scenario: name,
		Started: time.Now(),
	}
	s.sessions[sess.ID] = sess
	s.tenants[tenant]++
	s.inFlight++
	s.live.Gauge("serve.sessions", "").Set(float64(s.inFlight))
	return sess, 0, nil
}

// end retires a session and wakes Drain when the server goes idle.
func (s *Server) end(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	s.tenants[sess.Tenant]--
	if s.tenants[sess.Tenant] <= 0 {
		delete(s.tenants, sess.Tenant)
	}
	s.served[sess.Kind]++
	s.inFlight--
	s.live.Gauge("serve.sessions", "").Set(float64(s.inFlight))
	if s.inFlight == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
}

// writeError sends the uniform JSON error body.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// readSpec parses a request body as a scenario spec.
func readSpec(r *http.Request) (*scenario.Spec, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		return nil, fmt.Errorf("serve: read body: %w", err)
	}
	return scenario.Parse(body)
}

// handleRehearse runs one scenario and returns the batch-identical report.
//
//	POST /v1/rehearse          body: scenario spec JSON
//	→ 200 scenario.Report JSON (exact crystalctl run-scenario bytes)
//	  X-Crystalnet-Request: session ID
//	  X-Crystalnet-Pool: hit | miss | bypass
func (s *Server) handleRehearse(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	sp, err := readSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess, code, err := s.begin("rehearse", r.Header.Get(TenantHeader), sp.Name)
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer s.end(sess)
	w.Header().Set(RequestHeader, sess.ID)

	opts := scenario.Options{MaxEvents: s.cfg.MaxEvents, Cancel: r.Context().Done()}
	var rep *scenario.Report
	mode := "bypass"
	if scenario.CheckForkable(sp, opts) == nil {
		cv, release, hit, aerr := s.pool.Acquire(sp, opts, r.Context().Done())
		if aerr != nil {
			if errors.Is(aerr, core.ErrCanceled) {
				return // client gone; nothing to write
			}
			writeError(w, http.StatusInternalServerError, aerr)
			return
		}
		defer release()
		if hit {
			mode = "hit"
		} else {
			mode = "miss"
		}
		rep, err = cv.Run(sp, opts)
	} else {
		rep, err = scenario.Run(sp, opts)
	}
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			return // torn down deterministically; client gone
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set(PoolHeader, mode)
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(rep.JSON())
}

// queryInt parses an integer query parameter with a default.
func queryInt(r *http.Request, name string, def int64) (int64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: query %s=%q: not an integer", name, v)
	}
	return n, nil
}

// handleChaos runs a chaos campaign against the posted base spec.
//
//	POST /v1/chaos?n=20&faults=6&seed=1&workers=0&reuse=true
//	  body: base scenario spec JSON
//	→ 200 scenario.CampaignReport JSON (exact crystalctl chaos bytes)
//
// reuse defaults to true (converge once, fork per run) and silently
// falls back to per-run convergence when the spec is not forkable.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	sp, err := readSpec(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var cfg scenario.CampaignConfig
	var qerr error
	geti := func(name string, def int64) int64 {
		n, err := queryInt(r, name, def)
		if err != nil && qerr == nil {
			qerr = err
		}
		return n
	}
	cfg.N = int(geti("n", 0))
	cfg.FaultsPerRun = int(geti("faults", 0))
	cfg.Seed = geti("seed", 0)
	cfg.Workers = int(geti("workers", 0))
	if qerr != nil {
		writeError(w, http.StatusBadRequest, qerr)
		return
	}
	cfg.MaxEvents = s.cfg.MaxEvents
	cfg.Cancel = r.Context().Done()
	cfg.Reuse = r.URL.Query().Get("reuse") != "false" &&
		scenario.CheckForkable(sp, scenario.Options{}) == nil

	sess, code, err := s.begin("chaos", r.Header.Get(TenantHeader), sp.Name)
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer s.end(sess)
	w.Header().Set(RequestHeader, sess.ID)

	crep, err := scenario.Chaos(sp, cfg)
	if err != nil {
		if errors.Is(err, core.ErrCanceled) {
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(crep.JSON())
}

// handleStatus reports sessions, quotas and the pool.
//
//	GET /v1/status → 200 StatusResponse JSON
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: GET only"))
		return
	}
	now := time.Now()
	s.mu.Lock()
	st := StatusResponse{
		Draining: s.draining,
		InFlight: s.inFlight,
		Served:   map[string]uint64{},
	}
	for k, v := range s.served {
		st.Served[k] = v
	}
	for _, sess := range s.sessions {
		st.Sessions = append(st.Sessions, SessionInfo{
			ID: sess.ID, Tenant: sess.Tenant, Kind: sess.Kind,
			Scenario: sess.Scenario,
			AgeMS:    now.Sub(sess.Started).Milliseconds(),
		})
	}
	s.mu.Unlock()
	// Oldest session first; IDs are monotonic so this is by admission.
	for i := 1; i < len(st.Sessions); i++ {
		for j := i; j > 0 && st.Sessions[j].ID < st.Sessions[j-1].ID; j-- {
			st.Sessions[j], st.Sessions[j-1] = st.Sessions[j-1], st.Sessions[j]
		}
	}
	st.Pool = s.pool.Status()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleInvalidate retires warm pool entries.
//
//	POST /v1/pool/invalidate        (empty body → all entries)
//	  body: scenario spec JSON      (→ that fabric's entry only)
//	→ 200 InvalidateResponse JSON
func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: read body: %w", err))
		return
	}
	var sp *scenario.Spec
	if len(body) > 0 {
		if sp, err = scenario.Parse(body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	n := s.pool.Invalidate(sp, scenario.Options{MaxEvents: s.cfg.MaxEvents})
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(InvalidateResponse{
		Invalidated: n,
		Rewarming:   n > 0 && !s.cfg.NoRewarm,
	})
}

// handleHealthz is the liveness/readiness probe.
//
//	GET /healthz → 200 "ok" | 503 "draining"
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	_, _ = io.WriteString(w, "ok\n")
}

// handleMetrics exposes the live registry in Prometheus text format.
//
//	GET /metrics → 200 text/plain
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.live.WriteProm(w)
}
