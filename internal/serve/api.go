package serve

// Wire types for crystald's HTTP/JSON API. Rehearsal responses are NOT
// defined here on purpose: /v1/rehearse returns the exact bytes of
// scenario.Report.JSON() and /v1/chaos the exact bytes of
// scenario.CampaignReport.JSON(), so a served rehearsal is
// indistinguishable from a batch `crystalctl run-scenario` — the
// byte-identity contract docs/API.md documents and the tests enforce.

// Header names the daemon reads and writes.
const (
	// TenantHeader carries the caller's tenant identity for per-tenant
	// concurrency quotas. Absent means the "default" tenant.
	TenantHeader = "X-Crystalnet-Tenant"
	// RequestHeader returns the server-assigned request/session ID.
	RequestHeader = "X-Crystalnet-Request"
	// PoolHeader reports how the warm pool served a rehearsal: "hit"
	// (forked a pooled baseline), "miss" (converged a new baseline, now
	// pooled), or "bypass" (spec not forkable — ran from scratch).
	PoolHeader = "X-Crystalnet-Pool"
)

// Routes lists every path the server registers. cmd/doccheck cross-checks
// docs/API.md against it so the API reference cannot silently rot.
var Routes = []string{
	"/v1/rehearse",
	"/v1/chaos",
	"/v1/status",
	"/v1/pool/invalidate",
	"/healthz",
	"/metrics",
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	// Draining is true once graceful shutdown has begun: new work is
	// refused (503) while in-flight sessions run to completion.
	Draining bool `json:"draining"`
	// InFlight counts sessions currently executing.
	InFlight int `json:"inFlight"`
	// Served tallies completed requests by kind ("rehearse", "chaos").
	Served map[string]uint64 `json:"served"`
	// Sessions lists the in-flight sessions, oldest first.
	Sessions []SessionInfo `json:"sessions"`
	// Pool describes the warm checkpoint pool.
	Pool PoolStatus `json:"pool"`
}

// SessionInfo describes one in-flight request.
type SessionInfo struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Kind     string `json:"kind"`
	Scenario string `json:"scenario"`
	// AgeMS is wall-clock milliseconds since the session was admitted.
	AgeMS int64 `json:"ageMs"`
}

// PoolStatus describes the warm pool for /v1/status.
type PoolStatus struct {
	// Capacity is the configured maximum number of warm baselines.
	Capacity int `json:"capacity"`
	// Rewarm reports whether invalidated entries re-converge in the
	// background.
	Rewarm    bool              `json:"rewarm"`
	Hits      uint64            `json:"hits"`
	Misses    uint64            `json:"misses"`
	Evictions uint64            `json:"evictions"`
	Entries   []PoolEntryStatus `json:"entries"`
}

// PoolEntryStatus describes one pooled baseline.
type PoolEntryStatus struct {
	// Fabric names the entry's topology (the dc preset or custom Clos
	// name) — the human-readable face of the pool key.
	Fabric string `json:"fabric"`
	Seed   int64  `json:"seed"`
	// State is "warming" while the baseline converges, "ready" after.
	State string `json:"state"`
	// Refs counts borrowers currently forking from the entry.
	Refs int `json:"refs"`
}

// InvalidateResponse is the body of POST /v1/pool/invalidate.
type InvalidateResponse struct {
	// Invalidated counts the entries retired.
	Invalidated int `json:"invalidated"`
	// Rewarming reports whether retired entries are re-converging in the
	// background.
	Rewarming bool `json:"rewarming"`
}
