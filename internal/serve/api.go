package serve

// Wire types for crystald's HTTP/JSON API. Rehearsal responses are NOT
// defined here on purpose: /v1/rehearse returns the exact bytes of
// scenario.Report.JSON() and /v1/chaos the exact bytes of
// scenario.CampaignReport.JSON(), so a served rehearsal is
// indistinguishable from a batch `crystalctl run-scenario` — the
// byte-identity contract docs/API.md documents and the tests enforce.

import "crystalnet/internal/scenario"

// Header names the daemon reads and writes.
const (
	// TenantHeader carries the caller's tenant identity for per-tenant
	// concurrency quotas. Absent means the "default" tenant.
	TenantHeader = "X-Crystalnet-Tenant"
	// RequestHeader returns the server-assigned request/session ID.
	RequestHeader = "X-Crystalnet-Request"
	// PoolHeader reports how the warm pool served a rehearsal: "hit"
	// (forked a pooled baseline), "miss" (converged a new baseline, now
	// pooled), or "bypass" (spec not forkable — ran from scratch).
	PoolHeader = "X-Crystalnet-Pool"
)

// Routes lists every path the server registers. cmd/doccheck cross-checks
// docs/API.md against it so the API reference cannot silently rot.
var Routes = []string{
	"/v1/rehearse",
	"/v1/chaos",
	"/v1/plan",
	"/v1/status",
	"/v1/pool/invalidate",
	"/healthz",
	"/metrics",
}

// ErrorResponse is the JSON body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// PlanRequest is the body of POST /v1/plan: a topology plus the devices a
// tenant needs emulated. The solver searches for the cheapest
// certified-safe emulated set containing them.
type PlanRequest struct {
	// Topology is the fabric to plan against — the same object scenario
	// specs carry (dc preset or custom clos, wanPerGroup, ...).
	Topology scenario.Topology `json:"topology"`
	// Targets are the device names the plan must emulate.
	Targets []string `json:"targets"`
	// Seed drives the solver's deterministic tie-breaking and becomes the
	// returned spec's seed.
	Seed int64 `json:"seed,omitempty"`
	// Alternatives caps the ranked near-optimal list (default 3).
	Alternatives int `json:"alternatives,omitempty"`
	// Warm asks the daemon to start converging the winning plan's
	// baseline into the warm pool in the background, so the tenant's
	// first rehearsal against the returned spec is a pool hit.
	Warm bool `json:"warm,omitempty"`
}

// PlanSolution is one certified-safe plan in a PlanResponse.
type PlanSolution struct {
	Strategy    string `json:"strategy"`
	Certificate string `json:"certificate"`
	// Emulate is the exact emulated set — paste it into a scenario
	// spec's "emulate" field to run this plan.
	Emulate  []string `json:"emulate"`
	Devices  int      `json:"devices"`
	Speakers int      `json:"speakers"`
	// Layers breaks the emulated devices down by layer name (Table 4).
	Layers     map[string]int `json:"layers"`
	Proportion float64        `json:"proportion"`
	VMs        int            `json:"vms"`
	HourlyUSD  float64        `json:"hourlyUsd"`
}

// PlanResponse is the body of POST /v1/plan.
type PlanResponse struct {
	Network       string         `json:"network"`
	Targets       []string       `json:"targets"`
	Seed          int64          `json:"seed"`
	Best          PlanSolution   `json:"best"`
	Alternatives  []PlanSolution `json:"alternatives,omitempty"`
	FullDevices   int            `json:"fullDevices"`
	FullVMs       int            `json:"fullVms"`
	FullHourlyUSD float64        `json:"fullHourlyUsd"`
	CostReduction float64        `json:"costReduction"`
	// Spec is a ready-to-rehearse scenario spec pinned to the winning
	// plan (topology + exact emulate set + seed): POST it to /v1/rehearse
	// (with your steps filled in) and the run forks a fabric no bigger
	// than the plan.
	Spec *scenario.Spec `json:"spec"`
	// PoolKey is the warm-pool key the spec resolves to; rehearsals whose
	// specs share the fabric (same topology, emulate set and seed) share
	// its baseline.
	PoolKey string `json:"poolKey"`
	// Warming reports whether a background convergence for that key was
	// running or started (Warm=true in the request).
	Warming bool `json:"warming"`
}

// StatusResponse is the body of GET /v1/status.
type StatusResponse struct {
	// Draining is true once graceful shutdown has begun: new work is
	// refused (503) while in-flight sessions run to completion.
	Draining bool `json:"draining"`
	// InFlight counts sessions currently executing.
	InFlight int `json:"inFlight"`
	// Served tallies completed requests by kind ("rehearse", "chaos").
	Served map[string]uint64 `json:"served"`
	// Sessions lists the in-flight sessions, oldest first.
	Sessions []SessionInfo `json:"sessions"`
	// Pool describes the warm checkpoint pool.
	Pool PoolStatus `json:"pool"`
}

// SessionInfo describes one in-flight request.
type SessionInfo struct {
	ID       string `json:"id"`
	Tenant   string `json:"tenant"`
	Kind     string `json:"kind"`
	Scenario string `json:"scenario"`
	// AgeMS is wall-clock milliseconds since the session was admitted.
	AgeMS int64 `json:"ageMs"`
}

// PoolStatus describes the warm pool for /v1/status.
type PoolStatus struct {
	// Capacity is the configured maximum number of warm baselines.
	Capacity int `json:"capacity"`
	// Rewarm reports whether invalidated entries re-converge in the
	// background.
	Rewarm    bool              `json:"rewarm"`
	Hits      uint64            `json:"hits"`
	Misses    uint64            `json:"misses"`
	Evictions uint64            `json:"evictions"`
	Entries   []PoolEntryStatus `json:"entries"`
}

// PoolEntryStatus describes one pooled baseline.
type PoolEntryStatus struct {
	// Fabric names the entry's topology (the dc preset or custom Clos
	// name) — the human-readable face of the pool key.
	Fabric string `json:"fabric"`
	Seed   int64  `json:"seed"`
	// State is "warming" while the baseline converges, "ready" after.
	State string `json:"state"`
	// Refs counts borrowers currently forking from the entry.
	Refs int `json:"refs"`
}

// InvalidateResponse is the body of POST /v1/pool/invalidate.
type InvalidateResponse struct {
	// Invalidated counts the entries retired.
	Invalidated int `json:"invalidated"`
	// Rewarming reports whether retired entries are re-converging in the
	// background.
	Rewarming bool `json:"rewarming"`
}
