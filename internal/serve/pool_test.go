package serve

import (
	"strings"
	"testing"

	"crystalnet/internal/scenario"
)

func TestPoolKeyIgnoresRunOnlyFields(t *testing.T) {
	a := tinySpec("alpha", 7)
	b := tinySpec("beta", 7)
	b.Description = "different description"
	b.Steps = b.Steps[:1]
	if PoolKey(a, scenario.Options{}) != PoolKey(b, scenario.Options{}) {
		t.Fatal("name/description/steps leaked into the pool key")
	}
	c := tinySpec("gamma", 8)
	if PoolKey(a, scenario.Options{}) == PoolKey(c, scenario.Options{}) {
		t.Fatal("seed did not distinguish pool keys")
	}
	d := tinySpec("delta", 7)
	d.Topology.Clos.Pods = 3
	if PoolKey(a, scenario.Options{}) == PoolKey(d, scenario.Options{}) {
		t.Fatal("topology did not distinguish pool keys")
	}
	// SeedOverride resolves into the key just like a spec seed.
	seed := int64(8)
	if PoolKey(a, scenario.Options{SeedOverride: &seed}) != PoolKey(c, scenario.Options{}) {
		t.Fatal("seed override not folded into the pool key")
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p := NewPool(2, 0, false, nil)
	defer p.Close()
	specs := []*scenario.Spec{tinySpec("s1", 7), tinySpec("s2", 8), tinySpec("s3", 9)}
	for _, sp := range specs[:2] {
		_, rel, hit, err := p.Acquire(sp, scenario.Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("%s: unexpected hit", sp.Name)
		}
		rel()
	}
	// Touch s1 so s2 becomes LRU, then insert s3: s2 must be evicted.
	_, rel, hit, err := p.Acquire(specs[0], scenario.Options{}, nil)
	if err != nil || !hit {
		t.Fatalf("s1 re-acquire: hit=%v err=%v", hit, err)
	}
	rel()
	_, rel, _, err = p.Acquire(specs[2], scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel()

	st := p.Status()
	if st.Evictions != 1 || len(st.Entries) != 2 {
		t.Fatalf("status after eviction: %+v", st)
	}
	seeds := map[int64]bool{}
	for _, e := range st.Entries {
		seeds[e.Seed] = true
	}
	if !seeds[7] || !seeds[9] || seeds[8] {
		t.Fatalf("wrong entries survived: %+v", st.Entries)
	}
	// s2 was evicted with zero refs: its snapshot is invalidated, so a
	// stale Converged handle refuses to fork.
	_, rel, hit, err = p.Acquire(specs[1], scenario.Options{}, nil)
	if err != nil || hit {
		t.Fatalf("s2 after eviction: hit=%v err=%v (want fresh miss)", hit, err)
	}
	rel()
}

func TestEvictedEntryInvalidatesAfterLastRelease(t *testing.T) {
	p := NewPool(1, 0, false, nil)
	defer p.Close()
	sp1, sp2 := tinySpec("held", 7), tinySpec("pusher", 8)
	cv, rel, _, err := p.Acquire(sp1, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Insert a second fabric into a size-1 pool: sp1's entry is evicted
	// while still borrowed.
	_, rel2, _, err := p.Acquire(sp2, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
	// The borrowed baseline still forks — eviction must not cut off an
	// in-flight borrower.
	if _, err := cv.Run(tinySpec("held-run", 7), scenario.Options{}); err != nil {
		t.Fatalf("borrowed baseline refused to fork after eviction: %v", err)
	}
	rel()
	// Last ref gone: the snapshot is now invalidated.
	if _, err := cv.Run(tinySpec("stale-run", 7), scenario.Options{}); err == nil {
		t.Fatal("stale handle forked an invalidated snapshot")
	} else if !strings.Contains(err.Error(), "invalidated") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPoolInvalidateRewarms(t *testing.T) {
	p := NewPool(2, 0, true, nil)
	defer p.Close()
	sp := tinySpec("rw", 7)
	_, rel, _, err := p.Acquire(sp, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if n := p.Invalidate(sp, scenario.Options{}); n != 1 {
		t.Fatalf("invalidated %d entries, want 1", n)
	}
	// Rewarm replaced the entry in the background; the next acquire is a
	// hit on the fresh baseline (coalescing with its convergence if it is
	// still warming) and must fork successfully.
	cv, rel, hit, err := p.Acquire(sp, scenario.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("rewarmed entry missing — acquire missed")
	}
	if _, err := cv.Run(tinySpec("rw-run", 7), scenario.Options{}); err != nil {
		t.Fatalf("rewarmed baseline refused to fork: %v", err)
	}
	rel()
}

func TestPoolCloseRefusesAcquire(t *testing.T) {
	p := NewPool(1, 0, false, nil)
	p.Close()
	if _, _, _, err := p.Acquire(tinySpec("late", 7), scenario.Options{}, nil); err == nil {
		t.Fatal("closed pool admitted an acquire")
	}
	p.Close() // idempotent
}
