package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crystalnet/internal/scenario"
)

// planReq posts a PlanRequest and returns the response plus raw body.
func planReq(t *testing.T, ts *httptest.Server, req PlanRequest) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func tinyPlanRequest(warm bool) PlanRequest {
	return PlanRequest{
		Topology: tinySpec("ignored", 0).Topology,
		Targets:  []string{"tor-p0-0"},
		Seed:     7,
		Warm:     warm,
	}
}

func TestPlanSolveThenRehearseHitsPool(t *testing.T) {
	// The planner's contract: POST /v1/plan returns a certified-safe plan
	// smaller than full emulation plus a ready-to-rehearse spec, and (with
	// warm=true) prewarms the pool so the follow-up rehearsal is a hit on a
	// fabric no bigger than the plan.
	_, ts := newTestServer(t, Config{PoolSize: 2})

	resp, body := planReq(t, ts, tinyPlanRequest(true))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get(RequestHeader) == "" {
		t.Fatalf("missing %s header", RequestHeader)
	}
	var plan PlanResponse
	if err := json.Unmarshal(body, &plan); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if plan.Best.Certificate == "" {
		t.Fatal("best plan has no safety certificate")
	}
	if plan.Best.Devices >= plan.FullDevices {
		t.Fatalf("best plan emulates %d of %d devices — no smaller than full emulation",
			plan.Best.Devices, plan.FullDevices)
	}
	if plan.Best.VMs > plan.FullVMs {
		t.Fatalf("best plan needs %d VMs, full emulation only %d", plan.Best.VMs, plan.FullVMs)
	}
	found := false
	for _, name := range plan.Best.Emulate {
		if name == "tor-p0-0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("target missing from emulate set %v", plan.Best.Emulate)
	}
	if plan.Spec == nil || len(plan.Spec.Emulate) != len(plan.Best.Emulate) {
		t.Fatalf("returned spec does not carry the winning emulate set: %+v", plan.Spec)
	}
	if !plan.Warming {
		t.Fatal("warm=true but the daemon reports no prewarm")
	}
	if plan.PoolKey == "" {
		t.Fatal("missing pool key")
	}

	// Rehearse the returned spec: the prewarmed baseline must be reused,
	// and the mockup must be exactly as big as the plan promised.
	rResp, rBody := rehearse(t, ts, plan.Spec, "")
	if rResp.StatusCode != http.StatusOK {
		t.Fatalf("rehearse status %d: %s", rResp.StatusCode, rBody)
	}
	if got := rResp.Header.Get(PoolHeader); got != "hit" {
		t.Fatalf("%s = %q, want hit (prewarmed plan baseline)", PoolHeader, got)
	}
	var report struct {
		Emulated int  `json:"emulated"`
		Passed   bool `json:"passed"`
	}
	if err := json.Unmarshal(rBody, &report); err != nil {
		t.Fatal(err)
	}
	if !report.Passed {
		t.Fatalf("plan rehearsal failed:\n%s", rBody)
	}
	if report.Emulated != plan.Best.Devices {
		t.Fatalf("rehearsal emulated %d devices, plan promised %d", report.Emulated, plan.Best.Devices)
	}
}

func TestPlanResponseDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	_, first := planReq(t, ts, tinyPlanRequest(false))
	_, second := planReq(t, ts, tinyPlanRequest(false))
	if !bytes.Equal(first, second) {
		t.Fatalf("identical plan requests returned different bytes:\n%s\n---\n%s", first, second)
	}
}

func TestPlanRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name string
		req  PlanRequest
		want string
	}{
		{"no targets", PlanRequest{Topology: tinySpec("x", 0).Topology}, "needs targets"},
		{"unknown device", PlanRequest{Topology: tinySpec("x", 0).Topology, Targets: []string{"nope"}}, "unknown"},
		{"no topology", PlanRequest{Targets: []string{"tor-p0-0"}}, "topology"},
	}
	for _, tc := range cases {
		resp, body := planReq(t, ts, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !strings.Contains(e.Error, tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.want)
		}
	}
}

func TestPrewarmIdempotentAndClosed(t *testing.T) {
	p := NewPool(2, 0, true, nil)
	sp := tinySpec("prewarm", 3)
	opts := scenario.Options{}
	if !p.Prewarm(sp, opts) {
		t.Fatal("first prewarm refused")
	}
	if !p.Prewarm(sp, opts) {
		t.Fatal("repeat prewarm refused (should be a no-op, not an error)")
	}
	st := p.Status()
	if len(st.Entries) != 1 {
		t.Fatalf("prewarm duplicated the entry: %d entries", len(st.Entries))
	}
	p.Close()
	if p.Prewarm(tinySpec("late", 4), opts) {
		t.Fatal("prewarm accepted after close")
	}
}
