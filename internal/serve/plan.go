package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"crystalnet/internal/boundary"
	"crystalnet/internal/scenario"
)

// Prewarm starts converging a baseline for sp in the background without
// borrowing it: a no-op when the key is already pooled or warming. It
// never blocks on the convergence. Reports whether an entry for the key
// exists (false only when the pool is closed).
func (p *Pool) Prewarm(sp *scenario.Spec, opts scenario.Options) bool {
	key := PoolKey(sp, opts)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if _, ok := p.entries[key]; !ok {
		p.insertLocked(key, baseSpec(sp, opts))
	}
	return true
}

// handlePlan runs the boundary solver for a tenant's target devices and
// returns the winning certified-safe plan, ranked alternatives, and a
// ready-to-rehearse spec whose exact emulate set keys into the warm pool —
// so the tenant's rehearsal forks a fabric no bigger than its plan.
//
//	POST /v1/plan    body: PlanRequest JSON
//	→ 200 PlanResponse JSON (deterministic for identical requests)
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("serve: POST only"))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: read body: %w", err))
		return
	}
	var req PlanRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: plan request: %w", err))
		return
	}
	if len(req.Targets) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("serve: plan request needs targets"))
		return
	}

	sess, code, err := s.begin("plan", r.Header.Get(TenantHeader), "plan")
	if err != nil {
		writeError(w, code, err)
		return
	}
	defer s.end(sess)
	w.Header().Set(RequestHeader, sess.ID)

	// The spec below is also how the topology gets validated and built —
	// exactly the object a follow-up rehearsal will carry.
	spec := &scenario.Spec{
		Name:     "plan",
		Seed:     req.Seed,
		Topology: req.Topology,
		Steps:    []scenario.Step{{Op: scenario.OpWaitConverge}},
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	n, _, err := spec.BuildNetwork()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := boundary.Solve(n, req.Targets, boundary.SolveOptions{
		Seed: req.Seed, MaxAlternatives: req.Alternatives,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	spec.Name = "plan-" + res.Network
	spec.Description = fmt.Sprintf("solver plan for %d targets (%s, %s)",
		len(res.Targets), res.Best.Strategy, res.Best.Certificate)
	spec.Emulate = res.Best.Emulated

	opts := scenario.Options{MaxEvents: s.cfg.MaxEvents}
	warming := false
	if req.Warm {
		warming = s.pool.Prewarm(spec, opts)
	}

	resp := PlanResponse{
		Network:       res.Network,
		Targets:       res.Targets,
		Seed:          res.Seed,
		Best:          planSolution(res.Best),
		FullDevices:   res.FullDevices,
		FullVMs:       res.FullVMs,
		FullHourlyUSD: res.FullHourlyUSD,
		CostReduction: res.CostReduction,
		Spec:          spec,
		PoolKey:       PoolKey(spec, opts),
		Warming:       warming,
	}
	for _, alt := range res.Alternatives {
		resp.Alternatives = append(resp.Alternatives, planSolution(alt))
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// planSolution converts a solver solution to its wire form.
func planSolution(sol boundary.Solution) PlanSolution {
	layers := map[string]int{}
	for l, c := range sol.Scale.LayerCounts {
		layers[l.String()] = c
	}
	return PlanSolution{
		Strategy:    sol.Strategy,
		Certificate: string(sol.Certificate),
		Emulate:     sol.Emulated,
		Devices:     sol.Scale.TotalEmulated,
		Speakers:    sol.Scale.Speakers,
		Layers:      layers,
		Proportion:  sol.Scale.Proportion,
		VMs:         sol.Scale.VMs,
		HourlyUSD:   sol.HourlyUSD,
	}
}
