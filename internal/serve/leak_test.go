package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"crystalnet/internal/core"
	"crystalnet/internal/scenario"
)

// waitForGoroutines polls until the goroutine count drops back to within
// slack of base, tolerating runtime background goroutines.
func waitForGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%s leaked goroutines: %d now vs %d before\n%s", what, n, base, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCanceledRunReturnsErrCanceled(t *testing.T) {
	// Satellite (b) at the scenario layer: a run whose cancel channel has
	// fired tears down its emulation and reports core.ErrCanceled.
	ch := make(chan struct{})
	close(ch)
	if _, err := scenario.Run(tinySpec("cancel-pre", 7), scenario.Options{Cancel: ch}); err == nil {
		t.Fatal("canceled run returned a report")
	} else if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("error %v does not wrap core.ErrCanceled", err)
	}
}

func TestCanceledMidConvergenceTearsDown(t *testing.T) {
	// Cancel while the convergence drive is in flight: the chunked
	// cancelable run loop must notice, tear down and not leak the run's
	// goroutine (scenario runs are synchronous, so the real check is the
	// sentinel plus the wall-clock bound — teardown, not a full drive).
	base := runtime.NumGoroutine()
	ch := make(chan struct{})
	errc := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := scenario.Run(tinySpec("cancel-mid", 7), scenario.Options{Cancel: ch})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	close(ch)
	wg.Wait()
	err := <-errc
	if err == nil {
		// The run finished before the cancel landed — legal on a fast
		// machine with a tiny fabric, and not a failure of teardown.
		t.Skip("run completed before cancellation; nothing to tear down")
	}
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("error %v does not wrap core.ErrCanceled", err)
	}
	waitForGoroutines(t, base, "canceled mid-convergence run")
}

func TestAbandonedRequestsDoNotLeakGoroutines(t *testing.T) {
	// Satellite (b) end to end: requests whose clients vanish mid-run —
	// some mid-convergence — must tear down deterministically, and a
	// subsequent drain must leave the daemon at its pre-traffic goroutine
	// count with zero sessions.
	base := runtime.NumGoroutine()

	s := NewServer(Config{PoolSize: 2})
	ts := httptest.NewServer(s.Handler())

	// One completed request warms the pool.
	resp, body := rehearse(t, ts, tinySpec("leak", 7), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: %d: %s", resp.StatusCode, body)
	}

	// Abandoned requests: fire, then cancel mid-flight.
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/rehearse", specBody(t, tinySpec("leak", 7)))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			r, err := http.DefaultClient.Do(req)
			if err == nil {
				r.Body.Close()
			}
			close(done)
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		<-done
	}

	ctx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelDrain()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	s.mu.Lock()
	left := len(s.sessions)
	s.mu.Unlock()
	if left != 0 {
		t.Fatalf("%d sessions survived drain", left)
	}
	waitForGoroutines(t, base, "abandoned requests + drain")
}
