package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"crystalnet/internal/scenario"
)

func boolp(v bool) *bool { return &v }

// tinySpec builds a fast custom-Clos rehearsal: link flap, converge,
// restore, converge, under a no-blackhole invariant.
func tinySpec(name string, seed int64) *scenario.Spec {
	return &scenario.Spec{
		Name: name,
		Seed: seed,
		Topology: scenario.Topology{
			WANPerGroup: 1,
			Clos: &scenario.ClosSpec{
				Name: "tiny", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
				SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
				PrefixesPerToR: 1,
			},
		},
		Invariants: []scenario.Step{{Op: scenario.OpAssertNoBlackhole}},
		Steps: []scenario.Step{
			{Op: scenario.OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(false)},
			{Op: scenario.OpWaitConverge},
			{Op: scenario.OpSetLink, A: "tor-p0-0:et0", B: "leaf-p0-0:et2", Up: boolp(true)},
			{Op: scenario.OpWaitConverge},
		},
	}
}

func specBody(t *testing.T, sp *scenario.Spec) *bytes.Reader {
	t.Helper()
	b, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(b)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func rehearse(t *testing.T, ts *httptest.Server, sp *scenario.Spec, tenant string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/rehearse", specBody(t, sp))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHTTPRehearsalMatchesBatchBytes(t *testing.T) {
	// The service's core contract, the HTTP extension of
	// scenario.TestForkedRunMatchesFreshRun: a warm-pool-served rehearsal
	// returns the exact bytes a batch scenario.Run produces.
	want, err := scenario.Run(tinySpec("http-vs-batch", 7), scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Passed {
		t.Fatalf("batch run failed:\n%s", want.JSON())
	}

	_, ts := newTestServer(t, Config{PoolSize: 2})
	// First request converges the pool entry (miss), second forks it
	// (hit); both must match the batch bytes.
	for i, wantMode := range []string{"miss", "hit"} {
		resp, body := rehearse(t, ts, tinySpec("http-vs-batch", 7), "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(PoolHeader); got != wantMode {
			t.Fatalf("request %d: %s = %q, want %q", i, PoolHeader, got, wantMode)
		}
		if resp.Header.Get(RequestHeader) == "" {
			t.Fatalf("request %d: missing %s header", i, RequestHeader)
		}
		if !bytes.Equal(body, want.JSON()) {
			t.Fatalf("request %d: served report differs from batch run\nbatch:\n%s\nserved:\n%s",
				i, want.JSON(), body)
		}
	}
}

func TestConcurrentForkStorm(t *testing.T) {
	// N concurrent rehearsals against one fabric: exactly one convergence
	// (the rest coalesce), every response byte-identical. check.sh runs
	// this under -race.
	s, ts := newTestServer(t, Config{PoolSize: 2, MaxInFlight: 32, TenantInFlight: 32})
	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := rehearse(t, ts, tinySpec("storm", 7), "")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	st := s.Pool().Status()
	if st.Misses != 1 {
		t.Fatalf("pool misses = %d, want 1 (storm must coalesce onto one convergence)", st.Misses)
	}
	if st.Hits != n-1 {
		t.Fatalf("pool hits = %d, want %d", st.Hits, n-1)
	}
}

func TestTenantQuota(t *testing.T) {
	// A tenant at its concurrency cap gets 429; another tenant is
	// unaffected. Stall the first tenant's slot with a request parked on
	// a never-converging... simpler: quota of 1 and a slow in-flight run
	// held open via a blocking body read is fragile — instead drive
	// begin/end directly.
	s := NewServer(Config{TenantInFlight: 1, MaxInFlight: 4})
	defer s.Pool().Close()
	a1, code, err := s.begin("rehearse", "team-a", "x")
	if err != nil {
		t.Fatalf("admit 1: %d %v", code, err)
	}
	if _, code, err = s.begin("rehearse", "team-a", "x"); err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("tenant over quota admitted (code %d, err %v)", code, err)
	}
	b1, code, err := s.begin("rehearse", "team-b", "x")
	if err != nil {
		t.Fatalf("other tenant blocked: %d %v", code, err)
	}
	s.end(a1)
	a2, code, err := s.begin("rehearse", "team-a", "x")
	if err != nil {
		t.Fatalf("slot not released: %d %v", code, err)
	}
	s.end(a2)
	s.end(b1)

	// Global cap.
	s2 := NewServer(Config{MaxInFlight: 1, TenantInFlight: 4})
	defer s2.Pool().Close()
	g1, _, err := s2.begin("rehearse", "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, code, err := s2.begin("rehearse", "b", "x"); err == nil || code != http.StatusTooManyRequests {
		t.Fatalf("global cap not enforced (code %d, err %v)", code, err)
	}
	s2.end(g1)
}

func TestDrainRefusesAndFinishes(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 1})

	// Healthy before drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d before drain", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, body := rehearse(t, ts, tinySpec("late", 7), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("rehearse during drain = %d (%s), want 503", resp.StatusCode, body)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d after drain, want 503", resp.StatusCode)
	}

	// Drained server reports zero sessions.
	var st StatusResponse
	resp, err = http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Draining || st.InFlight != 0 || len(st.Sessions) != 0 {
		t.Fatalf("status after drain: %+v", st)
	}
}

func TestStatusAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{PoolSize: 2})
	resp, body := rehearse(t, ts, tinySpec("obs", 7), "team-obs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rehearse: %d: %s", resp.StatusCode, body)
	}

	var st StatusResponse
	r2, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.Served["rehearse"] != 1 {
		t.Fatalf("served[rehearse] = %d, want 1", st.Served["rehearse"])
	}
	if st.Pool.Capacity != 2 || st.Pool.Misses != 1 || len(st.Pool.Entries) != 1 {
		t.Fatalf("pool status: %+v", st.Pool)
	}
	if e := st.Pool.Entries[0]; e.Fabric != "tiny" || e.Seed != 7 || e.State != "ready" || e.Refs != 0 {
		t.Fatalf("pool entry: %+v", e)
	}

	r3, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(r3.Body)
	r3.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"http_requests", "pool_misses", "http_latency_bucket"} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

func TestRehearseBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/rehearse", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
		t.Fatalf("bad body: %d %+v", resp.StatusCode, e)
	}
	r2, err := http.Get(ts.URL + "/v1/rehearse")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET rehearse = %d, want 405", r2.StatusCode)
	}
}

func TestChaosEndpointMatchesBatch(t *testing.T) {
	base := tinySpec("chaos-http", 7)
	want, err := scenario.Chaos(base, scenario.CampaignConfig{
		N: 2, Seed: 7, FaultsPerRun: 2, Workers: 1, Reuse: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(
		ts.URL+"/v1/chaos?n=2&faults=2&seed=7&workers=1",
		"application/json", specBody(t, tinySpec("chaos-http", 7)))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos: %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want.JSON()) {
		t.Fatalf("served campaign differs from batch campaign\nbatch:\n%s\nserved:\n%s",
			want.JSON(), body)
	}
}

func TestPoolInvalidateEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 2, NoRewarm: true})
	if resp, body := rehearse(t, ts, tinySpec("inv", 7), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("rehearse: %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Post(ts.URL+"/v1/pool/invalidate", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var ir InvalidateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ir.Invalidated != 1 || ir.Rewarming {
		t.Fatalf("invalidate response: %+v", ir)
	}
	if got := len(s.Pool().Status().Entries); got != 0 {
		t.Fatalf("pool entries after invalidate = %d, want 0 (NoRewarm)", got)
	}
	// The next rehearsal re-converges (miss), not a stale hit.
	resp2, body := rehearse(t, ts, tinySpec("inv", 7), "")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("rehearse after invalidate: %d: %s", resp2.StatusCode, body)
	}
	if got := resp2.Header.Get(PoolHeader); got != "miss" {
		t.Fatalf("%s after invalidate = %q, want miss", PoolHeader, got)
	}
}

func TestRehearseBypassForUnforkableSpec(t *testing.T) {
	// An attach-device spec cannot fork; the server must run it from
	// scratch and say so, with bytes matching the batch run.
	sp := tinySpec("bypass", 7)
	sp.Steps = append(sp.Steps,
		scenario.Step{Op: scenario.OpAttachDevice, NewDevice: &scenario.NewDevice{
			Name: "tor-new", Layer: "tor", Vendor: "ctnra",
			Peers: []string{"leaf-p0-0", "leaf-p0-1"},
		}},
		scenario.Step{Op: scenario.OpWaitConverge},
	)
	want, err := scenario.Run(sp.Clone(), scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{})
	resp, body := rehearse(t, ts, sp, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bypass rehearse: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(PoolHeader); got != "bypass" {
		t.Fatalf("%s = %q, want bypass", PoolHeader, got)
	}
	if !bytes.Equal(body, want.JSON()) {
		t.Fatalf("bypass report differs from batch run")
	}
	if st := s.Pool().Status(); st.Hits+st.Misses != 0 {
		t.Fatalf("bypass touched the pool: %+v", st)
	}
}

func TestWarmPreconverges(t *testing.T) {
	s, ts := newTestServer(t, Config{PoolSize: 2})
	if err := s.Warm(tinySpec("prewarm", 7)); err != nil {
		t.Fatal(err)
	}
	resp, body := rehearse(t, ts, tinySpec("prewarm", 7), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rehearse: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(PoolHeader); got != "hit" {
		t.Fatalf("first rehearsal after Warm = %q, want hit", got)
	}
}
