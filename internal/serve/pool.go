package serve

import (
	"encoding/json"
	"fmt"
	"sync"

	"crystalnet/internal/core"
	"crystalnet/internal/obs"
	"crystalnet/internal/scenario"
)

// Pool keeps converged, checkpointed base fabrics warm so rehearsal
// requests fork instead of re-converging. Entries are keyed by everything
// that shapes a convergence — topology, image pins, emulation boundary,
// invariants and the resolved seed — and deliberately NOT by the spec's
// name, description or steps, which only affect the forked portion of a
// run. Two requests rehearsing different step sequences against the same
// fabric therefore share one baseline.
//
// Concurrency model: one mutex guards the entry table; convergences run
// outside it in per-entry warm goroutines. Concurrent requests for the
// same cold key coalesce onto a single convergence (singleflight via the
// entry's ready channel). Borrowers are refcounted; an entry evicted by
// LRU pressure or explicit invalidation has its snapshot invalidated as
// soon as the last borrower releases, so stale handles fail loudly in
// core.Fork instead of silently reviving retired state.
type Pool struct {
	size      int
	maxEvents uint64
	rewarm    bool
	live      *obs.Live

	mu        sync.Mutex
	entries   map[string]*poolEntry
	clock     uint64 // logical LRU clock; bumped on every acquire
	hits      uint64
	misses    uint64
	evictions uint64
	closed    bool

	stop chan struct{}  // closed by Close; cancels in-flight warms
	wg   sync.WaitGroup // tracks warm goroutines
}

// poolEntry is one warm (or warming) baseline.
type poolEntry struct {
	key  string
	base *scenario.Spec // cleaned spec the baseline converges from

	ready chan struct{} // closed when cv/err are set
	cv    *scenario.Converged
	err   error

	refs    int
	lastUse uint64
	evicted bool
}

// NewPool returns a pool holding up to size warm baselines. maxEvents
// caps each convergence drive (0 = scenario default); rewarm re-converges
// invalidated entries in the background; live (nil-safe) receives
// pool.hits / pool.misses / pool.evictions / pool.entries metrics.
func NewPool(size int, maxEvents uint64, rewarm bool, live *obs.Live) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{
		size:      size,
		maxEvents: maxEvents,
		rewarm:    rewarm,
		live:      live,
		entries:   map[string]*poolEntry{},
		stop:      make(chan struct{}),
	}
}

// PoolKey canonicalizes the convergence-shaping part of a spec: name,
// description and steps are dropped (they only affect the forked run),
// the seed is resolved, and the rest marshals through encoding/json,
// which orders struct fields by declaration and map keys lexically — so
// equal fabrics produce equal keys.
func PoolKey(sp *scenario.Spec, opts scenario.Options) string {
	c := sp.Clone()
	c.Name = ""
	c.Description = ""
	c.Steps = nil
	c.Seed = scenario.EffectiveSeed(sp, opts)
	b, err := json.Marshal(c)
	if err != nil {
		// Specs arrive through scenario.Parse; plain data cannot fail.
		panic(fmt.Sprintf("serve: marshal pool key: %v", err))
	}
	return string(b)
}

// baseSpec derives the spec a pooled baseline converges from: the
// request's fabric with the steps replaced by a placeholder (Validate
// requires one; Converge never executes steps) and the seed pinned.
func baseSpec(sp *scenario.Spec, opts scenario.Options) *scenario.Spec {
	base := sp.Clone()
	base.Name = "warm-pool"
	base.Description = ""
	base.Steps = []scenario.Step{{Op: scenario.OpWaitConverge}}
	base.Seed = scenario.EffectiveSeed(sp, opts)
	return base
}

// fabricName is the human-readable face of a pool key for status output.
func fabricName(sp *scenario.Spec) string {
	if sp.Topology.Clos != nil {
		return sp.Topology.Clos.Name
	}
	return sp.Topology.DC
}

// Acquire returns a converged baseline for sp, converging one on a miss.
// Requests for a key being warmed coalesce onto that convergence. The
// returned release func must be called exactly once, after the borrower
// has finished forking (idempotent, so a deferred call is safe). hit
// reports whether the baseline already existed — coalesced waiters count
// as hits: they did not pay for a convergence of their own.
//
// cancel aborts the wait (not the shared convergence — other waiters may
// still want it); the returned error then wraps core.ErrCanceled.
func (p *Pool) Acquire(sp *scenario.Spec, opts scenario.Options, cancel <-chan struct{}) (cv *scenario.Converged, release func(), hit bool, err error) {
	key := PoolKey(sp, opts)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, nil, false, fmt.Errorf("serve: pool is closed")
	}
	e, hit := p.entries[key]
	if hit {
		p.hits++
		p.live.Counter("pool.hits", "").Inc()
	} else {
		p.misses++
		p.live.Counter("pool.misses", "").Inc()
		e = p.insertLocked(key, baseSpec(sp, opts))
	}
	e.refs++
	p.clock++
	e.lastUse = p.clock
	p.mu.Unlock()

	select {
	case <-e.ready:
	case <-cancel:
		p.release(e)
		return nil, nil, hit, fmt.Errorf("serve: acquire: %w", core.ErrCanceled)
	}
	if e.err != nil {
		err := e.err
		p.release(e)
		return nil, nil, hit, err
	}
	var once sync.Once
	return e.cv, func() { once.Do(func() { p.release(e) }) }, hit, nil
}

// insertLocked registers a new entry for key and starts its convergence.
// Caller holds p.mu. The entry starts with zero refs (Acquire and rewarm
// both call this; Acquire adds its own ref).
func (p *Pool) insertLocked(key string, base *scenario.Spec) *poolEntry {
	e := &poolEntry{key: key, base: base, ready: make(chan struct{})}
	p.entries[key] = e
	p.clock++
	e.lastUse = p.clock
	for len(p.entries) > p.size {
		p.evictLRULocked(key)
	}
	p.live.Gauge("pool.entries", "").Set(float64(len(p.entries)))
	p.wg.Add(1)
	go p.warm(e)
	return e
}

// warm converges the entry's base spec and publishes the result. The
// convergence is canceled by pool Close (p.stop), never by an individual
// requester — coalesced waiters must survive one requester's disconnect.
// A failed convergence removes the entry so later requests retry.
func (p *Pool) warm(e *poolEntry) {
	defer p.wg.Done()
	cv, err := scenario.Converge(e.base, scenario.Options{MaxEvents: p.maxEvents, Cancel: p.stop})
	p.mu.Lock()
	e.cv, e.err = cv, err
	if err != nil && p.entries[e.key] == e {
		delete(p.entries, e.key)
		e.evicted = true
		p.live.Gauge("pool.entries", "").Set(float64(len(p.entries)))
	}
	maybeInvalidateLocked(e)
	p.mu.Unlock()
	close(e.ready)
}

// release drops one borrower ref; the last ref out of an evicted entry
// invalidates its snapshot.
func (p *Pool) release(e *poolEntry) {
	p.mu.Lock()
	e.refs--
	maybeInvalidateLocked(e)
	p.mu.Unlock()
}

// maybeInvalidateLocked retires an evicted entry's snapshot once nothing
// borrows it. Idempotent; caller holds p.mu.
func maybeInvalidateLocked(e *poolEntry) {
	if e.evicted && e.refs <= 0 && e.cv != nil {
		e.cv.Invalidate()
	}
}

// evictLRULocked removes the least-recently-used entry other than keep.
// Borrowers holding the evicted entry finish their forks; the snapshot
// invalidates when the last of them releases. Caller holds p.mu.
func (p *Pool) evictLRULocked(keep string) {
	var victim *poolEntry
	for key, e := range p.entries {
		if key == keep {
			continue
		}
		if victim == nil || e.lastUse < victim.lastUse {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	delete(p.entries, victim.key)
	victim.evicted = true
	p.evictions++
	p.live.Counter("pool.evictions", "").Inc()
	maybeInvalidateLocked(victim)
}

// Invalidate retires warm baselines — all of them when sp is nil,
// otherwise the one matching sp's pool key — and, when the pool was built
// with rewarm, starts replacement convergences in the background. It
// returns the number of entries retired. Operators call this (via POST
// /v1/pool/invalidate) after changing what a fabric converges to, e.g.
// repinning a vendor image under the same version label.
func (p *Pool) Invalidate(sp *scenario.Spec, opts scenario.Options) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	var victims []*poolEntry
	if sp == nil {
		for _, e := range p.entries {
			victims = append(victims, e)
		}
	} else if e, ok := p.entries[PoolKey(sp, opts)]; ok {
		victims = append(victims, e)
	}
	for _, e := range victims {
		delete(p.entries, e.key)
		e.evicted = true
		maybeInvalidateLocked(e)
	}
	if p.rewarm && !p.closed {
		for _, e := range victims {
			// Re-converge from a private clone: the retired entry may still
			// be mid-convergence on the same base.
			p.insertLocked(e.key, e.base.Clone())
		}
	}
	p.live.Gauge("pool.entries", "").Set(float64(len(p.entries)))
	return len(victims)
}

// Close retires every entry, cancels in-flight convergences and waits for
// the warm goroutines to exit. The pool refuses Acquire afterwards.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	for key, e := range p.entries {
		delete(p.entries, key)
		e.evicted = true
		maybeInvalidateLocked(e)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// Status reports the pool's configuration, counters and entries (most
// recently used first).
func (p *Pool) Status() PoolStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := PoolStatus{
		Capacity:  p.size,
		Rewarm:    p.rewarm,
		Hits:      p.hits,
		Misses:    p.misses,
		Evictions: p.evictions,
	}
	order := make([]*poolEntry, 0, len(p.entries))
	for _, e := range p.entries {
		order = append(order, e)
	}
	// Most recently used first; lastUse values are unique (monotonic
	// clock), so the order is deterministic.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].lastUse > order[j-1].lastUse; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, e := range order {
		state := "warming"
		select {
		case <-e.ready:
			state = "ready"
		default:
		}
		st.Entries = append(st.Entries, PoolEntryStatus{
			Fabric: fabricName(e.base),
			Seed:   e.base.Seed,
			State:  state,
			Refs:   e.refs,
		})
	}
	return st
}
