package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"crystalnet/internal/bgp"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
)

// Dialect identifies a vendor configuration language variant. Versions
// matter: the paper's §2 recounts a vendor changing its ACL argument order
// between releases, which this layer reproduces for CTNR-A 2.x.
type Dialect struct {
	Vendor  string
	Version string
}

// aclSwapped reports whether the dialect writes ACL entries as
// "<dst> <src>" instead of the classic "<src> <dst>" — the undocumented
// CTNR-A 2.x format change.
func (d Dialect) aclSwapped() bool {
	return d.Vendor == "ctnra" && strings.HasPrefix(d.Version, "2")
}

// neighborKeyword returns the dialect's spelling of "neighbor".
func (d Dialect) neighborKeyword() string {
	if d.Vendor == "vmb" {
		return "neighbour"
	}
	return "neighbor"
}

// maxPathsKeyword returns the dialect's ECMP statement.
func (d Dialect) maxPathsKeyword() string {
	if d.Vendor == "vma" {
		return "maximum-paths"
	}
	return "max-paths"
}

// Render serializes a device config in the given dialect.
func Render(c *DeviceConfig, d Dialect) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	w("hostname %s", c.Hostname)
	w("vendor %s version %s", c.Vendor, c.Version)
	w("asn %d", c.ASN)
	w("router-id %s", c.RouterID)
	if c.Credential != "" {
		w("credential %s", c.Credential)
	}
	for _, i := range c.Interfaces {
		w("interface %s address %s", i.Name, i.Addr)
	}
	for _, n := range c.Neighbors {
		line := fmt.Sprintf("bgp %s %s remote-as %d", d.neighborKeyword(), n.IP, n.RemoteAS)
		if n.Interface != "" {
			line += " interface " + n.Interface
		}
		if n.ImportPolicy != "" {
			line += " import " + n.ImportPolicy
		}
		if n.ExportPolicy != "" {
			line += " export " + n.ExportPolicy
		}
		if n.Desc != "" {
			line += " desc " + n.Desc
		}
		w("%s", line)
	}
	for _, p := range c.Networks {
		w("bgp network %s", p)
	}
	for _, a := range c.Aggregates {
		if a.SummaryOnly {
			w("bgp aggregate %s summary-only", a.Prefix)
		} else {
			w("bgp aggregate %s", a.Prefix)
		}
	}
	if c.MaxPaths > 0 {
		w("bgp %s %d", d.maxPathsKeyword(), c.MaxPaths)
	}

	names := make([]string, 0, len(c.RouteMaps))
	for name := range c.RouteMaps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pol := c.RouteMaps[name]
		for i, r := range pol.Rules {
			verb := "permit"
			if r.Action == bgp.Deny {
				verb = "deny"
			}
			line := fmt.Sprintf("route-map %s %s %d", name, verb, (i+1)*10)
			if r.Match.Prefix != nil {
				line += " match " + r.Match.Prefix.String()
				if r.Match.Exact {
					line += " exact"
				} else if r.Match.GE != 0 || r.Match.LE != 0 {
					line += fmt.Sprintf(" ge %d le %d", r.Match.GE, r.Match.LE)
				}
			}
			if r.Match.PathContains != 0 {
				line += fmt.Sprintf(" match-as %d", r.Match.PathContains)
			}
			if r.SetLocalPref != nil {
				line += fmt.Sprintf(" set-local-pref %d", *r.SetLocalPref)
			}
			if r.SetMED != nil {
				line += fmt.Sprintf(" set-med %d", *r.SetMED)
			}
			if r.PrependCount > 0 {
				line += fmt.Sprintf(" prepend %d %d", r.PrependAS, r.PrependCount)
			}
			w("%s", line)
		}
		def := "deny"
		if pol.DefaultAction == bgp.Permit {
			def = "permit"
		}
		w("route-map %s default %s", name, def)
	}

	aclNames := make([]string, 0, len(c.ACLs))
	for name := range c.ACLs {
		aclNames = append(aclNames, name)
	}
	sort.Strings(aclNames)
	for _, name := range aclNames {
		acl := c.ACLs[name]
		for _, r := range acl.Rules {
			verb := "permit"
			if r.Action == dataplane.ACLDeny {
				verb = "deny"
			}
			proto := "any"
			switch r.Proto {
			case netpkt.ProtoTCP:
				proto = "tcp"
			case netpkt.ProtoUDP:
				proto = "udp"
			case netpkt.ProtoICMP:
				proto = "icmp"
			}
			src, dst := prefixOrAny(r.Src), prefixOrAny(r.Dst)
			if d.aclSwapped() {
				src, dst = dst, src
			}
			line := fmt.Sprintf("acl %s %s %s %s %s", name, verb, proto, src, dst)
			if r.DstPort != 0 {
				line += fmt.Sprintf(" dport %d", r.DstPort)
			}
			if r.SrcPort != 0 {
				line += fmt.Sprintf(" sport %d", r.SrcPort)
			}
			w("%s", line)
		}
		def := "deny"
		if acl.DefaultAction == dataplane.ACLPermit {
			def = "permit"
		}
		w("acl %s default %s", name, def)
	}
	for _, bind := range c.Bindings {
		dir := "in"
		if bind.Direction == Out {
			dir = "out"
		}
		w("apply-acl %s %s %s", bind.ACLName, dir, bind.Interface)
	}
	if c.OSPF != nil {
		for _, i := range c.OSPF.Interfaces {
			kind := "p2p"
			if i.Broadcast {
				kind = "broadcast"
			}
			w("ospf interface %s cost %d priority %d %s", i.Name, i.Cost, i.Priority, kind)
		}
	}
	return b.String()
}

func prefixOrAny(p *netpkt.Prefix) string {
	if p == nil {
		return "any"
	}
	return p.String()
}

// Parse reads a config text in the given dialect. Crucially, the dialect's
// parser interprets ACL argument order per ITS OWN version — feeding a 1.x
// text to a 2.x CTNR-A parser silently swaps src/dst, as in production.
func Parse(text string, d Dialect) (*DeviceConfig, error) {
	c := &DeviceConfig{
		RouteMaps: map[string]*bgp.Policy{},
		ACLs:      map[string]*dataplane.ACL{},
	}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if err := parseLine(c, d, f); err != nil {
			return nil, fmt.Errorf("line %d %q: %w", lineNo+1, line, err)
		}
	}
	return c, nil
}

func parseLine(c *DeviceConfig, d Dialect, f []string) error {
	switch f[0] {
	case "hostname":
		c.Hostname = arg(f, 1)
	case "vendor":
		c.Vendor = arg(f, 1)
		if arg(f, 2) == "version" {
			c.Version = arg(f, 3)
		}
	case "asn":
		v, err := strconv.ParseUint(arg(f, 1), 10, 32)
		if err != nil {
			return err
		}
		c.ASN = uint32(v)
	case "router-id":
		ip, err := netpkt.ParseIP(arg(f, 1))
		if err != nil {
			return err
		}
		c.RouterID = ip
	case "credential":
		c.Credential = arg(f, 1)
	case "interface":
		if arg(f, 2) != "address" {
			return fmt.Errorf("expected 'address'")
		}
		p, err := parseIfaceAddr(arg(f, 3))
		if err != nil {
			return err
		}
		c.Interfaces = append(c.Interfaces, InterfaceConfig{Name: arg(f, 1), Addr: p})
		if f[1] == "lo" {
			c.Loopback = p
		}
	case "bgp":
		return parseBGPLine(c, d, f[1:])
	case "route-map":
		return parseRouteMapLine(c, f[1:])
	case "acl":
		return parseACLLine(c, d, f[1:])
	case "apply-acl":
		dir := In
		if arg(f, 2) == "out" {
			dir = Out
		}
		c.Bindings = append(c.Bindings, ACLBinding{ACLName: arg(f, 1), Direction: dir, Interface: arg(f, 3)})
	case "ospf":
		if arg(f, 1) != "interface" {
			return fmt.Errorf("unknown ospf statement")
		}
		cost, err := strconv.ParseUint(arg(f, 4), 10, 16)
		if err != nil {
			return err
		}
		prio, err := strconv.ParseUint(arg(f, 6), 10, 8)
		if err != nil {
			return err
		}
		if c.OSPF == nil {
			c.OSPF = &OSPFConfig{}
		}
		c.OSPF.Interfaces = append(c.OSPF.Interfaces, OSPFIfaceConfig{
			Name: arg(f, 2), Cost: uint16(cost), Priority: uint8(prio),
			Broadcast: arg(f, 7) == "broadcast",
		})
	default:
		return fmt.Errorf("unknown statement %q", f[0])
	}
	return nil
}

func parseBGPLine(c *DeviceConfig, d Dialect, f []string) error {
	switch arg(f, 0) {
	case "neighbor", "neighbour":
		ip, err := netpkt.ParseIP(arg(f, 1))
		if err != nil {
			return err
		}
		if arg(f, 2) != "remote-as" {
			return fmt.Errorf("expected remote-as")
		}
		asn, err := strconv.ParseUint(arg(f, 3), 10, 32)
		if err != nil {
			return err
		}
		n := BGPNeighbor{IP: ip, RemoteAS: uint32(asn)}
		for i := 4; i+1 < len(f); i += 2 {
			switch f[i] {
			case "interface":
				n.Interface = f[i+1]
			case "import":
				n.ImportPolicy = f[i+1]
			case "export":
				n.ExportPolicy = f[i+1]
			case "desc":
				n.Desc = f[i+1]
			}
		}
		c.Neighbors = append(c.Neighbors, n)
	case "network":
		p, err := netpkt.ParsePrefix(arg(f, 1))
		if err != nil {
			return err
		}
		c.Networks = append(c.Networks, p)
	case "aggregate":
		p, err := netpkt.ParsePrefix(arg(f, 1))
		if err != nil {
			return err
		}
		c.Aggregates = append(c.Aggregates, Aggregate{Prefix: p, SummaryOnly: arg(f, 2) == "summary-only"})
	case "max-paths", "maximum-paths":
		v, err := strconv.Atoi(arg(f, 1))
		if err != nil {
			return err
		}
		c.MaxPaths = v
	default:
		return fmt.Errorf("unknown bgp statement %q", arg(f, 0))
	}
	return nil
}

func parseRouteMapLine(c *DeviceConfig, f []string) error {
	name := arg(f, 0)
	if name == "" {
		return fmt.Errorf("route-map needs a name")
	}
	pol := c.RouteMaps[name]
	if pol == nil {
		pol = &bgp.Policy{Name: name}
		c.RouteMaps[name] = pol
	}
	if arg(f, 1) == "default" {
		if arg(f, 2) == "permit" {
			pol.DefaultAction = bgp.Permit
		} else {
			pol.DefaultAction = bgp.Deny
		}
		return nil
	}
	r := bgp.Rule{Name: arg(f, 2)}
	if arg(f, 1) == "deny" {
		r.Action = bgp.Deny
	}
	for i := 3; i < len(f); i++ {
		switch f[i] {
		case "match":
			p, err := netpkt.ParsePrefix(arg(f, i+1))
			if err != nil {
				return err
			}
			r.Match.Prefix = &p
			i++
		case "exact":
			r.Match.Exact = true
		case "ge":
			v, _ := strconv.Atoi(arg(f, i+1))
			r.Match.GE = uint8(v)
			i++
		case "le":
			v, _ := strconv.Atoi(arg(f, i+1))
			r.Match.LE = uint8(v)
			i++
		case "match-as":
			v, err := strconv.ParseUint(arg(f, i+1), 10, 32)
			if err != nil {
				return err
			}
			r.Match.PathContains = uint32(v)
			i++
		case "set-local-pref":
			v, _ := strconv.ParseUint(arg(f, i+1), 10, 32)
			lp := uint32(v)
			r.SetLocalPref = &lp
			i++
		case "set-med":
			v, _ := strconv.ParseUint(arg(f, i+1), 10, 32)
			med := uint32(v)
			r.SetMED = &med
			i++
		case "prepend":
			as, _ := strconv.ParseUint(arg(f, i+1), 10, 32)
			cnt, _ := strconv.Atoi(arg(f, i+2))
			r.PrependAS, r.PrependCount = uint32(as), cnt
			i += 2
		}
	}
	pol.Rules = append(pol.Rules, r)
	return nil
}

func parseACLLine(c *DeviceConfig, d Dialect, f []string) error {
	name := arg(f, 0)
	if name == "" {
		return fmt.Errorf("acl needs a name")
	}
	acl := c.ACLs[name]
	if acl == nil {
		acl = &dataplane.ACL{Name: name}
		c.ACLs[name] = acl
	}
	if arg(f, 1) == "default" {
		if arg(f, 2) == "permit" {
			acl.DefaultAction = dataplane.ACLPermit
		} else {
			acl.DefaultAction = dataplane.ACLDeny
		}
		return nil
	}
	r := dataplane.ACLRule{Action: dataplane.ACLPermit}
	if arg(f, 1) == "deny" {
		r.Action = dataplane.ACLDeny
	}
	switch arg(f, 2) {
	case "tcp":
		r.Proto = netpkt.ProtoTCP
	case "udp":
		r.Proto = netpkt.ProtoUDP
	case "icmp":
		r.Proto = netpkt.ProtoICMP
	case "any":
	default:
		return fmt.Errorf("unknown protocol %q", arg(f, 2))
	}
	first, second := arg(f, 3), arg(f, 4)
	// THE dialect trap: 2.x CTNR-A reads "<dst> <src>"; everything else
	// (including 1.x CTNR-A, whose configs are in the field) means
	// "<src> <dst>".
	srcStr, dstStr := first, second
	if d.aclSwapped() {
		srcStr, dstStr = second, first
	}
	var err error
	if r.Src, err = parsePrefixOrAny(srcStr); err != nil {
		return err
	}
	if r.Dst, err = parsePrefixOrAny(dstStr); err != nil {
		return err
	}
	for i := 5; i+1 < len(f); i += 2 {
		switch f[i] {
		case "dport":
			v, _ := strconv.Atoi(f[i+1])
			r.DstPort = uint16(v)
		case "sport":
			v, _ := strconv.Atoi(f[i+1])
			r.SrcPort = uint16(v)
		}
	}
	acl.Rules = append(acl.Rules, r)
	return nil
}

// parseIfaceAddr parses "a.b.c.d/len" WITHOUT masking host bits — an
// interface address keeps its host part (10.128.0.25/31 is the .25 end of
// the link), unlike a route prefix.
func parseIfaceAddr(s string) (netpkt.Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return netpkt.Prefix{}, fmt.Errorf("interface address %q missing /len", s)
	}
	ip, err := netpkt.ParseIP(s[:slash])
	if err != nil {
		return netpkt.Prefix{}, err
	}
	l, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || l > 32 {
		return netpkt.Prefix{}, fmt.Errorf("bad prefix length in %q", s)
	}
	return netpkt.Prefix{Addr: ip, Len: uint8(l)}, nil
}

func parsePrefixOrAny(s string) (*netpkt.Prefix, error) {
	if s == "any" {
		return nil, nil
	}
	p, err := netpkt.ParsePrefix(s)
	if err != nil {
		return nil, err
	}
	return &p, nil
}

func arg(f []string, i int) string {
	if i >= len(f) {
		return ""
	}
	return f[i]
}
