package config

import (
	"strings"
	"testing"
	"testing/quick"

	"crystalnet/internal/bgp"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/topo"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }

func sampleConfig() *DeviceConfig {
	lp := uint32(200)
	src := pfx("192.0.2.0/24")
	dst := pfx("10.0.0.0/20")
	return &DeviceConfig{
		Hostname: "leaf-p0-0", Vendor: "ctnra", Version: "1.0",
		ASN: 65200, RouterID: netpkt.MustParseIP("10.0.0.3"),
		Loopback: pfx("10.0.0.3/32"),
		Interfaces: []InterfaceConfig{
			{Name: "lo", Addr: pfx("10.0.0.3/32")},
			{Name: "et0", Addr: pfx("10.128.0.0/31")},
			{Name: "et1", Addr: pfx("10.128.0.2/31")},
		},
		Neighbors: []BGPNeighbor{
			{IP: netpkt.MustParseIP("10.128.0.1"), RemoteAS: 65100, Interface: "et0", Desc: "spine-0", ExportPolicy: "GUARD"},
			{IP: netpkt.MustParseIP("10.128.0.3"), RemoteAS: 4200000000, Interface: "et1", ImportPolicy: "GUARD"},
		},
		Networks:   []netpkt.Prefix{pfx("10.0.0.3/32"), pfx("100.64.0.0/24")},
		Aggregates: []Aggregate{{Prefix: pfx("100.64.0.0/23"), SummaryOnly: true}},
		MaxPaths:   64,
		RouteMaps: map[string]*bgp.Policy{
			"GUARD": {
				Name: "GUARD",
				Rules: []bgp.Rule{
					{Name: "10", Action: bgp.Deny, Match: bgp.Match{PathContains: 65100}},
					{Name: "20", Action: bgp.Permit, SetLocalPref: &lp},
				},
				DefaultAction: bgp.Permit,
			},
		},
		ACLs: map[string]*dataplane.ACL{
			"EDGE": {
				Name: "EDGE",
				Rules: []dataplane.ACLRule{
					{Action: dataplane.ACLDeny, Src: &src, Dst: &dst, Proto: netpkt.ProtoUDP, DstPort: 53},
					{Action: dataplane.ACLPermit},
				},
				DefaultAction: dataplane.ACLPermit,
			},
		},
		Bindings:   []ACLBinding{{ACLName: "EDGE", Interface: "et0", Direction: In}},
		OSPF:       &OSPFConfig{Interfaces: []OSPFIfaceConfig{{Name: "et0", Cost: 10, Priority: 1, Broadcast: true}}},
		Credential: "crystal-ops",
	}
}

func TestRenderParseRoundTripNeutral(t *testing.T) {
	c := sampleConfig()
	d := Dialect{Vendor: "ctnrb", Version: "1.0"}
	text := Render(c, d)
	got, err := Parse(text, d)
	if err != nil {
		t.Fatalf("parse failed: %v\n%s", err, text)
	}
	assertEqualConfig(t, c, got)
}

func TestRoundTripAllDialects(t *testing.T) {
	c := sampleConfig()
	for _, d := range []Dialect{
		{Vendor: "ctnra", Version: "1.0"},
		{Vendor: "ctnra", Version: "2.0"}, // swapped ACLs, but self-consistent
		{Vendor: "ctnrb", Version: "1.0"},
		{Vendor: "vma", Version: "3.1"},
		{Vendor: "vmb", Version: "7.2"},
	} {
		text := Render(c, d)
		got, err := Parse(text, d)
		if err != nil {
			t.Fatalf("%v parse failed: %v", d, err)
		}
		assertEqualConfig(t, c, got)
	}
}

func TestACLDialectDriftIncident(t *testing.T) {
	// A config written for CTNR-A 1.x, parsed by 2.x firmware: the ACL's
	// src and dst are silently swapped — the §2 undocumented-format-change
	// incident.
	c := sampleConfig()
	oldText := Render(c, Dialect{Vendor: "ctnra", Version: "1.0"})
	misparsed, err := Parse(oldText, Dialect{Vendor: "ctnra", Version: "2.0"})
	if err != nil {
		t.Fatalf("the misparse is silent, not an error: %v", err)
	}
	want := c.ACLs["EDGE"].Rules[0]
	got := misparsed.ACLs["EDGE"].Rules[0]
	if got.Src == nil || got.Dst == nil {
		t.Fatal("prefixes lost")
	}
	if *got.Src != *want.Dst || *got.Dst != *want.Src {
		t.Fatalf("expected silent src/dst swap, got src=%v dst=%v", got.Src, got.Dst)
	}
	// The swapped ACL no longer matches the traffic the operator intended.
	victim := &dataplane.PacketMeta{
		Src: netpkt.MustParseIP("192.0.2.7"), Dst: netpkt.MustParseIP("10.0.1.1"),
		Proto: netpkt.ProtoUDP, DstPort: 53, TTL: 64,
	}
	if c.ACLs["EDGE"].Eval(victim) != dataplane.ACLDeny {
		t.Fatal("intended ACL should deny")
	}
	if misparsed.ACLs["EDGE"].Eval(victim) != dataplane.ACLPermit {
		t.Fatal("misparsed ACL should (wrongly) permit — the security hole")
	}
}

func TestVendorKeywordVariants(t *testing.T) {
	c := sampleConfig()
	vmbText := Render(c, Dialect{Vendor: "vmb", Version: "1"})
	if !strings.Contains(vmbText, "neighbour") {
		t.Fatal("vmb should spell neighbour")
	}
	vmaText := Render(c, Dialect{Vendor: "vma", Version: "1"})
	if !strings.Contains(vmaText, "maximum-paths") {
		t.Fatal("vma should use maximum-paths")
	}
	// Cross-parsing keyword variants works (they are documented aliases).
	if _, err := Parse(vmbText, Dialect{Vendor: "ctnrb", Version: "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	d := Dialect{Vendor: "ctnrb", Version: "1"}
	cases := []string{
		"frobnicate everything",
		"interface et0 addr 10.0.0.1/31",
		"bgp neighbor 10.0.0.300 remote-as 1",
		"bgp neighbor 10.0.0.1 remoteas 1",
		"acl X permit blah any any",
		"router-id not-an-ip",
	}
	for _, text := range cases {
		if _, err := Parse(text, d); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
	// Comments and blank lines are fine.
	if _, err := Parse("# comment\n\nhostname x\n", d); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateFromTopology(t *testing.T) {
	n := topo.GenerateClos(topo.SDC())
	topo.AttachWAN(n, topo.SDC(), 2)
	cfgs := Generate(n)

	// Externals are not configured.
	if _, ok := cfgs["wan-g0-0"]; ok {
		t.Fatal("external device got a config")
	}
	// Every fabric device is.
	if len(cfgs) != n.NumDevices()-2 {
		t.Fatalf("configs = %d, want %d", len(cfgs), n.NumDevices()-2)
	}

	tor := cfgs["tor-p0-0"]
	if tor == nil {
		t.Fatal("tor config missing")
	}
	if tor.ASN != topo.ToRAS(0) {
		t.Fatalf("tor ASN = %d", tor.ASN)
	}
	// 2 leaves -> 2 neighbors; interfaces = lo + 2.
	if len(tor.Neighbors) != 2 || len(tor.Interfaces) != 3 {
		t.Fatalf("tor neighbors=%d interfaces=%d", len(tor.Neighbors), len(tor.Interfaces))
	}
	// Announces loopback + 1 server prefix.
	if len(tor.Networks) != 2 {
		t.Fatalf("tor networks = %v", tor.Networks)
	}
	if err := tor.Validate(); err != nil {
		t.Fatal(err)
	}
	// Border sees WAN neighbors too.
	border := cfgs["border-g0-0"]
	wantNbrs := 4 + 2 // all spines of the group + 2 WAN
	if len(border.Neighbors) != wantNbrs {
		t.Fatalf("border neighbors = %d, want %d", len(border.Neighbors), wantNbrs)
	}
	// Neighbor remote-AS values match the AS plan.
	for _, nb := range tor.Neighbors {
		if nb.RemoteAS != topo.PodAS(0) {
			t.Fatalf("tor neighbor AS = %d, want pod AS", nb.RemoteAS)
		}
	}
}

func TestGeneratedConfigsRenderAndParse(t *testing.T) {
	n := topo.GenerateClos(topo.SDC())
	cfgs := Generate(n)
	d := Dialect{Vendor: "ctnrb", Version: "1.0"}
	for name, c := range cfgs {
		text := Render(c, d)
		got, err := Parse(text, d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Hostname != c.Hostname || got.ASN != c.ASN || len(got.Neighbors) != len(c.Neighbors) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestValidateCatchesDanglingRefs(t *testing.T) {
	c := sampleConfig()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c.Clone()
	bad.Neighbors[0].ExportPolicy = "NOPE"
	if bad.Validate() == nil {
		t.Fatal("unknown route-map not caught")
	}
	bad2 := c.Clone()
	bad2.Bindings[0].ACLName = "NOPE"
	if bad2.Validate() == nil {
		t.Fatal("unknown ACL not caught")
	}
	bad3 := c.Clone()
	bad3.Interfaces = append(bad3.Interfaces, InterfaceConfig{Name: "et0"})
	if bad3.Validate() == nil {
		t.Fatal("duplicate interface not caught")
	}
	bad4 := c.Clone()
	bad4.Neighbors[0].Interface = "et99"
	if bad4.Validate() == nil {
		t.Fatal("unknown neighbor interface not caught")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := sampleConfig()
	d := c.Clone()
	d.Neighbors[0].RemoteAS = 1
	d.RouteMaps["GUARD"].Rules[0].Action = bgp.Permit
	d.ACLs["EDGE"].Rules[0].Action = dataplane.ACLPermit
	d.OSPF.Interfaces[0].Cost = 999
	if c.Neighbors[0].RemoteAS == 1 ||
		c.RouteMaps["GUARD"].Rules[0].Action == bgp.Permit ||
		c.ACLs["EDGE"].Rules[0].Action == dataplane.ACLPermit ||
		c.OSPF.Interfaces[0].Cost == 999 {
		t.Fatal("Clone shares state with original")
	}
}

func TestInterfaceLookup(t *testing.T) {
	c := sampleConfig()
	if c.Interface("et0") == nil || c.Interface("et9") != nil {
		t.Fatal("Interface lookup wrong")
	}
}

func assertEqualConfig(t *testing.T, want, got *DeviceConfig) {
	t.Helper()
	if got.Hostname != want.Hostname || got.ASN != want.ASN || got.RouterID != want.RouterID {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if got.Credential != want.Credential {
		t.Fatal("credential lost")
	}
	if len(got.Interfaces) != len(want.Interfaces) {
		t.Fatalf("interfaces = %d, want %d", len(got.Interfaces), len(want.Interfaces))
	}
	if got.Loopback != want.Loopback {
		t.Fatal("loopback mismatch")
	}
	for i := range want.Neighbors {
		if got.Neighbors[i] != want.Neighbors[i] {
			t.Fatalf("neighbor %d: %+v vs %+v", i, got.Neighbors[i], want.Neighbors[i])
		}
	}
	if len(got.Networks) != len(want.Networks) || got.Networks[1] != want.Networks[1] {
		t.Fatal("networks mismatch")
	}
	if len(got.Aggregates) != 1 || got.Aggregates[0] != want.Aggregates[0] {
		t.Fatal("aggregates mismatch")
	}
	if got.MaxPaths != want.MaxPaths {
		t.Fatal("max-paths mismatch")
	}
	gp, wp := got.RouteMaps["GUARD"], want.RouteMaps["GUARD"]
	if gp == nil || len(gp.Rules) != len(wp.Rules) || gp.DefaultAction != wp.DefaultAction {
		t.Fatalf("route-map mismatch: %+v", gp)
	}
	if gp.Rules[0].Match.PathContains != 65100 || *gp.Rules[1].SetLocalPref != 200 {
		t.Fatalf("route-map rules mismatch: %+v", gp.Rules)
	}
	ga, wa := got.ACLs["EDGE"], want.ACLs["EDGE"]
	if ga == nil || len(ga.Rules) != len(wa.Rules) || ga.DefaultAction != wa.DefaultAction {
		t.Fatal("ACL mismatch")
	}
	if *ga.Rules[0].Src != *wa.Rules[0].Src || *ga.Rules[0].Dst != *wa.Rules[0].Dst || ga.Rules[0].DstPort != 53 {
		t.Fatalf("ACL rule mismatch: %+v", ga.Rules[0])
	}
	if len(got.Bindings) != 1 || got.Bindings[0] != want.Bindings[0] {
		t.Fatal("bindings mismatch")
	}
	if got.OSPF == nil || got.OSPF.Interfaces[0] != want.OSPF.Interfaces[0] {
		t.Fatal("ospf mismatch")
	}
}

// TestParseNeverPanics fuzzes the parser with mangled config lines: the
// parser must return errors, never panic (operators feed it hand-edited
// files during incident mitigation).
func TestParseNeverPanics(t *testing.T) {
	d := Dialect{Vendor: "ctnrb", Version: "1.0"}
	base := strings.Split(Render(sampleConfig(), d), "\n")
	words := []string{"interface", "bgp", "acl", "route-map", "10.0.0.1",
		"10.0.0.0/8", "any", "permit", "deny", "match", "remote-as", "", "xyzzy", "-1", "4294967296"}
	f := func(lineIdx, wordIdx uint8, junk string) bool {
		lines := append([]string(nil), base...)
		i := int(lineIdx) % len(lines)
		fields := strings.Fields(lines[i])
		if len(fields) > 0 {
			fields[int(wordIdx)%len(fields)] = words[int(wordIdx)%len(words)] + junk
			lines[i] = strings.Join(fields, " ")
		}
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", lines[i], r)
			}
		}()
		Parse(strings.Join(lines, "\n"), d) // error or success both fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseTruncatedLines feeds every prefix of every rendered line.
func TestParseTruncatedLines(t *testing.T) {
	d := Dialect{Vendor: "vma", Version: "3.1"}
	text := Render(sampleConfig(), d)
	for _, line := range strings.Split(text, "\n") {
		for cut := 0; cut <= len(line); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic on %q: %v", line[:cut], r)
					}
				}()
				Parse(line[:cut], d)
			}()
		}
	}
}

// TestInterfaceAddressKeepsHostBits pins the round-trip of odd /31 ends:
// an interface address is not a route prefix and must not be masked.
func TestInterfaceAddressKeepsHostBits(t *testing.T) {
	d := Dialect{Vendor: "ctnrb", Version: "1.0"}
	got, err := Parse("interface et2 address 10.128.0.25/31", d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interfaces[0].Addr.Addr != netpkt.MustParseIP("10.128.0.25") {
		t.Fatalf("host bits masked: %v", got.Interfaces[0].Addr)
	}
	if _, err := Parse("interface et2 address 10.128.0.25", d); err == nil {
		t.Fatal("missing /len accepted")
	}
	if _, err := Parse("interface et2 address 10.128.0.25/99", d); err == nil {
		t.Fatal("bad length accepted")
	}
}

func BenchmarkRenderParse(b *testing.B) {
	c := sampleConfig()
	d := Dialect{Vendor: "ctnra", Version: "2.0"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(Render(c, d), d); err != nil {
			b.Fatal(err)
		}
	}
}
