// Package config models device configurations: the vendor-neutral
// configuration a device firmware consumes, the production-style generator
// that derives configs from topology (the paper's §2 notes devices are
// "initially configured automatically, using a configuration generator"),
// and per-vendor text dialects with render/parse round-trips.
//
// The dialect layer deliberately reproduces the §2 incident class where a
// vendor changed its ACL argument order between releases without
// documenting it, so configs written for the old firmware parse incorrectly
// on the new one.
//
// DESIGN.md §2 (substrates) and §4 cover the dialect-drift design decision.
package config

import (
	"fmt"

	"crystalnet/internal/bgp"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/topo"
)

// InterfaceConfig assigns an address to a named interface.
type InterfaceConfig struct {
	Name string
	Addr netpkt.Prefix
}

// BGPNeighbor is one configured eBGP session.
type BGPNeighbor struct {
	IP        netpkt.IP
	RemoteAS  uint32
	Interface string
	Desc      string
	// ImportPolicy/ExportPolicy name route-maps in the device config.
	ImportPolicy string
	ExportPolicy string
}

// Aggregate is an aggregate-address statement.
type Aggregate struct {
	Prefix      netpkt.Prefix
	SummaryOnly bool
}

// ACLDirection distinguishes ingress from egress bindings.
type ACLDirection uint8

// ACL binding directions.
const (
	In ACLDirection = iota
	Out
)

// ACLBinding applies a named ACL to an interface.
type ACLBinding struct {
	ACLName   string
	Interface string
	Direction ACLDirection
}

// OSPFIfaceConfig enables OSPF on an interface.
type OSPFIfaceConfig struct {
	Name      string
	Cost      uint16
	Priority  uint8
	Broadcast bool
}

// OSPFConfig is the device's OSPF section.
type OSPFConfig struct {
	Interfaces []OSPFIfaceConfig
}

// DeviceConfig is the vendor-neutral configuration of one device.
type DeviceConfig struct {
	Hostname string
	Vendor   string
	Version  string

	ASN      uint32
	RouterID netpkt.IP
	Loopback netpkt.Prefix

	Interfaces []InterfaceConfig
	Neighbors  []BGPNeighbor
	Networks   []netpkt.Prefix
	Aggregates []Aggregate
	MaxPaths   int

	RouteMaps map[string]*bgp.Policy
	ACLs      map[string]*dataplane.ACL
	Bindings  []ACLBinding

	OSPF *OSPFConfig

	// Credential is the unified SSH credential Prepare injects (§6.1).
	Credential string
}

// Clone returns a deep copy, so emulation Reload can mutate safely.
func (c *DeviceConfig) Clone() *DeviceConfig {
	d := *c
	d.Interfaces = append([]InterfaceConfig(nil), c.Interfaces...)
	d.Neighbors = append([]BGPNeighbor(nil), c.Neighbors...)
	d.Networks = append([]netpkt.Prefix(nil), c.Networks...)
	d.Aggregates = append([]Aggregate(nil), c.Aggregates...)
	d.Bindings = append([]ACLBinding(nil), c.Bindings...)
	d.RouteMaps = map[string]*bgp.Policy{}
	for k, v := range c.RouteMaps {
		pol := *v
		pol.Rules = append([]bgp.Rule(nil), v.Rules...)
		d.RouteMaps[k] = &pol
	}
	d.ACLs = map[string]*dataplane.ACL{}
	for k, v := range c.ACLs {
		acl := *v
		acl.Rules = append([]dataplane.ACLRule(nil), v.Rules...)
		d.ACLs[k] = &acl
	}
	if c.OSPF != nil {
		o := *c.OSPF
		o.Interfaces = append([]OSPFIfaceConfig(nil), c.OSPF.Interfaces...)
		d.OSPF = &o
	}
	return &d
}

// Interface returns the named interface config, or nil.
func (c *DeviceConfig) Interface(name string) *InterfaceConfig {
	for i := range c.Interfaces {
		if c.Interfaces[i].Name == name {
			return &c.Interfaces[i]
		}
	}
	return nil
}

// Validate performs the sanity checks the production generator applies:
// unique interface names, neighbors reachable through a configured
// interface subnet, referenced route-maps/ACLs defined.
func (c *DeviceConfig) Validate() error {
	seen := map[string]bool{}
	for _, i := range c.Interfaces {
		if seen[i.Name] {
			return fmt.Errorf("config %s: duplicate interface %s", c.Hostname, i.Name)
		}
		seen[i.Name] = true
	}
	for _, n := range c.Neighbors {
		if n.Interface != "" && !seen[n.Interface] {
			return fmt.Errorf("config %s: neighbor %s references unknown interface %s", c.Hostname, n.IP, n.Interface)
		}
		for _, pol := range []string{n.ImportPolicy, n.ExportPolicy} {
			if pol != "" && c.RouteMaps[pol] == nil {
				return fmt.Errorf("config %s: neighbor %s references unknown route-map %s", c.Hostname, n.IP, pol)
			}
		}
	}
	for _, b := range c.Bindings {
		if c.ACLs[b.ACLName] == nil {
			return fmt.Errorf("config %s: binding references unknown ACL %s", c.Hostname, b.ACLName)
		}
		if !seen[b.Interface] {
			return fmt.Errorf("config %s: ACL %s bound to unknown interface %s", c.Hostname, b.ACLName, b.Interface)
		}
	}
	return nil
}

// Generate derives production-style configs for every non-external device
// in the topology: interface addressing from the links, one eBGP session
// per fabric link, loopback + originated prefixes announced, ECMP enabled.
func Generate(n *topo.Network) map[string]*DeviceConfig {
	out := make(map[string]*DeviceConfig, n.NumDevices())
	for _, d := range n.Devices() {
		if d.Layer == topo.LayerExternal {
			continue
		}
		out[d.Name] = GenerateDevice(d)
	}
	return out
}

// GenerateDevice builds the config of a single device from its topology
// node.
func GenerateDevice(d *topo.Device) *DeviceConfig {
	c := &DeviceConfig{
		Hostname:  d.Name,
		Vendor:    d.Vendor,
		Version:   "1.0",
		ASN:       d.ASN,
		RouterID:  d.Loopback.Addr,
		Loopback:  d.Loopback,
		MaxPaths:  64,
		RouteMaps: map[string]*bgp.Policy{},
		ACLs:      map[string]*dataplane.ACL{},
	}
	c.Interfaces = append(c.Interfaces, InterfaceConfig{Name: "lo", Addr: d.Loopback})
	for _, intf := range d.Interfaces {
		if intf.Addr.Addr == 0 {
			continue
		}
		c.Interfaces = append(c.Interfaces, InterfaceConfig{Name: intf.Name, Addr: intf.Addr})
		if intf.Peer != nil {
			peer := intf.Peer.Device
			c.Neighbors = append(c.Neighbors, BGPNeighbor{
				IP:        intf.Peer.Addr.Addr,
				RemoteAS:  peer.ASN,
				Interface: intf.Name,
				Desc:      peer.Name,
			})
		}
	}
	c.Networks = append(c.Networks, d.Loopback)
	c.Networks = append(c.Networks, d.Originated...)
	return c
}
