// Package traffic is CrystalNet's flow-level user-load emulation: a
// deterministic, seeded traffic matrix of modeled flows driven through the
// emulated devices' real FIBs, with per-flow-class delivery, loss, latency
// and black-hole accounting re-settled at every convergence point.
//
// The paper's end goal is preventing *user-visible* outages (§2), but the
// control-plane emulator only answers "where would this packet go" one
// frame at a time. This package scales that answer to production-sized
// load the way Kollaps-style flow-level emulators do: flows are never
// simulated individually. The matrix aggregates them per (ingress device,
// src/dst prefix pair, class) and forwards whole aggregates through the
// data plane with dataplane.ForwardBatch — one LPM per (device, dst
// prefix) and an ECMP hash-bucket spread over the entry's hop group — so
// settling cost scales with distinct paths, not packets. A million flows
// between 96 ToR prefixes is ~9k aggregates and a few tens of thousands of
// trie lookups.
//
// Determinism contract (the same one chaos campaigns rely on): a settle
// draws no engine randomness — every split is a pure hash of (seed,
// aggregate identity, hop-group content) — and walks devices in sorted
// order, so reports are byte-identical across worker counts, shard counts
// and fork-vs-fresh, and attaching traffic never perturbs convergence
// event order. All matrix state is plain values, so Fork is a slice copy
// and forked rehearsals carry their load with them.
//
// DESIGN.md §11 is the full traffic-plane write-up; docs/TRAFFIC.md is the
// user-facing guide (flow model, SLO assert ops, metrics).
package traffic

import (
	"fmt"
	"sort"
	"time"

	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/sim"
)

// HopLatency is the modeled per-hop forwarding latency, in virtual time.
// The paper deliberately does not model data-plane performance; the
// constant exists so per-class latency histograms reflect *path length*
// changes (reroutes onto longer paths) rather than pretending to measure
// queueing.
const HopLatency = time.Millisecond

// DefaultMaxHops bounds a flow's walk; an aggregate still in flight after
// this many hops is looping and counts as blackholed.
const DefaultMaxHops = 32

// startTTL is the TTL the modeled flows carry; high enough that the
// MaxHops loop bound fires before TTL expiry under any sane MaxHops.
const startTTL = 255

// ClassSpec describes one traffic class: a named slice of the total flow
// count with a 5-tuple shape ACLs can match on.
type ClassSpec struct {
	Name string `json:"name"`
	// Share is the class's relative weight; flows are split proportionally.
	Share uint32 `json:"share"`
	// Proto defaults to TCP; DstPort defaults to 80.
	Proto   uint8  `json:"proto,omitempty"`
	DstPort uint16 `json:"dstPort,omitempty"`
}

// Spec declares a traffic matrix: how many modeled flows, in which
// classes, derived from which seed. The endpoint set is not declared —
// every emulated device that originates server prefixes is a source and a
// destination, all-to-all, which is the uniform east-west matrix the
// evaluation fabrics are built for.
type Spec struct {
	Flows   uint64      `json:"flows"`
	Classes []ClassSpec `json:"classes,omitempty"`
	// Seed perturbs flow placement and ECMP spreading. Zero inherits
	// whatever the caller resolves (scenario runs pass the run seed).
	Seed int64 `json:"seed,omitempty"`
	// MaxHops bounds each flow walk (default DefaultMaxHops).
	MaxHops int `json:"maxHops,omitempty"`
}

// Validate checks the spec's required fields.
func (s *Spec) Validate() error {
	if s.Flows == 0 {
		return fmt.Errorf("traffic: spec needs flows > 0")
	}
	if s.MaxHops < 0 {
		return fmt.Errorf("traffic: negative maxHops")
	}
	seen := map[string]bool{}
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Name == "" {
			return fmt.Errorf("traffic: class %d needs a name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("traffic: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Share == 0 {
			return fmt.Errorf("traffic: class %q needs share > 0", c.Name)
		}
	}
	return nil
}

// Clone deep-copies the spec (scenario campaign expansion clones specs
// before mutating them).
func (s *Spec) Clone() *Spec {
	if s == nil {
		return nil
	}
	c := *s
	c.Classes = append([]ClassSpec(nil), s.Classes...)
	return &c
}

// normalized returns a copy with defaults applied: a single best-effort
// class when none are declared, TCP/80 shapes, DefaultMaxHops.
func (s Spec) normalized() Spec {
	n := s
	n.Classes = append([]ClassSpec(nil), s.Classes...)
	if len(n.Classes) == 0 {
		n.Classes = []ClassSpec{{Name: "best-effort", Share: 1}}
	}
	for i := range n.Classes {
		if n.Classes[i].Proto == 0 {
			n.Classes[i].Proto = netpkt.ProtoTCP
		}
		if n.Classes[i].DstPort == 0 {
			n.Classes[i].DstPort = 80
		}
	}
	if n.MaxHops == 0 {
		n.MaxHops = DefaultMaxHops
	}
	return n
}

// View is the slice of an emulation a settle reads: the virtual clock, the
// metric recorder, and per-device forwarding engines and live configs. The
// core layer builds it; taking a narrow view instead of a *core.Emulation
// keeps the dependency pointing downward.
type View struct {
	Now sim.Time
	Rec *obs.Recorder
	// Forwarder returns a device's live forwarding engine, nil when the
	// device is stopped/crashed (its flows blackhole).
	Forwarder func(name string) *dataplane.Forwarder
	// Configs are the live per-device configurations: delivery is "the
	// device's Networks contain the destination", the same convention the
	// batfish walker uses, and interface addresses resolve next hops.
	Configs map[string]*config.DeviceConfig
}

// aggregate is one (ingress device, prefix pair, class) bundle of flows —
// the unit of batched forwarding. All fields are plain values so Fork is a
// slice copy.
type aggregate struct {
	src          string
	class        int
	srcIP, dstIP netpkt.IP
	flows        uint64
	key          uint64 // seeded identity; anchors ECMP spreading

	// Last-settle results.
	delivered, blackholed, lost uint64
	hopSum                      uint64 // Σ path-hops weighted by delivered flows
	fp                          uint64 // path fingerprint; a change means rerouted
	blackSince                  sim.Time
}

// Matrix is an attached traffic load: the aggregates plus cumulative
// accounting across settles. It is mutated only by Settle, which the core
// layer calls at each convergence point, single-threaded.
type Matrix struct {
	spec      Spec // normalized
	aggs      []aggregate
	settles   uint64
	settledAt sim.Time
	rerouted  []uint64 // cumulative flows rerouted, per class
}

// endpoint is one originated server prefix, represented by a host inside it.
type endpoint struct {
	dev  string
	host netpkt.IP
}

// NewMatrix builds the aggregate set from the spec against the emulation's
// configurations: every device originating server prefixes (Networks
// beyond the loopback) is an endpoint, flows are spread all-to-all with
// seeded remainder placement. The matrix is empty of results until the
// first Settle.
func NewMatrix(spec Spec, configs map[string]*config.DeviceConfig) (*Matrix, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sp := spec.normalized()

	names := make([]string, 0, len(configs))
	for n := range configs {
		names = append(names, n)
	}
	sort.Strings(names)
	var eps []endpoint
	for _, n := range names {
		cfg := configs[n]
		for _, p := range cfg.Networks {
			if p == cfg.Loopback {
				continue
			}
			host := p.Addr
			if p.Len < 31 {
				host++ // subnet base is not a host on broadcast subnets
			}
			eps = append(eps, endpoint{dev: n, host: host})
		}
	}
	if len(eps) < 2 {
		return nil, fmt.Errorf("traffic: %d endpoint prefix(es) originated; need at least 2", len(eps))
	}
	type pair struct{ src, dst int }
	var pairs []pair
	for i := range eps {
		for j := range eps {
			if eps[i].dev != eps[j].dev {
				pairs = append(pairs, pair{i, j})
			}
		}
	}

	// Split the flow budget across classes by share, remainder to the
	// earliest classes — exact and deterministic.
	var totalShare uint64
	for _, c := range sp.Classes {
		totalShare += uint64(c.Share)
	}
	classFlows := make([]uint64, len(sp.Classes))
	var assigned uint64
	for i, c := range sp.Classes {
		classFlows[i] = sp.Flows * uint64(c.Share) / totalShare
		assigned += classFlows[i]
	}
	for i := 0; assigned < sp.Flows; i++ {
		classFlows[i%len(classFlows)]++
		assigned++
	}

	m := &Matrix{spec: sp, rerouted: make([]uint64, len(sp.Classes))}
	nPairs := uint64(len(pairs))
	for ci, c := range sp.Classes {
		base, rem := classFlows[ci]/nPairs, classFlows[ci]%nPairs
		// The remainder lands on a seeded rotation of pairs, so different
		// seeds load different pairs unevenly — the controlled randomness.
		start := splitmix(uint64(sp.Seed)^fnvStr(fnvOffset, c.Name)) % nPairs
		for pi, p := range pairs {
			n := base
			if rem > 0 && inRotation(uint64(pi), start, rem, nPairs) {
				n++
			}
			if n == 0 {
				continue
			}
			src, dst := eps[p.src], eps[p.dst]
			id := fnvStr(fnvOffset, src.dev)
			id = fnvU64(id, uint64(src.host))
			id = fnvU64(id, uint64(dst.host))
			id = fnvStr(id, c.Name)
			m.aggs = append(m.aggs, aggregate{
				src:   src.dev,
				class: ci,
				srcIP: src.host,
				dstIP: dst.host,
				flows: n,
				key:   splitmix(uint64(sp.Seed) ^ id),
			})
		}
	}
	return m, nil
}

// inRotation reports whether index i falls in the length-rem window
// starting at start, modulo n.
func inRotation(i, start, rem, n uint64) bool {
	d := (i - start + n) % n
	return d < rem
}

// Fork deep-copies the matrix for a forked emulation. Nil-safe: a parent
// without traffic forks to a child without traffic.
func (m *Matrix) Fork() *Matrix {
	if m == nil {
		return nil
	}
	c := *m
	c.spec.Classes = append([]ClassSpec(nil), m.spec.Classes...)
	c.aggs = append([]aggregate(nil), m.aggs...)
	c.rerouted = append([]uint64(nil), m.rerouted...)
	return &c
}

// Flows returns the total modeled flow count.
func (m *Matrix) Flows() uint64 {
	if m == nil {
		return 0
	}
	var n uint64
	for i := range m.aggs {
		n += m.aggs[i].flows
	}
	return n
}

// Settles returns how many convergence points the matrix has been settled
// at.
func (m *Matrix) Settles() uint64 {
	if m == nil {
		return 0
	}
	return m.settles
}

// Aggregates returns the number of (ingress, prefix pair, class) bundles —
// the unit settling cost actually scales with.
func (m *Matrix) Aggregates() int {
	if m == nil {
		return 0
	}
	return len(m.aggs)
}

// ownerRef locates the device interface owning an address.
type ownerRef struct{ dev, iface string }

// nodeKey addresses one step of a flow walk: a device plus the ingress
// interface the flows arrived on (ingress ACLs bind per interface).
type nodeKey struct{ dev, iface string }

// Settle re-walks every aggregate through the current FIBs, updating
// delivery/black-hole/loss accounting, reroute fingerprints and the
// traffic.* metrics. Call at quiescence; it schedules no events and draws
// no randomness, so it is checkpoint-safe and invisible to convergence.
func (m *Matrix) Settle(v View) {
	if m == nil {
		return
	}
	owners := make(map[netpkt.IP]ownerRef)
	names := make([]string, 0, len(v.Configs))
	for n := range v.Configs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, ic := range v.Configs[n].Interfaces {
			if ic.Addr.Addr != 0 {
				owners[ic.Addr.Addr] = ownerRef{dev: n, iface: ic.Name}
			}
		}
	}

	reroutedNow := make([]uint64, len(m.spec.Classes))
	hists := make([]*obs.Histogram, len(m.spec.Classes))
	if v.Rec != nil {
		for ci, c := range m.spec.Classes {
			hists[ci] = v.Rec.Histogram("traffic.flow_latency", c.Name)
		}
	}
	for i := range m.aggs {
		a := &m.aggs[i]
		prevFP, prevSettled := a.fp, m.settles > 0
		m.walk(a, v, owners, hists[a.class])
		if prevSettled && a.fp != prevFP {
			reroutedNow[a.class] += a.flows
		}
		if a.blackholed > 0 {
			if a.blackSince == 0 {
				a.blackSince = v.Now
			}
		} else {
			a.blackSince = 0
		}
	}
	m.settles++
	m.settledAt = v.Now

	if v.Rec != nil {
		totals := make([]struct{ delivered, blackholed, lost uint64 }, len(m.spec.Classes))
		for i := range m.aggs {
			a := &m.aggs[i]
			totals[a.class].delivered += a.delivered
			totals[a.class].blackholed += a.blackholed
			totals[a.class].lost += a.lost
		}
		for ci, c := range m.spec.Classes {
			v.Rec.Gauge("traffic.flows_active", c.Name).Set(float64(totals[ci].delivered))
			v.Rec.Gauge("traffic.flows_blackholed", c.Name).Set(float64(totals[ci].blackholed))
			v.Rec.Gauge("traffic.flows_lost", c.Name).Set(float64(totals[ci].lost))
			v.Rec.Counter("traffic.flows_rerouted", c.Name).Add(reroutedNow[ci])
		}
	}
	for ci, n := range reroutedNow {
		m.rerouted[ci] += n
	}
}

// walk drives one aggregate's flows hop by hop through the live FIBs,
// filling the aggregate's last-settle results. The frontier is a set of
// (device, ingress interface) → flow-count buckets; each hop forwards
// every bucket with one batched decision. The fingerprint hashes every
// decision the walk observes, so any path change — different hops,
// different split, new loss point — changes it.
func (m *Matrix) walk(a *aggregate, v View, owners map[netpkt.IP]ownerRef, hist *obs.Histogram) {
	cls := &m.spec.Classes[a.class]
	a.delivered, a.blackholed, a.lost, a.hopSum = 0, 0, 0, 0
	fp := fnvOffset

	frontier := map[nodeKey]uint64{{dev: a.src}: a.flows}
	keys := make([]nodeKey, 0, 4)
	for hop := 0; hop <= m.spec.MaxHops && len(frontier) > 0; hop++ {
		keys = keys[:0]
		for k := range frontier {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].dev != keys[j].dev {
				return keys[i].dev < keys[j].dev
			}
			return keys[i].iface < keys[j].iface
		})
		next := make(map[nodeKey]uint64, len(frontier))
		for _, k := range keys {
			n := frontier[k]
			fp = fnvStr(fp, k.dev)
			fp = fnvStr(fp, k.iface)
			fp = fnvU64(fp, n)
			fwd := v.Forwarder(k.dev)
			if fwd == nil {
				a.blackholed += n
				fp = fnvU64(fp, 'X')
				continue
			}
			meta := dataplane.PacketMeta{
				Src: a.srcIP, Dst: a.dstIP,
				Proto: cls.Proto, SrcPort: 33434, DstPort: cls.DstPort,
				TTL: uint8(startTTL - hop),
			}
			// Ingress ACLs bind ahead of delivery in the Forward prologue;
			// mirror that before the destination short-circuit below.
			if name, denied := fwd.DeniesIngress(k.iface, &meta); denied {
				a.lost += n
				fp = fnvStr(fp, name)
				fp = fnvU64(fp, 'A')
				continue
			}
			if cfg := v.Configs[k.dev]; cfg != nil && containsHost(cfg.Networks, cfg.Loopback, a.dstIP) {
				a.delivered += n
				a.hopSum += uint64(hop) * n
				fp = fnvU64(fp, 'D')
				hist.ObserveN(float64(hop)*HopLatency.Seconds(), n)
				continue
			}
			dec, shares := fwd.ForwardBatch(k.iface, &meta, n, a.key)
			fp = fnvU64(fp, uint64(dec.Verdict))
			switch dec.Verdict {
			case dataplane.VerdictLocal:
				a.delivered += n
				a.hopSum += uint64(hop) * n
				hist.ObserveN(float64(hop)*HopLatency.Seconds(), n)
			case dataplane.VerdictNoRoute:
				a.blackholed += n
			case dataplane.VerdictACLDenied, dataplane.VerdictTTLExpired:
				a.lost += n
			case dataplane.VerdictForward:
				for _, s := range shares {
					fp = fnvU64(fp, uint64(s.Hop.IP))
					fp = fnvStr(fp, s.Hop.Interface)
					fp = fnvU64(fp, s.Flows)
					if s.Denied {
						a.lost += s.Flows
						fp = fnvStr(fp, s.ACL)
						continue
					}
					if s.Hop.IP == 0 {
						// Connected route: the destination subnet is on-link.
						// An emulated device owning the address picks the
						// flows up; otherwise they reach a server — delivered.
						if o, ok := owners[a.dstIP]; ok {
							next[nodeKey{dev: o.dev, iface: o.iface}] += s.Flows
						} else {
							a.delivered += s.Flows
							a.hopSum += uint64(hop+1) * s.Flows
							hist.ObserveN(float64(hop+1)*HopLatency.Seconds(), s.Flows)
						}
						continue
					}
					o, ok := owners[s.Hop.IP]
					if !ok {
						a.blackholed += s.Flows
						continue
					}
					next[nodeKey{dev: o.dev, iface: o.iface}] += s.Flows
				}
			}
		}
		frontier = next
	}
	// Flows still in flight hit the hop bound: a forwarding loop.
	for _, n := range frontier {
		a.blackholed += n
		fp = fnvU64(fp, 'L')
	}
	a.fp = fp
}

// containsHost reports whether ip falls in any non-loopback network.
func containsHost(nets []netpkt.Prefix, loopback netpkt.Prefix, ip netpkt.IP) bool {
	for _, p := range nets {
		if p == loopback {
			continue
		}
		if p.Contains(ip) {
			return true
		}
	}
	return false
}

// SLO is a point-in-time service-level summary of the matrix.
type SLO struct {
	// BlackholedPct is the percentage of flows blackholed — continuously
	// for at least the requested window when one was given.
	BlackholedPct float64 `json:"blackholedPct"`
	// LostPct is the percentage of flows dropped by ACLs or TTL expiry at
	// the last settle.
	LostPct float64 `json:"lostPct"`
}

// SLO evaluates the matrix against a black-hole persistence window: with
// window zero every currently-blackholed flow counts; with a positive
// window only flows blackholed continuously for at least that long do, so
// transient convergence black-holes are tolerated and persistent ones are
// not — the assert-flow-slo semantics.
func (m *Matrix) SLO(window time.Duration) SLO {
	if m == nil {
		return SLO{}
	}
	var total, black, lost uint64
	for i := range m.aggs {
		a := &m.aggs[i]
		total += a.flows
		lost += a.lost
		if a.blackholed == 0 {
			continue
		}
		if window <= 0 || (a.blackSince != 0 && m.settledAt.Sub(a.blackSince) >= window) {
			black += a.blackholed
		}
	}
	if total == 0 {
		return SLO{}
	}
	return SLO{
		BlackholedPct: 100 * float64(black) / float64(total),
		LostPct:       100 * float64(lost) / float64(total),
	}
}

// ClassReport is one class's cumulative accounting at the last settle.
type ClassReport struct {
	Class         string  `json:"class"`
	Flows         uint64  `json:"flows"`
	Delivered     uint64  `json:"delivered"`
	Blackholed    uint64  `json:"blackholed"`
	Lost          uint64  `json:"lost"`
	Rerouted      uint64  `json:"rerouted"`
	AvgPathHops   float64 `json:"avgPathHops"`
	BlackholedPct float64 `json:"blackholedPct"`
	LostPct       float64 `json:"lostPct"`
}

// Report is the per-class traffic summary embedded in scenario reports and
// the rehearsal JSON. It is fully determined by (spec, seed, emulation
// history): identically-seeded runs produce byte-identical JSON.
type Report struct {
	Flows      uint64        `json:"flows"`
	Aggregates int           `json:"aggregates"`
	Settles    uint64        `json:"settles"`
	Classes    []ClassReport `json:"classes"`
}

// Report summarizes the matrix at its last settle.
func (m *Matrix) Report() *Report {
	if m == nil {
		return nil
	}
	r := &Report{Flows: m.Flows(), Aggregates: len(m.aggs), Settles: m.settles}
	type tot struct{ flows, delivered, blackholed, lost, hopSum uint64 }
	totals := make([]tot, len(m.spec.Classes))
	for i := range m.aggs {
		a := &m.aggs[i]
		t := &totals[a.class]
		t.flows += a.flows
		t.delivered += a.delivered
		t.blackholed += a.blackholed
		t.lost += a.lost
		t.hopSum += a.hopSum
	}
	for ci, c := range m.spec.Classes {
		t := totals[ci]
		cr := ClassReport{
			Class: c.Name, Flows: t.flows,
			Delivered: t.delivered, Blackholed: t.blackholed, Lost: t.lost,
			Rerouted: m.rerouted[ci],
		}
		if t.delivered > 0 {
			cr.AvgPathHops = float64(t.hopSum) / float64(t.delivered)
		}
		if t.flows > 0 {
			cr.BlackholedPct = 100 * float64(t.blackholed) / float64(t.flows)
			cr.LostPct = 100 * float64(t.lost) / float64(t.flows)
		}
		r.Classes = append(r.Classes, cr)
	}
	return r
}

// FNV-1a, inlined to keep the hot settle path allocation-free.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvStr(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func fnvU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// splitmix is the splitmix64 finalizer — the pure seeded mixer every
// placement and spreading decision derives from instead of engine RNG.
func splitmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
