package traffic

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }
func ip(s string) netpkt.IP      { return netpkt.MustParseIP(s) }

// twoNode builds a hand-wired two-device line: a <-> b over 10.128.0.0/31,
// a originating 100.64.0.0/24 and b originating 100.65.0.0/24.
func twoNode(t *testing.T) (map[string]*config.DeviceConfig, map[string]*dataplane.Forwarder) {
	t.Helper()
	cfgs := map[string]*config.DeviceConfig{
		"a": {
			Hostname: "a", Loopback: pfx("10.255.0.1/32"),
			Networks:   []netpkt.Prefix{pfx("10.255.0.1/32"), pfx("100.64.0.0/24")},
			Interfaces: []config.InterfaceConfig{{Name: "et0", Addr: netpkt.Prefix{Addr: ip("10.128.0.0"), Len: 31}}},
		},
		"b": {
			Hostname: "b", Loopback: pfx("10.255.0.2/32"),
			Networks:   []netpkt.Prefix{pfx("10.255.0.2/32"), pfx("100.65.0.0/24")},
			Interfaces: []config.InterfaceConfig{{Name: "et0", Addr: netpkt.Prefix{Addr: ip("10.128.0.1"), Len: 31}}},
		},
	}
	mkFwd := func(dst netpkt.Prefix, via netpkt.IP) *dataplane.Forwarder {
		fib := rib.NewFIB()
		if err := fib.Install(&rib.Entry{
			Prefix: dst, Proto: rib.ProtoBGP,
			NextHops: []rib.NextHop{{IP: via, Interface: "et0"}},
		}); err != nil {
			t.Fatal(err)
		}
		return dataplane.NewForwarder(fib, 1)
	}
	fwds := map[string]*dataplane.Forwarder{
		"a": mkFwd(pfx("100.65.0.0/24"), ip("10.128.0.1")),
		"b": mkFwd(pfx("100.64.0.0/24"), ip("10.128.0.0")),
	}
	return cfgs, fwds
}

func view(cfgs map[string]*config.DeviceConfig, fwds map[string]*dataplane.Forwarder, now sim.Time) View {
	return View{
		Now:       now,
		Forwarder: func(name string) *dataplane.Forwarder { return fwds[name] },
		Configs:   cfgs,
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"zero flows", Spec{}, false},
		{"plain", Spec{Flows: 10}, true},
		{"unnamed class", Spec{Flows: 10, Classes: []ClassSpec{{Share: 1}}}, false},
		{"zero share", Spec{Flows: 10, Classes: []ClassSpec{{Name: "x"}}}, false},
		{"dup class", Spec{Flows: 10, Classes: []ClassSpec{{Name: "x", Share: 1}, {Name: "x", Share: 2}}}, false},
		{"two classes", Spec{Flows: 10, Classes: []ClassSpec{{Name: "x", Share: 1}, {Name: "y", Share: 3}}}, true},
	} {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewMatrixConservesFlows(t *testing.T) {
	cfgs, _ := twoNode(t)
	spec := Spec{Flows: 1001, Classes: []ClassSpec{
		{Name: "web", Share: 3}, {Name: "bulk", Share: 1},
	}, Seed: 9}
	m, err := NewMatrix(spec, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flows() != 1001 {
		t.Fatalf("Flows() = %d, want 1001 (exact conservation incl. remainders)", m.Flows())
	}
	if m.Aggregates() == 0 || m.Aggregates() > 4 {
		t.Fatalf("Aggregates() = %d, want 1..4 (2 pairs x 2 classes)", m.Aggregates())
	}
}

func TestNewMatrixNeedsTwoEndpoints(t *testing.T) {
	cfgs, _ := twoNode(t)
	delete(cfgs, "b")
	if _, err := NewMatrix(Spec{Flows: 10}, cfgs); err == nil {
		t.Fatal("matrix built with a single endpoint device")
	}
}

func TestSettleDeliversOnHealthyPath(t *testing.T) {
	cfgs, fwds := twoNode(t)
	m, err := NewMatrix(Spec{Flows: 1000, Seed: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	m.Settle(view(cfgs, fwds, sim.Time(time.Second)))
	rep := m.Report()
	if len(rep.Classes) != 1 || rep.Classes[0].Class != "best-effort" {
		t.Fatalf("classes = %+v", rep.Classes)
	}
	c := rep.Classes[0]
	if c.Delivered != 1000 || c.Blackholed != 0 || c.Lost != 0 {
		t.Fatalf("accounting = %+v, want all 1000 delivered", c)
	}
	if c.AvgPathHops != 1 {
		t.Fatalf("avg path hops = %v, want 1 (one inter-device hop)", c.AvgPathHops)
	}
	if slo := m.SLO(0); slo.BlackholedPct != 0 || slo.LostPct != 0 {
		t.Fatalf("SLO = %+v", slo)
	}
}

func TestSettleBlackholesCrashedDevice(t *testing.T) {
	cfgs, fwds := twoNode(t)
	m, err := NewMatrix(Spec{Flows: 1000, Seed: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	m.Settle(view(cfgs, fwds, sim.Time(time.Second)))

	// Crash b: its own flows and the a->b half both blackhole.
	dead := map[string]*dataplane.Forwarder{"a": fwds["a"]}
	m.Settle(view(cfgs, dead, sim.Time(2*time.Second)))
	c := m.Report().Classes[0]
	if c.Blackholed != 1000 || c.Delivered != 0 {
		t.Fatalf("accounting = %+v, want all 1000 blackholed", c)
	}
	// Window semantics: the black-hole just appeared, so a 2s window
	// filters it; after persisting 2s it counts.
	if slo := m.SLO(2 * time.Second); slo.BlackholedPct != 0 {
		t.Fatalf("fresh blackhole leaked through window: %+v", slo)
	}
	if slo := m.SLO(0); slo.BlackholedPct != 100 {
		t.Fatalf("window 0 should see everything: %+v", slo)
	}
	m.Settle(view(cfgs, dead, sim.Time(4*time.Second)))
	if slo := m.SLO(2 * time.Second); slo.BlackholedPct != 100 {
		t.Fatalf("persistent blackhole not counted after window: %+v", slo)
	}

	// Recovery clears blackSince: a fresh crash starts a new window.
	m.Settle(view(cfgs, fwds, sim.Time(5*time.Second)))
	m.Settle(view(cfgs, dead, sim.Time(6*time.Second)))
	if slo := m.SLO(2 * time.Second); slo.BlackholedPct != 0 {
		t.Fatalf("blackSince not reset by recovery: %+v", slo)
	}
}

func TestSettleCountsACLLoss(t *testing.T) {
	cfgs, fwds := twoNode(t)
	m, err := NewMatrix(Spec{Flows: 1000, Seed: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	src := pfx("100.64.0.0/24")
	fwds["b"].SetInACL("et0", &dataplane.ACL{
		Name:          "GUARD",
		Rules:         []dataplane.ACLRule{{Action: dataplane.ACLDeny, Src: &src}},
		DefaultAction: dataplane.ACLPermit,
	})
	m.Settle(view(cfgs, fwds, sim.Time(time.Second)))
	c := m.Report().Classes[0]
	// The a->b half (sourced from 100.64.0.0/24) is denied at b's ingress;
	// the b->a half still delivers.
	if c.Lost == 0 || c.Lost+c.Delivered != 1000 || c.Blackholed != 0 {
		t.Fatalf("accounting = %+v, want lost+delivered=1000 with lost>0", c)
	}
	if slo := m.SLO(0); slo.LostPct == 0 {
		t.Fatalf("SLO = %+v, want lost flows visible", slo)
	}
}

func TestReroutedCountsFingerprintChanges(t *testing.T) {
	cfgs, fwds := twoNode(t)
	m, err := NewMatrix(Spec{Flows: 100, Seed: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	m.Settle(view(cfgs, fwds, sim.Time(time.Second)))
	if r := m.Report().Classes[0].Rerouted; r != 0 {
		t.Fatalf("first settle counted %d rerouted flows", r)
	}
	dead := map[string]*dataplane.Forwarder{"a": fwds["a"]}
	m.Settle(view(cfgs, dead, sim.Time(2*time.Second)))
	if r := m.Report().Classes[0].Rerouted; r == 0 {
		t.Fatal("path change did not count as reroute")
	}
	// A settle with no change adds nothing.
	before := m.Report().Classes[0].Rerouted
	m.Settle(view(cfgs, dead, sim.Time(3*time.Second)))
	if r := m.Report().Classes[0].Rerouted; r != before {
		t.Fatalf("stable settle changed rerouted %d -> %d", before, r)
	}
}

func TestReportsAreSeedDeterministic(t *testing.T) {
	cfgs, fwds := twoNode(t)
	run := func() []byte {
		m, err := NewMatrix(Spec{Flows: 12345, Seed: 77, Classes: []ClassSpec{
			{Name: "web", Share: 7}, {Name: "bulk", Share: 2},
		}}, cfgs)
		if err != nil {
			t.Fatal(err)
		}
		m.Settle(view(cfgs, fwds, sim.Time(time.Second)))
		b, err := json.Marshal(m.Report())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n%s", a, b)
	}
}

func TestForkIsIndependent(t *testing.T) {
	cfgs, fwds := twoNode(t)
	m, err := NewMatrix(Spec{Flows: 1000, Seed: 4}, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	m.Settle(view(cfgs, fwds, sim.Time(time.Second)))
	child := m.Fork()

	// Diverge the child: crash b there only.
	dead := map[string]*dataplane.Forwarder{"a": fwds["a"]}
	child.Settle(view(cfgs, dead, sim.Time(2*time.Second)))
	if got := child.Report().Classes[0].Blackholed; got != 1000 {
		t.Fatalf("child blackholed = %d", got)
	}
	if got := m.Report().Classes[0].Blackholed; got != 0 {
		t.Fatalf("child settle leaked into parent: %d blackholed", got)
	}
	if m.Settles() != 1 || child.Settles() != 2 {
		t.Fatalf("settles parent=%d child=%d", m.Settles(), child.Settles())
	}

	var nilM *Matrix
	if nilM.Fork() != nil || nilM.Report() != nil || nilM.Flows() != 0 {
		t.Fatal("nil matrix accessors must be nil-safe")
	}
}
