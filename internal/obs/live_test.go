package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestNilLiveIsNoOp(t *testing.T) {
	var l *Live
	c := l.Counter("x", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter counted")
	}
	g := l.Gauge("y", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge stored")
	}
	h := l.Histogram("z", "")
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram observed")
	}
	if err := l.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestLiveHandlesAreStable(t *testing.T) {
	l := NewLive()
	if l.Counter("a", "x") != l.Counter("a", "x") {
		t.Fatal("same key vended distinct counters")
	}
	if l.Counter("a", "x") == l.Counter("a", "y") {
		t.Fatal("distinct labels shared a counter")
	}
	if l.Gauge("g", "") != l.Gauge("g", "") {
		t.Fatal("same key vended distinct gauges")
	}
	if l.Histogram("h", "") != l.Histogram("h", "") {
		t.Fatal("same key vended distinct histograms")
	}
}

func TestLiveConcurrentUpdates(t *testing.T) {
	l := NewLive()
	c := l.Counter("reqs", "")
	h := l.Histogram("lat", "")
	g := l.Gauge("inflight", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %g, want 0", g.Value())
	}
}

func TestLiveQuantile(t *testing.T) {
	l := NewLive()
	h := l.Histogram("lat", "")
	// 100 observations spread across two buckets: 50 at 2ms, 50 at 100ms.
	for i := 0; i < 50; i++ {
		h.Observe(0.002)
		h.Observe(0.100)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0 || p50 > 0.004 {
		t.Fatalf("p50 = %g, want in (0, 0.004] (the 2ms bucket)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 0.064 || p99 > 0.100 {
		t.Fatalf("p99 = %g, want within [0.064, 0.100] (the 100ms bucket, clamped to max)", p99)
	}
	if got := h.Quantile(1.0); got != 0.100 {
		t.Fatalf("p100 = %g, want max 0.1", got)
	}
}

func TestWritePromFormat(t *testing.T) {
	l := NewLive()
	l.Counter("http.requests", "/v1/rehearse").Add(3)
	l.Gauge("pool.size", "").Set(2)
	l.Histogram("http.latency", "/v1/rehearse").Observe(0.5)
	var sb strings.Builder
	if err := l.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE http_requests counter",
		`http_requests{label="/v1/rehearse"} 3`,
		"# TYPE pool_size gauge",
		"pool_size 2",
		"# TYPE http_latency histogram",
		`http_latency_bucket{label="/v1/rehearse",le="+Inf"} 1`,
		`http_latency_count{label="/v1/rehearse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestMiddlewareRecords(t *testing.T) {
	l := NewLive()
	h := l.Middleware("/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	ok := l.Middleware("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hi")) // implicit 200
	}))
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	}
	rec := httptest.NewRecorder()
	ok.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))

	if got := l.Counter("http.requests", "/boom").Value(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := l.Counter("http.errors", "/boom").Value(); got != 3 {
		t.Fatalf("errors = %d, want 3", got)
	}
	if got := l.Counter("http.errors", "/ok").Value(); got != 0 {
		t.Fatalf("ok errors = %d, want 0", got)
	}
	if got := l.Histogram("http.latency", "/ok").Count(); got != 1 {
		t.Fatalf("latency count = %d, want 1", got)
	}
	if got := l.Gauge("http.in_flight", "/ok").Value(); got != 0 {
		t.Fatalf("in-flight = %g, want 0", got)
	}
}

func TestNilMiddlewarePassesThrough(t *testing.T) {
	var l *Live
	h := l.Middleware("/x", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d, want 418", rec.Code)
	}
}
