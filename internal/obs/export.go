package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Exporters. All three outputs are deterministic: spans and events are
// emitted in their (deterministic) record order, metrics are sorted by
// (name, label), and maps never reach the encoder unsorted — so two
// same-seed runs produce byte-identical files.

type counterJSON struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Value uint64 `json:"value"`
}

type gaugeJSON struct {
	Name  string  `json:"name"`
	Label string  `json:"label,omitempty"`
	Value float64 `json:"value"`
}

type histBucketJSON struct {
	LE string `json:"le"`
	N  uint64 `json:"n"`
}

type histJSON struct {
	Name    string           `json:"name"`
	Label   string           `json:"label,omitempty"`
	Count   uint64           `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Buckets []histBucketJSON `json:"buckets"`
}

type traceJSON struct {
	Spans      []SpanData    `json:"spans"`
	Events     []EventData   `json:"events,omitempty"`
	Counters   []counterJSON `json:"counters,omitempty"`
	Gauges     []gaugeJSON   `json:"gauges,omitempty"`
	Histograms []histJSON    `json:"histograms,omitempty"`
}

func (r *Recorder) sortedCounters() []*Counter {
	cs := append([]*Counter(nil), r.counters...)
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Name != cs[j].Name {
			return cs[i].Name < cs[j].Name
		}
		return cs[i].Label < cs[j].Label
	})
	return cs
}

func (r *Recorder) sortedGauges() []*Gauge {
	gs := append([]*Gauge(nil), r.gauges...)
	sort.Slice(gs, func(i, j int) bool {
		if gs[i].Name != gs[j].Name {
			return gs[i].Name < gs[j].Name
		}
		return gs[i].Label < gs[j].Label
	})
	return gs
}

func (r *Recorder) sortedHists() []*Histogram {
	hs := append([]*Histogram(nil), r.hists...)
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].Name != hs[j].Name {
			return hs[i].Name < hs[j].Name
		}
		return hs[i].Label < hs[j].Label
	})
	return hs
}

// WriteJSON writes the native trace file: spans and events in record
// order, metrics sorted by (name, label). Schema documented in
// docs/OBSERVABILITY.md.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{\"spans\":[]}\n")
		return err
	}
	out := traceJSON{Spans: r.spans, Events: r.events}
	if out.Spans == nil {
		out.Spans = []SpanData{}
	}
	for _, c := range r.sortedCounters() {
		out.Counters = append(out.Counters, counterJSON{c.Name, c.Label, c.n})
	}
	for _, g := range r.sortedGauges() {
		out.Gauges = append(out.Gauges, gaugeJSON{g.Name, g.Label, g.v})
	}
	for _, h := range r.sortedHists() {
		hj := histJSON{Name: h.Name, Label: h.Label, Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		for i, n := range h.bucket {
			le := "+Inf"
			if i < len(h.bounds) {
				le = fmt.Sprintf("%g", h.bounds[i])
			}
			hj.Buckets = append(hj.Buckets, histBucketJSON{le, n})
		}
		out.Histograms = append(out.Histograms, hj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Part names one recorder inside a merged Chrome trace; each part becomes
// a Perfetto "process" so multi-run campaigns view side by side.
type Part struct {
	Name string
	Rec  *Recorder
}

type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes this recorder as a Chrome trace_event file that
// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (r *Recorder) WriteChrome(w io.Writer) error {
	return WriteChrome(w, Part{Name: "run", Rec: r})
}

// WriteChrome merges one or more recorders into a single Chrome
// trace_event file: each part is a process (pid = position, in order),
// each track within it a named thread. Timestamps are virtual
// microseconds. Nil recorders contribute only their process banner, so a
// campaign with tracing half-enabled still lines pids up with run order.
func WriteChrome(w io.Writer, parts ...Part) error {
	out := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for pi, part := range parts {
		pid := pi + 1
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": part.Name},
		})
		r := part.Rec
		if r == nil {
			continue
		}
		// Tracks map to tids in sorted-name order so the mapping does not
		// depend on which track happened to record first.
		trackSet := map[string]bool{}
		for i := range r.spans {
			trackSet[r.spans[i].Track] = true
		}
		for i := range r.events {
			trackSet[r.events[i].Track] = true
		}
		tracks := make([]string, 0, len(trackSet))
		for t := range trackSet {
			tracks = append(tracks, t)
		}
		sort.Strings(tracks)
		tid := map[string]int{}
		for i, t := range tracks {
			tid[t] = i + 1
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: i + 1,
				Args: map[string]string{"name": t},
			})
		}
		for i := range r.spans {
			sp := &r.spans[i]
			dur := float64(sp.End-sp.Start) / 1e3
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: sp.Track, Ph: "X",
				TS: float64(sp.Start) / 1e3, Dur: &dur,
				PID: pid, TID: tid[sp.Track], Args: attrMap(sp.Attrs),
			})
		}
		for i := range r.events {
			ev := &r.events[i]
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ev.Name, Cat: ev.Track, Ph: "i",
				TS: float64(ev.At) / 1e3, S: "t",
				PID: pid, TID: tid[ev.Track], Args: attrMap(ev.Attrs),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.K] = a.V
	}
	return m
}

// Summary renders a human-readable rollup: the phase timeline, per-track
// span statistics with the slowest instances, counter totals grouped by
// series name, and histogram digests. Deterministic like the file
// exporters.
func (r *Recorder) Summary() string {
	if r == nil {
		return "trace: disabled (nil recorder)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d spans, %d events (virtual time)\n", len(r.spans), len(r.events))

	// Phase timeline, in record order (phases record in lifecycle order).
	var phases []SpanData
	byTrack := map[string][]SpanData{}
	for _, sp := range r.spans {
		if sp.Track == "phase" {
			phases = append(phases, sp)
		} else {
			byTrack[sp.Track] = append(byTrack[sp.Track], sp)
		}
	}
	if len(phases) > 0 {
		b.WriteString("phases:\n")
		for _, sp := range phases {
			fmt.Fprintf(&b, "  %-16s %12s  (at %s)\n", sp.Name,
				time.Duration(sp.End-sp.Start).Round(time.Millisecond),
				time.Duration(sp.Start).Round(time.Millisecond))
		}
	}

	tracks := make([]string, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	for _, t := range tracks {
		spans := byTrack[t]
		var sum, max int64
		min := spans[0].End - spans[0].Start
		for _, sp := range spans {
			d := sp.End - sp.Start
			sum += d
			if d > max {
				max = d
			}
			if d < min {
				min = d
			}
		}
		fmt.Fprintf(&b, "%s: %d spans, min %s avg %s max %s\n", t, len(spans),
			time.Duration(min).Round(time.Millisecond),
			time.Duration(sum/int64(len(spans))).Round(time.Millisecond),
			time.Duration(max).Round(time.Millisecond))
		slow := append([]SpanData(nil), spans...)
		sort.SliceStable(slow, func(i, j int) bool {
			return slow[i].End-slow[i].Start > slow[j].End-slow[j].Start
		})
		n := len(slow)
		if n > 5 {
			n = 5
		}
		for _, sp := range slow[:n] {
			fmt.Fprintf(&b, "  slowest  %-24s %12s\n", sp.Name,
				time.Duration(sp.End-sp.Start).Round(time.Millisecond))
		}
	}

	// Counter totals grouped by series name, labels counted.
	if len(r.counters) > 0 {
		type agg struct {
			total  uint64
			labels int
		}
		totals := map[string]*agg{}
		for _, c := range r.counters {
			a := totals[c.Name]
			if a == nil {
				a = &agg{}
				totals[c.Name] = a
			}
			a.total += c.n
			a.labels++
		}
		names := make([]string, 0, len(totals))
		for n := range totals {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("counters:\n")
		for _, n := range names {
			a := totals[n]
			fmt.Fprintf(&b, "  %-28s %12d  (%d labels)\n", n, a.total, a.labels)
		}
	}
	for _, g := range r.sortedGauges() {
		fmt.Fprintf(&b, "gauge %s{%s} = %g\n", g.Name, g.Label, g.v)
	}
	for _, h := range r.sortedHists() {
		if h.count == 0 {
			continue
		}
		fmt.Fprintf(&b, "hist %s{%s}: n=%d avg=%.3fs min=%.3fs max=%.3fs\n",
			h.Name, h.Label, h.count, h.sum/float64(h.count), h.min, h.max)
	}
	return b.String()
}
