package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	sp := r.Start("t", "x")
	sp.End()
	r.SpanAt("t", "y", 1, 2)
	r.Event("t", "e")
	r.EventAt("t", "e2", 5)
	r.SetClock(func() int64 { return 9 })
	if r.Spans() != nil || r.Events() != nil {
		t.Fatal("nil recorder returned data")
	}
	c := r.Counter("c", "l")
	if c != nil {
		t.Fatal("nil recorder vended non-nil counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("g", "")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	h := r.Histogram("h", "")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if got := r.Summary(); !strings.Contains(got, "disabled") {
		t.Fatalf("nil summary = %q", got)
	}
	if r.Fork() != nil {
		t.Fatal("nil recorder forked to non-nil")
	}
}

func TestSpansEventsAndClock(t *testing.T) {
	var now int64
	r := New()
	r.SetClock(func() int64 { return now })

	now = 100
	sp := r.Start("boot", "dev0")
	now = 250
	sp.End(Attr{"ok", "true"})
	r.SpanAt("phase", "network-ready", 0, 250)
	now = 300
	r.Event("alert", "vm-failure", Attr{"vm", "vm3"})

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Track != "boot" || spans[0].Start != 100 || spans[0].End != 250 {
		t.Fatalf("bad span: %+v", spans[0])
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0] != (Attr{"ok", "true"}) {
		t.Fatalf("bad attrs: %+v", spans[0].Attrs)
	}
	evs := r.Events()
	if len(evs) != 1 || evs[0].At != 300 {
		t.Fatalf("bad events: %+v", evs)
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := New()
	c1 := r.Counter("bgp.msgs_out", "dev0")
	c2 := r.Counter("bgp.msgs_out", "dev0")
	if c1 != c2 {
		t.Fatal("counter registration not idempotent")
	}
	c1.Inc()
	c2.Add(2)
	if c1.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c1.Value())
	}
	g := r.Gauge("vms", "")
	g.Set(12)
	if r.Gauge("vms", "").Value() != 12 {
		t.Fatal("gauge registration not idempotent")
	}
	h := r.Histogram("recovery", "")
	h.Observe(0.002)
	h.Observe(500) // beyond the last bound → +Inf bucket
	if h.Count() != 2 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h != r.Histogram("recovery", "") {
		t.Fatal("histogram registration not idempotent")
	}
}

func buildSample() *Recorder {
	var now int64
	r := New()
	r.SetClock(func() int64 { return now })
	now = 1000
	sp := r.Start("boot", "dev1")
	now = 4000
	sp.End()
	r.SpanAt("phase", "network-ready", 0, 4000)
	r.Event("device", "crash", Attr{"dev", "dev1"})
	r.Counter("bgp.msgs_out", "dev1").Add(7)
	r.Counter("bgp.msgs_out", "dev0").Add(3)
	r.Gauge("vms", "").Set(2)
	r.Histogram("recovery", "").Observe(0.01)
	return r
}

func TestExportDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-content JSON exports differ")
	}
	a.Reset()
	b.Reset()
	if err := buildSample().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-content Chrome exports differ")
	}
}

func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, Part{Name: "runA", Rec: buildSample()}, Part{Name: "runB", Rec: buildSample()}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	pids := map[float64]bool{}
	sawComplete, sawInstant, sawMeta := false, false, false
	for _, ev := range out.TraceEvents {
		pids[ev["pid"].(float64)] = true
		switch ev["ph"] {
		case "X":
			sawComplete = true
			if ev["name"] == "dev1" && ev["dur"].(float64) != 3 { // 3000ns = 3µs
				t.Fatalf("span dur = %v µs, want 3", ev["dur"])
			}
		case "i":
			sawInstant = true
		case "M":
			sawMeta = true
		}
	}
	if !sawComplete || !sawInstant || !sawMeta {
		t.Fatalf("missing phases: X=%v i=%v M=%v", sawComplete, sawInstant, sawMeta)
	}
	if !pids[1] || !pids[2] {
		t.Fatalf("merged trace pids = %v, want 1 and 2", pids)
	}
}

func TestForkDeepCopies(t *testing.T) {
	r := buildSample()
	f := r.Fork()
	if f.now != nil {
		t.Fatal("fork inherited a clock")
	}
	// Diverge both sides; neither should see the other's writes.
	r.Counter("bgp.msgs_out", "dev1").Inc()
	f.Counter("bgp.msgs_out", "dev1").Add(10)
	if r.Counter("bgp.msgs_out", "dev1").Value() != 8 {
		t.Fatal("parent counter saw fork write")
	}
	if f.Counter("bgp.msgs_out", "dev1").Value() != 17 {
		t.Fatal("fork counter lost parent baseline")
	}
	r.SpanAt("t", "parent-only", 1, 2)
	if len(f.Spans()) != len(r.Spans())-1 {
		t.Fatal("fork shares span slice with parent")
	}
	f.Histogram("recovery", "").Observe(1)
	if r.Histogram("recovery", "").Count() != 1 {
		t.Fatal("parent histogram saw fork observation")
	}
}

func TestAdopt(t *testing.T) {
	src := buildSample()
	dst := New()
	bound := false
	dst.SetClock(func() int64 { bound = true; return 42 })
	dst.Adopt(src)
	if len(dst.Spans()) != 2 {
		t.Fatalf("adopt lost spans: %d", len(dst.Spans()))
	}
	if dst.Counter("bgp.msgs_out", "dev1").Value() != 7 {
		t.Fatal("adopt lost counters")
	}
	// src had a clock; it wins (src's engine keeps driving dst).
	dst.Event("t", "after-adopt")
	_ = bound
	// Nil safety.
	dst.Adopt(nil)
	var nilRec *Recorder
	nilRec.Adopt(src)
}
