package obs

// Fork and adoption: recorder state crosses the checkpoint/fork boundary
// by deep copy, so a fork's trace starts with everything its parent had
// recorded up to the snapshot and then diverges on its own — exactly like
// the rest of the emulation. A forked recorder has no clock bound; the
// fork's engine binds its own in SetRecorder.

// Fork returns a deep copy of the recorder with no clock bound. Metric
// handles cached by the parent's devices keep pointing at the parent's
// metrics; forked devices re-register through the fork's recorder and get
// the copied handles. Nil-safe: a nil recorder forks to nil.
func (r *Recorder) Fork() *Recorder {
	if r == nil {
		return nil
	}
	c := &Recorder{
		spans:  append([]SpanData(nil), r.spans...),
		events: append([]EventData(nil), r.events...),
	}
	// Attrs slices are recorded once and never mutated, so aliasing them
	// is safe; the containers themselves must not be shared.
	if len(r.counters) > 0 {
		c.counters = make([]*Counter, len(r.counters))
		c.cIdx = make(map[metricKey]*Counter, len(r.counters))
		for i, src := range r.counters {
			dup := *src
			c.counters[i] = &dup
			c.cIdx[metricKey{src.Name, src.Label}] = &dup
		}
	}
	if len(r.gauges) > 0 {
		c.gauges = make([]*Gauge, len(r.gauges))
		c.gIdx = make(map[metricKey]*Gauge, len(r.gauges))
		for i, src := range r.gauges {
			dup := *src
			c.gauges[i] = &dup
			c.gIdx[metricKey{src.Name, src.Label}] = &dup
		}
	}
	if len(r.hists) > 0 {
		c.hists = make([]*Histogram, len(r.hists))
		c.hIdx = make(map[metricKey]*Histogram, len(r.hists))
		for i, src := range r.hists {
			dup := *src
			dup.bucket = append([]uint64(nil), src.bucket...)
			c.hists[i] = &dup
			c.hIdx[metricKey{src.Name, src.Label}] = &dup
		}
	}
	return c
}

// Adopt moves src's contents into r, replacing whatever r held. The
// scenario engine uses this to hand a fork's recorder (created internally
// by Orchestrator.Fork) to the caller-supplied recorder, so the caller's
// handle sees the full trace. src must not be used afterwards. Nil-safe
// on both sides.
func (r *Recorder) Adopt(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	now := r.now
	*r = *src
	if r.now == nil {
		r.now = now
	}
}
