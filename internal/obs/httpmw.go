package obs

import (
	"net/http"
	"time"
)

// statusWriter captures the response code a handler wrote (200 when the
// handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Middleware instruments an HTTP handler with the live registry's
// standard families, labeled by route:
//
//	http.requests  (counter)  requests completed
//	http.errors    (counter)  responses with status >= 500
//	http.latency   (histogram) wall-clock seconds per request
//	http.in_flight (gauge)    requests currently being served
//
// A nil *Live vends nil handles, so the wrapper degrades to plain
// status-code capture with no locking.
func (l *Live) Middleware(route string, next http.Handler) http.Handler {
	requests := l.Counter("http.requests", route)
	errors := l.Counter("http.errors", route)
	latency := l.Histogram("http.latency", route)
	inFlight := l.Gauge("http.in_flight", route)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		inFlight.Add(-1)
		requests.Inc()
		if sw.status >= 500 {
			errors.Inc()
		}
		latency.Observe(time.Since(start).Seconds())
	})
}
