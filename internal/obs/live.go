package obs

// Live is the wall-clock sibling of the Recorder's sim-time metrics: a
// concurrency-safe registry the serving layer (internal/serve) uses for
// operational telemetry — request counts, latencies, pool hit rates. The
// Recorder is deliberately single-goroutine and driven by the simulation
// clock; a daemon needs the opposite: many HTTP handler goroutines
// recording real elapsed time. Keeping the two separate preserves the
// determinism contract (Live never touches a report or a trace) while
// giving /metrics something true about the process.
//
// Like the Recorder's handles, a nil *Live vends nil series handles whose
// methods are no-ops, so instrumented code never branches on "is
// monitoring on".

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Live is a mutex-guarded metrics registry for wall-clock telemetry.
type Live struct {
	mu       sync.Mutex
	counters map[metricKey]*LiveCounter
	gauges   map[metricKey]*LiveGauge
	hists    map[metricKey]*LiveHistogram
	order    []string // registration order of unique names, for stable output
	named    map[string]bool
}

// NewLive returns an empty live-metrics registry.
func NewLive() *Live { return &Live{} }

func (l *Live) noteName(name string) {
	if l.named == nil {
		l.named = map[string]bool{}
	}
	if !l.named[name] {
		l.named[name] = true
		l.order = append(l.order, name)
	}
}

// LiveCounter is a monotonically increasing counter safe for concurrent
// use. A nil handle absorbs updates.
type LiveCounter struct {
	name, label string
	mu          sync.Mutex
	n           uint64
}

// Inc adds one.
func (c *LiveCounter) Inc() { c.Add(1) }

// Add adds d.
func (c *LiveCounter) Add(d uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.n += d
	c.mu.Unlock()
}

// Value returns the current count (0 on a nil counter).
func (c *LiveCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Counter returns the counter registered under (name, label), creating it
// on first use. Nil registry → nil handle, a valid no-op.
func (l *Live) Counter(name, label string) *LiveCounter {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := metricKey{name, label}
	if c, ok := l.counters[k]; ok {
		return c
	}
	if l.counters == nil {
		l.counters = map[metricKey]*LiveCounter{}
	}
	c := &LiveCounter{name: name, label: label}
	l.counters[k] = c
	l.noteName(name)
	return c
}

// LiveGauge is a last-write-wins value safe for concurrent use, with an
// Add method so it can track in-flight counts.
type LiveGauge struct {
	name, label string
	mu          sync.Mutex
	v           float64
}

// Set records the current value.
func (g *LiveGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the value by d (negative to decrement).
func (g *LiveGauge) Add(d float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += d
	g.mu.Unlock()
}

// Value returns the last value (0 on a nil gauge).
func (g *LiveGauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Gauge returns the gauge registered under (name, label), creating it on
// first use.
func (l *Live) Gauge(name, label string) *LiveGauge {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := metricKey{name, label}
	if g, ok := l.gauges[k]; ok {
		return g
	}
	if l.gauges == nil {
		l.gauges = map[metricKey]*LiveGauge{}
	}
	g := &LiveGauge{name: name, label: label}
	l.gauges[k] = g
	l.noteName(name)
	return g
}

// liveBuckets are the default wall-clock latency bounds, in seconds:
// 1ms to ~66s in powers of four. Rehearsal requests span warm forks
// (tens of ms) to cold convergences (seconds).
var liveBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536}

// LiveHistogram accumulates observations into fixed buckets, safe for
// concurrent use, with quantile estimation for status reporting.
type LiveHistogram struct {
	name, label string
	bounds      []float64
	mu          sync.Mutex
	bucket      []uint64 // len(bounds)+1; last is +Inf
	count       uint64
	sum         float64
	min, max    float64
}

// Observe records one value.
func (h *LiveHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.bucket[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *LiveHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the target rank, clamped to the
// observed min/max so small samples don't report a bucket bound nothing
// reached. Returns 0 with no observations.
func (h *LiveHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var seen uint64
	for i, n := range h.bucket {
		seen += n
		if float64(seen) < rank {
			continue
		}
		// Interpolate inside bucket i: [lo, hi] holds n observations of
		// which the target is the (rank - (seen - n))-th.
		lo := h.min
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.max
		if i < len(h.bounds) && h.bounds[i] < hi {
			hi = h.bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		v := hi
		if n > 0 {
			within := (rank - float64(seen-n)) / float64(n)
			v = lo + (hi-lo)*within
		}
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Histogram returns the histogram registered under (name, label) with the
// default wall-clock bounds, creating it on first use.
func (l *Live) Histogram(name, label string) *LiveHistogram {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	k := metricKey{name, label}
	if h, ok := l.hists[k]; ok {
		return h
	}
	if l.hists == nil {
		l.hists = map[metricKey]*LiveHistogram{}
	}
	h := &LiveHistogram{
		name: name, label: label,
		bounds: liveBuckets, bucket: make([]uint64, len(liveBuckets)+1),
	}
	l.hists[k] = h
	l.noteName(name)
	return h
}

// promName sanitizes a dotted series name into the Prometheus exposition
// charset ("http.requests" → "http_requests").
func promName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		}
		return '_'
	}, name)
}

func promLabel(label, extra string) string {
	parts := make([]string, 0, 2)
	if label != "" {
		parts = append(parts, fmt.Sprintf("label=%q", label))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WriteProm renders every registered series in the Prometheus text
// exposition format, series sorted by (name, label) within registration
// order of names, so scrapes are stable.
func (l *Live) WriteProm(w io.Writer) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	type cRow struct {
		label string
		c     *LiveCounter
	}
	type gRow struct {
		label string
		g     *LiveGauge
	}
	type hRow struct {
		label string
		h     *LiveHistogram
	}
	counters := map[string][]cRow{}
	gauges := map[string][]gRow{}
	hists := map[string][]hRow{}
	for k, c := range l.counters {
		counters[k.name] = append(counters[k.name], cRow{k.label, c})
	}
	for k, g := range l.gauges {
		gauges[k.name] = append(gauges[k.name], gRow{k.label, g})
	}
	for k, h := range l.hists {
		hists[k.name] = append(hists[k.name], hRow{k.label, h})
	}
	order := append([]string(nil), l.order...)
	l.mu.Unlock()

	for _, name := range order {
		pn := promName(name)
		if rows := counters[name]; len(rows) > 0 {
			sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, promLabel(r.label, ""), r.c.Value()); err != nil {
					return err
				}
			}
		}
		if rows := gauges[name]; len(rows) > 0 {
			sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
				return err
			}
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%s%s %g\n", pn, promLabel(r.label, ""), r.g.Value()); err != nil {
					return err
				}
			}
		}
		if rows := hists[name]; len(rows) > 0 {
			sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			for _, r := range rows {
				r.h.mu.Lock()
				var cum uint64
				for i, n := range r.h.bucket {
					cum += n
					le := "+Inf"
					if i < len(r.h.bounds) {
						le = fmt.Sprintf("%g", r.h.bounds[i])
					}
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						pn, promLabel(r.label, fmt.Sprintf("le=%q", le)), cum); err != nil {
						r.h.mu.Unlock()
						return err
					}
				}
				sum, count := r.h.sum, r.h.count
				r.h.mu.Unlock()
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n",
					pn, promLabel(r.label, ""), sum, pn, promLabel(r.label, ""), count); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Since returns elapsed wall-clock seconds — the unit every Live
// histogram observes in.
func Since(start time.Time) float64 { return time.Since(start).Seconds() }
