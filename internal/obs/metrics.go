package obs

// Metrics are registered per (name, label): the name identifies the
// series ("bgp.msgs_out"), the label the instance (a device name). Handles
// are cached by callers at construction time so hot-path updates are a
// nil check plus an integer add — and literally just the nil check when
// tracing is disabled, because a nil recorder vends nil handles.

type metricKey struct{ name, label string }

// Counter is a monotonically increasing integer series. A nil *Counter —
// vended by a nil recorder — absorbs updates for free.
type Counter struct {
	Name  string
	Label string
	n     uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n += d
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n
}

// Counter returns the counter registered under (name, label), creating it
// on first use. On a nil recorder it returns nil, which is itself a valid
// no-op counter.
func (r *Recorder) Counter(name, label string) *Counter {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	if c, ok := r.cIdx[k]; ok {
		return c
	}
	if r.cIdx == nil {
		r.cIdx = map[metricKey]*Counter{}
	}
	c := &Counter{Name: name, Label: label}
	r.cIdx[k] = c
	r.counters = append(r.counters, c)
	return c
}

// Gauge is a last-write-wins float series.
type Gauge struct {
	Name  string
	Label string
	v     float64
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last value set (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Gauge returns the gauge registered under (name, label), creating it on
// first use. Nil recorder → nil gauge, a valid no-op.
func (r *Recorder) Gauge(name, label string) *Gauge {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	if g, ok := r.gIdx[k]; ok {
		return g
	}
	if r.gIdx == nil {
		r.gIdx = map[metricKey]*Gauge{}
	}
	g := &Gauge{Name: name, Label: label}
	r.gIdx[k] = g
	r.gauges = append(r.gauges, g)
	return g
}

// DefBuckets are the default histogram bounds, in seconds of virtual
// time: 1ms to ~2min in powers of four. They cover the spread between a
// single BGP UPDATE exchange and a full fabric convergence.
var DefBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536, 131.072}

// Histogram accumulates observations into fixed buckets, plus exact
// count/sum/min/max. Bounds are set at registration and never change, so
// two same-seed runs bucket identically.
type Histogram struct {
	Name   string
	Label  string
	bounds []float64
	bucket []uint64 // len(bounds)+1; last is +Inf
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.bucket[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// ObserveN records n identical observations in one update — the bulk form
// the traffic plane uses to account millions of modeled flows per settle
// without a per-flow loop. Equivalent to calling Observe(v) n times.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.bucket[i] += n
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += n
	h.sum += v * float64(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Histogram returns the histogram registered under (name, label) with
// DefBuckets bounds, creating it on first use. Nil recorder → nil
// histogram, a valid no-op.
func (r *Recorder) Histogram(name, label string) *Histogram {
	if r == nil {
		return nil
	}
	k := metricKey{name, label}
	if h, ok := r.hIdx[k]; ok {
		return h
	}
	if r.hIdx == nil {
		r.hIdx = map[metricKey]*Histogram{}
	}
	h := &Histogram{Name: name, Label: label, bounds: DefBuckets, bucket: make([]uint64, len(DefBuckets)+1)}
	r.hIdx[k] = h
	r.hists = append(r.hists, h)
	return h
}
