// Package obs is the Monitor plane's measurement layer: a deterministic,
// sim-time-stamped span/event tracer and metrics registry threaded through
// the engine, the protocol stacks and the Prepare/Mockup/Control phases
// (CrystalNet §5 — the Monitor step of the emulation lifecycle; the
// convergence timelines behind Figures 8 and 9). See docs/OBSERVABILITY.md
// and DESIGN.md §7 "Monitor plane".
//
// Every timestamp is engine virtual time (nanoseconds since emulation
// start), never wall clock, so traces from two same-seed runs — or from a
// fresh run and a checkpoint/fork replay — are byte-identical.
//
// All Recorder methods are nil-safe: a nil *Recorder is the disabled
// tracer, and every call on it (including metric handles it vends) is a
// pointer check and nothing else. Hot paths cache *Counter handles at
// construction so the disabled cost stays at one predictable branch.
//
// A Recorder is single-goroutine, like the engine that feeds it: each
// emulation (fresh or forked) owns its own recorder, and campaigns that
// run emulations in parallel give each run a private recorder and merge
// the results after the pool drains.
package obs

// Attr is one key/value annotation on a span or event.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// SpanData is a completed span: a named interval of virtual time on a
// track. Spans are recorded in completion order, which is deterministic
// because the engine is.
type SpanData struct {
	Track string `json:"track"`
	Name  string `json:"name"`
	Start int64  `json:"start_ns"`
	End   int64  `json:"end_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// EventData is an instantaneous occurrence on a track.
type EventData struct {
	Track string `json:"track"`
	Name  string `json:"name"`
	At    int64  `json:"at_ns"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Recorder accumulates spans, events and metrics for one emulation. The
// zero value is usable; New is the conventional constructor. A nil
// *Recorder is the disabled tracer — every method no-ops.
type Recorder struct {
	now func() int64

	spans  []SpanData
	events []EventData

	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	cIdx     map[metricKey]*Counter
	gIdx     map[metricKey]*Gauge
	hIdx     map[metricKey]*Histogram
}

// New returns an empty recorder with no clock bound. Engine.SetRecorder
// binds the virtual clock; until then timestamps read as 0.
func New() *Recorder { return &Recorder{} }

// SetClock binds the virtual-time source. The engine calls this from
// SetRecorder; tests may bind any monotone int64 source.
func (r *Recorder) SetClock(now func() int64) {
	if r == nil {
		return
	}
	r.now = now
}

func (r *Recorder) clock() int64 {
	if r.now == nil {
		return 0
	}
	return r.now()
}

// Span is an open interval handle returned by Start. It is a value, not a
// pointer: starting and ending a span allocates nothing beyond the
// recorded SpanData itself.
type Span struct {
	rec   *Recorder
	track string
	name  string
	start int64
}

// Start opens a span at the current virtual time. On a nil recorder it
// returns an inert handle whose End is a no-op.
func (r *Recorder) Start(track, name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{rec: r, track: track, name: name, start: r.clock()}
}

// End closes the span at the current virtual time and records it.
func (s Span) End(attrs ...Attr) {
	if s.rec == nil {
		return
	}
	s.rec.spans = append(s.rec.spans, SpanData{
		Track: s.track, Name: s.name,
		Start: s.start, End: s.rec.clock(),
		Attrs: attrs,
	})
}

// SpanAt records a completed span with explicit virtual timestamps. The
// core phases use this to reconstruct intervals post hoc (e.g. the
// network-ready window is only known once convergence is detected).
func (r *Recorder) SpanAt(track, name string, start, end int64, attrs ...Attr) {
	if r == nil {
		return
	}
	r.spans = append(r.spans, SpanData{Track: track, Name: name, Start: start, End: end, Attrs: attrs})
}

// Event records an instantaneous occurrence at the current virtual time.
func (r *Recorder) Event(track, name string, attrs ...Attr) {
	if r == nil {
		return
	}
	r.events = append(r.events, EventData{Track: track, Name: name, At: r.clock(), Attrs: attrs})
}

// EventAt records an event with an explicit virtual timestamp.
func (r *Recorder) EventAt(track, name string, at int64, attrs ...Attr) {
	if r == nil {
		return
	}
	r.events = append(r.events, EventData{Track: track, Name: name, At: at, Attrs: attrs})
}

// Spans returns the recorded spans in completion order. Callers must not
// mutate the slice.
func (r *Recorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	return r.spans
}

// Events returns the recorded events in record order. Callers must not
// mutate the slice.
func (r *Recorder) Events() []EventData {
	if r == nil {
		return nil
	}
	return r.events
}
