package obs

import "testing"

// The disabled-tracer contract: a nil recorder (and the nil handles it
// vends) must cost a predictable branch and zero allocations, so wiring
// observability through the BGP/forwarding hot paths leaves the
// BENCH_20260806.json numbers untouched when tracing is off.

func BenchmarkNilCounterInc(b *testing.B) {
	var r *Recorder
	c := r.Counter("bgp.msgs_out", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("track", "name")
		sp.End()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *Recorder
	h := r.Histogram("recovery", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkNilGaugeSet(b *testing.B) {
	var r *Recorder
	g := r.Gauge("rib.dense_bytes", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkLiveCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bgp.msgs_out", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkLiveGaugeSet(b *testing.B) {
	r := New()
	g := r.Gauge("rib.dense_bytes", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkLiveHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("recovery", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 97))
	}
}
