package obs

import "testing"

// The disabled-tracer contract: a nil recorder (and the nil handles it
// vends) must cost a predictable branch and zero allocations, so wiring
// observability through the BGP/forwarding hot paths leaves the
// BENCH_20260806.json numbers untouched when tracing is off.

func BenchmarkNilCounterInc(b *testing.B) {
	var r *Recorder
	c := r.Counter("bgp.msgs_out", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilSpan(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := r.Start("track", "name")
		sp.End()
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var r *Recorder
	h := r.Histogram("recovery", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1.5)
	}
}

func BenchmarkLiveCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("bgp.msgs_out", "dev0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
