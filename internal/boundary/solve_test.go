package boundary

import (
	"math/bits"
	"strings"
	"testing"

	"crystalnet/internal/topo"
)

// chain builds spine A (AS100) — leaf B (AS100) — tor C (AS200): a speaker
// that sits inside the single boundary AS.
func chain() *topo.Network {
	n := topo.NewNetwork("chain")
	a := n.AddDevice("A", topo.LayerSpine, 100, "ctnra")
	b := n.AddDevice("B", topo.LayerLeaf, 100, "ctnra")
	c := n.AddDevice("C", topo.LayerToR, 200, "ctnrb")
	n.Connect(a, b)
	n.Connect(b, c)
	return n
}

func TestProposition52RejectsSpeakerInBoundaryAS(t *testing.T) {
	// Regression: the boundary device A and its speaker B share AS 100.
	// §5.2 assumes speakers sit in distinct *external* ASes — a speaker
	// inside the boundary AS must be rejected, not silently accepted
	// because it collides with no other speaker.
	p, err := BuildPlan(chain(), set("A"))
	if err != nil {
		t.Fatal(err)
	}
	err = p.CheckProposition52()
	if err == nil {
		t.Fatal("speaker B shares the boundary AS 100; prop 5.2 must fail")
	}
	if !strings.Contains(err.Error(), "boundary AS") {
		t.Fatalf("want the speaker-in-boundary-AS error, got: %v", err)
	}
}

func TestProposition52SpeakerOutsideBoundaryASStillPasses(t *testing.T) {
	// Emulating A+B leaves only speaker C (AS 200) outside the boundary
	// AS: 5.2 must keep certifying that.
	p, _ := BuildPlan(chain(), set("A", "B"))
	if err := p.CheckProposition52(); err != nil {
		t.Fatalf("prop 5.2: %v", err)
	}
}

func TestAlgorithm1RejectsExternalMust(t *testing.T) {
	// Regression: an external must-device used to be emitted into the
	// emulated set (only external *upper* neighbors were skipped),
	// producing a nonsense boundary.
	n := topo.GenerateClos(topo.SDC())
	topo.AttachWAN(n, topo.SDC(), 2)
	var ext string
	for _, d := range n.DevicesByLayer(topo.LayerExternal) {
		ext = d.Name
		break
	}
	if ext == "" {
		t.Fatal("no external device attached")
	}
	if _, err := FindSafeDCBoundary(n, []string{ext}); err == nil {
		t.Fatal("external must-device accepted")
	}
	if _, err := Solve(n, []string{ext}, SolveOptions{}); err == nil {
		t.Fatal("solver accepted an external target")
	}
}

func TestSolveInputValidation(t *testing.T) {
	n := figure7()
	if _, err := Solve(n, nil, SolveOptions{}); err == nil {
		t.Fatal("empty target set accepted")
	}
	if _, err := Solve(n, []string{"nope"}, SolveOptions{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestSolveFigure7MinimalityVsBruteForce(t *testing.T) {
	n := figure7()
	targets := []string{"T1", "T3"}
	res, err := Solve(n, targets, SolveOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range targets {
		if !res.Best.Plan.Emulated[name] {
			t.Fatalf("best plan misses target %s", name)
		}
	}
	if _, err := res.Best.Plan.Certify(n.NumDevices()); err != nil {
		t.Fatalf("best plan does not re-certify: %v", err)
	}

	// Brute force: enumerate every superset of the targets up to the
	// solver's answer size, certifying each exactly like the solver does
	// (5.2, 5.3, then the Lemma 5.1 walk). The smallest safe superset
	// must be what the solver returned.
	var rest []string
	for _, d := range n.Devices() {
		if d.Name != "T1" && d.Name != "T3" {
			rest = append(rest, d.Name)
		}
	}
	maxExtra := res.Best.Scale.TotalEmulated - len(targets)
	bruteMin := -1
	for k := 0; k <= maxExtra && bruteMin < 0; k++ {
		for mask := 0; mask < 1<<len(rest); mask++ {
			if bits.OnesCount(uint(mask)) != k {
				continue
			}
			emu := set(targets...)
			for i, name := range rest {
				if mask&(1<<i) != 0 {
					emu[name] = true
				}
			}
			p, err := BuildPlan(n, emu)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Certify(n.NumDevices()); err == nil {
				bruteMin = len(targets) + k
				break
			}
		}
	}
	if bruteMin < 0 {
		t.Fatalf("brute force found no safe set up to size %d", res.Best.Scale.TotalEmulated)
	}
	if res.Best.Scale.TotalEmulated != bruteMin {
		t.Fatalf("solver best emulates %d devices; brute-force minimum is %d",
			res.Best.Scale.TotalEmulated, bruteMin)
	}
}

func TestSolveDeterministicAcrossRunsAndWorkers(t *testing.T) {
	n1 := topo.GenerateClos(topo.MDC())
	var targets []string
	for _, d := range n1.DevicesInPod(3) {
		targets = append(targets, d.Name)
	}
	res1, err := Solve(n1, targets, SolveOptions{Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	n2 := topo.GenerateClos(topo.MDC())
	res2, err := Solve(n2, targets, SolveOptions{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1, r2 := res1.Report(), res2.Report(); r1 != r2 {
		t.Fatalf("reports differ across worker counts:\n--- workers=1\n%s\n--- workers=4\n%s", r1, r2)
	}
	if k1, k2 := res1.Best.key(), res2.Best.key(); k1 != k2 {
		t.Fatalf("best emulated sets differ:\n%s\nvs\n%s", k1, k2)
	}
}

func TestSolveSmallerThanFullOnMDC(t *testing.T) {
	n := topo.GenerateClos(topo.MDC())
	var targets []string
	for _, d := range n.DevicesInPod(0) {
		targets = append(targets, d.Name)
	}
	res, err := Solve(n, targets, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Scale.VMs >= res.FullVMs {
		t.Fatalf("best %d VMs is not smaller than full emulation's %d", res.Best.Scale.VMs, res.FullVMs)
	}
	if res.CostReduction <= 0 {
		t.Fatalf("cost reduction = %.3f, want > 0", res.CostReduction)
	}
}

// handPicked reproduces the Table 4 hand-picked flow: Algorithm 1 closure
// of the musts, checked safe, scaled.
func handPicked(t *testing.T, n *topo.Network, must []string) Scale {
	t.Helper()
	emu, err := FindSafeDCBoundary(n, must)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(n, emu)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckSafe(); err != nil {
		t.Fatal(err)
	}
	return p.Scale()
}

func TestSolveMatchesOrBeatsHandPickedOnePod(t *testing.T) {
	n := topo.GenerateClos(topo.LDC())
	var targets []string
	for _, d := range n.DevicesInPod(0) {
		targets = append(targets, d.Name)
	}
	hand := handPicked(t, n, targets)
	res, err := Solve(n, targets, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Scale.VMs > hand.VMs {
		t.Fatalf("solver best %d VMs worse than hand-picked %d", res.Best.Scale.VMs, hand.VMs)
	}
	// The pod's layer-capped closure needs no spines or borders at all —
	// strictly cheaper than the hand-picked upward closure.
	if res.Best.Scale.VMs >= hand.VMs {
		t.Fatalf("one-pod solve should beat the hand-picked plan: %d vs %d VMs", res.Best.Scale.VMs, hand.VMs)
	}
}

func TestSolveMatchesOrBeatsHandPickedAllSpines(t *testing.T) {
	n := topo.GenerateClos(topo.LDC())
	var targets []string
	for _, d := range n.DevicesByLayer(topo.LayerSpine) {
		targets = append(targets, d.Name)
	}
	hand := handPicked(t, n, targets)
	res, err := Solve(n, targets, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Scale.VMs > hand.VMs {
		t.Fatalf("solver best %d VMs worse than hand-picked %d", res.Best.Scale.VMs, hand.VMs)
	}
	if res.Best.Scale.TotalEmulated > hand.TotalEmulated {
		t.Fatalf("solver best emulates %d devices, hand-picked only %d",
			res.Best.Scale.TotalEmulated, hand.TotalEmulated)
	}
}

func TestSolveShrinkRemovesSlack(t *testing.T) {
	// The solver's answer must be locally minimal: removing any single
	// non-target device from the winning set must break certification,
	// otherwise the greedy shrinker left slack on the table.
	n := figure7()
	res, err := Solve(n, []string{"T1"}, SolveOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range res.Best.Emulated {
		if name == "T1" {
			continue
		}
		smaller := set(res.Best.Emulated...)
		delete(smaller, name)
		p, err := BuildPlan(n, smaller)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Certify(n.NumDevices()); err == nil {
			t.Fatalf("removing %s keeps the plan safe — solver missed a smaller set %v",
				name, sortedNames(smaller))
		}
	}
}

func TestSolveReportStable(t *testing.T) {
	n := topo.GenerateClos(topo.SDC())
	res, err := Solve(n, []string{"tor-p0-0", "tor-p1-0"}, SolveOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if !strings.Contains(rep, "safe-boundary solve") || !strings.Contains(rep, "best") {
		t.Fatalf("report missing expected framing:\n%s", rep)
	}
	n2 := topo.GenerateClos(topo.SDC())
	res2, err := Solve(n2, []string{"tor-p0-0", "tor-p1-0"}, SolveOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rep != res2.Report() {
		t.Fatal("repeated solve produced a different report")
	}
}
