package boundary

import (
	"testing"

	"crystalnet/internal/topo"
)

// figure7 builds the paper's Figure 7 topology: three leaf pairs (L1-2
// AS200, L3-4 AS300, L5-6 AS400) each serving two ToRs (unique ASes),
// everything dual-homed to spines S1-2 (AS100).
func figure7() *topo.Network {
	n := topo.NewNetwork("figure7")
	s1 := n.AddDevice("S1", topo.LayerSpine, 100, "ctnra")
	s2 := n.AddDevice("S2", topo.LayerSpine, 100, "ctnra")
	leafAS := []uint32{200, 200, 300, 300, 400, 400}
	var leaves []*topo.Device
	for i := 0; i < 6; i++ {
		l := n.AddDevice(lname(i+1), topo.LayerLeaf, leafAS[i], "ctnra")
		leaves = append(leaves, l)
		n.Connect(l, s1)
		n.Connect(l, s2)
	}
	for i := 0; i < 6; i++ {
		t := n.AddDevice(tname(i+1), topo.LayerToR, uint32(i+1), "ctnrb")
		pair := (i / 2) * 2
		n.Connect(t, leaves[pair])
		n.Connect(t, leaves[pair+1])
	}
	return n
}

func lname(i int) string { return "L" + string(rune('0'+i)) }
func tname(i int) string { return "T" + string(rune('0'+i)) }

func set(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

func TestBuildPlanClassification(t *testing.T) {
	n := figure7()
	p, err := BuildPlan(n, set("T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4"))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Internal) != 4 { // T1-4
		t.Fatalf("internal = %v", p.Internal)
	}
	if len(p.Boundary) != 4 { // L1-4 touch S1/S2
		t.Fatalf("boundary = %v", p.Boundary)
	}
	if len(p.Speakers) != 2 || p.Speakers[0] != "S1" || p.Speakers[1] != "S2" {
		t.Fatalf("speakers = %v", p.Speakers)
	}
	// Excluded: T5, T6, L5, L6.
	if len(p.Excluded) != 4 {
		t.Fatalf("excluded = %v", p.Excluded)
	}
}

func TestBuildPlanUnknownDevice(t *testing.T) {
	if _, err := BuildPlan(figure7(), set("nope")); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestFigure7aUnsafe(t *testing.T) {
	p, _ := BuildPlan(figure7(), set("T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4"))
	if err := p.CheckProposition52(); err == nil {
		t.Fatal("7a boundary spans AS200+AS300; prop 5.2 must fail")
	}
	if err := p.CheckProposition53(); err == nil {
		t.Fatal("L1 reaches L3 via S1 externally; prop 5.3 must fail")
	}
	if err := p.CheckSafe(); err == nil {
		t.Fatal("7a must be unsafe")
	}
	res := p.SimulatePropagation()
	if res.Safe {
		t.Fatal("Lemma 5.1 checker called 7a safe")
	}
	// The counterexample exits via a spine and re-enters a leaf.
	if len(res.Counterexample) < 3 {
		t.Fatalf("counterexample too short: %v", res.Counterexample)
	}
	last := res.Counterexample[len(res.Counterexample)-1]
	if !p.Emulated[last] {
		t.Fatalf("counterexample must re-enter the emulation, ends at %s", last)
	}
}

func TestFigure7bSafe(t *testing.T) {
	p, _ := BuildPlan(figure7(), set("T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4", "S1", "S2"))
	// Boundary devices are exactly the spines (single AS).
	if len(p.Boundary) != 2 {
		t.Fatalf("boundary = %v, want the spines", p.Boundary)
	}
	if err := p.CheckProposition53(); err != nil {
		t.Fatalf("7b prop 5.3: %v", err)
	}
	if err := p.CheckSafe(); err != nil {
		t.Fatalf("7b must be safe: %v", err)
	}
	if res := p.SimulatePropagation(); !res.Safe {
		t.Fatalf("Lemma checker rejected 7b: %v", res.Counterexample)
	}
}

func TestFigure7cSafeWithoutToRs(t *testing.T) {
	p, _ := BuildPlan(figure7(), set("L1", "L2", "L3", "L4", "S1", "S2"))
	// All emulated devices are boundary devices (T1-4 below, L5-6 beside).
	if len(p.Internal) != 0 || len(p.Boundary) != 6 {
		t.Fatalf("internal=%v boundary=%v", p.Internal, p.Boundary)
	}
	// Speakers: T1-4 (below the leaves) and L5-6 (beside the spines).
	if len(p.Speakers) != 6 {
		t.Fatalf("speakers = %v", p.Speakers)
	}
	// Three boundary ASes with no external reachability to each other.
	if err := p.CheckProposition53(); err != nil {
		t.Fatalf("7c prop 5.3: %v", err)
	}
	if res := p.SimulatePropagation(); !res.Safe {
		t.Fatalf("Lemma checker rejected 7c: %v", res.Counterexample)
	}
}

func TestProposition52SpeakerASCollision(t *testing.T) {
	// Emulate everything except L5/L6 region's ToRs... construct the 7b
	// plan and check 5.2 in isolation: boundary is single-AS but the two
	// speakers L5/L6 share AS400, so the stricter 5.2 condition fails even
	// though 5.3 certifies safety.
	p, _ := BuildPlan(figure7(), set("T1", "T2", "T3", "T4", "L1", "L2", "L3", "L4", "S1", "S2"))
	if err := p.CheckProposition52(); err == nil {
		t.Fatal("speakers L5/L6 share an AS; 5.2's speaker clause must fail")
	}
	if err := p.CheckSafe(); err != nil {
		t.Fatalf("CheckSafe must fall back to 5.3: %v", err)
	}
}

func TestProposition54(t *testing.T) {
	p, _ := BuildPlan(figure7(), set("L1", "L2", "L3", "L4", "S1", "S2"))
	ok := OSPFChange{
		ChangedLinks: [][2]string{{"L1", "S1"}},
		DRs:          []string{"S1"}, BDRs: []string{"S2"},
	}
	if err := p.CheckProposition54(ok); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckProposition54(OSPFChange{ChangedLinks: [][2]string{{"L1", "T1"}}}); err == nil {
		t.Fatal("changed link touching speaker T1 must fail")
	}
	if err := p.CheckProposition54(OSPFChange{DRs: []string{"T1"}}); err == nil {
		t.Fatal("non-emulated DR must fail")
	}
	if err := p.CheckProposition54(OSPFChange{BDRs: []string{"L5"}}); err == nil {
		t.Fatal("non-emulated BDR must fail")
	}
}

func TestAlgorithm1UpwardClosure(t *testing.T) {
	n := figure7()
	got, err := FindSafeDCBoundary(n, []string{"T1"})
	if err != nil {
		t.Fatal(err)
	}
	want := set("T1", "L1", "L2", "S1", "S2")
	if len(got) != len(want) {
		t.Fatalf("emulated = %v, want %v", got, want)
	}
	for name := range want {
		if !got[name] {
			t.Fatalf("missing %s", name)
		}
	}
	// The resulting plan is safe.
	p, _ := BuildPlan(n, got)
	if err := p.CheckSafe(); err != nil {
		t.Fatalf("Algorithm 1 output unsafe: %v", err)
	}
	if res := p.SimulatePropagation(); !res.Safe {
		t.Fatalf("Lemma checker rejected Algorithm 1 output: %v", res.Counterexample)
	}
}

func TestAlgorithm1UnknownDevice(t *testing.T) {
	if _, err := FindSafeDCBoundary(figure7(), []string{"zz"}); err == nil {
		t.Fatal("unknown must-have accepted")
	}
}

func TestTable4OnePod(t *testing.T) {
	// Table 4 Case-1 on the full L-DC shape: one pod's upward closure is
	// 4 borders, 64 spines, 4 leaves, 16 ToRs — under 2% of the fabric.
	n := topo.GenerateClos(topo.LDC())
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	emu, err := FindSafeDCBoundary(n, must)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BuildPlan(n, emu)
	if err != nil {
		t.Fatal(err)
	}
	s := p.Scale()
	if s.LayerCounts[topo.LayerBorder] != 4 || s.LayerCounts[topo.LayerSpine] != 64 ||
		s.LayerCounts[topo.LayerLeaf] != 4 || s.LayerCounts[topo.LayerToR] != 16 {
		t.Fatalf("Table 4 row 1 mismatch: %v", s.LayerCounts)
	}
	if s.TotalEmulated != 88 {
		t.Fatalf("total = %d, want 88", s.TotalEmulated)
	}
	if s.Proportion > 0.02 {
		t.Fatalf("proportion = %.4f, paper says <= 2%%", s.Proportion)
	}
	if err := p.CheckSafe(); err != nil {
		t.Fatalf("one-pod boundary unsafe: %v", err)
	}
}

func TestTable4AllSpines(t *testing.T) {
	// Table 4 Case-2: emulate the whole spine layer; closure adds borders.
	n := topo.GenerateClos(topo.LDC())
	var must []string
	for _, d := range n.DevicesByLayer(topo.LayerSpine) {
		must = append(must, d.Name)
	}
	emu, err := FindSafeDCBoundary(n, must)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := BuildPlan(n, emu)
	s := p.Scale()
	if s.LayerCounts[topo.LayerSpine] != 128 || s.LayerCounts[topo.LayerBorder] != 8 {
		t.Fatalf("Table 4 row 2 mismatch: %v", s.LayerCounts)
	}
	if s.LayerCounts[topo.LayerLeaf] != 0 || s.LayerCounts[topo.LayerToR] != 0 {
		t.Fatalf("no leaves/ToRs expected: %v", s.LayerCounts)
	}
	if s.Proportion > 0.03 {
		t.Fatalf("proportion = %.4f, paper says <= 3%%", s.Proportion)
	}
}

func TestScaleVMEstimate(t *testing.T) {
	n := figure7()
	p, _ := BuildPlan(n, set("T1", "T2", "L1", "L2", "S1", "S2"))
	s := p.Scale()
	// 6 devices -> 1 VM; speakers (T3? no...) — speakers here: T3/T4 touch
	// nothing emulated... L3..L6 touch S1/S2: 4 speakers -> 1 VM.
	if s.VMs != 2 {
		t.Fatalf("VMs = %d (emulated %d, speakers %d)", s.VMs, s.TotalEmulated, s.Speakers)
	}
	if s.TotalEmulated != 6 || s.Proportion <= 0 {
		t.Fatalf("scale = %+v", s)
	}
}

func TestCostReductionOver90Percent(t *testing.T) {
	// §1/§8.4: safe boundaries cut emulation cost by >90% for the one-pod
	// case versus emulating the whole L-DC.
	n := topo.GenerateClos(topo.LDC())
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	emu, _ := FindSafeDCBoundary(n, must)
	p, _ := BuildPlan(n, emu)
	partVMs := p.Scale().VMs

	full := map[string]bool{}
	for _, d := range n.Devices() {
		full[d.Name] = true
	}
	pf, _ := BuildPlan(n, full)
	fullVMs := pf.Scale().VMs
	if float64(partVMs) > 0.1*float64(fullVMs) {
		t.Fatalf("one-pod VMs = %d vs full %d; want >90%% reduction", partVMs, fullVMs)
	}
}

func BenchmarkAlgorithm1OnLDC(b *testing.B) {
	n := topo.GenerateClos(topo.LDC())
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		emu, err := FindSafeDCBoundary(n, must)
		if err != nil || len(emu) != 88 {
			b.Fatalf("%v %d", err, len(emu))
		}
	}
}

func BenchmarkProposition53OnLDCPod(b *testing.B) {
	n := topo.GenerateClos(topo.LDC())
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	emu, _ := FindSafeDCBoundary(n, must)
	p, _ := BuildPlan(n, emu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.CheckProposition53(); err != nil {
			b.Fatal(err)
		}
	}
}
