// Package boundary implements CrystalNet's safe static emulation boundary
// theory (§5): classifying devices into internal/boundary/speaker/excluded
// roles, the Lemma 5.1 propagation checker, the Proposition 5.2/5.3
// sufficient conditions for BGP networks, the Proposition 5.4 condition for
// OSPF, and Algorithm 1's upward-BFS boundary search for Clos datacenters.
//
// Getting this right is what lets an emulation replace external routers
// with static speakers (internal/speaker) while staying consistent with the
// real network under arbitrary changes to the emulated devices — and what
// cuts emulation cost by >90% (§8.4, Table 4).
//
// DESIGN.md §2 (core layer) and §3 (Figure 7, Table 4) map the theory to
// experiments.
package boundary

import (
	"fmt"
	"sort"

	"crystalnet/internal/topo"
)

// Plan classifies every device of a topology relative to an emulated set.
type Plan struct {
	Network *topo.Network
	// Emulated is the full set of emulated device names (internal +
	// boundary).
	Emulated map[string]bool
	// Internal devices have only emulated neighbors.
	Internal []string
	// Boundary devices have at least one non-emulated neighbor.
	Boundary []string
	// Speakers are the non-emulated devices directly connected to boundary
	// devices; they run the static speaker image.
	Speakers []string
	// Excluded devices are neither emulated nor speakers.
	Excluded []string
}

// BuildPlan classifies devices. Unknown names in emulated are an error.
func BuildPlan(n *topo.Network, emulated map[string]bool) (*Plan, error) {
	for name := range emulated {
		if n.Device(name) == nil {
			return nil, fmt.Errorf("boundary: emulated device %q not in topology", name)
		}
	}
	p := &Plan{Network: n, Emulated: emulated}
	speakerSet := map[string]bool{}
	for _, d := range n.Devices() {
		if emulated[d.Name] {
			isBoundary := false
			for _, nb := range d.Neighbors() {
				if !emulated[nb.Name] {
					isBoundary = true
					break
				}
			}
			if isBoundary {
				p.Boundary = append(p.Boundary, d.Name)
			} else {
				p.Internal = append(p.Internal, d.Name)
			}
			continue
		}
		for _, nb := range d.Neighbors() {
			if emulated[nb.Name] {
				speakerSet[d.Name] = true
				break
			}
		}
	}
	for _, d := range n.Devices() {
		if !emulated[d.Name] {
			if speakerSet[d.Name] {
				p.Speakers = append(p.Speakers, d.Name)
			} else {
				p.Excluded = append(p.Excluded, d.Name)
			}
		}
	}
	sort.Strings(p.Internal)
	sort.Strings(p.Boundary)
	sort.Strings(p.Speakers)
	sort.Strings(p.Excluded)
	return p, nil
}

// CheckProposition52 applies the paper's Proposition 5.2: the boundary is
// safe if all boundary devices share a single AS and all speaker devices
// are in distinct ASes. A nil error means the condition holds.
func (p *Plan) CheckProposition52() error {
	var as uint32
	for i, name := range p.Boundary {
		d := p.Network.MustDevice(name)
		if i == 0 {
			as = d.ASN
		} else if d.ASN != as {
			return fmt.Errorf("boundary: device %s is in AS %d, boundary spans multiple ASes (%d)", name, d.ASN, as)
		}
	}
	seen := map[uint32]string{}
	for _, name := range p.Speakers {
		d := p.Network.MustDevice(name)
		if len(p.Boundary) > 0 && d.ASN == as {
			// §5.2 assumes speakers sit in external ASes distinct from the
			// boundary AS; a speaker inside it would accept boundary-originated
			// updates back across the cut.
			return fmt.Errorf("boundary: speaker %s is in the boundary AS %d", name, d.ASN)
		}
		if prev, dup := seen[d.ASN]; dup {
			return fmt.Errorf("boundary: speakers %s and %s share AS %d", prev, name, d.ASN)
		}
		seen[d.ASN] = name
	}
	return nil
}

// CheckProposition53 applies Proposition 5.3: the boundary is safe if
// boundary devices are in ASes with no reachability to each other through
// external (non-emulated) networks. It searches for an external-only path
// between boundary devices of different ASes.
func (p *Plan) CheckProposition53() error {
	// For each boundary device, flood through non-emulated devices and see
	// which other boundary devices are reachable.
	for _, start := range p.Boundary {
		sd := p.Network.MustDevice(start)
		reached := p.externalReach(start)
		for _, other := range reached {
			od := p.Network.MustDevice(other)
			if od.ASN != sd.ASN {
				return fmt.Errorf("boundary: %s (AS %d) reaches %s (AS %d) via external networks", start, sd.ASN, other, od.ASN)
			}
		}
	}
	return nil
}

// externalReach returns boundary devices reachable from start via paths
// whose intermediate hops are all non-emulated.
func (p *Plan) externalReach(start string) []string {
	visited := map[string]bool{start: true}
	var queue []string
	// Seed with external neighbors of start.
	for _, nb := range p.Network.MustDevice(start).Neighbors() {
		if !p.Emulated[nb.Name] && !visited[nb.Name] {
			visited[nb.Name] = true
			queue = append(queue, nb.Name)
		}
	}
	var out []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range p.Network.MustDevice(cur).Neighbors() {
			if visited[nb.Name] {
				continue
			}
			visited[nb.Name] = true
			if p.Emulated[nb.Name] {
				// Re-entered the emulation: only boundary devices can be
				// adjacent to externals.
				out = append(out, nb.Name)
				continue
			}
			queue = append(queue, nb.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CheckSafe reports whether either sufficient condition (5.2 or 5.3)
// certifies the boundary safe, with the reasons when neither does.
func (p *Plan) CheckSafe() error {
	err52 := p.CheckProposition52()
	if err52 == nil {
		return nil
	}
	err53 := p.CheckProposition53()
	if err53 == nil {
		return nil
	}
	return fmt.Errorf("boundary unsafe: prop 5.2: %v; prop 5.3: %v", err52, err53)
}

// OSPFChange describes a planned change set for Proposition 5.4.
type OSPFChange struct {
	// ChangedLinks lists device-name pairs whose link state may change
	// during validation.
	ChangedLinks [][2]string
	// DRs and BDRs name the designated and backup designated routers of
	// every segment in the OSPF area.
	DRs, BDRs []string
}

// CheckProposition54 applies Proposition 5.4: an OSPF boundary is safe if
// no changed link touches a speaker (links between boundary and speaker
// devices remain unchanged) and every DR and BDR is emulated.
func (p *Plan) CheckProposition54(ch OSPFChange) error {
	for _, l := range ch.ChangedLinks {
		for _, end := range l {
			if !p.Emulated[end] {
				return fmt.Errorf("boundary: changed link %s-%s touches non-emulated device %s", l[0], l[1], end)
			}
		}
	}
	for _, dr := range ch.DRs {
		if !p.Emulated[dr] {
			return fmt.Errorf("boundary: DR %s is not emulated", dr)
		}
	}
	for _, bdr := range ch.BDRs {
		if !p.Emulated[bdr] {
			return fmt.Errorf("boundary: BDR %s is not emulated", bdr)
		}
	}
	return nil
}

// PropagationResult is the outcome of the Lemma 5.1 exhaustive check.
type PropagationResult struct {
	Safe bool
	// Counterexample is a device walk that exits and re-enters the
	// emulated region (empty when safe).
	Counterexample []string
}

// SimulatePropagation exhaustively checks Lemma 5.1 on the topology: a
// boundary is safe iff no route update originated at an emulated device can
// cross the boundary more than once. Updates propagate device-to-device,
// never entering an AS already on their path (BGP loop prevention, §5.2).
//
// The walk enumeration is exponential in the worst case; use it on
// scenario-scale networks (like Figure 7), not full datacenters — that is
// what Propositions 5.2/5.3 are for.
func (p *Plan) SimulatePropagation() PropagationResult {
	for _, origin := range append(append([]string{}, p.Internal...), p.Boundary...) {
		d := p.Network.MustDevice(origin)
		path := []string{origin}
		asSeen := map[uint32]bool{d.ASN: true}
		if ce := p.walk(d, asSeen, false, path); ce != nil {
			return PropagationResult{Safe: false, Counterexample: ce}
		}
	}
	return PropagationResult{Safe: true}
}

// walk explores update propagation from cur. exited notes whether the
// update has already left the emulated region. It returns a counterexample
// walk if the update re-enters after exiting.
func (p *Plan) walk(cur *topo.Device, asSeen map[uint32]bool, exited bool, path []string) []string {
	for _, nb := range cur.Neighbors() {
		if asSeen[nb.ASN] {
			continue // receiver-side loop prevention drops it
		}
		nbEmulated := p.Emulated[nb.Name]
		if exited && nbEmulated {
			// Crossed out and back in: the static speakers would have had
			// to react — unsafe.
			return append(append([]string{}, path...), nb.Name)
		}
		asSeen[nb.ASN] = true
		ce := p.walk(nb, asSeen, exited || !nbEmulated, append(path, nb.Name))
		delete(asSeen, nb.ASN)
		if ce != nil {
			return ce
		}
	}
	return nil
}

// FindSafeDCBoundary is Algorithm 1: given the devices operators must
// emulate, walk every child-to-parent edge up to the highest layer and
// return the full emulated set. The output is safe for Clos fabrics whose
// border layer shares one AS (§5.2).
func FindSafeDCBoundary(n *topo.Network, must []string) (map[string]bool, error) {
	out := map[string]bool{}
	queue := make([]*topo.Device, 0, len(must))
	for _, name := range must {
		d := n.Device(name)
		if d == nil {
			return nil, fmt.Errorf("boundary: unknown device %q", name)
		}
		if d.Layer == topo.LayerExternal {
			return nil, fmt.Errorf("boundary: device %q is external (layer %s); external devices are replaced by speakers, not emulated", name, d.Layer)
		}
		queue = append(queue, d)
	}
	highest := n.HighestLayer()
	inQueue := map[string]bool{}
	for _, d := range queue {
		inQueue[d.Name] = true
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		out[d.Name] = true
		if d.Layer >= highest {
			continue
		}
		for _, up := range n.UpperNeighbors(d) {
			if up.Layer == topo.LayerExternal {
				continue
			}
			if !inQueue[up.Name] && !out[up.Name] {
				inQueue[up.Name] = true
				queue = append(queue, up)
			}
		}
	}
	return out, nil
}

// Scale summarizes an emulation plan's resource footprint (Table 4 and the
// §8.4 cost argument).
type Scale struct {
	Internal, Boundary, Speakers int
	TotalEmulated                int
	// Proportion of the topology's non-external devices that are emulated.
	Proportion float64
	// VMs estimates hosting: devicesPerVM full devices, speakersPerVM
	// lightweight speakers (§8.4: "a single VM can support at least 50").
	VMs int
	// LayerCounts breaks emulated devices down by layer (the Table 4 rows).
	LayerCounts map[topo.Layer]int
}

// DevicesPerVM and SpeakersPerVM are the §6.1/§8.4 packing densities.
const (
	DevicesPerVM  = 10
	SpeakersPerVM = 50
)

// Scale computes the plan's footprint.
func (p *Plan) Scale() Scale {
	s := Scale{
		Internal: len(p.Internal), Boundary: len(p.Boundary), Speakers: len(p.Speakers),
		TotalEmulated: len(p.Internal) + len(p.Boundary),
		LayerCounts:   map[topo.Layer]int{},
	}
	total := 0
	for _, d := range p.Network.Devices() {
		if d.Layer != topo.LayerExternal {
			total++
		}
	}
	if total > 0 {
		s.Proportion = float64(s.TotalEmulated) / float64(total)
	}
	for name := range p.Emulated {
		s.LayerCounts[p.Network.MustDevice(name).Layer]++
	}
	s.VMs = (s.TotalEmulated+DevicesPerVM-1)/DevicesPerVM + (s.Speakers+SpeakersPerVM-1)/SpeakersPerVM
	return s
}
