package boundary

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"crystalnet/internal/parallel"
	"crystalnet/internal/topo"
)

// DefaultVMHourlyUSD mirrors cloud.SKUStandard.PricePerHour so the solver's
// dollar objective matches cloud.HourlyCostUSD without importing the cloud
// package (which would invert the dependency order).
const DefaultVMHourlyUSD = 0.20

// Certificate names which safety argument admitted a plan.
type Certificate string

const (
	// CertProp52 — single boundary AS, distinct speaker ASes (Prop 5.2).
	CertProp52 Certificate = "prop-5.2"
	// CertProp53 — no cross-AS external reachability between boundary
	// devices (Prop 5.3).
	CertProp53 Certificate = "prop-5.3"
	// CertLemma51 — exhaustive Lemma 5.1 propagation walk (scenario-scale
	// topologies only).
	CertLemma51 Certificate = "lemma-5.1"
)

// Certify returns the first certificate that admits the plan, trying the
// cheap sufficient conditions (5.2, then 5.3) before falling back to the
// exhaustive Lemma 5.1 walk — and only when the topology has at most
// lemmaLimit devices, since the walk enumeration is exponential. A negative
// lemmaLimit disables the fallback.
func (p *Plan) Certify(lemmaLimit int) (Certificate, error) {
	err52 := p.CheckProposition52()
	if err52 == nil {
		return CertProp52, nil
	}
	err53 := p.CheckProposition53()
	if err53 == nil {
		return CertProp53, nil
	}
	if lemmaLimit >= 0 && p.Network.NumDevices() <= lemmaLimit {
		if r := p.SimulatePropagation(); r.Safe {
			return CertLemma51, nil
		} else {
			return "", fmt.Errorf("boundary unsafe: prop 5.2: %v; prop 5.3: %v; lemma 5.1 counterexample: %s",
				err52, err53, strings.Join(r.Counterexample, " -> "))
		}
	}
	return "", fmt.Errorf("boundary unsafe: prop 5.2: %v; prop 5.3: %v", err52, err53)
}

// SolveOptions tunes the boundary solver. The zero value picks sane
// defaults; every field is optional.
type SolveOptions struct {
	// Seed drives tie-breaking between solutions of identical cost. The
	// same seed always yields the same ranking (byte-identical reports).
	Seed int64
	// Workers bounds the pool evaluating candidates (default GOMAXPROCS).
	// The result is identical for any worker count.
	Workers int
	// MaxAlternatives caps the ranked near-optimal list (default 3).
	MaxAlternatives int
	// LemmaLimit is the largest topology (device count) on which the
	// solver falls back to the exhaustive Lemma 5.1 walk when Props
	// 5.2/5.3 both fail. Default 32; negative disables the fallback.
	LemmaLimit int
	// ShrinkLimit is the largest candidate (emulated device count) the
	// greedy shrink pass will try to minimize further. Default 64;
	// negative disables shrinking.
	ShrinkLimit int
	// VMHourlyUSD prices one VM-hour (default DefaultVMHourlyUSD).
	VMHourlyUSD float64
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.MaxAlternatives == 0 {
		o.MaxAlternatives = 3
	}
	if o.MaxAlternatives < 0 {
		o.MaxAlternatives = 0
	}
	if o.LemmaLimit == 0 {
		o.LemmaLimit = 32
	}
	if o.ShrinkLimit == 0 {
		o.ShrinkLimit = 64
	}
	if o.VMHourlyUSD <= 0 {
		o.VMHourlyUSD = DefaultVMHourlyUSD
	}
	return o
}

// Solution is one certified-safe emulation plan the solver found.
type Solution struct {
	// Strategy names the candidate generator that produced the emulated
	// set: "closure:<layer>" (upward closure capped at a layer), or
	// "full" (every non-external device). A "+shrink" suffix marks sets
	// the greedy minimizer reduced further.
	Strategy    string
	Certificate Certificate
	// Plan is omitted from JSON: topologies are cyclic (device ↔ interface
	// back-pointers) and the sorted Emulated list already identifies it.
	Plan      *Plan `json:"-"`
	Scale     Scale
	HourlyUSD float64
	// Emulated is the sorted emulated set — the exact-set payload for
	// scenario specs (spec "emulate") and the /v1/plan response.
	Emulated []string
}

// key is the canonical identity of a solution's emulated set.
func (s *Solution) key() string { return strings.Join(s.Emulated, ",") }

// SolveResult is the solver's ranked output.
type SolveResult struct {
	Network string
	Targets []string
	Seed    int64
	Best    Solution
	// Alternatives are the remaining distinct safe solutions in rank
	// order (best first), capped at MaxAlternatives.
	Alternatives []Solution
	// Full-emulation baseline for the §8.4 cost-reduction claim.
	FullDevices   int
	FullVMs       int
	FullHourlyUSD float64
	// CostReduction is 1 - Best VMs / full VMs.
	CostReduction float64
	// Candidates and SafeCount count evaluated candidate sets and how
	// many were certified safe.
	Candidates, SafeCount int
}

// Solve searches for the cheapest certified-safe emulated set containing
// targets. Candidates are the layer-capped upward closures of the target
// set (Algorithm 1's BFS stopped at each layer from the highest target
// layer up — the top cap reproduces Algorithm 1 exactly) plus full
// emulation; each is certified via Prop 5.2, Prop 5.3, or the Lemma 5.1
// walk on scenario-scale inputs, then greedily minimized device-by-device
// while safety holds. Solutions are ranked by VM count, then emulated
// devices, then speakers, with seeded hash tie-breaks, so the result is
// deterministic for a (network, targets, seed) triple across any worker
// count.
func Solve(n *topo.Network, targets []string, opts SolveOptions) (*SolveResult, error) {
	opts = opts.withDefaults()
	if len(targets) == 0 {
		return nil, fmt.Errorf("boundary: solve needs at least one target device")
	}
	targetSet := map[string]bool{}
	maxLayer := topo.LayerHost
	for _, name := range targets {
		d := n.Device(name)
		if d == nil {
			return nil, fmt.Errorf("boundary: unknown device %q", name)
		}
		if d.Layer == topo.LayerExternal {
			return nil, fmt.Errorf("boundary: device %q is external (layer %s); external devices are replaced by speakers, not emulated", name, d.Layer)
		}
		targetSet[name] = true
		if d.Layer > maxLayer {
			maxLayer = d.Layer
		}
	}

	type candidate struct {
		strategy string
		emulated map[string]bool
	}
	var cands []candidate
	seenSets := map[string]bool{}
	add := func(strategy string, emu map[string]bool) {
		key := setKey(emu)
		if seenSets[key] {
			return
		}
		seenSets[key] = true
		cands = append(cands, candidate{strategy, emu})
	}
	for cap := maxLayer; cap <= n.HighestLayer(); cap++ {
		add("closure:"+cap.String(), cappedClosure(n, targetSet, cap))
	}
	full := map[string]bool{}
	for _, d := range n.Devices() {
		if d.Layer != topo.LayerExternal {
			full[d.Name] = true
		}
	}
	add("full", full)

	sols := parallel.Map(len(cands), opts.Workers, func(i int) *Solution {
		return evaluate(n, targetSet, cands[i].strategy, cands[i].emulated, opts)
	})

	fullPlan, err := BuildPlan(n, full)
	if err != nil {
		return nil, err
	}
	fullScale := fullPlan.Scale()

	res := &SolveResult{
		Network:       n.Name,
		Targets:       append([]string(nil), targets...),
		Seed:          opts.Seed,
		FullDevices:   fullScale.TotalEmulated,
		FullVMs:       fullScale.VMs,
		FullHourlyUSD: float64(fullScale.VMs) * opts.VMHourlyUSD,
		Candidates:    len(cands),
	}
	sort.Strings(res.Targets)

	var safe []*Solution
	seenSafe := map[string]bool{}
	for _, s := range sols {
		if s == nil {
			continue
		}
		res.SafeCount++
		if seenSafe[s.key()] {
			continue
		}
		seenSafe[s.key()] = true
		safe = append(safe, s)
	}
	if len(safe) == 0 {
		// Cannot happen on well-formed topologies: full emulation has no
		// boundary (or a single-AS border boundary with distinct external
		// speaker ASes) and always certifies.
		return nil, fmt.Errorf("boundary: no certified-safe emulated set found for targets %v", res.Targets)
	}
	sort.Slice(safe, func(i, j int) bool { return less(safe[i], safe[j], opts.Seed) })
	res.Best = *safe[0]
	for _, s := range safe[1:] {
		if len(res.Alternatives) >= opts.MaxAlternatives {
			break
		}
		res.Alternatives = append(res.Alternatives, *s)
	}
	res.CostReduction = 1 - float64(res.Best.Scale.VMs)/float64(res.FullVMs)
	return res, nil
}

// less is the solver's total order: fewest VMs, then fewest emulated
// devices, then fewest speakers, then a seeded hash of the emulated set,
// then the set itself, then the strategy label. Total, so sorting is
// deterministic regardless of candidate evaluation order.
func less(a, b *Solution, seed int64) bool {
	if a.Scale.VMs != b.Scale.VMs {
		return a.Scale.VMs < b.Scale.VMs
	}
	if a.Scale.TotalEmulated != b.Scale.TotalEmulated {
		return a.Scale.TotalEmulated < b.Scale.TotalEmulated
	}
	if a.Scale.Speakers != b.Scale.Speakers {
		return a.Scale.Speakers < b.Scale.Speakers
	}
	ha, hb := tieHash(seed, a.key()), tieHash(seed, b.key())
	if ha != hb {
		return ha < hb
	}
	if a.key() != b.key() {
		return a.key() < b.key()
	}
	return a.Strategy < b.Strategy
}

// evaluate certifies one candidate set and, when small enough, greedily
// shrinks it. Returns nil when the candidate (and every shrink of it)
// cannot be certified safe.
func evaluate(n *topo.Network, targets map[string]bool, strategy string, emulated map[string]bool, opts SolveOptions) *Solution {
	plan, err := BuildPlan(n, emulated)
	if err != nil {
		return nil
	}
	cert, err := plan.Certify(opts.LemmaLimit)
	if err != nil {
		return nil
	}
	sc := plan.Scale()
	if opts.ShrinkLimit >= 0 && sc.TotalEmulated <= opts.ShrinkLimit {
		if sp, scert, ssc, shrunk := shrink(n, targets, emulated, sc, opts); shrunk {
			plan, cert, sc = sp, scert, ssc
			strategy += "+shrink"
		}
	}
	return &Solution{
		Strategy:    strategy,
		Certificate: cert,
		Plan:        plan,
		Scale:       sc,
		HourlyUSD:   float64(sc.VMs) * opts.VMHourlyUSD,
		Emulated:    sortedNames(plan.Emulated),
	}
}

// shrink removes non-target devices one at a time — in seeded-hash order —
// keeping each removal only if the smaller set still certifies safe and
// costs no more VMs. Every accepted removal strictly shrinks the set, so
// the scan-until-fixed-point loop terminates.
func shrink(n *topo.Network, targets, emulated map[string]bool, sc Scale, opts SolveOptions) (*Plan, Certificate, Scale, bool) {
	cur := map[string]bool{}
	for name := range emulated {
		cur[name] = true
	}
	var bestPlan *Plan
	var bestCert Certificate
	shrunk := false
	for improved := true; improved; {
		improved = false
		names := sortedNames(cur)
		sort.Slice(names, func(i, j int) bool {
			hi, hj := tieHash(opts.Seed, names[i]), tieHash(opts.Seed, names[j])
			if hi != hj {
				return hi < hj
			}
			return names[i] < names[j]
		})
		for _, name := range names {
			if targets[name] || !cur[name] {
				continue
			}
			try := map[string]bool{}
			for m := range cur {
				if m != name {
					try[m] = true
				}
			}
			plan, err := BuildPlan(n, try)
			if err != nil {
				continue
			}
			cert, err := plan.Certify(opts.LemmaLimit)
			if err != nil {
				continue
			}
			tsc := plan.Scale()
			if tsc.VMs > sc.VMs {
				continue
			}
			cur, sc, bestPlan, bestCert = try, tsc, plan, cert
			improved, shrunk = true, true
		}
	}
	if !shrunk {
		return nil, "", Scale{}, false
	}
	return bestPlan, bestCert, sc, true
}

// cappedClosure is Algorithm 1's upward BFS stopped at layer cap: walk
// child-to-parent edges from the targets, never expanding past cap and
// never into external devices. cap = HighestLayer reproduces
// FindSafeDCBoundary exactly.
func cappedClosure(n *topo.Network, targets map[string]bool, cap topo.Layer) map[string]bool {
	out := map[string]bool{}
	var queue []*topo.Device
	for name := range targets {
		queue = append(queue, n.MustDevice(name))
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].Name < queue[j].Name })
	inQueue := map[string]bool{}
	for _, d := range queue {
		inQueue[d.Name] = true
	}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		out[d.Name] = true
		if d.Layer >= cap {
			continue
		}
		for _, up := range n.UpperNeighbors(d) {
			if up.Layer == topo.LayerExternal || up.Layer > cap {
				continue
			}
			if !inQueue[up.Name] && !out[up.Name] {
				inQueue[up.Name] = true
				queue = append(queue, up)
			}
		}
	}
	return out
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func setKey(set map[string]bool) string { return strings.Join(sortedNames(set), ",") }

// tieHash is an FNV-1a hash of (seed, key) used for seeded tie-breaking.
func tieHash(seed int64, key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(key))
	return h.Sum64()
}

// Report renders the ranked solutions as an aligned Table-4-style text
// table. The output is byte-identical for the same (network, targets,
// seed) across runs and worker counts.
func (r *SolveResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "safe-boundary solve · network %s · %d targets · seed %d\n",
		r.Network, len(r.Targets), r.Seed)
	fmt.Fprintf(&b, "targets: %s\n", previewNames(r.Targets, 8))
	fmt.Fprintf(&b, "full emulation: %d devices · %d VMs · $%.2f/h\n",
		r.FullDevices, r.FullVMs, r.FullHourlyUSD)
	fmt.Fprintf(&b, "candidates: %d evaluated · %d safe\n\n", r.Candidates, r.SafeCount)

	header := []string{"rank", "strategy", "cert", "#brd", "#spn", "#leaf", "#tor", "#other", "#dev", "#spk", "prop", "VMs", "$/h", "saved"}
	rows := [][]string{solutionRow("best", r.Best, r.FullVMs)}
	for i, s := range r.Alternatives {
		rows = append(rows, solutionRow(fmt.Sprintf("alt-%d", i+1), s, r.FullVMs))
	}
	b.WriteString(alignedTable(header, rows))
	return b.String()
}

func solutionRow(rank string, s Solution, fullVMs int) []string {
	lc := s.Scale.LayerCounts
	other := s.Scale.TotalEmulated
	for _, l := range []topo.Layer{topo.LayerBorder, topo.LayerSpine, topo.LayerLeaf, topo.LayerToR} {
		other -= lc[l]
	}
	return []string{
		rank, s.Strategy, string(s.Certificate),
		fmt.Sprintf("%d", lc[topo.LayerBorder]), fmt.Sprintf("%d", lc[topo.LayerSpine]),
		fmt.Sprintf("%d", lc[topo.LayerLeaf]), fmt.Sprintf("%d", lc[topo.LayerToR]),
		fmt.Sprintf("%d", other),
		fmt.Sprintf("%d", s.Scale.TotalEmulated), fmt.Sprintf("%d", s.Scale.Speakers),
		fmt.Sprintf("%.1f%%", s.Scale.Proportion*100),
		fmt.Sprintf("%d", s.Scale.VMs),
		fmt.Sprintf("$%.2f", s.HourlyUSD),
		fmt.Sprintf("%.1f%%", (1-float64(s.Scale.VMs)/float64(fullVMs))*100),
	}
}

// previewNames joins up to max names, eliding the rest with a count.
func previewNames(names []string, max int) string {
	if len(names) <= max {
		return strings.Join(names, ",")
	}
	return strings.Join(names[:max], ",") + fmt.Sprintf(",… (+%d more)", len(names)-max)
}

// alignedTable mirrors the experiments-package table renderer (kept local:
// experiments imports boundary, not the other way around).
func alignedTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}
