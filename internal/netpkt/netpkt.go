// Package netpkt implements the binary wire formats CrystalNet's virtual
// physical network carries: Ethernet II frames, ARP, IPv4, UDP, ICMP and
// VXLAN (RFC 7348) encapsulation.
//
// The emulator encodes every packet that crosses a virtual link to real
// bytes and decodes it on the far side, exactly as the paper's veth/bridge/
// VXLAN data plane does (§4.2). This keeps device firmware honest: a
// firmware bug that corrupts a header corrupts it on the wire.
//
// DESIGN.md §2 (substrates) places the wire formats in the system inventory.
package netpkt

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is the all-ones Ethernet broadcast address.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether m is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsZero reports whether m is the all-zero address.
func (m MAC) IsZero() bool { return m == MAC{} }

// IP is an IPv4 address in host-independent big-endian form.
type IP uint32

// IPFromBytes builds an IP from 4 octets.
func IPFromBytes(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseIP parses dotted-quad notation. It returns an error for anything that
// is not exactly four octets in range.
func ParseIP(s string) (IP, error) {
	var parts [4]uint32
	idx := 0
	cur := uint32(0)
	digits := 0
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch >= '0' && ch <= '9':
			cur = cur*10 + uint32(ch-'0')
			digits++
			if cur > 255 || digits > 3 {
				return 0, fmt.Errorf("netpkt: invalid IPv4 %q", s)
			}
		case ch == '.':
			if digits == 0 || idx >= 3 {
				return 0, fmt.Errorf("netpkt: invalid IPv4 %q", s)
			}
			parts[idx] = cur
			idx++
			cur, digits = 0, 0
		default:
			return 0, fmt.Errorf("netpkt: invalid IPv4 %q", s)
		}
	}
	if idx != 3 || digits == 0 {
		return 0, fmt.Errorf("netpkt: invalid IPv4 %q", s)
	}
	parts[3] = cur
	return IP(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseIP is ParseIP that panics on error; for constants in tests and
// generators.
func MustParseIP(s string) IP {
	ip, err := ParseIP(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String formats the address as a dotted quad.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Octets returns the four address octets, most significant first.
func (ip IP) Octets() [4]byte {
	return [4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)}
}

// Prefix is an IPv4 CIDR prefix.
type Prefix struct {
	Addr IP
	Len  uint8
}

// ParsePrefix parses "a.b.c.d/len". The address is masked to the prefix
// length, so "10.0.1.1/24" yields 10.0.1.0/24.
func ParsePrefix(s string) (Prefix, error) {
	slash := -1
	for i := 0; i < len(s); i++ {
		if s[i] == '/' {
			slash = i
			break
		}
	}
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netpkt: prefix %q missing /len", s)
	}
	ip, err := ParseIP(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l := 0
	for i := slash + 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return Prefix{}, fmt.Errorf("netpkt: invalid prefix length in %q", s)
		}
		l = l*10 + int(s[i]-'0')
		if l > 32 {
			return Prefix{}, fmt.Errorf("netpkt: prefix length %d > 32 in %q", l, s)
		}
	}
	if slash+1 >= len(s) {
		return Prefix{}, fmt.Errorf("netpkt: empty prefix length in %q", s)
	}
	p := Prefix{Addr: ip, Len: uint8(l)}
	p.Addr = p.Addr & p.MaskIP()
	return p, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// MaskIP returns the netmask of the prefix as an IP.
func (p Prefix) MaskIP() IP {
	if p.Len == 0 {
		return 0
	}
	return IP(^uint32(0) << (32 - p.Len))
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip IP) bool {
	return ip&p.MaskIP() == p.Addr&p.MaskIP()
}

// ContainsPrefix reports whether q is fully inside p (p is a supernet of q,
// or equal).
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Len >= p.Len && p.Contains(q.Addr)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string { return fmt.Sprintf("%s/%d", p.Addr, p.Len) }

// EtherType values used by the emulator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// IP protocol numbers used by the emulator.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	ProtoOSPF uint8 = 89
)

// VXLANPort is the IANA-assigned UDP destination port for VXLAN.
const VXLANPort = 4789

var (
	// ErrTruncated indicates a packet shorter than its header demands.
	ErrTruncated = errors.New("netpkt: truncated packet")
	// ErrBadChecksum indicates an IPv4 header checksum mismatch.
	ErrBadChecksum = errors.New("netpkt: bad IPv4 header checksum")
	// ErrBadVersion indicates a non-IPv4 version nibble.
	ErrBadVersion = errors.New("netpkt: unsupported IP version")
)

// EthernetFrame is an Ethernet II frame.
type EthernetFrame struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
	Payload   []byte
}

const ethernetHeaderLen = 14

// EthernetHeaderLen is the wire size of an Ethernet II header — the
// headroom senders reserve when building a frame in a single buffer.
const EthernetHeaderLen = ethernetHeaderLen

// PutEthernetHeader encodes an Ethernet II header into b[:14].
func PutEthernetHeader(b []byte, dst, src MAC, etherType uint16) {
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:14], etherType)
}

// Marshal encodes the frame to wire bytes.
func (f *EthernetFrame) Marshal() []byte {
	b := make([]byte, ethernetHeaderLen+len(f.Payload))
	PutEthernetHeader(b, f.Dst, f.Src, f.EtherType)
	copy(b[14:], f.Payload)
	return b
}

// UnmarshalEthernet decodes an Ethernet II frame. The returned frame's
// Payload aliases b.
func UnmarshalEthernet(b []byte) (*EthernetFrame, error) {
	if len(b) < ethernetHeaderLen {
		return nil, ErrTruncated
	}
	f := &EthernetFrame{EtherType: binary.BigEndian.Uint16(b[12:14]), Payload: b[14:]}
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	return f, nil
}

// ARP opcodes.
const (
	ARPRequest uint16 = 1
	ARPReply   uint16 = 2
)

// ARPPacket is an IPv4-over-Ethernet ARP packet.
type ARPPacket struct {
	Op        uint16
	SenderMAC MAC
	SenderIP  IP
	TargetMAC MAC
	TargetIP  IP
}

const arpLen = 28

// Marshal encodes the ARP packet.
func (a *ARPPacket) Marshal() []byte {
	b := make([]byte, arpLen)
	binary.BigEndian.PutUint16(b[0:2], 1)                    // HTYPE: Ethernet
	binary.BigEndian.PutUint16(b[2:4], EtherTypeIPv4)        // PTYPE
	b[4], b[5] = 6, 4                                        // HLEN, PLEN
	binary.BigEndian.PutUint16(b[6:8], a.Op)                 // OPER
	copy(b[8:14], a.SenderMAC[:])                            // SHA
	binary.BigEndian.PutUint32(b[14:18], uint32(a.SenderIP)) // SPA
	copy(b[18:24], a.TargetMAC[:])                           // THA
	binary.BigEndian.PutUint32(b[24:28], uint32(a.TargetIP)) // TPA
	return b
}

// UnmarshalARP decodes an ARP packet.
func UnmarshalARP(b []byte) (*ARPPacket, error) {
	if len(b) < arpLen {
		return nil, ErrTruncated
	}
	a := &ARPPacket{
		Op:       binary.BigEndian.Uint16(b[6:8]),
		SenderIP: IP(binary.BigEndian.Uint32(b[14:18])),
		TargetIP: IP(binary.BigEndian.Uint32(b[24:28])),
	}
	copy(a.SenderMAC[:], b[8:14])
	copy(a.TargetMAC[:], b[18:24])
	return a, nil
}

// IPv4Packet is an IPv4 datagram without options.
type IPv4Packet struct {
	TOS      uint8
	ID       uint16
	TTL      uint8
	Protocol uint8
	Src      IP
	Dst      IP
	Payload  []byte
}

const ipv4HeaderLen = 20

// PutIPv4Header encodes an option-less IPv4 header for a payload of plen
// bytes into b[:20], computing the checksum. b may be dirty; every header
// byte is written.
func PutIPv4Header(b []byte, tos uint8, id uint16, ttl, proto uint8, src, dst IP, plen int) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = tos
	binary.BigEndian.PutUint16(b[2:4], uint16(ipv4HeaderLen+plen))
	binary.BigEndian.PutUint16(b[4:6], id)
	b[6], b[7] = 0, 0 // flags/fragment offset
	b[8] = ttl
	b[9] = proto
	b[10], b[11] = 0, 0 // checksum, computed below
	binary.BigEndian.PutUint32(b[12:16], uint32(src))
	binary.BigEndian.PutUint32(b[16:20], uint32(dst))
	binary.BigEndian.PutUint16(b[10:12], Checksum(b[:ipv4HeaderLen]))
}

// Marshal encodes the datagram, computing the header checksum.
func (p *IPv4Packet) Marshal() []byte {
	b := make([]byte, ipv4HeaderLen+len(p.Payload))
	PutIPv4Header(b, p.TOS, p.ID, p.TTL, p.Protocol, p.Src, p.Dst, len(p.Payload))
	copy(b[ipv4HeaderLen:], p.Payload)
	return b
}

// MarshalFramed encodes the datagram like Marshal, but leaves room bytes of
// headroom in front of the IP header, so an outer header (typically
// Ethernet) can be filled into the same buffer later without re-copying the
// packet.
func (p *IPv4Packet) MarshalFramed(room int) []byte {
	b := make([]byte, room+ipv4HeaderLen+len(p.Payload))
	PutIPv4Header(b[room:], p.TOS, p.ID, p.TTL, p.Protocol, p.Src, p.Dst, len(p.Payload))
	copy(b[room+ipv4HeaderLen:], p.Payload)
	return b
}

// UnmarshalIPv4 decodes an IPv4 datagram, validating version, length and
// header checksum. Options are accepted and skipped. Payload aliases b.
func UnmarshalIPv4(b []byte) (*IPv4Packet, error) {
	if len(b) < ipv4HeaderLen {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < ipv4HeaderLen || len(b) < ihl {
		return nil, ErrTruncated
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return nil, ErrTruncated
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	return &IPv4Packet{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		TTL:      b[8],
		Protocol: b[9],
		Src:      IP(binary.BigEndian.Uint32(b[12:16])),
		Dst:      IP(binary.BigEndian.Uint32(b[16:20])),
		Payload:  b[ihl:total],
	}, nil
}

// Checksum computes the RFC 1071 Internet checksum of b. Computing it over a
// header with its checksum field populated yields zero iff the checksum is
// valid.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// UDPDatagram is a UDP datagram. The emulator does not compute the UDP
// checksum (legal for IPv4: all-zero means unused), matching Linux VXLAN's
// default of zero outer UDP checksums.
type UDPDatagram struct {
	SrcPort uint16
	DstPort uint16
	Payload []byte
}

const udpHeaderLen = 8

// Marshal encodes the datagram.
func (u *UDPDatagram) Marshal() []byte {
	b := make([]byte, udpHeaderLen+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	copy(b[8:], u.Payload)
	return b
}

// UnmarshalUDP decodes a UDP datagram. Payload aliases b.
func UnmarshalUDP(b []byte) (*UDPDatagram, error) {
	if len(b) < udpHeaderLen {
		return nil, ErrTruncated
	}
	l := int(binary.BigEndian.Uint16(b[4:6]))
	if l < udpHeaderLen || l > len(b) {
		return nil, ErrTruncated
	}
	return &UDPDatagram{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: b[udpHeaderLen:l],
	}, nil
}

// ICMP types used by the emulator.
const (
	ICMPEchoReply    uint8 = 0
	ICMPUnreachable  uint8 = 3
	ICMPEchoRequest  uint8 = 8
	ICMPTimeExceeded uint8 = 11
)

// ICMPMessage is an ICMP message.
type ICMPMessage struct {
	Type    uint8
	Code    uint8
	ID      uint16
	Seq     uint16
	Payload []byte
}

const icmpHeaderLen = 8

// Marshal encodes the message with a valid checksum.
func (m *ICMPMessage) Marshal() []byte {
	b := make([]byte, icmpHeaderLen+len(m.Payload))
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[4:6], m.ID)
	binary.BigEndian.PutUint16(b[6:8], m.Seq)
	copy(b[8:], m.Payload)
	binary.BigEndian.PutUint16(b[2:4], Checksum(b))
	return b
}

// UnmarshalICMP decodes an ICMP message and validates its checksum.
func UnmarshalICMP(b []byte) (*ICMPMessage, error) {
	if len(b) < icmpHeaderLen {
		return nil, ErrTruncated
	}
	if Checksum(b) != 0 {
		return nil, ErrBadChecksum
	}
	return &ICMPMessage{
		Type:    b[0],
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:6]),
		Seq:     binary.BigEndian.Uint16(b[6:8]),
		Payload: b[8:],
	}, nil
}

// VXLANHeader is the 8-byte RFC 7348 VXLAN header. Only the I flag and the
// 24-bit VNI are meaningful.
type VXLANHeader struct {
	VNI uint32
}

const vxlanHeaderLen = 8

// Marshal encodes the header followed by the inner Ethernet frame.
func (v *VXLANHeader) Marshal(inner []byte) []byte {
	b := make([]byte, vxlanHeaderLen+len(inner))
	b[0] = 0x08 // flags: I bit set
	b[4] = byte(v.VNI >> 16)
	b[5] = byte(v.VNI >> 8)
	b[6] = byte(v.VNI)
	copy(b[8:], inner)
	return b
}

// UnmarshalVXLAN decodes a VXLAN header, returning the VNI and the inner
// frame bytes (aliasing b).
func UnmarshalVXLAN(b []byte) (VXLANHeader, []byte, error) {
	if len(b) < vxlanHeaderLen {
		return VXLANHeader{}, nil, ErrTruncated
	}
	if b[0]&0x08 == 0 {
		return VXLANHeader{}, nil, errors.New("netpkt: VXLAN I flag not set")
	}
	vni := uint32(b[4])<<16 | uint32(b[5])<<8 | uint32(b[6])
	return VXLANHeader{VNI: vni}, b[8:], nil
}

// EncapVXLAN wraps an inner Ethernet frame in VXLAN/UDP/IPv4/Ethernet for
// transport over the underlay, as the paper's virtual links do (§4.2,
// Figure 5).
func EncapVXLAN(vni uint32, srcIP, dstIP IP, srcMAC, dstMAC MAC, srcPort uint16, inner []byte) []byte {
	// Build all four headers into one buffer: encap runs once per cross-VM
	// frame, so the layer-by-layer Marshal chain (four allocations and
	// copies) was a measurable slice of the mockup hot path. The wire format
	// is identical to marshaling each layer separately.
	total := ethernetHeaderLen + ipv4HeaderLen + udpHeaderLen + vxlanHeaderLen + len(inner)
	b := make([]byte, total)

	// Outer Ethernet.
	copy(b[0:6], dstMAC[:])
	copy(b[6:12], srcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], EtherTypeIPv4)

	// Outer IPv4 (no options; checksum over the populated header).
	ip := b[ethernetHeaderLen:]
	ip[0] = 0x45
	binary.BigEndian.PutUint16(ip[2:4], uint16(total-ethernetHeaderLen))
	ip[8] = 64
	ip[9] = ProtoUDP
	binary.BigEndian.PutUint32(ip[12:16], uint32(srcIP))
	binary.BigEndian.PutUint32(ip[16:20], uint32(dstIP))
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip[:ipv4HeaderLen]))

	// Outer UDP (zero checksum, as Linux VXLAN defaults).
	udp := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(udp[0:2], srcPort)
	binary.BigEndian.PutUint16(udp[2:4], VXLANPort)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+vxlanHeaderLen+len(inner)))

	// VXLAN header + inner frame.
	vx := udp[udpHeaderLen:]
	vx[0] = 0x08 // flags: I bit set
	vx[4] = byte(vni >> 16)
	vx[5] = byte(vni >> 8)
	vx[6] = byte(vni)
	copy(vx[vxlanHeaderLen:], inner)
	return b
}

// DecapVXLAN unwraps a full underlay frame produced by EncapVXLAN, returning
// the VNI and inner Ethernet frame bytes.
func DecapVXLAN(b []byte) (vni uint32, inner []byte, err error) {
	eth, err := UnmarshalEthernet(b)
	if err != nil {
		return 0, nil, err
	}
	if eth.EtherType != EtherTypeIPv4 {
		return 0, nil, fmt.Errorf("netpkt: underlay ethertype %#04x is not IPv4", eth.EtherType)
	}
	ip, err := UnmarshalIPv4(eth.Payload)
	if err != nil {
		return 0, nil, err
	}
	if ip.Protocol != ProtoUDP {
		return 0, nil, fmt.Errorf("netpkt: underlay protocol %d is not UDP", ip.Protocol)
	}
	udp, err := UnmarshalUDP(ip.Payload)
	if err != nil {
		return 0, nil, err
	}
	if udp.DstPort != VXLANPort {
		return 0, nil, fmt.Errorf("netpkt: underlay UDP port %d is not VXLAN", udp.DstPort)
	}
	hdr, inner, err := UnmarshalVXLAN(udp.Payload)
	if err != nil {
		return 0, nil, err
	}
	return hdr.VNI, inner, nil
}
