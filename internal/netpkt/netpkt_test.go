package netpkt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseIP(t *testing.T) {
	cases := []struct {
		in   string
		want IP
		ok   bool
	}{
		{"10.0.0.1", IPFromBytes(10, 0, 0, 1), true},
		{"255.255.255.255", IP(0xffffffff), true},
		{"0.0.0.0", 0, true},
		{"192.168.1.200", IPFromBytes(192, 168, 1, 200), true},
		{"256.0.0.1", 0, false},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"", 0, false},
		{"a.b.c.d", 0, false},
		{"1..2.3", 0, false},
		{"1.2.3.", 0, false},
		{"1234.1.1.1", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIP(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIP(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", c.in)
		}
	}
}

func TestIPStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IP(v)
		back, err := ParseIP(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("10.1.2.3/24")
	if p.Addr != IPFromBytes(10, 1, 2, 0) || p.Len != 24 {
		t.Fatalf("prefix = %v, want 10.1.2.0/24 (host bits masked)", p)
	}
	if p.String() != "10.1.2.0/24" {
		t.Fatalf("String = %q", p.String())
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/", "10.0.0.0/x", "/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", bad)
		}
	}
	zero := MustParsePrefix("0.0.0.0/0")
	if !zero.Contains(IPFromBytes(200, 1, 1, 1)) {
		t.Fatal("default route must contain everything")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	if !p.Contains(MustParseIP("10.1.255.1")) {
		t.Fatal("10.1.0.0/16 should contain 10.1.255.1")
	}
	if p.Contains(MustParseIP("10.2.0.1")) {
		t.Fatal("10.1.0.0/16 should not contain 10.2.0.1")
	}
	if !p.ContainsPrefix(MustParsePrefix("10.1.4.0/24")) {
		t.Fatal("10.1.0.0/16 should contain 10.1.4.0/24")
	}
	if p.ContainsPrefix(MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("/16 should not contain its /8 supernet")
	}
	if !p.ContainsPrefix(p) {
		t.Fatal("prefix should contain itself")
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	f := &EthernetFrame{
		Dst:       MAC{0, 1, 2, 3, 4, 5},
		Src:       MAC{6, 7, 8, 9, 10, 11},
		EtherType: EtherTypeIPv4,
		Payload:   []byte("hello"),
	}
	got, err := UnmarshalEthernet(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != f.Dst || got.Src != f.Src || got.EtherType != f.EtherType || !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	if _, err := UnmarshalEthernet(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("short frame error = %v, want ErrTruncated", err)
	}
}

func TestMACHelpers(t *testing.T) {
	if BroadcastMAC.String() != "ff:ff:ff:ff:ff:ff" {
		t.Fatalf("broadcast MAC string = %q", BroadcastMAC.String())
	}
	if !BroadcastMAC.IsBroadcast() || (MAC{}).IsBroadcast() {
		t.Fatal("IsBroadcast wrong")
	}
	if !(MAC{}).IsZero() || BroadcastMAC.IsZero() {
		t.Fatal("IsZero wrong")
	}
}

func TestARPRoundTrip(t *testing.T) {
	a := &ARPPacket{
		Op:        ARPRequest,
		SenderMAC: MAC{1, 2, 3, 4, 5, 6},
		SenderIP:  MustParseIP("10.0.0.1"),
		TargetIP:  MustParseIP("10.0.0.2"),
	}
	got, err := UnmarshalARP(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, a)
	}
	if _, err := UnmarshalARP(make([]byte, 27)); err != ErrTruncated {
		t.Fatal("want ErrTruncated for short ARP")
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	p := &IPv4Packet{
		TOS: 0x10, ID: 777, TTL: 63, Protocol: ProtoUDP,
		Src: MustParseIP("192.168.0.1"), Dst: MustParseIP("10.9.8.7"),
		Payload: []byte{1, 2, 3, 4},
	}
	b := p.Marshal()
	got, err := UnmarshalIPv4(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != p.Src || got.Dst != p.Dst || got.TTL != p.TTL || got.Protocol != p.Protocol ||
		got.ID != p.ID || got.TOS != p.TOS || !bytes.Equal(got.Payload, p.Payload) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestIPv4ChecksumDetection(t *testing.T) {
	p := &IPv4Packet{TTL: 64, Protocol: ProtoTCP, Src: 1, Dst: 2}
	b := p.Marshal()
	b[16] ^= 0xff // corrupt destination
	if _, err := UnmarshalIPv4(b); err != ErrBadChecksum {
		t.Fatalf("corrupted header error = %v, want ErrBadChecksum", err)
	}
}

func TestIPv4BadVersionAndTruncation(t *testing.T) {
	p := (&IPv4Packet{TTL: 1, Protocol: 6}).Marshal()
	p[0] = 0x65 // version 6
	if _, err := UnmarshalIPv4(p); err != ErrBadVersion {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
	if _, err := UnmarshalIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// Total length field larger than buffer.
	q := (&IPv4Packet{TTL: 1, Protocol: 6, Payload: []byte{1, 2, 3}}).Marshal()
	if _, err := UnmarshalIPv4(q[:len(q)-2]); err != ErrTruncated {
		t.Fatalf("want ErrTruncated for short total length, got %v", err)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	u := &UDPDatagram{SrcPort: 33333, DstPort: VXLANPort, Payload: []byte("payload")}
	got, err := UnmarshalUDP(u.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcPort != u.SrcPort || got.DstPort != u.DstPort || !bytes.Equal(got.Payload, u.Payload) {
		t.Fatal("round trip mismatch")
	}
	if _, err := UnmarshalUDP([]byte{0, 0, 0}); err != ErrTruncated {
		t.Fatal("want ErrTruncated for short UDP")
	}
}

func TestICMPRoundTripAndChecksum(t *testing.T) {
	m := &ICMPMessage{Type: ICMPEchoRequest, ID: 42, Seq: 7, Payload: []byte("ping")}
	b := m.Marshal()
	got, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.ID != m.ID || got.Seq != m.Seq || !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("round trip mismatch")
	}
	b[4] ^= 0x01
	if _, err := UnmarshalICMP(b); err != ErrBadChecksum {
		t.Fatalf("want ErrBadChecksum, got %v", err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Fatalf("checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	// Odd-length input.
	if got := Checksum([]byte{0x01}); got != ^uint16(0x0100) {
		t.Fatalf("odd checksum = %#04x", got)
	}
}

func TestVXLANRoundTrip(t *testing.T) {
	inner := (&EthernetFrame{Dst: BroadcastMAC, Src: MAC{1, 1, 1, 1, 1, 1}, EtherType: EtherTypeARP, Payload: make([]byte, 28)}).Marshal()
	b := EncapVXLAN(0xABCDE, MustParseIP("10.0.0.1"), MustParseIP("10.0.0.2"),
		MAC{2, 2, 2, 2, 2, 2}, MAC{3, 3, 3, 3, 3, 3}, 55555, inner)
	vni, got, err := DecapVXLAN(b)
	if err != nil {
		t.Fatal(err)
	}
	if vni != 0xABCDE {
		t.Fatalf("VNI = %#x, want 0xABCDE", vni)
	}
	if !bytes.Equal(got, inner) {
		t.Fatal("inner frame corrupted through encap/decap")
	}
}

func TestVXLAN24BitVNI(t *testing.T) {
	v := VXLANHeader{VNI: 0x00FFFFFF}
	hdr, _, err := UnmarshalVXLAN(v.Marshal(nil))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.VNI != 0x00FFFFFF {
		t.Fatalf("VNI = %#x, want 0xFFFFFF", hdr.VNI)
	}
}

func TestVXLANErrors(t *testing.T) {
	if _, _, err := UnmarshalVXLAN([]byte{1, 2, 3}); err != ErrTruncated {
		t.Fatal("want ErrTruncated")
	}
	b := make([]byte, 8) // I flag clear
	if _, _, err := UnmarshalVXLAN(b); err == nil {
		t.Fatal("want error for clear I flag")
	}
	// Decap of a non-IPv4 underlay frame.
	f := (&EthernetFrame{EtherType: EtherTypeARP, Payload: make([]byte, 28)}).Marshal()
	if _, _, err := DecapVXLAN(f); err == nil {
		t.Fatal("want error for ARP underlay")
	}
}

func TestPropertyEthernetRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, payload []byte) bool {
		fr := &EthernetFrame{Dst: MAC(dst), Src: MAC(src), EtherType: et, Payload: payload}
		got, err := UnmarshalEthernet(fr.Marshal())
		return err == nil && got.Dst == fr.Dst && got.Src == fr.Src &&
			got.EtherType == et && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIPv4ChecksumAlwaysValidates(t *testing.T) {
	f := func(src, dst uint32, ttl, proto uint8, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := &IPv4Packet{Src: IP(src), Dst: IP(dst), TTL: ttl, Protocol: proto, Payload: payload}
		got, err := UnmarshalIPv4(p.Marshal())
		return err == nil && got.Src == p.Src && got.Dst == p.Dst && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPrefixMaskIdempotent(t *testing.T) {
	f := func(addr uint32, l uint8) bool {
		p := Prefix{Addr: IP(addr), Len: l % 33}
		masked := p.Addr & p.MaskIP()
		q := Prefix{Addr: masked, Len: p.Len}
		return q.Addr&q.MaskIP() == masked && q.Contains(IP(addr)) == (IP(addr)&p.MaskIP() == masked)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkVXLANEncapDecap(b *testing.B) {
	inner := (&EthernetFrame{Dst: MAC{1}, Src: MAC{2}, EtherType: EtherTypeIPv4,
		Payload: (&IPv4Packet{TTL: 64, Protocol: ProtoUDP, Src: 1, Dst: 2, Payload: make([]byte, 256)}).Marshal()}).Marshal()
	b.SetBytes(int64(len(inner)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := EncapVXLAN(77, 1, 2, MAC{3}, MAC{4}, 40000, inner)
		if _, _, err := DecapVXLAN(enc); err != nil {
			b.Fatal(err)
		}
	}
}
