package parallel

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := Map(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}

func TestRunEachJobExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	Run(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive worker count must normalize to >= 1")
	}
}

func TestPoolEachJobExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 500
		var counts [n]atomic.Int32
		p.Do(n, func(i int) { counts[i].Add(1) })
		p.Close()
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestPoolReusedAcrossPhases drives the pool the way the lockstep shard
// loop does: many small phases back to back on the same workers, with the
// caller reading per-phase results between dispatches (exercising the
// join-edge visibility guarantee).
func TestPoolReusedAcrossPhases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]int, 8)
	for phase := 0; phase < 2000; phase++ {
		p.Do(len(out), func(i int) { out[i] = phase*100 + i })
		for i, v := range out {
			if v != phase*100+i {
				t.Fatalf("phase %d: out[%d] = %d, want %d", phase, i, v, phase*100+i)
			}
		}
	}
}

func TestPoolEdgeCases(t *testing.T) {
	p := NewPool(4)
	ran := false
	p.Do(0, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
	// n=1 runs inline even on a parallel pool.
	hit := 0
	p.Do(1, func(i int) { hit = i + 1 })
	if hit != 1 {
		t.Fatal("single job did not run")
	}
	// Closed pools degrade to inline execution rather than wedging.
	p.Close()
	var sum atomic.Int64
	p.Do(10, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 45 {
		t.Fatalf("post-Close Do summed %d, want 45", sum.Load())
	}
	p.Close() // double Close must be a no-op
}

func TestPoolSerialRunsInline(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	order := make([]int, 0, 5)
	p.Do(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("serial pool ran out of order: %v", order)
		}
	}
}

// The benchmark pair that motivated Pool: a phase-per-instant caller pays
// goroutine spawn/join on every Run call but only a dispatch/join on Do.
func BenchmarkRunPerPhase(b *testing.B) {
	var sink atomic.Int64
	b.ReportAllocs()
	for b.Loop() {
		Run(4, 4, func(i int) { sink.Add(int64(i)) })
	}
}

func BenchmarkPoolPerPhase(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink atomic.Int64
	b.ReportAllocs()
	for b.Loop() {
		p.Do(4, func(i int) { sink.Add(int64(i)) })
	}
}
