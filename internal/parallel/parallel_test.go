package parallel

import (
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 16} {
		got := Map(100, workers, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(0, 4, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n=0")
	}
	if out := Map(0, 4, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map(0) returned %d results", len(out))
	}
}

func TestRunEachJobExactlyOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	Run(n, 8, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive worker count must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive worker count must normalize to >= 1")
	}
}
