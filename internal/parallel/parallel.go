// Package parallel provides the bounded worker pool the experiment harness
// uses to fan independent emulation runs across cores. Every job owns its
// own sim.Engine, so jobs share no mutable state; the pool only distributes
// indices and collects results in deterministic (input) order.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run invokes fn(i) for every i in [0, n), using at most workers goroutines.
// With workers <= 1 (or a single job) everything runs serially on the
// calling goroutine — no goroutine or channel overhead on 1-core hosts.
// Run returns once every job has finished.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines and
// returns the results indexed by i — output order is deterministic no matter
// how the jobs are scheduled.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
