// Package parallel provides the bounded worker pool the experiment harness
// and the chaos-campaign layer use to fan independent emulation runs across
// cores (Figure 8 repetitions, Table 4 boundary sweeps, scenario chaos
// campaigns).
//
// The pool is deliberately minimal: it distributes job indices and collects
// results in input order, nothing else. Determinism comes from the jobs,
// not the pool — every job owns its own sim.Engine (and, when tracing, its
// own obs.Recorder), so jobs share no mutable state and a run's output is
// byte-identical whether it executed on 1 worker or 64. Run with
// workers <= 1 stays on the calling goroutine, which keeps single-core
// hosts and -race debugging free of scheduling noise.
//
// DESIGN.md §4 records this serial-equals-parallel contract as a key
// design decision; DESIGN.md §7 relies on it for campaign traces.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run invokes fn(i) for every i in [0, n), using at most workers goroutines.
// With workers <= 1 (or a single job) everything runs serially on the
// calling goroutine — no goroutine or channel overhead on 1-core hosts.
// Run returns once every job has finished.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines and
// returns the results indexed by i — output order is deterministic no matter
// how the jobs are scheduled.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(n, workers, func(i int) { out[i] = fn(i) })
	return out
}
