// Package parallel provides the bounded worker pool the experiment harness
// and the chaos-campaign layer use to fan independent emulation runs across
// cores (Figure 8 repetitions, Table 4 boundary sweeps, scenario chaos
// campaigns).
//
// The pool is deliberately minimal: it distributes job indices and collects
// results in input order, nothing else. Determinism comes from the jobs,
// not the pool — every job owns its own sim.Engine (and, when tracing, its
// own obs.Recorder), so jobs share no mutable state and a run's output is
// byte-identical whether it executed on 1 worker or 64. Run with
// workers <= 1 stays on the calling goroutine, which keeps single-core
// hosts and -race debugging free of scheduling noise.
//
// Run and Map spawn fresh goroutines per call, which is right when one call
// covers a whole experiment. Pool keeps a resident worker set for callers
// that fan out at high frequency — the sharded convergence lockstep
// (sim.ShardSet.Run) dispatches one phase per virtual instant and cannot
// afford a spawn/join per instant.
//
// DESIGN.md §4 records this serial-equals-parallel contract as a key
// design decision; DESIGN.md §7 relies on it for campaign traces.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run invokes fn(i) for every i in [0, n), using at most workers goroutines.
// With workers <= 1 (or a single job) everything runs serially on the
// calling goroutine — no goroutine or channel overhead on 1-core hosts.
// Run returns once every job has finished.
func Run(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) across at most workers goroutines and
// returns the results indexed by i — output order is deterministic no matter
// how the jobs are scheduled.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	Run(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// Pool is a reusable worker set for callers that fan out the same shape of
// work over and over. Run spawns and joins fresh goroutines on every call —
// fine for the campaign layer, where one call covers a whole experiment, but
// wasteful for the sharded convergence loop (sim.ShardSet.Run), which fans
// out once per virtual instant and so would pay goroutine start/stop once
// per instant, millions of times per emulation. A Pool keeps its workers
// parked on a channel between phases; each Do is a channel dispatch plus a
// WaitGroup join.
//
// Do carries the same memory-ordering guarantees as Run: everything the
// caller wrote before Do is visible to the jobs (channel send edge), and
// everything the jobs wrote is visible to the caller after Do returns
// (WaitGroup join edge). A pool built with workers <= 1 owns no goroutines
// at all and Do runs jobs inline on the calling goroutine — the serial
// reference schedule sharded determinism tests compare against.
type Pool struct {
	workers int
	jobs    chan poolPhase
}

// poolPhase is one Do call as seen by a worker: claim indices from next
// until they exceed n, then signal the join.
type poolPhase struct {
	n    int
	fn   func(i int)
	next *atomic.Int64
	done *sync.WaitGroup
}

// NewPool starts a pool of persistent workers (workers <= 0 means
// GOMAXPROCS, as in Workers). Callers that outlive the pooled work must
// Close it, or its goroutines leak.
func NewPool(workers int) *Pool {
	workers = Workers(workers)
	p := &Pool{workers: workers}
	if workers <= 1 {
		return p
	}
	p.jobs = make(chan poolPhase, workers)
	// Workers hold the channel value, not the field: Close nils the field
	// (single-threaded with Do by contract), and the workers must not read
	// it concurrently.
	jobs := p.jobs
	for w := 0; w < workers; w++ {
		go func() {
			for ph := range jobs {
				for {
					i := int(ph.next.Add(1)) - 1
					if i >= ph.n {
						break
					}
					ph.fn(i)
				}
				ph.done.Done()
			}
		}()
	}
	return p
}

// Do invokes fn(i) for every i in [0, n) on the pool's workers and returns
// once all have finished. A single job (or a serial pool) runs inline on the
// calling goroutine. Do must not be called concurrently with itself or with
// Close; the lockstep loop it serves is single-threaded between phases.
func (p *Pool) Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.jobs == nil || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	k := p.workers
	if k > n {
		k = n
	}
	var next atomic.Int64
	var done sync.WaitGroup
	done.Add(k)
	ph := poolPhase{n: n, fn: fn, next: &next, done: &done}
	// k dispatches, k Done calls: a worker that drains the phase and loops
	// back to pick up a second dispatch of it just finds next exhausted and
	// signals immediately, so the accounting holds no matter which workers
	// take the sends.
	for w := 0; w < k; w++ {
		p.jobs <- ph
	}
	done.Wait()
}

// Close stops the workers. The pool stays usable afterwards — Do simply
// runs inline — so a defer'd Close composes with late stragglers.
func (p *Pool) Close() {
	if p.jobs != nil {
		close(p.jobs)
		p.jobs = nil
	}
}
