// Package p4 implements a behavioural-model ("BMv2") style programmable
// match-action pipeline — the soft ASIC the paper integrates for the
// open-source switch OS (§6.2: "we integrate it with the open source P4
// behavior model, BMv2, which acts as the ASIC emulator and forwards
// packets") and the programmable-data-plane debugging target of §9.
//
// A Program is a sequence of tables; each table matches packet header
// fields (exact, LPM or ternary) and executes an action: forward out a
// port, drop, rewrite a field, decrement TTL, or punt to the CPU (how
// control-plane packets like ARP and BGP reach the switch OS — the trap
// path whose breakage is one of the §7 Case-2 bugs). Execution produces a
// per-table trace, which is what makes emulated pipelines debuggable.
//
// DESIGN.md §2 (substrates) places the pipeline in the system inventory.
package p4

import (
	"fmt"
	"sort"
	"strings"

	"crystalnet/internal/netpkt"
)

// Field names a packet header field the pipeline can match or rewrite.
type Field uint8

// Matchable/rewritable fields.
const (
	FieldDstIP Field = iota
	FieldSrcIP
	FieldProto
	FieldDstPort
	FieldSrcPort
	FieldTTL
	FieldInPort
	numFields
)

var fieldNames = [...]string{"dst_ip", "src_ip", "proto", "dst_port", "src_port", "ttl", "in_port"}

// String returns the P4-style field name.
func (f Field) String() string {
	if int(f) < len(fieldNames) {
		return fieldNames[f]
	}
	return "field?"
}

// Packet is the parsed header vector flowing through the pipeline.
type Packet struct {
	fields [numFields]uint32
}

// NewPacket builds a header vector.
func NewPacket(src, dst netpkt.IP, proto uint8, srcPort, dstPort uint16, ttl uint8, inPort uint32) *Packet {
	p := &Packet{}
	p.fields[FieldSrcIP] = uint32(src)
	p.fields[FieldDstIP] = uint32(dst)
	p.fields[FieldProto] = uint32(proto)
	p.fields[FieldSrcPort] = uint32(srcPort)
	p.fields[FieldDstPort] = uint32(dstPort)
	p.fields[FieldTTL] = uint32(ttl)
	p.fields[FieldInPort] = inPort
	return p
}

// Get reads a field.
func (p *Packet) Get(f Field) uint32 { return p.fields[f] }

// Set writes a field.
func (p *Packet) Set(f Field, v uint32) { p.fields[f] = v }

// MatchKind distinguishes table match types.
type MatchKind uint8

// Match kinds.
const (
	MatchExact MatchKind = iota
	MatchLPM
	MatchTernary
)

// Key is one match criterion of a table entry.
type Key struct {
	Field Field
	Kind  MatchKind
	Value uint32
	// Mask is the prefix mask for LPM (host-order, contiguous) or the
	// arbitrary bit mask for ternary. Ignored for exact matches.
	Mask uint32
}

func (k Key) matches(p *Packet) bool {
	v := p.Get(k.Field)
	switch k.Kind {
	case MatchExact:
		return v == k.Value
	case MatchLPM, MatchTernary:
		return v&k.Mask == k.Value&k.Mask
	}
	return false
}

// specificity orders entries: more masked bits win (LPM semantics
// generalized to the whole key set).
func (k Key) specificity() int {
	switch k.Kind {
	case MatchExact:
		return 32
	default:
		n := 0
		for m := k.Mask; m != 0; m &= m - 1 {
			n++
		}
		return n
	}
}

// ActionKind is what an entry does on match.
type ActionKind uint8

// Actions.
const (
	ActForward  ActionKind = iota // send out Port
	ActDrop                       // discard
	ActToCPU                      // punt to the switch OS (the trap path)
	ActSetField                   // rewrite Field = Value, continue pipeline
	ActDecTTL                     // decrement TTL, drop at zero, continue
	ActNoOp                       // continue to next table
)

var actionNames = [...]string{"forward", "drop", "to_cpu", "set_field", "dec_ttl", "no_op"}

// String returns the action name.
func (a ActionKind) String() string {
	if int(a) < len(actionNames) {
		return actionNames[a]
	}
	return "action?"
}

// Action is an entry's action with its parameters.
type Action struct {
	Kind  ActionKind
	Port  uint32
	Field Field
	Value uint32
}

// Entry is one table row.
type Entry struct {
	Keys     []Key
	Action   Action
	Priority int // explicit tiebreak; higher wins before specificity
}

func (e *Entry) matches(p *Packet) bool {
	for _, k := range e.Keys {
		if !k.matches(p) {
			return false
		}
	}
	return true
}

func (e *Entry) specificity() int {
	s := 0
	for _, k := range e.Keys {
		s += k.specificity()
	}
	return s
}

// Table is one match-action stage.
type Table struct {
	Name    string
	entries []*Entry
	// DefaultAction runs when nothing matches (P4's default_action).
	DefaultAction Action
	// Hits/Misses are the table counters P4 exposes.
	Hits, Misses uint64
}

// AddEntry installs a row.
func (t *Table) AddEntry(e *Entry) {
	t.entries = append(t.entries, e)
	// Longest-prefix/priority order: higher priority first, then more
	// specific, preserving insertion order among equals.
	sort.SliceStable(t.entries, func(i, j int) bool {
		if t.entries[i].Priority != t.entries[j].Priority {
			return t.entries[i].Priority > t.entries[j].Priority
		}
		return t.entries[i].specificity() > t.entries[j].specificity()
	})
}

// Len returns the number of installed entries.
func (t *Table) Len() int { return len(t.entries) }

// Program is an ordered pipeline of tables.
type Program struct {
	Name   string
	Tables []*Table
}

// AddTable appends a stage and returns it.
func (p *Program) AddTable(name string, def Action) *Table {
	t := &Table{Name: name, DefaultAction: def}
	p.Tables = append(p.Tables, t)
	return t
}

// Table returns the named stage, or nil.
func (p *Program) Table(name string) *Table {
	for _, t := range p.Tables {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Verdict is the pipeline outcome.
type Verdict uint8

// Pipeline outcomes. Continued means the packet fell off the end of the
// program without a terminal action — used when a program is only a
// front-end stage (e.g. the trap program ahead of a fixed-function
// forwarder); a full switch program ends with a defaulted LPM stage and
// never continues.
const (
	Forwarded Verdict = iota
	Dropped
	PuntedToCPU
	Continued
)

var verdictNames = [...]string{"forwarded", "dropped", "to-cpu", "continued"}

// String returns the verdict name.
func (v Verdict) String() string {
	if int(v) < len(verdictNames) {
		return verdictNames[v]
	}
	return "verdict?"
}

// TraceStep records one table's decision for a packet — the §9 debugging
// surface.
type TraceStep struct {
	Table  string
	Hit    bool
	Action Action
}

// Result is the outcome of running a packet through the pipeline.
type Result struct {
	Verdict Verdict
	Port    uint32
	Trace   []TraceStep
}

// TraceString renders the per-table trace.
func (r Result) TraceString() string {
	var b strings.Builder
	for i, s := range r.Trace {
		if i > 0 {
			b.WriteString(" -> ")
		}
		hit := "miss"
		if s.Hit {
			hit = "hit"
		}
		fmt.Fprintf(&b, "%s[%s:%s]", s.Table, hit, s.Action.Kind)
	}
	fmt.Fprintf(&b, " => %s", r.Verdict)
	if r.Verdict == Forwarded {
		fmt.Fprintf(&b, "(port %d)", r.Port)
	}
	return b.String()
}

// Run executes the pipeline on the packet, mutating its header vector as
// set_field/dec_ttl actions apply.
func (p *Program) Run(pkt *Packet) Result {
	res := Result{Verdict: Continued}
	for _, t := range p.Tables {
		act := t.DefaultAction
		hit := false
		for _, e := range t.entries {
			if e.matches(pkt) {
				act, hit = e.Action, true
				break
			}
		}
		if hit {
			t.Hits++
		} else {
			t.Misses++
		}
		res.Trace = append(res.Trace, TraceStep{Table: t.Name, Hit: hit, Action: act})
		switch act.Kind {
		case ActForward:
			res.Verdict, res.Port = Forwarded, act.Port
			return res
		case ActDrop:
			res.Verdict = Dropped
			return res
		case ActToCPU:
			res.Verdict = PuntedToCPU
			return res
		case ActSetField:
			pkt.Set(act.Field, act.Value)
		case ActDecTTL:
			ttl := pkt.Get(FieldTTL)
			if ttl <= 1 {
				res.Verdict = Dropped
				return res
			}
			pkt.Set(FieldTTL, ttl-1)
		case ActNoOp:
		}
	}
	return res
}

// TrapProgram builds the control-plane front-end of CTNR-B's soft ASIC:
// just the ACL and cpu_trap stages, falling through (Continued) to the
// fixed-function forwarder for data traffic. Building it with
// trapARP=false reproduces the §7 Case-2 ARP-trap bug at the pipeline
// level.
func TrapProgram(trapARP, trapBGP bool) *Program {
	prog := &Program{Name: "ctnrb_trap"}
	prog.AddTable("acl", Action{Kind: ActNoOp})
	trap := prog.AddTable("cpu_trap", Action{Kind: ActNoOp})
	if trapARP {
		trap.AddEntry(&Entry{
			Keys:   []Key{{Field: FieldProto, Kind: MatchExact, Value: 0}},
			Action: Action{Kind: ActToCPU},
		})
	}
	if trapBGP {
		trap.AddEntry(&Entry{
			Keys:   []Key{{Field: FieldProto, Kind: MatchExact, Value: uint32(netpkt.ProtoTCP)}},
			Action: Action{Kind: ActToCPU},
		})
	}
	return prog
}

// LPMKey builds an LPM key on the destination IP from a CIDR prefix.
func LPMKey(pfx netpkt.Prefix) Key {
	return Key{Field: FieldDstIP, Kind: MatchLPM, Value: uint32(pfx.Addr), Mask: uint32(pfx.MaskIP())}
}

// ReferenceSwitchProgram builds the fixed-function pipeline CTNR-B's soft
// ASIC ships with: an ACL stage, a control-plane trap stage (ARP/BGP to
// CPU), a TTL stage, then the IPv4 LPM stage whose entries forward out
// ports. It is what "bug compatible" means for the trap path: build it
// with trapARP=false and you get exactly the §7 Case-2 ARP bug.
func ReferenceSwitchProgram(trapARP, trapBGP bool) *Program {
	prog := &Program{Name: "reference_switch"}
	prog.AddTable("acl", Action{Kind: ActNoOp})
	trap := prog.AddTable("cpu_trap", Action{Kind: ActNoOp})
	if trapARP {
		// ARP arrives as proto 0 in the parsed vector (no IP header).
		trap.AddEntry(&Entry{
			Keys:   []Key{{Field: FieldProto, Kind: MatchExact, Value: 0}},
			Action: Action{Kind: ActToCPU},
		})
	}
	if trapBGP {
		trap.AddEntry(&Entry{
			Keys:   []Key{{Field: FieldProto, Kind: MatchExact, Value: uint32(netpkt.ProtoTCP)}},
			Action: Action{Kind: ActToCPU},
		})
	}
	prog.AddTable("ttl", Action{Kind: ActDecTTL})
	prog.AddTable("ipv4_lpm", Action{Kind: ActDrop})
	return prog
}

// Clone returns a copy of the pipeline with independent hit/miss counters.
// Table entries are shared between clones: entries are immutable once
// installed (reprogramming replaces tables, it does not edit rows), so the
// entry slices are copied but the *Entry values are not.
func (p *Program) Clone() *Program {
	c := &Program{Name: p.Name, Tables: make([]*Table, len(p.Tables))}
	for i, t := range p.Tables {
		nt := &Table{
			Name:          t.Name,
			entries:       append([]*Entry(nil), t.entries...),
			DefaultAction: t.DefaultAction,
			Hits:          t.Hits,
			Misses:        t.Misses,
		}
		c.Tables[i] = nt
	}
	return c
}
