package p4

import (
	"strings"
	"testing"
	"testing/quick"

	"crystalnet/internal/netpkt"
)

func pkt(dst string, proto uint8, ttl uint8) *Packet {
	return NewPacket(netpkt.MustParseIP("192.0.2.1"), netpkt.MustParseIP(dst), proto, 1000, 80, ttl, 1)
}

func lpmForward(t *Table, cidr string, port uint32) {
	t.AddEntry(&Entry{
		Keys:   []Key{LPMKey(netpkt.MustParsePrefix(cidr))},
		Action: Action{Kind: ActForward, Port: port},
	})
}

func TestReferenceProgramForwards(t *testing.T) {
	prog := ReferenceSwitchProgram(true, true)
	lpm := prog.Table("ipv4_lpm")
	lpmForward(lpm, "100.64.0.0/24", 3)
	lpmForward(lpm, "0.0.0.0/0", 9)

	r := prog.Run(pkt("100.64.0.7", netpkt.ProtoUDP, 64))
	if r.Verdict != Forwarded || r.Port != 3 {
		t.Fatalf("result = %s", r.TraceString())
	}
	// Default route catches the rest.
	r = prog.Run(pkt("8.8.8.8", netpkt.ProtoUDP, 64))
	if r.Verdict != Forwarded || r.Port != 9 {
		t.Fatalf("default route: %s", r.TraceString())
	}
	// LPM prefers the longer prefix even when added after.
	lpmForward(lpm, "100.64.0.0/28", 5)
	r = prog.Run(pkt("100.64.0.7", netpkt.ProtoUDP, 64))
	if r.Port != 5 {
		t.Fatalf("LPM ordering: %s", r.TraceString())
	}
}

func TestTTLDecrementAndExpiry(t *testing.T) {
	prog := ReferenceSwitchProgram(true, true)
	lpmForward(prog.Table("ipv4_lpm"), "0.0.0.0/0", 1)

	p := pkt("8.8.8.8", netpkt.ProtoUDP, 64)
	if r := prog.Run(p); r.Verdict != Forwarded {
		t.Fatal("forward failed")
	}
	if p.Get(FieldTTL) != 63 {
		t.Fatalf("TTL = %d, want 63", p.Get(FieldTTL))
	}
	if r := prog.Run(pkt("8.8.8.8", netpkt.ProtoUDP, 1)); r.Verdict != Dropped {
		t.Fatalf("TTL 1 must drop: %s", r.TraceString())
	}
}

func TestCPUTrapPath(t *testing.T) {
	healthy := ReferenceSwitchProgram(true, true)
	// ARP (proto 0 in the parsed vector) punts to CPU.
	if r := healthy.Run(pkt("10.0.0.1", 0, 64)); r.Verdict != PuntedToCPU {
		t.Fatalf("ARP not trapped: %s", r.TraceString())
	}
	// BGP (TCP) punts too.
	if r := healthy.Run(pkt("10.0.0.1", netpkt.ProtoTCP, 64)); r.Verdict != PuntedToCPU {
		t.Fatal("BGP not trapped")
	}

	// The §7 Case-2 dev build: ARP trap missing — ARP falls through to the
	// LPM stage and (with no route) is dropped, never reaching the CPU.
	buggy := ReferenceSwitchProgram(false, true)
	if r := buggy.Run(pkt("10.0.0.1", 0, 64)); r.Verdict != Dropped {
		t.Fatalf("buggy build should drop ARP silently: %s", r.TraceString())
	}
}

func TestACLStage(t *testing.T) {
	prog := ReferenceSwitchProgram(true, true)
	lpmForward(prog.Table("ipv4_lpm"), "0.0.0.0/0", 1)
	// Block UDP port 53 in the ACL stage.
	prog.Table("acl").AddEntry(&Entry{
		Keys: []Key{
			{Field: FieldProto, Kind: MatchExact, Value: uint32(netpkt.ProtoUDP)},
			{Field: FieldDstPort, Kind: MatchExact, Value: 53},
		},
		Action: Action{Kind: ActDrop},
	})
	p := NewPacket(1, 2, netpkt.ProtoUDP, 9, 53, 64, 1)
	if r := prog.Run(p); r.Verdict != Dropped {
		t.Fatal("ACL did not drop")
	}
	p2 := NewPacket(1, 2, netpkt.ProtoUDP, 9, 443, 64, 1)
	if r := prog.Run(p2); r.Verdict != Forwarded {
		t.Fatal("ACL overblocked")
	}
}

func TestSetFieldAction(t *testing.T) {
	prog := &Program{Name: "rewrite"}
	nat := prog.AddTable("nat", Action{Kind: ActNoOp})
	nat.AddEntry(&Entry{
		Keys:   []Key{{Field: FieldDstIP, Kind: MatchExact, Value: uint32(netpkt.MustParseIP("203.0.113.10"))}},
		Action: Action{Kind: ActSetField, Field: FieldDstIP, Value: uint32(netpkt.MustParseIP("10.0.0.10"))},
	})
	lpm := prog.AddTable("ipv4_lpm", Action{Kind: ActDrop})
	lpmForward(lpm, "10.0.0.0/8", 2)

	p := pkt("203.0.113.10", netpkt.ProtoTCP, 64)
	r := prog.Run(p)
	if r.Verdict != Forwarded || r.Port != 2 {
		t.Fatalf("NAT rewrite failed: %s", r.TraceString())
	}
	if netpkt.IP(p.Get(FieldDstIP)) != netpkt.MustParseIP("10.0.0.10") {
		t.Fatal("field not rewritten")
	}
}

func TestTernaryMatchAndPriority(t *testing.T) {
	prog := &Program{Name: "ternary"}
	tbl := prog.AddTable("t", Action{Kind: ActDrop})
	// Low-priority wildcard-ish ternary on the low byte...
	tbl.AddEntry(&Entry{
		Keys:     []Key{{Field: FieldDstIP, Kind: MatchTernary, Value: 0x01, Mask: 0xFF}},
		Action:   Action{Kind: ActForward, Port: 1},
		Priority: 1,
	})
	// ...beaten by an explicit higher-priority entry on the same packets.
	tbl.AddEntry(&Entry{
		Keys:     []Key{{Field: FieldDstIP, Kind: MatchTernary, Value: 0x01, Mask: 0x0F}},
		Action:   Action{Kind: ActForward, Port: 2},
		Priority: 9,
	})
	p := NewPacket(0, netpkt.IP(0xAABBCC01), 6, 1, 2, 64, 0)
	if r := prog.Run(p); r.Port != 2 {
		t.Fatalf("priority not honored: %s", r.TraceString())
	}
}

func TestCountersAndTrace(t *testing.T) {
	prog := ReferenceSwitchProgram(true, true)
	lpmForward(prog.Table("ipv4_lpm"), "100.64.0.0/24", 3)
	prog.Run(pkt("100.64.0.1", netpkt.ProtoUDP, 64))
	prog.Run(pkt("9.9.9.9", netpkt.ProtoUDP, 64)) // miss -> default drop
	lpm := prog.Table("ipv4_lpm")
	if lpm.Hits != 1 || lpm.Misses != 1 {
		t.Fatalf("counters = %d/%d", lpm.Hits, lpm.Misses)
	}
	r := prog.Run(pkt("100.64.0.1", netpkt.ProtoUDP, 64))
	s := r.TraceString()
	for _, want := range []string{"acl[", "cpu_trap[", "ipv4_lpm[hit:forward]", "=> forwarded(port 3)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("trace %q missing %q", s, want)
		}
	}
	if lpm.Len() != 1 {
		t.Fatal("Len wrong")
	}
}

func TestEmptyProgramContinues(t *testing.T) {
	prog := &Program{Name: "empty"}
	if r := prog.Run(pkt("1.2.3.4", 6, 64)); r.Verdict != Continued {
		t.Fatal("front-end pipeline must fall through")
	}
	if prog.Table("nope") != nil {
		t.Fatal("missing table lookup")
	}
}

func TestTrapProgram(t *testing.T) {
	healthy := TrapProgram(true, true)
	if r := healthy.Run(pkt("10.0.0.1", 0, 64)); r.Verdict != PuntedToCPU {
		t.Fatal("ARP not trapped")
	}
	if r := healthy.Run(pkt("10.0.0.1", netpkt.ProtoUDP, 64)); r.Verdict != Continued {
		t.Fatal("data traffic must fall through to the forwarder")
	}
	buggy := TrapProgram(false, true)
	if r := buggy.Run(pkt("10.0.0.1", 0, 64)); r.Verdict != Continued {
		t.Fatal("buggy trap program must let ARP fall to the data path (where it dies)")
	}
}

func TestStrings(t *testing.T) {
	if FieldDstIP.String() != "dst_ip" || Field(99).String() != "field?" {
		t.Fatal("field names")
	}
	if ActForward.String() != "forward" || ActionKind(99).String() != "action?" {
		t.Fatal("action names")
	}
	if Forwarded.String() != "forwarded" || Verdict(99).String() != "verdict?" {
		t.Fatal("verdict names")
	}
}

// Property: the pipeline's LPM table always picks the longest matching
// prefix, regardless of insertion order.
func TestPropertyLPMOrderIndependent(t *testing.T) {
	f := func(addr uint32, lens []uint8) bool {
		prog := &Program{}
		tbl := prog.AddTable("lpm", Action{Kind: ActDrop})
		best := -1
		for i, lRaw := range lens {
			if i >= 8 {
				break
			}
			l := int(lRaw % 33)
			pfx := netpkt.Prefix{Addr: netpkt.IP(addr), Len: uint8(l)}
			pfx.Addr &= pfx.MaskIP()
			tbl.AddEntry(&Entry{Keys: []Key{LPMKey(pfx)}, Action: Action{Kind: ActForward, Port: uint32(l)}})
			if l > best {
				best = l
			}
		}
		if best < 0 {
			return true
		}
		r := prog.Run(NewPacket(0, netpkt.IP(addr), 6, 1, 2, 64, 0))
		return r.Verdict == Forwarded && int(r.Port) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPipelineRun(b *testing.B) {
	prog := ReferenceSwitchProgram(true, true)
	lpm := prog.Table("ipv4_lpm")
	for i := 0; i < 1000; i++ {
		lpmForward(lpm, netpkt.Prefix{Addr: netpkt.IP(0x64000000 + i*256), Len: 24}.String(), uint32(i%32))
	}
	p := pkt("100.0.3.9", netpkt.ProtoUDP, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Set(FieldTTL, 64)
		prog.Run(p)
	}
}
