package cloud

import (
	"math"
	"testing"
	"time"

	"crystalnet/internal/sim"
)

func TestProvisionBootsWithinJitterWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	var readyAt []sim.Time
	vms := p.Provision(10, SKUStandard, "ctnra", func(vm *VM) {
		readyAt = append(readyAt, eng.Now())
	})
	if len(vms) != 10 {
		t.Fatalf("vms = %d", len(vms))
	}
	for _, vm := range vms {
		if vm.State() != VMProvisioning {
			t.Fatal("VM should start in Provisioning")
		}
	}
	eng.Run(0)
	if len(readyAt) != 10 {
		t.Fatalf("ready callbacks = %d", len(readyAt))
	}
	lo := sim.Time(SKUStandard.BootBase)
	hi := sim.Time(SKUStandard.BootBase + SKUStandard.BootJitter)
	for _, at := range readyAt {
		if at < lo || at > hi {
			t.Fatalf("boot at %v outside [%v,%v]", at, lo, hi)
		}
	}
	if p.Running() != 10 {
		t.Fatalf("Running = %d", p.Running())
	}
}

func TestCostAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vms := p.Provision(5, SKUStandard, "g", nil)
	eng.Run(0) // boot all
	bootDone := eng.Now()
	eng.RunUntil(bootDone.Add(time.Hour))
	// 5 VMs x 1 hour x $0.20 = $1.00 (uptime measured from Running).
	if got := p.CostUSD(); math.Abs(got-1.0) > 0.01 {
		t.Fatalf("CostUSD = %f, want ~1.00", got)
	}
	if got := p.HourlyCostUSD(); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("HourlyCostUSD = %f", got)
	}
	// Stopping freezes accrual.
	for _, vm := range vms {
		p.Deprovision(vm)
	}
	costAtStop := p.CostUSD()
	eng.RunFor(2 * time.Hour)
	if p.CostUSD() != costAtStop {
		t.Fatal("cost accrued after deprovision")
	}
	if p.HourlyCostUSD() != 0 {
		t.Fatal("burn rate nonzero after deprovision")
	}
}

func TestPaperScaleCost(t *testing.T) {
	// §1: 500 standard VMs ≈ USD 100/hour.
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	p.Provision(500, SKUStandard, "g", nil)
	eng.Run(0)
	if got := p.HourlyCostUSD(); math.Abs(got-100.0) > 1e-6 {
		t.Fatalf("500-VM burn = %f USD/h, paper says ~100", got)
	}
}

func TestInjectedFailureAndReboot(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	var failed *VM
	p.OnFailure = func(vm *VM) { failed = vm }
	vms := p.Provision(3, SKUStandard, "g", nil)
	eng.Run(0)
	p.Fail(vms[1])
	if failed != vms[1] || vms[1].State() != VMFailed {
		t.Fatalf("failure not reported: %v %v", failed, vms[1].State())
	}
	if p.Running() != 2 {
		t.Fatalf("Running = %d", p.Running())
	}
	rebooted := false
	p.Reboot(vms[1], func(*VM) { rebooted = true })
	eng.Run(0)
	if !rebooted || vms[1].State() != VMRunning {
		t.Fatal("reboot failed")
	}
	// Reboot of a non-failed VM is a no-op.
	p.Reboot(vms[0], func(*VM) { t.Fatal("reboot of running VM fired") })
	eng.Run(0)
}

func TestRandomFailuresWithMTBF(t *testing.T) {
	eng := sim.NewEngine(7)
	p := NewProvider(eng)
	p.MTBF = 10 * time.Minute
	failures := 0
	p.OnFailure = func(vm *VM) { failures++ }
	p.Provision(20, SKUStandard, "g", nil)
	eng.RunFor(time.Hour)
	if failures == 0 {
		t.Fatal("no random failures in 1h with MTBF 10m across 20 VMs")
	}
}

func TestRecordWorkAndUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)

	// 120 core-seconds at 2 cores starting at minute 0: 60 cs in minute 0
	// fills half... careful: 2 cores x 60 s window = 120 core-seconds room.
	vm.RecordWork(0, 120, 2)
	if u := vm.Utilization(0); math.Abs(u-0.5) > 1e-9 { // 120/(60*4 cores)
		t.Fatalf("minute-0 utilization = %f, want 0.5", u)
	}
	// Work starting mid-minute spills into the next bucket.
	vm2 := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)
	vm2.RecordWork(sim.Time(90*time.Second), 60, 1) // 30 cs in min 1, 30 in min 2
	if u := vm2.Utilization(1); math.Abs(u-30.0/240.0) > 1e-9 {
		t.Fatalf("minute-1 utilization = %f", u)
	}
	if u := vm2.Utilization(2); math.Abs(u-30.0/240.0) > 1e-9 {
		t.Fatalf("minute-2 utilization = %f", u)
	}
	// Utilization capped at 1.
	vm.RecordWork(0, 1e6, 4)
	if vm.Utilization(0) != 1 {
		t.Fatal("utilization not capped")
	}
}

func TestUtilizationP95(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vms := p.Provision(20, SKUStandard, "g", nil)
	eng.Run(0)
	// 18 idle VMs, 2 busy: the nearest-rank p95 of 20 samples lands on the
	// 19th sorted value, which is busy.
	vms[7].RecordWork(0, 240, 4) // minute 0 fully busy
	vms[3].RecordWork(0, 240, 4)
	got := p.UtilizationP95(0)
	if got != 1 {
		t.Fatalf("p95 = %f, want 1 (busy VMs at the tail)", got)
	}
	if p.UtilizationP95(5) != 0 {
		t.Fatal("idle minute should be 0")
	}
	empty := NewProvider(eng)
	if empty.UtilizationP95(0) != 0 {
		t.Fatal("empty provider p95 should be 0")
	}
}

func TestUptimeAcrossFailure(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)
	start := eng.Now()
	eng.RunUntil(start.Add(10 * time.Minute))
	p.Fail(vm)
	eng.RunFor(5 * time.Minute) // failed time does not count
	if got := vm.Uptime(); got != 10*time.Minute {
		t.Fatalf("Uptime = %v, want 10m", got)
	}
	p.Reboot(vm, nil)
	eng.Run(0)
	eng.RunFor(10 * time.Minute)
	if got := vm.Uptime(); got < 19*time.Minute || got > 21*time.Minute {
		t.Fatalf("Uptime after reboot = %v, want ~20m", got)
	}
}

func TestSKUProperties(t *testing.T) {
	if !SKUNested.NestedVM || SKUStandard.NestedVM {
		t.Fatal("nested flags wrong")
	}
	if SKUStandard.PricePerHour != 0.20 {
		t.Fatal("paper price mismatch")
	}
	if VMRunning.String() != "running" || VMState(9).String() != "unknown" {
		t.Fatal("state names wrong")
	}
}

func TestSubmitSchedulesAcrossCores(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)
	base := eng.Now()

	var done []sim.Time
	// 8 jobs of 10s on 4 cores: finish in two waves at +10s and +20s.
	for i := 0; i < 8; i++ {
		vm.Submit(10, func() { done = append(done, eng.Now()) })
	}
	eng.Run(0)
	if len(done) != 8 {
		t.Fatalf("done = %d", len(done))
	}
	wave1, wave2 := 0, 0
	for _, at := range done {
		switch at.Sub(base) {
		case 10 * time.Second:
			wave1++
		case 20 * time.Second:
			wave2++
		default:
			t.Fatalf("job finished at unexpected offset %v", at.Sub(base))
		}
	}
	if wave1 != 4 || wave2 != 4 {
		t.Fatalf("waves = %d/%d, want 4/4", wave1, wave2)
	}
	if vm.QueueDelay() != 0 {
		t.Fatalf("QueueDelay = %v after drain", vm.QueueDelay())
	}
}

func TestSubmitBacklogVisible(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)
	for i := 0; i < 4; i++ {
		vm.Submit(30, nil)
	}
	if vm.QueueDelay() != 30*time.Second {
		t.Fatalf("QueueDelay = %v, want 30s", vm.QueueDelay())
	}
	// Submitted work shows up in the CPU meter, in the minute it started.
	if minute := int(eng.Now().Minutes()); vm.Utilization(minute) == 0 {
		t.Fatalf("Submit did not record CPU work in minute %d", minute)
	}
}
