// Package cloud simulates the public-cloud substrate CrystalNet provisions
// emulation VMs on (§3.1, §6.1): VM SKUs with cores/memory/nested-VM
// capability, provisioning and boot latencies, per-hour pricing, random VM
// failures, and a per-VM CPU meter that backs the Figure 9 utilization
// curves.
//
// This replaces Azure in the paper's setup; latency and price constants are
// calibrated to the numbers the paper reports (4-core/8GB at USD 0.20/hour,
// ~100 USD/hour for a 500-VM L-DC emulation).
//
// DESIGN.md §1 records this substitution (simulated cloud for Azure); §3
// indexes Figure 9.
package cloud

import (
	"fmt"
	"time"

	"crystalnet/internal/sim"
)

// SKU describes a VM type.
type SKU struct {
	Name         string
	Cores        int
	MemoryGB     int
	NestedVM     bool // required for VM-based vendor images (§4.1)
	PricePerHour float64
	// BootBase/BootJitter model provisioning + boot latency.
	BootBase   time.Duration
	BootJitter time.Duration
}

// Standard SKUs used by the orchestrator (§6.1: typically 4-core 8 or 16GB).
var (
	SKUStandard = SKU{Name: "D4-8", Cores: 4, MemoryGB: 8, PricePerHour: 0.20,
		BootBase: 45 * time.Second, BootJitter: 30 * time.Second}
	SKUNested = SKU{Name: "D4-8-nested", Cores: 4, MemoryGB: 8, NestedVM: true, PricePerHour: 0.20,
		BootBase: 60 * time.Second, BootJitter: 30 * time.Second}
	SKULarge = SKU{Name: "D4-16", Cores: 4, MemoryGB: 16, PricePerHour: 0.24,
		BootBase: 45 * time.Second, BootJitter: 30 * time.Second}
)

// VMState is a VM lifecycle state.
type VMState uint8

// VM lifecycle states.
const (
	VMProvisioning VMState = iota
	VMRunning
	VMFailed
	VMStopped
)

var vmStateNames = [...]string{"provisioning", "running", "failed", "stopped"}

// String returns the state name.
func (s VMState) String() string {
	if int(s) < len(vmStateNames) {
		return vmStateNames[s]
	}
	return "unknown"
}

// VM is one provisioned virtual machine.
type VM struct {
	ID    int
	Name  string
	SKU   SKU
	Group string // vendor group label (§6.2 anti-affinity)

	state       VMState
	provisioned sim.Time // when provisioning started
	started     sim.Time // when it entered Running
	stopped     sim.Time
	runAccum    time.Duration // accumulated running time before last start

	// busy accumulates core-seconds of work per minute bucket for the
	// Figure 9 CPU model.
	busy map[int]float64

	// coreFree[i] is the virtual time core i becomes available; the Submit
	// scheduler assigns jobs to the earliest-free core.
	coreFree []sim.Time

	waiters []func()

	provider *Provider
}

// WhenRunning invokes fn once the VM is Running — immediately (as a
// scheduled event) if it already is, else on its next transition to
// Running.
func (vm *VM) WhenRunning(fn func()) {
	if vm.state == VMRunning {
		vm.provider.eng.After(0, fn)
		return
	}
	vm.waiters = append(vm.waiters, fn)
}

func (vm *VM) becameRunning() {
	ws := vm.waiters
	vm.waiters = nil
	for _, fn := range ws {
		fn()
	}
}

// Submit queues coreSeconds of single-threaded CPU work on the VM and
// invokes done when it completes. Jobs are scheduled work-conserving across
// the VM's cores: packing many emulated devices on one VM stretches their
// boot and route-processing times, which is exactly the VM-count effect
// Figure 8 measures.
func (vm *VM) Submit(coreSeconds float64, done func()) {
	if coreSeconds <= 0 {
		coreSeconds = 1e-6
	}
	now := vm.provider.eng.Now()
	if vm.coreFree == nil {
		vm.coreFree = make([]sim.Time, vm.SKU.Cores)
	}
	// Earliest-free core.
	best := 0
	for i := 1; i < len(vm.coreFree); i++ {
		if vm.coreFree[i] < vm.coreFree[best] {
			best = i
		}
	}
	start := vm.coreFree[best]
	if start < now {
		start = now
	}
	end := start.Add(time.Duration(coreSeconds * float64(time.Second)))
	vm.coreFree[best] = end
	vm.RecordWork(start, coreSeconds, 1)
	if done != nil {
		vm.provider.eng.At(end, done)
	}
}

// QueueDelay returns how far in the future the earliest-free core is — a
// measure of CPU backlog.
func (vm *VM) QueueDelay() time.Duration {
	if vm.coreFree == nil {
		return 0
	}
	now := vm.provider.eng.Now()
	best := vm.coreFree[0]
	for _, t := range vm.coreFree[1:] {
		if t < best {
			best = t
		}
	}
	if best <= now {
		return 0
	}
	return best.Sub(now)
}

// State returns the VM's lifecycle state.
func (vm *VM) State() VMState { return vm.state }

// Uptime returns total running time as of now.
func (vm *VM) Uptime() time.Duration {
	d := vm.runAccum
	if vm.state == VMRunning {
		d += vm.provider.eng.Now().Sub(vm.started)
	}
	return d
}

// RecordWork accounts coreSeconds of CPU consumption starting at t,
// spreading it across minute buckets at the given core intensity
// (cores ≤ SKU.Cores). Used by the orchestrator's work model.
func (vm *VM) RecordWork(t sim.Time, coreSeconds float64, cores float64) {
	if cores <= 0 {
		cores = 1
	}
	if cores > float64(vm.SKU.Cores) {
		cores = float64(vm.SKU.Cores)
	}
	sec := t.Seconds()
	remaining := coreSeconds
	for remaining > 1e-9 {
		minute := int(sec / 60)
		room := (float64(minute+1)*60 - sec) * cores // core-seconds until bucket end
		use := remaining
		if use > room {
			use = room
		}
		vm.busy[minute] += use
		remaining -= use
		sec = float64(minute+1) * 60
	}
}

// Utilization returns the fraction of the VM's CPU capacity consumed during
// the given minute (0-based from simulation start), capped at 1.
func (vm *VM) Utilization(minute int) float64 {
	u := vm.busy[minute] / (60 * float64(vm.SKU.Cores))
	if u > 1 {
		return 1
	}
	return u
}

// Provider is the simulated cloud.
type Provider struct {
	eng  *sim.Engine
	vms  []*VM
	next int

	// OnFailure is invoked when a VM fails (injected or random).
	OnFailure func(vm *VM)

	// MTBF enables random VM failures when positive: each running VM fails
	// after an exponentially distributed interval with this mean.
	MTBF time.Duration

	provisionCalls int
}

// NewProvider returns a cloud bound to the simulation engine.
func NewProvider(eng *sim.Engine) *Provider {
	return &Provider{eng: eng}
}

// VMs returns all VMs ever provisioned (including stopped ones).
func (p *Provider) VMs() []*VM { return p.vms }

// Running returns the number of running VMs.
func (p *Provider) Running() int {
	n := 0
	for _, vm := range p.vms {
		if vm.state == VMRunning {
			n++
		}
	}
	return n
}

// Provision requests n VMs of the SKU in the given vendor group. VMs boot
// independently with jittered latency; onReady fires per VM as it becomes
// Running. Returns the VM handles immediately (in Provisioning state).
func (p *Provider) Provision(n int, sku SKU, group string, onReady func(*VM)) []*VM {
	p.provisionCalls++
	out := make([]*VM, 0, n)
	for i := 0; i < n; i++ {
		vm := &VM{
			ID:          p.next,
			Name:        fmt.Sprintf("vm-%s-%d", group, p.next),
			SKU:         sku,
			Group:       group,
			state:       VMProvisioning,
			provisioned: p.eng.Now(),
			busy:        map[int]float64{},
			provider:    p,
		}
		p.next++
		p.vms = append(p.vms, vm)
		out = append(out, vm)
		boot := p.eng.Jitter(sku.BootBase, sku.BootJitter)
		p.eng.After(boot, func() {
			if vm.state != VMProvisioning {
				return
			}
			vm.state = VMRunning
			vm.started = p.eng.Now()
			p.scheduleFailure(vm)
			if onReady != nil {
				onReady(vm)
			}
			vm.becameRunning()
		})
	}
	return out
}

func (p *Provider) scheduleFailure(vm *VM) {
	if p.MTBF <= 0 {
		return
	}
	// Exponential inter-failure time with mean MTBF.
	d := time.Duration(p.eng.Rand().ExpFloat64() * float64(p.MTBF))
	p.eng.After(d, func() {
		if vm.state != VMRunning {
			return
		}
		p.Fail(vm)
	})
}

// Fail marks a running VM as failed and notifies the orchestrator.
func (p *Provider) Fail(vm *VM) {
	if vm.state != VMRunning {
		return
	}
	vm.runAccum += p.eng.Now().Sub(vm.started)
	vm.state = VMFailed
	if p.OnFailure != nil {
		p.OnFailure(vm)
	}
}

// Reboot returns a failed VM to service after its boot latency; onReady
// fires when it is Running again.
func (p *Provider) Reboot(vm *VM, onReady func(*VM)) {
	if vm.state != VMFailed {
		return
	}
	vm.state = VMProvisioning
	boot := p.eng.Jitter(vm.SKU.BootBase, vm.SKU.BootJitter)
	p.eng.After(boot, func() {
		if vm.state != VMProvisioning {
			return
		}
		vm.state = VMRunning
		vm.started = p.eng.Now()
		p.scheduleFailure(vm)
		if onReady != nil {
			onReady(vm)
		}
		vm.becameRunning()
	})
}

// Deprovision stops and releases a VM (the paper's Destroy API path).
func (p *Provider) Deprovision(vm *VM) {
	switch vm.state {
	case VMRunning:
		vm.runAccum += p.eng.Now().Sub(vm.started)
	case VMStopped:
		return
	}
	vm.state = VMStopped
	vm.stopped = p.eng.Now()
}

// CostUSD returns the accumulated cost of all VMs: running time (plus time
// still accruing) priced per hour.
func (p *Provider) CostUSD() float64 {
	var total float64
	for _, vm := range p.vms {
		total += vm.Uptime().Hours() * vm.SKU.PricePerHour
	}
	return total
}

// HourlyCostUSD returns the burn rate of currently running VMs.
func (p *Provider) HourlyCostUSD() float64 {
	var total float64
	for _, vm := range p.vms {
		if vm.state == VMRunning {
			total += vm.SKU.PricePerHour
		}
	}
	return total
}

// UtilizationP95 returns the 95th-percentile per-VM CPU utilization for the
// given minute across running VMs — the quantity Figure 9 plots.
func (p *Provider) UtilizationP95(minute int) float64 {
	var us []float64
	for _, vm := range p.vms {
		if vm.state != VMStopped {
			us = append(us, vm.Utilization(minute))
		}
	}
	if len(us) == 0 {
		return 0
	}
	// Insertion sort: VM counts are modest.
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j] < us[j-1]; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
	idx := (len(us)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return us[idx]
}
