// Package cloud simulates the public-cloud substrate CrystalNet provisions
// emulation VMs on (§3.1, §6.1): VM SKUs with cores/memory/nested-VM
// capability, provisioning and boot latencies, per-hour pricing, random VM
// failures, and a per-VM CPU meter that backs the Figure 9 utilization
// curves.
//
// This replaces Azure in the paper's setup; latency and price constants are
// calibrated to the numbers the paper reports (4-core/8GB at USD 0.20/hour,
// ~100 USD/hour for a 500-VM L-DC emulation).
//
// DESIGN.md §1 records this substitution (simulated cloud for Azure); §3
// indexes Figure 9.
package cloud

import (
	"fmt"
	"time"

	"crystalnet/internal/obs"
	"crystalnet/internal/sim"
)

// SKU describes a VM type.
type SKU struct {
	Name         string
	Cores        int
	MemoryGB     int
	NestedVM     bool // required for VM-based vendor images (§4.1)
	PricePerHour float64
	// BootBase/BootJitter model provisioning + boot latency.
	BootBase   time.Duration
	BootJitter time.Duration
}

// Standard SKUs used by the orchestrator (§6.1: typically 4-core 8 or 16GB).
var (
	SKUStandard = SKU{Name: "D4-8", Cores: 4, MemoryGB: 8, PricePerHour: 0.20,
		BootBase: 45 * time.Second, BootJitter: 30 * time.Second}
	SKUNested = SKU{Name: "D4-8-nested", Cores: 4, MemoryGB: 8, NestedVM: true, PricePerHour: 0.20,
		BootBase: 60 * time.Second, BootJitter: 30 * time.Second}
	SKULarge = SKU{Name: "D4-16", Cores: 4, MemoryGB: 16, PricePerHour: 0.24,
		BootBase: 45 * time.Second, BootJitter: 30 * time.Second}
)

// VMState is a VM lifecycle state.
type VMState uint8

// VM lifecycle states.
const (
	VMProvisioning VMState = iota
	VMRunning
	VMFailed
	VMStopped
)

var vmStateNames = [...]string{"provisioning", "running", "failed", "stopped"}

// String returns the state name.
func (s VMState) String() string {
	if int(s) < len(vmStateNames) {
		return vmStateNames[s]
	}
	return "unknown"
}

// VM is one provisioned virtual machine.
type VM struct {
	ID    int
	Name  string
	SKU   SKU
	Group string // vendor group label (§6.2 anti-affinity)

	state       VMState
	provisioned sim.Time // when provisioning started
	started     sim.Time // when it entered Running
	stopped     sim.Time
	runAccum    time.Duration // accumulated running time before last start

	// busy accumulates core-seconds of work per minute bucket for the
	// Figure 9 CPU model.
	busy map[int]float64

	// coreFree[i] is the virtual time core i becomes available; the Submit
	// scheduler assigns jobs to the earliest-free core.
	coreFree []sim.Time

	waiters []func(*VM)

	// bootAttempts counts boot attempts for the VM's current provisioning
	// episode (reset on each Provision/Reboot, grown by retry).
	bootAttempts int

	provider *Provider
}

// WhenRunning invokes fn once a VM is Running — immediately (as a
// scheduled event) if it already is, else on its next transition to
// Running. The callback receives the VM that actually came up: under a
// retry policy a boot that exhausts its attempt budget is satisfied by a
// replacement VM, and pending waiters follow the workload there.
func (vm *VM) WhenRunning(fn func(*VM)) {
	if vm.state == VMRunning {
		vm.provider.eng.After(0, func() { fn(vm) })
		return
	}
	vm.waiters = append(vm.waiters, fn)
}

func (vm *VM) becameRunning() {
	ws := vm.waiters
	vm.waiters = nil
	for _, fn := range ws {
		fn(vm)
	}
}

// Submit queues coreSeconds of single-threaded CPU work on the VM and
// invokes done when it completes. Jobs are scheduled work-conserving across
// the VM's cores: packing many emulated devices on one VM stretches their
// boot and route-processing times, which is exactly the VM-count effect
// Figure 8 measures.
func (vm *VM) Submit(coreSeconds float64, done func()) {
	vm.SubmitOn(vm.provider.eng, coreSeconds, done)
}

// SubmitOn is Submit with an explicit scheduling engine: in a sharded
// emulation (DESIGN.md §10) each device submits work via its own domain
// engine, so the completion event lands on the queue the device drains.
// The VM's core schedule is engine-agnostic — a VM's devices all live in
// one domain, so coreFree is still mutated single-threaded.
func (vm *VM) SubmitOn(eng *sim.Engine, coreSeconds float64, done func()) {
	if coreSeconds <= 0 {
		coreSeconds = 1e-6
	}
	now := eng.Now()
	if len(vm.coreFree) == 0 {
		vm.coreFree = make([]sim.Time, vm.SKU.Cores)
	}
	// Earliest-free core.
	best := 0
	for i := 1; i < len(vm.coreFree); i++ {
		if vm.coreFree[i] < vm.coreFree[best] {
			best = i
		}
	}
	start := vm.coreFree[best]
	if start < now {
		start = now
	}
	end := start.Add(time.Duration(coreSeconds * float64(time.Second)))
	vm.coreFree[best] = end
	vm.RecordWork(start, coreSeconds, 1)
	if done != nil {
		eng.At(end, done)
	}
}

// QueueDelay returns how far in the future the earliest-free core is — a
// measure of CPU backlog.
//
// Invariant: coreFree is either empty (no Submit yet — it is lazily sized
// to SKU.Cores by the first Submit) or has exactly SKU.Cores entries.
// "Empty" includes a non-nil zero-length slice (e.g. a defensive copy of
// an untouched schedule), so the guard is on length, not nil-ness.
func (vm *VM) QueueDelay() time.Duration {
	if len(vm.coreFree) == 0 {
		return 0
	}
	now := vm.provider.eng.Now()
	best := vm.coreFree[0]
	for _, t := range vm.coreFree[1:] {
		if t < best {
			best = t
		}
	}
	if best <= now {
		return 0
	}
	return best.Sub(now)
}

// State returns the VM's lifecycle state.
func (vm *VM) State() VMState { return vm.state }

// Uptime returns total running time as of now.
func (vm *VM) Uptime() time.Duration {
	d := vm.runAccum
	if vm.state == VMRunning {
		d += vm.provider.eng.Now().Sub(vm.started)
	}
	return d
}

// RecordWork accounts coreSeconds of CPU consumption starting at t,
// spreading it across minute buckets at the given core intensity
// (cores ≤ SKU.Cores). Used by the orchestrator's work model.
func (vm *VM) RecordWork(t sim.Time, coreSeconds float64, cores float64) {
	if cores <= 0 {
		cores = 1
	}
	if cores > float64(vm.SKU.Cores) {
		cores = float64(vm.SKU.Cores)
	}
	sec := t.Seconds()
	remaining := coreSeconds
	for remaining > 1e-9 {
		minute := int(sec / 60)
		room := (float64(minute+1)*60 - sec) * cores // core-seconds until bucket end
		use := remaining
		if use > room {
			use = room
		}
		vm.busy[minute] += use
		remaining -= use
		sec = float64(minute+1) * 60
	}
}

// Utilization returns the fraction of the VM's CPU capacity consumed during
// the given minute (0-based from simulation start), capped at 1.
func (vm *VM) Utilization(minute int) float64 {
	u := vm.busy[minute] / (60 * float64(vm.SKU.Cores))
	if u > 1 {
		return 1
	}
	return u
}

// RetryPolicy bounds cloud boot operations (§6.2 hardening). The zero
// value disables supervision and reproduces the unsupervised legacy
// behavior byte-for-byte: one boot attempt, no deadline, no replacement.
//
// With BootDeadline set, every Provision/Reboot attempt must come up
// within the deadline. An attempt whose (jittered) boot draw exceeds it is
// declared dead at the deadline and retried after an exponential backoff —
// BackoffBase doubled per attempt, capped at BackoffMax, jittered from the
// engine's PCG stream so retries stay deterministic per seed. After
// MaxAttempts the VM is given up on and a replacement VM of the same
// SKU/group is provisioned in its place (announced via Provider.OnReplace);
// a replacement that also exhausts its budget is abandoned (deprovisioned,
// announced via Provider.OnBootAborted) rather than chained forever.
type RetryPolicy struct {
	// MaxAttempts is the boot-attempt budget per VM (0 or 1 = no retry).
	MaxAttempts int
	// BootDeadline is the per-attempt boot timeout; 0 disables supervision.
	BootDeadline time.Duration
	// BackoffBase is the delay before the second attempt (default 5s).
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff (default 60s).
	BackoffMax time.Duration
}

// DefaultRetryPolicy is a sane supervised configuration: three attempts,
// 90s per-attempt deadline, 5s→60s exponential backoff.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3, BootDeadline: 90 * time.Second, BackoffBase: 5 * time.Second, BackoffMax: 60 * time.Second}

// supervised reports whether the policy bounds boots at all.
func (rp RetryPolicy) supervised() bool { return rp.BootDeadline > 0 }

// withDefaults fills unset knobs of a supervised policy.
func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 1
	}
	if rp.BackoffBase <= 0 {
		rp.BackoffBase = DefaultRetryPolicy.BackoffBase
	}
	if rp.BackoffMax <= 0 {
		rp.BackoffMax = DefaultRetryPolicy.BackoffMax
	}
	return rp
}

// Provider is the simulated cloud.
type Provider struct {
	eng  *sim.Engine
	vms  []*VM
	next int

	// OnFailure is invoked when a VM fails (injected or random).
	OnFailure func(vm *VM)

	// OnReplace is invoked when a supervised boot exhausts its attempt
	// budget and the workload moves to a freshly provisioned replacement
	// VM (old is Stopped, replacement is Provisioning). The orchestration
	// layer uses it to re-point placement at the replacement.
	OnReplace func(old, replacement *VM)

	// OnBootAborted is invoked when a pending boot can never complete:
	// the VM was deprovisioned mid-boot, or a replacement VM also
	// exhausted its attempt budget. Without this hook such a VM's
	// onReady simply never fires — the silent-deadlock bug the recovery
	// state machine exists to prevent.
	OnBootAborted func(vm *VM)

	// MTBF enables random VM failures when positive: each running VM fails
	// after an exponentially distributed interval with this mean. Failure
	// timers are daemon events — they never block convergence.
	MTBF time.Duration

	// Retry supervises Provision/Reboot; zero value = unsupervised.
	Retry RetryPolicy

	provisionCalls int
}

// NewProvider returns a cloud bound to the simulation engine.
func NewProvider(eng *sim.Engine) *Provider {
	return &Provider{eng: eng}
}

// VMs returns all VMs ever provisioned (including stopped ones).
func (p *Provider) VMs() []*VM { return p.vms }

// Running returns the number of running VMs.
func (p *Provider) Running() int {
	n := 0
	for _, vm := range p.vms {
		if vm.state == VMRunning {
			n++
		}
	}
	return n
}

// newVM constructs a fresh VM handle in Provisioning state.
func (p *Provider) newVM(sku SKU, group string) *VM {
	vm := &VM{
		ID:          p.next,
		Name:        fmt.Sprintf("vm-%s-%d", group, p.next),
		SKU:         sku,
		Group:       group,
		state:       VMProvisioning,
		provisioned: p.eng.Now(),
		busy:        map[int]float64{},
		provider:    p,
	}
	p.next++
	p.vms = append(p.vms, vm)
	return vm
}

// Provision requests n VMs of the SKU in the given vendor group. VMs boot
// independently with jittered latency; onReady fires per VM as it becomes
// Running. Returns the VM handles immediately (in Provisioning state).
// Under a supervised Retry policy, onReady may fire with a *replacement*
// VM instead of the returned handle (see RetryPolicy).
func (p *Provider) Provision(n int, sku SKU, group string, onReady func(*VM)) []*VM {
	p.provisionCalls++
	out := make([]*VM, 0, n)
	for i := 0; i < n; i++ {
		vm := p.newVM(sku, group)
		out = append(out, vm)
		p.beginBoot(vm, 1, false, onReady)
	}
	return out
}

// beginBoot runs one supervised boot attempt. The boot duration is drawn
// up front (one Jitter draw, same stream position as the unsupervised
// path), so whether the attempt beats the deadline is decided here — no
// racing deadline-vs-boot timers to cancel, which keeps the event and RNG
// streams identical whether or not a retry layer is configured, as long
// as no retry actually fires.
func (p *Provider) beginBoot(vm *VM, attempt int, replaced bool, onReady func(*VM)) {
	vm.bootAttempts = attempt
	boot := p.eng.Jitter(vm.SKU.BootBase, vm.SKU.BootJitter)
	rp := p.Retry.withDefaults()
	if p.Retry.supervised() && boot > rp.BootDeadline {
		// This attempt cannot come up before its deadline: it is declared
		// dead at the deadline and retried after backoff, or the workload
		// moves to a replacement VM once the attempt budget is spent.
		p.eng.After(rp.BootDeadline, func() {
			if vm.state != VMProvisioning {
				p.bootAborted(vm)
				return
			}
			p.counter("cloud.boot_deadline_expired", vm.Group).Inc()
			if attempt < rp.MaxAttempts {
				p.counter("cloud.boot_retries", vm.Group).Inc()
				p.eng.After(p.backoff(rp, attempt), func() {
					if vm.state != VMProvisioning {
						p.bootAborted(vm)
						return
					}
					p.beginBoot(vm, attempt+1, replaced, onReady)
				})
				return
			}
			if replaced {
				// The replacement exhausted its budget too: abandon
				// rather than chain replacements forever. The caller
				// hears about it via OnBootAborted and bounds recovery
				// with its own deadline.
				p.counter("cloud.boot_abandoned", vm.Group).Inc()
				p.Deprovision(vm)
				p.bootAborted(vm)
				return
			}
			p.replaceVM(vm, onReady)
		})
		return
	}
	p.eng.After(boot, func() {
		if vm.state != VMProvisioning {
			p.bootAborted(vm)
			return
		}
		vm.state = VMRunning
		vm.started = p.eng.Now()
		p.scheduleFailure(vm)
		if onReady != nil {
			onReady(vm)
		}
		vm.becameRunning()
	})
}

// replaceVM gives up on old and moves its workload — the onReady callback
// and any pending WhenRunning waiters — to a freshly provisioned VM of
// the same SKU and group.
func (p *Provider) replaceVM(old *VM, onReady func(*VM)) {
	p.counter("cloud.vm_replacements", old.Group).Inc()
	old.state = VMStopped
	old.stopped = p.eng.Now()
	nv := p.newVM(old.SKU, old.Group)
	nv.waiters = append(nv.waiters, old.waiters...)
	old.waiters = nil
	if p.OnReplace != nil {
		p.OnReplace(old, nv)
	}
	p.beginBoot(nv, 1, true, onReady)
}

// bootAborted reports a boot whose onReady can never fire (the VM left
// Provisioning under it, or a replacement was abandoned). Exactly one
// pending boot-chain event exists per Provisioning VM, so the hook fires
// at most once per abort.
func (p *Provider) bootAborted(vm *VM) {
	p.counter("cloud.boot_aborted", vm.Group).Inc()
	if p.OnBootAborted != nil {
		p.OnBootAborted(vm)
	}
}

// backoff returns the jittered exponential delay before attempt+1.
func (p *Provider) backoff(rp RetryPolicy, attempt int) time.Duration {
	d := rp.BackoffBase
	for i := 1; i < attempt && d < rp.BackoffMax; i++ {
		d *= 2
	}
	if d > rp.BackoffMax {
		d = rp.BackoffMax
	}
	// Deterministic jitter: drawn from the engine's PCG stream, so two
	// same-seed runs back off identically.
	return p.eng.Jitter(d, d/2)
}

// counter vends a metric handle from the engine's recorder; nil-safe when
// tracing is disabled.
func (p *Provider) counter(name, label string) *obs.Counter {
	return p.eng.Recorder().Counter(name, label)
}

func (p *Provider) scheduleFailure(vm *VM) {
	if p.MTBF <= 0 {
		return
	}
	// Exponential inter-failure time with mean MTBF. A daemon event: an
	// armed failure timer must not keep Run from converging, or an
	// emulation with MTBF set could never finish a wait-converge.
	d := time.Duration(p.eng.Rand().ExpFloat64() * float64(p.MTBF))
	p.eng.Daemon(d, func() {
		if vm.state != VMRunning {
			return
		}
		p.Fail(vm)
	})
}

// Fail marks a running VM as failed and notifies the orchestrator. It
// reports whether the fault actually fired: failing a VM that is not
// Running (still provisioning, already failed, or stopped) is a no-op
// and returns false, so callers can queue the fault or surface the error
// instead of losing it silently.
func (p *Provider) Fail(vm *VM) bool {
	if vm.state != VMRunning {
		return false
	}
	vm.runAccum += p.eng.Now().Sub(vm.started)
	vm.state = VMFailed
	if p.OnFailure != nil {
		p.OnFailure(vm)
	}
	return true
}

// Reboot returns a failed VM to service after its boot latency; onReady
// fires when it is Running again. Under a supervised Retry policy the
// reboot is retried/replaced like a fresh Provision, so onReady may fire
// with a replacement VM.
func (p *Provider) Reboot(vm *VM, onReady func(*VM)) {
	if vm.state != VMFailed {
		return
	}
	vm.state = VMProvisioning
	p.beginBoot(vm, 1, false, onReady)
}

// Deprovision stops and releases a VM (the paper's Destroy API path).
func (p *Provider) Deprovision(vm *VM) {
	switch vm.state {
	case VMRunning:
		vm.runAccum += p.eng.Now().Sub(vm.started)
	case VMStopped:
		return
	}
	vm.state = VMStopped
	vm.stopped = p.eng.Now()
}

// CostUSD returns the accumulated cost of all VMs: running time (plus time
// still accruing) priced per hour.
func (p *Provider) CostUSD() float64 {
	var total float64
	for _, vm := range p.vms {
		total += vm.Uptime().Hours() * vm.SKU.PricePerHour
	}
	return total
}

// HourlyCostUSD returns the burn rate of currently running VMs.
func (p *Provider) HourlyCostUSD() float64 {
	var total float64
	for _, vm := range p.vms {
		if vm.state == VMRunning {
			total += vm.SKU.PricePerHour
		}
	}
	return total
}

// UtilizationP95 returns the 95th-percentile per-VM CPU utilization for the
// given minute across running VMs — the quantity Figure 9 plots.
func (p *Provider) UtilizationP95(minute int) float64 {
	var us []float64
	for _, vm := range p.vms {
		if vm.state != VMStopped {
			us = append(us, vm.Utilization(minute))
		}
	}
	if len(us) == 0 {
		return 0
	}
	// Insertion sort: VM counts are modest.
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && us[j] < us[j-1]; j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
	idx := (len(us)*95 + 99) / 100
	if idx > 0 {
		idx--
	}
	return us[idx]
}
