package cloud

import (
	"testing"
	"time"

	"crystalnet/internal/obs"
	"crystalnet/internal/sim"
)

// TestQueueDelayEmptyCoreFreeSlice is the regression test for the coreFree
// invariant: the schedule is either empty or exactly SKU.Cores long, and
// "empty" includes a non-nil zero-length slice (as a defensive copy of an
// untouched schedule produces). QueueDelay used to guard only against nil
// and panicked on the empty-but-allocated case.
func TestQueueDelayEmptyCoreFreeSlice(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	eng.Run(0)
	vm.coreFree = []sim.Time{} // non-nil, empty
	if d := vm.QueueDelay(); d != 0 {
		t.Fatalf("QueueDelay on empty schedule = %v, want 0", d)
	}
	// Submit must lazily size the schedule from this state too.
	for i := 0; i < vm.SKU.Cores; i++ {
		vm.Submit(10, nil)
	}
	if len(vm.coreFree) != vm.SKU.Cores {
		t.Fatalf("coreFree sized to %d, want %d", len(vm.coreFree), vm.SKU.Cores)
	}
	if vm.QueueDelay() != 10*time.Second {
		t.Fatalf("QueueDelay = %v, want 10s (all cores busy)", vm.QueueDelay())
	}
}

func TestFailReportsWhetherItFired(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	vm := p.Provision(1, SKUStandard, "g", nil)[0]
	if p.Fail(vm) {
		t.Fatal("Fail fired on a Provisioning VM")
	}
	eng.Run(0)
	if !p.Fail(vm) {
		t.Fatal("Fail did not fire on a Running VM")
	}
	if p.Fail(vm) {
		t.Fatal("Fail fired twice on the same failed VM")
	}
	p.Deprovision(vm)
	if p.Fail(vm) {
		t.Fatal("Fail fired on a Stopped VM")
	}
}

func TestDeprovisionMidBootFiresAbortHook(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	var aborted []*VM
	p.OnBootAborted = func(vm *VM) { aborted = append(aborted, vm) }
	vm := p.Provision(1, SKUStandard, "g", func(*VM) {
		t.Fatal("onReady fired for a deprovisioned VM")
	})[0]
	p.Deprovision(vm)
	eng.Run(0)
	if len(aborted) != 1 || aborted[0] != vm {
		t.Fatalf("OnBootAborted fired %d times, want exactly once for the VM", len(aborted))
	}
	if vm.State() != VMStopped {
		t.Fatalf("state = %v, want stopped", vm.State())
	}
}

// supervisedOutcome provisions one VM under the policy with the given seed
// and reports how the boot episode ended.
type supervisedOutcome struct {
	p        *Provider
	vm       *VM // the originally returned handle
	ready    *VM // the VM onReady fired with, nil if never
	readyAt  sim.Time
	replaced int
	aborted  int
}

func runSupervised(seed int64, rp RetryPolicy) supervisedOutcome {
	eng := sim.NewEngine(seed)
	p := NewProvider(eng)
	p.Retry = rp
	out := supervisedOutcome{p: p}
	p.OnReplace = func(old, nv *VM) { out.replaced++ }
	p.OnBootAborted = func(*VM) { out.aborted++ }
	out.vm = p.Provision(1, SKUStandard, "g", func(vm *VM) {
		out.ready = vm
		out.readyAt = eng.Now()
	})[0]
	eng.Run(0)
	return out
}

// TestBootRetryAfterDeadline finds a seed whose first boot draw exceeds the
// deadline and checks the attempt is declared dead at the deadline and
// retried after backoff — deterministically for that seed.
func TestBootRetryAfterDeadline(t *testing.T) {
	// SKUStandard boots in [45s, 75s); a 60s deadline fails ~half of draws.
	rp := RetryPolicy{MaxAttempts: 3, BootDeadline: 60 * time.Second, BackoffBase: 5 * time.Second, BackoffMax: 60 * time.Second}
	for seed := int64(1); seed <= 64; seed++ {
		out := runSupervised(seed, rp)
		if out.vm.bootAttempts < 2 || out.ready != out.vm {
			continue // first attempt made the deadline, or budget exhausted
		}
		// Found a retried-then-recovered episode.
		if out.ready.State() != VMRunning {
			t.Fatalf("seed %d: VM not running after retry", seed)
		}
		// The failed attempt consumed its full deadline plus backoff
		// before the next draw even started.
		if min := sim.Time(rp.BootDeadline + rp.BackoffBase + SKUStandard.BootBase); out.readyAt < min {
			t.Fatalf("seed %d: ready at %v, impossibly early for a retried boot (min %v)", seed, out.readyAt, min)
		}
		if out.replaced != 0 || out.aborted != 0 {
			t.Fatalf("seed %d: replaced=%d aborted=%d during a plain retry", seed, out.replaced, out.aborted)
		}
		// Two same-seed runs retry identically (deterministic jittered backoff).
		again := runSupervised(seed, rp)
		if again.readyAt != out.readyAt || again.vm.bootAttempts != out.vm.bootAttempts {
			t.Fatalf("seed %d: retry path not deterministic: ready %v vs %v", seed, again.readyAt, out.readyAt)
		}
		return
	}
	t.Fatal("no seed in 1..64 produced a retried boot; deadline math is off")
}

// TestReplacementVMAfterBudget exhausts a one-attempt budget and checks the
// workload — onReady and pending WhenRunning waiters — moves to a fresh
// replacement VM.
func TestReplacementVMAfterBudget(t *testing.T) {
	rp := RetryPolicy{MaxAttempts: 1, BootDeadline: 60 * time.Second}
	for seed := int64(1); seed <= 64; seed++ {
		eng := sim.NewEngine(seed)
		p := NewProvider(eng)
		p.Retry = rp
		var old, repl *VM
		p.OnReplace = func(o, n *VM) { old, repl = o, n }
		var ready, waited *VM
		vm := p.Provision(1, SKUStandard, "g", func(v *VM) { ready = v })[0]
		vm.WhenRunning(func(v *VM) { waited = v })
		eng.Run(0)
		if repl == nil {
			continue // first draw beat the deadline
		}
		if old != vm || vm.State() != VMStopped {
			t.Fatalf("seed %d: replaced VM is %v in state %v, want original stopped", seed, old, vm.State())
		}
		if repl.State() != VMRunning {
			// The replacement may itself be abandoned on unlucky seeds;
			// covered by TestReplacementAbandonedAfterSecondExhaustion.
			continue
		}
		if ready != repl {
			t.Fatalf("seed %d: onReady fired with %v, want the replacement", seed, ready)
		}
		if waited != repl {
			t.Fatalf("seed %d: WhenRunning waiter got %v, want the replacement", seed, waited)
		}
		if repl.SKU != vm.SKU || repl.Group != vm.Group {
			t.Fatalf("seed %d: replacement SKU/group mismatch", seed)
		}
		return
	}
	t.Fatal("no seed in 1..64 produced a successful replacement")
}

// TestReplacementAbandonedAfterSecondExhaustion sets a deadline no boot can
// meet: the original is replaced once, the replacement exhausts its budget
// too, and the episode is abandoned via OnBootAborted instead of chaining
// replacements forever.
func TestReplacementAbandonedAfterSecondExhaustion(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewProvider(eng)
	p.Retry = RetryPolicy{MaxAttempts: 1, BootDeadline: 30 * time.Second} // < BootBase: unmeetable
	replaced := 0
	p.OnReplace = func(o, n *VM) { replaced++ }
	var aborted *VM
	p.OnBootAborted = func(vm *VM) { aborted = vm }
	vm := p.Provision(1, SKUStandard, "g", func(*VM) {
		t.Fatal("onReady fired under an unmeetable deadline")
	})[0]
	eng.Run(0)
	if replaced != 1 {
		t.Fatalf("replacements = %d, want exactly 1 (no infinite chain)", replaced)
	}
	if aborted == nil || aborted == vm {
		t.Fatalf("OnBootAborted = %v, want the replacement VM", aborted)
	}
	if vm.State() != VMStopped || aborted.State() != VMStopped {
		t.Fatalf("states = %v/%v, want both stopped", vm.State(), aborted.State())
	}
}

// TestSupervisionIsByteInvisibleWhenNoRetryFires checks the determinism
// contract: a retry policy whose deadline no boot exceeds consumes the
// same RNG draws and produces the same boot times as no policy at all.
func TestSupervisionIsByteInvisibleWhenNoRetryFires(t *testing.T) {
	run := func(rp RetryPolicy) []sim.Time {
		eng := sim.NewEngine(42)
		p := NewProvider(eng)
		p.Retry = rp
		var at []sim.Time
		p.Provision(8, SKUStandard, "g", func(*VM) { at = append(at, eng.Now()) })
		eng.Run(0)
		return at
	}
	loose := SKUStandard.BootBase + SKUStandard.BootJitter + time.Second
	a := run(RetryPolicy{})
	b := run(RetryPolicy{MaxAttempts: 3, BootDeadline: loose})
	if len(a) != len(b) || len(a) != 8 {
		t.Fatalf("boot counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("boot %d at %v unsupervised vs %v supervised", i, a[i], b[i])
		}
	}
}

func TestMTBFTimersAreDaemons(t *testing.T) {
	eng := sim.NewEngine(7)
	p := NewProvider(eng)
	p.MTBF = 10 * time.Minute
	p.Provision(5, SKUStandard, "g", nil)
	if _, err := eng.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Boots fired; the armed failure timers must not have kept Run alive.
	if p.Running() != 5 {
		t.Fatalf("Running = %d, want 5", p.Running())
	}
	if eng.PendingDaemons() == 0 || eng.Pending() != eng.PendingDaemons() {
		t.Fatalf("pending=%d daemons=%d; want only daemon failure timers queued", eng.Pending(), eng.PendingDaemons())
	}
}

func TestRetryCountersRecorded(t *testing.T) {
	rec := obs.New()
	rp := RetryPolicy{MaxAttempts: 1, BootDeadline: 30 * time.Second} // unmeetable
	eng := sim.NewEngine(3)
	eng.SetRecorder(rec)
	p := NewProvider(eng)
	p.Retry = rp
	p.Provision(1, SKUStandard, "g", nil)
	eng.Run(0)
	if n := rec.Counter("cloud.boot_deadline_expired", "g").Value(); n != 2 {
		t.Fatalf("boot_deadline_expired = %d, want 2 (original + replacement)", n)
	}
	if n := rec.Counter("cloud.vm_replacements", "g").Value(); n != 1 {
		t.Fatalf("vm_replacements = %d, want 1", n)
	}
	if n := rec.Counter("cloud.boot_abandoned", "g").Value(); n != 1 {
		t.Fatalf("boot_abandoned = %d, want 1", n)
	}
}
