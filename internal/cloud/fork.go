package cloud

import "crystalnet/internal/sim"

// Fork returns a deep copy of the provider on eng — every VM's lifecycle
// state, CPU accounting and core schedule — plus a translation map from the
// source's VMs to their clones for the orchestration layer's placement
// bookkeeping. The source provider is read strictly read-only, so
// concurrent forks are safe.
//
// OnFailure (and the other hooks) are left nil for the caller to wire to
// the fork's own recovery path. Boot waiters are not copied: they are
// pending closures, and forks are only taken at quiescence, when every
// boot callback has already fired.
func (p *Provider) Fork(eng *sim.Engine) (*Provider, map[*VM]*VM) {
	c := &Provider{
		eng:            eng,
		next:           p.next,
		MTBF:           p.MTBF,
		Retry:          p.Retry,
		provisionCalls: p.provisionCalls,
	}
	vmMap := make(map[*VM]*VM, len(p.vms))
	c.vms = make([]*VM, len(p.vms))
	for i, vm := range p.vms {
		nv := &VM{
			ID:           vm.ID,
			Name:         vm.Name,
			SKU:          vm.SKU,
			Group:        vm.Group,
			state:        vm.state,
			provisioned:  vm.provisioned,
			started:      vm.started,
			stopped:      vm.stopped,
			runAccum:     vm.runAccum,
			coreFree:     append([]sim.Time(nil), vm.coreFree...),
			bootAttempts: vm.bootAttempts,
			provider:     c,
		}
		if vm.busy != nil {
			nv.busy = make(map[int]float64, len(vm.busy))
			for minute, cs := range vm.busy {
				nv.busy[minute] = cs
			}
		}
		c.vms[i] = nv
		vmMap[vm] = nv
	}
	return c, vmMap
}
