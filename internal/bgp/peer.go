package bgp

import (
	"fmt"
	"sort"
	"sync/atomic"

	"crystalnet/internal/netpkt"
)

// SessionState is the BGP FSM state (RFC 4271 §8, condensed: the TCP
// Connect/Active states collapse into Idle because the emulator's transport
// is the virtual link itself).
type SessionState uint8

// FSM states.
const (
	StateIdle SessionState = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

var stateNames = [...]string{"Idle", "OpenSent", "OpenConfirm", "Established"}

// String returns the RFC state name.
func (s SessionState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// PeerConfig describes one configured neighbor.
type PeerConfig struct {
	Name      string // remote device name (informational)
	LocalIP   netpkt.IP
	RemoteIP  netpkt.IP
	RemoteAS  uint32
	Interface string // local egress interface
	// ImportPolicy/ExportPolicy default to permit-all when nil.
	ImportPolicy *Policy
	ExportPolicy *Policy
	// Passive peers never initiate; they wait for the remote OPEN
	// (boundary speaker sessions are configured active on the speaker side).
	Passive bool
	// AdvertiseLocalOnly restricts announcements to locally originated
	// routes: the static-speaker property (§5.1) — a speaker never reflects
	// what it learns from boundary devices.
	AdvertiseLocalOnly bool
}

// Peer is the per-neighbor state: FSM, Adj-RIB-In, Adj-RIB-Out and the
// dirty set batched into UPDATEs.
type Peer struct {
	router *Router
	Index  int
	Config PeerConfig

	state     SessionState
	remoteID  netpkt.IP
	openSent  bool
	localGen  uint32 // our connection incarnation, refreshed on Start
	remoteGen uint32 // the peer's incarnation, learned from its OPEN

	adjIn map[netpkt.Prefix]*Attrs
	// advertised maps prefix -> attrsKey of what was last announced.
	advertised map[netpkt.Prefix]string
	// The dirty set is a bitset addressed by ribEntry.id plus the insertion-
	// order list of prefixes to visit at the next flush; marking a prefix
	// dirty on every peer is on the decide hot path, and the bit test is far
	// cheaper than a map assignment.
	dirtyBits  []uint64
	dirtyList  []netpkt.Prefix
	flushTimer Timer
	// exportCache memoizes exportRoute per best-path attrs; valid only when
	// exportCacheOK (prefix-independent export policy).
	exportCache   map[*Attrs]exportVal
	exportCacheOK bool
	// staleScratch is reused by reset to withdraw learned routes.
	staleScratch []netpkt.Prefix

	// Counters for monitoring and the CPU model.
	MsgsIn, MsgsOut       uint64
	RoutesIn, WithdrawsIn uint64
}

// State returns the current FSM state.
func (p *Peer) State() SessionState { return p.state }

// AdjInLen returns the number of routes accepted from this peer.
func (p *Peer) AdjInLen() int { return len(p.adjIn) }

// AdvertisedLen returns the number of routes currently announced to this
// peer.
func (p *Peer) AdvertisedLen() int { return len(p.advertised) }

// exportVal is one memoized exportRoute outcome.
type exportVal struct {
	attrs *Attrs
	ok    bool
}

// connGen hands out process-unique connection generations. Each engine is
// single-threaded, but the experiment harness runs independent engines on
// parallel goroutines and only generation *equality* matters to the
// protocol, so an atomic counter keeps behaviour identical while staying
// race-free.
var connGen atomic.Uint32

// Start initiates the session (sends OPEN) unless the peer is passive.
func (p *Peer) Start() {
	if p.state != StateIdle {
		return
	}
	p.localGen = connGen.Add(1)
	if p.adjIn == nil {
		p.adjIn = map[netpkt.Prefix]*Attrs{}
		p.advertised = map[netpkt.Prefix]string{}
	} else {
		clear(p.adjIn)
		clear(p.advertised)
	}
	p.clearDirty()
	p.exportCache = nil
	if p.Config.Passive {
		return
	}
	p.sendOpen()
	p.setState(StateOpenSent)
}

func (p *Peer) sendOpen() {
	if p.localGen == 0 {
		p.localGen = connGen.Add(1)
	}
	p.send(MarshalOpen(&Open{
		AS:       p.router.cfg.AS,
		HoldTime: p.router.cfg.HoldTime,
		BGPID:    p.router.cfg.RouterID,
		Gen:      p.localGen,
	}))
	p.openSent = true
}

func (p *Peer) send(data []byte) {
	p.MsgsOut++
	p.router.mMsgsOut.Inc()
	p.router.hooks.SendToPeer(p.Index, data)
}

func (p *Peer) setState(s SessionState) {
	if p.state == s {
		return
	}
	p.state = s
	p.router.hooks.SessionEvent(p.Index, s)
}

// Stop tears the session down (administrative shutdown or link failure).
// All routes learned from the peer are withdrawn from the Loc-RIB.
func (p *Peer) Stop(reason string) {
	if p.state == StateIdle && !p.openSent {
		return
	}
	if p.state == StateEstablished {
		p.send(MarshalNotification(&Notification{Code: NotifCease}))
	}
	p.reset(reason)
}

// reset clears session state and flushes learned routes.
func (p *Peer) reset(reason string) {
	p.router.hooks.Logf("bgp %s: session to %s reset: %s", p.router.cfg.Name, p.Config.Name, reason)
	p.openSent = false
	if p.flushTimer != nil {
		p.flushTimer.Cancel()
		p.flushTimer = nil
	}
	if p.adjIn == nil {
		// A session can reset (and even re-establish) without Start ever
		// having run on this side; make sure the RIB maps exist.
		p.adjIn = map[netpkt.Prefix]*Attrs{}
		p.advertised = map[netpkt.Prefix]string{}
	}
	p.staleScratch = p.staleScratch[:0]
	for pfx := range p.adjIn {
		p.staleScratch = append(p.staleScratch, pfx)
	}
	clear(p.adjIn)
	clear(p.advertised)
	p.clearDirty()
	p.exportCache = nil
	p.setState(StateIdle)
	for _, pfx := range p.staleScratch {
		p.router.removeCandidate(pfx, p)
	}
}

// HandleMessage processes one encoded BGP message from the wire. Decode or
// protocol errors reset the session, as a NOTIFICATION would.
func (p *Peer) HandleMessage(data []byte) {
	p.MsgsIn++
	p.router.mMsgsIn.Inc()
	d, err := Decode(data)
	if err != nil {
		p.send(MarshalNotification(&Notification{Code: NotifMsgHeader}))
		p.reset(fmt.Sprintf("decode error: %v", err))
		return
	}
	switch d.Type {
	case MsgOpen:
		p.handleOpen(d.Open)
	case MsgKeepalive:
		p.handleKeepalive()
	case MsgUpdate:
		p.handleUpdate(d.Update)
	case MsgNotification:
		p.reset(fmt.Sprintf("notification from peer: code=%d/%d", d.Notif.Code, d.Notif.Subcode))
	}
}

func (p *Peer) handleOpen(o *Open) {
	if p.Config.RemoteAS != 0 && o.AS != p.Config.RemoteAS {
		p.send(MarshalNotification(&Notification{Code: NotifOpenError, Subcode: 2})) // bad peer AS
		p.reset(fmt.Sprintf("AS mismatch: got %d want %d", o.AS, p.Config.RemoteAS))
		return
	}
	if p.state == StateEstablished {
		if o.Gen == p.remoteGen {
			// Late duplicate OPEN from the connection we already confirmed:
			// re-acknowledge and stay Established.
			p.send(MarshalKeepalive())
			return
		}
		// A new incarnation: the peer restarted and everything we learned
		// from it is stale. Reset quietly (no NOTIFICATION — the peer is
		// already in a fresh connection) and handshake anew.
		p.reset("peer re-opened session")
		p.remoteID, p.remoteGen = o.BGPID, o.Gen
		p.sendOpen()
		p.send(MarshalKeepalive())
		p.setState(StateOpenConfirm)
		return
	}
	freshConn := o.Gen != p.remoteGen
	p.remoteID, p.remoteGen = o.BGPID, o.Gen
	if !p.openSent || (p.state == StateOpenSent && freshConn) {
		// Respond with our own OPEN: the passive side's first, or a re-send
		// when the remote (re)connects while we linger in OpenSent — a
		// stale half-open session would otherwise deadlock, since the
		// emulator has no hold timer to clear it.
		p.sendOpen()
	}
	p.send(MarshalKeepalive())
	p.setState(StateOpenConfirm)
}

func (p *Peer) handleKeepalive() {
	switch p.state {
	case StateOpenConfirm:
		p.establish()
	case StateEstablished:
		// Hold-timer refresh would go here; the emulator models session
		// liveness via link state rather than timers (see DESIGN.md).
	}
}

// establish transitions to Established and schedules the initial full-table
// advertisement.
func (p *Peer) establish() {
	p.setState(StateEstablished)
	for pfx, e := range p.router.locRIB {
		if len(e.best) > 0 {
			p.markDirty(pfx, e)
		}
	}
	p.scheduleFlush()
}

func (p *Peer) handleUpdate(u *Update) {
	switch p.state {
	case StateOpenConfirm:
		// The peer has gone Established (our KEEPALIVE arrived; its own may
		// still be in flight on the virtual link). Treat the UPDATE as the
		// implicit confirmation instead of NOTIFYING a healthy session away
		// — the storm that would otherwise follow is exactly the stale-
		// session flap bug class §7 Case 2 hunts.
		p.establish()
	case StateEstablished:
	default:
		// Stale datagram from a previous session incarnation: drop.
		return
	}
	for _, pfx := range u.Withdrawn {
		p.WithdrawsIn++
		p.router.mWithdrawsIn.Inc()
		if _, ok := p.adjIn[pfx]; ok {
			delete(p.adjIn, pfx)
			p.router.removeCandidate(pfx, p)
		}
	}
	if u.Attrs == nil || len(u.NLRI) == 0 {
		return
	}
	// Receiver-side loop detection: discard routes containing our AS.
	if u.Attrs.Path.Contains(p.router.cfg.AS) {
		return
	}
	for _, pfx := range u.NLRI {
		p.RoutesIn++
		p.router.mRoutesIn.Inc()
		attrs, permit := p.Config.ImportPolicy.Apply(pfx, u.Attrs)
		if !permit {
			// Treat as unfeasible: remove any previous acceptance.
			if _, ok := p.adjIn[pfx]; ok {
				delete(p.adjIn, pfx)
				p.router.removeCandidate(pfx, p)
			}
			continue
		}
		p.adjIn[pfx] = attrs
		p.router.upsertCandidate(pfx, p, attrs)
	}
}

// SetExportPolicy replaces the peer's export policy at runtime (an operator
// route-map edit), drops the export memo it invalidates, and queues every
// usable prefix for re-evaluation so withdraws and new announcements flow at
// the next flush.
func (p *Peer) SetExportPolicy(pol *Policy) {
	p.Config.ExportPolicy = pol
	p.exportCache = nil
	p.exportCacheOK = pol.prefixIndependent()
	for pfx, e := range p.router.locRIB {
		if len(e.best) > 0 {
			p.markDirty(pfx, e)
		}
	}
}

// markDirty queues a prefix for (re-)advertisement at the next flush. The
// entry's dense id addresses the peer's dirty bitset.
func (p *Peer) markDirty(pfx netpkt.Prefix, e *ribEntry) {
	if p.state != StateEstablished {
		return
	}
	w, bit := uint(e.id)>>6, uint64(1)<<(uint(e.id)&63)
	for uint(len(p.dirtyBits)) <= w {
		p.dirtyBits = append(p.dirtyBits, 0)
	}
	if p.dirtyBits[w]&bit != 0 {
		return
	}
	p.dirtyBits[w] |= bit
	p.dirtyList = append(p.dirtyList, pfx)
	p.scheduleFlush()
}

// clearDirty empties the dirty set, retaining its storage.
func (p *Peer) clearDirty() {
	clear(p.dirtyBits)
	p.dirtyList = p.dirtyList[:0]
}

func (p *Peer) scheduleFlush() {
	if p.flushTimer != nil {
		return
	}
	p.flushTimer = p.router.clock.After(p.router.cfg.MRAI, p.flush)
}

// flush drains the dirty set into batched UPDATE messages: one withdrawal
// message plus one message per distinct exported attribute set (split to
// respect the 4096-byte cap).
func (p *Peer) flush() {
	p.flushTimer = nil
	if p.state != StateEstablished || len(p.dirtyList) == 0 {
		p.clearDirty()
		return
	}
	var withdrawals []netpkt.Prefix
	type group struct {
		attrs    *Attrs
		prefixes []netpkt.Prefix
	}
	groups := map[string]*group{}

	for _, pfx := range p.dirtyList {
		attrs, ok := p.router.exportRoute(p, pfx)
		if !ok {
			if _, adv := p.advertised[pfx]; adv {
				delete(p.advertised, pfx)
				withdrawals = append(withdrawals, pfx)
			}
			continue
		}
		key := attrsKey(attrs)
		if prev, adv := p.advertised[pfx]; adv && prev == key {
			continue // no visible change
		}
		p.advertised[pfx] = key
		g := groups[key]
		if g == nil {
			g = &group{attrs: attrs}
			groups[key] = g
		}
		g.prefixes = append(g.prefixes, pfx)
	}
	p.clearDirty()

	// Deterministic wire order: sorted withdrawals, then groups by key.
	if len(withdrawals) > 0 {
		sortPrefixes(withdrawals)
		for _, chunk := range chunkPrefixes(withdrawals, MaxNLRIPerUpdate(nil)) {
			p.send(MarshalUpdate(&Update{Withdrawn: chunk}))
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		sortPrefixes(g.prefixes)
		max := MaxNLRIPerUpdate(g.attrs)
		for _, chunk := range chunkPrefixes(g.prefixes, max) {
			p.send(MarshalUpdate(&Update{Attrs: g.attrs, NLRI: chunk}))
		}
	}
}

func sortPrefixes(ps []netpkt.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr < ps[j].Addr
		}
		return ps[i].Len < ps[j].Len
	})
}

func chunkPrefixes(ps []netpkt.Prefix, max int) [][]netpkt.Prefix {
	if max <= 0 {
		max = 1
	}
	var out [][]netpkt.Prefix
	for len(ps) > max {
		out = append(out, ps[:max])
		ps = ps[max:]
	}
	if len(ps) > 0 {
		out = append(out, ps)
	}
	return out
}
