package bgp

import (
	"fmt"
	"sort"
	"sync/atomic"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

// SessionState is the BGP FSM state (RFC 4271 §8, condensed: the TCP
// Connect/Active states collapse into Idle because the emulator's transport
// is the virtual link itself).
type SessionState uint8

// FSM states.
const (
	StateIdle SessionState = iota
	StateOpenSent
	StateOpenConfirm
	StateEstablished
)

var stateNames = [...]string{"Idle", "OpenSent", "OpenConfirm", "Established"}

// String returns the RFC state name.
func (s SessionState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// PeerConfig describes one configured neighbor.
type PeerConfig struct {
	Name      string // remote device name (informational)
	LocalIP   netpkt.IP
	RemoteIP  netpkt.IP
	RemoteAS  uint32
	Interface string // local egress interface
	// ImportPolicy/ExportPolicy default to permit-all when nil.
	ImportPolicy *Policy
	ExportPolicy *Policy
	// Passive peers never initiate; they wait for the remote OPEN
	// (boundary speaker sessions are configured active on the speaker side).
	Passive bool
	// AdvertiseLocalOnly restricts announcements to locally originated
	// routes: the static-speaker property (§5.1) — a speaker never reflects
	// what it learns from boundary devices.
	AdvertiseLocalOnly bool
}

// Peer is the per-neighbor state: FSM, Adj-RIB-In, Adj-RIB-Out and the
// dirty set batched into UPDATEs.
type Peer struct {
	router *Router
	Index  int
	Config PeerConfig

	state     SessionState
	remoteID  netpkt.IP
	openSent  bool
	localGen  uint32 // our connection incarnation, refreshed on Start
	remoteGen uint32 // the peer's incarnation, learned from its OPEN

	// adjIn tracks which Loc-RIB entry ids this peer has an accepted route
	// for — a dense presence bitset instead of a per-route hash map, the
	// §10 memory restructuring that makes M-DC RIBs fit. The accepted attrs
	// themselves live only in the Loc-RIB candidate list (keyed by this
	// peer), so the per-peer table stores zero bytes per route. advertised
	// holds the canonical attrs last announced per entry id; the flush
	// comparison falls back to attrsKey equality so the router stays live
	// even when interning is disabled (pointer inequality alone would
	// re-advertise identical routes forever).
	adjIn      rib.Dense[struct{}]
	advertised rib.Dense[*Attrs]
	// mapRIBs switches the session to the pre-§10 per-route map layout.
	// It latches !interningEnabled() at session start: the non-interned
	// baseline the scale benchmark measures against is the seed's memory
	// model — per-route hash maps AND unshared attrs — so disabling
	// interning disables the compact layout with it. Behaviour is
	// identical in both layouts (flush output is sorted either way); only
	// the bytes per route differ.
	mapRIBs     bool
	adjInM      map[netpkt.Prefix]*Attrs
	advertisedM map[netpkt.Prefix]*Attrs
	// exportCacheM is the pre-§10 export-template memo: per peer, keyed on
	// the best candidate's attrs pointer. Baseline sessions keep it so the
	// ablation pays the seed's full memory bill — without interning every
	// received route carries a distinct attrs pointer, so the memo grows
	// with the table. Interned sessions use the router-level exportCache
	// instead and leave this nil.
	exportCacheM map[*Attrs]exportVal
	// The dirty set is a bitset addressed by ribEntry.id plus the insertion-
	// order list of prefixes to visit at the next flush; marking a prefix
	// dirty on every peer is on the decide hot path, and the bit test is far
	// cheaper than a map assignment.
	dirtyBits  []uint64
	dirtyList  []netpkt.Prefix
	flushTimer Timer
	// staleScratch is reused by reset to withdraw learned routes.
	staleScratch []netpkt.Prefix

	// Counters for monitoring and the CPU model.
	MsgsIn, MsgsOut       uint64
	RoutesIn, WithdrawsIn uint64
}

// State returns the current FSM state.
func (p *Peer) State() SessionState { return p.state }

// AdjInLen returns the number of routes accepted from this peer.
func (p *Peer) AdjInLen() int {
	if p.mapRIBs {
		return len(p.adjInM)
	}
	return p.adjIn.Len()
}

// AdvertisedLen returns the number of routes currently announced to this
// peer.
func (p *Peer) AdvertisedLen() int {
	if p.mapRIBs {
		return len(p.advertisedM)
	}
	return p.advertised.Len()
}

// The adj*/adv* helpers below are the layout seam between the compact dense
// tables and the baseline per-route maps (see mapRIBs). Both Adj-RIBs are
// addressed by (prefix, Loc-RIB entry id); the dense layout uses the id,
// the map layout the prefix.

func (p *Peer) adjSet(pfx netpkt.Prefix, id int, a *Attrs) {
	if p.mapRIBs {
		if p.adjInM == nil {
			p.adjInM = map[netpkt.Prefix]*Attrs{}
		}
		p.adjInM[pfx] = a
		return
	}
	p.adjIn.Set(id, struct{}{})
}

func (p *Peer) adjDelete(pfx netpkt.Prefix, id int) bool {
	if p.mapRIBs {
		if _, ok := p.adjInM[pfx]; ok {
			delete(p.adjInM, pfx)
			return true
		}
		return false
	}
	return p.adjIn.Delete(id)
}

func (p *Peer) advGet(pfx netpkt.Prefix, id int) (*Attrs, bool) {
	if p.mapRIBs {
		a, ok := p.advertisedM[pfx]
		return a, ok
	}
	return p.advertised.Get(id)
}

func (p *Peer) advSet(pfx netpkt.Prefix, id int, a *Attrs) {
	if p.mapRIBs {
		if p.advertisedM == nil {
			p.advertisedM = map[netpkt.Prefix]*Attrs{}
		}
		p.advertisedM[pfx] = a
		return
	}
	p.advertised.Set(id, a)
}

func (p *Peer) advDelete(pfx netpkt.Prefix, id int) bool {
	if p.mapRIBs {
		if _, ok := p.advertisedM[pfx]; ok {
			delete(p.advertisedM, pfx)
			return true
		}
		return false
	}
	return p.advertised.Delete(id)
}

// clearRIBs empties both Adj-RIBs in whichever layout is active.
func (p *Peer) clearRIBs() {
	if p.mapRIBs {
		p.adjInM = nil
		p.advertisedM = nil
		p.exportCacheM = nil
		return
	}
	p.adjIn.Clear()
	p.advertised.Clear()
}

// exportVal is one memoized export-template outcome (see Router.exportCache).
type exportVal struct {
	attrs *Attrs
	ok    bool
}

// connGen hands out process-unique connection generations. Each engine is
// single-threaded, but the experiment harness runs independent engines on
// parallel goroutines and only generation *equality* matters to the
// protocol, so an atomic counter keeps behaviour identical while staying
// race-free.
var connGen atomic.Uint32

// Start initiates the session (sends OPEN) unless the peer is passive.
func (p *Peer) Start() {
	if p.state != StateIdle {
		return
	}
	p.localGen = connGen.Add(1)
	// The baseline layout latches here: a session started while interning
	// is off runs the seed's per-route map Adj-RIBs for its lifetime.
	p.mapRIBs = !interningEnabled()
	p.clearRIBs()
	p.clearDirty()
	if p.Config.Passive {
		return
	}
	p.sendOpen()
	p.setState(StateOpenSent)
}

func (p *Peer) sendOpen() {
	if p.localGen == 0 {
		p.localGen = connGen.Add(1)
	}
	p.send(MarshalOpen(&Open{
		AS:       p.router.cfg.AS,
		HoldTime: p.router.cfg.HoldTime,
		BGPID:    p.router.cfg.RouterID,
		Gen:      p.localGen,
	}))
	p.openSent = true
}

func (p *Peer) send(data []byte) {
	p.MsgsOut++
	p.router.mMsgsOut.Inc()
	p.router.hooks.SendToPeer(p.Index, data)
}

func (p *Peer) setState(s SessionState) {
	if p.state == s {
		return
	}
	p.state = s
	p.router.hooks.SessionEvent(p.Index, s)
}

// Stop tears the session down (administrative shutdown or link failure).
// All routes learned from the peer are withdrawn from the Loc-RIB.
func (p *Peer) Stop(reason string) {
	if p.state == StateIdle && !p.openSent {
		return
	}
	if p.state == StateEstablished {
		p.send(MarshalNotification(&Notification{Code: NotifCease}))
	}
	p.reset(reason)
}

// reset clears session state and flushes learned routes.
func (p *Peer) reset(reason string) {
	p.router.hooks.Logf("bgp %s: session to %s reset: %s", p.router.cfg.Name, p.Config.Name, reason)
	p.openSent = false
	if p.flushTimer != nil {
		p.flushTimer.Cancel()
		p.flushTimer = nil
	}
	p.staleScratch = p.staleScratch[:0]
	if p.mapRIBs {
		for pfx := range p.adjInM {
			p.staleScratch = append(p.staleScratch, pfx)
		}
		// Map iteration order is random; sort so teardown stays deterministic.
		sortPrefixes(p.staleScratch)
	} else {
		p.adjIn.Range(func(id int, _ struct{}) bool {
			p.staleScratch = append(p.staleScratch, p.router.prefixByID[id])
			return true
		})
	}
	p.clearRIBs()
	p.clearDirty()
	p.setState(StateIdle)
	for _, pfx := range p.staleScratch {
		p.router.removeCandidate(pfx, p)
	}
}

// HandleMessage processes one encoded BGP message from the wire. Decode or
// protocol errors reset the session, as a NOTIFICATION would.
func (p *Peer) HandleMessage(data []byte) {
	p.MsgsIn++
	p.router.mMsgsIn.Inc()
	d, err := Decode(data)
	if err != nil {
		p.send(MarshalNotification(&Notification{Code: NotifMsgHeader}))
		p.reset(fmt.Sprintf("decode error: %v", err))
		return
	}
	switch d.Type {
	case MsgOpen:
		p.handleOpen(d.Open)
	case MsgKeepalive:
		p.handleKeepalive()
	case MsgUpdate:
		p.handleUpdate(d.Update)
	case MsgNotification:
		p.reset(fmt.Sprintf("notification from peer: code=%d/%d", d.Notif.Code, d.Notif.Subcode))
	}
}

func (p *Peer) handleOpen(o *Open) {
	if p.Config.RemoteAS != 0 && o.AS != p.Config.RemoteAS {
		p.send(MarshalNotification(&Notification{Code: NotifOpenError, Subcode: 2})) // bad peer AS
		p.reset(fmt.Sprintf("AS mismatch: got %d want %d", o.AS, p.Config.RemoteAS))
		return
	}
	if p.state == StateEstablished {
		if o.Gen == p.remoteGen {
			// Late duplicate OPEN from the connection we already confirmed:
			// re-acknowledge and stay Established.
			p.send(MarshalKeepalive())
			return
		}
		// A new incarnation: the peer restarted and everything we learned
		// from it is stale. Reset quietly (no NOTIFICATION — the peer is
		// already in a fresh connection) and handshake anew.
		p.reset("peer re-opened session")
		p.remoteID, p.remoteGen = o.BGPID, o.Gen
		p.sendOpen()
		p.send(MarshalKeepalive())
		p.setState(StateOpenConfirm)
		return
	}
	freshConn := o.Gen != p.remoteGen
	p.remoteID, p.remoteGen = o.BGPID, o.Gen
	if !p.openSent || (p.state == StateOpenSent && freshConn) {
		// Respond with our own OPEN: the passive side's first, or a re-send
		// when the remote (re)connects while we linger in OpenSent — a
		// stale half-open session would otherwise deadlock, since the
		// emulator has no hold timer to clear it.
		p.sendOpen()
	}
	p.send(MarshalKeepalive())
	p.setState(StateOpenConfirm)
}

func (p *Peer) handleKeepalive() {
	switch p.state {
	case StateOpenConfirm:
		p.establish()
	case StateEstablished:
		// Hold-timer refresh would go here; the emulator models session
		// liveness via link state rather than timers (see DESIGN.md).
	}
}

// establish transitions to Established and schedules the initial full-table
// advertisement.
func (p *Peer) establish() {
	p.setState(StateEstablished)
	for pfx, e := range p.router.locRIB {
		if len(e.best) > 0 {
			p.markDirty(pfx, e)
		}
	}
	p.scheduleFlush()
}

func (p *Peer) handleUpdate(u *Update) {
	switch p.state {
	case StateOpenConfirm:
		// The peer has gone Established (our KEEPALIVE arrived; its own may
		// still be in flight on the virtual link). Treat the UPDATE as the
		// implicit confirmation instead of NOTIFYING a healthy session away
		// — the storm that would otherwise follow is exactly the stale-
		// session flap bug class §7 Case 2 hunts.
		p.establish()
	case StateEstablished:
	default:
		// Stale datagram from a previous session incarnation: drop.
		return
	}
	for _, pfx := range u.Withdrawn {
		p.WithdrawsIn++
		p.router.mWithdrawsIn.Inc()
		if e := p.router.locRIB[pfx]; e != nil && p.adjDelete(pfx, e.id) {
			p.router.removeCandidate(pfx, p)
		}
	}
	if u.Attrs == nil || len(u.NLRI) == 0 {
		return
	}
	// Receiver-side loop detection: discard routes containing our AS.
	if u.Attrs.Path.Contains(p.router.cfg.AS) {
		return
	}
	for _, pfx := range u.NLRI {
		p.RoutesIn++
		p.router.mRoutesIn.Inc()
		attrs, permit := p.Config.ImportPolicy.Apply(pfx, u.Attrs)
		if attrs != u.Attrs {
			// The import policy derived a modified attribute set; intern it
			// so policy-heavy fabrics share those too (u.Attrs itself is
			// already canonical from Decode).
			attrs = Intern(attrs)
		}
		if !permit {
			// Treat as unfeasible: remove any previous acceptance.
			if e := p.router.locRIB[pfx]; e != nil && p.adjDelete(pfx, e.id) {
				p.router.removeCandidate(pfx, p)
			}
			continue
		}
		e := p.router.upsertCandidate(pfx, p, attrs)
		p.adjSet(pfx, e.id, attrs)
	}
}

// SetExportPolicy replaces the peer's export policy at runtime (an operator
// route-map edit) and queues every usable prefix for re-evaluation so
// withdraws and new announcements flow at the next flush. The router's
// export-template memo keys on the policy pointer, so the entries computed
// under the old policy simply become unreachable — no invalidation needed.
func (p *Peer) SetExportPolicy(pol *Policy) {
	p.Config.ExportPolicy = pol
	for pfx, e := range p.router.locRIB {
		if len(e.best) > 0 {
			p.markDirty(pfx, e)
		}
	}
}

// markDirty queues a prefix for (re-)advertisement at the next flush. The
// entry's dense id addresses the peer's dirty bitset.
func (p *Peer) markDirty(pfx netpkt.Prefix, e *ribEntry) {
	if p.state != StateEstablished {
		return
	}
	w, bit := uint(e.id)>>6, uint64(1)<<(uint(e.id)&63)
	for uint(len(p.dirtyBits)) <= w {
		p.dirtyBits = append(p.dirtyBits, 0)
	}
	if p.dirtyBits[w]&bit != 0 {
		return
	}
	p.dirtyBits[w] |= bit
	p.dirtyList = append(p.dirtyList, pfx)
	p.scheduleFlush()
}

// clearDirty empties the dirty set, retaining its storage.
func (p *Peer) clearDirty() {
	clear(p.dirtyBits)
	p.dirtyList = p.dirtyList[:0]
}

func (p *Peer) scheduleFlush() {
	if p.flushTimer != nil {
		return
	}
	p.flushTimer = p.router.clock.After(p.router.cfg.MRAI, p.flush)
}

// flush drains the dirty set into batched UPDATE messages: one withdrawal
// message plus one message per distinct exported attribute set (split to
// respect the 4096-byte cap).
func (p *Peer) flush() {
	p.flushTimer = nil
	if p.state != StateEstablished || len(p.dirtyList) == 0 {
		p.clearDirty()
		return
	}
	var withdrawals []netpkt.Prefix
	type group struct {
		attrs    *Attrs
		prefixes []netpkt.Prefix
	}
	groups := map[string]*group{}

	for _, pfx := range p.dirtyList {
		e := p.router.locRIB[pfx]
		if e == nil {
			continue // markDirty only queues prefixes with a Loc-RIB entry
		}
		attrs, ok := p.router.exportRoute(p, pfx)
		if !ok {
			if p.advDelete(pfx, e.id) {
				withdrawals = append(withdrawals, pfx)
			}
			continue
		}
		// Interning makes the no-change test a pointer compare in the common
		// case; the attrsKey fallback keeps the MRAI loop convergent when
		// interning is off (equal bytes, different pointers).
		if prev, adv := p.advGet(pfx, e.id); adv && (prev == attrs || attrsKey(prev) == attrsKey(attrs)) {
			continue // no visible change
		}
		p.advSet(pfx, e.id, attrs)
		key := attrsKey(attrs)
		g := groups[key]
		if g == nil {
			g = &group{attrs: attrs}
			groups[key] = g
		}
		g.prefixes = append(g.prefixes, pfx)
	}
	p.clearDirty()

	// Deterministic wire order: sorted withdrawals, then groups by key.
	if len(withdrawals) > 0 {
		sortPrefixes(withdrawals)
		for _, chunk := range chunkPrefixes(withdrawals, MaxNLRIPerUpdate(nil)) {
			p.send(MarshalUpdate(&Update{Withdrawn: chunk}))
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		sortPrefixes(g.prefixes)
		max := MaxNLRIPerUpdate(g.attrs)
		for _, chunk := range chunkPrefixes(g.prefixes, max) {
			// Next-hop-self: the session's local address is stamped onto the
			// wire here, so the RIB-resident attrs stay session-independent.
			p.send(MarshalUpdate(&Update{Attrs: g.attrs, NextHop: p.Config.LocalIP, NLRI: chunk}))
		}
	}
}

func sortPrefixes(ps []netpkt.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr != ps[j].Addr {
			return ps[i].Addr < ps[j].Addr
		}
		return ps[i].Len < ps[j].Len
	})
}

func chunkPrefixes(ps []netpkt.Prefix, max int) [][]netpkt.Prefix {
	if max <= 0 {
		max = 1
	}
	var out [][]netpkt.Prefix
	for len(ps) > max {
		out = append(out, ps[:max])
		ps = ps[max:]
	}
	if len(ps) > 0 {
		out = append(out, ps)
	}
	return out
}
