package bgp

import "testing"

func u32(v uint32) *uint32 { return &v }

func TestPolicyNilPermitsAll(t *testing.T) {
	var pol *Policy
	a := &Attrs{Path: EmptyPath}
	got, ok := pol.Apply(pfx("10.0.0.0/8"), a)
	if !ok || got != a {
		t.Fatal("nil policy must permit unchanged")
	}
}

func TestPermitAllDenyAll(t *testing.T) {
	a := &Attrs{Path: EmptyPath}
	if _, ok := PermitAll.Apply(pfx("1.0.0.0/8"), a); !ok {
		t.Fatal("PermitAll denied")
	}
	if _, ok := DenyAll.Apply(pfx("1.0.0.0/8"), a); ok {
		t.Fatal("DenyAll permitted")
	}
}

func TestPrefixMatchExactAndRange(t *testing.T) {
	p16 := pfx("10.1.0.0/16")
	pol := &Policy{
		Rules: []Rule{
			{Name: "exact", Match: Match{Prefix: &p16, Exact: true}, Action: Deny},
		},
		DefaultAction: Permit,
	}
	a := &Attrs{Path: EmptyPath}
	if _, ok := pol.Apply(pfx("10.1.0.0/16"), a); ok {
		t.Fatal("exact match missed")
	}
	if _, ok := pol.Apply(pfx("10.1.2.0/24"), a); !ok {
		t.Fatal("exact rule wrongly matched longer prefix")
	}

	// GE/LE range: match /24-/32 under 10.0.0.0/8.
	p8 := pfx("10.0.0.0/8")
	rangePol := &Policy{
		Rules:         []Rule{{Match: Match{Prefix: &p8, GE: 24, LE: 32}, Action: Deny}},
		DefaultAction: Permit,
	}
	if _, ok := rangePol.Apply(pfx("10.1.2.0/24"), a); ok {
		t.Fatal("/24 should match GE24")
	}
	if _, ok := rangePol.Apply(pfx("10.1.0.0/16"), a); !ok {
		t.Fatal("/16 should not match GE24")
	}
	if _, ok := rangePol.Apply(pfx("11.0.0.0/24"), a); !ok {
		t.Fatal("prefix outside 10/8 should not match")
	}
}

func TestPathContainsMatch(t *testing.T) {
	pol := &Policy{
		Rules:         []Rule{{Match: Match{PathContains: 65100}, Action: Deny}},
		DefaultAction: Permit,
	}
	via := &Attrs{Path: NewPath(65100, 1)}
	direct := &Attrs{Path: NewPath(1)}
	if _, ok := pol.Apply(pfx("1.0.0.0/8"), via); ok {
		t.Fatal("path-contains should deny")
	}
	if _, ok := pol.Apply(pfx("1.0.0.0/8"), direct); !ok {
		t.Fatal("path without AS should pass")
	}
	// A route with no path cannot match path-contains, so the deny rule is
	// skipped and the default permit applies.
	if _, ok := pol.Apply(pfx("1.0.0.0/8"), &Attrs{}); !ok {
		t.Fatal("nil path matched path-contains deny rule")
	}
}

func TestRewrites(t *testing.T) {
	pol := &Policy{
		Rules: []Rule{{
			Action:       Permit,
			SetLocalPref: u32(250),
			SetMED:       u32(9),
			PrependAS:    65001, PrependCount: 2,
		}},
		DefaultAction: Deny,
	}
	in := &Attrs{Path: NewPath(7)}
	out, ok := pol.Apply(pfx("1.0.0.0/8"), in)
	if !ok {
		t.Fatal("denied")
	}
	if out == in {
		t.Fatal("rewrite must copy")
	}
	if !out.HasLP || out.LocalPref != 250 || !out.HasMED || out.MED != 9 {
		t.Fatalf("rewrites wrong: %+v", out)
	}
	if out.Path.String() != "65001 65001 7" {
		t.Fatalf("prepend wrong: %q", out.Path.String())
	}
	if in.HasLP || in.Path.String() != "7" {
		t.Fatal("input mutated")
	}
}

func TestNoRewriteReturnsSamePointer(t *testing.T) {
	pol := &Policy{Rules: []Rule{{Action: Permit}}}
	in := &Attrs{Path: NewPath(1)}
	out, ok := pol.Apply(pfx("1.0.0.0/8"), in)
	if !ok || out != in {
		t.Fatal("permit without rewrites should return the same attrs")
	}
}

func TestFirstMatchWins(t *testing.T) {
	p8 := pfx("10.0.0.0/8")
	pol := &Policy{
		Rules: []Rule{
			{Match: Match{Prefix: &p8}, Action: Permit, SetLocalPref: u32(111)},
			{Match: Match{Prefix: &p8}, Action: Deny},
		},
		DefaultAction: Deny,
	}
	out, ok := pol.Apply(pfx("10.1.0.0/16"), &Attrs{Path: EmptyPath})
	if !ok || out.LocalPref != 111 {
		t.Fatal("first rule must win")
	}
}

func TestPolicyString(t *testing.T) {
	p8 := pfx("10.0.0.0/8")
	pol := &Policy{
		Name: "leak-guard",
		Rules: []Rule{
			{Name: "10", Match: Match{Prefix: &p8, Exact: true}, Action: Deny},
			{Name: "20", Match: Match{PathContains: 65100}, Action: Permit},
		},
		DefaultAction: Permit,
	}
	s := pol.String()
	for _, want := range []string{"route-map leak-guard", "deny 10 match 10.0.0.0/8 exact", "permit 20 match-as 65100", "default permit"} {
		if !contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
}
