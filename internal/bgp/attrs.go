// Package bgp implements the BGP-4 control plane that runs inside every
// emulated device: the RFC 4271 message codec (with 4-octet AS numbers per
// RFC 6793), the session state machine, the decision process with ECMP
// multipath, export policies, and the prefix-aggregation engine whose
// vendor-selectable AS-path behaviour reproduces the Figure 1 incident.
//
// The fabric follows RFC 7938 ("BGP in large-scale data centers"): eBGP on
// every link, next-hop-self everywhere, unique ASNs per the topo package's
// AS plan.
//
// DESIGN.md §2 places this substrate in the system inventory; §4 records the
// RFC-condensation decisions.
package bgp

import (
	"fmt"
	"strings"

	"crystalnet/internal/netpkt"
)

// Origin is the BGP ORIGIN attribute.
type Origin uint8

// Origin values, in decision-process preference order (lower preferred).
const (
	OriginIGP Origin = iota
	OriginEGP
	OriginIncomplete
)

// String returns the conventional origin letter.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "i"
	case OriginEGP:
		return "e"
	}
	return "?"
}

// SegmentType distinguishes AS_PATH segment kinds.
type SegmentType uint8

// AS_PATH segment types (RFC 4271 §4.3).
const (
	ASSet      SegmentType = 1
	ASSequence SegmentType = 2
)

// Segment is one AS_PATH segment.
type Segment struct {
	Type SegmentType
	ASNs []uint32
}

// ASPath is a sequence of segments. Paths are treated as immutable once
// built; routers share them freely across RIB entries to keep L-DC-scale
// tables affordable.
type ASPath struct {
	Segments []Segment
}

// EmptyPath is the zero-length AS path used for locally originated routes.
var EmptyPath = &ASPath{}

// NewPath returns an AS_SEQUENCE path of the given ASNs.
func NewPath(asns ...uint32) *ASPath {
	if len(asns) == 0 {
		return EmptyPath
	}
	return &ASPath{Segments: []Segment{{Type: ASSequence, ASNs: asns}}}
}

// Length returns the decision-process path length: each AS_SEQUENCE member
// counts 1, each AS_SET counts 1 in total (RFC 4271 §9.1.2.2).
func (p *ASPath) Length() int {
	n := 0
	for _, s := range p.Segments {
		if s.Type == ASSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// Contains reports whether asn appears anywhere in the path — the BGP loop
// check Proposition 5.2's proof relies on.
func (p *ASPath) Contains(asn uint32) bool {
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if a == asn {
				return true
			}
		}
	}
	return false
}

// Prepend returns a new path with asn prepended as an AS_SEQUENCE element.
// The receiver is not modified.
func (p *ASPath) Prepend(asn uint32) *ASPath {
	if len(p.Segments) > 0 && p.Segments[0].Type == ASSequence {
		seg := Segment{Type: ASSequence, ASNs: make([]uint32, 0, len(p.Segments[0].ASNs)+1)}
		seg.ASNs = append(seg.ASNs, asn)
		seg.ASNs = append(seg.ASNs, p.Segments[0].ASNs...)
		out := &ASPath{Segments: make([]Segment, 0, len(p.Segments))}
		out.Segments = append(out.Segments, seg)
		out.Segments = append(out.Segments, p.Segments[1:]...)
		return out
	}
	out := &ASPath{Segments: make([]Segment, 0, len(p.Segments)+1)}
	out.Segments = append(out.Segments, Segment{Type: ASSequence, ASNs: []uint32{asn}})
	out.Segments = append(out.Segments, p.Segments...)
	return out
}

// First returns the leftmost AS of the path (the neighbor that sent it), or
// 0 for an empty path.
func (p *ASPath) First() uint32 {
	for _, s := range p.Segments {
		if len(s.ASNs) > 0 {
			return s.ASNs[0]
		}
	}
	return 0
}

// Last returns the rightmost AS (the originator), or 0 for an empty path.
func (p *ASPath) Last() uint32 {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		if n := len(p.Segments[i].ASNs); n > 0 {
			return p.Segments[i].ASNs[n-1]
		}
	}
	return 0
}

// Equal reports structural equality.
func (p *ASPath) Equal(q *ASPath) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		if p.Segments[i].Type != q.Segments[i].Type || len(p.Segments[i].ASNs) != len(q.Segments[i].ASNs) {
			return false
		}
		for j := range p.Segments[i].ASNs {
			if p.Segments[i].ASNs[j] != q.Segments[i].ASNs[j] {
				return false
			}
		}
	}
	return true
}

// String renders the path in show-command style: "65100 65200 {1 2}".
func (p *ASPath) String() string {
	if len(p.Segments) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == ASSet {
			b.WriteByte('{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", a)
		}
		if s.Type == ASSet {
			b.WriteByte('}')
		}
	}
	return b.String()
}

// Attrs is the full path-attribute set of a route. Attrs values are shared
// between all NLRI of an UPDATE and between RIB entries; treat as immutable.
//
// NextHop is zero on every RIB-resident Attrs the router produces: the
// fabric is next-hop-self on all sessions, so the next hop is carried
// per-message (Update.NextHop) and derived from the owning session at
// FIB-install time. That session-independence is what lets one interned
// Attrs be shared by every device in the process (DESIGN.md §10). The field
// remains for models that build standalone attribute sets (batfish).
type Attrs struct {
	Origin    Origin
	Path      *ASPath
	NextHop   netpkt.IP
	MED       uint32
	HasMED    bool
	LocalPref uint32 // default 100 when absent
	HasLP     bool
	Atomic    bool // ATOMIC_AGGREGATE
	AggAS     uint32
	AggID     netpkt.IP // AGGREGATOR

	// ekey memoizes the attrsKey fingerprint ("" = not yet computed). Attrs
	// are allocated per engine and immutable once shared, so the memo is
	// filled at most once; any code that copies-and-mutates an Attrs must
	// reset it.
	ekey string
}

// EffectiveLocalPref returns LOCAL_PREF or the conventional default 100.
func (a *Attrs) EffectiveLocalPref() uint32 {
	if a.HasLP {
		return a.LocalPref
	}
	return 100
}

// WithNextHop returns a copy of a with the next hop replaced.
func (a *Attrs) WithNextHop(nh netpkt.IP) *Attrs {
	c := *a
	c.NextHop = nh
	c.ekey = ""
	return &c
}

// WithPath returns a copy of a with the AS path replaced.
func (a *Attrs) WithPath(p *ASPath) *Attrs {
	c := *a
	c.Path = p
	c.ekey = ""
	return &c
}

// String summarizes the attributes for show commands and logs.
func (a *Attrs) String() string {
	s := fmt.Sprintf("nh=%s path=[%s] origin=%s lp=%d", a.NextHop, a.Path, a.Origin, a.EffectiveLocalPref())
	if a.HasMED {
		s += fmt.Sprintf(" med=%d", a.MED)
	}
	if a.Atomic {
		s += " atomic"
	}
	return s
}
