package bgp

import (
	"sync"
	"sync/atomic"

	"crystalnet/internal/netpkt"
)

// This file implements the process-wide path-attribute intern table.
//
// At M-DC scale the same attribute set is parsed out of UPDATEs O(routes ×
// peers × devices) times: every neighbor of every device allocates its own
// structurally identical *Attrs for every route it learns. Interning
// collapses those copies into one canonical immutable object per distinct
// attribute set, so Adj-RIB-In/Out entries across the whole emulation are
// shared pointers — the same invariant the checkpoint sealing machinery
// (DESIGN.md §6) establishes at fork time, extended to all of convergence.
//
// The table is process-global and thread-safe: independent engines run on
// parallel goroutines (chaos campaigns, crystald, sharded convergence), and
// sharing canonical attrs *between* engines is exactly the point. An Attrs
// is published to the table only after its ekey memo is filled, so readers
// never race the lazy fingerprint fill. Canonical objects are immutable
// forever after (enforced under -tags crystaldebug).
//
// Interning is keyed by computeAttrsKey plus the AGGREGATOR router ID:
// the wire-grouping fingerprint (ekey) deliberately omits AggID, but two
// attribute sets differing only in AggID are distinct route attributes and
// must not unify. DESIGN.md §10 covers the table's lifetime.

// maxInternTable bounds the table; it is cleared wholesale when full, the
// same policy as the router-local memo caches. Canonical objects already
// handed out stay valid (and sealed) — only future lookups re-intern.
const maxInternTable = 1 << 17

var internTab = struct {
	sync.Mutex
	m map[internKey]*Attrs
}{m: make(map[internKey]*Attrs)}

type internKey struct {
	ekey  string
	aggID netpkt.IP
}

var (
	internHits     atomic.Uint64
	internMisses   atomic.Uint64
	internSize     atomic.Int64
	internDisabled atomic.Bool
)

// SetInterning toggles the global intern table (on by default). Disabling
// it makes Intern the identity function — the non-interned baseline the
// M-DC memory experiment measures against. Toggling clears the table and
// resets the hit/miss counters so measurements do not bleed across modes.
func SetInterning(on bool) {
	internTab.Lock()
	internDisabled.Store(!on)
	internTab.m = make(map[internKey]*Attrs)
	internSize.Store(0)
	internHits.Store(0)
	internMisses.Store(0)
	internTab.Unlock()
}

// InternStats reports the intern table's lifetime hits and misses and its
// current size. The counters are process-global accumulators, so they are
// reported by the bench harness (crystalbench -scale) rather than recorded
// into the deterministic per-emulation obs trace.
func InternStats() (hits, misses uint64, size int) {
	return internHits.Load(), internMisses.Load(), int(internSize.Load())
}

// interningEnabled reports whether the global intern table is active —
// memoization layers whose keys are canonical pointers (the router export
// cache) must bypass themselves while it is off.
func interningEnabled() bool { return !internDisabled.Load() }

// Intern returns the canonical *Attrs equal to a, registering a as the
// canonical object if none exists. The returned value must be treated as
// deeply immutable: it may be aliased by every RIB in the process. a itself
// must not be mutated after the call either (it may have become canonical).
// A nil a is returned unchanged.
func Intern(a *Attrs) *Attrs {
	if a == nil || internDisabled.Load() {
		return a
	}
	// Fill the fingerprint memo before publication: after this the object
	// is read-only, so cross-goroutine sharing is race-free.
	key := internKey{ekey: attrsKey(a), aggID: a.AggID}
	internTab.Lock()
	if c, ok := internTab.m[key]; ok {
		internTab.Unlock()
		internHits.Add(1)
		return c
	}
	if len(internTab.m) >= maxInternTable {
		internTab.m = make(map[internKey]*Attrs)
		internSize.Store(0)
	}
	internTab.m[key] = a
	internSize.Store(int64(len(internTab.m)))
	internTab.Unlock()
	internMisses.Add(1)
	return a
}
