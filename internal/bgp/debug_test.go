//go:build crystaldebug

package bgp

import (
	"testing"

	"crystalnet/internal/netpkt"
)

// TestSealedMutationCaught is the regression the crystaldebug assertion
// exists for: code that copies an Attrs, mutates the copy, and forgets to
// reset the fingerprint memo would silently poison UPDATE grouping and the
// intern table. Under -tags crystaldebug the next attrsKey touch panics.
func TestSealedMutationCaught(t *testing.T) {
	SetInterning(true)
	defer SetInterning(true)

	a := Intern(&Attrs{Origin: OriginIGP, Path: NewPath(65001), NextHop: netpkt.IPFromBytes(10, 0, 0, 9)})

	// The violation: a shallow copy keeps the sealed ekey while the
	// attribute bytes change underneath it.
	c := *a
	c.NextHop = netpkt.IPFromBytes(10, 0, 0, 10)

	defer func() {
		if recover() == nil {
			t.Fatalf("copy-and-mutate without resetting ekey was not caught")
		}
	}()
	attrsKey(&c)
}

// TestSealedUnmutatedPasses pins the assertion down: touching a sealed but
// unmutated Attrs must not panic.
func TestSealedUnmutatedPasses(t *testing.T) {
	a := Intern(&Attrs{Origin: OriginEGP, Path: NewPath(65002), NextHop: 3})
	if attrsKey(a) == "" {
		t.Fatal("empty key")
	}
}
