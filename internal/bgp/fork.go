package bgp

import (
	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

// SealAttrs forces the lazy fingerprint memo (ekey) on every *Attrs the
// router could share with a fork. Attrs are immutable once shared *except*
// for that memo, so sealing them once, single-threaded, at checkpoint time
// turns them fully read-only — after which any number of concurrent forks
// can alias them without cloning and without racing on the memo fill.
func (r *Router) SealAttrs() {
	seal := func(a *Attrs) {
		if a != nil {
			attrsKey(a)
		}
	}
	for _, p := range r.peers {
		for _, a := range p.adjIn {
			seal(a)
		}
	}
	sealEntry := func(e *ribEntry) {
		for i := range e.candidates {
			seal(e.candidates[i].attrs)
		}
		seal(e.lastBest)
	}
	for _, e := range r.locRIB {
		sealEntry(e)
	}
	for i := range r.aggState {
		for _, e := range r.aggState[i].covered {
			sealEntry(e)
		}
	}
}

// Fork returns a deep copy of the router for a forked emulation, rebound to
// the fork's clock and hooks. The source router is read strictly read-only,
// so any number of forks can be taken from it concurrently — provided
// SealAttrs ran once before the first fork.
//
// Attribute objects (*Attrs) and AS paths are immutable once shared, so the
// fork aliases them instead of cloning: the decide path compares attribute
// pointers (prevBestAttrs != newBestAttrs), and sharing preserves the exact
// aliasing topology between a peer's Adj-RIB-In, Loc-RIB candidates and the
// entries' lastBest caches that a clone would have to reconstruct.
//
// The prepend and export caches are deliberately left empty. Aliasing
// keeps their pointer keys valid, so copying them would be correct — but
// measured on the S-DC chaos campaign the copies cost more than the
// misses: fault churn mostly derives new attribute objects, which miss any
// warm cache. Cache state never changes output bytes (pure memoization),
// only how much work a flush does.
func (r *Router) Fork(clock Clock, hooks Hooks) *Router {
	if hooks.Logf == nil {
		hooks.Logf = func(string, ...any) {}
	}
	if hooks.SessionEvent == nil {
		hooks.SessionEvent = func(int, SessionState) {}
	}
	c := &Router{
		cfg:          r.cfg,
		clock:        clock,
		hooks:        hooks,
		locRIB:       make(map[netpkt.Prefix]*ribEntry, len(r.locRIB)),
		seq:          r.seq,
		nextID:       r.nextID,
		prependCache: map[*ASPath]*ASPath{},
	}
	// The fork's hooks carry the fork's recorder, whose counters already
	// hold the parent's totals (obs.Recorder.Fork deep-copies them), so
	// rebinding continues the series rather than restarting it.
	c.bindMetrics(hooks.Rec)

	// Peers first: Loc-RIB candidates reference them by pointer.
	c.peers = make([]*Peer, len(r.peers))
	for i, p := range r.peers {
		np := &Peer{
			router:        c,
			Index:         p.Index,
			Config:        p.Config,
			state:         p.state,
			remoteID:      p.remoteID,
			openSent:      p.openSent,
			localGen:      p.localGen,
			remoteGen:     p.remoteGen,
			dirtyBits:     append([]uint64(nil), p.dirtyBits...),
			dirtyList:     append([]netpkt.Prefix(nil), p.dirtyList...),
			exportCacheOK: p.exportCacheOK,
			MsgsIn:        p.MsgsIn,
			MsgsOut:       p.MsgsOut,
			RoutesIn:      p.RoutesIn,
			WithdrawsIn:   p.WithdrawsIn,
		}
		// flushTimer is a pending closure and must be nil: forks are only
		// taken at quiescence, when every MRAI flush has already fired.
		if p.adjIn != nil {
			np.adjIn = make(map[netpkt.Prefix]*Attrs, len(p.adjIn))
			for pfx, a := range p.adjIn {
				np.adjIn[pfx] = a
			}
		}
		if p.advertised != nil {
			np.advertised = make(map[netpkt.Prefix]string, len(p.advertised))
			for pfx, key := range p.advertised {
				np.advertised[pfx] = key
			}
		}
		c.peers[i] = np
	}

	// Loc-RIB entries, memoized so the aggregate coverage index below can
	// be remapped onto the same clones.
	entryMap := make(map[*ribEntry]*ribEntry, len(r.locRIB))
	cloneEntry := func(e *ribEntry) *ribEntry {
		if dup, ok := entryMap[e]; ok {
			return dup
		}
		dup := &ribEntry{
			id:         e.id,
			candidates: make([]candidate, len(e.candidates)),
			best:       append([]int(nil), e.best...),
			installed:  append([]rib.NextHop(nil), e.installed...),
			lastBest:   e.lastBest,
			suppressed: e.suppressed,
		}
		for i, cand := range e.candidates {
			var np *Peer
			if cand.peer != nil {
				np = c.peers[cand.peer.Index]
			}
			dup.candidates[i] = candidate{peer: np, attrs: cand.attrs, seq: cand.seq}
		}
		entryMap[e] = dup
		return dup
	}
	for pfx, e := range r.locRIB {
		c.locRIB[pfx] = cloneEntry(e)
	}

	c.aggState = make([]aggState, len(r.aggState))
	for i, as := range r.aggState {
		na := aggState{spec: as.spec, active: as.active}
		if as.covered != nil {
			na.covered = make(map[netpkt.Prefix]*ribEntry, len(as.covered))
			for pfx, e := range as.covered {
				na.covered[pfx] = cloneEntry(e)
			}
		}
		c.aggState[i] = na
	}
	return c
}
