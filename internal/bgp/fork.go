package bgp

import (
	"crystalnet/internal/netpkt"
)

// SealAttrs forces the lazy fingerprint memo (ekey) on every *Attrs the
// router could share with a fork. Attrs are immutable once shared *except*
// for that memo, so sealing them once, single-threaded, at checkpoint time
// turns them fully read-only — after which any number of concurrent forks
// can alias them without cloning and without racing on the memo fill.
//
// With the global intern table (Intern) active this is a near-no-op: every
// attrs that entered a RIB came through Intern, which filled the memo
// before publication, so the walk only touches stragglers created while
// interning was disabled.
func (r *Router) SealAttrs() {
	seal := func(a *Attrs) {
		if a != nil && a.ekey == "" {
			attrsKey(a)
		}
	}
	// The per-peer Adj-RIB-In is a presence bitset: every attrs a peer has
	// accepted is also a Loc-RIB candidate, so walking the Loc-RIB (below)
	// covers the whole reachable attrs set.
	sealEntry := func(e *ribEntry) {
		for i := range e.candidates {
			seal(e.candidates[i].attrs)
		}
		seal(e.lastBest)
	}
	for _, e := range r.locRIB {
		sealEntry(e)
	}
	for i := range r.aggState {
		for _, e := range r.aggState[i].covered {
			sealEntry(e)
		}
	}
	// Advertised export templates are not reachable from the Loc-RIB (they
	// carry the prepended path), yet forks alias them for the no-change
	// flush comparison — seal those too.
	for _, p := range r.peers {
		p.advertised.Range(func(_ int, a *Attrs) bool {
			seal(a)
			return true
		})
		for _, a := range p.advertisedM {
			seal(a)
		}
	}
}

// Fork returns a deep copy of the router for a forked emulation, rebound to
// the fork's clock and hooks. The source router is read strictly read-only,
// so any number of forks can be taken from it concurrently — provided
// SealAttrs ran once before the first fork.
//
// Attribute objects (*Attrs) and AS paths are immutable once shared, so the
// fork aliases them instead of cloning: the decide path compares attribute
// pointers (prevBestAttrs != newBestAttrs), and sharing preserves the exact
// aliasing topology between a peer's Adj-RIB-In, Loc-RIB candidates and the
// entries' lastBest caches that a clone would have to reconstruct.
//
// The prepend and export caches are deliberately left empty. Aliasing
// keeps their pointer keys valid, so copying them would be correct — but
// measured on the S-DC chaos campaign the copies cost more than the
// misses: fault churn mostly derives new attribute objects, which miss any
// warm cache. Cache state never changes output bytes (pure memoization),
// only how much work a flush does.
func (r *Router) Fork(clock Clock, hooks Hooks) *Router {
	if hooks.Logf == nil {
		hooks.Logf = func(string, ...any) {}
	}
	if hooks.SessionEvent == nil {
		hooks.SessionEvent = func(int, SessionState) {}
	}
	c := &Router{
		cfg:          r.cfg,
		clock:        clock,
		hooks:        hooks,
		locRIB:       make(map[netpkt.Prefix]*ribEntry, len(r.locRIB)),
		seq:          r.seq,
		nextID:       r.nextID,
		prefixByID:   append([]netpkt.Prefix(nil), r.prefixByID...),
		prependCache: map[*ASPath]*ASPath{},
	}
	// The fork's hooks carry the fork's recorder, whose counters already
	// hold the parent's totals (obs.Recorder.Fork deep-copies them), so
	// rebinding continues the series rather than restarting it.
	c.bindMetrics(hooks.Rec)

	// Peers first: Loc-RIB candidates reference them by pointer.
	c.peers = make([]*Peer, len(r.peers))
	for i, p := range r.peers {
		np := &Peer{
			router:      c,
			Index:       p.Index,
			Config:      p.Config,
			state:       p.state,
			remoteID:    p.remoteID,
			openSent:    p.openSent,
			localGen:    p.localGen,
			remoteGen:   p.remoteGen,
			dirtyBits:   append([]uint64(nil), p.dirtyBits...),
			dirtyList:   append([]netpkt.Prefix(nil), p.dirtyList...),
			MsgsIn:      p.MsgsIn,
			MsgsOut:     p.MsgsOut,
			RoutesIn:    p.RoutesIn,
			WithdrawsIn: p.WithdrawsIn,
		}
		// flushTimer is a pending closure and must be nil: forks are only
		// taken at quiescence, when every MRAI flush has already fired.
		// The dense Adj-RIB tables clone their backing arrays; the *Attrs
		// values are sealed immutables and alias across the fork. A session
		// running the baseline map layout clones its maps instead.
		np.mapRIBs = p.mapRIBs
		if p.mapRIBs {
			np.adjInM = make(map[netpkt.Prefix]*Attrs, len(p.adjInM))
			for pfx, a := range p.adjInM {
				np.adjInM[pfx] = a
			}
			np.advertisedM = make(map[netpkt.Prefix]*Attrs, len(p.advertisedM))
			for pfx, a := range p.advertisedM {
				np.advertisedM[pfx] = a
			}
		} else {
			np.adjIn = *p.adjIn.Clone()
			np.advertised = *p.advertised.Clone()
		}
		c.peers[i] = np
	}

	// Loc-RIB entries, memoized so the aggregate coverage index below can
	// be remapped onto the same clones.
	entryMap := make(map[*ribEntry]*ribEntry, len(r.locRIB))
	cloneEntry := func(e *ribEntry) *ribEntry {
		if dup, ok := entryMap[e]; ok {
			return dup
		}
		dup := &ribEntry{
			id: e.id,
			// Candidates carry peer *indices*, which are identical in the
			// fork's peer slice, so the whole slice copies verbatim.
			candidates: append([]candidate(nil), e.candidates...),
			best:       append([]int32(nil), e.best...),
			// installed aliases a canonical immutable hop group, so the fork
			// shares it rather than copying (same policy as the attrs).
			installed:  e.installed,
			lastBest:   e.lastBest,
			suppressed: e.suppressed,
		}
		entryMap[e] = dup
		return dup
	}
	for pfx, e := range r.locRIB {
		c.locRIB[pfx] = cloneEntry(e)
	}

	c.aggState = make([]aggState, len(r.aggState))
	for i, as := range r.aggState {
		na := aggState{spec: as.spec, active: as.active}
		if as.covered != nil {
			na.covered = make(map[netpkt.Prefix]*ribEntry, len(as.covered))
			for pfx, e := range as.covered {
				na.covered[pfx] = cloneEntry(e)
			}
		}
		c.aggState[i] = na
	}
	return c
}
