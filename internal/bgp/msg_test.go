package bgp

import (
	"testing"
	"testing/quick"

	"crystalnet/internal/netpkt"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }
func ip(s string) netpkt.IP      { return netpkt.MustParseIP(s) }

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{AS: 4200000123, HoldTime: 180, BGPID: ip("10.0.0.7")}
	d, err := Decode(MarshalOpen(o))
	if err != nil {
		t.Fatal(err)
	}
	if d.Type != MsgOpen {
		t.Fatalf("type = %d", d.Type)
	}
	if d.Open.AS != o.AS || d.Open.HoldTime != o.HoldTime || d.Open.BGPID != o.BGPID {
		t.Fatalf("round trip mismatch: %+v vs %+v", d.Open, o)
	}
}

func TestOpenSmallASStillCarriesCap(t *testing.T) {
	o := &Open{AS: 65001, HoldTime: 90, BGPID: ip("1.2.3.4")}
	d, err := Decode(MarshalOpen(o))
	if err != nil {
		t.Fatal(err)
	}
	if d.Open.AS != 65001 {
		t.Fatalf("AS = %d", d.Open.AS)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	d, err := Decode(MarshalKeepalive())
	if err != nil || d.Type != MsgKeepalive {
		t.Fatalf("keepalive decode: %v %v", d, err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: NotifCease, Subcode: 2, Data: []byte("bye")}
	d, err := Decode(MarshalNotification(n))
	if err != nil {
		t.Fatal(err)
	}
	if d.Notif.Code != NotifCease || d.Notif.Subcode != 2 || string(d.Notif.Data) != "bye" {
		t.Fatalf("notif mismatch: %+v", d.Notif)
	}
}

func TestUpdateRoundTripFullAttrs(t *testing.T) {
	u := &Update{
		Withdrawn: []netpkt.Prefix{pfx("10.9.0.0/16"), pfx("0.0.0.0/0")},
		NextHop:   ip("10.128.0.1"),
		Attrs: &Attrs{
			Origin: OriginEGP,
			Path:   &ASPath{Segments: []Segment{{Type: ASSequence, ASNs: []uint32{65100, 4200000001}}, {Type: ASSet, ASNs: []uint32{1, 2}}}},
			MED:    42, HasMED: true,
			LocalPref: 200, HasLP: true,
			Atomic: true,
			AggAS:  65006, AggID: ip("10.0.0.6"),
		},
		NLRI: []netpkt.Prefix{pfx("100.64.0.0/24"), pfx("100.64.1.0/24"), pfx("10.0.0.1/32")},
	}
	d, err := Decode(MarshalUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	g := d.Update
	if len(g.Withdrawn) != 2 || g.Withdrawn[0] != u.Withdrawn[0] || g.Withdrawn[1] != u.Withdrawn[1] {
		t.Fatalf("withdrawn mismatch: %v", g.Withdrawn)
	}
	if len(g.NLRI) != 3 || g.NLRI[2] != pfx("10.0.0.1/32") {
		t.Fatalf("nlri mismatch: %v", g.NLRI)
	}
	// NEXT_HOP is a session property: it round-trips on the Update, and the
	// decoded (canonical, internable) attrs never carry it.
	if g.NextHop != u.NextHop {
		t.Fatalf("next hop mismatch: got %v want %v", g.NextHop, u.NextHop)
	}
	a := g.Attrs
	if a.Origin != OriginEGP || !a.Path.Equal(u.Attrs.Path) || a.NextHop != 0 {
		t.Fatalf("attrs mismatch: %+v", a)
	}
	if !a.HasMED || a.MED != 42 || !a.HasLP || a.LocalPref != 200 || !a.Atomic {
		t.Fatalf("optional attrs mismatch: %+v", a)
	}
	if a.AggAS != 65006 || a.AggID != ip("10.0.0.6") {
		t.Fatalf("aggregator mismatch: %+v", a)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []netpkt.Prefix{pfx("10.0.0.0/8")}}
	d, err := Decode(MarshalUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if d.Update.Attrs != nil || len(d.Update.NLRI) != 0 || len(d.Update.Withdrawn) != 1 {
		t.Fatalf("withdraw-only mismatch: %+v", d.Update)
	}
}

func TestUpdateLongPathExtendedLength(t *testing.T) {
	// Build a path long enough to force the extended-length attribute flag
	// (>255 bytes of AS_PATH data = >63 ASNs).
	asns := make([]uint32, 100)
	for i := range asns {
		asns[i] = uint32(65000 + i)
	}
	u := &Update{
		Attrs: &Attrs{Origin: OriginIGP, Path: NewPath(asns...), NextHop: ip("1.1.1.1")},
		NLRI:  []netpkt.Prefix{pfx("10.0.0.0/8")},
	}
	d, err := Decode(MarshalUpdate(u))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Update.Attrs.Path.Equal(u.Attrs.Path) {
		t.Fatal("long path corrupted")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrBadLength {
		t.Fatalf("short msg: %v", err)
	}
	good := MarshalKeepalive()
	bad := append([]byte(nil), good...)
	bad[0] = 0x00
	if _, err := Decode(bad); err != ErrBadMarker {
		t.Fatalf("bad marker: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[18] = 9
	if _, err := Decode(bad); err != ErrBadType {
		t.Fatalf("bad type: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[17] = 200 // wrong length field
	if _, err := Decode(bad); err != ErrBadLength {
		t.Fatalf("bad length: %v", err)
	}
	// OPEN with wrong version.
	o := MarshalOpen(&Open{AS: 1, BGPID: 1})
	o[headerLen] = 3
	if _, err := Decode(o); err != ErrBadVersion {
		t.Fatalf("bad version: %v", err)
	}
}

func TestDecodeMalformedUpdate(t *testing.T) {
	// NLRI present but no attributes.
	u := &Update{NLRI: []netpkt.Prefix{pfx("10.0.0.0/8")}}
	if _, err := Decode(MarshalUpdate(u)); err != ErrMalformed {
		t.Fatalf("attrless NLRI: %v", err)
	}
	// Prefix length > 32 in withdrawals.
	raw := MarshalUpdate(&Update{Withdrawn: []netpkt.Prefix{pfx("10.0.0.0/8")}})
	raw[headerLen+2] = 33 // corrupt the prefix length byte
	if _, err := Decode(raw); err == nil {
		t.Fatal("prefix len 33 accepted")
	}
}

func TestMissingMandatoryAttr(t *testing.T) {
	// Hand-build an UPDATE whose attrs lack NEXT_HOP.
	attrs := appendAttr(nil, flagTransitive, attrOrigin, []byte{0})
	attrs = appendAttr(attrs, flagTransitive, attrASPath, nil)
	body := []byte{0, 0, byte(len(attrs) >> 8), byte(len(attrs))}
	body = append(body, attrs...)
	body = append(body, 8, 10) // NLRI 10.0.0.0/8
	msg := make([]byte, headerLen+len(body))
	copy(msg[headerLen:], body)
	putHeader(msg, MsgUpdate)
	if _, err := Decode(msg); err != ErrMalformed {
		t.Fatalf("missing NEXT_HOP: %v", err)
	}
}

func TestUnknownOptionalAttrIgnored(t *testing.T) {
	attrs := appendAttr(nil, flagTransitive, attrOrigin, []byte{0})
	attrs = appendAttr(attrs, flagTransitive, attrASPath, nil)
	attrs = appendAttr(attrs, flagTransitive, attrNextHop, []byte{1, 2, 3, 4})
	attrs = appendAttr(attrs, flagOptional, 99, []byte{0xde, 0xad}) // unknown optional
	body := []byte{0, 0, byte(len(attrs) >> 8), byte(len(attrs))}
	body = append(body, attrs...)
	body = append(body, 8, 10)
	msg := make([]byte, headerLen+len(body))
	copy(msg[headerLen:], body)
	putHeader(msg, MsgUpdate)
	d, err := Decode(msg)
	if err != nil {
		t.Fatalf("unknown optional attr should be ignored: %v", err)
	}
	if len(d.Update.NLRI) != 1 {
		t.Fatal("NLRI lost")
	}
	// Unknown well-known attr is an error.
	attrs2 := appendAttr(nil, flagTransitive, 99, []byte{1})
	body2 := []byte{0, 0, byte(len(attrs2) >> 8), byte(len(attrs2))}
	body2 = append(body2, attrs2...)
	msg2 := make([]byte, headerLen+len(body2))
	copy(msg2[headerLen:], body2)
	putHeader(msg2, MsgUpdate)
	if _, err := Decode(msg2); err != ErrMalformed {
		t.Fatalf("unknown well-known attr: %v", err)
	}
}

func TestMaxNLRIPerUpdate(t *testing.T) {
	a := &Attrs{Origin: OriginIGP, Path: NewPath(1, 2, 3), NextHop: 1}
	max := MaxNLRIPerUpdate(a)
	if max <= 0 || max > 900 {
		t.Fatalf("MaxNLRIPerUpdate = %d, implausible", max)
	}
	// A maximal message must still encode/decode within the cap.
	nlri := make([]netpkt.Prefix, max)
	for i := range nlri {
		nlri[i] = netpkt.Prefix{Addr: netpkt.IP(i << 8), Len: 32}
	}
	raw := MarshalUpdate(&Update{Attrs: a, NLRI: nlri})
	if len(raw) > maxMessageLen {
		t.Fatalf("message size %d exceeds cap", len(raw))
	}
	if _, err := Decode(raw); err != nil {
		t.Fatal(err)
	}
	if MaxNLRIPerUpdate(nil) <= 0 {
		t.Fatal("withdrawal-only bound must be positive")
	}
}

func TestDecodedString(t *testing.T) {
	d, _ := Decode(MarshalKeepalive())
	if d.String() != "KEEPALIVE" {
		t.Fatalf("String = %q", d.String())
	}
	d, _ = Decode(MarshalOpen(&Open{AS: 5, BGPID: 1}))
	if d.String() == "" {
		t.Fatal("empty OPEN string")
	}
}

func TestPropertyUpdateNLRIRoundTrip(t *testing.T) {
	f := func(addrs []uint32, lens []uint8) bool {
		var nlri []netpkt.Prefix
		for i, a := range addrs {
			if i >= len(lens) || i > 200 {
				break
			}
			p := netpkt.Prefix{Addr: netpkt.IP(a), Len: lens[i] % 33}
			p.Addr &= p.MaskIP()
			nlri = append(nlri, p)
		}
		u := &Update{NLRI: nlri}
		if len(nlri) > 0 {
			u.Attrs = &Attrs{Origin: OriginIGP, Path: NewPath(65000), NextHop: 1}
		}
		d, err := Decode(MarshalUpdate(u))
		if err != nil {
			return false
		}
		if len(d.Update.NLRI) != len(nlri) {
			return false
		}
		for i := range nlri {
			if d.Update.NLRI[i] != nlri[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUpdateEncodeDecode(b *testing.B) {
	nlri := make([]netpkt.Prefix, 200)
	for i := range nlri {
		nlri[i] = netpkt.Prefix{Addr: netpkt.IP(0x64400000 + i*256), Len: 24}
	}
	u := &Update{
		Attrs: &Attrs{Origin: OriginIGP, Path: NewPath(65000, 65100, 4200000001), NextHop: ip("10.128.0.1")},
		NLRI:  nlri,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw := MarshalUpdate(u)
		if _, err := Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}
