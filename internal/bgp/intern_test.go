package bgp

import (
	"testing"

	"crystalnet/internal/netpkt"
)

func TestInternCanonicalizes(t *testing.T) {
	SetInterning(true)
	defer SetInterning(true)

	mk := func() *Attrs {
		return &Attrs{Origin: OriginIGP, Path: NewPath(65001, 65002), NextHop: netpkt.IPFromBytes(10, 0, 0, 1)}
	}
	a := Intern(mk())
	b := Intern(mk())
	if a != b {
		t.Fatalf("structurally equal attrs did not intern to one object")
	}
	if a.ekey == "" {
		t.Fatalf("interned attrs must have the fingerprint memo filled")
	}
	hits, misses, size := InternStats()
	if hits == 0 || misses == 0 || size == 0 {
		t.Fatalf("stats not accounted: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestInternDistinguishesAggID(t *testing.T) {
	// The wire-grouping fingerprint omits the AGGREGATOR router ID, but two
	// attribute sets differing only in AggID are different route attributes
	// and must not unify in the intern table.
	SetInterning(true)
	defer SetInterning(true)

	mk := func(id netpkt.IP) *Attrs {
		return &Attrs{Origin: OriginIGP, Path: EmptyPath, AggAS: 65010, AggID: id}
	}
	a := Intern(mk(netpkt.IPFromBytes(1, 1, 1, 1)))
	b := Intern(mk(netpkt.IPFromBytes(2, 2, 2, 2)))
	if a == b {
		t.Fatalf("attrs differing only in AggID interned to one object")
	}
	if attrsKey(a) != attrsKey(b) {
		t.Fatalf("ekey should still group the two for UPDATE packing")
	}
}

func TestInternDisableIsIdentity(t *testing.T) {
	SetInterning(false)
	defer SetInterning(true)

	a := &Attrs{Origin: OriginIGP, Path: EmptyPath, NextHop: 7}
	if Intern(a) != a {
		t.Fatalf("disabled interning must be the identity function")
	}
	b := &Attrs{Origin: OriginIGP, Path: EmptyPath, NextHop: 7}
	if Intern(b) == a {
		t.Fatalf("disabled interning must not unify")
	}
	if hits, misses, size := InternStats(); hits != 0 || misses != 0 || size != 0 {
		t.Fatalf("disabled interning must not account: hits=%d misses=%d size=%d", hits, misses, size)
	}
}

func TestDecodeInternsUpdateAttrs(t *testing.T) {
	SetInterning(true)
	defer SetInterning(true)

	attrs := &Attrs{Origin: OriginIGP, Path: NewPath(65100), NextHop: netpkt.IPFromBytes(10, 1, 2, 3)}
	wire := MarshalUpdate(&Update{Attrs: attrs, NLRI: []netpkt.Prefix{{Addr: netpkt.IPFromBytes(10, 9, 0, 0), Len: 16}}})
	d1, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Update.Attrs != d2.Update.Attrs {
		t.Fatalf("two decodes of the same UPDATE allocated distinct attrs")
	}
}
