package bgp

import "testing"

func TestASPathLength(t *testing.T) {
	p := &ASPath{Segments: []Segment{
		{Type: ASSequence, ASNs: []uint32{1, 2, 3}},
		{Type: ASSet, ASNs: []uint32{4, 5}},
	}}
	if p.Length() != 4 { // 3 + 1 for the set
		t.Fatalf("Length = %d, want 4", p.Length())
	}
	if EmptyPath.Length() != 0 {
		t.Fatal("empty path length != 0")
	}
}

func TestASPathPrepend(t *testing.T) {
	p := NewPath(2, 1)
	q := p.Prepend(6)
	if q.String() != "6 2 1" {
		t.Fatalf("prepend = %q", q.String())
	}
	if p.String() != "2 1" {
		t.Fatal("prepend mutated receiver")
	}
	// Prepend to empty.
	e := EmptyPath.Prepend(7)
	if e.String() != "7" || EmptyPath.Length() != 0 {
		t.Fatalf("prepend to empty = %q", e.String())
	}
	// Prepend in front of an AS_SET creates a new sequence segment.
	s := &ASPath{Segments: []Segment{{Type: ASSet, ASNs: []uint32{1, 2}}}}
	r := s.Prepend(9)
	if r.String() != "9 {1 2}" {
		t.Fatalf("prepend before set = %q", r.String())
	}
}

func TestASPathContainsFirstLast(t *testing.T) {
	p := NewPath(6, 2, 1)
	if !p.Contains(2) || p.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if p.First() != 6 || p.Last() != 1 {
		t.Fatalf("First/Last = %d/%d", p.First(), p.Last())
	}
	if EmptyPath.First() != 0 || EmptyPath.Last() != 0 {
		t.Fatal("empty First/Last should be 0")
	}
}

func TestASPathEqual(t *testing.T) {
	a := NewPath(1, 2, 3)
	b := NewPath(1, 2, 3)
	c := NewPath(1, 2)
	d := &ASPath{Segments: []Segment{{Type: ASSet, ASNs: []uint32{1, 2, 3}}}}
	if !a.Equal(b) || a.Equal(c) || a.Equal(d) {
		t.Fatal("Equal wrong")
	}
}

func TestEffectiveLocalPref(t *testing.T) {
	a := &Attrs{Path: EmptyPath}
	if a.EffectiveLocalPref() != 100 {
		t.Fatal("default LP != 100")
	}
	a.HasLP, a.LocalPref = true, 250
	if a.EffectiveLocalPref() != 250 {
		t.Fatal("explicit LP ignored")
	}
}

func TestAttrsWithHelpers(t *testing.T) {
	a := &Attrs{Path: NewPath(1), NextHop: 5}
	b := a.WithNextHop(9)
	if a.NextHop != 5 || b.NextHop != 9 || b.Path != a.Path {
		t.Fatal("WithNextHop wrong")
	}
	c := a.WithPath(NewPath(2))
	if c.Path.String() != "2" || a.Path.String() != "1" {
		t.Fatal("WithPath wrong")
	}
}

func TestAttrsString(t *testing.T) {
	a := &Attrs{Path: NewPath(6, 2, 1), NextHop: ip("10.0.0.1"), HasMED: true, MED: 5, Atomic: true}
	s := a.String()
	for _, want := range []string{"6 2 1", "10.0.0.1", "med=5", "atomic"} {
		if !contains(s, want) {
			t.Fatalf("String %q missing %q", s, want)
		}
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "i" || OriginEGP.String() != "e" || OriginIncomplete.String() != "?" {
		t.Fatal("origin strings wrong")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
