//go:build !crystaldebug

package bgp

// debugAttrs gates the sealed-Attrs mutation assertions. In release builds
// the checks compile away; build with -tags crystaldebug to enable them
// (scripts/check.sh does for this package).
const debugAttrs = false

// assertSealed is a no-op in release builds.
func assertSealed(*Attrs) {}
