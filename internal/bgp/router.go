package bgp

import (
	"encoding/binary"
	"fmt"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/rib"
)

// Clock is the slice of the simulation engine the router needs. Timers
// returned by After must be cancelable.
type Clock interface {
	After(d time.Duration, fn func()) Timer
}

// Timer is a cancelable scheduled callback (satisfied by *sim.Timer via the
// adapter in the firmware package).
type Timer interface {
	Cancel() bool
}

// AggregationASPathMode selects the vendor-specific behaviour when building
// the AS path of an aggregate route — the root cause of the Figure 1
// traffic-imbalance incident.
type AggregationASPathMode uint8

// Aggregation modes.
const (
	// AggInheritSelected mirrors Vendor-A (R6 in Figure 1): the aggregate
	// inherits the AS path of one selected contributor, so the announced
	// path is {self, <contributor path...>}.
	AggInheritSelected AggregationASPathMode = iota
	// AggBarePath mirrors Vendor-C (R7 in Figure 1): the aggregate carries
	// an empty path with ATOMIC_AGGREGATE, so the announced path is just
	// {self} — shorter, and therefore preferred by upstream routers.
	AggBarePath
)

// AggregateSpec configures one "aggregate-address" statement.
type AggregateSpec struct {
	Prefix      netpkt.Prefix
	SummaryOnly bool // suppress advertisement of contributors
}

// Config parameterizes a router instance.
type Config struct {
	Name     string // device name, for logs
	AS       uint32
	RouterID netpkt.IP
	HoldTime uint16 // advertised hold time; 0 disables keepalive logic
	// MaxPaths is the ECMP width; 1 disables multipath.
	MaxPaths int
	// MRAI is the min route advertisement interval used to batch UPDATEs.
	MRAI time.Duration
	// AggregationMode is the vendor quirk knob (Figure 1).
	AggregationMode AggregationASPathMode
	// Aggregates are the configured aggregate-address statements.
	Aggregates []AggregateSpec
	// NonDeterministicTies makes equal-candidate tie-breaks depend on
	// arrival order instead of router ID, reproducing the §9
	// non-determinism. Off by default so tests are reproducible.
	NonDeterministicTies bool
}

// Hooks connect the router to its hosting firmware: message transport, FIB
// programming and logging. All hooks must be non-nil.
type Hooks struct {
	// SendToPeer transmits an encoded BGP message towards peer i.
	SendToPeer func(peerIdx int, data []byte)
	// InstallRoute programs the FIB. An error is logged; the route stays in
	// the RIB (mirroring firmware that keeps RIB state when FIB programming
	// fails — the §2 black-hole incident comes from a vendor hook that
	// swallows this error silently). nhs is only valid for the duration of
	// the call: implementations must copy it if they retain it (the router
	// reuses the backing array on the next FIB reprogram).
	InstallRoute func(p netpkt.Prefix, nhs []rib.NextHop) error
	// RemoveRoute removes a previously installed route.
	RemoveRoute func(p netpkt.Prefix)
	// SessionEvent reports session state transitions (for monitoring).
	SessionEvent func(peerIdx int, state SessionState)
	// Logf records diagnostics.
	Logf func(format string, args ...any)
	// Rec is the observability recorder; nil disables tracing. The router
	// caches counter handles from it at construction, so per-message
	// accounting is a nil check when tracing is off.
	Rec *obs.Recorder
}

// candidate is one usable route for a prefix. The struct is kept to 16
// bytes — an M-DC fabric holds millions of candidates, so the 8 bytes a
// peer pointer would cost are measurable (DESIGN.md §10).
type candidate struct {
	attrs *Attrs
	// peerIdx indexes r.peers for the advertising session, or is -1 for
	// locally originated routes (including aggregates). Resolve through
	// Router.candPeer.
	peerIdx int32
	// seq is arrival order, for the non-deterministic tie mode. 32 bits
	// wrap only after 4 billion updates through one router — far beyond
	// any campaign the engine's event budget admits.
	seq uint32
}

// ribEntry is the per-prefix Loc-RIB state.
type ribEntry struct {
	// id is a dense, stable index assigned at creation; peers use it to
	// address their dirty bitsets without hashing the prefix.
	id         int
	candidates []candidate
	// best holds the indices of the current multipath winners;
	// best[0] is the primary best path (the one advertised). int32
	// halves the backing arrays across the Loc-RIB (candidate counts are
	// bounded by the peer count, nowhere near the 32-bit range).
	best []int32
	// installed caches the next hops programmed into the FIB. It aliases a
	// canonical group from the router's hopSets table (or is nil) — never
	// mutate it in place.
	installed []rib.NextHop
	// lastBest caches the previously advertised primary attrs so decide can
	// detect visible changes after candidates have been mutated.
	lastBest *Attrs
	// suppressed marks contributor prefixes hidden by a summary-only
	// aggregate.
	suppressed bool
}

// Router is one BGP speaker instance.
type Router struct {
	cfg   Config
	clock Clock
	hooks Hooks
	peers []*Peer

	locRIB map[netpkt.Prefix]*ribEntry
	seq    uint32
	nextID int
	// prefixByID maps a ribEntry's dense id back to its prefix (ids are
	// assigned in creation order and never reused), letting the peers' dense
	// Adj-RIB tables recover the prefix without storing it per route.
	prefixByID []netpkt.Prefix
	// prependCache memoizes Prepend(cfg.AS) per source path: every export
	// through this router prepends the same AS, so the per-export path
	// allocation collapses to a map hit. Bounded; cleared when full.
	prependCache map[*ASPath]*ASPath
	// exportCache memoizes the export template per (best attrs, policy,
	// locally-originated). One cached template serves every peer of the
	// router: with next-hop carried per-Update instead of per-Attrs, the
	// exported attribute set no longer varies by session, and the per-peer
	// differences (split horizon, loop avoidance, AdvertiseLocalOnly) are
	// allocation-free predicates checked before the cache. Valid only while
	// interning is on — the keys are canonical pointers. Bounded; cleared
	// wholesale when full.
	exportCache map[exportKey]exportVal
	// nhScratch is the reusable buffer nextHops fills on every decide; the
	// hops are copied out only when they actually change. hopSets interns
	// the distinct hop groups those copies land in, so the thousands of
	// entries forwarding over the same ECMP group share one slice.
	nhScratch []rib.NextHop
	hopSets   rib.HopSetTable

	// aggState tracks whether each configured aggregate is currently active
	// and with which attribute set.
	aggState []aggState

	// Cached obs counter handles (nil when hooks.Rec is nil — Inc on a
	// nil counter is a no-op, keeping the disabled path allocation-free).
	mMsgsIn, mMsgsOut       *obs.Counter
	mRoutesIn, mWithdrawsIn *obs.Counter
	mDecisions              *obs.Counter
}

// bindMetrics caches the router's counter handles against rec (nil-safe).
func (r *Router) bindMetrics(rec *obs.Recorder) {
	r.mMsgsIn = rec.Counter("bgp.msgs_in", r.cfg.Name)
	r.mMsgsOut = rec.Counter("bgp.msgs_out", r.cfg.Name)
	r.mRoutesIn = rec.Counter("bgp.routes_in", r.cfg.Name)
	r.mWithdrawsIn = rec.Counter("bgp.withdraws_in", r.cfg.Name)
	r.mDecisions = rec.Counter("bgp.decisions", r.cfg.Name)
}

type aggState struct {
	spec   AggregateSpec
	active bool
	// covered indexes the Loc-RIB entries under the aggregate's range, so
	// re-evaluating the aggregate no longer scans the whole Loc-RIB.
	covered map[netpkt.Prefix]*ribEntry
}

// New creates a router. Defaults: MaxPaths 1, MRAI 50ms.
func New(cfg Config, clock Clock, hooks Hooks) *Router {
	if cfg.MaxPaths <= 0 {
		cfg.MaxPaths = 1
	}
	if cfg.MRAI <= 0 {
		cfg.MRAI = 50 * time.Millisecond
	}
	if hooks.Logf == nil {
		hooks.Logf = func(string, ...any) {}
	}
	if hooks.SessionEvent == nil {
		hooks.SessionEvent = func(int, SessionState) {}
	}
	r := &Router{
		cfg: cfg, clock: clock, hooks: hooks,
		locRIB:       map[netpkt.Prefix]*ribEntry{},
		prependCache: map[*ASPath]*ASPath{},
	}
	for _, a := range cfg.Aggregates {
		r.aggState = append(r.aggState, aggState{spec: a})
	}
	r.bindMetrics(hooks.Rec)
	return r
}

// Config returns the router's configuration.
func (r *Router) Config() Config { return r.cfg }

// AddPeer registers a neighbor and returns its index. Peers start Idle;
// call StartPeer once the transport is ready.
func (r *Router) AddPeer(cfg PeerConfig) *Peer {
	p := &Peer{
		router: r,
		Index:  len(r.peers),
		Config: cfg,
		state:  StateIdle,
	}
	r.peers = append(r.peers, p)
	return p
}

// Peers returns all registered peers.
func (r *Router) Peers() []*Peer { return r.peers }

// Peer returns the peer with the given index.
func (r *Router) Peer(i int) *Peer { return r.peers[i] }

// Originate injects a locally originated route (network statement /
// redistributed connected). It triggers advertisement to all peers.
func (r *Router) Originate(p netpkt.Prefix) {
	a := Intern(&Attrs{Origin: OriginIGP, Path: EmptyPath, NextHop: 0})
	r.upsertCandidate(p, nil, a)
}

// InjectLocal installs a locally originated route with arbitrary
// attributes — how a boundary speaker replays announcements recorded from
// production (§5.1). The AS path should exclude the speaker's own AS, which
// is prepended on export like any eBGP announcement.
func (r *Router) InjectLocal(p netpkt.Prefix, a *Attrs) {
	if a.Path == nil {
		a = a.WithPath(EmptyPath)
	}
	r.upsertCandidate(p, nil, Intern(a))
}

// WithdrawLocal removes a locally originated route.
func (r *Router) WithdrawLocal(p netpkt.Prefix) {
	r.removeCandidate(p, nil)
}

// LocRIB returns the number of prefixes with at least one usable candidate.
func (r *Router) LocRIB() int {
	n := 0
	for _, e := range r.locRIB {
		if len(e.best) > 0 {
			n++
		}
	}
	return n
}

// BestRoute returns the primary best attrs for p and whether p is reachable.
func (r *Router) BestRoute(p netpkt.Prefix) (*Attrs, bool) {
	e := r.locRIB[p]
	if e == nil || len(e.best) == 0 {
		return nil, false
	}
	return e.candidates[e.best[0]].attrs, true
}

// BestPeers returns the peers providing the current multipath set for p
// (nil entries for locally originated candidates).
func (r *Router) BestPeers(p netpkt.Prefix) []*Peer {
	e := r.locRIB[p]
	if e == nil {
		return nil
	}
	out := make([]*Peer, 0, len(e.best))
	for _, i := range e.best {
		out = append(out, r.candPeer(&e.candidates[i]))
	}
	return out
}

// candPeer resolves a candidate's advertising peer (nil when locally
// originated).
func (r *Router) candPeer(c *candidate) *Peer {
	if c.peerIdx < 0 {
		return nil
	}
	return r.peers[c.peerIdx]
}

// Prefixes returns all prefixes with a usable best path, in map order.
func (r *Router) Prefixes() []netpkt.Prefix {
	out := make([]netpkt.Prefix, 0, len(r.locRIB))
	for p, e := range r.locRIB {
		if len(e.best) > 0 {
			out = append(out, p)
		}
	}
	return out
}

// entryFor returns the Loc-RIB entry for p, creating it (with a fresh dense
// id, the prefixByID reverse mapping and aggregate coverage indexing) on
// first sight. Entries are never deleted, so ids stay stable for the
// router's lifetime.
func (r *Router) entryFor(p netpkt.Prefix) *ribEntry {
	e := r.locRIB[p]
	if e == nil {
		e = &ribEntry{id: r.nextID}
		r.nextID++
		r.locRIB[p] = e
		r.prefixByID = append(r.prefixByID, p)
		for i := range r.aggState {
			st := &r.aggState[i]
			if st.spec.Prefix != p && st.spec.Prefix.ContainsPrefix(p) {
				if st.covered == nil {
					st.covered = map[netpkt.Prefix]*ribEntry{}
				}
				st.covered[p] = e
			}
		}
	}
	return e
}

// upsertCandidate installs or replaces the candidate from the given source
// (peer, or nil for local), re-runs the decision process, and returns the
// entry so the caller can index its dense per-peer state by e.id.
func (r *Router) upsertCandidate(p netpkt.Prefix, peer *Peer, a *Attrs) *ribEntry {
	e := r.entryFor(p)
	r.seq++
	idx := int32(-1)
	if peer != nil {
		idx = int32(peer.Index)
	}
	for i := range e.candidates {
		if e.candidates[i].peerIdx == idx {
			e.candidates[i].attrs = a
			e.candidates[i].seq = r.seq
			r.decide(p, e)
			return e
		}
	}
	e.candidates = append(e.candidates, candidate{attrs: a, peerIdx: idx, seq: r.seq})
	r.decide(p, e)
	return e
}

// removeCandidate drops the candidate from the given source.
func (r *Router) removeCandidate(p netpkt.Prefix, peer *Peer) {
	e := r.locRIB[p]
	if e == nil {
		return
	}
	idx := int32(-1)
	if peer != nil {
		idx = int32(peer.Index)
	}
	for i := range e.candidates {
		if e.candidates[i].peerIdx == idx {
			e.candidates = append(e.candidates[:i], e.candidates[i+1:]...)
			r.decide(p, e)
			return
		}
	}
}

// better reports whether candidate a beats candidate b in the RFC 4271 §9.1
// decision process (adapted: all-eBGP fabric).
func (r *Router) better(a, b *candidate) bool {
	aa, ba := a.attrs, b.attrs
	if la, lb := aa.EffectiveLocalPref(), ba.EffectiveLocalPref(); la != lb {
		return la > lb
	}
	// Locally originated wins.
	if (a.peerIdx < 0) != (b.peerIdx < 0) {
		return a.peerIdx < 0
	}
	if la, lb := aa.Path.Length(), ba.Path.Length(); la != lb {
		return la < lb
	}
	if aa.Origin != ba.Origin {
		return aa.Origin < ba.Origin
	}
	// MED comparison only between routes from the same neighboring AS.
	if aa.Path.First() != 0 && aa.Path.First() == ba.Path.First() {
		ma, mb := uint32(0), uint32(0)
		if aa.HasMED {
			ma = aa.MED
		}
		if ba.HasMED {
			mb = ba.MED
		}
		if ma != mb {
			return ma < mb
		}
	}
	if r.cfg.NonDeterministicTies {
		// Arrival order decides — models firmware whose tie-break depends
		// on timing (§9).
		return a.seq < b.seq
	}
	// Lowest peer router ID, then lowest peer address.
	ap, bp := r.candPeer(a), r.candPeer(b)
	ida, idb := peerID(ap), peerID(bp)
	if ida != idb {
		return ida < idb
	}
	return peerAddr(ap) < peerAddr(bp)
}

// multipathEligible reports whether two candidates can share the FIB entry.
func multipathEligible(a, b *candidate) bool {
	return a.attrs.EffectiveLocalPref() == b.attrs.EffectiveLocalPref() &&
		(a.peerIdx < 0) == (b.peerIdx < 0) &&
		a.attrs.Path.Length() == b.attrs.Path.Length() &&
		a.attrs.Origin == b.attrs.Origin
}

func peerID(p *Peer) netpkt.IP {
	if p == nil {
		return 0
	}
	return p.remoteID
}

func peerAddr(p *Peer) netpkt.IP {
	if p == nil {
		return 0
	}
	return p.Config.RemoteIP
}

// decide recomputes best paths for p, reprograms the FIB and schedules
// advertisements if the outcome changed.
func (r *Router) decide(p netpkt.Prefix, e *ribEntry) {
	r.mDecisions.Inc()
	prevBestAttrs := e.lastBest
	prevHops := e.installed

	e.best = e.best[:0]
	bi := -1
	for i := range e.candidates {
		if bi == -1 || r.better(&e.candidates[i], &e.candidates[bi]) {
			bi = i
		}
	}
	if bi >= 0 {
		e.best = append(e.best, int32(bi))
		if r.cfg.MaxPaths > 1 {
			for i := range e.candidates {
				if i != bi && len(e.best) < r.cfg.MaxPaths &&
					multipathEligible(&e.candidates[i], &e.candidates[bi]) {
					e.best = append(e.best, int32(i))
				}
			}
		}
	}

	// Program the FIB. nextHops fills a scratch buffer; on a change the
	// entry points at the canonical copy of that hop group (the hook
	// contract forbids the callee from retaining nhs, so the canonical
	// slice is never aliased outside the router).
	hops := r.nextHops(e)
	if !hopsEqual(hops, prevHops) {
		if len(hops) == 0 {
			if len(prevHops) > 0 && r.hooks.RemoveRoute != nil {
				r.hooks.RemoveRoute(p)
			}
			e.installed = nil
		} else {
			if interningEnabled() {
				e.installed = r.hopSets.Canonical(hops)
			} else {
				// Baseline layout for the §10 ablation: a private copy
				// per entry, as the pre-interning router stored it.
				e.installed = append(make([]rib.NextHop, 0, len(hops)), hops...)
			}
			if r.hooks.InstallRoute != nil {
				if err := r.hooks.InstallRoute(p, e.installed); err != nil {
					r.hooks.Logf("bgp %s: FIB install %s failed: %v", r.cfg.Name, p, err)
				}
			}
		}
	}

	// Re-advertise if the exported view changed.
	newBestAttrs := r.primaryAttrs(e)
	e.lastBest = newBestAttrs
	if prevBestAttrs != newBestAttrs {
		for _, peer := range r.peers {
			peer.markDirty(p, e)
		}
	}

	// Aggregate maintenance: a change in a contributor may (de)activate an
	// aggregate.
	r.updateAggregates(p)
}

func (r *Router) primaryAttrs(e *ribEntry) *Attrs {
	if len(e.best) == 0 {
		return nil
	}
	return e.candidates[e.best[0]].attrs
}

// nextHops maps the best candidate set to FIB next hops. Locally originated
// routes have no next hops to program (they are connected/static in the FIB
// already). The returned slice aliases the router's scratch buffer and is
// only valid until the next call.
func (r *Router) nextHops(e *ribEntry) []rib.NextHop {
	out := r.nhScratch[:0]
	for _, i := range e.best {
		cp := r.candPeer(&e.candidates[i])
		if cp == nil {
			continue
		}
		// Next-hop-self on every session means the next hop of a learned
		// route is simply the address of the session it arrived on.
		out = append(out, rib.NextHop{IP: cp.Config.RemoteIP, Interface: cp.Config.Interface})
	}
	r.nhScratch = out
	return out
}

func hopsEqual(a, b []rib.NextHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// updateAggregates re-evaluates aggregates whose range covers p.
func (r *Router) updateAggregates(p netpkt.Prefix) {
	for i := range r.aggState {
		st := &r.aggState[i]
		if !st.spec.Prefix.ContainsPrefix(p) || st.spec.Prefix == p {
			continue
		}
		attrs, nContrib := r.buildAggregate(st)
		if nContrib > 0 {
			// Only touch the RIB when the aggregate's attributes actually
			// changed, to avoid re-advertisement churn.
			if cur, ok := r.localCandidate(st.spec.Prefix); !st.active || !ok || attrsKey(cur) != attrsKey(attrs) {
				st.active = true
				r.upsertCandidate(st.spec.Prefix, nil, attrs)
			}
			if st.spec.SummaryOnly {
				r.setSuppression(st, true)
			}
		} else if st.active {
			st.active = false
			r.removeCandidate(st.spec.Prefix, nil)
			if st.spec.SummaryOnly {
				r.setSuppression(st, false)
			}
		}
	}
}

// localCandidate returns the locally originated attrs for p, if any.
func (r *Router) localCandidate(p netpkt.Prefix) (*Attrs, bool) {
	e := r.locRIB[p]
	if e == nil {
		return nil, false
	}
	for i := range e.candidates {
		if e.candidates[i].peerIdx < 0 {
			return e.candidates[i].attrs, true
		}
	}
	return nil, false
}

// buildAggregate walks the aggregate's coverage index for contributors and
// builds the aggregate's attributes per the configured vendor mode. Ties
// between equally good contributors break towards the lowest prefix so the
// selection is independent of map iteration order.
func (r *Router) buildAggregate(st *aggState) (*Attrs, int) {
	var selected *candidate
	var selectedP netpkt.Prefix
	n := 0
	for p, e := range st.covered {
		if len(e.best) == 0 {
			continue
		}
		c := &e.candidates[e.best[0]]
		if c.attrs.Path != nil && c.attrs.Path.Contains(r.cfg.AS) {
			continue
		}
		n++
		if selected == nil || r.better(c, selected) ||
			(!r.better(selected, c) && prefixLess(p, selectedP)) {
			selected, selectedP = c, p
		}
	}
	if n == 0 {
		return nil, 0
	}
	a := &Attrs{Origin: OriginIGP, NextHop: 0, AggAS: r.cfg.AS, AggID: r.cfg.RouterID}
	switch r.cfg.AggregationMode {
	case AggInheritSelected:
		// Vendor-A behaviour: inherit the selected contributor's path.
		a.Path = selected.attrs.Path
	case AggBarePath:
		// Vendor-C behaviour: empty path + ATOMIC_AGGREGATE.
		a.Path = EmptyPath
		a.Atomic = true
	}
	return Intern(a), n
}

// setSuppression flips the suppressed flag of contributors under a
// summary-only aggregate, queueing re-advertisement where it changed.
func (r *Router) setSuppression(st *aggState, suppress bool) {
	for p, e := range st.covered {
		if e.suppressed != suppress {
			e.suppressed = suppress
			for _, peer := range r.peers {
				peer.markDirty(p, e)
			}
		}
	}
}

// maxExportCache bounds the router's export-template memo; maxPrependCache
// bounds the router's path-prepend memo. Both are cleared wholesale when
// full — the working sets in even L-DC mockups sit far below these limits.
const (
	maxExportCache  = 8192
	maxPrependCache = 8192
)

// exportKey identifies one export-template computation: the best candidate's
// attrs, the export policy applied to them, and whether the route is locally
// originated (which controls MED stripping). Nothing else about the peer
// reaches the template — next-hop rides the Update, not the Attrs.
type exportKey struct {
	attrs *Attrs
	pol   *Policy
	local bool
}

// exportRoute computes what to announce to peer for prefix p. ok=false
// means "withdraw / do not advertise".
//
// The per-peer gates (split horizon, AdvertiseLocalOnly, loop avoidance) are
// allocation-free and run on every call; the expensive part — policy
// evaluation, the attribute copy, the AS prepend, interning — is a pure
// function of (best attrs, policy, locally-originated) and is memoized at
// router level when the policy is prefix-independent. The memo requires
// interning: its keys are canonical pointers, and with interning off a
// best-path pointer no longer identifies an attribute value across updates.
func (r *Router) exportRoute(peer *Peer, p netpkt.Prefix) (*Attrs, bool) {
	e := r.locRIB[p]
	if e == nil || len(e.best) == 0 || e.suppressed {
		return nil, false
	}
	best := &e.candidates[e.best[0]]
	// Split horizon: never reflect a route to the peer it came from.
	if best.peerIdx == int32(peer.Index) {
		return nil, false
	}
	// Static speakers only ever announce their installed routes (§5.1).
	if peer.Config.AdvertiseLocalOnly && best.peerIdx >= 0 {
		return nil, false
	}
	// Sender-side loop avoidance (the behaviour Proposition 5.2 relies on):
	// do not send a route whose path already contains the peer's AS.
	if best.attrs.Path.Contains(peer.Config.RemoteAS) || peer.Config.RemoteAS == r.cfg.AS {
		return nil, false
	}
	pol := peer.Config.ExportPolicy
	cacheable := interningEnabled() && pol.prefixIndependent()
	var key exportKey
	if cacheable {
		key = exportKey{attrs: best.attrs, pol: pol, local: best.peerIdx < 0}
		if v, hit := r.exportCache[key]; hit {
			return v.attrs, v.ok
		}
	} else if peer.mapRIBs && pol.prefixIndependent() {
		// Baseline sessions keep the pre-§10 memo: per peer, keyed on the
		// best candidate's attrs pointer. The pointer identifies the value
		// (attrs are never mutated once in a RIB) and, for a prefix-
		// independent policy, fully determines the template — a locally
		// originated attrs pointer is never shared with a learned route, so
		// the MED-strip distinction rides the pointer too.
		if v, hit := peer.exportCacheM[best.attrs]; hit {
			return v.attrs, v.ok
		}
	}
	a, ok := r.exportTemplate(p, best, pol)
	if cacheable {
		if r.exportCache == nil || len(r.exportCache) >= maxExportCache {
			r.exportCache = make(map[exportKey]exportVal, 256)
		}
		r.exportCache[key] = exportVal{attrs: a, ok: ok}
	} else if peer.mapRIBs && pol.prefixIndependent() {
		if peer.exportCacheM == nil || len(peer.exportCacheM) >= maxExportCache {
			peer.exportCacheM = make(map[*Attrs]exportVal, 256)
		}
		peer.exportCacheM[best.attrs] = exportVal{attrs: a, ok: ok}
	}
	return a, ok
}

// exportTemplate builds the peer-independent exported attribute set for the
// best candidate: policy rewrite, own-AS prepend, LOCAL_PREF strip, MED
// strip unless locally originated. The session next-hop is injected at
// marshal time by flush, never stored here.
func (r *Router) exportTemplate(p netpkt.Prefix, best *candidate, pol *Policy) (*Attrs, bool) {
	out, permit := pol.Apply(p, best.attrs)
	if !permit {
		return nil, false
	}
	c := *out
	c.Path = r.prependOwn(c.Path)
	c.NextHop = 0
	c.HasLP, c.LocalPref = false, 0
	if best.peerIdx >= 0 {
		c.HasMED, c.MED = false, 0
	}
	c.ekey = ""
	// Intern the export: the same route exported by every device in a tier
	// produces the same attribute set, so the per-export allocation
	// collapses to the canonical object everyone shares.
	return Intern(&c), true
}

// prependOwn returns path with the router's own AS prepended, memoized per
// source path pointer (the prepended AS is the same for every export).
func (r *Router) prependOwn(path *ASPath) *ASPath {
	if np, ok := r.prependCache[path]; ok {
		return np
	}
	np := path.Prepend(r.cfg.AS)
	if len(r.prependCache) >= maxPrependCache {
		clear(r.prependCache)
	}
	r.prependCache[path] = np
	return np
}

func prefixLess(a, b netpkt.Prefix) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Len < b.Len
}

// attrsKey returns a compact binary fingerprint of exported attributes, used
// to group prefixes sharing one UPDATE. The fingerprint is memoized on the
// Attrs (it is never empty: the origin and next-hop bytes are unconditional).
func attrsKey(a *Attrs) string {
	if a.ekey == "" {
		a.ekey = computeAttrsKey(a)
	} else if debugAttrs {
		assertSealed(a)
	}
	return a.ekey
}

func computeAttrsKey(a *Attrs) string {
	b := make([]byte, 0, 24)
	b = append(b, byte(a.Origin))
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], uint32(a.NextHop))
	b = append(b, tmp[:]...)
	if a.HasMED {
		binary.BigEndian.PutUint32(tmp[:], a.MED)
		b = append(b, 1)
		b = append(b, tmp[:]...)
	}
	if a.HasLP {
		binary.BigEndian.PutUint32(tmp[:], a.LocalPref)
		b = append(b, 2)
		b = append(b, tmp[:]...)
	}
	if a.Atomic {
		b = append(b, 3)
	}
	if a.AggAS != 0 {
		binary.BigEndian.PutUint32(tmp[:], a.AggAS)
		b = append(b, 4)
		b = append(b, tmp[:]...)
	}
	for _, seg := range a.Path.Segments {
		b = append(b, byte(seg.Type), byte(len(seg.ASNs)))
		for _, asn := range seg.ASNs {
			binary.BigEndian.PutUint32(tmp[:], asn)
			b = append(b, tmp[:]...)
		}
	}
	return string(b)
}

// Compact releases memoization state and trims the dense Adj-RIB tables to
// their live extent. Called post-convergence when the process-wide RIB
// accounting is over budget (rib.OverBudget); caches refill on demand, so
// compaction trades a warm-up against peak RSS and never changes output.
func (r *Router) Compact() {
	r.prependCache = map[*ASPath]*ASPath{}
	r.exportCache = nil
	for _, p := range r.peers {
		p.adjIn.Compact()
		p.advertised.Compact()
	}
}

// Stats summarizes router state for PullStates.
type Stats struct {
	Name        string
	AS          uint32
	Established int
	LocRIB      int
}

// Stats returns a state summary.
func (r *Router) Stats() Stats {
	st := Stats{Name: r.cfg.Name, AS: r.cfg.AS, LocRIB: r.LocRIB()}
	for _, p := range r.peers {
		if p.state == StateEstablished {
			st.Established++
		}
	}
	return st
}

// String identifies the router in logs.
func (r *Router) String() string {
	return fmt.Sprintf("bgp(%s AS%d)", r.cfg.Name, r.cfg.AS)
}
