package bgp

import (
	"fmt"
	"testing"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
)

// ---- test harness: routers wired over a simulated message fabric ----

type simClock struct{ e *sim.Engine }

func (c simClock) After(d time.Duration, fn func()) Timer { return c.e.After(d, fn) }

type tnode struct {
	name string
	r    *Router
	fib  map[netpkt.Prefix][]rib.NextHop
	// peerWire[i] = delivery function towards the remote end of peer i.
	peerWire   []func(data []byte)
	installErr error // injected FIB error
}

type tnet struct {
	t     *testing.T
	eng   *sim.Engine
	nodes map[string]*tnode
	delay time.Duration
}

func newTnet(t *testing.T) *tnet {
	return &tnet{t: t, eng: sim.NewEngine(1), nodes: map[string]*tnode{}, delay: time.Millisecond}
}

func (n *tnet) add(name string, as uint32, mutate func(*Config)) *tnode {
	cfg := Config{
		Name: name, AS: as,
		RouterID: netpkt.IPFromBytes(10, 0, byte(len(n.nodes)), 1),
		MaxPaths: 8,
		MRAI:     10 * time.Millisecond,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	nd := &tnode{name: name, fib: map[netpkt.Prefix][]rib.NextHop{}}
	nd.r = New(cfg, simClock{n.eng}, Hooks{
		SendToPeer: func(i int, data []byte) {
			wire := nd.peerWire[i]
			n.eng.After(n.delay, func() { wire(data) })
		},
		InstallRoute: func(p netpkt.Prefix, nhs []rib.NextHop) error {
			if nd.installErr != nil {
				return nd.installErr
			}
			nd.fib[p] = append([]rib.NextHop(nil), nhs...)
			return nil
		},
		RemoveRoute: func(p netpkt.Prefix) { delete(nd.fib, p) },
	})
	n.nodes[name] = nd
	return nd
}

var linkCount int

// connect wires an eBGP session between a and b and starts both ends.
func (n *tnet) connect(aName, bName string, policies ...*Policy) (pa, pb *Peer) {
	a, b := n.nodes[aName], n.nodes[bName]
	linkCount++
	aIP := netpkt.IPFromBytes(10, 128, byte(linkCount), 0)
	bIP := aIP + 1
	var expPolA, expPolB *Policy
	if len(policies) > 0 {
		expPolA = policies[0]
	}
	if len(policies) > 1 {
		expPolB = policies[1]
	}
	pa = a.r.AddPeer(PeerConfig{
		Name: bName, LocalIP: aIP, RemoteIP: bIP, RemoteAS: b.r.cfg.AS,
		Interface: fmt.Sprintf("et%d", len(a.peerWire)), ExportPolicy: expPolA,
	})
	pb = b.r.AddPeer(PeerConfig{
		Name: aName, LocalIP: bIP, RemoteIP: aIP, RemoteAS: a.r.cfg.AS,
		Interface: fmt.Sprintf("et%d", len(b.peerWire)), ExportPolicy: expPolB,
	})
	a.peerWire = append(a.peerWire, func(data []byte) { pb.HandleMessage(data) })
	b.peerWire = append(b.peerWire, func(data []byte) { pa.HandleMessage(data) })
	pa.Start()
	pb.Start()
	return pa, pb
}

func (n *tnet) run() {
	if _, err := n.eng.Run(2_000_000); err != nil {
		n.t.Fatalf("simulation did not converge: %v", err)
	}
}

// ---- session establishment ----

func TestSessionEstablishment(t *testing.T) {
	n := newTnet(t)
	n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	pa, pb := n.connect("a", "b")
	n.run()
	if pa.State() != StateEstablished || pb.State() != StateEstablished {
		t.Fatalf("states = %v / %v", pa.State(), pb.State())
	}
	if pa.remoteID != n.nodes["b"].r.cfg.RouterID {
		t.Fatal("remote ID not learned")
	}
}

func TestASMismatchResetsSession(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	// a expects the wrong AS for b.
	pa := a.r.AddPeer(PeerConfig{Name: "b", LocalIP: 1, RemoteIP: 2, RemoteAS: 64999, Interface: "et0"})
	pb := b.r.AddPeer(PeerConfig{Name: "a", LocalIP: 2, RemoteIP: 1, RemoteAS: 65001, Interface: "et0"})
	a.peerWire = append(a.peerWire, func(d []byte) { n.eng.After(0, func() { pb.HandleMessage(d) }) })
	b.peerWire = append(b.peerWire, func(d []byte) { n.eng.After(0, func() { pa.HandleMessage(d) }) })
	pa.Start()
	pb.Start()
	n.run()
	if pa.State() == StateEstablished || pb.State() == StateEstablished {
		t.Fatal("session with AS mismatch established")
	}
}

func TestPassivePeerEstablishes(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	pa := a.r.AddPeer(PeerConfig{Name: "b", LocalIP: 1, RemoteIP: 2, RemoteAS: 65002, Interface: "et0"})
	pb := b.r.AddPeer(PeerConfig{Name: "a", LocalIP: 2, RemoteIP: 1, RemoteAS: 65001, Interface: "et0", Passive: true})
	a.peerWire = append(a.peerWire, func(d []byte) { n.eng.After(0, func() { pb.HandleMessage(d) }) })
	b.peerWire = append(b.peerWire, func(d []byte) { n.eng.After(0, func() { pa.HandleMessage(d) }) })
	pb.Start() // passive: stays idle
	if pb.State() != StateIdle {
		t.Fatal("passive peer should stay Idle")
	}
	pa.Start()
	n.run()
	if pa.State() != StateEstablished || pb.State() != StateEstablished {
		t.Fatalf("states = %v / %v", pa.State(), pb.State())
	}
}

// ---- route propagation ----

func TestRoutePropagationTwoHops(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	c := n.add("c", 65003, nil)
	n.connect("a", "b")
	pbc, _ := n.connect("b", "c")
	n.run()

	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()

	// b learned it from a with path {65001}.
	attrs, ok := b.r.BestRoute(p)
	if !ok {
		t.Fatal("b did not learn route")
	}
	if attrs.Path.String() != "65001" {
		t.Fatalf("b path = %q", attrs.Path)
	}
	// c learned it via b with path {65002 65001} and b's next-hop-self.
	attrs, ok = c.r.BestRoute(p)
	if !ok {
		t.Fatal("c did not learn route")
	}
	if attrs.Path.String() != "65002 65001" {
		t.Fatalf("c path = %q", attrs.Path)
	}
	// RIB-resident attrs are session-independent (next-hop rides the wire
	// message, not the canonical attribute object).
	if attrs.NextHop != 0 {
		t.Fatalf("c RIB attrs carry a next hop (%v); want session-independent attrs", attrs.NextHop)
	}
	// c's FIB has the route.
	if hops := c.fib[p]; len(hops) != 1 || hops[0].IP != pbc.Config.LocalIP {
		t.Fatalf("c FIB = %v", c.fib[p])
	}
	// a must NOT have its own route echoed back into its FIB.
	if _, echoed := a.fib[p]; echoed {
		t.Fatal("origin got its own route installed via peer")
	}
}

func TestWithdrawalPropagates(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	c := n.add("c", 65003, nil)
	n.add("b", 65002, nil)
	n.connect("a", "b")
	n.connect("b", "c")
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	if _, ok := c.r.BestRoute(p); !ok {
		t.Fatal("setup: c missing route")
	}
	a.r.WithdrawLocal(p)
	n.run()
	if _, ok := c.r.BestRoute(p); ok {
		t.Fatal("withdrawal did not propagate to c")
	}
	if _, ok := c.fib[p]; ok {
		t.Fatal("stale FIB entry on c")
	}
}

func TestLoopPrevention(t *testing.T) {
	// Ring a-b-c-a: updates must not cycle forever (the Run event cap
	// catches livelock) and each router holds at most the two useful paths.
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	c := n.add("c", 65003, nil)
	n.connect("a", "b")
	n.connect("b", "c")
	n.connect("c", "a")
	p := pfx("100.64.9.0/24")
	a.r.Originate(p)
	n.run()
	for _, nd := range []*tnode{b, c} {
		attrs, ok := nd.r.BestRoute(p)
		if !ok {
			t.Fatalf("%s missing route", nd.name)
		}
		if attrs.Path.Length() != 1 {
			t.Fatalf("%s best path %q, want direct", nd.name, attrs.Path)
		}
		if attrs.Path.Contains(nd.r.cfg.AS) {
			t.Fatalf("%s accepted looped path %q", nd.name, attrs.Path)
		}
	}
}

func TestSameASPeersDoNotExchangeLoopedRoutes(t *testing.T) {
	// Two spines in the same AS behind a common leaf: leaf must not relay
	// spine1's routes to spine2 (sender-side check), and spines discard
	// paths containing their own AS (receiver-side check).
	n := newTnet(t)
	s1 := n.add("spine1", 65100, nil)
	n.add("spine2", 65100, nil)
	leaf := n.add("leaf", 65201, nil)
	n.connect("spine1", "leaf")
	n.connect("spine2", "leaf")
	p := pfx("100.64.1.0/24")
	s1.r.Originate(p)
	n.run()
	if _, ok := leaf.r.BestRoute(p); !ok {
		t.Fatal("leaf missing route")
	}
	s2 := n.nodes["spine2"]
	if _, ok := s2.r.BestRoute(p); ok {
		t.Fatal("spine2 received a route that would loop through AS 65100")
	}
}

func TestECMPMultipath(t *testing.T) {
	// d reaches a's prefix via b and c with equal-length paths -> 2 next hops.
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.add("c", 65003, nil)
	d := n.add("d", 65004, nil)
	n.connect("a", "b")
	n.connect("a", "c")
	pdb, _ := n.connect("d", "b")
	pdc, _ := n.connect("d", "c")
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()

	hops := d.fib[p]
	if len(hops) != 2 {
		t.Fatalf("d FIB hops = %v, want ECMP pair", hops)
	}
	ips := map[netpkt.IP]bool{hops[0].IP: true, hops[1].IP: true}
	if !ips[pdb.Config.RemoteIP] || !ips[pdc.Config.RemoteIP] {
		t.Fatalf("hops %v do not match b/c session IPs", hops)
	}
}

func TestMaxPathsOneDisablesECMP(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.add("c", 65003, nil)
	d := n.add("d", 65004, func(c *Config) { c.MaxPaths = 1 })
	n.connect("a", "b")
	n.connect("a", "c")
	n.connect("d", "b")
	n.connect("d", "c")
	a.r.Originate(pfx("100.64.0.0/24"))
	n.run()
	if hops := d.fib[pfx("100.64.0.0/24")]; len(hops) != 1 {
		t.Fatalf("MaxPaths=1 FIB hops = %v", hops)
	}
}

// ---- decision process ----

func TestDecisionShorterPathWins(t *testing.T) {
	// d: direct path via b (len 2) vs via c-e (len 3).
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.add("c", 65003, nil)
	n.add("e", 65005, nil)
	d := n.add("d", 65004, nil)
	n.connect("a", "b")
	n.connect("a", "e")
	n.connect("e", "c")
	pdb, _ := n.connect("d", "b")
	n.connect("d", "c")
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	attrs, ok := d.r.BestRoute(p)
	if !ok || attrs.Path.String() != "65002 65001" {
		t.Fatalf("best path = %v", attrs)
	}
	if hops := d.fib[p]; len(hops) != 1 || hops[0].IP != pdb.Config.RemoteIP {
		t.Fatalf("FIB = %v, want single hop via b", d.fib[p])
	}
}

func TestDecisionLocalPrefBeatsPathLength(t *testing.T) {
	// Import policy on the long path sets LP 200, overriding length.
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.add("c", 65003, nil)
	n.add("e", 65005, nil)
	d := n.add("d", 65004, nil)
	n.connect("a", "b")
	n.connect("a", "e")
	n.connect("e", "c")
	n.connect("d", "b")

	// d's session to c carries an import policy raising LOCAL_PREF.
	dn, cn := n.nodes["d"], n.nodes["c"]
	linkCount++
	dIP := netpkt.IPFromBytes(10, 128, byte(linkCount), 0)
	cIP := dIP + 1
	pdc := dn.r.AddPeer(PeerConfig{
		Name: "c", LocalIP: dIP, RemoteIP: cIP, RemoteAS: 65003, Interface: "etX",
		ImportPolicy: &Policy{Rules: []Rule{{Action: Permit, SetLocalPref: u32(200)}}},
	})
	pcd := cn.r.AddPeer(PeerConfig{Name: "d", LocalIP: cIP, RemoteIP: dIP, RemoteAS: 65004, Interface: "etX"})
	dn.peerWire = append(dn.peerWire, func(data []byte) { n.eng.After(n.delay, func() { pcd.HandleMessage(data) }) })
	cn.peerWire = append(cn.peerWire, func(data []byte) { n.eng.After(n.delay, func() { pdc.HandleMessage(data) }) })
	pdc.Start()
	pcd.Start()

	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	attrs, ok := d.r.BestRoute(p)
	if !ok {
		t.Fatal("no route")
	}
	if attrs.EffectiveLocalPref() != 200 || attrs.Path.Length() != 3 {
		t.Fatalf("LP did not win: %v", attrs)
	}
}

func TestDecisionOriginAndMED(t *testing.T) {
	r := New(Config{Name: "x", AS: 65000, MaxPaths: 1}, nil, Hooks{})
	p1 := r.AddPeer(PeerConfig{Name: "p1", RemoteAS: 65001, RemoteIP: 1, Interface: "et0"})
	p2 := r.AddPeer(PeerConfig{Name: "p2", RemoteAS: 65001, RemoteIP: 2, Interface: "et1"})
	p1.remoteID, p2.remoteID = 10, 20

	igp := &candidate{peerIdx: int32(p1.Index), attrs: &Attrs{Origin: OriginIGP, Path: NewPath(65001)}}
	egp := &candidate{peerIdx: int32(p2.Index), attrs: &Attrs{Origin: OriginEGP, Path: NewPath(65001)}}
	if !r.better(igp, egp) || r.better(egp, igp) {
		t.Fatal("IGP origin must beat EGP")
	}

	med5 := &candidate{peerIdx: int32(p1.Index), attrs: &Attrs{Origin: OriginIGP, Path: NewPath(65001), MED: 5, HasMED: true}}
	med9 := &candidate{peerIdx: int32(p2.Index), attrs: &Attrs{Origin: OriginIGP, Path: NewPath(65001), MED: 9, HasMED: true}}
	if !r.better(med5, med9) || r.better(med9, med5) {
		t.Fatal("lower MED must win within same neighbor AS")
	}

	// Different neighbor AS: MED not compared; falls to router ID.
	medOther := &candidate{peerIdx: int32(p2.Index), attrs: &Attrs{Origin: OriginIGP, Path: NewPath(65002), MED: 1, HasMED: true}}
	if !r.better(med5, medOther) {
		t.Fatal("router-ID tiebreak should pick p1 (lower ID)")
	}
}

// ---- session teardown / flap ----

func TestSessionStopWithdrawsRoutes(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	c := n.add("c", 65003, nil)
	pab, pba := n.connect("a", "b")
	n.connect("b", "c")
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	if _, ok := c.r.BestRoute(p); !ok {
		t.Fatal("setup failed")
	}

	// Link a-b dies: both ends reset.
	pab.Stop("link down")
	pba.Stop("link down")
	n.run()
	if _, ok := b.r.BestRoute(p); ok {
		t.Fatal("b kept route after session loss")
	}
	if _, ok := c.r.BestRoute(p); ok {
		t.Fatal("withdrawal did not reach c")
	}
	if pab.State() != StateIdle {
		t.Fatal("peer not idle after stop")
	}
}

func TestSessionReestablishResendsRoutes(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	pab, pba := n.connect("a", "b")
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	pab.Stop("flap")
	pba.Stop("flap")
	n.run()
	if _, ok := b.r.BestRoute(p); ok {
		t.Fatal("route survived flap")
	}
	pab.Start()
	pba.Start()
	n.run()
	if _, ok := b.r.BestRoute(p); !ok {
		t.Fatal("route not re-learned after re-establish")
	}
}

// ---- policies on sessions ----

func TestExportPolicyFiltersRoutes(t *testing.T) {
	blocked := pfx("100.64.1.0/24")
	pol := &Policy{
		Rules:         []Rule{{Match: Match{Prefix: &blocked, Exact: true}, Action: Deny}},
		DefaultAction: Permit,
	}
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	n.connect("a", "b", pol, nil) // a's export policy
	a.r.Originate(blocked)
	a.r.Originate(pfx("100.64.2.0/24"))
	n.run()
	if _, ok := b.r.BestRoute(blocked); ok {
		t.Fatal("export deny leaked")
	}
	if _, ok := b.r.BestRoute(pfx("100.64.2.0/24")); !ok {
		t.Fatal("permitted route missing")
	}
}

func TestExportPolicyChangeTriggersWithdraw(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	pab, _ := n.connect("a", "b")
	p := pfx("100.64.1.0/24")
	a.r.Originate(p)
	n.run()
	if _, ok := b.r.BestRoute(p); !ok {
		t.Fatal("setup failed")
	}
	// Operator applies a deny-all export policy and the router re-flushes.
	pab.SetExportPolicy(DenyAll)
	n.run()
	if _, ok := b.r.BestRoute(p); ok {
		t.Fatal("route not withdrawn after policy change")
	}
}

// ---- FIB interaction ----

func TestFIBInstallErrorKeepsRIB(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	c := n.add("c", 65003, nil)
	n.connect("a", "b")
	n.connect("b", "c")
	b.installErr = rib.ErrFull
	p := pfx("100.64.0.0/24")
	a.r.Originate(p)
	n.run()
	if _, ok := b.fib[p]; ok {
		t.Fatal("FIB entry installed despite error")
	}
	// The RIB keeps the route and still advertises it downstream — exactly
	// the §2 black-hole anatomy.
	if _, ok := b.r.BestRoute(p); !ok {
		t.Fatal("RIB lost route on FIB error")
	}
	if _, ok := c.r.BestRoute(p); !ok {
		t.Fatal("route not advertised past the full-FIB router")
	}
}

// ---- aggregation (Figure 1) ----

func TestAggregationInheritSelected(t *testing.T) {
	agg := pfx("100.64.0.0/23")
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("r6", 65006, func(c *Config) {
		c.AggregationMode = AggInheritSelected
		c.Aggregates = []AggregateSpec{{Prefix: agg, SummaryOnly: true}}
	})
	r8 := n.add("r8", 65008, nil)
	n.connect("a", "r6")
	n.connect("r6", "r8")
	a.r.Originate(pfx("100.64.0.0/24"))
	a.r.Originate(pfx("100.64.1.0/24"))
	n.run()

	attrs, ok := r8.r.BestRoute(agg)
	if !ok {
		t.Fatal("aggregate not announced")
	}
	if attrs.Path.String() != "65006 65001" {
		t.Fatalf("inherit-selected path = %q, want {65006 65001}", attrs.Path)
	}
	// Summary-only: contributors suppressed.
	if _, ok := r8.r.BestRoute(pfx("100.64.0.0/24")); ok {
		t.Fatal("contributor leaked past summary-only aggregate")
	}
	if attrs.AggAS != 65006 {
		t.Fatalf("aggregator AS = %d", attrs.AggAS)
	}
}

func TestAggregationBarePath(t *testing.T) {
	agg := pfx("100.64.0.0/23")
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("r7", 65007, func(c *Config) {
		c.AggregationMode = AggBarePath
		c.Aggregates = []AggregateSpec{{Prefix: agg, SummaryOnly: true}}
	})
	r8 := n.add("r8", 65008, nil)
	n.connect("a", "r7")
	n.connect("r7", "r8")
	a.r.Originate(pfx("100.64.0.0/24"))
	a.r.Originate(pfx("100.64.1.0/24"))
	n.run()

	attrs, ok := r8.r.BestRoute(agg)
	if !ok {
		t.Fatal("aggregate not announced")
	}
	if attrs.Path.String() != "65007" {
		t.Fatalf("bare path = %q, want {65007}", attrs.Path)
	}
	if !attrs.Atomic {
		t.Fatal("ATOMIC_AGGREGATE not set")
	}
}

func TestAggregateWithdrawnWhenContributorsGone(t *testing.T) {
	agg := pfx("100.64.0.0/23")
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("r6", 65006, func(c *Config) {
		c.Aggregates = []AggregateSpec{{Prefix: agg, SummaryOnly: true}}
	})
	r8 := n.add("r8", 65008, nil)
	n.connect("a", "r6")
	n.connect("r6", "r8")
	a.r.Originate(pfx("100.64.0.0/24"))
	n.run()
	if _, ok := r8.r.BestRoute(agg); !ok {
		t.Fatal("aggregate missing")
	}
	a.r.WithdrawLocal(pfx("100.64.0.0/24"))
	n.run()
	if _, ok := r8.r.BestRoute(agg); ok {
		t.Fatal("aggregate survived contributor withdrawal")
	}
}

// TestFigure1Imbalance reproduces the paper's Figure 1: R6 (inherit mode)
// and R7 (bare mode) both aggregate P1/P2 into P3; R8 prefers R7's shorter
// path, causing the traffic imbalance.
func TestFigure1Imbalance(t *testing.T) {
	p1, p2 := pfx("100.64.0.0/24"), pfx("100.64.1.0/24")
	p3 := pfx("100.64.0.0/23")
	n := newTnet(t)
	r1 := n.add("r1", 1, nil)
	for i, as := range []uint32{2, 3, 4, 5} {
		n.add(fmt.Sprintf("r%d", i+2), as, nil)
	}
	n.add("r6", 6, func(c *Config) {
		c.AggregationMode = AggInheritSelected
		c.Aggregates = []AggregateSpec{{Prefix: p3, SummaryOnly: true}}
	})
	n.add("r7", 7, func(c *Config) {
		c.AggregationMode = AggBarePath
		c.Aggregates = []AggregateSpec{{Prefix: p3, SummaryOnly: true}}
	})
	r8 := n.add("r8", 8, nil)
	// Figure 1 wiring: R1 under R2,R3 (feeding R6) and R4,R5 (feeding R7).
	n.connect("r1", "r2")
	n.connect("r1", "r3")
	n.connect("r1", "r4")
	n.connect("r1", "r5")
	n.connect("r2", "r6")
	n.connect("r3", "r6")
	n.connect("r4", "r7")
	n.connect("r5", "r7")
	_, p8r6 := n.connect("r6", "r8")
	_, p8r7 := n.connect("r7", "r8")
	_ = p8r6
	r1.r.Originate(p1)
	r1.r.Originate(p2)
	n.run()

	attrs, ok := r8.r.BestRoute(p3)
	if !ok {
		t.Fatal("R8 missing aggregate")
	}
	// R7's bare path {7} (length 1) beats R6's {6,2,1}/{6,3,1} (length 3).
	if attrs.Path.String() != "7" {
		t.Fatalf("R8 best path = %q, want R7's {7}", attrs.Path)
	}
	hops := n.nodes["r8"].fib[p3]
	if len(hops) != 1 || hops[0].IP != p8r7.Config.RemoteIP {
		t.Fatalf("R8 forwards via %v, want all traffic pinned to R7 (imbalance)", hops)
	}
}

// ---- stats and misc ----

func TestStatsAndString(t *testing.T) {
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.connect("a", "b")
	a.r.Originate(pfx("100.64.0.0/24"))
	n.run()
	st := a.r.Stats()
	if st.Established != 1 || st.LocRIB != 1 || st.AS != 65001 {
		t.Fatalf("stats = %+v", st)
	}
	if a.r.String() != "bgp(a AS65001)" {
		t.Fatalf("String = %q", a.r.String())
	}
	if len(a.r.Prefixes()) != 1 {
		t.Fatal("Prefixes wrong")
	}
	pa := a.r.Peer(0)
	if pa.MsgsIn == 0 || pa.MsgsOut == 0 {
		t.Fatal("message counters not incremented")
	}
	if pa.AdvertisedLen() != 1 {
		t.Fatalf("AdvertisedLen = %d", pa.AdvertisedLen())
	}
	if n.nodes["b"].r.Peer(0).AdjInLen() != 1 {
		t.Fatal("AdjInLen wrong")
	}
}

func TestLargeTableBatching(t *testing.T) {
	// 2000 prefixes must converge with far fewer UPDATE messages than
	// prefixes, proving NLRI batching works.
	n := newTnet(t)
	a := n.add("a", 65001, nil)
	b := n.add("b", 65002, nil)
	pab, _ := n.connect("a", "b")
	n.run()
	for i := 0; i < 2000; i++ {
		a.r.Originate(netpkt.Prefix{Addr: netpkt.IPFromBytes(100, 64, 0, 0) + netpkt.IP(i*256), Len: 24})
	}
	n.run()
	if got := b.r.LocRIB(); got != 2000 {
		t.Fatalf("b LocRIB = %d, want 2000", got)
	}
	if pab.MsgsOut > 40 {
		t.Fatalf("%d messages for 2000 prefixes; batching broken", pab.MsgsOut)
	}
}

func TestNonDeterministicTiesFollowArrival(t *testing.T) {
	r := New(Config{Name: "x", AS: 65000, MaxPaths: 1, NonDeterministicTies: true}, nil, Hooks{})
	pA := r.AddPeer(PeerConfig{Name: "A", RemoteAS: 65001, RemoteIP: 9, Interface: "et0"})
	pB := r.AddPeer(PeerConfig{Name: "B", RemoteAS: 65002, RemoteIP: 1, Interface: "et1"})
	pA.remoteID, pB.remoteID = 9, 1
	p := pfx("100.64.0.0/24")
	// B's candidate would win on router-ID, but A's arrived first.
	r.upsertCandidate(p, pA, &Attrs{Origin: OriginIGP, Path: NewPath(65001)})
	r.upsertCandidate(p, pB, &Attrs{Origin: OriginIGP, Path: NewPath(65002)})
	attrs, _ := r.BestRoute(p)
	if attrs.Path.First() != 65001 {
		t.Fatalf("arrival-order tiebreak broken: best via %d", attrs.Path.First())
	}
}

func BenchmarkDecisionProcess(b *testing.B) {
	r := New(Config{Name: "bench", AS: 65000, MaxPaths: 8}, nil, Hooks{})
	var peers []*Peer
	for i := 0; i < 8; i++ {
		p := r.AddPeer(PeerConfig{Name: "p", RemoteAS: uint32(65001 + i), RemoteIP: netpkt.IP(i + 1), Interface: "et0"})
		p.remoteID = netpkt.IP(100 + i)
		peers = append(peers, p)
	}
	attrs := make([]*Attrs, 8)
	for i := range attrs {
		attrs[i] = &Attrs{Origin: OriginIGP, Path: NewPath(uint32(65001+i), 4200000000), NextHop: netpkt.IP(i + 1)}
	}
	p := pfx("100.64.0.0/24")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.upsertCandidate(p, peers[i%8], attrs[i%8])
	}
}
