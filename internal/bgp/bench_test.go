package bgp

import (
	"fmt"
	"testing"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/sim"
)

// benchNet builds the 3-router line a — b — c used by the churn benchmark,
// without the *testing.T plumbing of the test harness.
func benchNet() *tnet {
	return &tnet{eng: sim.NewEngine(1), nodes: map[string]*tnode{}, delay: time.Millisecond}
}

// BenchmarkRouterChurn drives an announce + withdraw storm through a
// 3-router line: the originator flaps a block of prefixes and every flap
// propagates through b's decision process, export path and MRAI flushes to
// c — the exact per-update work that dominates a mockup's convergence.
func BenchmarkRouterChurn(b *testing.B) {
	n := benchNet()
	n.add("a", 65001, nil)
	n.add("b", 65002, nil)
	n.add("c", 65003, nil)
	n.connect("a", "b")
	n.connect("b", "c")

	const block = 256
	prefixes := make([]netpkt.Prefix, block)
	for i := range prefixes {
		prefixes[i] = pfx(fmt.Sprintf("100.%d.%d.0/24", 64+i/256, i%256))
	}
	if _, err := n.eng.Run(0); err != nil {
		b.Fatal(err)
	}

	a, c := n.nodes["a"], n.nodes["c"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := prefixes[i%block]
		a.r.Originate(p)
		if _, err := n.eng.Run(0); err != nil {
			b.Fatal(err)
		}
		a.r.WithdrawLocal(p)
		if _, err := n.eng.Run(0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(c.fib) != 0 {
		b.Fatalf("%d routes left after withdraw storm", len(c.fib))
	}
}
