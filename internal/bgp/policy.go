package bgp

import (
	"fmt"
	"strings"

	"crystalnet/internal/netpkt"
)

// Action is a policy rule verdict.
type Action uint8

// Rule actions.
const (
	Permit Action = iota
	Deny
)

// Match describes what a policy rule applies to. Zero-value fields are
// wildcards.
type Match struct {
	// Prefix matches routes covered by this prefix with length in
	// [GE, LE] (both zero means exact-or-longer up to /32 if GE/LE unset
	// and Exact false; Exact true requires an exact match).
	Prefix *netpkt.Prefix
	Exact  bool
	GE, LE uint8
	// PathContains matches routes whose AS path includes this ASN.
	PathContains uint32
	// OddThirdOctet24 matches /24 prefixes whose third octet is odd. No
	// operator writes this — it models the §2 firmware defect where a new
	// release "erroneously stopped announcing certain IP prefixes", and the
	// firmware package splices it into export policies as an injected bug.
	OddThirdOctet24 bool
}

// Matches reports whether the rule matches the route.
func (m *Match) Matches(p netpkt.Prefix, a *Attrs) bool {
	if m.Prefix != nil {
		if m.Exact {
			if p != *m.Prefix {
				return false
			}
		} else {
			if !m.Prefix.ContainsPrefix(p) {
				return false
			}
			ge, le := m.GE, m.LE
			if ge == 0 {
				ge = m.Prefix.Len
			}
			if le == 0 {
				le = 32
			}
			if p.Len < ge || p.Len > le {
				return false
			}
		}
	}
	if m.PathContains != 0 {
		if a == nil || a.Path == nil || !a.Path.Contains(m.PathContains) {
			return false
		}
	}
	if m.OddThirdOctet24 {
		if p.Len != 24 || (p.Addr>>8)&1 == 0 {
			return false
		}
	}
	return true
}

// Rule is one route-map entry: a match, a verdict, and attribute rewrites
// applied on Permit.
type Rule struct {
	Name   string
	Match  Match
	Action Action
	// Attribute rewrites, applied only when Action is Permit.
	SetLocalPref *uint32
	SetMED       *uint32
	PrependAS    uint32
	PrependCount int
}

// Policy is an ordered route-map. The first matching rule decides; routes
// matching no rule get DefaultAction.
type Policy struct {
	Name          string
	Rules         []Rule
	DefaultAction Action
}

// PermitAll is the implicit policy of an unfiltered session.
var PermitAll = &Policy{Name: "permit-all", DefaultAction: Permit}

// DenyAll rejects everything.
var DenyAll = &Policy{Name: "deny-all", DefaultAction: Deny}

// Apply evaluates the policy for a route. It returns the (possibly
// rewritten) attributes and whether the route is permitted. The input attrs
// are never mutated.
func (pol *Policy) Apply(p netpkt.Prefix, a *Attrs) (*Attrs, bool) {
	if pol == nil {
		return a, true
	}
	for i := range pol.Rules {
		r := &pol.Rules[i]
		if !r.Match.Matches(p, a) {
			continue
		}
		if r.Action == Deny {
			return a, false
		}
		return r.rewrite(a), true
	}
	return a, pol.DefaultAction == Permit
}

func (r *Rule) rewrite(a *Attrs) *Attrs {
	if r.SetLocalPref == nil && r.SetMED == nil && r.PrependCount == 0 {
		return a
	}
	c := *a
	c.ekey = ""
	if r.SetLocalPref != nil {
		c.LocalPref, c.HasLP = *r.SetLocalPref, true
	}
	if r.SetMED != nil {
		c.MED, c.HasMED = *r.SetMED, true
	}
	for i := 0; i < r.PrependCount; i++ {
		c.Path = c.Path.Prepend(r.PrependAS)
	}
	return &c
}

// prefixIndependent reports whether the policy's verdict and rewrites depend
// only on a route's attributes, never on its prefix. Such policies allow the
// per-peer export cache to key on the best-path attrs alone.
func (pol *Policy) prefixIndependent() bool {
	if pol == nil {
		return true
	}
	for i := range pol.Rules {
		m := &pol.Rules[i].Match
		if m.Prefix != nil || m.OddThirdOctet24 {
			return false
		}
	}
	return true
}

// String renders the policy in a config-like form.
func (pol *Policy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "route-map %s", pol.Name)
	for _, r := range pol.Rules {
		verb := "permit"
		if r.Action == Deny {
			verb = "deny"
		}
		fmt.Fprintf(&b, "\n  %s %s", verb, r.Name)
		if r.Match.Prefix != nil {
			fmt.Fprintf(&b, " match %s", r.Match.Prefix)
			if r.Match.Exact {
				b.WriteString(" exact")
			}
		}
		if r.Match.PathContains != 0 {
			fmt.Fprintf(&b, " match-as %d", r.Match.PathContains)
		}
	}
	if pol.DefaultAction == Permit {
		b.WriteString("\n  default permit")
	} else {
		b.WriteString("\n  default deny")
	}
	return b.String()
}
