package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"

	"crystalnet/internal/netpkt"
)

// Message types (RFC 4271 §4.1).
const (
	MsgOpen         uint8 = 1
	MsgUpdate       uint8 = 2
	MsgNotification uint8 = 3
	MsgKeepalive    uint8 = 4
)

// Protocol constants.
const (
	Version       = 4
	ASTrans       = 23456 // RFC 6793 placeholder for 4-octet AS speakers
	headerLen     = 19
	maxMessageLen = 4096
	markerLen     = 16
)

// Path attribute type codes.
const (
	attrOrigin     uint8 = 1
	attrASPath     uint8 = 2
	attrNextHop    uint8 = 3
	attrMED        uint8 = 4
	attrLocalPref  uint8 = 5
	attrAtomicAgg  uint8 = 6
	attrAggregator uint8 = 7
)

// Attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagExtLen     uint8 = 0x10
)

// Capability codes carried in OPEN optional parameters.
const (
	capFourOctetAS uint8 = 65
	// capConnGen is a private-use capability carrying the sender's
	// connection generation — the emulator's stand-in for TCP connection
	// identity, letting a receiver distinguish a duplicate OPEN of the
	// current connection from a genuinely new one after a peer restart.
	capConnGen uint8 = 0xF0
)

// Errors surfaced by the codec. Real firmware sends NOTIFICATION with
// error codes; the emulator maps decode failures onto these.
var (
	ErrBadMarker  = errors.New("bgp: connection not synchronized (bad marker)")
	ErrBadLength  = errors.New("bgp: bad message length")
	ErrBadType    = errors.New("bgp: bad message type")
	ErrMalformed  = errors.New("bgp: malformed attribute list")
	ErrBadVersion = errors.New("bgp: unsupported version number")
)

// Open is a BGP OPEN message.
type Open struct {
	AS       uint32 // full 4-octet AS
	HoldTime uint16
	BGPID    netpkt.IP
	// Gen identifies the connection incarnation (see capConnGen).
	Gen uint32
}

// Update is a BGP UPDATE message: withdrawals plus announcements sharing one
// attribute set. An Update with only withdrawals has nil Attrs.
//
// NextHop carries the NEXT_HOP path attribute. It rides the Update rather
// than the Attrs: the fabric is next-hop-self on every session (RFC 7938),
// so a route's next hop is a property of the announcing session, not of the
// route — the sender stamps its session address here at marshal time and
// the receiver recovers it from the peer that delivered the message. Keeping
// it out of Attrs is what lets one canonical interned attribute object be
// shared by every session and every device in the process (DESIGN.md §10).
type Update struct {
	Withdrawn []netpkt.Prefix
	Attrs     *Attrs
	NextHop   netpkt.IP
	NLRI      []netpkt.Prefix
}

// Notification is a BGP NOTIFICATION message; sending one closes the session.
type Notification struct {
	Code    uint8
	Subcode uint8
	Data    []byte
}

// Notification error codes (RFC 4271 §4.5).
const (
	NotifMsgHeader   uint8 = 1
	NotifOpenError   uint8 = 2
	NotifUpdateError uint8 = 3
	NotifHoldTimer   uint8 = 4
	NotifFSMError    uint8 = 5
	NotifCease       uint8 = 6
)

func putHeader(b []byte, msgType uint8) {
	for i := 0; i < markerLen; i++ {
		b[i] = 0xff
	}
	binary.BigEndian.PutUint16(b[16:18], uint16(len(b)))
	b[18] = msgType
}

// MarshalOpen encodes an OPEN with the 4-octet-AS and connection-generation
// capabilities.
func MarshalOpen(o *Open) []byte {
	// Optional parameter: type 2 (capability), two capabilities.
	capData := make([]byte, 4)
	binary.BigEndian.PutUint32(capData, o.AS)
	optParams := []byte{2, 12, capFourOctetAS, 4}
	optParams = append(optParams, capData...)
	genData := make([]byte, 4)
	binary.BigEndian.PutUint32(genData, o.Gen)
	optParams = append(optParams, capConnGen, 4)
	optParams = append(optParams, genData...)

	b := make([]byte, headerLen+10+len(optParams))
	p := b[headerLen:]
	p[0] = Version
	as2 := o.AS
	if as2 > 0xffff {
		as2 = ASTrans
	}
	binary.BigEndian.PutUint16(p[1:3], uint16(as2))
	binary.BigEndian.PutUint16(p[3:5], o.HoldTime)
	binary.BigEndian.PutUint32(p[5:9], uint32(o.BGPID))
	p[9] = byte(len(optParams))
	copy(p[10:], optParams)
	putHeader(b, MsgOpen)
	return b
}

// MarshalKeepalive encodes a KEEPALIVE.
func MarshalKeepalive() []byte {
	b := make([]byte, headerLen)
	putHeader(b, MsgKeepalive)
	return b
}

// MarshalNotification encodes a NOTIFICATION.
func MarshalNotification(n *Notification) []byte {
	b := make([]byte, headerLen+2+len(n.Data))
	b[headerLen] = n.Code
	b[headerLen+1] = n.Subcode
	copy(b[headerLen+2:], n.Data)
	putHeader(b, MsgNotification)
	return b
}

func marshalPrefixes(dst []byte, ps []netpkt.Prefix) []byte {
	for _, p := range ps {
		dst = append(dst, p.Len)
		oct := p.Addr.Octets()
		dst = append(dst, oct[:(p.Len+7)/8]...)
	}
	return dst
}

func parsePrefixes(b []byte) ([]netpkt.Prefix, error) {
	var out []netpkt.Prefix
	for len(b) > 0 {
		l := b[0]
		if l > 32 {
			return nil, ErrMalformed
		}
		n := int(l+7) / 8
		if len(b) < 1+n {
			return nil, ErrMalformed
		}
		var oct [4]byte
		copy(oct[:], b[1:1+n])
		p := netpkt.Prefix{Addr: netpkt.IPFromBytes(oct[0], oct[1], oct[2], oct[3]), Len: l}
		p.Addr &= p.MaskIP()
		out = append(out, p)
		b = b[1+n:]
	}
	return out, nil
}

// MarshalUpdate encodes an UPDATE. AS numbers in AS_PATH are 4 octets (both
// ends of every emulated session negotiate the AS4 capability).
func MarshalUpdate(u *Update) []byte {
	withdrawn := marshalPrefixes(nil, u.Withdrawn)
	var attrs []byte
	if u.Attrs != nil {
		attrs = marshalAttrs(u.Attrs, u.NextHop)
	}
	nlri := marshalPrefixes(nil, u.NLRI)

	b := make([]byte, 0, headerLen+4+len(withdrawn)+len(attrs)+len(nlri))
	b = append(b, make([]byte, headerLen)...)
	var wl [2]byte
	binary.BigEndian.PutUint16(wl[:], uint16(len(withdrawn)))
	b = append(b, wl[:]...)
	b = append(b, withdrawn...)
	var al [2]byte
	binary.BigEndian.PutUint16(al[:], uint16(len(attrs)))
	b = append(b, al[:]...)
	b = append(b, attrs...)
	b = append(b, nlri...)
	putHeader(b, MsgUpdate)
	return b
}

func appendAttr(dst []byte, flags, typ uint8, data []byte) []byte {
	if len(data) > 255 {
		flags |= flagExtLen
		dst = append(dst, flags, typ, byte(len(data)>>8), byte(len(data)))
	} else {
		dst = append(dst, flags, typ, byte(len(data)))
	}
	return append(dst, data...)
}

func marshalAttrs(a *Attrs, nextHop netpkt.IP) []byte {
	var out []byte
	out = appendAttr(out, flagTransitive, attrOrigin, []byte{byte(a.Origin)})

	var pathData []byte
	if a.Path != nil {
		for _, seg := range a.Path.Segments {
			pathData = append(pathData, byte(seg.Type), byte(len(seg.ASNs)))
			for _, asn := range seg.ASNs {
				var v [4]byte
				binary.BigEndian.PutUint32(v[:], asn)
				pathData = append(pathData, v[:]...)
			}
		}
	}
	out = appendAttr(out, flagTransitive, attrASPath, pathData)

	var nh [4]byte
	binary.BigEndian.PutUint32(nh[:], uint32(nextHop))
	out = appendAttr(out, flagTransitive, attrNextHop, nh[:])

	if a.HasMED {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.MED)
		out = appendAttr(out, flagOptional, attrMED, v[:])
	}
	if a.HasLP {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], a.LocalPref)
		out = appendAttr(out, flagTransitive, attrLocalPref, v[:])
	}
	if a.Atomic {
		out = appendAttr(out, flagTransitive, attrAtomicAgg, nil)
	}
	if a.AggAS != 0 {
		var v [8]byte
		binary.BigEndian.PutUint32(v[0:4], a.AggAS)
		binary.BigEndian.PutUint32(v[4:8], uint32(a.AggID))
		out = appendAttr(out, flagOptional|flagTransitive, attrAggregator, v[:])
	}
	return out
}

func parseAttrs(b []byte) (*Attrs, netpkt.IP, error) {
	var nextHop netpkt.IP
	a := &Attrs{Path: EmptyPath}
	sawOrigin, sawPath, sawNextHop := false, false, false
	for len(b) > 0 {
		if len(b) < 3 {
			return nil, 0, ErrMalformed
		}
		flags, typ := b[0], b[1]
		var alen int
		var rest []byte
		if flags&flagExtLen != 0 {
			if len(b) < 4 {
				return nil, 0, ErrMalformed
			}
			alen = int(binary.BigEndian.Uint16(b[2:4]))
			rest = b[4:]
		} else {
			alen = int(b[2])
			rest = b[3:]
		}
		if len(rest) < alen {
			return nil, 0, ErrMalformed
		}
		data := rest[:alen]
		b = rest[alen:]

		switch typ {
		case attrOrigin:
			if alen != 1 || data[0] > 2 {
				return nil, 0, ErrMalformed
			}
			a.Origin = Origin(data[0])
			sawOrigin = true
		case attrASPath:
			path := &ASPath{}
			d := data
			for len(d) > 0 {
				if len(d) < 2 {
					return nil, 0, ErrMalformed
				}
				st, cnt := SegmentType(d[0]), int(d[1])
				if st != ASSet && st != ASSequence {
					return nil, 0, ErrMalformed
				}
				if len(d) < 2+4*cnt {
					return nil, 0, ErrMalformed
				}
				seg := Segment{Type: st, ASNs: make([]uint32, cnt)}
				for i := 0; i < cnt; i++ {
					seg.ASNs[i] = binary.BigEndian.Uint32(d[2+4*i : 6+4*i])
				}
				path.Segments = append(path.Segments, seg)
				d = d[2+4*cnt:]
			}
			a.Path = path
			sawPath = true
		case attrNextHop:
			if alen != 4 {
				return nil, 0, ErrMalformed
			}
			nextHop = netpkt.IP(binary.BigEndian.Uint32(data))
			sawNextHop = true
		case attrMED:
			if alen != 4 {
				return nil, 0, ErrMalformed
			}
			a.MED, a.HasMED = binary.BigEndian.Uint32(data), true
		case attrLocalPref:
			if alen != 4 {
				return nil, 0, ErrMalformed
			}
			a.LocalPref, a.HasLP = binary.BigEndian.Uint32(data), true
		case attrAtomicAgg:
			a.Atomic = true
		case attrAggregator:
			if alen != 8 {
				return nil, 0, ErrMalformed
			}
			a.AggAS = binary.BigEndian.Uint32(data[0:4])
			a.AggID = netpkt.IP(binary.BigEndian.Uint32(data[4:8]))
		default:
			// Unknown optional attributes are ignored; unknown well-known
			// attributes are an error per RFC 4271.
			if flags&flagOptional == 0 {
				return nil, 0, ErrMalformed
			}
		}
	}
	if !sawOrigin || !sawPath || !sawNextHop {
		return nil, 0, ErrMalformed
	}
	return a, nextHop, nil
}

// Decoded is the result of decoding one message.
type Decoded struct {
	Type   uint8
	Open   *Open
	Update *Update
	Notif  *Notification
}

// Decode parses a single complete BGP message.
func Decode(b []byte) (*Decoded, error) {
	if len(b) < headerLen {
		return nil, ErrBadLength
	}
	for i := 0; i < markerLen; i++ {
		if b[i] != 0xff {
			return nil, ErrBadMarker
		}
	}
	l := int(binary.BigEndian.Uint16(b[16:18]))
	if l < headerLen || l > maxMessageLen || l != len(b) {
		return nil, ErrBadLength
	}
	typ := b[18]
	body := b[headerLen:]
	switch typ {
	case MsgOpen:
		if len(body) < 10 {
			return nil, ErrBadLength
		}
		if body[0] != Version {
			return nil, ErrBadVersion
		}
		o := &Open{
			AS:       uint32(binary.BigEndian.Uint16(body[1:3])),
			HoldTime: binary.BigEndian.Uint16(body[3:5]),
			BGPID:    netpkt.IP(binary.BigEndian.Uint32(body[5:9])),
		}
		optLen := int(body[9])
		if len(body) < 10+optLen {
			return nil, ErrBadLength
		}
		opts := body[10 : 10+optLen]
		for len(opts) >= 2 {
			ptype, plen := opts[0], int(opts[1])
			if len(opts) < 2+plen {
				return nil, ErrMalformed
			}
			if ptype == 2 { // capabilities
				caps := opts[2 : 2+plen]
				for len(caps) >= 2 {
					code, clen := caps[0], int(caps[1])
					if len(caps) < 2+clen {
						return nil, ErrMalformed
					}
					if code == capFourOctetAS && clen == 4 {
						o.AS = binary.BigEndian.Uint32(caps[2:6])
					}
					if code == capConnGen && clen == 4 {
						o.Gen = binary.BigEndian.Uint32(caps[2:6])
					}
					caps = caps[2+clen:]
				}
			}
			opts = opts[2+plen:]
		}
		return &Decoded{Type: MsgOpen, Open: o}, nil
	case MsgUpdate:
		if len(body) < 4 {
			return nil, ErrBadLength
		}
		wl := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < 2+wl+2 {
			return nil, ErrMalformed
		}
		withdrawn, err := parsePrefixes(body[2 : 2+wl])
		if err != nil {
			return nil, err
		}
		al := int(binary.BigEndian.Uint16(body[2+wl : 4+wl]))
		if len(body) < 4+wl+al {
			return nil, ErrMalformed
		}
		u := &Update{Withdrawn: withdrawn}
		attrBytes := body[4+wl : 4+wl+al]
		nlriBytes := body[4+wl+al:]
		if len(nlriBytes) > 0 && al == 0 {
			return nil, ErrMalformed
		}
		if al > 0 {
			u.Attrs, u.NextHop, err = parseAttrs(attrBytes)
			if err != nil {
				return nil, err
			}
			// The dominant allocation at scale: every neighbor of every
			// device re-parses the same attribute bytes. Collapse to the
			// process-wide canonical object.
			u.Attrs = Intern(u.Attrs)
		}
		u.NLRI, err = parsePrefixes(nlriBytes)
		if err != nil {
			return nil, err
		}
		return &Decoded{Type: MsgUpdate, Update: u}, nil
	case MsgKeepalive:
		if l != headerLen {
			return nil, ErrBadLength
		}
		return &Decoded{Type: MsgKeepalive}, nil
	case MsgNotification:
		if len(body) < 2 {
			return nil, ErrBadLength
		}
		return &Decoded{Type: MsgNotification, Notif: &Notification{
			Code: body[0], Subcode: body[1], Data: body[2:],
		}}, nil
	default:
		return nil, ErrBadType
	}
}

// MaxNLRIPerUpdate bounds how many prefixes fit into one UPDATE given the
// 4096-byte message cap; routers split larger batches. A nil attrs computes
// the bound for withdrawal-only messages.
func MaxNLRIPerUpdate(attrs *Attrs) int {
	overhead := headerLen + 4
	if attrs != nil {
		overhead += len(marshalAttrs(attrs, 0))
	}
	per := 5 // worst case /32: 1 length byte + 4 octets
	return (maxMessageLen - overhead) / per
}

// String summarizes a decoded message for logs.
func (d *Decoded) String() string {
	switch d.Type {
	case MsgOpen:
		return fmt.Sprintf("OPEN as=%d id=%s hold=%d", d.Open.AS, d.Open.BGPID, d.Open.HoldTime)
	case MsgUpdate:
		return fmt.Sprintf("UPDATE nlri=%d withdrawn=%d", len(d.Update.NLRI), len(d.Update.Withdrawn))
	case MsgKeepalive:
		return "KEEPALIVE"
	case MsgNotification:
		return fmt.Sprintf("NOTIFICATION code=%d/%d", d.Notif.Code, d.Notif.Subcode)
	}
	return "UNKNOWN"
}
