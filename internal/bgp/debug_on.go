//go:build crystaldebug

package bgp

import "fmt"

// debugAttrs enables the sealed-Attrs mutation assertions (-tags
// crystaldebug).
const debugAttrs = true

// assertSealed panics if a sealed/interned Attrs was mutated after its
// fingerprint memo was filled. The Attrs doc comment promises the memo is
// "filled at most once" and that copy-and-mutate code resets it; this is
// the enforcement for that contract. A mutation of AggID alone is not
// detectable this way (the fingerprint deliberately omits it for wire
// grouping), which is why the intern key carries AggID separately.
func assertSealed(a *Attrs) {
	if a.ekey != "" && a.ekey != computeAttrsKey(a) {
		panic(fmt.Sprintf("bgp: sealed Attrs mutated after fingerprint fill: %s", a))
	}
}
