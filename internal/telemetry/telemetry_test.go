package telemetry

import (
	"testing"
	"time"

	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/sim"
	"crystalnet/internal/topo"
)

// line builds a 3-device chain a-b-c with a server prefix on c.
func line(t *testing.T) (*sim.Engine, map[string]*firmware.Device) {
	n := topo.NewNetwork("line")
	a := n.AddDevice("a", topo.LayerToR, 65001, "test")
	b := n.AddDevice("b", topo.LayerLeaf, 65002, "test")
	c := n.AddDevice("c", topo.LayerToR, 65003, "test")
	c.Originated = append(c.Originated, netpkt.MustParsePrefix("100.64.0.0/24"))
	n.Connect(a, b)
	n.Connect(b, c)

	eng := sim.NewEngine(1)
	fabric := phynet.NewFabric(eng, phynet.LinuxBridge)
	host := fabric.AddHost("vm-0")
	devs := map[string]*firmware.Device{}
	containers := map[string]*phynet.Container{}
	for _, d := range n.Devices() {
		ct := host.AddContainer(d.Name)
		containers[d.Name] = ct
		for _, intf := range d.Interfaces {
			ct.AddIface(intf.Name, intf.MAC)
		}
	}
	for _, l := range n.Links {
		fabric.Connect(containers[l.A.Device.Name].Iface(l.A.Name), containers[l.B.Device.Name].Iface(l.B.Name))
	}
	img := firmware.VendorImage{Name: "test", Version: "1", BootFixed: time.Second, BootJitter: time.Second}
	for _, d := range n.Devices() {
		dev := firmware.New(d.Name, img, config.GenerateDevice(d), eng, fabric, containers[d.Name])
		devs[d.Name] = dev
		dev.Boot(nil)
	}
	if _, err := eng.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	return eng, devs
}

func devList(m map[string]*firmware.Device) []*firmware.Device {
	var out []*firmware.Device
	for _, d := range m {
		out = append(out, d)
	}
	return out
}

func TestInjectAndCollect(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("100.64.0.9"),
		Proto: netpkt.ProtoUDP, SrcPort: 1000, DstPort: 80, TTL: 32,
	}
	flow := inj.Inject(devs["a"], meta, 3, 10*time.Millisecond)
	if flow == 0 {
		t.Fatal("flow id 0")
	}
	eng.Run(5_000_000)
	recs := Collect(devList(devs))
	// 3 probes x 3 devices = 9 records.
	if len(recs) != 9 {
		t.Fatalf("records = %d, want 9", len(recs))
	}
	// Sorted by (flow, seq, time).
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq < recs[i-1].Seq {
			t.Fatal("records not sorted by seq")
		}
	}
}

func TestComputePaths(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("100.64.0.9"),
		Proto: netpkt.ProtoUDP, SrcPort: 1000, DstPort: 80, TTL: 32,
	}
	inj.Inject(devs["a"], meta, 2, time.Millisecond)
	eng.Run(5_000_000)
	paths := ComputePaths(Collect(devList(devs)))
	if len(paths) != 2 {
		t.Fatalf("paths = %d, want 2", len(paths))
	}
	for _, p := range paths {
		if len(p.Hops) != 3 {
			t.Fatalf("hops = %d, want a->b->c", len(p.Hops))
		}
		if p.Hops[0].Device != "a" || p.Hops[1].Device != "b" || p.Hops[2].Device != "c" {
			t.Fatalf("path = %s", p)
		}
		if !p.Delivered {
			t.Fatalf("probe not delivered: %s", p)
		}
		if p.String() == "" {
			t.Fatal("empty path string")
		}
	}
}

func TestPathOfDroppedProbe(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	// Destination with no route anywhere.
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("203.0.113.1"),
		Proto: netpkt.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 32,
	}
	inj.Inject(devs["a"], meta, 1, time.Millisecond)
	eng.Run(5_000_000)
	paths := ComputePaths(Collect(devList(devs)))
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
	p := paths[0]
	if p.Delivered || p.FinalVerdict != dataplane.VerdictNoRoute {
		t.Fatalf("expected undelivered no-route, got %s", p)
	}
	if len(p.Hops) != 1 || p.Hops[0].Device != "a" {
		t.Fatalf("drop should happen at a: %s", p)
	}
}

func TestTTLExpiryMidPath(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("100.64.0.9"),
		Proto: netpkt.ProtoUDP, SrcPort: 1, DstPort: 2, TTL: 2,
	}
	inj.Inject(devs["a"], meta, 1, time.Millisecond)
	eng.Run(5_000_000)
	paths := ComputePaths(Collect(devList(devs)))
	p := paths[0]
	if p.FinalVerdict != dataplane.VerdictTTLExpired {
		t.Fatalf("verdict = %v, want ttl-expired (TTL 2 dies at b)", p.FinalVerdict)
	}
	if p.Hops[len(p.Hops)-1].Device != "b" {
		t.Fatalf("expiry at %s, want b", p.Hops[len(p.Hops)-1].Device)
	}
}

func TestCountersAndLoadShare(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("100.64.0.9"),
		Proto: netpkt.ProtoUDP, SrcPort: 1000, DstPort: 80, TTL: 32,
	}
	flow := inj.Inject(devs["a"], meta, 4, time.Millisecond)
	eng.Run(5_000_000)
	recs := Collect(devList(devs))
	counts := Counters(recs, flow)
	if counts["a"] != 4 || counts["b"] != 4 || counts["c"] != 4 {
		t.Fatalf("counters = %v", counts)
	}
	if n := Counters(recs, 999); len(n) != 0 {
		t.Fatal("unknown flow should count nothing")
	}
	// All probes traverse b, none traverse a hypothetical "x".
	share := LoadShare(recs, []string{"b", "x"})
	if share["b"] != 1.0 || share["x"] != 0.0 {
		t.Fatalf("share = %v", share)
	}
}

func TestDistinctFlowIDs(t *testing.T) {
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{Src: 1, Dst: 2, Proto: netpkt.ProtoUDP, TTL: 4}
	f1 := inj.Inject(devs["a"], meta, 1, time.Millisecond)
	f2 := inj.Inject(devs["a"], meta, 1, time.Millisecond)
	if f1 == f2 {
		t.Fatal("flow IDs must be distinct")
	}
	eng.Run(5_000_000)
}
