// Package telemetry implements CrystalNet's packet-level telemetry (§3.3):
// operators specify probe packets, the emulator injects them with a
// pre-defined signature, every emulated device captures signature-matched
// packets, and PullPackets-style collection reconstructs per-packet paths
// and per-device counters for analysis.
//
// DESIGN.md §7 (Monitor plane) situates packet telemetry beside the trace
// recorder; docs/OBSERVABILITY.md covers both.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/sim"
)

// Injector allocates flow IDs and schedules probe injections.
type Injector struct {
	eng      *sim.Engine
	nextFlow uint64
}

// NewInjector binds an injector to the simulation engine.
func NewInjector(eng *sim.Engine) *Injector {
	return &Injector{eng: eng, nextFlow: 1}
}

// Inject schedules count probes with the given header from the device, one
// every interval (the InjectPackets API: "specified header from a specified
// device & port, at given frequency in given amount of time"). It returns
// the flow ID identifying the probes in captures.
func (i *Injector) Inject(dev *firmware.Device, meta dataplane.PacketMeta, count int, interval time.Duration) uint64 {
	flow := i.nextFlow
	i.nextFlow++
	for k := 0; k < count; k++ {
		seq := uint32(k + 1)
		i.eng.After(time.Duration(k)*interval, func() {
			dev.InjectPacket(meta, flow, seq)
		})
	}
	return flow
}

// Collect drains capture buffers from all devices and returns the merged
// records ordered by (flow, seq, time).
func Collect(devs []*firmware.Device) []firmware.CaptureRecord {
	var out []firmware.CaptureRecord
	for _, d := range devs {
		out = append(out, d.PullPackets()...)
	}
	sortRecords(out)
	return out
}

func sortRecords(rs []firmware.CaptureRecord) {
	sort.Slice(rs, func(a, b int) bool {
		x, y := rs[a], rs[b]
		if x.FlowID != y.FlowID {
			return x.FlowID < y.FlowID
		}
		if x.Seq != y.Seq {
			return x.Seq < y.Seq
		}
		if x.Time != y.Time {
			return x.Time < y.Time
		}
		return x.Device < y.Device
	})
}

// Path is the reconstructed trajectory of one probe.
type Path struct {
	Flow uint64
	Seq  uint32
	Hops []firmware.CaptureRecord
	// Delivered reports whether the probe reached a rack (egress to the
	// server attachment) or terminated locally at a device.
	Delivered bool
	// FinalVerdict is the last hop's forwarding verdict.
	FinalVerdict dataplane.Verdict
}

// String renders "dev1 -> dev2 -> dev3 [verdict]".
func (p Path) String() string {
	var b strings.Builder
	for i, h := range p.Hops {
		if i > 0 {
			b.WriteString(" -> ")
		}
		b.WriteString(h.Device)
	}
	fmt.Fprintf(&b, " [%s]", p.FinalVerdict)
	return b.String()
}

// ComputePaths groups sorted records into per-probe paths (the optional
// "compute packet paths" of PullPackets).
func ComputePaths(records []firmware.CaptureRecord) []Path {
	sorted := append([]firmware.CaptureRecord(nil), records...)
	sortRecords(sorted)
	var out []Path
	var cur *Path
	for _, r := range sorted {
		if cur == nil || cur.Flow != r.FlowID || cur.Seq != r.Seq {
			if cur != nil {
				out = append(out, *cur)
			}
			cur = &Path{Flow: r.FlowID, Seq: r.Seq}
		}
		cur.Hops = append(cur.Hops, r)
	}
	if cur != nil {
		out = append(out, *cur)
	}
	for i := range out {
		last := out[i].Hops[len(out[i].Hops)-1]
		out[i].FinalVerdict = last.Verdict
		out[i].Delivered = last.Verdict == dataplane.VerdictLocal ||
			(last.Verdict == dataplane.VerdictForward && last.Egress == firmware.ServerIface)
	}
	return out
}

// Counters aggregates per-device probe counts for a flow (0 = all flows) —
// the "counters" side of PullPackets.
func Counters(records []firmware.CaptureRecord, flow uint64) map[string]int {
	out := map[string]int{}
	for _, r := range records {
		if flow != 0 && r.FlowID != flow {
			continue
		}
		out[r.Device]++
	}
	return out
}

// LoadShare computes, for the probes of a flow set that traversed any of
// the given devices, the fraction seen by each — how the Figure 1
// experiment measures traffic imbalance between R6 and R7.
func LoadShare(records []firmware.CaptureRecord, devices []string) map[string]float64 {
	counts := map[string]int{}
	total := 0
	want := map[string]bool{}
	for _, d := range devices {
		want[d] = true
	}
	seen := map[[2]uint64]bool{} // (flow, seq) counted once per device set
	for _, r := range records {
		if !want[r.Device] {
			continue
		}
		key := [2]uint64{r.FlowID, uint64(r.Seq)}
		if seen[key] {
			continue
		}
		seen[key] = true
		counts[r.Device]++
		total++
	}
	out := map[string]float64{}
	for _, d := range devices {
		if total > 0 {
			out[d] = float64(counts[d]) / float64(total)
		} else {
			out[d] = 0
		}
	}
	return out
}

// Fork returns an injector on eng that continues the flow-ID sequence, so
// probes injected after a fork receive the same IDs a fresh run with the
// same history would assign.
func (i *Injector) Fork(eng *sim.Engine) *Injector {
	return &Injector{eng: eng, nextFlow: i.nextFlow}
}
