package telemetry

import (
	"testing"
	"time"

	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/sim"
)

func TestPullPacketsDrains(t *testing.T) {
	// PullPackets is a drain: collection hands each capture record to the
	// monitor exactly once, so a second sweep reconstructs nothing.
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{
		Src: devs["a"].Config().Loopback.Addr, Dst: netpkt.MustParseIP("100.64.0.9"),
		Proto: netpkt.ProtoUDP, SrcPort: 1000, DstPort: 80, TTL: 32,
	}
	inj.Inject(devs["a"], meta, 2, time.Millisecond)
	eng.Run(5_000_000)
	first := Collect(devList(devs))
	if len(first) == 0 {
		t.Fatal("no records collected")
	}
	if again := Collect(devList(devs)); len(again) != 0 {
		t.Fatalf("second collect returned %d records, want 0 (buffers drained)", len(again))
	}
	// The drained records still reconstruct full paths offline.
	paths := ComputePaths(first)
	if len(paths) != 2 || !paths[0].Delivered {
		t.Fatalf("reconstruction from drained records broken: %v", paths)
	}
}

func TestSortRecordsTieBreaks(t *testing.T) {
	recs := []firmware.CaptureRecord{
		{FlowID: 1, Seq: 1, Time: 20, Device: "b"},
		{FlowID: 1, Seq: 1, Time: 10, Device: "z"},
		{FlowID: 1, Seq: 1, Time: 20, Device: "a"},
		{FlowID: 2, Seq: 1, Time: 1, Device: "a"},
	}
	sortRecords(recs)
	want := []struct {
		tm  sim.Time
		dev string
	}{{10, "z"}, {20, "a"}, {20, "b"}, {1, "a"}}
	for i, w := range want {
		if recs[i].Time != w.tm || recs[i].Device != w.dev {
			t.Fatalf("record %d = (%v,%s), want (%v,%s)", i, recs[i].Time, recs[i].Device, w.tm, w.dev)
		}
	}
}

func TestLoadShareNoTraffic(t *testing.T) {
	share := LoadShare(nil, []string{"r6", "r7"})
	if share["r6"] != 0 || share["r7"] != 0 {
		t.Fatalf("share on empty records = %v, want zeros", share)
	}
}

func TestInjectorFork(t *testing.T) {
	// A forked injector continues the parent's flow-ID sequence so probe
	// captures stay comparable across a checkpoint fork.
	eng, devs := line(t)
	inj := NewInjector(eng)
	meta := dataplane.PacketMeta{Src: 1, Dst: 2, Proto: netpkt.ProtoUDP, TTL: 4}
	f1 := inj.Inject(devs["a"], meta, 1, time.Millisecond)
	eng.Run(5_000_000)

	forkEng := sim.NewEngine(1)
	fork := inj.Fork(forkEng)
	f2 := fork.Inject(devs["a"], meta, 1, time.Millisecond)
	if f2 != f1+1 {
		t.Fatalf("forked injector assigned flow %d, want %d", f2, f1+1)
	}
	// And the parent's own next draw is not disturbed by the fork.
	if f3 := inj.Inject(devs["a"], meta, 1, time.Millisecond); f3 != f1+1 {
		t.Fatalf("parent flow after fork = %d, want %d", f3, f1+1)
	}
	eng.Run(5_000_000)
	forkEng.Run(5_000_000)
}
