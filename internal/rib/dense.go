package rib

import (
	"math/bits"
	"sync/atomic"
	"unsafe"
)

// Process-wide accounting for every Dense table in the emulator. At M-DC
// scale the per-device Adj-RIB maps dominate the heap, so the scale work
// (DESIGN.md §10) replaces them with Dense tables and meters their footprint
// here: one atomic add per grow/compact, no per-operation cost.
//
// The counters meter allocations and explicit compactions; a Dense that is
// dropped wholesale (e.g. a discarded fork) is reclaimed by the GC without
// being subtracted, so the budget is advisory high-water pressure, not an
// exact live-heap figure. That is the right trade for its only consumer:
// deciding, post-convergence, whether to compact the current emulation.
var (
	denseBytes  atomic.Int64
	denseSlots  atomic.Int64
	denseLive   atomic.Int64
	compactions atomic.Uint64
	budgetBytes atomic.Int64
)

// MemStats is a snapshot of the process-wide Dense accounting.
type MemStats struct {
	// DenseBytes is the total backing-array bytes currently allocated by
	// all Dense tables (values plus presence bitsets).
	DenseBytes int64
	// DenseSlots is the total slot capacity across all Dense tables.
	DenseSlots int64
	// DenseLive is the number of present entries across all Dense tables.
	DenseLive int64
	// Compactions counts Compact calls that actually shrank a table.
	Compactions uint64
	// BudgetBytes is the configured budget; 0 means unlimited.
	BudgetBytes int64
}

// Stats returns the current process-wide Dense accounting.
func Stats() MemStats {
	return MemStats{
		DenseBytes:  denseBytes.Load(),
		DenseSlots:  denseSlots.Load(),
		DenseLive:   denseLive.Load(),
		Compactions: compactions.Load(),
		BudgetBytes: budgetBytes.Load(),
	}
}

// SetBudget sets the process-wide Dense byte budget. 0 disables the budget.
func SetBudget(b int64) { budgetBytes.Store(b) }

// OverBudget reports whether Dense allocations exceed the configured budget.
func OverBudget() bool {
	b := budgetBytes.Load()
	return b > 0 && denseBytes.Load() > b
}

// Dense is a presence-tracked slice keyed by small stable integer ids — the
// Adj-RIB replacement for per-route hash maps. BGP routers allocate one
// dense id per Loc-RIB prefix and never reuse it, so a grow-by-doubling
// value slice plus a bitset gives O(1) get/set/delete with none of a map's
// per-bucket overhead, and iteration in ascending id order is deterministic
// by construction.
//
// The zero value is an empty table ready for use. Dense is not safe for
// concurrent mutation; in the sharded convergence engine each table is owned
// by exactly one device, which is owned by exactly one shard.
type Dense[T any] struct {
	vals    []T
	present []uint64
	live    int
}

func elemBytes[T any](n int) int64 {
	var z T
	return int64(n) * int64(unsafe.Sizeof(z))
}

func (d *Dense[T]) grow(id int) {
	need := id + 1
	newCap := len(d.vals)
	if newCap == 0 {
		newCap = 8
	}
	for newCap < need {
		newCap *= 2
	}
	nv := make([]T, newCap)
	copy(nv, d.vals)
	nb := make([]uint64, (newCap+63)/64)
	copy(nb, d.present)
	denseBytes.Add(elemBytes[T](newCap-len(d.vals)) + int64(len(nb)-len(d.present))*8)
	denseSlots.Add(int64(newCap - len(d.vals)))
	d.vals, d.present = nv, nb
}

// Set stores v under id, growing the table as needed. ids must be small and
// dense (they size the backing array).
func (d *Dense[T]) Set(id int, v T) {
	if id >= len(d.vals) {
		d.grow(id)
	}
	w, b := id/64, uint64(1)<<(id%64)
	if d.present[w]&b == 0 {
		d.present[w] |= b
		d.live++
		denseLive.Add(1)
	}
	d.vals[id] = v
}

// Get returns the value under id and whether it is present.
func (d *Dense[T]) Get(id int) (T, bool) {
	var zero T
	if id < 0 || id >= len(d.vals) || d.present[id/64]&(1<<(id%64)) == 0 {
		return zero, false
	}
	return d.vals[id], true
}

// Delete removes id, reporting whether it was present. The slot is zeroed so
// pointer values do not pin garbage.
func (d *Dense[T]) Delete(id int) bool {
	if id < 0 || id >= len(d.vals) {
		return false
	}
	w, b := id/64, uint64(1)<<(id%64)
	if d.present[w]&b == 0 {
		return false
	}
	d.present[w] &^= b
	var zero T
	d.vals[id] = zero
	d.live--
	denseLive.Add(-1)
	return true
}

// Len returns the number of present entries.
func (d *Dense[T]) Len() int { return d.live }

// Range visits present entries in ascending id order — the deterministic
// iteration order every consumer relies on. Returning false stops the walk.
func (d *Dense[T]) Range(fn func(id int, v T) bool) {
	for w, bm := range d.present {
		for bm != 0 {
			i := w*64 + bits.TrailingZeros64(bm)
			bm &= bm - 1
			if !fn(i, d.vals[i]) {
				return
			}
		}
	}
}

// Clear removes every entry, keeping the capacity for reuse (a BGP session
// reset repopulates the same prefixes moments later).
func (d *Dense[T]) Clear() {
	if d.live == 0 {
		return
	}
	var zero T
	for w, bm := range d.present {
		for bm != 0 {
			i := w*64 + bits.TrailingZeros64(bm)
			bm &= bm - 1
			d.vals[i] = zero
		}
		d.present[w] = 0
	}
	denseLive.Add(-int64(d.live))
	d.live = 0
}

// Clone returns a deep copy of the table (values are copied shallowly — for
// the Adj-RIB use the values are immutable interned pointers).
func (d *Dense[T]) Clone() *Dense[T] {
	c := &Dense[T]{
		vals:    append([]T(nil), d.vals...),
		present: append([]uint64(nil), d.present...),
		live:    d.live,
	}
	denseBytes.Add(elemBytes[T](len(c.vals)) + int64(len(c.present))*8)
	denseSlots.Add(int64(len(c.vals)))
	denseLive.Add(int64(c.live))
	return c
}

// Compact shrinks the backing array to the highest present id, returning
// slack from grow-by-doubling (and from churn that deleted the tail). Called
// post-convergence when the process is over budget.
func (d *Dense[T]) Compact() {
	hi := -1
	for w := len(d.present) - 1; w >= 0; w-- {
		if d.present[w] != 0 {
			hi = w*64 + 63 - bits.LeadingZeros64(d.present[w])
			break
		}
	}
	need := hi + 1
	if need >= len(d.vals) {
		return
	}
	nv := make([]T, need)
	copy(nv, d.vals[:need])
	nb := make([]uint64, (need+63)/64)
	copy(nb, d.present[:len(nb)])
	denseBytes.Add(-(elemBytes[T](len(d.vals)-need) + int64(len(d.present)-len(nb))*8))
	denseSlots.Add(int64(need - len(d.vals)))
	d.vals, d.present = nv, nb
	compactions.Add(1)
}
