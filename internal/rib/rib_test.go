package rib

import (
	"strings"
	"testing"
	"testing/quick"

	"crystalnet/internal/netpkt"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }

func entry(p string, proto Proto, hops ...string) *Entry {
	e := &Entry{Prefix: pfx(p), Proto: proto}
	for _, h := range hops {
		e.NextHops = append(e.NextHops, NextHop{IP: netpkt.MustParseIP(h), Interface: "et0"})
	}
	return e
}

func TestInstallLookup(t *testing.T) {
	f := NewFIB()
	if err := f.Install(entry("10.0.0.0/8", ProtoBGP, "1.1.1.1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Install(entry("10.1.0.0/16", ProtoBGP, "2.2.2.2")); err != nil {
		t.Fatal(err)
	}
	e, ok := f.Lookup(netpkt.MustParseIP("10.1.2.3"))
	if !ok || e.Prefix != pfx("10.1.0.0/16") {
		t.Fatalf("Lookup = %v, %v", e, ok)
	}
	e, ok = f.Lookup(netpkt.MustParseIP("10.2.0.1"))
	if !ok || e.Prefix != pfx("10.0.0.0/8") {
		t.Fatalf("Lookup fallback = %v, %v", e, ok)
	}
	if f.Len() != 2 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestInstallCanonicalizesNextHops(t *testing.T) {
	f := NewFIB()
	e := entry("10.0.0.0/8", ProtoBGP, "9.9.9.9", "1.1.1.1", "5.5.5.5")
	f.Install(e)
	got, _ := f.Get(pfx("10.0.0.0/8"))
	if got.NextHops[0].IP != netpkt.MustParseIP("1.1.1.1") ||
		got.NextHops[2].IP != netpkt.MustParseIP("9.9.9.9") {
		t.Fatalf("next hops not sorted: %v", got.NextHops)
	}
}

func TestTrieBuiltLazily(t *testing.T) {
	f := NewFIB()
	f.Install(entry("10.0.0.0/8", ProtoBGP, "1.1.1.1"))
	f.Install(entry("10.1.0.0/16", ProtoBGP, "2.2.2.2"))
	if f.t != nil {
		t.Fatal("trie built before any LPM query")
	}
	e, ok := f.Lookup(netpkt.MustParseIP("10.1.2.3"))
	if !ok || e.Prefix != pfx("10.1.0.0/16") {
		t.Fatalf("lazy trie returned %v, want 10.1.0.0/16", e)
	}
	if f.t == nil {
		t.Fatal("first Lookup must latch the trie")
	}
	// Installs after the build must keep the trie current.
	f.Install(entry("10.1.2.0/24", ProtoBGP, "3.3.3.3"))
	if e, ok := f.Lookup(netpkt.MustParseIP("10.1.2.3")); !ok || e.Prefix != pfx("10.1.2.0/24") {
		t.Fatalf("post-build install not visible to LPM: %v", e)
	}
}

func TestHopGroupSharingAndAblationLayout(t *testing.T) {
	f := NewFIB()
	f.InstallHops(pfx("10.0.0.0/8"), ProtoBGP, entry("0.0.0.0/0", ProtoBGP, "1.1.1.1", "2.2.2.2").NextHops)
	f.InstallHops(pfx("20.0.0.0/8"), ProtoBGP, entry("0.0.0.0/0", ProtoBGP, "1.1.1.1", "2.2.2.2").NextHops)
	a, _ := f.Get(pfx("10.0.0.0/8"))
	b, _ := f.Get(pfx("20.0.0.0/8"))
	if &a.NextHops[0] != &b.NextHops[0] {
		t.Fatal("equal hop groups must alias one canonical slice")
	}

	// The §10 ablation layout: private hop copies and an eager trie, as the
	// pre-interning FIB stored them.
	SetHopSharing(false)
	defer SetHopSharing(true)
	g := NewFIB()
	if g.t == nil {
		t.Fatal("ablation FIB must build its trie eagerly")
	}
	g.InstallHops(pfx("10.0.0.0/8"), ProtoBGP, entry("0.0.0.0/0", ProtoBGP, "1.1.1.1", "2.2.2.2").NextHops)
	g.InstallHops(pfx("20.0.0.0/8"), ProtoBGP, entry("0.0.0.0/0", ProtoBGP, "1.1.1.1", "2.2.2.2").NextHops)
	ga, _ := g.Get(pfx("10.0.0.0/8"))
	gb, _ := g.Get(pfx("20.0.0.0/8"))
	if &ga.NextHops[0] == &gb.NextHops[0] {
		t.Fatal("ablation layout must keep a private hop copy per entry")
	}
	if g.t.Len() != 2 {
		t.Fatalf("ablation trie holds %d entries, want 2", g.t.Len())
	}
	if e, ok := g.Lookup(netpkt.MustParseIP("20.1.2.3")); !ok || e.Prefix != pfx("20.0.0.0/8") {
		t.Fatalf("ablation LPM returned %v", e)
	}
}

func TestCapacity(t *testing.T) {
	f := NewFIB()
	f.Capacity = 2
	if err := f.Install(entry("10.0.0.0/24", ProtoBGP, "1.1.1.1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Install(entry("10.0.1.0/24", ProtoBGP, "1.1.1.1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Install(entry("10.0.2.0/24", ProtoBGP, "1.1.1.1")); err != ErrFull {
		t.Fatalf("overflow error = %v, want ErrFull", err)
	}
	// Replacement of an existing prefix is allowed at capacity.
	if err := f.Install(entry("10.0.1.0/24", ProtoBGP, "2.2.2.2")); err != nil {
		t.Fatalf("replace at capacity failed: %v", err)
	}
	// Removing frees a slot.
	f.Remove(pfx("10.0.0.0/24"))
	if err := f.Install(entry("10.0.2.0/24", ProtoBGP, "1.1.1.1")); err != nil {
		t.Fatalf("install after remove failed: %v", err)
	}
}

func TestRemove(t *testing.T) {
	f := NewFIB()
	f.Install(entry("10.0.0.0/8", ProtoStatic, "1.1.1.1"))
	if !f.Remove(pfx("10.0.0.0/8")) {
		t.Fatal("Remove existing = false")
	}
	if f.Remove(pfx("10.0.0.0/8")) {
		t.Fatal("Remove absent = true")
	}
	if _, ok := f.Lookup(netpkt.MustParseIP("10.0.0.1")); ok {
		t.Fatal("entry still visible after remove")
	}
}

func TestSnapshotDeepCopy(t *testing.T) {
	f := NewFIB()
	f.Install(entry("10.0.0.0/8", ProtoBGP, "1.1.1.1"))
	snap := f.Snapshot()
	snap[0].NextHops[0].IP = 0
	got, _ := f.Get(pfx("10.0.0.0/8"))
	if got.NextHops[0].IP == 0 {
		t.Fatal("snapshot aliases live FIB")
	}
}

func TestSnapshotStringFormat(t *testing.T) {
	f := NewFIB()
	f.Install(entry("10.0.0.0/8", ProtoBGP, "1.1.1.1", "2.2.2.2"))
	f.Install(&Entry{Prefix: pfx("10.9.0.0/16"), Proto: ProtoConnected, NextHops: []NextHop{{Interface: "et1"}}})
	s := f.Snapshot().String()
	if !strings.Contains(s, "10.0.0.0/8 via 1.1.1.1@et0 2.2.2.2@et0 [bgp]") {
		t.Fatalf("snapshot string missing BGP line:\n%s", s)
	}
	if !strings.Contains(s, "direct@et1 [connected]") {
		t.Fatalf("snapshot string missing connected line:\n%s", s)
	}
}

func TestProtoNamesAndDistance(t *testing.T) {
	if ProtoBGP.String() != "bgp" || ProtoConnected.String() != "connected" {
		t.Fatal("proto names wrong")
	}
	if Proto(77).String() == "" {
		t.Fatal("unknown proto should still format")
	}
	if ProtoConnected.AdminDistance() >= ProtoBGP.AdminDistance() {
		t.Fatal("connected must beat BGP")
	}
	if ProtoBGP.AdminDistance() >= ProtoOSPF.AdminDistance() {
		t.Fatal("eBGP must beat OSPF")
	}
	if Proto(77).AdminDistance() != 255 {
		t.Fatal("unknown proto distance")
	}
}

func TestCompareIdentical(t *testing.T) {
	a := Snapshot{entry("10.0.0.0/8", ProtoBGP, "1.1.1.1", "2.2.2.2")}
	b := Snapshot{entry("10.0.0.0/8", ProtoBGP, "2.2.2.2", "1.1.1.1")}
	for _, e := range a {
		e.canonicalize()
	}
	for _, e := range b {
		e.canonicalize()
	}
	if d := Compare(a, b, Strict); len(d) != 0 {
		t.Fatalf("identical snapshots differ: %v", d)
	}
}

func TestCompareMissing(t *testing.T) {
	a := Snapshot{entry("10.0.0.0/8", ProtoBGP, "1.1.1.1"), entry("10.1.0.0/16", ProtoBGP, "1.1.1.1")}
	b := Snapshot{entry("10.0.0.0/8", ProtoBGP, "1.1.1.1"), entry("10.2.0.0/16", ProtoBGP, "1.1.1.1")}
	d := Compare(a, b, Strict)
	if len(d) != 2 {
		t.Fatalf("diffs = %v, want 2", d)
	}
	var missLeft, missRight bool
	for _, x := range d {
		switch x.Kind {
		case DiffMissingLeft:
			missLeft = x.Prefix == pfx("10.2.0.0/16")
		case DiffMissingRight:
			missRight = x.Prefix == pfx("10.1.0.0/16")
		}
	}
	if !missLeft || !missRight {
		t.Fatalf("wrong diff classification: %v", d)
	}
}

func TestCompareStrictVsECMPAware(t *testing.T) {
	// ECMP non-determinism (§9): both sides picked a different subset of the
	// same candidate set; they share 2.2.2.2.
	a := Snapshot{entry("100.64.0.0/24", ProtoBGP, "1.1.1.1", "2.2.2.2")}
	b := Snapshot{entry("100.64.0.0/24", ProtoBGP, "2.2.2.2", "3.3.3.3")}
	if d := Compare(a, b, Strict); len(d) != 1 || d[0].Kind != DiffNextHops {
		t.Fatalf("strict diff = %v, want one nexthop-mismatch", d)
	}
	if d := Compare(a, b, ECMPAware); len(d) != 0 {
		t.Fatalf("ECMP-aware diff = %v, want none (overlapping sets)", d)
	}
	// Disjoint sets are a real divergence in both modes.
	c := Snapshot{entry("100.64.0.0/24", ProtoBGP, "7.7.7.7")}
	if d := Compare(a, c, ECMPAware); len(d) != 1 {
		t.Fatalf("disjoint ECMP-aware diff = %v, want 1", d)
	}
}

func TestCompareDiffOrderingDeterministic(t *testing.T) {
	a := Snapshot{
		entry("10.2.0.0/16", ProtoBGP, "1.1.1.1"),
		entry("10.0.0.0/16", ProtoBGP, "1.1.1.1"),
		entry("10.1.0.0/16", ProtoBGP, "1.1.1.1"),
	}
	d := Compare(a, Snapshot{}, Strict)
	if len(d) != 3 {
		t.Fatalf("diffs = %d", len(d))
	}
	for i := 1; i < len(d); i++ {
		if d[i-1].Prefix.Addr > d[i].Prefix.Addr {
			t.Fatal("diffs not sorted by prefix")
		}
	}
	if d[0].String() != "missing-right 10.0.0.0/16" {
		t.Fatalf("diff string = %q", d[0].String())
	}
}

func TestEmptyNextHopsECMPAware(t *testing.T) {
	a := Snapshot{{Prefix: pfx("10.0.0.0/8"), Proto: ProtoBGP}}
	b := Snapshot{{Prefix: pfx("10.0.0.0/8"), Proto: ProtoBGP}}
	if d := Compare(a, b, ECMPAware); len(d) != 0 {
		t.Fatalf("two empty next-hop sets should match: %v", d)
	}
}

func TestPropertyCompareReflexive(t *testing.T) {
	f := func(addrs []uint32) bool {
		var s Snapshot
		for i, a := range addrs {
			p := netpkt.Prefix{Addr: netpkt.IP(a), Len: uint8(8 + i%25)}
			p.Addr &= p.MaskIP()
			s = append(s, &Entry{Prefix: p, Proto: ProtoBGP,
				NextHops: []NextHop{{IP: netpkt.IP(a ^ 0xff), Interface: "et0"}}})
		}
		return len(Compare(s, s, Strict)) == 0 && len(Compare(s, s, ECMPAware)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareSymmetricCount(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		mk := func(vals []uint32) Snapshot {
			var s Snapshot
			seen := map[netpkt.Prefix]bool{}
			for _, v := range vals {
				p := netpkt.Prefix{Addr: netpkt.IP(v), Len: 24}
				p.Addr &= p.MaskIP()
				if seen[p] {
					continue
				}
				seen[p] = true
				s = append(s, &Entry{Prefix: p, Proto: ProtoBGP, NextHops: []NextHop{{IP: 1, Interface: "e"}}})
			}
			return s
		}
		a, b := mk(xs), mk(ys)
		return len(Compare(a, b, Strict)) == len(Compare(b, a, Strict))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
