package rib

import "testing"

func TestDenseBasics(t *testing.T) {
	var d Dense[*Entry]
	if d.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	e1, e2 := &Entry{}, &Entry{}
	d.Set(3, e1)
	d.Set(70, e2)
	d.Set(3, e2) // overwrite must not double-count
	if d.Len() != 2 {
		t.Fatalf("len=%d want 2", d.Len())
	}
	if v, ok := d.Get(3); !ok || v != e2 {
		t.Fatal("get(3)")
	}
	if _, ok := d.Get(4); ok {
		t.Fatal("get(4) should be absent")
	}
	if _, ok := d.Get(-1); ok {
		t.Fatal("get(-1) should be absent")
	}
	var ids []int
	d.Range(func(id int, v *Entry) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 70 {
		t.Fatalf("range order %v, want [3 70]", ids)
	}
	if !d.Delete(70) || d.Delete(70) {
		t.Fatal("delete(70)")
	}
	if d.Len() != 1 {
		t.Fatalf("len=%d want 1", d.Len())
	}
}

func TestDenseCloneClearCompact(t *testing.T) {
	var d Dense[int]
	for i := 0; i < 100; i++ {
		d.Set(i, i*i)
	}
	c := d.Clone()
	c.Set(5, -1)
	if v, _ := d.Get(5); v != 25 {
		t.Fatal("clone mutated the original")
	}
	for i := 10; i < 100; i++ {
		d.Delete(i)
	}
	before := Stats()
	d.Compact()
	after := Stats()
	if after.DenseBytes >= before.DenseBytes {
		t.Fatalf("compact did not shrink: %d -> %d", before.DenseBytes, after.DenseBytes)
	}
	if after.Compactions != before.Compactions+1 {
		t.Fatalf("compactions %d -> %d", before.Compactions, after.Compactions)
	}
	if d.Len() != 10 {
		t.Fatalf("len after compact=%d want 10", d.Len())
	}
	for i := 0; i < 10; i++ {
		if v, ok := d.Get(i); !ok || v != i*i {
			t.Fatalf("get(%d) after compact", i)
		}
	}
	d.Set(200, 1) // regrow after compact
	if v, ok := d.Get(200); !ok || v != 1 {
		t.Fatal("set after compact")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("clear")
	}
	c.Range(func(int, int) bool { t.Fatal("range over cleared table"); return false })
}

func TestDenseBudget(t *testing.T) {
	defer SetBudget(0)
	SetBudget(1) // anything allocated is over budget
	var d Dense[uint64]
	d.Set(0, 7)
	if !OverBudget() {
		t.Fatal("expected over budget")
	}
	SetBudget(0)
	if OverBudget() {
		t.Fatal("budget 0 must mean unlimited")
	}
}
