// Package rib provides the forwarding-state data structures shared by every
// device in the emulator: FIB entries with ECMP next-hop groups, longest-
// prefix-match lookup, snapshots for the PullStates API, and the FIB
// comparator from §9 that tolerates ECMP/aggregation non-determinism when
// cross-validating emulated state against production (or between runs).
//
// DESIGN.md §2 (substrates) and §3 (§9 cross-validation row) place these
// structures.
package rib

import (
	"fmt"
	"sort"
	"strings"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/trie"
)

// Proto identifies the protocol that installed a route.
type Proto uint8

// Route sources, in ascending administrative distance.
const (
	ProtoConnected Proto = iota
	ProtoStatic
	ProtoOSPF
	ProtoBGP
	ProtoAggregate
)

var protoNames = [...]string{"connected", "static", "ospf", "bgp", "aggregate"}

// String returns the lower-case protocol name.
func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// AdminDistance returns the conventional administrative distance used when
// multiple protocols offer the same prefix (lower wins).
func (p Proto) AdminDistance() int {
	switch p {
	case ProtoConnected:
		return 0
	case ProtoStatic:
		return 1
	case ProtoOSPF:
		return 110
	case ProtoBGP:
		return 20 // eBGP; the fabric is all-eBGP per RFC 7938
	case ProtoAggregate:
		return 200
	}
	return 255
}

// NextHop is one way out of the device for a destination.
type NextHop struct {
	// IP is the next-hop router address; 0 for directly connected subnets.
	IP netpkt.IP
	// Interface is the egress interface name.
	Interface string
}

// String formats the next hop as "ip@intf" or "direct@intf".
func (nh NextHop) String() string {
	if nh.IP == 0 {
		return "direct@" + nh.Interface
	}
	return nh.IP.String() + "@" + nh.Interface
}

// Entry is one FIB entry. NextHops with more than one element form an ECMP
// group.
type Entry struct {
	Prefix   netpkt.Prefix
	NextHops []NextHop
	Proto    Proto
}

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	c := *e
	c.NextHops = append([]NextHop(nil), e.NextHops...)
	return &c
}

// canonicalize sorts next hops so entry comparison is order-insensitive.
// ECMP groups are tiny (the fabric's multipath width), so a hand-rolled
// insertion sort beats sort.Slice's closure machinery on the install path.
func (e *Entry) canonicalize() {
	nhs := e.NextHops
	for i := 1; i < len(nhs); i++ {
		for j := i; j > 0 && nhLess(nhs[j], nhs[j-1]); j-- {
			nhs[j], nhs[j-1] = nhs[j-1], nhs[j]
		}
	}
}

func nhLess(a, b NextHop) bool {
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.Interface < b.Interface
}

// FIB is a device's forwarding table.
type FIB struct {
	t *trie.Trie[*Entry]
	// byPrefix mirrors the trie's contents for exact-match operations: a
	// map probe is several times cheaper than a trie descent, and during
	// BGP path hunting the same prefix is reprogrammed many times before
	// the table reaches steady state (see InstallHops).
	byPrefix map[netpkt.Prefix]*Entry
	// Capacity limits the number of entries; 0 means unlimited. When full,
	// Install's behaviour depends on the device firmware — the FIB itself
	// just reports ErrFull (the §2 load-balancer incident arises from a
	// firmware that silently ignores this error).
	Capacity int
}

// ErrFull is returned by Install when the FIB is at capacity.
var ErrFull = fmt.Errorf("rib: FIB capacity exceeded")

// NewFIB returns an empty forwarding table with unlimited capacity.
func NewFIB() *FIB {
	return &FIB{t: trie.New[*Entry](), byPrefix: map[netpkt.Prefix]*Entry{}}
}

// Len returns the number of installed prefixes.
func (f *FIB) Len() int { return f.t.Len() }

// Install adds or replaces the entry for e.Prefix. Replacing never fails;
// adding a new prefix to a full table returns ErrFull. The FIB owns e after
// the call.
func (f *FIB) Install(e *Entry) error {
	e.Prefix.Addr &= e.Prefix.MaskIP()
	e.canonicalize()
	if f.Capacity > 0 && f.t.Len() >= f.Capacity {
		if _, exists := f.byPrefix[e.Prefix]; !exists {
			return ErrFull
		}
	}
	f.t.Insert(e.Prefix, e)
	f.byPrefix[e.Prefix] = e
	return nil
}

// InstallHops adds or reprograms the route for p without the caller
// allocating an Entry: when p is already installed the next hops are copied
// into the existing entry in place — no allocation and no trie descent —
// which is the dominant case while BGP hunts paths. nhs is not retained
// or mutated.
func (f *FIB) InstallHops(p netpkt.Prefix, proto Proto, nhs []NextHop) error {
	p.Addr &= p.MaskIP()
	if e, ok := f.byPrefix[p]; ok {
		e.Proto = proto
		e.NextHops = append(e.NextHops[:0], nhs...)
		e.canonicalize()
		return nil
	}
	if f.Capacity > 0 && f.t.Len() >= f.Capacity {
		return ErrFull
	}
	e := &Entry{Prefix: p, Proto: proto, NextHops: append([]NextHop(nil), nhs...)}
	e.canonicalize()
	f.t.Insert(p, e)
	f.byPrefix[p] = e
	return nil
}

// Remove deletes the entry for p, reporting whether it was present.
func (f *FIB) Remove(p netpkt.Prefix) bool {
	p.Addr &= p.MaskIP()
	if !f.t.Delete(p) {
		return false
	}
	delete(f.byPrefix, p)
	return true
}

// Get returns the entry for exactly p.
func (f *FIB) Get(p netpkt.Prefix) (*Entry, bool) {
	p.Addr &= p.MaskIP()
	e, ok := f.byPrefix[p]
	return e, ok
}

// Lookup performs longest-prefix match for ip.
func (f *FIB) Lookup(ip netpkt.IP) (*Entry, bool) {
	_, e, ok := f.t.Lookup(ip)
	return e, ok
}

// Walk visits entries in ascending prefix order.
func (f *FIB) Walk(fn func(*Entry) bool) {
	f.t.Walk(func(_ netpkt.Prefix, e *Entry) bool { return fn(e) })
}

// Snapshot returns a deep copy of all entries, sorted by prefix — the
// payload of the paper's PullStates API.
func (f *FIB) Snapshot() Snapshot {
	out := make(Snapshot, 0, f.t.Len())
	f.Walk(func(e *Entry) bool {
		out = append(out, e.Clone())
		return true
	})
	return out
}

// Snapshot is an ordered dump of a FIB.
type Snapshot []*Entry

// Len returns the number of entries in the snapshot.
func (s Snapshot) Len() int { return len(s) }

// String renders the snapshot one entry per line, for debugging and golden
// comparisons.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, e := range s {
		fmt.Fprintf(&b, "%s via", e.Prefix)
		for _, nh := range e.NextHops {
			fmt.Fprintf(&b, " %s", nh)
		}
		fmt.Fprintf(&b, " [%s]\n", e.Proto)
	}
	return b.String()
}

// DiffKind classifies one FIB difference.
type DiffKind uint8

// Difference kinds reported by Compare.
const (
	DiffMissingLeft  DiffKind = iota // prefix only in the right snapshot
	DiffMissingRight                 // prefix only in the left snapshot
	DiffNextHops                     // prefix in both, next hops disagree
)

func (k DiffKind) String() string {
	switch k {
	case DiffMissingLeft:
		return "missing-left"
	case DiffMissingRight:
		return "missing-right"
	case DiffNextHops:
		return "nexthop-mismatch"
	}
	return "unknown"
}

// Diff is one difference between two snapshots.
type Diff struct {
	Kind   DiffKind
	Prefix netpkt.Prefix
	Left   *Entry // nil for DiffMissingLeft
	Right  *Entry // nil for DiffMissingRight
}

// String formats the difference for reports.
func (d Diff) String() string {
	return fmt.Sprintf("%s %s", d.Kind, d.Prefix)
}

// CompareMode selects how tolerant the comparator is.
type CompareMode uint8

// Comparator modes.
const (
	// Strict requires identical next-hop sets for every prefix.
	Strict CompareMode = iota
	// ECMPAware (the §9 comparator) treats a prefix as matching when the two
	// next-hop sets overlap: BGP implementations choose non-deterministically
	// among equal candidates when ECMP interacts with aggregation, so any
	// common choice indicates the same candidate set. Disjoint sets are
	// still a mismatch.
	ECMPAware
)

// Compare diffs two snapshots. The result is sorted by prefix.
func Compare(left, right Snapshot, mode CompareMode) []Diff {
	li := indexSnapshot(left)
	ri := indexSnapshot(right)
	var out []Diff
	for p, le := range li {
		re, ok := ri[p]
		if !ok {
			out = append(out, Diff{Kind: DiffMissingRight, Prefix: p, Left: le})
			continue
		}
		if !nextHopsMatch(le.NextHops, re.NextHops, mode) {
			out = append(out, Diff{Kind: DiffNextHops, Prefix: p, Left: le, Right: re})
		}
	}
	for p, re := range ri {
		if _, ok := li[p]; !ok {
			out = append(out, Diff{Kind: DiffMissingLeft, Prefix: p, Right: re})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Prefix, out[j].Prefix
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Len != b.Len {
			return a.Len < b.Len
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// DiffAgainst diffs a saved snapshot (sorted, as Snapshot returns it)
// against the FIB's live contents in one ordered merge — no pulled copy of
// the table, no index maps — producing exactly what Compare(base, Snapshot())
// would. Only differing entries are cloned; the common case (no drift)
// allocates nothing. Diff output order matches Compare's sorted order
// because both sides are walked in ascending (address, length) order.
func (f *FIB) DiffAgainst(base Snapshot, mode CompareMode) []Diff {
	var out []Diff
	i := 0
	f.Walk(func(e *Entry) bool {
		for i < len(base) && prefixBefore(base[i].Prefix, e.Prefix) {
			out = append(out, Diff{Kind: DiffMissingRight, Prefix: base[i].Prefix, Left: base[i]})
			i++
		}
		if i < len(base) && base[i].Prefix == e.Prefix {
			if !nextHopsMatch(base[i].NextHops, e.NextHops, mode) {
				out = append(out, Diff{Kind: DiffNextHops, Prefix: e.Prefix, Left: base[i], Right: e.Clone()})
			}
			i++
		} else {
			out = append(out, Diff{Kind: DiffMissingLeft, Prefix: e.Prefix, Right: e.Clone()})
		}
		return true
	})
	for ; i < len(base); i++ {
		out = append(out, Diff{Kind: DiffMissingRight, Prefix: base[i].Prefix, Left: base[i]})
	}
	return out
}

func prefixBefore(a, b netpkt.Prefix) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Len < b.Len
}

func indexSnapshot(s Snapshot) map[netpkt.Prefix]*Entry {
	m := make(map[netpkt.Prefix]*Entry, len(s))
	for _, e := range s {
		m[e.Prefix] = e
	}
	return m
}

func nextHopsMatch(a, b []NextHop, mode CompareMode) bool {
	switch mode {
	case Strict:
		if len(a) != len(b) {
			return false
		}
		as := make(map[NextHop]bool, len(a))
		for _, nh := range a {
			as[nh] = true
		}
		for _, nh := range b {
			if !as[nh] {
				return false
			}
		}
		return true
	case ECMPAware:
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		as := make(map[NextHop]bool, len(a))
		for _, nh := range a {
			as[nh] = true
		}
		for _, nh := range b {
			if as[nh] {
				return true
			}
		}
		return false
	}
	return false
}

// Clone returns a deep copy of the FIB for a forked emulation. Each entry
// is copied exactly once and the copy is shared between the new trie and
// its byPrefix mirror, preserving the aliasing invariant Install maintains
// (InstallHops mutates the entry it finds in byPrefix and relies on the
// trie seeing the change).
func (f *FIB) Clone() *FIB {
	c := &FIB{
		byPrefix: make(map[netpkt.Prefix]*Entry, len(f.byPrefix)),
		Capacity: f.Capacity,
	}
	c.t = f.t.Clone(func(p netpkt.Prefix, e *Entry) *Entry {
		ce := e.Clone()
		c.byPrefix[p] = ce
		return ce
	})
	return c
}
