// Package rib provides the forwarding-state data structures shared by every
// device in the emulator: FIB entries with ECMP next-hop groups, longest-
// prefix-match lookup, snapshots for the PullStates API, and the FIB
// comparator from §9 that tolerates ECMP/aggregation non-determinism when
// cross-validating emulated state against production (or between runs).
//
// DESIGN.md §2 (substrates) and §3 (§9 cross-validation row) place these
// structures.
package rib

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/trie"
)

// Proto identifies the protocol that installed a route.
type Proto uint8

// Route sources, in ascending administrative distance.
const (
	ProtoConnected Proto = iota
	ProtoStatic
	ProtoOSPF
	ProtoBGP
	ProtoAggregate
)

var protoNames = [...]string{"connected", "static", "ospf", "bgp", "aggregate"}

// String returns the lower-case protocol name.
func (p Proto) String() string {
	if int(p) < len(protoNames) {
		return protoNames[p]
	}
	return fmt.Sprintf("proto(%d)", uint8(p))
}

// AdminDistance returns the conventional administrative distance used when
// multiple protocols offer the same prefix (lower wins).
func (p Proto) AdminDistance() int {
	switch p {
	case ProtoConnected:
		return 0
	case ProtoStatic:
		return 1
	case ProtoOSPF:
		return 110
	case ProtoBGP:
		return 20 // eBGP; the fabric is all-eBGP per RFC 7938
	case ProtoAggregate:
		return 200
	}
	return 255
}

// NextHop is one way out of the device for a destination.
type NextHop struct {
	// IP is the next-hop router address; 0 for directly connected subnets.
	IP netpkt.IP
	// Interface is the egress interface name.
	Interface string
}

// String formats the next hop as "ip@intf" or "direct@intf".
func (nh NextHop) String() string {
	if nh.IP == 0 {
		return "direct@" + nh.Interface
	}
	return nh.IP.String() + "@" + nh.Interface
}

// Entry is one FIB entry. NextHops with more than one element form an ECMP
// group. NextHops may alias a canonical hop group shared with other entries
// of the same table (see HopSetTable); treat the slice as immutable.
type Entry struct {
	Prefix   netpkt.Prefix
	NextHops []NextHop
	Proto    Proto
}

// Clone returns a deep copy of the entry.
func (e *Entry) Clone() *Entry {
	c := *e
	c.NextHops = append([]NextHop(nil), e.NextHops...)
	return &c
}

// canonicalize sorts next hops so entry comparison is order-insensitive.
func (e *Entry) canonicalize() { sortHops(e.NextHops) }

// sortHops orders a hop group in place. ECMP groups are tiny (the fabric's
// multipath width), so a hand-rolled insertion sort beats sort.Slice's
// closure machinery on the install path.
func sortHops(nhs []NextHop) {
	for i := 1; i < len(nhs); i++ {
		for j := i; j > 0 && nhLess(nhs[j], nhs[j-1]); j-- {
			nhs[j], nhs[j-1] = nhs[j-1], nhs[j]
		}
	}
}

func nhLess(a, b NextHop) bool {
	if a.IP != b.IP {
		return a.IP < b.IP
	}
	return a.Interface < b.Interface
}

// hopSharingOff disables the §10 FIB memory layout process-wide when set.
// It exists for the §10 memory ablation only: the non-interned baseline
// must reproduce the seed's layout — a private []NextHop per FIB entry,
// and an LPM trie built eagerly at construction and maintained on every
// install (rather than lazily on first query) — so the measured difference
// covers the whole §10 memory model, not just attrs.
var hopSharingOff atomic.Bool

// SetHopSharing toggles the §10 FIB layout (hop-group interning plus the
// lazy LPM trie; on by default). The §10 scale benchmark switches it
// together with bgp.SetInterning; everything else should leave it alone.
// Toggling only affects FIBs constructed and groups stored afterwards.
func SetHopSharing(on bool) { hopSharingOff.Store(!on) }

// HopSetTable interns next-hop groups: a fabric device forwards thousands of
// prefixes over a handful of distinct ECMP groups (the up-fabric multipath
// set, one single-hop group per down-link), so letting every entry alias one
// canonical slice per distinct group removes the dominant per-prefix heap
// cost of large FIBs (DESIGN.md §10). Canonical slices are immutable once
// handed out. The zero value is ready to use.
type HopSetTable struct {
	m map[uint64][][]NextHop
}

// Canonical returns the canonical slice whose contents equal nhs (in order),
// copying nhs into a new canonical group on first sight. nhs is not retained.
// An empty group canonicalizes to nil.
func (t *HopSetTable) Canonical(nhs []NextHop) []NextHop {
	if len(nhs) == 0 {
		return nil
	}
	h := hashHops(nhs)
	for _, s := range t.m[h] {
		if hopSlicesEqual(s, nhs) {
			return s
		}
	}
	c := append(make([]NextHop, 0, len(nhs)), nhs...)
	if t.m == nil {
		t.m = map[uint64][][]NextHop{}
	}
	t.m[h] = append(t.m[h], c)
	return c
}

// HashHops is FNV-1a over a hop group's addresses and interface names —
// the content hash the HopSetTable interns groups by. It is exported for
// the traffic plane's ECMP hash-bucket spreading (internal/dataplane
// SpreadFlows): keying bucket assignment on the group's *values* keeps the
// spread identical whether or not the group is interned (SetHopSharing),
// and makes flows re-spread when a FIB reprogram changes the group.
func HashHops(nhs []NextHop) uint64 { return hashHops(nhs) }

// hashHops is FNV-1a over the group's hop addresses and interface names.
func hashHops(nhs []NextHop) uint64 {
	h := uint64(14695981039346656037)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for _, nh := range nhs {
		ip := uint32(nh.IP)
		mix(byte(ip))
		mix(byte(ip >> 8))
		mix(byte(ip >> 16))
		mix(byte(ip >> 24))
		for i := 0; i < len(nh.Interface); i++ {
			mix(nh.Interface[i])
		}
		mix(0xff) // group-element separator
	}
	return h
}

func hopSlicesEqual(a, b []NextHop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FIB is a device's forwarding table.
type FIB struct {
	// t is the longest-prefix-match trie, built lazily from byPrefix on the
	// first LPM or ordered-walk operation (nil until then). A converging
	// fabric performs millions of installs before the first data-plane
	// query — and a control-plane-only workload like the §10 scale
	// benchmark never queries at all — so the trie nodes are not paid for
	// until something actually routes. Trie results are insertion-order
	// independent (lookups return the longest match, walks visit in prefix
	// order), so deferring the build never changes an answer.
	t *trie.Trie[*Entry]
	// byPrefix is the authoritative table, keyed for exact-match
	// operations: a map probe is several times cheaper than a trie
	// descent, and during BGP path hunting the same prefix is reprogrammed
	// many times before the table reaches steady state (see InstallHops).
	byPrefix map[netpkt.Prefix]*Entry
	// Capacity limits the number of entries; 0 means unlimited. When full,
	// Install's behaviour depends on the device firmware — the FIB itself
	// just reports ErrFull (the §2 load-balancer incident arises from a
	// firmware that silently ignores this error).
	Capacity int
	// hopSets interns the distinct next-hop groups installed in this table
	// so entries alias one canonical slice per group; scratch is the reusable
	// sort buffer InstallHops canonicalizes into.
	hopSets HopSetTable
	scratch []NextHop
}

// ErrFull is returned by Install when the FIB is at capacity.
var ErrFull = fmt.Errorf("rib: FIB capacity exceeded")

// NewFIB returns an empty forwarding table with unlimited capacity.
func NewFIB() *FIB {
	f := &FIB{byPrefix: map[netpkt.Prefix]*Entry{}}
	if hopSharingOff.Load() {
		// §10 ablation: the seed built the trie up front and paid its nodes
		// for every prefix whether or not anything routed; a non-nil t makes
		// every install maintain it, reproducing that bill.
		f.t = trie.New[*Entry]()
	}
	return f
}

// lpm returns the LPM trie, building it from byPrefix on first use.
func (f *FIB) lpm() *trie.Trie[*Entry] {
	if f.t == nil {
		f.t = trie.New[*Entry]()
		for p, e := range f.byPrefix {
			f.t.Insert(p, e)
		}
	}
	return f.t
}

// Len returns the number of installed prefixes.
func (f *FIB) Len() int { return len(f.byPrefix) }

// Install adds or replaces the entry for e.Prefix. Replacing never fails;
// adding a new prefix to a full table returns ErrFull. The FIB owns e after
// the call.
func (f *FIB) Install(e *Entry) error {
	e.Prefix.Addr &= e.Prefix.MaskIP()
	e.canonicalize()
	if f.Capacity > 0 && len(f.byPrefix) >= f.Capacity {
		if _, exists := f.byPrefix[e.Prefix]; !exists {
			return ErrFull
		}
	}
	if f.t != nil {
		f.t.Insert(e.Prefix, e)
	}
	f.byPrefix[e.Prefix] = e
	return nil
}

// InstallHops adds or reprograms the route for p without the caller
// allocating an Entry: the hops are sorted into a reusable scratch buffer
// and the entry points at the table's canonical copy of that group — no
// trie descent on reprogram (the dominant case while BGP hunts paths), and
// no per-prefix hop storage once the group has been seen before. nhs is not
// retained or mutated.
func (f *FIB) InstallHops(p netpkt.Prefix, proto Proto, nhs []NextHop) error {
	p.Addr &= p.MaskIP()
	f.scratch = append(f.scratch[:0], nhs...)
	sortHops(f.scratch)
	if e, ok := f.byPrefix[p]; ok {
		e.Proto = proto
		e.NextHops = f.canonicalHops(f.scratch)
		return nil
	}
	if f.Capacity > 0 && len(f.byPrefix) >= f.Capacity {
		return ErrFull
	}
	e := &Entry{Prefix: p, Proto: proto, NextHops: f.canonicalHops(f.scratch)}
	if f.t != nil {
		f.t.Insert(p, e)
	}
	f.byPrefix[p] = e
	return nil
}

// canonicalHops returns the hop group to store for nhs: the table's shared
// canonical slice when hop-set sharing is on (the default), or a fresh
// per-entry copy when SetHopSharing has switched the process to the
// baseline layout for the §10 memory ablation.
func (f *FIB) canonicalHops(nhs []NextHop) []NextHop {
	if hopSharingOff.Load() {
		if len(nhs) == 0 {
			return nil
		}
		return append(make([]NextHop, 0, len(nhs)), nhs...)
	}
	return f.hopSets.Canonical(nhs)
}

// Remove deletes the entry for p, reporting whether it was present.
func (f *FIB) Remove(p netpkt.Prefix) bool {
	p.Addr &= p.MaskIP()
	if _, ok := f.byPrefix[p]; !ok {
		return false
	}
	delete(f.byPrefix, p)
	if f.t != nil {
		f.t.Delete(p)
	}
	return true
}

// Get returns the entry for exactly p.
func (f *FIB) Get(p netpkt.Prefix) (*Entry, bool) {
	p.Addr &= p.MaskIP()
	e, ok := f.byPrefix[p]
	return e, ok
}

// Lookup performs longest-prefix match for ip.
func (f *FIB) Lookup(ip netpkt.IP) (*Entry, bool) {
	_, e, ok := f.lpm().Lookup(ip)
	return e, ok
}

// Walk visits entries in ascending prefix order.
func (f *FIB) Walk(fn func(*Entry) bool) {
	f.lpm().Walk(func(_ netpkt.Prefix, e *Entry) bool { return fn(e) })
}

// Snapshot returns a deep copy of all entries, sorted by prefix — the
// payload of the paper's PullStates API.
func (f *FIB) Snapshot() Snapshot {
	out := make(Snapshot, 0, len(f.byPrefix))
	f.Walk(func(e *Entry) bool {
		out = append(out, e.Clone())
		return true
	})
	return out
}

// Snapshot is an ordered dump of a FIB.
type Snapshot []*Entry

// Len returns the number of entries in the snapshot.
func (s Snapshot) Len() int { return len(s) }

// String renders the snapshot one entry per line, for debugging and golden
// comparisons.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, e := range s {
		fmt.Fprintf(&b, "%s via", e.Prefix)
		for _, nh := range e.NextHops {
			fmt.Fprintf(&b, " %s", nh)
		}
		fmt.Fprintf(&b, " [%s]\n", e.Proto)
	}
	return b.String()
}

// DiffKind classifies one FIB difference.
type DiffKind uint8

// Difference kinds reported by Compare.
const (
	DiffMissingLeft  DiffKind = iota // prefix only in the right snapshot
	DiffMissingRight                 // prefix only in the left snapshot
	DiffNextHops                     // prefix in both, next hops disagree
)

func (k DiffKind) String() string {
	switch k {
	case DiffMissingLeft:
		return "missing-left"
	case DiffMissingRight:
		return "missing-right"
	case DiffNextHops:
		return "nexthop-mismatch"
	}
	return "unknown"
}

// Diff is one difference between two snapshots.
type Diff struct {
	Kind   DiffKind
	Prefix netpkt.Prefix
	Left   *Entry // nil for DiffMissingLeft
	Right  *Entry // nil for DiffMissingRight
}

// String formats the difference for reports.
func (d Diff) String() string {
	return fmt.Sprintf("%s %s", d.Kind, d.Prefix)
}

// CompareMode selects how tolerant the comparator is.
type CompareMode uint8

// Comparator modes.
const (
	// Strict requires identical next-hop sets for every prefix.
	Strict CompareMode = iota
	// ECMPAware (the §9 comparator) treats a prefix as matching when the two
	// next-hop sets overlap: BGP implementations choose non-deterministically
	// among equal candidates when ECMP interacts with aggregation, so any
	// common choice indicates the same candidate set. Disjoint sets are
	// still a mismatch.
	ECMPAware
)

// Compare diffs two snapshots. The result is sorted by prefix.
func Compare(left, right Snapshot, mode CompareMode) []Diff {
	li := indexSnapshot(left)
	ri := indexSnapshot(right)
	var out []Diff
	for p, le := range li {
		re, ok := ri[p]
		if !ok {
			out = append(out, Diff{Kind: DiffMissingRight, Prefix: p, Left: le})
			continue
		}
		if !nextHopsMatch(le.NextHops, re.NextHops, mode) {
			out = append(out, Diff{Kind: DiffNextHops, Prefix: p, Left: le, Right: re})
		}
	}
	for p, re := range ri {
		if _, ok := li[p]; !ok {
			out = append(out, Diff{Kind: DiffMissingLeft, Prefix: p, Right: re})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Prefix, out[j].Prefix
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Len != b.Len {
			return a.Len < b.Len
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// DiffAgainst diffs a saved snapshot (sorted, as Snapshot returns it)
// against the FIB's live contents in one ordered merge — no pulled copy of
// the table, no index maps — producing exactly what Compare(base, Snapshot())
// would. Only differing entries are cloned; the common case (no drift)
// allocates nothing. Diff output order matches Compare's sorted order
// because both sides are walked in ascending (address, length) order.
func (f *FIB) DiffAgainst(base Snapshot, mode CompareMode) []Diff {
	var out []Diff
	i := 0
	f.Walk(func(e *Entry) bool {
		for i < len(base) && prefixBefore(base[i].Prefix, e.Prefix) {
			out = append(out, Diff{Kind: DiffMissingRight, Prefix: base[i].Prefix, Left: base[i]})
			i++
		}
		if i < len(base) && base[i].Prefix == e.Prefix {
			if !nextHopsMatch(base[i].NextHops, e.NextHops, mode) {
				out = append(out, Diff{Kind: DiffNextHops, Prefix: e.Prefix, Left: base[i], Right: e.Clone()})
			}
			i++
		} else {
			out = append(out, Diff{Kind: DiffMissingLeft, Prefix: e.Prefix, Right: e.Clone()})
		}
		return true
	})
	for ; i < len(base); i++ {
		out = append(out, Diff{Kind: DiffMissingRight, Prefix: base[i].Prefix, Left: base[i]})
	}
	return out
}

func prefixBefore(a, b netpkt.Prefix) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Len < b.Len
}

func indexSnapshot(s Snapshot) map[netpkt.Prefix]*Entry {
	m := make(map[netpkt.Prefix]*Entry, len(s))
	for _, e := range s {
		m[e.Prefix] = e
	}
	return m
}

func nextHopsMatch(a, b []NextHop, mode CompareMode) bool {
	switch mode {
	case Strict:
		if len(a) != len(b) {
			return false
		}
		as := make(map[NextHop]bool, len(a))
		for _, nh := range a {
			as[nh] = true
		}
		for _, nh := range b {
			if !as[nh] {
				return false
			}
		}
		return true
	case ECMPAware:
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		as := make(map[NextHop]bool, len(a))
		for _, nh := range a {
			as[nh] = true
		}
		for _, nh := range b {
			if as[nh] {
				return true
			}
		}
		return false
	}
	return false
}

// Clone returns a deep copy of the FIB for a forked emulation. Each entry
// is copied exactly once; the clone's LPM trie is left unbuilt and
// reassembles itself from the copied table on the fork's first data-plane
// query (see FIB.t), which keeps forks cheap for rehearsals that never
// inject traffic.
func (f *FIB) Clone() *FIB {
	c := &FIB{
		byPrefix: make(map[netpkt.Prefix]*Entry, len(f.byPrefix)),
		Capacity: f.Capacity,
	}
	for p, e := range f.byPrefix {
		// The entry struct is copied; its hop group is aliased. Stored hop
		// groups are immutable — InstallHops replaces the slice wholesale,
		// never edits it — so forks share them (same policy as the attrs).
		ce := *e
		c.byPrefix[p] = &ce
	}
	return c
}
