package phynet

import "crystalnet/internal/sim"

// Fork returns a deep copy of the fabric on eng — hosts, containers,
// interfaces and links — plus translation maps from the source's interfaces
// and containers to their clones, which the orchestration layer uses to
// remap its own bookkeeping. The source fabric is read strictly read-only,
// so concurrent forks are safe.
//
// Frame handlers are deliberately not copied: they are closures over the
// parent's firmware. Forked devices re-attach their own handlers, exactly
// as firmware does after boot.
func (f *Fabric) Fork(eng *sim.Engine) (*Fabric, map[*VIface]*VIface, map[*Container]*Container) {
	c := &Fabric{
		eng:               eng,
		hosts:             make(map[string]*Host, len(f.hosts)),
		backend:           f.backend,
		nextVNI:           f.nextVNI,
		nextIP:            f.nextIP,
		IntraVMLatency:    f.IntraVMLatency,
		InterVMLatency:    f.InterVMLatency,
		RemoteLatency:     f.RemoteLatency,
		CrossCloudLatency: f.CrossCloudLatency,
		FramesDelivered:   f.FramesDelivered,
		BytesDelivered:    f.BytesDelivered,
		FramesDropped:     f.FramesDropped,
		EncapFrames:       f.EncapFrames,
	}
	ifaceMap := make(map[*VIface]*VIface)
	ctMap := make(map[*Container]*Container)
	for name, h := range f.hosts {
		nh := &Host{
			Name:       h.Name,
			UnderlayIP: h.UnderlayIP,
			Remote:     h.Remote,
			Region:     h.Region,
			Domain:     h.Domain,
			fabric:     c,
			containers: make(map[string]*Container, len(h.containers)),
			vethPairs:  h.vethPairs,
			bridges:    h.bridges,
			tunnels:    h.tunnels,
			setupCost:  h.setupCost,
		}
		for cname, ct := range h.containers {
			nc := &Container{Name: ct.Name, Host: nh, ifaces: make(map[string]*VIface, len(ct.ifaces))}
			for iname, vi := range ct.ifaces {
				nvi := &VIface{Name: vi.Name, MAC: vi.MAC, Container: nc}
				nc.ifaces[iname] = nvi
				ifaceMap[vi] = nvi
			}
			nh.containers[cname] = nc
			ctMap[ct] = nc
		}
		c.hosts[name] = nh
	}
	// An endpoint can outlive its container (strawman reloads rebuild the
	// namespace, orphaning the old interfaces while their downed links stay
	// in the inventory); clone such orphans standalone so link topology is
	// preserved without resurrecting a container reference.
	cloneIface := func(vi *VIface) *VIface {
		if vi == nil {
			return nil
		}
		if dup, ok := ifaceMap[vi]; ok {
			return dup
		}
		dup := &VIface{Name: vi.Name, MAC: vi.MAC}
		ifaceMap[vi] = dup
		return dup
	}
	c.links = make([]*VirtualLink, len(f.links))
	for i, l := range f.links {
		nl := &VirtualLink{VNI: l.VNI, A: cloneIface(l.A), B: cloneIface(l.B), up: l.up, crossVM: l.crossVM}
		if nl.A != nil {
			nl.A.link = nl
		}
		if nl.B != nil {
			nl.B.link = nl
		}
		c.links[i] = nl
	}
	return c, ifaceMap, ctMap
}
