package phynet

import (
	"bytes"
	"testing"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/sim"
)

func build(t *testing.T, backend BridgeBackend) (*sim.Engine, *Fabric, *Container, *Container, *VirtualLink) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, backend)
	h1 := f.AddHost("vm-a")
	h2 := f.AddHost("vm-b")
	c1 := h1.AddContainer("t1")
	c2 := h2.AddContainer("t2")
	i1 := c1.AddIface("et0", netpkt.MAC{2, 0, 0, 0, 0, 1})
	i2 := c2.AddIface("et0", netpkt.MAC{2, 0, 0, 0, 0, 2})
	l := f.Connect(i1, i2)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	return eng, f, c1, c2, l
}

func TestCrossVMDeliveryWithVXLAN(t *testing.T) {
	eng, f, c1, c2, _ := build(t, LinuxBridge)
	var got []byte
	var gotIface string
	c2.Attach(func(iface string, frame []byte) { gotIface, got = iface, frame })

	frame := (&netpkt.EthernetFrame{Dst: netpkt.BroadcastMAC, Src: netpkt.MAC{2, 0, 0, 0, 0, 1}, EtherType: netpkt.EtherTypeARP, Payload: make([]byte, 28)}).Marshal()
	f.Send(c1.Iface("et0"), frame)
	if got != nil {
		t.Fatal("delivery must be asynchronous")
	}
	eng.Run(0)
	if gotIface != "et0" || !bytes.Equal(got, frame) {
		t.Fatalf("frame corrupted: %v / %q", got, gotIface)
	}
	if f.EncapFrames != 1 {
		t.Fatalf("EncapFrames = %d, want 1 (cross-VM)", f.EncapFrames)
	}
	if f.FramesDelivered != 1 {
		t.Fatalf("FramesDelivered = %d", f.FramesDelivered)
	}
}

func TestIntraVMDeliveryNoEncap(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	h := f.AddHost("vm-a")
	c1 := h.AddContainer("t1")
	c2 := h.AddContainer("t2")
	i1 := c1.AddIface("et0", netpkt.MAC{2, 0, 0, 0, 0, 1})
	i2 := c2.AddIface("et0", netpkt.MAC{2, 0, 0, 0, 0, 2})
	f.Connect(i1, i2)
	seen := false
	c2.Attach(func(string, []byte) { seen = true })
	f.Send(i1, []byte("frame"))
	eng.Run(0)
	if !seen {
		t.Fatal("intra-VM frame lost")
	}
	if f.EncapFrames != 0 {
		t.Fatal("intra-VM frames must not be encapsulated")
	}
}

func TestLatencyModel(t *testing.T) {
	eng, f, c1, c2, _ := build(t, LinuxBridge)
	var at sim.Time
	c2.Attach(func(string, []byte) { at = eng.Now() })
	f.Send(c1.Iface("et0"), []byte("x"))
	eng.Run(0)
	if at != sim.Time(f.InterVMLatency) {
		t.Fatalf("cross-VM delivery at %v, want %v", at, f.InterVMLatency)
	}
}

func TestDetachedFirmwareDropsFrames(t *testing.T) {
	eng, f, c1, c2, _ := build(t, LinuxBridge)
	// No handler attached on c2.
	f.Send(c1.Iface("et0"), []byte("x"))
	eng.Run(0)
	if f.FramesDropped != 1 || f.FramesDelivered != 0 {
		t.Fatalf("dropped=%d delivered=%d", f.FramesDropped, f.FramesDelivered)
	}
	// Attach later: new frames flow; namespace survived.
	ok := false
	c2.Attach(func(string, []byte) { ok = true })
	if !c2.Attached() {
		t.Fatal("Attached false")
	}
	f.Send(c1.Iface("et0"), []byte("y"))
	eng.Run(0)
	if !ok {
		t.Fatal("frame lost after attach")
	}
	c2.Detach()
	if c2.Attached() {
		t.Fatal("Detach failed")
	}
}

func TestLinkDownDrops(t *testing.T) {
	eng, f, c1, c2, l := build(t, LinuxBridge)
	c2.Attach(func(string, []byte) { t.Fatal("frame crossed a down link") })
	f.SetLinkState(l, false)
	if l.Up() {
		t.Fatal("link still up")
	}
	f.Send(c1.Iface("et0"), []byte("x"))
	eng.Run(0)
	if f.FramesDropped != 1 {
		t.Fatalf("dropped = %d", f.FramesDropped)
	}
}

func TestLinkCutMidFlight(t *testing.T) {
	eng, f, c1, c2, l := build(t, LinuxBridge)
	c2.Attach(func(string, []byte) { t.Fatal("in-flight frame delivered across cut link") })
	f.Send(c1.Iface("et0"), []byte("x"))
	f.SetLinkState(l, false) // cut before delivery event fires
	eng.Run(0)
	if f.FramesDropped != 1 {
		t.Fatal("in-flight frame not dropped")
	}
}

func TestUnconnectedIfaceDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	h := f.AddHost("vm-a")
	c := h.AddContainer("t1")
	i := c.AddIface("et0", netpkt.MAC{})
	f.Send(i, []byte("x"))
	if f.FramesDropped != 1 {
		t.Fatal("send on unconnected iface should drop")
	}
}

func TestSetupCostOVSHigher(t *testing.T) {
	_, fl, _, _, _ := build(t, LinuxBridge)
	_, fo, _, _, _ := build(t, OVS)
	var linuxCost, ovsCost float64
	for _, h := range []string{"vm-a", "vm-b"} {
		linuxCost += fl.Host(h).SetupCost()
		ovsCost += fo.Host(h).SetupCost()
	}
	if ovsCost <= linuxCost {
		t.Fatalf("OVS setup cost %f should exceed Linux bridge %f", ovsCost, linuxCost)
	}
	if fl.Backend() != LinuxBridge || fo.Backend() != OVS {
		t.Fatal("Backend accessor wrong")
	}
}

func TestPlumbingInventory(t *testing.T) {
	_, f, _, _, _ := build(t, LinuxBridge)
	veth, bridges, tunnels := f.Host("vm-a").Plumbing()
	if veth != 1 || bridges != 1 || tunnels != 1 {
		t.Fatalf("vm-a plumbing = %d/%d/%d, want 1/1/1", veth, bridges, tunnels)
	}
	if f.Host("vm-a").Containers() != 1 {
		t.Fatal("container count wrong")
	}
}

func TestVNIUniqueAndValidate(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	h := f.AddHost("vm-a")
	seen := map[uint32]bool{}
	var prev *VIface
	for i := 0; i < 50; i++ {
		c := h.AddContainer(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		v := c.AddIface("et0", netpkt.MAC{byte(i)})
		if prev != nil {
			l := f.Connect(prev, v)
			if seen[l.VNI] {
				t.Fatal("VNI reuse")
			}
			seen[l.VNI] = true
			prev = nil
		} else {
			prev = v
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleConnectPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double connect did not panic")
		}
	}()
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	h := f.AddHost("vm-a")
	c1 := h.AddContainer("t1")
	c2 := h.AddContainer("t2")
	c3 := h.AddContainer("t3")
	i1 := c1.AddIface("et0", netpkt.MAC{1})
	i2 := c2.AddIface("et0", netpkt.MAC{2})
	i3 := c3.AddIface("et0", netpkt.MAC{3})
	f.Connect(i1, i2)
	f.Connect(i1, i3)
}

func TestRemoveContainerDownsLinks(t *testing.T) {
	_, f, c1, _, l := build(t, LinuxBridge)
	c1.Host.RemoveContainer("t1")
	if l.Up() {
		t.Fatal("link survived container removal")
	}
	if f.Host("vm-a").Containers() != 0 {
		t.Fatal("container not removed")
	}
	f.Host("vm-a").RemoveContainer("absent") // no-op
}

func TestSendCopiesFrame(t *testing.T) {
	eng, f, c1, c2, _ := build(t, LinuxBridge)
	var got []byte
	c2.Attach(func(_ string, fr []byte) { got = fr })
	frame := []byte{1, 2, 3, 4}
	f.Send(c1.Iface("et0"), frame)
	frame[0] = 99 // mutate after send
	eng.Run(0)
	if got[0] != 1 {
		t.Fatal("fabric aliases sender's buffer")
	}
}

func TestIfaceAccessors(t *testing.T) {
	_, _, c1, _, l := build(t, LinuxBridge)
	i := c1.Iface("et0")
	if i.FullName() != "t1:et0" {
		t.Fatalf("FullName = %q", i.FullName())
	}
	if i.Link() != l || l.Other(i) == nil || l.Other(&VIface{}) != nil {
		t.Fatal("link accessors wrong")
	}
	if c1.NumIfaces() != 1 || c1.Iface("nope") != nil {
		t.Fatal("iface lookup wrong")
	}
}

func TestLatencyConfigurable(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	f.IntraVMLatency = 2 * time.Millisecond
	h := f.AddHost("vm-a")
	c1, c2 := h.AddContainer("a"), h.AddContainer("b")
	i1 := c1.AddIface("et0", netpkt.MAC{1})
	i2 := c2.AddIface("et0", netpkt.MAC{2})
	f.Connect(i1, i2)
	var at sim.Time
	c2.Attach(func(string, []byte) { at = eng.Now() })
	f.Send(i1, []byte("x"))
	eng.Run(0)
	if at != sim.Time(2*time.Millisecond) {
		t.Fatalf("delivery at %v", at)
	}
}

func TestCrossCloudAndRemoteLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, LinuxBridge)
	h1 := f.AddHost("vm-a")
	h2 := f.AddHost("vm-b")
	h3 := f.AddHost("fanout")
	h1.Region, h2.Region = "azure", "other-cloud"
	h3.Remote = true

	ca := h1.AddContainer("a")
	i1 := ca.AddIface("et0", netpkt.MAC{1})
	i1b := ca.AddIface("et1", netpkt.MAC{9})
	cb := h2.AddContainer("b")
	i2 := cb.AddIface("et0", netpkt.MAC{2})
	cc := h3.AddContainer("c")
	i3 := cc.AddIface("et0", netpkt.MAC{3})
	f.Connect(i1, i2)
	f.Connect(i1b, i3)

	var at sim.Time
	cb.Attach(func(string, []byte) { at = eng.Now() })
	f.Send(i1, []byte("x"))
	eng.Run(0)
	if at != sim.Time(f.CrossCloudLatency) {
		t.Fatalf("cross-cloud delivery at %v, want %v", at, f.CrossCloudLatency)
	}
	cc.Attach(func(string, []byte) { at = eng.Now() })
	start := eng.Now()
	f.Send(i1b, []byte("y"))
	eng.Run(0)
	if at.Sub(start) != f.RemoteLatency {
		t.Fatalf("remote delivery took %v, want %v", at.Sub(start), f.RemoteLatency)
	}
}
