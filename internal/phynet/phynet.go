// Package phynet implements CrystalNet's mock physical network (§4): the
// unified layer of PhyNet containers that hold virtual interfaces, the
// veth/bridge/VXLAN plumbing that joins them into the production topology
// (Figure 5), and the out-of-band management overlay (Figure 6).
//
// The two-layer design is the §4.1 contribution this package preserves:
// interfaces and links belong to PhyNet containers whose lifetime is
// independent of the device firmware, so a firmware reload never recreates
// plumbing (measured in §8.3). Frames that cross VM boundaries are really
// VXLAN-encapsulated to exercise the same wire path production uses.
//
// DESIGN.md §2 (substrates) and §4 (two-layer reload decision) cover this
// layer.
package phynet

import (
	"fmt"
	"time"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/sim"
)

// BridgeBackend selects the software bridge implementation (§6.2: Linux
// bridge is preferred over OVS because setup is much faster at O(1000)
// tunnels per VM).
type BridgeBackend uint8

// Bridge backends.
const (
	LinuxBridge BridgeBackend = iota
	OVS
)

// Setup cost model per plumbing object (CPU core-seconds on the hosting
// VM). OVS tunnel/bridge setup is an order of magnitude slower, which is
// the basis of the §6.2 ablation.
const (
	costVethPair    = 0.003
	costBridgeLinux = 0.004
	costBridgeOVS   = 0.040
	costVXLANLinux  = 0.002
	costVXLANOVS    = 0.025
	costNamespace   = 0.005
)

// Host is the PhyNet state of one cloud VM: containers, bridges and VXLAN
// tunnel endpoints. A Remote host models an on-premise fanout server (§4.1:
// real hardware tunnels each port to virtual interfaces on a server that
// joins the overlay across the Internet, through NATs, via UDP hole
// punching).
type Host struct {
	Name       string
	UnderlayIP netpkt.IP
	Remote     bool
	// Region names the cloud the VM lives in; emulations may span several
	// clouds (§3.1), with frames between regions crossing the Internet.
	Region string
	// Domain is the shard the host's devices execute in (DESIGN.md §10);
	// -1 (the default) keeps the host on the master engine. Only meaningful
	// when the fabric is attached to a sim.ShardSet.
	Domain int
	fabric *Fabric

	containers map[string]*Container
	// Plumbing inventories (for validation and setup-cost accounting).
	vethPairs int
	bridges   int
	tunnels   int
	setupCost float64 // accumulated core-seconds
}

// SetupCost returns the accumulated plumbing CPU cost in core-seconds.
func (h *Host) SetupCost() float64 { return h.setupCost }

// Containers returns the number of PhyNet containers on this host.
func (h *Host) Containers() int { return len(h.containers) }

// Plumbing returns (veth pairs, bridges, VXLAN tunnels) created on the host.
func (h *Host) Plumbing() (veth, bridges, tunnels int) {
	return h.vethPairs, h.bridges, h.tunnels
}

// Container is a PhyNet container: a network namespace holding a device's
// interfaces. The device firmware attaches a frame handler; the namespace
// and its interfaces survive firmware restarts.
type Container struct {
	Name   string
	Host   *Host
	ifaces map[string]*VIface
	// handler receives frames for the attached firmware; nil while the
	// firmware is down (frames are dropped, as on a booting device).
	handler func(iface string, frame []byte)
}

// Iface returns the named virtual interface, or nil.
func (c *Container) Iface(name string) *VIface { return c.ifaces[name] }

// NumIfaces returns the interface count.
func (c *Container) NumIfaces() int { return len(c.ifaces) }

// Attach installs the firmware's frame handler (booting the device OS on
// top of the existing namespace).
func (c *Container) Attach(handler func(iface string, frame []byte)) {
	c.handler = handler
}

// Detach removes the firmware handler (firmware stopped/crashed). The
// namespace, interfaces and links remain — the heart of the two-layer
// design.
func (c *Container) Detach() { c.handler = nil }

// Attached reports whether firmware is currently attached.
func (c *Container) Attached() bool { return c.handler != nil }

// VIface is one virtual interface inside a PhyNet container.
type VIface struct {
	Name      string
	MAC       netpkt.MAC
	Container *Container
	link      *VirtualLink
}

// FullName returns "container:iface".
func (v *VIface) FullName() string { return v.Container.Name + ":" + v.Name }

// Link returns the virtual link the interface is plugged into, or nil.
func (v *VIface) Link() *VirtualLink { return v.link }

// VirtualLink is one emulated physical link: a VNI-isolated veth/bridge/
// VXLAN path between two interfaces (Figure 5).
type VirtualLink struct {
	VNI  uint32
	A, B *VIface
	up   bool
	// crossVM notes whether frames traverse the underlay with real VXLAN
	// encapsulation.
	crossVM bool
}

// Up reports link state.
func (l *VirtualLink) Up() bool { return l.up }

// Other returns the far end relative to v.
func (l *VirtualLink) Other(v *VIface) *VIface {
	if l.A == v {
		return l.B
	}
	if l.B == v {
		return l.A
	}
	return nil
}

// Fabric is the whole PhyNet overlay spanning all hosts.
type Fabric struct {
	eng   *sim.Engine
	hosts map[string]*Host

	backend BridgeBackend
	nextVNI uint32
	nextIP  uint32

	// Latency model. RemoteLatency applies when either endpoint lives on a
	// Remote (on-premise) host — the overlay crosses the wide-area Internet.
	IntraVMLatency    time.Duration
	InterVMLatency    time.Duration
	RemoteLatency     time.Duration
	CrossCloudLatency time.Duration

	// Wire statistics. In a sharded run these exported fields are only
	// written during serial phases; the parallel drain accumulates into
	// per-domain slots folded back at every barrier, so readers in serial
	// context (and after Run) always see consistent totals.
	FramesDelivered uint64
	BytesDelivered  uint64
	FramesDropped   uint64
	EncapFrames     uint64 // frames that crossed the underlay (VXLAN)

	// shards, when non-nil, routes deliveries between domain engines and
	// switches counter writes to the per-domain slots below.
	shards *sim.ShardSet
	// slots[d+1] accumulates wire stats for domain d during parallel
	// drains (index 0 is the master domain, which never runs in parallel
	// but keeps the indexing uniform). Padded to a cache line apart.
	slots []fabStats

	links []*VirtualLink
}

// fabStats is one domain's wire-stat accumulator, padded to 64 bytes so
// adjacent domains do not false-share a cache line.
type fabStats struct {
	framesDelivered uint64
	bytesDelivered  uint64
	framesDropped   uint64
	encapFrames     uint64
	_               [4]uint64
}

// SetShards attaches the fabric to a shard set: deliveries route between
// domain engines and wire stats accumulate per domain during parallel
// phases, folded into the exported counters at every barrier.
func (f *Fabric) SetShards(s *sim.ShardSet) {
	f.shards = s
	f.slots = make([]fabStats, s.Domains()+1)
	s.AddFold(f.foldStats)
}

func (f *Fabric) foldStats() {
	for i := range f.slots {
		sl := &f.slots[i]
		f.FramesDelivered += sl.framesDelivered
		f.BytesDelivered += sl.bytesDelivered
		f.FramesDropped += sl.framesDropped
		f.EncapFrames += sl.encapFrames
		*sl = fabStats{}
	}
}

// stat returns the counter sink for code executing in domain d: the
// domain's slot during a parallel drain, the exported fields otherwise.
func (f *Fabric) stat(d int) *fabStats {
	if f.shards != nil && f.shards.InParallel() {
		return &f.slots[d+1]
	}
	return nil
}

func (f *Fabric) countDrop(d int) {
	if sl := f.stat(d); sl != nil {
		sl.framesDropped++
		return
	}
	f.FramesDropped++
}

func (f *Fabric) countEncap(d int) {
	if sl := f.stat(d); sl != nil {
		sl.encapFrames++
		return
	}
	f.EncapFrames++
}

func (f *Fabric) countDelivered(d int, bytes uint64) {
	if sl := f.stat(d); sl != nil {
		sl.framesDelivered++
		sl.bytesDelivered += bytes
		return
	}
	f.FramesDelivered++
	f.BytesDelivered += bytes
}

// NewFabric creates an empty overlay on the engine.
func NewFabric(eng *sim.Engine, backend BridgeBackend) *Fabric {
	return &Fabric{
		eng: eng, hosts: map[string]*Host{}, backend: backend,
		nextVNI:           1,
		nextIP:            uint32(netpkt.IPFromBytes(192, 168, 0, 1)),
		IntraVMLatency:    50 * time.Microsecond,
		InterVMLatency:    500 * time.Microsecond,
		RemoteLatency:     20 * time.Millisecond,
		CrossCloudLatency: 5 * time.Millisecond,
	}
}

// Backend returns the configured bridge backend.
func (f *Fabric) Backend() BridgeBackend { return f.backend }

// Links returns all virtual links.
func (f *Fabric) Links() []*VirtualLink { return f.links }

// AddHost registers a cloud VM in the overlay, assigning an underlay IP.
func (f *Fabric) AddHost(name string) *Host {
	if _, dup := f.hosts[name]; dup {
		panic(fmt.Sprintf("phynet: duplicate host %q", name))
	}
	h := &Host{
		Name: name, UnderlayIP: netpkt.IP(f.nextIP), Domain: -1,
		fabric: f, containers: map[string]*Container{},
	}
	f.nextIP++
	f.hosts[name] = h
	return h
}

// Host returns the named host, or nil.
func (f *Fabric) Host(name string) *Host { return f.hosts[name] }

// AddContainer creates a PhyNet container (network namespace) on the host.
func (h *Host) AddContainer(name string) *Container {
	if _, dup := h.containers[name]; dup {
		panic(fmt.Sprintf("phynet: duplicate container %q on %s", name, h.Name))
	}
	c := &Container{Name: name, Host: h, ifaces: map[string]*VIface{}}
	h.containers[name] = c
	h.setupCost += costNamespace
	return c
}

// RemoveContainer destroys a container and detaches its interfaces from
// their links (used by the §8.3 strawman reload ablation and VM recovery).
func (h *Host) RemoveContainer(name string) {
	c := h.containers[name]
	if c == nil {
		return
	}
	for _, v := range c.ifaces {
		if v.link != nil {
			v.link.up = false
		}
	}
	delete(h.containers, name)
}

// RemoveIface deletes an interface from the container, downing any link it
// was plugged into (the strawman-reload / VM-recovery rebuild path).
func (c *Container) RemoveIface(name string) {
	v := c.ifaces[name]
	if v == nil {
		return
	}
	if v.link != nil {
		v.link.up = false
	}
	delete(c.ifaces, name)
}

// AddIface creates a virtual interface inside the container.
func (c *Container) AddIface(name string, mac netpkt.MAC) *VIface {
	if _, dup := c.ifaces[name]; dup {
		panic(fmt.Sprintf("phynet: duplicate iface %q in %s", name, c.Name))
	}
	v := &VIface{Name: name, MAC: mac, Container: c}
	c.ifaces[name] = v
	// Each device interface is one end of a veth pair (Figure 5).
	c.Host.vethPairs++
	c.Host.setupCost += costVethPair
	return v
}

// Connect plugs two interfaces into a fresh virtual link, building the
// bridge+VXLAN plumbing on their hosts and assigning a unique VNI.
func (f *Fabric) Connect(a, b *VIface) *VirtualLink {
	if a.link != nil || b.link != nil {
		panic(fmt.Sprintf("phynet: interface already linked: %s or %s", a.FullName(), b.FullName()))
	}
	l := &VirtualLink{VNI: f.nextVNI, A: a, B: b, up: true}
	f.nextVNI++
	l.crossVM = a.Container.Host != b.Container.Host
	a.link, b.link = l, l

	bridgeCost, tunCost := costBridgeLinux, costVXLANLinux
	if f.backend == OVS {
		bridgeCost, tunCost = costBridgeOVS, costVXLANOVS
	}
	// One bridge per link endpoint host; a VXLAN tunnel interface on each
	// side when the link crosses VMs.
	a.Container.Host.bridges++
	a.Container.Host.setupCost += bridgeCost
	if l.crossVM {
		b.Container.Host.bridges++
		b.Container.Host.setupCost += bridgeCost
		a.Container.Host.tunnels++
		b.Container.Host.tunnels++
		a.Container.Host.setupCost += tunCost
		b.Container.Host.setupCost += tunCost
	}
	f.links = append(f.links, l)
	return l
}

// SetLinkState raises or cuts a virtual link (the Connect/Disconnect
// control APIs).
func (f *Fabric) SetLinkState(l *VirtualLink, up bool) { l.up = up }

// Send transmits an Ethernet frame out of the given interface. Delivery is
// asynchronous on the simulation clock; frames crossing hosts are VXLAN-
// encapsulated and decapsulated for real.
//
// Ownership of frame passes to the fabric: the caller must not modify it
// after the call, and the payload handed to the receiver may alias it (the
// receiver may in turn retain that payload — frame buffers are never
// recycled).
func (f *Fabric) Send(from *VIface, frame []byte) {
	// srcDomain is the domain executing this call — Send is always invoked
	// by the firmware attached to the sending interface's host.
	srcDomain := from.Container.Host.Domain
	l := from.link
	if l == nil || !l.up {
		f.countDrop(srcDomain)
		return
	}
	to := l.Other(from)
	if to == nil {
		f.countDrop(srcDomain)
		return
	}
	latency := f.IntraVMLatency
	payload := frame
	if l.crossVM {
		latency = f.InterVMLatency
		if from.Container.Host.Region != to.Container.Host.Region {
			latency = f.CrossCloudLatency
		}
		if from.Container.Host.Remote || to.Container.Host.Remote {
			latency = f.RemoteLatency
		}
		// Real encap/decap across the underlay (Figure 5): UDP port is
		// derived from the VNI for five-tuple entropy.
		enc := netpkt.EncapVXLAN(l.VNI,
			from.Container.Host.UnderlayIP, to.Container.Host.UnderlayIP,
			netpkt.MAC{0x02, 0xee, 0, 0, 0, 1}, netpkt.MAC{0x02, 0xee, 0, 0, 0, 2},
			uint16(32768+l.VNI%16384), frame)
		vni, inner, err := netpkt.DecapVXLAN(enc)
		if err != nil || vni != l.VNI {
			f.countDrop(srcDomain)
			return
		}
		f.countEncap(srcDomain)
		// inner aliases enc, a buffer private to this call, so it can be
		// captured by the delivery closure without another copy.
		payload = inner
	}
	data := payload
	// The delivery closure executes on the receiving host's engine, so its
	// counter writes belong to the destination domain.
	dstDomain := to.Container.Host.Domain
	deliver := func() {
		if !l.up {
			f.countDrop(dstDomain)
			return
		}
		h := to.Container.handler
		if h == nil {
			// Firmware down: device drops the frame.
			f.countDrop(dstDomain)
			return
		}
		f.countDelivered(dstDomain, uint64(len(data)))
		h(to.Name, data)
	}
	if f.shards != nil {
		f.shards.ScheduleAfter(srcDomain, dstDomain, latency, deliver)
		return
	}
	f.eng.After(latency, deliver)
}

// Validate checks overlay invariants: VNI uniqueness per fabric, link
// symmetry, interfaces belonging to registered containers.
func (f *Fabric) Validate() error {
	seen := map[uint32]bool{}
	for _, l := range f.links {
		if seen[l.VNI] {
			return fmt.Errorf("phynet: VNI %d reused", l.VNI)
		}
		seen[l.VNI] = true
		if l.A.link != l || l.B.link != l {
			return fmt.Errorf("phynet: asymmetric link VNI %d", l.VNI)
		}
		for _, v := range []*VIface{l.A, l.B} {
			host := v.Container.Host
			if host.containers[v.Container.Name] != v.Container {
				return fmt.Errorf("phynet: interface %s on unregistered container", v.FullName())
			}
		}
	}
	return nil
}

// Container returns the named container on this host, or nil.
func (h *Host) Container(name string) *Container { return h.containers[name] }
