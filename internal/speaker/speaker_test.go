package speaker

import (
	"testing"

	"crystalnet/internal/bgp"
	"crystalnet/internal/config"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/sim"
	"crystalnet/internal/topo"
	"crystalnet/internal/vendors"
)

func pfx(s string) netpkt.Prefix { return netpkt.MustParsePrefix(s) }

// rig: speaker S (AS 64600) connected to boundary devices B1 (AS 65000) and
// B2 (AS 65000) — like a WAN device above two borders.
type rig struct {
	t       *testing.T
	eng     *sim.Engine
	sp      *Speaker
	b1, b2  *firmware.Device
	devices map[string]*firmware.Device
}

func build(t *testing.T, anns []Announcement) *rig {
	n := topo.NewNetwork("edge")
	s := n.AddDevice("S", topo.LayerExternal, 64600, vendors.Speaker)
	b1 := n.AddDevice("B1", topo.LayerBorder, 65000, "test")
	b2 := n.AddDevice("B2", topo.LayerBorder, 65000, "test")
	b1.Originated = append(b1.Originated, pfx("100.64.0.0/24"))
	n.Connect(s, b1)
	n.Connect(s, b2)

	eng := sim.NewEngine(1)
	fabric := phynet.NewFabric(eng, phynet.LinuxBridge)
	host := fabric.AddHost("vm-0")
	r := &rig{t: t, eng: eng, devices: map[string]*firmware.Device{}}
	containers := map[string]*phynet.Container{}
	for _, d := range n.Devices() {
		c := host.AddContainer(d.Name)
		containers[d.Name] = c
		for _, intf := range d.Interfaces {
			c.AddIface(intf.Name, intf.MAC)
		}
	}
	for _, l := range n.Links {
		fabric.Connect(containers[l.A.Device.Name].Iface(l.A.Name), containers[l.B.Device.Name].Iface(l.B.Name))
	}
	img := firmware.VendorImage{Name: "test", Version: "1", BootFixed: 1e9, BootJitter: 1e9}
	// Speakers are configured like any device (the config generator treats
	// them uniformly once Prepare selects them).
	for _, d := range n.Devices() {
		cfg := config.GenerateDevice(d)
		di := img
		if d.Name == "S" {
			di = vendors.MustGet(vendors.Speaker, "3.4.17")
		}
		dev := firmware.New(d.Name, di, cfg, eng, fabric, containers[d.Name])
		r.devices[d.Name] = dev
	}
	var err error
	r.sp, err = New(r.devices["S"], anns)
	if err != nil {
		t.Fatal(err)
	}
	r.b1, r.b2 = r.devices["B1"], r.devices["B2"]
	return r
}

func (r *rig) start() {
	r.sp.Start(nil)
	r.b1.Boot(nil)
	r.b2.Boot(nil)
	if _, err := r.eng.Run(5_000_000); err != nil {
		r.t.Fatal(err)
	}
}

func TestSpeakerAnnouncesRecordedRoutes(t *testing.T) {
	anns := []Announcement{
		{Prefix: pfx("8.8.0.0/16"), Path: []uint32{64600, 3356, 15169}},
		{Prefix: pfx("1.1.1.0/24"), Path: []uint32{64600, 13335}, MED: 50, HasMED: true},
	}
	r := build(t, anns)
	r.start()

	attrs, ok := r.b1.BGP().BestRoute(pfx("8.8.0.0/16"))
	if !ok {
		t.Fatal("B1 missing injected route")
	}
	// The boundary device sees the byte-identical production path.
	if attrs.Path.String() != "64600 3356 15169" {
		t.Fatalf("path = %q", attrs.Path)
	}
	attrs, ok = r.b2.BGP().BestRoute(pfx("1.1.1.0/24"))
	if !ok || !attrs.HasMED || attrs.MED != 50 {
		t.Fatalf("B2 attrs = %+v", attrs)
	}
	// FIBs are programmed.
	if _, ok := r.b1.FIB().Lookup(netpkt.MustParseIP("8.8.4.4")); !ok {
		t.Fatal("B1 FIB missing")
	}
}

func TestSpeakerNeverReflects(t *testing.T) {
	r := build(t, nil)
	r.start()
	// B1 announced 100.64.0.0/24; the speaker hears it but must not pass
	// it to B2 (static speaker property; B1/B2 also share an AS).
	if _, ok := r.b2.BGP().BestRoute(pfx("100.64.0.0/24")); ok {
		t.Fatal("speaker reflected a route between boundary devices")
	}
	recv := r.sp.Received()
	found := false
	for _, rr := range recv {
		if rr.Prefix == pfx("100.64.0.0/24") && rr.Path == "65000" {
			found = true
		}
	}
	if !found {
		t.Fatalf("speaker did not record B1's announcement: %+v", recv)
	}
}

func TestSpeakerRuntimeAnnounceWithdraw(t *testing.T) {
	r := build(t, nil)
	r.start()
	if err := r.sp.Announce(Announcement{Prefix: pfx("9.9.9.0/24"), Path: []uint32{64600, 9}}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(5_000_000)
	if _, ok := r.b1.BGP().BestRoute(pfx("9.9.9.0/24")); !ok {
		t.Fatal("runtime announcement not delivered")
	}
	r.sp.Withdraw(pfx("9.9.9.0/24"))
	r.eng.Run(5_000_000)
	if _, ok := r.b1.BGP().BestRoute(pfx("9.9.9.0/24")); ok {
		t.Fatal("withdrawal not delivered")
	}
}

func TestAnnouncementValidation(t *testing.T) {
	if err := (Announcement{Prefix: pfx("1.0.0.0/8")}).Validate(64600); err == nil {
		t.Fatal("empty path accepted")
	}
	if err := (Announcement{Prefix: pfx("1.0.0.0/8"), Path: []uint32{99}}).Validate(64600); err == nil {
		t.Fatal("wrong leading AS accepted")
	}
	if err := (Announcement{Prefix: pfx("1.0.0.0/8"), Path: []uint32{64600}}).Validate(64600); err != nil {
		t.Fatal(err)
	}
	// New() rejects bad announcements and non-speaker devices.
	r := build(t, nil)
	if _, err := New(r.b1, nil); err == nil {
		t.Fatal("non-speaker device accepted")
	}
	if _, err := New(r.devices["S"], []Announcement{{Prefix: pfx("1.0.0.0/8"), Path: []uint32{1}}}); err == nil {
		t.Fatal("invalid announcement accepted")
	}
	if err := r.sp.Announce(Announcement{Prefix: pfx("1.0.0.0/8"), Path: []uint32{1}}); err == nil {
		t.Fatal("runtime invalid announcement accepted")
	}
}

func TestSpeakerSingleASOriginOnly(t *testing.T) {
	// A one-element path announces as if locally originated by the
	// external AS.
	r := build(t, []Announcement{{Prefix: pfx("7.0.0.0/8"), Path: []uint32{64600}, Origin: bgp.OriginEGP}})
	r.start()
	attrs, ok := r.b1.BGP().BestRoute(pfx("7.0.0.0/8"))
	if !ok || attrs.Path.String() != "64600" || attrs.Origin != bgp.OriginEGP {
		t.Fatalf("attrs = %+v", attrs)
	}
}

func TestSpeakerWithdrawBeforeBoot(t *testing.T) {
	// Withdraw/Received on a not-yet-booted speaker must be safe no-ops.
	r := build(t, nil)
	r.sp.Withdraw(pfx("1.0.0.0/8"))
	if got := r.sp.Received(); got != nil {
		t.Fatalf("Received before boot = %v", got)
	}
}

func TestSpeakerKeepsSessionsAliveAcrossBoundaryChurn(t *testing.T) {
	// §5.1 function 1: the speaker holds the session when the boundary
	// device reloads, and re-announces its static routes afterwards.
	anns := []Announcement{{Prefix: pfx("8.8.0.0/16"), Path: []uint32{64600, 15169}}}
	r := build(t, anns)
	r.start()
	if _, ok := r.b1.BGP().BestRoute(pfx("8.8.0.0/16")); !ok {
		t.Fatal("setup failed")
	}
	r.b1.Reload(nil, nil)
	if _, err := r.eng.Run(5_000_000); err != nil {
		t.Fatal(err)
	}
	if r.sp.Dev.State() != firmware.DeviceRunning {
		t.Fatal("speaker died during boundary churn")
	}
	if _, ok := r.b1.BGP().BestRoute(pfx("8.8.0.0/16")); !ok {
		t.Fatal("static announcements not restored after boundary reload")
	}
}
