// Package speaker implements CrystalNet's static boundary speakers (§5.1):
// lightweight devices standing in for the external routers beyond the
// emulation boundary. A speaker performs exactly the paper's two functions —
// it keeps links and BGP sessions alive with boundary devices, and it
// replays the routing announcements recorded from production. It never
// reacts to dynamics inside the emulation (no reflection, no recomputation),
// which is precisely why the boundary must be chosen safe (internal/boundary).
//
// DESIGN.md §2 (core layer) places speakers next to the boundary theory they
// depend on.
package speaker

import (
	"fmt"
	"sort"

	"crystalnet/internal/bgp"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
)

// Announcement is one recorded route as the boundary device receives it:
// the AS path starts with the external device's own AS.
type Announcement struct {
	Prefix netpkt.Prefix
	Path   []uint32
	Origin bgp.Origin
	MED    uint32
	HasMED bool
}

// Validate checks the announcement is replayable by a speaker with the
// given AS: the recorded path must lead with that AS (it was announced by
// that device in production).
func (a Announcement) Validate(speakerAS uint32) error {
	if len(a.Path) == 0 {
		return fmt.Errorf("speaker: announcement for %v has empty AS path", a.Prefix)
	}
	if a.Path[0] != speakerAS {
		return fmt.Errorf("speaker: announcement for %v leads with AS %d, speaker is AS %d", a.Prefix, a.Path[0], speakerAS)
	}
	return nil
}

// Speaker wraps a firmware device running the static-speaker image.
type Speaker struct {
	Dev           *firmware.Device
	Announcements []Announcement
}

// New wraps an already-constructed speaker-image device with its announce
// set.
func New(dev *firmware.Device, anns []Announcement) (*Speaker, error) {
	if !dev.Image.StaticSpeaker {
		return nil, fmt.Errorf("speaker: device %s does not run the speaker image", dev.Name)
	}
	for _, a := range anns {
		if err := a.Validate(dev.Config().ASN); err != nil {
			return nil, err
		}
	}
	return &Speaker{Dev: dev, Announcements: anns}, nil
}

// Start boots the speaker and injects its announcements once running.
// onReady (optional) fires after injection.
func (s *Speaker) Start(onReady func()) {
	s.Dev.Boot(func() {
		s.Inject()
		if onReady != nil {
			onReady()
		}
	})
}

// Inject programs the recorded announcements into the speaker's BGP
// instance. The leading own-AS element is stripped; the eBGP export path
// prepends it back, so boundary devices receive byte-identical paths.
func (s *Speaker) Inject() {
	r := s.Dev.BGP()
	if r == nil {
		return
	}
	for _, a := range s.Announcements {
		attrs := &bgp.Attrs{
			Origin: a.Origin,
			Path:   bgp.NewPath(a.Path[1:]...),
			MED:    a.MED, HasMED: a.HasMED,
		}
		r.InjectLocal(a.Prefix, attrs)
	}
}

// Withdraw retracts one previously injected announcement (operators can
// script arbitrary messages, §5.1 "fully programmable").
func (s *Speaker) Withdraw(p netpkt.Prefix) {
	if r := s.Dev.BGP(); r != nil {
		r.WithdrawLocal(p)
	}
}

// Announce injects an additional announcement at runtime.
func (s *Speaker) Announce(a Announcement) error {
	if err := a.Validate(s.Dev.Config().ASN); err != nil {
		return err
	}
	s.Announcements = append(s.Announcements, a)
	if r := s.Dev.BGP(); r != nil {
		r.InjectLocal(a.Prefix, &bgp.Attrs{
			Origin: a.Origin, Path: bgp.NewPath(a.Path[1:]...),
			MED: a.MED, HasMED: a.HasMED,
		})
	}
	return nil
}

// ReceivedRoute is one announcement the speaker heard from a boundary
// device — dumped for offline analysis (§5.1, §6.2).
type ReceivedRoute struct {
	FromPeer string
	Prefix   netpkt.Prefix
	Path     string
}

// Received dumps everything learned from boundary devices, sorted for
// deterministic reports.
func (s *Speaker) Received() []ReceivedRoute {
	r := s.Dev.BGP()
	if r == nil {
		return nil
	}
	var out []ReceivedRoute
	for _, p := range r.Prefixes() {
		attrs, ok := r.BestRoute(p)
		if !ok || attrs.Path.Length() == 0 {
			continue // locally injected
		}
		peers := r.BestPeers(p)
		name := ""
		if len(peers) > 0 && peers[0] != nil {
			name = peers[0].Config.Name
		}
		out = append(out, ReceivedRoute{FromPeer: name, Prefix: p, Path: attrs.Path.String()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Len < out[j].Prefix.Len
	})
	return out
}

// Fork rewraps a forked emulation's clone of the speaker device with a
// copy of the announcement list. Announcement values share their recorded
// AS paths, which are immutable once loaded.
func (s *Speaker) Fork(dev *firmware.Device) *Speaker {
	return &Speaker{Dev: dev, Announcements: append([]Announcement(nil), s.Announcements...)}
}
