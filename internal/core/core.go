// Package core implements the CrystalNet orchestrator — the "brain" of §3.2
// and the paper's primary contribution. It reads a production snapshot,
// computes a safe emulation boundary, plans and spawns cloud VMs with
// vendor-group anti-affinity, mocks up the PhyNet overlay and the
// management plane, boots firmware, surrounds the emulation with static
// speakers, and exposes the Prepare/Mockup/Control/Monitor API of Table 2.
//
// DESIGN.md §2 (core layer) inventories what Prepare/Mockup build; the
// Monitor plane it hosts is DESIGN.md §7 and docs/OBSERVABILITY.md.
package core

import (
	"fmt"
	"sort"
	"time"

	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/obs"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
	"crystalnet/internal/speaker"
	"crystalnet/internal/topo"
	"crystalnet/internal/vendors"
)

// Options tune the orchestrator.
type Options struct {
	// Seed makes the whole emulation reproducible.
	Seed int64
	// Backend selects the software bridge (§6.2: Linux bridge default).
	Backend phynet.BridgeBackend
	// DevicesPerVM / SpeakersPerVM are packing densities (§6.1, §8.4).
	DevicesPerVM, SpeakersPerVM int
	// VMCount, when positive, overrides the computed VM count for full
	// devices (the Figure 8 "DC/#VMs" experiments sweep this).
	VMCount int
	// StrawmanReload enables the §8.3 ablation: reloads tear down and
	// recreate interfaces instead of reusing the PhyNet layer.
	StrawmanReload bool
	// HealthInterval enables the §6.2 health/auto-recovery daemon when
	// positive.
	HealthInterval time.Duration
	// MTBF enables random VM failures with this mean time between failures
	// per VM (0 disables them). Failure timers are background (daemon)
	// events: they never keep a convergence wait alive.
	MTBF time.Duration
	// Retry supervises cloud boot operations (per-attempt deadline,
	// exponential backoff, replacement-VM fallback). The zero value keeps
	// the legacy unsupervised behavior byte-for-byte.
	Retry cloud.RetryPolicy
	// RecoveryDeadline bounds each VM-recovery episode when positive: an
	// episode that has not completed within the deadline (including across
	// re-failures) is abandoned into degraded mode instead of wedging the
	// emulation. 0 means unbounded.
	RecoveryDeadline time.Duration
	// Clouds spreads the emulation's VMs across this many clouds (§3.1:
	// CrystalNet can simultaneously use multiple public and private
	// clouds); frames between clouds cross the Internet overlay. 0/1 keeps
	// everything in one cloud.
	Clouds int
	// Credential is injected into every config (§6.1); defaults to
	// "crystalnet-ops".
	Credential string
	// Rec enables the Monitor plane's deterministic tracer: spans, events
	// and metrics stamped with engine virtual time (docs/OBSERVABILITY.md).
	// nil disables tracing at zero cost. The recorder is bound to the
	// orchestrator's engine and rides through checkpoint/fork.
	Rec *obs.Recorder
	// Shards, when positive, runs convergence sharded (DESIGN.md §10): the
	// device population is partitioned into one domain per VM, each with a
	// private engine, and domains drain in parallel on up to Shards worker
	// goroutines at every virtual instant. The value is the worker count
	// only — the domain partition is fixed by the topology, so the
	// emulation's observable output is byte-identical for every positive
	// Shards value (1 is the serial reference schedule). 0 keeps the classic
	// single-engine schedule, which orders events differently (per-domain
	// RNG streams) and therefore is not comparable byte-for-byte.
	Shards int
	// RIBBudget, when positive, sets the process-wide Adj-RIB memory budget
	// in bytes (rib.SetBudget): a convergence drive that ends over budget
	// compacts every router's RIB storage.
	RIBBudget int64
}

func (o *Options) defaults() {
	if o.DevicesPerVM <= 0 {
		o.DevicesPerVM = boundary.DevicesPerVM
	}
	if o.SpeakersPerVM <= 0 {
		o.SpeakersPerVM = boundary.SpeakersPerVM
	}
	if o.Credential == "" {
		o.Credential = "crystalnet-ops"
	}
}

// Orchestrator runs on a single machine and drives everything through the
// simulation engine and the cloud provider.
type Orchestrator struct {
	Eng   *sim.Engine
	Cloud *cloud.Provider
	opts  Options
}

// New creates an orchestrator with a fresh engine and cloud.
func New(opts Options) *Orchestrator {
	opts.defaults()
	if opts.RIBBudget > 0 {
		rib.SetBudget(opts.RIBBudget)
	}
	eng := sim.NewEngine(opts.Seed)
	eng.SetRecorder(opts.Rec)
	c := cloud.NewProvider(eng)
	c.MTBF = opts.MTBF
	c.Retry = opts.Retry
	return &Orchestrator{Eng: eng, Cloud: c, opts: opts}
}

// Options returns the active options.
func (o *Orchestrator) Options() Options { return o.opts }

// PrepareInput is everything Prepare gathers from production services
// (§6.1): the topology snapshot, the devices operators must emulate,
// production configurations, and boundary route snapshots.
type PrepareInput struct {
	Network *topo.Network
	// MustEmulate lists required devices; Algorithm 1 grows it to a safe
	// boundary. Empty means "emulate every non-external device".
	MustEmulate []string
	// Emulate, when non-empty, is the exact emulated set — no Algorithm 1
	// growth. It is how solver output (boundary.Solve) is executed: the
	// plan is taken as-is and certified via Prop 5.2/5.3 with the Lemma
	// 5.1 fallback on scenario-scale topologies. Mutually exclusive with
	// MustEmulate.
	Emulate []string
	// Configs are production configurations; nil generates them (the
	// production pipeline's generator, §2).
	Configs map[string]*config.DeviceConfig
	// Images pins vendor images by vendor name; missing vendors use the
	// production default.
	Images map[string]firmware.VendorImage
	// BoundaryRoutes are the recorded announcements per speaker device;
	// nil synthesizes a snapshot (default route plus every excluded
	// device's originated prefixes).
	BoundaryRoutes map[string][]speaker.Announcement
	// Hardware names emulated devices that are real switches plugged in
	// through a fanout server (§4.1): they get no cloud VM, and their links
	// traverse the Internet overlay.
	Hardware []string
}

// exactLemmaLimit caps the topology size on which Prepare certifies an
// exact emulated set with the exponential Lemma 5.1 walk (matching the
// solver's default), so Prepare and boundary.Solve agree on safety.
const exactLemmaLimit = 32

// vmAssignment places one device on one VM of a vendor group.
type vmAssignment struct {
	group string
	index int // VM index within the group
}

// Preparation is Prepare's output and Mockup's input.
type Preparation struct {
	Input   PrepareInput
	Plan    *boundary.Plan
	Configs map[string]*config.DeviceConfig
	Images  map[string]firmware.VendorImage // per device name
	Routes  map[string][]speaker.Announcement

	// VM planning: per vendor-group VM lists and device placements.
	groupVMs    map[string][]*cloud.VM
	assignments map[string]vmAssignment
	// hardware devices live on the fanout host instead of a VM.
	hardware map[string]bool
	// SafetyErr records why the boundary could not be certified safe (nil
	// when Prop 5.2 or 5.3 holds). Mockup refuses unsafe boundaries unless
	// forced.
	SafetyErr error
}

// VMs returns all spawned VMs.
func (p *Preparation) VMs() []*cloud.VM {
	var out []*cloud.VM
	keys := make([]string, 0, len(p.groupVMs))
	for g := range p.groupVMs {
		keys = append(keys, g)
	}
	sort.Strings(keys)
	for _, g := range keys {
		out = append(out, p.groupVMs[g]...)
	}
	return out
}

// Prepare executes the paper's Prepare API: boundary computation, config
// gathering, route snapshots and VM spawning.
func (o *Orchestrator) Prepare(in PrepareInput) (*Preparation, error) {
	if in.Network == nil {
		return nil, fmt.Errorf("core: no topology")
	}
	// 1. Compute the emulated set.
	var emulated map[string]bool
	exact := len(in.Emulate) > 0
	switch {
	case exact && len(in.MustEmulate) > 0:
		return nil, fmt.Errorf("core: Emulate and MustEmulate are mutually exclusive")
	case exact:
		emulated = map[string]bool{}
		for _, name := range in.Emulate {
			d := in.Network.Device(name)
			if d == nil {
				return nil, fmt.Errorf("core: unknown emulate device %q", name)
			}
			if d.Layer == topo.LayerExternal {
				return nil, fmt.Errorf("core: emulate device %q is external; external devices are replaced by speakers", name)
			}
			emulated[name] = true
		}
	case len(in.MustEmulate) == 0:
		emulated = map[string]bool{}
		for _, d := range in.Network.Devices() {
			if d.Layer != topo.LayerExternal {
				emulated[d.Name] = true
			}
		}
	default:
		var err error
		emulated, err = boundary.FindSafeDCBoundary(in.Network, in.MustEmulate)
		if err != nil {
			return nil, err
		}
	}
	plan, err := boundary.BuildPlan(in.Network, emulated)
	if err != nil {
		return nil, err
	}

	prep := &Preparation{
		Input: in, Plan: plan,
		Configs:  map[string]*config.DeviceConfig{},
		Images:   map[string]firmware.VendorImage{},
		Routes:   map[string][]speaker.Announcement{},
		hardware: map[string]bool{},
	}
	if exact {
		// Exact sets come from the solver, which may have certified them
		// via the Lemma 5.1 walk rather than the propositions; re-certify
		// the same way so a solver-planned fabric is not rejected.
		_, prep.SafetyErr = plan.Certify(exactLemmaLimit)
	} else {
		prep.SafetyErr = plan.CheckSafe()
	}
	for _, name := range in.Hardware {
		if !emulated[name] {
			return nil, fmt.Errorf("core: hardware device %q is not in the emulated set", name)
		}
		prep.hardware[name] = true
	}

	// 2. Configurations: production snapshot or generated, with the
	// unified credential injected (§6.1 preprocessing).
	for name := range emulated {
		var cfg *config.DeviceConfig
		if in.Configs != nil && in.Configs[name] != nil {
			cfg = in.Configs[name].Clone()
		} else {
			cfg = config.GenerateDevice(in.Network.MustDevice(name))
		}
		cfg.Credential = o.opts.Credential
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		prep.Configs[name] = cfg
		img, err := o.imageFor(in, in.Network.MustDevice(name).Vendor)
		if err != nil {
			return nil, err
		}
		if prep.hardware[name] {
			img = firmware.AsHardware(img)
		}
		prep.Images[name] = img
	}
	// Speakers run the speaker image with a generated config (sessions to
	// their boundary neighbors only).
	for _, name := range plan.Speakers {
		d := in.Network.MustDevice(name)
		cfg := config.GenerateDevice(d)
		// Drop sessions toward non-emulated neighbors: a speaker only holds
		// the boundary-facing sessions alive.
		var kept []config.BGPNeighbor
		for _, nb := range cfg.Neighbors {
			if owner := o.deviceByIP(in.Network, nb.IP); owner != "" && emulated[owner] {
				kept = append(kept, nb)
			}
		}
		cfg.Neighbors = kept
		cfg.Credential = o.opts.Credential
		prep.Configs[name] = cfg
		prep.Images[name] = vendors.MustGet(vendors.Speaker, "3.4.17")
		prep.Routes[name] = o.boundaryRoutes(in, plan, d)
	}

	// 3. VM planning and spawning (§6.2 vendor-group anti-affinity).
	o.planVMs(prep)
	if rec := o.Eng.Recorder(); rec != nil {
		rec.Event("phase", "prepare",
			obs.Attr{K: "emulated", V: fmt.Sprint(plan.Scale().TotalEmulated)},
			obs.Attr{K: "speakers", V: fmt.Sprint(len(plan.Speakers))},
			obs.Attr{K: "vms", V: fmt.Sprint(len(prep.VMs()))})
		rec.Gauge("vms", "").Set(float64(len(prep.VMs())))
	}
	return prep, nil
}

func (o *Orchestrator) imageFor(in PrepareInput, vendor string) (firmware.VendorImage, error) {
	if in.Images != nil {
		if img, ok := in.Images[vendor]; ok {
			return img, nil
		}
	}
	return vendors.Default(vendor)
}

// deviceByIP finds the device owning an interface address.
func (o *Orchestrator) deviceByIP(n *topo.Network, ip netpkt.IP) string {
	for _, d := range n.Devices() {
		for _, i := range d.Interfaces {
			if i.Addr.Addr == ip {
				return d.Name
			}
		}
	}
	return ""
}

// boundaryRoutes returns the announcements for one speaker: recorded
// snapshots when provided, else a synthesized view of the outside world — a
// default route plus the originated prefixes of the excluded devices in the
// speaker's own external component. The component scoping matters: in the
// real network a speaker only ever announced what was reachable *through*
// it, and announcing more would let traffic short-circuit into the wrong
// region of the boundary.
func (o *Orchestrator) boundaryRoutes(in PrepareInput, plan *boundary.Plan, sp *topo.Device) []speaker.Announcement {
	if in.BoundaryRoutes != nil {
		return in.BoundaryRoutes[sp.Name]
	}
	anns := []speaker.Announcement{{
		Prefix: netpkt.Prefix{Addr: 0, Len: 0},
		Path:   []uint32{sp.ASN},
	}}
	// Flood the non-emulated graph from the speaker to find the excluded
	// devices it fronts.
	visited := map[string]bool{sp.Name: true}
	queue := []*topo.Device{sp}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range cur.Neighbors() {
			if visited[nb.Name] || plan.Emulated[nb.Name] {
				continue
			}
			visited[nb.Name] = true
			queue = append(queue, nb)
			for _, p := range nb.Originated {
				anns = append(anns, speaker.Announcement{
					Prefix: p,
					Path:   []uint32{sp.ASN, nb.ASN},
				})
			}
		}
	}
	return anns
}

// planVMs groups devices by vendor, sizes VM groups, spawns VMs and
// assigns devices round-robin.
func (o *Orchestrator) planVMs(prep *Preparation) {
	plan := prep.Plan
	prep.groupVMs = map[string][]*cloud.VM{}
	prep.assignments = map[string]vmAssignment{}

	byVendor := map[string][]string{}
	emulatedNames := append(append([]string{}, plan.Internal...), plan.Boundary...)
	sort.Strings(emulatedNames)
	for _, name := range emulatedNames {
		if prep.hardware[name] {
			continue // real switches bring their own silicon
		}
		v := prep.Images[name].Name
		byVendor[v] = append(byVendor[v], name)
	}

	vendorsSorted := make([]string, 0, len(byVendor))
	for v := range byVendor {
		vendorsSorted = append(vendorsSorted, v)
	}
	sort.Strings(vendorsSorted)

	// Distribute an explicit VMCount across vendor groups proportionally.
	totalDevices := len(emulatedNames)
	for _, v := range vendorsSorted {
		names := byVendor[v]
		count := (len(names) + o.opts.DevicesPerVM - 1) / o.opts.DevicesPerVM
		if o.opts.VMCount > 0 && totalDevices > 0 {
			count = o.opts.VMCount * len(names) / totalDevices
			if count < 1 {
				count = 1
			}
		}
		sku := cloud.SKUStandard
		if img, err := vendors.Default(v); err == nil && img.Kind == firmware.VMImage {
			sku = cloud.SKUNested // §4.1: VM-based devices need nested virt
		}
		vms := o.Cloud.Provision(count, sku, v, nil)
		prep.groupVMs[v] = vms
		for i, name := range names {
			prep.assignments[name] = vmAssignment{group: v, index: i % count}
		}
	}
	// Speakers: lightweight, many per VM (§8.4).
	if len(plan.Speakers) > 0 {
		count := (len(plan.Speakers) + o.opts.SpeakersPerVM - 1) / o.opts.SpeakersPerVM
		vms := o.Cloud.Provision(count, cloud.SKUStandard, "speaker", nil)
		prep.groupVMs["speaker"] = vms
		for i, name := range plan.Speakers {
			prep.assignments[name] = vmAssignment{group: "speaker", index: i % count}
		}
	}
}

// Destroy releases every VM of a preparation (the Destroy API).
func (o *Orchestrator) Destroy(prep *Preparation) {
	for _, vm := range prep.VMs() {
		o.Cloud.Deprovision(vm)
	}
}
