package core

import (
	"strings"
	"testing"
	"time"

	"crystalnet/internal/cloud"
	"crystalnet/internal/firmware"
)

func alertContaining(em *Emulation, substr string) int {
	n := 0
	for _, a := range em.Alerts {
		if strings.Contains(a, substr) {
			n++
		}
	}
	return n
}

// TestDoubleFailureDuringRecovery injects a second fault while the first
// recovery is still rebooting the VM. The old code silently dropped it
// (Fail no-ops on a non-Running VM); now it is queued, fires the moment
// the VM comes back, and the recovery state machine re-arms the episode
// instead of double-decrementing its pending count.
func TestDoubleFailureDuringRecovery(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 5})
	defer o.Destroy(em.prep)

	out, err := em.InjectVMFailure("tor-p0-0")
	if err != nil || out != FaultFired {
		t.Fatalf("first fault: %v, %v; want fired", out, err)
	}
	// The VM is already rebooting; the second fault must queue, not vanish.
	out, err = em.InjectVMFailure("tor-p0-0")
	if err != nil || out != FaultQueued {
		t.Fatalf("second fault: %v, %v; want queued", out, err)
	}
	if em.FaultsPending() != 1 {
		t.Fatalf("FaultsPending = %d, want 1", em.FaultsPending())
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if em.FaultsPending() != 0 {
		t.Fatalf("FaultsPending = %d after convergence, want 0 (fault was lost)", em.FaultsPending())
	}
	if n := alertContaining(em, "failed again during recovery"); n != 1 {
		t.Fatalf("re-failure alerts = %d, want 1: %v", n, em.Alerts)
	}
	// One merged episode: the re-failure extends the first recovery rather
	// than fabricating a second entry.
	if recs := em.Recoveries(); len(recs) != 1 {
		t.Fatalf("recoveries = %v, want one merged episode", recs)
	}
	if alertContaining(em, "after 1 re-failures") != 1 {
		t.Fatalf("recovery alert does not record the re-failure: %v", em.Alerts)
	}
	if len(em.recovering) != 0 {
		t.Fatalf("recovering map not drained: %d entries", len(em.recovering))
	}
	if em.Devices["tor-p0-0"].State() != firmware.DeviceRunning {
		t.Fatalf("device state %v after double-failure recovery", em.Devices["tor-p0-0"].State())
	}
	if em.Devices["tor-p0-0"].PullStates().Established != 2 {
		t.Fatal("sessions not re-established after double-failure recovery")
	}
}

// TestFailWhileProvisioningQueues lands the second fault mid-boot-window
// (the VM is Provisioning, not just Failed) and checks nothing is lost.
func TestFailWhileProvisioningQueues(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 7})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("leaf-p0-0"); err != nil {
		t.Fatal(err)
	}
	vm := em.vmOf["leaf-p0-0"]
	o.Eng.RunFor(10 * time.Second) // deep inside the 45-75s reboot window
	if vm.State() != cloud.VMProvisioning {
		t.Fatalf("VM state %v mid-reboot, want provisioning", vm.State())
	}
	out, err := em.InjectVMFailure("leaf-p0-0")
	if err != nil || out != FaultQueued {
		t.Fatalf("fault on provisioning VM: %v, %v; want queued", out, err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if em.FaultsPending() != 0 {
		t.Fatalf("FaultsPending = %d, want 0", em.FaultsPending())
	}
	if em.Devices["leaf-p0-0"].State() != firmware.DeviceRunning {
		t.Fatal("device not running after queued fault recovered")
	}
	if len(em.Recoveries()) == 0 {
		t.Fatal("no recovery recorded")
	}
}

// TestDeprovisionMidRebootAbandonsRecovery kills the VM for good during
// its recovery boot window. The old code left the devices crashed forever
// with no alert; now the cloud's abort signal abandons the episode into
// degraded mode and convergence still completes.
func TestDeprovisionMidRebootAbandonsRecovery(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 3})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("tor-p0-0"); err != nil {
		t.Fatal(err)
	}
	vm := em.vmOf["tor-p0-0"]
	o.Eng.RunFor(10 * time.Second)
	o.Cloud.Deprovision(vm)
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err) // must converge, not wedge on a boot that never comes
	}
	if len(em.Degraded()) != 1 {
		t.Fatalf("Degraded = %v, want one abandoned episode", em.Degraded())
	}
	if !strings.Contains(em.Degraded()[0], "tor-p0-0") {
		t.Fatalf("degraded summary does not name the device: %q", em.Degraded()[0])
	}
	if alertContaining(em, "degraded") == 0 {
		t.Fatalf("no degraded-mode alert: %v", em.Alerts)
	}
	if len(em.Recoveries()) != 0 {
		t.Fatalf("recoveries = %v for an abandoned episode, want none", em.Recoveries())
	}
	// The devices are honestly crashed, and a further fault on the dead VM
	// is a distinct, visible error.
	if em.Devices["tor-p0-0"].State() != firmware.DeviceCrashed {
		t.Fatal("device resurrected without a VM")
	}
	if _, err := em.InjectVMFailure("tor-p0-0"); err == nil || !strings.Contains(err.Error(), "deprovisioned") {
		t.Fatalf("fault on deprovisioned VM: %v, want deprovisioned error", err)
	}
}

// TestRecoveryDeadlineDegradedMode bounds an episode with a deadline far
// shorter than any VM reboot: the episode is abandoned at the deadline and
// the late boot cannot resurrect it (its epoch is stale).
func TestRecoveryDeadlineDegradedMode(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 5, RecoveryDeadline: time.Second})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("tor-p0-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if len(em.Degraded()) != 1 || !strings.Contains(em.Degraded()[0], "deadline") {
		t.Fatalf("Degraded = %v, want one deadline-exceeded episode", em.Degraded())
	}
	if len(em.Recoveries()) != 0 {
		t.Fatalf("recoveries = %v, want none (episode abandoned)", em.Recoveries())
	}
	// The VM itself came back (the cloud reboot was never canceled), but
	// the abandoned episode must not have run its device resets.
	if vm := em.vmOf["tor-p0-0"]; vm.State() != cloud.VMRunning {
		t.Fatalf("VM state %v, want running", vm.State())
	}
	if em.Devices["tor-p0-0"].State() != firmware.DeviceCrashed {
		t.Fatal("stale recovery wave ran despite the abandoned episode")
	}
}

// TestRecoveryDeadlineGenerousCompletes checks the deadline is inert when
// recovery beats it: same seed as TestVMFailureRecovery, same outcome.
func TestRecoveryDeadlineGenerousCompletes(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 2, RecoveryDeadline: 10 * time.Minute})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("tor-p0-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if len(em.Degraded()) != 0 {
		t.Fatalf("Degraded = %v under a generous deadline", em.Degraded())
	}
	if len(em.Recoveries()) != 1 {
		t.Fatalf("recoveries = %v, want 1", em.Recoveries())
	}
	if em.Devices["tor-p0-0"].State() != firmware.DeviceRunning {
		t.Fatal("device not recovered")
	}
}

// TestMTBFConvergesWithDaemonTimers is the daemon-event contract at the
// core layer: with random failures armed, RunUntilConverged must still
// reach quiescence (the failure timers stay queued as daemons).
func TestMTBFConvergesWithDaemonTimers(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 11, MTBF: 6 * time.Hour})
	defer o.Destroy(em.prep)
	if o.Eng.PendingDaemons() == 0 {
		t.Fatal("no daemon failure timers armed despite MTBF")
	}
	if o.Eng.Pending() != o.Eng.PendingDaemons() {
		t.Fatalf("converged with %d non-daemon events pending", o.Eng.Pending()-o.Eng.PendingDaemons())
	}
	for _, name := range []string{"tor-p0-0", "leaf-p0-0"} {
		if em.Devices[name].State() != firmware.DeviceRunning {
			t.Fatalf("%s not running after converge with MTBF armed", name)
		}
	}
}

// TestSupervisedMockupConverges turns the retry layer on for the initial
// mockup with a deadline tight enough to force retries and replacements on
// some VMs, and checks the emulation still converges with every device
// running — waiters and placement follow replacements transparently.
func TestSupervisedMockupConverges(t *testing.T) {
	for seed := int64(1); seed <= 16; seed++ {
		o, em := fullEmulation(t, Options{
			Seed:  seed,
			Retry: cloud.RetryPolicy{MaxAttempts: 2, BootDeadline: 50 * time.Second},
		})
		replaced := alertContaining(em, "replaced by")
		for name, d := range em.Devices {
			if d.State() != firmware.DeviceRunning {
				t.Fatalf("seed %d: %s not running (replacements: %d)", seed, name, replaced)
			}
		}
		o.Destroy(em.prep)
		if replaced > 0 {
			return // exercised the replacement path end-to-end
		}
	}
	t.Fatal("no seed in 1..16 forced a VM replacement during mockup; tighten the deadline")
}

// TestLostFaultAlertedAtClear checks a queued fault that can never fire
// (its VM died for good) is loudly surfaced at teardown instead of
// evaporating.
func TestLostFaultAlertedAtClear(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 3})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("tor-p0-0"); err != nil {
		t.Fatal(err)
	}
	if out, err := em.InjectVMFailure("tor-p0-0"); err != nil || out != FaultQueued {
		t.Fatalf("second fault: %v, %v", out, err)
	}
	vm := em.vmOf["tor-p0-0"]
	o.Eng.RunFor(10 * time.Second)
	o.Cloud.Deprovision(vm) // the queued fault's VM never runs again
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if em.FaultsPending() != 1 {
		t.Fatalf("FaultsPending = %d, want 1 (fault can never fire)", em.FaultsPending())
	}
	em.Clear(nil)
	if alertContaining(em, "never fired") != 1 {
		t.Fatalf("no lost-fault alert at Clear: %v", em.Alerts)
	}
}

// TestLinkAlertsDeduped holds a link down across many health ticks: one
// down alert, one restored alert, bounded Alerts growth — not one alert
// per tick as before.
func TestLinkAlertsDeduped(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 1, HealthInterval: 30 * time.Second})
	defer o.Destroy(em.prep)
	em.StartHealthMonitor()

	tor := em.prep.Plan.Network.MustDevice("tor-p0-0")
	intf := tor.Interfaces[0]
	peer := intf.Peer
	if err := em.SetLink("tor-p0-0", intf.Name, peer.Device.Name, peer.Name, false); err != nil {
		t.Fatal(err)
	}
	before := len(em.Alerts)
	o.Eng.RunFor(time.Hour) // 120 ticks observe the same down link
	down := 0
	for _, a := range em.Alerts[before:] {
		if strings.Contains(a, "down") {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("down alerts = %d over 120 ticks, want 1 (deduped)", down)
	}
	if err := em.SetLink("tor-p0-0", intf.Name, peer.Device.Name, peer.Name, true); err != nil {
		t.Fatal(err)
	}
	o.Eng.RunFor(2 * time.Minute)
	if alertContaining(em, "restored (down") != 1 {
		t.Fatalf("no restored alert: %v", em.Alerts[before:])
	}
	if grown := len(em.Alerts) - before; grown > 5 {
		t.Fatalf("Alerts grew by %d during one link flap, want bounded", grown)
	}
}

// TestSpeakerVMRecoveryReinjectsRoutes pins the speaker-recovery bug: a
// failure of the VM hosting a boundary speaker must replay the speaker's
// recorded announcements after the reboot, or every WAN route it stands in
// for silently vanishes from the fabric for the rest of the run.
func TestSpeakerVMRecoveryReinjectsRoutes(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 4})
	defer o.Destroy(em.prep)

	spk := em.prep.Plan.Speakers[0]
	if em.Speakers[spk] == nil {
		t.Fatalf("no speaker wrapper for %s", spk)
	}
	base := em.Save()

	if _, err := em.InjectVMFailure(spk); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	diffs := em.DiffAgainst(base)
	total := 0
	for _, d := range diffs {
		total += len(d)
	}
	if total != 0 {
		t.Fatalf("%d FIB differences after speaker VM recovery (recorded routes not re-injected): %v",
			total, diffs)
	}
}
