package core

import (
	"reflect"
	"testing"
	"time"

	"crystalnet/internal/firmware"
	"crystalnet/internal/parallel"
)

func TestCheckpointRequiresQuiescence(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 1})
	o.Eng.After(time.Hour, func() {})
	if _, err := em.Checkpoint(); err == nil {
		t.Fatal("checkpoint with pending events succeeded")
	}
	o.Eng.Run(0)
	snap, err := em.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if snap.TakenAt != o.Eng.Now() {
		t.Fatalf("TakenAt = %s, want %s", snap.TakenAt, o.Eng.Now())
	}
	em.Clear(nil)
	o.Eng.Run(0)
	if _, err := em.Checkpoint(); err == nil {
		t.Fatal("checkpoint of cleared emulation succeeded")
	}
}

// cutFirstUplink downs tor-p0-0's first uplink and converges — the same
// operation applied to two emulations that should behave identically.
func cutFirstUplink(t *testing.T, em *Emulation) {
	t.Helper()
	n := em.Network()
	intf := n.MustDevice("tor-p0-0").Interfaces[0]
	peer := intf.Peer
	if err := em.SetLink("tor-p0-0", intf.Name, peer.Device.Name, peer.Name, false); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
}

func TestForkMatchesFreshRun(t *testing.T) {
	// A forked run and a fresh same-seed run must be indistinguishable:
	// same virtual clock, same fired counts, same FIBs after the same op.
	_, fresh := fullEmulation(t, Options{Seed: 7})
	o, parent := fullEmulation(t, Options{Seed: 7})
	snap, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := o.Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	fe := forked.Orchestrator().Eng
	if fe.Now() != o.Eng.Now() || fe.Fired() != o.Eng.Fired() {
		t.Fatalf("forked engine now=%s fired=%d, want now=%s fired=%d",
			fe.Now(), fe.Fired(), o.Eng.Now(), o.Eng.Fired())
	}
	if !reflect.DeepEqual(forked.PullFIBs(), parent.PullFIBs()) {
		t.Fatal("forked FIBs differ from parent at snapshot point")
	}

	cutFirstUplink(t, fresh)
	cutFirstUplink(t, forked)

	if fe.Now() != fresh.Orchestrator().Eng.Now() {
		t.Fatalf("virtual clocks diverged after op: forked %s, fresh %s",
			fe.Now(), fresh.Orchestrator().Eng.Now())
	}
	if fe.Fired() != fresh.Orchestrator().Eng.Fired() {
		t.Fatalf("fired counts diverged after op: forked %d, fresh %d",
			fe.Fired(), fresh.Orchestrator().Eng.Fired())
	}
	if !reflect.DeepEqual(forked.PullFIBs(), fresh.PullFIBs()) {
		t.Fatal("forked FIBs differ from fresh run after identical op")
	}
	if !reflect.DeepEqual(forked.PullStates(), fresh.PullStates()) {
		t.Fatal("forked device stats differ from fresh run after identical op")
	}
	// The parent was never touched by the fork's activity.
	if got := parent.Devices["tor-p0-0"].PullStates().Established; got != 2 {
		t.Fatalf("parent sessions = %d after fork ran a failover, want 2", got)
	}
}

func TestForkIsDeepCopy(t *testing.T) {
	o, parent := fullEmulation(t, Options{Seed: 3})
	snap, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := o.Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	for name, d := range forked.Devices {
		if d == parent.Devices[name] {
			t.Fatalf("device %s shared with parent", name)
		}
	}
	for name, ct := range forked.containers {
		if ct == parent.containers[name] {
			t.Fatalf("container %s shared with parent", name)
		}
	}
	for name, vm := range forked.vmOf {
		if vm == parent.vmOf[name] {
			t.Fatalf("VM of %s shared with parent", name)
		}
	}
	if forked.Fabric == parent.Fabric || forked.orch == parent.orch || forked.orch.Eng == parent.orch.Eng {
		t.Fatal("fabric/orchestrator/engine shared with parent")
	}
	// Heavy immutable state is shared copy-on-write.
	if forked.Network() != parent.Network() {
		t.Fatal("topology should be shared, not copied")
	}
	for name, cfg := range forked.prep.Configs {
		if cfg != parent.prep.Configs[name] {
			t.Fatalf("config %s copied, want shared pointer", name)
		}
	}
}

func TestClearAfterForkLeavesParentUntouched(t *testing.T) {
	o, parent := fullEmulation(t, Options{Seed: 5})
	snap, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forked, err := o.Fork(snap)
	if err != nil {
		t.Fatal(err)
	}
	parentNow := o.Eng.Now()
	parentFIBs := parent.PullFIBs()

	done := false
	forked.Clear(func() { done = true })
	forked.Orchestrator().Eng.Run(0)
	if !done || forked.ClearedAt == 0 {
		t.Fatal("forked clear did not complete")
	}
	for name, d := range forked.Devices {
		if d.State() != firmware.DeviceStopped {
			t.Fatalf("forked %s not stopped after clear", name)
		}
	}

	// The parent saw none of it: clock untouched, devices running,
	// containers attached, link fabric intact, VMs still up.
	if o.Eng.Now() != parentNow || o.Eng.Pending() != 0 {
		t.Fatalf("parent engine advanced by forked clear: now=%s pending=%d", o.Eng.Now(), o.Eng.Pending())
	}
	for name, d := range parent.Devices {
		if d.State() != firmware.DeviceRunning {
			t.Fatalf("parent %s state %v after forked clear", name, d.State())
		}
	}
	for name, ct := range parent.containers {
		if !ct.Attached() {
			t.Fatalf("parent container %s detached by forked clear", name)
		}
		if parent.Fabric.Host(ct.Host.Name).Container(name) != ct {
			t.Fatalf("parent container %s removed from its host", name)
		}
	}
	for k, vl := range parent.vlinks {
		if !vl.Up() {
			t.Fatalf("parent link %v downed by forked clear", k)
		}
	}
	if got := o.Cloud.Running(); got == 0 {
		t.Fatal("parent VMs stopped by forked clear")
	}
	if !reflect.DeepEqual(parent.PullFIBs(), parentFIBs) {
		t.Fatal("parent FIBs changed by forked clear")
	}
}

func TestConcurrentForksIndependent(t *testing.T) {
	// N forks of one snapshot run concurrently (the chaos-campaign shape);
	// go test -race over this package is part of scripts/check.sh.
	o, parent := fullEmulation(t, Options{Seed: 9})
	snap, err := parent.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		established int
		now         string
	}
	results := parallel.Map(4, 4, func(i int) result {
		forked, err := o.Fork(snap)
		if err != nil {
			t.Error(err)
			return result{}
		}
		cutFirstUplink(t, forked)
		return result{
			established: forked.Devices["tor-p0-0"].PullStates().Established,
			now:         forked.Orchestrator().Eng.Now().String(),
		}
	})
	for i, r := range results {
		if r != results[0] {
			t.Fatalf("fork %d diverged: %+v vs %+v", i, r, results[0])
		}
		if r.established != 1 {
			t.Fatalf("fork %d established = %d after uplink cut, want 1", i, r.established)
		}
	}
}
