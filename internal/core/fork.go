package core

import (
	"fmt"
	"sort"

	"crystalnet/internal/checkpoint"
	"crystalnet/internal/cloud"
	"crystalnet/internal/firmware"
	"crystalnet/internal/phynet"
	"crystalnet/internal/sim"
	"crystalnet/internal/speaker"
)

// Checkpoint captures the emulation at quiescence so it can be forked.
//
// The snapshot itself is cheap: it records the engine's serializable state
// and freezes a reference to this emulation; the deep copy happens in
// Orchestrator.Fork. Until every intended fork has been taken, the parent
// emulation must not be advanced, reconfigured or cleared — forks read it
// as an immutable baseline.
//
// It fails unless the event queue is empty (RunUntilConverged drains it):
// pending events are closures that cannot be duplicated into a fork, and
// an empty queue is also what guarantees no protocol timer or boot
// callback is in flight.
func (em *Emulation) Checkpoint() (*checkpoint.Snapshot, error) {
	if em.cleared {
		return nil, fmt.Errorf("core: cannot checkpoint a cleared emulation")
	}
	if em.vmsPending > 0 || em.buildsPending > 0 {
		return nil, fmt.Errorf("core: cannot checkpoint before mockup completes (%d VMs, %d builds pending)",
			em.vmsPending, em.buildsPending)
	}
	st, err := em.orch.Eng.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint requires a quiescent emulation: %w", err)
	}
	var shardStates []sim.EngineState
	if em.shards != nil {
		if shardStates, err = em.shards.SnapshotDomains(); err != nil {
			return nil, fmt.Errorf("core: checkpoint requires a quiescent emulation: %w", err)
		}
	}
	// Seal the BGP attribute-fingerprint memos now, single-threaded: after
	// this every shared *Attrs is fully immutable, so concurrent forks can
	// alias the parent's attribute objects instead of cloning them.
	for _, d := range em.Devices {
		if r := d.BGP(); r != nil {
			r.SealAttrs()
		}
	}
	return &checkpoint.Snapshot{TakenAt: st.Now, Engine: st, Shards: shardStates, Origin: em}, nil
}

// Orchestrator returns the orchestrator driving this emulation. Forked
// emulations own a private orchestrator (engine + cloud), which is how
// they run concurrently with their parent and siblings.
func (em *Emulation) Orchestrator() *Orchestrator { return em.orch }

// Fork materializes an independent emulation from a snapshot taken on this
// orchestrator: a fresh engine restored to the captured clock and RNG
// stream, plus deep copies of every piece of mutable state — cloud VMs,
// the phynet overlay, device firmware with its routing stacks, speakers,
// the management plane and telemetry counters. Heavy immutable structures
// (topology, parsed configs, BGP policies and path attributes' AS paths)
// are shared copy-on-write with the parent.
//
// Fork only reads the parent, so any number of forks can be taken from one
// snapshot concurrently. Each fork then behaves exactly as a fresh same-
// seed run would from the moment the snapshot was taken: identical event
// ordering, identical jitter draws, identical reports.
func (o *Orchestrator) Fork(snap *checkpoint.Snapshot) (*Emulation, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Invalidated() {
		return nil, fmt.Errorf("core: snapshot has been invalidated (its checkpoint was evicted or released)")
	}
	parent, ok := snap.Origin.(*Emulation)
	if !ok {
		return nil, fmt.Errorf("core: snapshot origin is not a core emulation")
	}
	if parent.orch != o {
		return nil, fmt.Errorf("core: snapshot belongs to a different orchestrator")
	}

	eng := sim.NewEngineFrom(snap.Engine)
	// The recorder forks with the engine, before any state that caches
	// metric handles (device firmware) is copied: the fork's trace starts
	// with everything recorded up to the snapshot and diverges from there,
	// exactly like the rest of the emulation.
	eng.SetRecorder(o.Eng.Recorder().Fork())
	cloudFork, vmMap := o.Cloud.Fork(eng)
	fabric, ifaceMap, ctMap := parent.Fabric.Fork(eng)

	em := &Emulation{
		orch: &Orchestrator{Eng: eng, Cloud: cloudFork, opts: o.opts},
		prep: parent.prep.fork(vmMap),

		Fabric:     fabric,
		Devices:    make(map[string]*firmware.Device, len(parent.Devices)),
		Speakers:   make(map[string]*speaker.Speaker, len(parent.Speakers)),
		Injector:   parent.Injector.Fork(eng),
		containers: make(map[string]*phynet.Container, len(parent.containers)),
		vmOf:       make(map[string]*cloud.VM, len(parent.vmOf)),
		vlinks:     make(map[linkKey]*phynet.VirtualLink, len(parent.vlinks)),

		MockupStart:    parent.MockupStart,
		NetworkReadyAt: parent.NetworkReadyAt,
		ClearedAt:      parent.ClearedAt,

		Alerts:       checkpoint.CloneSlice(parent.Alerts),
		recoveries:   checkpoint.CloneSlice(parent.recoveries),
		degraded:     checkpoint.CloneSlice(parent.degraded),
		phasesTraced: parent.phasesTraced,
		// The traffic matrix is all value-typed state, so the fork's copy
		// settles exactly as a fresh same-seed run would from here.
		traffic: parent.traffic.Fork(),

		// Quiescence guarantees no recovery episode is in flight (a pending
		// reboot or rebuild would be a queued event), so recovering starts
		// empty. Queued faults, however, can outlive quiescence — a fault
		// queued on a VM that never came back — and their *count* is carried
		// over for lost-fault accounting; the waiter closures themselves
		// cannot cross a fork (cloud.Fork documents this).
		recovering:    map[*cloud.VM]*vmRecovery{},
		pendingFaults: make(map[*cloud.VM]int, len(parent.pendingFaults)),
		linkDown:      make(map[linkKey]int, len(parent.linkDown)),
	}
	if parent.shards != nil {
		// Restore the domain ensemble before devices fork: each forked
		// device must be built on the engine owning its host's domain, with
		// that domain's captured clock and RNG stream.
		em.shards = sim.NewShardSetFrom(eng, snap.Shards, parent.shards.Workers())
		fabric.SetShards(em.shards)
	}
	for vm, n := range parent.pendingFaults {
		em.pendingFaults[vmMap[vm]] = n
	}
	for k, n := range parent.linkDown {
		em.linkDown[k] = n
	}
	for name, ct := range parent.containers {
		em.containers[name] = ctMap[ct]
	}
	for name, vm := range parent.vmOf {
		em.vmOf[name] = vmMap[vm]
	}
	for k, vl := range parent.vlinks {
		em.vlinks[k] = ifaceMap[vl.A].Link()
	}
	// Sorted for reproducible log/alert interleaving should a fork method
	// ever emit one; forking draws no events or randomness either way.
	names := make([]string, 0, len(parent.Devices))
	for name := range parent.Devices {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		d := parent.Devices[name]
		em.Devices[name] = d.Fork(em.deviceEng(name), fabric, em.containers[name], em.vmOf[name])
	}
	for name, sp := range parent.Speakers {
		em.Speakers[name] = sp.Fork(em.Devices[name])
	}
	em.Mgmt = parent.Mgmt.Fork(func(name string) *firmware.Device { return em.Devices[name] })
	cloudFork.OnFailure = em.onVMFailure
	cloudFork.OnReplace = em.onVMReplaced
	cloudFork.OnBootAborted = em.onBootAborted
	return em, nil
}

// fork deep-copies the preparation's mutable bookkeeping for a forked
// emulation, remapping VM placements through vmMap. The heavyweight values
// — topology, parsed configs, vendor images, recorded speaker routes — are
// shared: mutations go through pointer replacement (config reloads) or are
// additive on the copied containers (device attachment), never in-place.
func (p *Preparation) fork(vmMap map[*cloud.VM]*cloud.VM) *Preparation {
	c := &Preparation{
		Input:       p.Input,
		Configs:     checkpoint.CloneMap(p.Configs),
		Images:      checkpoint.CloneMap(p.Images),
		Routes:      checkpoint.CloneMap(p.Routes),
		assignments: checkpoint.CloneMap(p.assignments),
		hardware:    checkpoint.CloneMap(p.hardware),
		SafetyErr:   p.SafetyErr,
	}
	if p.Plan != nil {
		plan := *p.Plan
		plan.Emulated = checkpoint.CloneMap(p.Plan.Emulated)
		plan.Internal = checkpoint.CloneSlice(p.Plan.Internal)
		plan.Boundary = checkpoint.CloneSlice(p.Plan.Boundary)
		plan.Speakers = checkpoint.CloneSlice(p.Plan.Speakers)
		plan.Excluded = checkpoint.CloneSlice(p.Plan.Excluded)
		c.Plan = &plan
	}
	if p.groupVMs != nil {
		c.groupVMs = make(map[string][]*cloud.VM, len(p.groupVMs))
		for g, vms := range p.groupVMs {
			nv := make([]*cloud.VM, len(vms))
			for i, vm := range vms {
				nv[i] = vmMap[vm]
			}
			c.groupVMs[g] = nv
		}
	}
	return c
}
