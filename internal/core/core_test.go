package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"crystalnet/internal/bgp"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/netpkt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/telemetry"
	"crystalnet/internal/topo"
	"crystalnet/internal/vendors"
)

// miniSpec is a small Clos for orchestration tests.
func miniSpec() topo.ClosSpec {
	return topo.ClosSpec{
		Name: "mini", Pods: 2, ToRsPerPod: 2, LeavesPerPod: 2,
		SpineGroups: 1, SpinesPerPlane: 2, BordersPerGroup: 2,
		PrefixesPerToR: 1,
	}
}

// miniNet generates the fabric plus WAN externals above the borders.
func miniNet() *topo.Network {
	spec := miniSpec()
	n := topo.GenerateClos(spec)
	topo.AttachWAN(n, spec, 2)
	return n
}

// fastImages returns quick-boot images so tests converge in seconds of
// virtual time.
func fastImages() map[string]firmware.VendorImage {
	fast := func(name string) firmware.VendorImage {
		return firmware.VendorImage{
			Name: name, Version: "t", Kind: firmware.ContainerImage,
			BootFixed: 5 * time.Second, BootJitter: 5 * time.Second, BootWork: 2,
			MsgWork: 0.0001, RouteWork: 0.0002,
		}
	}
	return map[string]firmware.VendorImage{
		"ctnra": fast("ctnra"),
		"ctnrb": fast("ctnrb"),
		"vma":   fast("vma"),
		"vmb":   fast("vmb"),
	}
}

func fullEmulation(t *testing.T, opts Options) (*Orchestrator, *Emulation) {
	t.Helper()
	o := New(opts)
	prep, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	return o, em
}

func TestPrepareFullNetwork(t *testing.T) {
	o := New(Options{Seed: 1})
	prep, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	// 14 fabric devices emulated; 2 WAN devices become speakers.
	if got := len(prep.Plan.Internal) + len(prep.Plan.Boundary); got != 14 {
		t.Fatalf("emulated = %d", got)
	}
	if len(prep.Plan.Speakers) != 2 {
		t.Fatalf("speakers = %v", prep.Plan.Speakers)
	}
	if prep.SafetyErr != nil {
		t.Fatalf("full fabric should be safe: %v", prep.SafetyErr)
	}
	// Configs exist for every emulated device and speaker, with the
	// unified credential.
	for name, cfg := range prep.Configs {
		if cfg.Credential != "crystalnet-ops" {
			t.Fatalf("%s: credential %q", name, cfg.Credential)
		}
	}
	// Speakers keep only boundary-facing sessions.
	for _, s := range prep.Plan.Speakers {
		for _, nb := range prep.Configs[s].Neighbors {
			if nb.RemoteAS != topo.BorderAS {
				t.Fatalf("speaker %s has session to AS %d", s, nb.RemoteAS)
			}
		}
	}
	// Synthesized boundary routes include a default route.
	for _, s := range prep.Plan.Speakers {
		if len(prep.Routes[s]) == 0 || prep.Routes[s][0].Prefix.Len != 0 {
			t.Fatalf("speaker %s routes = %v", s, prep.Routes[s])
		}
	}
	// VMs spawned: 14 devices @10/VM = 2 groups by vendor... at least 2,
	// plus 1 speaker VM.
	if len(prep.VMs()) < 3 {
		t.Fatalf("VMs = %d", len(prep.VMs()))
	}
	o.Destroy(prep)
}

func TestVendorAntiAffinity(t *testing.T) {
	o := New(Options{Seed: 1})
	prep, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	// No VM hosts devices of two different vendors (§6.2).
	vmVendors := map[int]map[string]bool{}
	for name, asg := range prep.assignments {
		vm := prep.groupVMs[asg.group][asg.index]
		if vmVendors[vm.ID] == nil {
			vmVendors[vm.ID] = map[string]bool{}
		}
		vmVendors[vm.ID][prep.Images[name].Name] = true
	}
	for id, vs := range vmVendors {
		if len(vs) != 1 {
			t.Fatalf("VM %d hosts multiple vendors: %v", id, vs)
		}
	}
}

func TestMockupConvergesEndToEnd(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	m := em.Metrics()
	if m.NetworkReady <= 0 || m.RouteReady <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Mockup != m.NetworkReady+m.RouteReady {
		t.Fatal("mockup != sum")
	}
	// All devices running and fully meshed.
	for name, st := range em.PullStates() {
		if st.State != firmware.DeviceRunning {
			t.Fatalf("%s state %v", name, st.State)
		}
	}
	// Every fabric device has a route to every ToR prefix AND a default
	// route from the speakers.
	fibs := em.PullFIBs()
	n := em.prep.Plan.Network
	for _, tor := range n.DevicesByLayer(topo.LayerToR) {
		for name := range fibs {
			if em.prep.Images[name].StaticSpeaker || name == tor.Name {
				continue
			}
			if _, ok := em.Devices[name].FIB().Lookup(tor.Originated[0].Addr + 1); !ok {
				t.Fatalf("%s missing route to %v", name, tor.Originated[0])
			}
		}
	}
	// Default route propagated from the WAN speakers to the ToRs.
	if _, ok := em.Devices["tor-p0-0"].FIB().Lookup(netpkt.MustParseIP("203.0.113.7")); !ok {
		t.Fatal("default route from speakers missing at ToR")
	}
}

func TestMockupRefusesUnsafeBoundary(t *testing.T) {
	// Hand-pick an unsafe emulated set: one leaf only (boundary devices =
	// that leaf; its pod sibling shares the AS; spines outside).
	o := New(Options{Seed: 1})
	n := miniNet()
	// Figure-7a-style: emulate the two pods' ToRs + leaves but no spines.
	var must []string
	for _, d := range n.Devices() {
		if d.Layer == topo.LayerToR || d.Layer == topo.LayerLeaf {
			must = append(must, d.Name)
		}
	}
	// Bypass Algorithm 1 (which would fix the boundary) by building the
	// input via configs: use Prepare with MustEmulate and then fake the
	// safety error — instead, build a direct plan through Prepare on a
	// custom emulated set is not exposed; so check SafetyErr path with a
	// degenerate topology: two same-AS borders emulated separately.
	prep, err := o.Prepare(PrepareInput{Network: n, MustEmulate: must, Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 grew it to include spines+borders; must be safe.
	if prep.SafetyErr != nil {
		t.Fatalf("algorithm 1 output unsafe: %v", prep.SafetyErr)
	}
}

func TestPartialEmulationOnePod(t *testing.T) {
	o := New(Options{Seed: 3})
	n := miniNet()
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	prep, err := o.Prepare(PrepareInput{Network: n, MustEmulate: must, Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	// Pod 1's leaves become speakers (spines' lower neighbors).
	if len(prep.Plan.Speakers) == 0 {
		t.Fatal("no speakers")
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	// Pod-0 ToR reaches pod-1 prefixes via the speakers' synthesized
	// announcements.
	p1 := n.MustDevice("tor-p1-0").Originated[0]
	if _, ok := em.Devices["tor-p0-0"].FIB().Lookup(p1.Addr + 1); !ok {
		t.Fatal("excluded-region prefix not announced by speakers")
	}
	// Far fewer devices than full emulation.
	if len(em.Devices) >= n.NumDevices() {
		t.Fatal("partial emulation did not shrink")
	}
}

func TestTelemetryThroughCore(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	dst := em.prep.Plan.Network.MustDevice("tor-p1-1").Originated[0]
	flow, err := em.InjectPackets("tor-p0-0", dataplane.PacketMeta{
		Src: em.Devices["tor-p0-0"].Config().Loopback.Addr, Dst: dst.Addr + 7,
		Proto: netpkt.ProtoUDP, SrcPort: 9999, DstPort: 80, TTL: 32,
	}, 3, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	em.orch.Eng.Run(0)
	recs := em.PullPackets()
	paths := telemetry.ComputePaths(recs)
	if len(paths) != 3 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, p := range paths {
		if p.Flow != flow || !p.Delivered || len(p.Hops) != 5 {
			t.Fatalf("bad path: %s", p)
		}
	}
	if _, err := em.InjectPackets("nope", dataplane.PacketMeta{}, 1, time.Millisecond); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestSetLinkFailover(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	n := em.prep.Plan.Network
	tor := n.MustDevice("tor-p0-0")
	// Cut the ToR's first uplink.
	intf := tor.Interfaces[0]
	peer := intf.Peer
	if err := em.SetLink("tor-p0-0", intf.Name, peer.Device.Name, peer.Name, false); err != nil {
		t.Fatal(err)
	}
	em.orch.Eng.Run(0)
	st := em.Devices["tor-p0-0"].PullStates()
	if st.Established != 1 {
		t.Fatalf("established = %d after uplink cut, want 1", st.Established)
	}
	// Restore.
	if err := em.SetLink("tor-p0-0", intf.Name, peer.Device.Name, peer.Name, true); err != nil {
		t.Fatal(err)
	}
	em.orch.Eng.Run(0)
	if em.Devices["tor-p0-0"].PullStates().Established != 2 {
		t.Fatal("session not restored")
	}
	if err := em.SetLink("a", "b", "c", "d", false); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestReloadTwoLayerVsStrawman(t *testing.T) {
	measure := func(strawman bool) time.Duration {
		o, em := fullEmulation(t, Options{Seed: 1, StrawmanReload: strawman})
		start := o.Eng.Now()
		var ready time.Duration
		if err := em.ReloadDevice("leaf-p0-0", nil, func() {
			ready = o.Eng.Now().Sub(start)
		}); err != nil {
			t.Fatal(err)
		}
		o.Eng.Run(0)
		if ready == 0 {
			t.Fatal("reload never completed")
		}
		return ready
	}
	twoLayer := measure(false)
	straw := measure(true)
	if twoLayer != firmware.ReloadDuration {
		t.Fatalf("two-layer reload = %v, want %v", twoLayer, firmware.ReloadDuration)
	}
	if straw < twoLayer+10*time.Second {
		t.Fatalf("strawman reload = %v, should cost >= 15s more than %v (§8.3)", straw, twoLayer)
	}
}

func TestReloadUnknownDevice(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	if err := em.ReloadDevice("nope", nil, nil); err == nil {
		t.Fatal("unknown device accepted")
	}
}

func TestVMFailureRecovery(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 2})
	// Fail the VM hosting tor-p0-0.
	vm := em.vmOf["tor-p0-0"]
	o.Cloud.Fail(vm)
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	// Devices on that VM are back.
	if em.Devices["tor-p0-0"].State() != firmware.DeviceRunning {
		t.Fatalf("device state %v after recovery", em.Devices["tor-p0-0"].State())
	}
	if em.Devices["tor-p0-0"].PullStates().Established != 2 {
		t.Fatal("sessions not re-established after VM recovery")
	}
	recs := em.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %v", recs)
	}
	// §8.3: reset time 10-50 s (excludes the VM reboot itself).
	if recs[0] < time.Second || recs[0] > 60*time.Second {
		t.Fatalf("recovery took %v, expected O(10-50s)", recs[0])
	}
	found := false
	for _, a := range em.Alerts {
		if strings.Contains(a, "recovered") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no recovery alert: %v", em.Alerts)
	}
}

func TestHealthMonitorRestartsCrashed(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 1, HealthInterval: 30 * time.Second})
	em.StartHealthMonitor()
	em.Devices["spine-g0-pl0-0"].Crash("test")
	o.Eng.RunFor(5 * time.Minute)
	if em.Devices["spine-g0-pl0-0"].State() != firmware.DeviceRunning {
		t.Fatal("health monitor did not restart crashed device")
	}
	found := false
	for _, a := range em.Alerts {
		if strings.Contains(a, "crashed") {
			found = true
		}
	}
	if !found {
		t.Fatal("no crash alert")
	}
}

func TestClear(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 1})
	done := false
	em.Clear(func() { done = true })
	o.Eng.Run(0)
	if !done || em.ClearedAt == 0 {
		t.Fatal("clear did not complete")
	}
	// Paper: clear under ~2 minutes.
	if d := em.ClearedAt.Sub(em.MockupStart); d <= 0 {
		t.Fatal("cleared-at not after start")
	}
	for name, d := range em.Devices {
		if d.State() != firmware.DeviceStopped {
			t.Fatalf("%s not stopped after clear", name)
		}
	}
	// Destroy releases the VMs.
	o.Destroy(em.prep)
	if o.Cloud.Running() != 0 {
		t.Fatal("VMs still running after destroy")
	}
}

func TestLoginAndCLIThroughCore(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	s, err := em.Login("border-g0-0")
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Exec("show bgp")
	if err != nil || !strings.Contains(out, "Established") {
		t.Fatalf("show bgp: %q %v", out, err)
	}
	if _, err := em.Login("nope"); err == nil {
		t.Fatal("unknown login accepted")
	}
	names := em.List()
	if len(names) != 16 { // 14 fabric + 2 speakers
		t.Fatalf("List = %d", len(names))
	}
}

func TestPullConfigRendersDialect(t *testing.T) {
	_, em := fullEmulation(t, Options{Seed: 1})
	cfgs := em.PullConfig()
	if len(cfgs) != len(em.Devices) {
		t.Fatal("missing configs")
	}
	if !strings.Contains(cfgs["tor-p0-0"], "hostname tor-p0-0") {
		t.Fatal("render broken")
	}
}

func TestDeterministicMockup(t *testing.T) {
	run := func() Metrics {
		_, em := fullEmulation(t, Options{Seed: 42})
		return em.Metrics()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different metrics: %+v vs %+v", a, b)
	}
}

func TestSpeakersUseNestedVMRuleForVMVendors(t *testing.T) {
	o := New(Options{Seed: 1})
	n := miniNet()
	// Force a VM-image vendor onto the spines.
	for _, d := range n.DevicesByLayer(topo.LayerSpine) {
		d.Vendor = vendors.VMA
	}
	imgs := fastImages()
	vmaImg := imgs["vma"]
	vmaImg.Kind = firmware.VMImage
	imgs["vma"] = vmaImg
	prep, err := o.Prepare(PrepareInput{Network: n, Images: imgs})
	if err != nil {
		t.Fatal(err)
	}
	for _, vm := range prep.groupVMs["vma"] {
		if !vm.SKU.NestedVM {
			t.Fatal("VM-image vendor placed on non-nested SKU")
		}
	}
	for _, vm := range prep.groupVMs["ctnrb"] {
		if vm.SKU.NestedVM {
			t.Fatal("container vendor wastefully placed on nested SKU")
		}
	}
}

func TestVMCountOverride(t *testing.T) {
	o := New(Options{Seed: 1, VMCount: 8})
	prep, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for g, vms := range prep.groupVMs {
		if g == "speaker" {
			continue
		}
		total += len(vms)
	}
	if total < 4 || total > 10 {
		t.Fatalf("VM count override produced %d device VMs", total)
	}
}

func TestCloudCostVisibility(t *testing.T) {
	o, _ := fullEmulation(t, Options{Seed: 1})
	if o.Cloud.HourlyCostUSD() <= 0 {
		t.Fatal("no burn rate")
	}
	if o.Cloud.CostUSD() <= 0 {
		t.Fatal("no accumulated cost")
	}
	_ = cloud.SKUStandard
}

func TestSaveDiffRestore(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 4})
	snap := em.Save()
	if len(snap.FIBs) == 0 || len(snap.Configs) == 0 {
		t.Fatal("empty snapshot")
	}
	// No changes yet: no diffs.
	if d := em.DiffAgainst(snap); len(d) != 0 {
		t.Fatalf("pristine emulation diffs: %v", d)
	}
	// A config change that withdraws a prefix shows up in the diff.
	leaf := "leaf-p0-0"
	cfg := em.Devices[leaf].Config().Clone()
	cfg.RouteMaps["BLOCKALL"] = bgpDenyAll()
	for i := range cfg.Neighbors {
		cfg.Neighbors[i].ExportPolicy = "BLOCKALL"
	}
	if err := em.ReloadDevice(leaf, cfg, nil); err != nil {
		t.Fatal(err)
	}
	o.Eng.Run(0)
	diffs := em.DiffAgainst(snap)
	if len(diffs) == 0 {
		t.Fatal("behaviour change invisible to DiffAgainst")
	}
	// Restore rolls only the changed device back; behaviour returns.
	reloaded, err := em.RestoreConfigs(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded) != 1 || reloaded[0] != leaf {
		t.Fatalf("reloaded = %v, want just %s", reloaded, leaf)
	}
	o.Eng.Run(0)
	if d := em.DiffAgainst(snap); len(d) != 0 {
		t.Fatalf("diffs after restore: %v", d)
	}
}

func bgpDenyAll() *bgp.Policy { return bgp.DenyAll }

func TestHardwareInTheLoop(t *testing.T) {
	// §4.1: replace one spine with a real switch behind the fanout server.
	o := New(Options{Seed: 9})
	hw := "spine-g0-pl0-0"
	prep, err := o.Prepare(PrepareInput{
		Network: miniNet(), Images: fastImages(), Hardware: []string{hw},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The hardware device consumes no VM.
	if _, assigned := prep.assignments[hw]; assigned {
		t.Fatal("hardware device got a VM assignment")
	}
	if prep.Images[hw].Kind != firmware.HardwareDevice {
		t.Fatal("image not converted to hardware")
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	// It participates fully in the control plane.
	if em.Devices[hw].PullStates().Established == 0 {
		t.Fatal("hardware device has no sessions")
	}
	// Its container lives on the remote fanout host.
	if h := em.Devices[hw].Container().Host; h.Name != "hw-fanout" || !h.Remote {
		t.Fatalf("hardware hosted on %s (remote=%v)", h.Name, h.Remote)
	}
	// Reload works (two-layer, even under the strawman option).
	if err := em.ReloadDevice(hw, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if em.Devices[hw].PullStates().Established == 0 {
		t.Fatal("hardware sessions lost after reload")
	}
	// Unknown hardware names are rejected.
	if _, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages(), Hardware: []string{"nope"}}); err == nil {
		t.Fatal("bogus hardware accepted")
	}
}

// TestPropertyRandomTopologyConverges emulates random connected graphs with
// unique ASes and checks the fundamental invariant: every originated prefix
// becomes reachable from every other device.
func TestPropertyRandomTopologyConverges(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := topo.NewNetwork("rand")
		devs := make([]*topo.Device, 0, 10)
		count := 4 + rng.Intn(6)
		for i := 0; i < count; i++ {
			d := n.AddDevice(fmt.Sprintf("r%d", i), topo.LayerToR, uint32(65001+i), "ctnrb")
			d.Originated = append(d.Originated, netpkt.Prefix{Addr: netpkt.IPFromBytes(100, 64, byte(i), 0), Len: 24})
			devs = append(devs, d)
			if i > 0 {
				// Connected: link to a random earlier device...
				n.Connect(d, devs[rng.Intn(i)])
			}
		}
		// ...plus a few random extra edges.
		for e := 0; e < count/2; e++ {
			a, b := devs[rng.Intn(count)], devs[rng.Intn(count)]
			if a != b {
				n.Connect(a, b)
			}
		}
		o := New(Options{Seed: seed})
		prep, err := o.Prepare(PrepareInput{Network: n, Images: fastImages()})
		if err != nil {
			t.Fatal(err)
		}
		em, err := o.Mockup(prep, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := em.RunUntilConverged(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, src := range devs {
			for _, dst := range devs {
				if src == dst {
					continue
				}
				if _, ok := em.Devices[src.Name].FIB().Lookup(dst.Originated[0].Addr + 1); !ok {
					t.Fatalf("seed %d: %s cannot reach %s's prefix", seed, src.Name, dst.Name)
				}
			}
		}
	}
}

// TestFlapStormSettlesToBaseline cuts and restores random links repeatedly;
// after the storm the forwarding state must be semantically identical to
// the pre-storm baseline (ECMP-aware).
func TestFlapStormSettlesToBaseline(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 8})
	baseline := em.Save()
	n := em.Network()
	rng := rand.New(rand.NewSource(8))

	// Only flap fabric links (not speaker uplinks, whose sessions give up
	// after enough churn by design).
	var fabricLinks []*topo.Link
	for _, l := range n.Links {
		if em.prep.Plan.Emulated[l.A.Device.Name] && em.prep.Plan.Emulated[l.B.Device.Name] {
			fabricLinks = append(fabricLinks, l)
		}
	}
	for i := 0; i < 12; i++ {
		l := fabricLinks[rng.Intn(len(fabricLinks))]
		if err := em.SetLink(l.A.Device.Name, l.A.Name, l.B.Device.Name, l.B.Name, false); err != nil {
			t.Fatal(err)
		}
		o.Eng.RunFor(5 * time.Second) // cut may overlap the next one
		if err := em.SetLink(l.A.Device.Name, l.A.Name, l.B.Device.Name, l.B.Name, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if diffs := em.DiffAgainst(baseline); len(diffs) != 0 {
		t.Fatalf("state diverged after flap storm: %v", diffs)
	}
}

func TestMultiCloudEmulation(t *testing.T) {
	// §3.1: the same fabric spread across two clouds still converges; the
	// overlay simply pays wide-area latency between them.
	o, em := fullEmulation(t, Options{Seed: 5, Clouds: 2})
	regions := map[string]bool{}
	for _, d := range em.Devices {
		regions[d.Container().Host.Region] = true
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %v, want devices in 2 clouds", regions)
	}
	for name, st := range em.PullStates() {
		if st.State != firmware.DeviceRunning {
			t.Fatalf("%s not running", name)
		}
	}
	// Convergence still completed (fullEmulation ran to quiescence) and a
	// cross-cloud probe flows.
	dst := em.Network().MustDevice("tor-p1-0").Originated[0]
	em.InjectPackets("tor-p0-0", dataplane.PacketMeta{
		Src: em.Devices["tor-p0-0"].Config().Loopback.Addr, Dst: dst.Addr + 3,
		Proto: netpkt.ProtoUDP, SrcPort: 7, DstPort: 7, TTL: 16,
	}, 1, time.Millisecond)
	o.Eng.Run(0)
	paths := telemetry.ComputePaths(em.PullPackets())
	if len(paths) != 1 || !paths[0].Delivered {
		t.Fatalf("cross-cloud probe failed: %+v", paths)
	}
}

// TestAttachNewDeviceIncrementally rehearses a new-rack deployment: a fresh
// ToR is wired into a running pod, its leaves are reloaded with updated
// configs, and the fabric learns the new prefixes.
func TestAttachNewDeviceIncrementally(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 6})
	n := em.Network()

	// The operator's topology change: a new ToR in pod 0.
	newTor := n.AddDevice("tor-p0-new", topo.LayerToR, topo.ToRAS(999), "ctnrb")
	newTor.Pod = 0
	newTor.Originated = append(newTor.Originated, netpkt.MustParsePrefix("100.64.99.0/24"))
	n.Connect(newTor, n.MustDevice("leaf-p0-0"))
	n.Connect(newTor, n.MustDevice("leaf-p0-1"))

	if err := em.AttachNewDevice("tor-p0-new", fastImages()["ctnrb"], nil, nil); err != nil {
		t.Fatal(err)
	}
	// Reload the leaves with regenerated configs (now including the new
	// neighbor), as production would.
	for _, leaf := range []string{"leaf-p0-0", "leaf-p0-1"} {
		if err := em.ReloadDevice(leaf, config.GenerateDevice(n.MustDevice(leaf)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if em.Devices["tor-p0-new"].State() != firmware.DeviceRunning {
		t.Fatal("new device not running")
	}
	if em.Devices["tor-p0-new"].PullStates().Established != 2 {
		t.Fatalf("new ToR sessions = %d", em.Devices["tor-p0-new"].PullStates().Established)
	}
	// The whole fabric learned the new rack's prefix.
	if _, ok := em.Devices["border-g0-0"].FIB().Lookup(netpkt.MustParseIP("100.64.99.7")); !ok {
		t.Fatal("new prefix not fabric-wide")
	}
	// And the new ToR is manageable like any other.
	if _, err := em.Login("tor-p0-new"); err != nil {
		t.Fatal(err)
	}
	// Double-attach and unknown names are rejected.
	if err := em.AttachNewDevice("tor-p0-new", fastImages()["ctnrb"], nil, nil); err == nil {
		t.Fatal("double attach accepted")
	}
	if err := em.AttachNewDevice("ghost", fastImages()["ctnrb"], nil, nil); err == nil {
		t.Fatal("unknown device accepted")
	}
	_ = o
}

// TestFailureInjectionSoak runs a long emulation with random VM failures
// and the health monitor armed: the emulation must keep recovering and end
// fully converged.
func TestFailureInjectionSoak(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 13, HealthInterval: time.Minute})
	em.StartHealthMonitor()
	o.Cloud.MTBF = 40 * time.Minute
	// Re-arm failure scheduling on the already-running VMs.
	for _, vm := range o.Cloud.VMs() {
		o.Cloud.Fail(vm) // fail once...
		break
	}
	o.Eng.RunFor(4 * time.Hour)
	// After the soak every device is back and fully meshed.
	for name, st := range em.PullStates() {
		if st.State != firmware.DeviceRunning {
			t.Fatalf("%s ended %v", name, st.State)
		}
	}
	if len(em.Recoveries()) == 0 {
		t.Fatal("no recoveries recorded")
	}
	// Forwarding state equals a failure-free baseline (ECMP-aware).
	_, fresh := fullEmulationNamed(t, Options{Seed: 13})
	base := fresh.Save()
	if diffs := em.DiffAgainst(base); len(diffs) != 0 {
		t.Fatalf("soak ended divergent: %v", diffs)
	}
}

// fullEmulationNamed is fullEmulation without t.Helper semantics conflicts.
func fullEmulationNamed(t *testing.T, opts Options) (*Orchestrator, *Emulation) {
	return fullEmulation(t, opts)
}

func TestClearWithNoDevices(t *testing.T) {
	// Clear on an emulation whose VMs host nothing must complete instantly.
	o := New(Options{Seed: 1})
	prep, err := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	// Clear before any VM booted: no containers were ever placed.
	done := false
	em.Clear(func() { done = true })
	if !done {
		t.Fatal("empty clear should complete synchronously")
	}
}

func TestMetricsBeforeNetworkReady(t *testing.T) {
	o := New(Options{Seed: 1})
	prep, _ := o.Prepare(PrepareInput{Network: miniNet(), Images: fastImages()})
	em, _ := o.Mockup(prep, false)
	m := em.Metrics() // nothing has happened yet
	if m.NetworkReady != 0 || m.RouteReady != 0 || m.Mockup != 0 {
		t.Fatalf("pre-run metrics = %+v", m)
	}
}

func TestDeterministicFIBs(t *testing.T) {
	// Same seed, twice: byte-identical forwarding state, not just metrics.
	_, emA := fullEmulation(t, Options{Seed: 77})
	_, emB := fullEmulation(t, Options{Seed: 77})
	fibsA, fibsB := emA.PullFIBs(), emB.PullFIBs()
	if len(fibsA) != len(fibsB) {
		t.Fatal("device sets differ")
	}
	for name := range fibsA {
		if d := rib.Compare(fibsA[name], fibsB[name], rib.Strict); len(d) != 0 {
			t.Fatalf("%s FIBs differ across identical runs: %v", name, d)
		}
	}
}

func TestOVSBackendSlowsNetworkReady(t *testing.T) {
	// §6.2 ablation: OVS plumbing costs ~10x more per bridge/tunnel, so
	// network-ready grows; Linux bridge is the default for a reason.
	_, linuxEm := fullEmulation(t, Options{Seed: 14, Backend: phynet.LinuxBridge})
	_, ovsEm := fullEmulation(t, Options{Seed: 14, Backend: phynet.OVS})
	l, o := linuxEm.Metrics(), ovsEm.Metrics()
	if o.NetworkReady <= l.NetworkReady {
		t.Fatalf("OVS network-ready %v should exceed Linux bridge %v", o.NetworkReady, l.NetworkReady)
	}
}
