package core

import (
	"strings"
	"testing"
	"time"
)

// TestSetLinkErrors exercises every SetLink refusal: unknown devices,
// unknown interfaces, and topology links outside the emulated boundary.
func TestSetLinkErrors(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 11})
	defer o.Destroy(em.prep)

	cases := []struct {
		name                 string
		devA, ifA, devB, ifB string
		wantErr              string
	}{
		{"unknown device A", "tor-p9-9", "et0", "leaf-p0-0", "et2", "unknown device"},
		{"unknown device B", "tor-p0-0", "et0", "leaf-p9-9", "et2", "unknown device"},
		{"unknown interface A", "tor-p0-0", "et99", "leaf-p0-0", "et2", "unknown interface"},
		{"unknown interface B", "tor-p0-0", "et0", "leaf-p0-0", "et99", "unknown interface"},
		{"not a link", "tor-p0-0", "et0", "tor-p1-0", "et0", "no emulated link"},
	}
	for _, tc := range cases {
		err := em.SetLink(tc.devA, tc.ifA, tc.devB, tc.ifB, false)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestSetLinkBoundaryLink verifies SetLink refuses links whose endpoints
// exist in the topology but were excluded from the emulated boundary: no
// virtual link backs them, so there is nothing to flap.
func TestSetLinkBoundaryLink(t *testing.T) {
	o := New(Options{Seed: 3})
	n := miniNet()
	var must []string
	for _, d := range n.DevicesInPod(0) {
		must = append(must, d.Name)
	}
	prep, err := o.Prepare(PrepareInput{Network: n, MustEmulate: must, Images: fastImages()})
	if err != nil {
		t.Fatal(err)
	}
	em, err := o.Mockup(prep, false)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Destroy(prep)
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	// Pod 1's ToR-leaf links are entirely outside the boundary.
	if em.prep.Plan.Emulated["tor-p1-0"] {
		t.Fatal("tor-p1-0 unexpectedly inside the boundary")
	}
	err = em.SetLink("tor-p1-0", "et0", "leaf-p1-0", "et2", false)
	if err == nil || !strings.Contains(err.Error(), "no emulated link") {
		t.Fatalf("boundary-link SetLink err = %v, want 'no emulated link'", err)
	}
}

// TestInjectVMFailureRecoveries checks the on-demand §6.2 failure drill:
// the VM reboots, its devices come back, and the measured recovery latency
// lands in Recoveries().
func TestInjectVMFailureRecoveries(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 5})
	defer o.Destroy(em.prep)

	if _, err := em.InjectVMFailure("no-such-device"); err == nil {
		t.Fatal("InjectVMFailure on unknown device should fail")
	}
	if got := em.VMName("no-such-device"); got != "" {
		t.Fatalf("VMName(unknown) = %q, want empty", got)
	}
	if vm := em.VMName("tor-p0-0"); vm == "" {
		t.Fatal("tor-p0-0 has no hosting VM")
	}
	if len(em.Recoveries()) != 0 {
		t.Fatalf("recoveries before any failure: %v", em.Recoveries())
	}

	if _, err := em.InjectVMFailure("tor-p0-0"); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	recs := em.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %v, want exactly one", recs)
	}
	if recs[0] <= 0 || recs[0] > 10*time.Minute {
		t.Fatalf("recovery latency %v outside sane bounds", recs[0])
	}
	// The device is running again and still routes to a remote prefix.
	if st := em.Devices["tor-p0-0"].State().String(); st != "running" {
		t.Fatalf("tor-p0-0 state after recovery: %s", st)
	}
	p1 := em.Network().MustDevice("tor-p1-0").Originated[0]
	if _, ok := em.Devices["tor-p0-0"].FIB().Lookup(p1.Addr + 1); !ok {
		t.Fatal("recovered ToR lost its routes")
	}
	// A second drill appends, not overwrites.
	if _, err := em.InjectVMFailure("leaf-p1-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := em.RunUntilConverged(0); err != nil {
		t.Fatal(err)
	}
	if got := len(em.Recoveries()); got != 2 {
		t.Fatalf("recoveries after second drill = %d, want 2", got)
	}
}

// TestStartHealthMonitorIdempotent arms the daemon twice and checks only
// one tick chain exists; Clear() disarms it for good.
func TestStartHealthMonitorIdempotent(t *testing.T) {
	o, em := fullEmulation(t, Options{Seed: 9, HealthInterval: 30 * time.Second})
	defer o.Destroy(em.prep)

	em.StartHealthMonitor()
	first := em.healthTick
	if first == nil {
		t.Fatal("health monitor did not arm")
	}
	em.StartHealthMonitor() // double-arm must be a no-op
	if em.healthTick != first {
		t.Fatal("second StartHealthMonitor scheduled a new tick chain")
	}
	// One interval elapses: exactly one re-scheduled tick, not two chains.
	o.Eng.RunFor(45 * time.Second)
	second := em.healthTick
	if second == first {
		t.Fatal("tick chain did not advance after an interval")
	}
	o.Eng.RunFor(100 * time.Millisecond)
	if em.healthTick != second {
		t.Fatal("more than one tick chain is live")
	}

	em.Clear(nil)
	em.StartHealthMonitor()
	if em.healthTick != second {
		t.Fatal("cleared emulation re-armed the health monitor")
	}
}
