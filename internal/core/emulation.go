package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"crystalnet/internal/boundary"
	"crystalnet/internal/cloud"
	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/firmware"
	"crystalnet/internal/mgmt"
	"crystalnet/internal/phynet"
	"crystalnet/internal/rib"
	"crystalnet/internal/sim"
	"crystalnet/internal/speaker"
	"crystalnet/internal/telemetry"
	"crystalnet/internal/topo"
	"crystalnet/internal/traffic"
)

// Per-VM Clear cost model (§8.2: clear latency under 2 minutes).
const (
	clearFixed        = 45 * time.Second
	clearJitter       = 30 * time.Second
	clearWorkPerBox   = 2.0 // core-seconds per container
	strawmanExtra     = 15 * time.Second
	recoverWorkPerBox = 5.0 // core-seconds to reset one device's plumbing
)

// fanoutHost names the on-premise fanout server hosting real-hardware
// attachments (§4.1).
const fanoutHost = "hw-fanout"

// linkKey identifies a topology link by its interface full names.
type linkKey struct{ a, b string }

func keyFor(a, b *topo.Interface) linkKey {
	x, y := a.FullName(), b.FullName()
	if x > y {
		x, y = y, x
	}
	return linkKey{x, y}
}

// Emulation is one mocked-up network.
type Emulation struct {
	orch *Orchestrator
	prep *Preparation

	Fabric     *phynet.Fabric
	Devices    map[string]*firmware.Device
	Speakers   map[string]*speaker.Speaker
	Mgmt       *mgmt.Plane
	Injector   *telemetry.Injector
	containers map[string]*phynet.Container
	vmOf       map[string]*cloud.VM
	vlinks     map[linkKey]*phynet.VirtualLink

	// shards, when non-nil, holds the §10 sharded-execution ensemble: one
	// domain engine per VM plus the orchestrator's master engine. All
	// convergence drives go through it instead of em.orch.Eng.Run.
	shards *sim.ShardSet

	// Timeline (§8.1 metrics).
	MockupStart    sim.Time
	NetworkReadyAt sim.Time
	ClearedAt      sim.Time

	// Health monitoring state (§6.2).
	Alerts      []string
	recoveries  []time.Duration
	healthTick  *sim.Timer
	healthArmed bool
	cleared     bool
	// Failure-domain hardening state (§6.2 recovery state machine).
	recovering    map[*cloud.VM]*vmRecovery
	degraded      []string
	pendingFaults map[*cloud.VM]int
	linkDown      map[linkKey]int // consecutive health ticks each link was seen down
	// phasesTraced latches once the phase/convergence spans are recorded so
	// repeated RunUntilConverged calls (and forks of a traced parent) do
	// not duplicate them.
	phasesTraced bool

	// traffic, when non-nil, is the attached flow-level load matrix
	// (AttachTraffic); it is re-settled at every convergence point and
	// deep-copied across Fork so warm-pool rehearsals carry their load.
	traffic *traffic.Matrix

	vmsPending    int
	buildsPending int

	// cancel, when non-nil, aborts convergence drives between event chunks
	// (SetCancel). The serving path wires a request context's Done channel
	// here so an abandoned rehearsal stops burning CPU mid-convergence.
	cancel <-chan struct{}
}

// Mockup executes the paper's Mockup API on a preparation: PhyNet build,
// management plane, firmware boot and speaker injection, all scheduled on
// the simulation clock. Unsafe boundaries are refused unless force is set.
// Run the engine (em.RunUntilConverged) to drive it to route-ready.
func (o *Orchestrator) Mockup(prep *Preparation, force bool) (*Emulation, error) {
	if prep.SafetyErr != nil && !force {
		return nil, fmt.Errorf("core: refusing unsafe boundary: %w", prep.SafetyErr)
	}
	em := &Emulation{
		orch: o, prep: prep,
		Fabric:        phynet.NewFabric(o.Eng, o.opts.Backend),
		Devices:       map[string]*firmware.Device{},
		Speakers:      map[string]*speaker.Speaker{},
		Mgmt:          mgmt.NewPlane(),
		Injector:      telemetry.NewInjector(o.Eng),
		containers:    map[string]*phynet.Container{},
		vmOf:          map[string]*cloud.VM{},
		vlinks:        map[linkKey]*phynet.VirtualLink{},
		recovering:    map[*cloud.VM]*vmRecovery{},
		pendingFaults: map[*cloud.VM]int{},
		linkDown:      map[linkKey]int{},
		MockupStart:   o.Eng.Now(),
	}
	if o.opts.Shards > 0 {
		// One domain per VM, seeded from the emulation seed: the partition
		// (and hence every domain's RNG stream) depends only on the topology
		// and the seed, never on the worker count.
		em.shards = sim.NewShardSet(o.Eng, o.opts.Seed, len(prep.VMs()), o.opts.Shards)
		em.Fabric.SetShards(em.shards)
	}
	for i, vm := range prep.VMs() {
		h := em.Fabric.AddHost(vm.Name)
		if o.opts.Clouds > 1 {
			h.Region = fmt.Sprintf("cloud-%d", i%o.opts.Clouds)
		}
		if em.shards != nil {
			h.Domain = i
		}
	}
	if len(prep.hardware) > 0 {
		// The on-premise fanout server joining real switches to the overlay
		// across the Internet (§4.1).
		em.Fabric.AddHost(fanoutHost).Remote = true
	}

	// Wait for every VM, then build.
	vms := prep.VMs()
	em.vmsPending = len(vms)
	for _, vm := range vms {
		vm.WhenRunning(func(*cloud.VM) {
			em.vmsPending--
			if em.vmsPending == 0 {
				em.build()
			}
		})
	}
	o.Cloud.OnFailure = em.onVMFailure
	o.Cloud.OnReplace = em.onVMReplaced
	o.Cloud.OnBootAborted = em.onBootAborted
	return em, nil
}

// StartHealthMonitor arms the §6.2 health/auto-recovery daemon with the
// configured interval. Call after initial convergence: the periodic tick
// keeps the event queue alive, so drive the engine with RunFor/RunUntil
// from here on. The call is idempotent — a scenario runner and its caller
// can both arm the daemon without double-scheduling the tick chain — and a
// cleared emulation can never be re-armed.
func (em *Emulation) StartHealthMonitor() {
	if em.orch.opts.HealthInterval <= 0 || em.healthArmed || em.cleared {
		return
	}
	em.healthArmed = true
	em.scheduleHealthCheck()
}

// build creates every PhyNet container, interface and virtual link, charges
// the per-VM setup work, and boots firmware when each VM's setup drains —
// the aggressively batched, parallel-per-VM mockup of §6.2.
func (em *Emulation) build() {
	n := em.prep.Plan.Network
	names := em.allNames()

	for _, name := range names {
		var host *phynet.Host
		if em.prep.hardware[name] {
			host = em.Fabric.Host(fanoutHost)
		} else {
			asg := em.prep.assignments[name]
			vm := em.prep.groupVMs[asg.group][asg.index]
			em.vmOf[name] = vm
			host = em.Fabric.Host(vm.Name)
		}
		c := host.AddContainer(name)
		em.containers[name] = c
		d := n.MustDevice(name)
		for _, intf := range d.Interfaces {
			c.AddIface(intf.Name, intf.MAC)
		}
	}
	// Links between two mocked-up devices.
	for _, l := range n.Links {
		ca, cb := em.containers[l.A.Device.Name], em.containers[l.B.Device.Name]
		if ca == nil || cb == nil {
			continue
		}
		vl := em.Fabric.Connect(ca.Iface(l.A.Name), cb.Iface(l.B.Name))
		em.vlinks[keyFor(l.A, l.B)] = vl
	}

	// Charge each VM its PhyNet setup work; the slowest VM defines
	// network-ready.
	em.buildsPending = 0
	charged := map[*cloud.VM]bool{}
	for _, vm := range em.prep.VMs() {
		if charged[vm] {
			continue
		}
		charged[vm] = true
		host := em.Fabric.Host(vm.Name)
		em.buildsPending++
		vm.Submit(host.SetupCost(), func() {
			em.buildsPending--
			if em.buildsPending == 0 {
				em.networkReady()
			}
		})
	}
}

// networkReady records the milestone and boots all firmware (§8.1: route-
// ready latency starts here).
func (em *Emulation) networkReady() {
	o := em.orch
	em.NetworkReadyAt = o.Eng.Now()
	n := em.prep.Plan.Network

	for _, name := range em.allNames() {
		cfg := em.prep.Configs[name]
		img := em.prep.Images[name]
		var opts []firmware.Option
		hostName := fanoutHost
		if vm := em.vmOf[name]; vm != nil {
			opts = append(opts, firmware.WithVM(vm))
			hostName = vm.Name
		}
		dev := firmware.New(name, img, cfg, em.deviceEng(name), em.Fabric, em.containers[name], opts...)
		em.Devices[name] = dev
		em.Mgmt.Register(dev, n.MustDevice(name).MgmtIP, o.opts.Credential, hostName)
	}
	// Boot emulated devices.
	for _, name := range append(append([]string{}, em.prep.Plan.Internal...), em.prep.Plan.Boundary...) {
		em.Devices[name].Boot(nil)
	}
	// Boot speakers and inject recorded routes.
	for _, name := range em.prep.Plan.Speakers {
		sp, err := speaker.New(em.Devices[name], em.prep.Routes[name])
		if err != nil {
			em.alert("speaker %s: %v", name, err)
			continue
		}
		em.Speakers[name] = sp
		sp.Start(nil)
	}
}

// deviceEng returns the engine a device's events run on: under sharding,
// the domain engine of the device's host VM; otherwise (and for hardware
// devices on the fanout host, plus any VM attached after Mockup, whose
// hosts keep the Domain -1 default) the master engine.
func (em *Emulation) deviceEng(name string) *sim.Engine {
	if em.shards == nil {
		return em.orch.Eng
	}
	if vm := em.vmOf[name]; vm != nil {
		if h := em.Fabric.Host(vm.Name); h != nil {
			return em.shards.Engine(h.Domain)
		}
	}
	return em.orch.Eng
}

func (em *Emulation) allNames() []string {
	names := append(append([]string{}, em.prep.Plan.Internal...), em.prep.Plan.Boundary...)
	names = append(names, em.prep.Plan.Speakers...)
	sort.Strings(names)
	return names
}

// ErrCanceled is returned by a convergence drive whose cancel channel
// (SetCancel) fired. Callers are expected to Teardown the emulation.
var ErrCanceled = errors.New("core: emulation canceled")

// cancelCheckEvents is how many events a cancelable convergence drive
// fires between cancel-channel polls: coarse enough to keep the poll off
// the hot loop, fine enough that an abandoned request stops within
// milliseconds of wall time.
const cancelCheckEvents = 1 << 15

// SetCancel arms cancellation for this emulation's convergence drives:
// once ch fires, RunUntilConverged returns ErrCanceled at the next chunk
// boundary instead of driving to quiescence. The channel does not cross a
// Checkpoint/Fork — each fork arms its own. With a cancel channel armed
// and a recorder attached, a drive records one engine/run span per chunk
// rather than one per drive, so cancelable runs are not trace-byte-
// comparable to batch runs (reports are unaffected: event order, clock
// and RNG draws are identical).
func (em *Emulation) SetCancel(ch <-chan struct{}) { em.cancel = ch }

// RunUntilConverged drives the engine until the event queue drains (the
// emulation is stable) and returns the §8.1 latency metrics.
func (em *Emulation) RunUntilConverged(maxEvents uint64) (Metrics, error) {
	if maxEvents == 0 {
		maxEvents = 500_000_000
	}
	if em.shards != nil {
		if err := em.runSharded(maxEvents); err != nil {
			return Metrics{}, err
		}
	} else if em.cancel == nil {
		if _, err := em.orch.Eng.Run(maxEvents); err != nil {
			return Metrics{}, err
		}
	} else if err := em.runCancelable(maxEvents); err != nil {
		return Metrics{}, err
	}
	em.tracePhases()
	em.recordScaleStats()
	em.settleTraffic()
	return em.Metrics(), nil
}

// runSharded drives the shard ensemble to global quiescence. The shard
// set polls the cancel channel once per virtual instant, which replaces
// the classic path's event-count chunking.
func (em *Emulation) runSharded(maxEvents uint64) error {
	if em.cancel != nil {
		em.shards.Check = func() error {
			select {
			case <-em.cancel:
				return ErrCanceled
			default:
				return nil
			}
		}
	} else {
		em.shards.Check = nil
	}
	_, err := em.shards.Run(maxEvents)
	return err
}

// recordScaleStats closes out a convergence drive with the §10 memory
// work: when the process-wide RIB budget is exceeded, every router's RIB
// storage is compacted. The interning and RIB byte counters themselves are
// process-global accumulators (they span emulations), so they are reported
// by the bench harness rather than recorded into the deterministic trace —
// and for the same reason budget-triggered compaction is advisory: whether
// it fires can depend on what else the process has emulated.
func (em *Emulation) recordScaleStats() {
	if !rib.OverBudget() {
		return
	}
	names := make([]string, 0, len(em.Devices))
	for n := range em.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if r := em.Devices[n].BGP(); r != nil {
			r.Compact()
		}
	}
}

// runCancelable drives the engine in cancelCheckEvents chunks, polling the
// cancel channel between them. Chunking changes nothing observable in the
// emulation: events fire in the same order, the clock and RNG streams are
// untouched, and quiescence is detected identically.
func (em *Emulation) runCancelable(maxEvents uint64) error {
	var fired uint64
	for {
		select {
		case <-em.cancel:
			return ErrCanceled
		default:
		}
		chunk := uint64(cancelCheckEvents)
		if rem := maxEvents - fired; chunk > rem {
			chunk = rem
		}
		n, err := em.orch.Eng.Run(chunk)
		fired += n
		if err == nil {
			return nil // quiescent
		}
		if fired >= maxEvents {
			return fmt.Errorf("sim: event cap %d reached at t=%s (possible livelock)", maxEvents, em.orch.Eng.Now())
		}
	}
}

// Teardown aborts an emulation deterministically, whatever state it is in:
// every pending event — in-flight protocol work, boot callbacks, daemon
// timers — is dropped wholesale, the firmware is stopped and the VMs reset
// via Clear, and the engine drains the teardown events so nothing remains
// scheduled. It is the cleanup path for a rehearsal whose request was
// canceled mid-convergence: after Teardown the emulation holds no live
// timers and can be garbage-collected without leaking simulated daemons.
// Idempotent; a cleared emulation tears down to a no-op.
func (em *Emulation) Teardown() {
	if em.cleared {
		return
	}
	if em.shards != nil {
		em.shards.CancelAll()
		em.Clear(nil)
		em.shards.Check = nil
		em.shards.Run(0)
		return
	}
	em.orch.Eng.CancelAll()
	em.Clear(nil)
	em.orch.Eng.Run(0)
}

// tracePhases records the Mockup phase spans and the per-device
// convergence timeline (the §8.1 / Figures 8–9 measurements) once the
// network has converged. Spans are reconstructed post hoc from the
// timeline the emulation already keeps — the intervals are only knowable
// after quiescence — and latched so repeated convergence calls and forks
// of a traced parent do not re-record them.
func (em *Emulation) tracePhases() {
	rec := em.orch.Eng.Recorder()
	if rec == nil || em.phasesTraced || em.NetworkReadyAt == 0 {
		return
	}
	em.phasesTraced = true
	rec.SpanAt("phase", "network-ready", int64(em.MockupStart), int64(em.NetworkReadyAt))
	var lastRoute sim.Time
	names := make([]string, 0, len(em.Devices))
	for n := range em.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		d := em.Devices[n]
		if d.LastFIBChange == 0 {
			continue
		}
		// Per-device convergence: mockup start until the device's FIB last
		// settled during bring-up.
		rec.SpanAt("converge", n, int64(em.MockupStart), int64(d.LastFIBChange))
		if d.LastFIBChange > lastRoute {
			lastRoute = d.LastFIBChange
		}
	}
	if lastRoute > em.NetworkReadyAt {
		rec.SpanAt("phase", "route-ready", int64(em.NetworkReadyAt), int64(lastRoute))
	}
}

// Metrics reports the emulation timeline so far.
type Metrics struct {
	NetworkReady time.Duration // Mockup start -> all virtual links up
	RouteReady   time.Duration // network-ready -> last FIB change
	Mockup       time.Duration // sum (the paper's mockup latency)
}

// Metrics computes the timeline from device state; call after the engine
// has quiesced.
func (em *Emulation) Metrics() Metrics {
	var lastRoute sim.Time
	for _, d := range em.Devices {
		if d.LastFIBChange > lastRoute {
			lastRoute = d.LastFIBChange
		}
	}
	m := Metrics{}
	if em.NetworkReadyAt > em.MockupStart {
		m.NetworkReady = em.NetworkReadyAt.Sub(em.MockupStart)
	}
	if lastRoute > em.NetworkReadyAt {
		m.RouteReady = lastRoute.Sub(em.NetworkReadyAt)
	}
	m.Mockup = m.NetworkReady + m.RouteReady
	return m
}

// ---- Control APIs (Table 2) ----

// ReloadDevice reboots a device with new software and/or configuration.
// Under the two-layer design it takes firmware.ReloadDuration; the §8.3
// strawman additionally recreates the PhyNet interfaces.
func (em *Emulation) ReloadDevice(name string, newCfg *config.DeviceConfig, onReady func()) error {
	dev := em.Devices[name]
	if dev == nil {
		return fmt.Errorf("core: no device %q", name)
	}
	if !em.orch.opts.StrawmanReload || em.prep.hardware[name] {
		// Real switches always keep their physical ports; the strawman
		// ablation only applies to virtualized devices.
		dev.Reload(newCfg, onReady)
		return nil
	}
	// Strawman: tear down and rebuild interfaces and links too.
	dev.Stop("strawman reload")
	vm := em.vmOf[name]
	host := em.Fabric.Host(vm.Name)
	host.RemoveContainer(name)
	em.orch.Eng.After(firmware.ReloadDuration+strawmanExtra, func() {
		em.rebuildContainer(name)
		if newCfg != nil {
			dev.Reload(newCfg, onReady)
		} else {
			dev.Reload(nil, onReady)
		}
	})
	return nil
}

// rebuildContainer recreates a device's namespace, interfaces and link
// attachments (strawman reload and VM recovery both need it).
func (em *Emulation) rebuildContainer(name string) {
	n := em.prep.Plan.Network
	vm := em.vmOf[name]
	host := em.Fabric.Host(vm.Name)
	host.RemoveContainer(name)
	c := host.AddContainer(name)
	em.containers[name] = c
	d := n.MustDevice(name)
	for _, intf := range d.Interfaces {
		c.AddIface(intf.Name, intf.MAC)
	}
	// Reconnect links to peers that are still up.
	for _, l := range n.Links {
		var local, remote *topo.Interface
		switch {
		case l.A.Device.Name == name:
			local, remote = l.A, l.B
		case l.B.Device.Name == name:
			local, remote = l.B, l.A
		default:
			continue
		}
		rc := em.containers[remote.Device.Name]
		if rc == nil {
			continue
		}
		vl := em.Fabric.Connect(c.Iface(local.Name), em.freshRemoteIface(rc, remote.Name))
		em.vlinks[keyFor(l.A, l.B)] = vl
		// Tell the remote firmware its link flapped.
		if rdev := em.Devices[remote.Device.Name]; rdev != nil {
			rdev.LinkDown(remote.Name)
			rdev.LinkUp(remote.Name)
		}
	}
	em.attachDevice(name)
}

// freshRemoteIface returns the remote interface, replacing it if it is
// still attached to a dead link (RemoveContainer downed it but the object
// remains plugged).
func (em *Emulation) freshRemoteIface(rc *phynet.Container, ifName string) *phynet.VIface {
	ri := rc.Iface(ifName)
	if ri.Link() == nil {
		return ri
	}
	// Replace with a new interface object carrying the same identity: real
	// PhyNet would reuse the veth; our structural model swaps the object.
	mac := ri.MAC
	rc.RemoveIface(ifName)
	return rc.AddIface(ifName, mac)
}

// attachDevice re-binds a device to its (re)built container. Stopped or
// crashed firmware just updates the reference; its next boot attaches the
// frame handler there.
func (em *Emulation) attachDevice(name string) {
	if dev := em.Devices[name]; dev != nil {
		dev.Reattach(em.containers[name])
	}
}

// AttachNewDevice incrementally adds a device to a RUNNING emulation (§3.2:
// "quick incremental changes to the emulation") — the new-rack-deployment
// rehearsal. The device must already exist in the (mutated) topology with
// its links wired to emulated devices. Its container is placed on the
// least-loaded VM of its vendor group (spawning a fresh VM if the vendor is
// new), links are built, and the firmware boots. Neighbors learn the new
// sessions when the operator reloads them with updated configurations, as
// in production.
func (em *Emulation) AttachNewDevice(name string, img firmware.VendorImage, cfg *config.DeviceConfig, onReady func()) error {
	n := em.prep.Plan.Network
	d := n.Device(name)
	if d == nil {
		return fmt.Errorf("core: device %q not in topology", name)
	}
	if em.Devices[name] != nil {
		return fmt.Errorf("core: device %q already emulated", name)
	}
	if cfg == nil {
		cfg = config.GenerateDevice(d)
	}
	cfg.Credential = em.orch.opts.Credential
	if err := cfg.Validate(); err != nil {
		return err
	}

	// Place on the emptiest VM of the vendor group, or spawn one.
	vms := em.prep.groupVMs[img.Name]
	var vm *cloud.VM
	if len(vms) > 0 {
		counts := map[*cloud.VM]int{}
		for _, v := range em.vmOf {
			counts[v]++
		}
		for _, cand := range vms {
			if vm == nil || counts[cand] < counts[vm] {
				vm = cand
			}
		}
	}
	em.prep.Configs[name] = cfg
	em.prep.Images[name] = img
	em.prep.Plan.Emulated[name] = true
	attach := func(vm *cloud.VM) {
		em.vmOf[name] = vm
		host := em.Fabric.Host(vm.Name)
		c := host.AddContainer(name)
		em.containers[name] = c
		for _, intf := range d.Interfaces {
			c.AddIface(intf.Name, intf.MAC)
		}
		for _, l := range n.Links {
			if l.A.Device != d && l.B.Device != d {
				continue
			}
			local, remote := l.A, l.B
			if l.B.Device == d {
				local, remote = l.B, l.A
			}
			rc := em.containers[remote.Device.Name]
			if rc == nil {
				continue // peer not emulated
			}
			if rc.Iface(remote.Name) == nil {
				// The peering is new on the remote side too: the PhyNet
				// layer hot-adds the interface (its firmware picks it up on
				// the operator's reload).
				rc.AddIface(remote.Name, remote.MAC)
			}
			vl := em.Fabric.Connect(c.Iface(local.Name), em.freshRemoteIface(rc, remote.Name))
			em.vlinks[keyFor(l.A, l.B)] = vl
		}
		dev := firmware.New(name, img, cfg, em.deviceEng(name), em.Fabric, c, firmware.WithVM(vm))
		em.Devices[name] = dev
		em.Mgmt.Register(dev, d.MgmtIP, em.orch.opts.Credential, vm.Name)
		vm.Submit(host.SetupCost()/10, func() { dev.Boot(onReady) })
		// Classify: the plan gains the device as internal or boundary.
		isBoundary := false
		for _, nb := range d.Neighbors() {
			if !em.prep.Plan.Emulated[nb.Name] {
				isBoundary = true
			}
		}
		if isBoundary {
			em.prep.Plan.Boundary = append(em.prep.Plan.Boundary, name)
		} else {
			em.prep.Plan.Internal = append(em.prep.Plan.Internal, name)
		}
	}
	if vm != nil {
		attach(vm)
		return nil
	}
	sku := cloud.SKUStandard
	if img.Kind == firmware.VMImage {
		sku = cloud.SKUNested
	}
	fresh := em.orch.Cloud.Provision(1, sku, img.Name, nil)
	em.prep.groupVMs[img.Name] = fresh
	// The waiter receives whichever VM actually came up — under a retry
	// policy that can be a replacement for fresh[0].
	fresh[0].WhenRunning(func(vm *cloud.VM) { attach(vm) })
	return nil
}

// SetLink raises or cuts the link between two topology interfaces and
// notifies both firmwares (the Connect/Disconnect APIs).
func (em *Emulation) SetLink(devA, ifA, devB, ifB string, up bool) error {
	n := em.prep.Plan.Network
	da, db := n.Device(devA), n.Device(devB)
	if da == nil || db == nil {
		return fmt.Errorf("core: unknown device")
	}
	ia, ib := da.Intf(ifA), db.Intf(ifB)
	if ia == nil || ib == nil {
		return fmt.Errorf("core: unknown interface")
	}
	vl := em.vlinks[keyFor(ia, ib)]
	if vl == nil {
		return fmt.Errorf("core: no emulated link %s:%s <-> %s:%s", devA, ifA, devB, ifB)
	}
	em.Fabric.SetLinkState(vl, up)
	for _, end := range []struct {
		dev, ifname string
	}{{devA, ifA}, {devB, ifB}} {
		if d := em.Devices[end.dev]; d != nil {
			if up {
				d.LinkUp(end.ifname)
			} else {
				d.LinkDown(end.ifname)
			}
		}
	}
	return nil
}

// InjectPackets schedules telemetry probes from a device (Table 2).
func (em *Emulation) InjectPackets(from string, meta dataplane.PacketMeta, count int, interval time.Duration) (uint64, error) {
	dev := em.Devices[from]
	if dev == nil {
		return 0, fmt.Errorf("core: no device %q", from)
	}
	return em.Injector.Inject(dev, meta, count, interval), nil
}

// ---- Monitor APIs (Table 2) ----

// PullStates gathers every device's state summary.
func (em *Emulation) PullStates() map[string]firmware.Stats {
	out := map[string]firmware.Stats{}
	for name, d := range em.Devices {
		out[name] = d.PullStates()
	}
	return out
}

// PullFIBs snapshots every emulated device's forwarding table.
func (em *Emulation) PullFIBs() map[string]rib.Snapshot {
	out := map[string]rib.Snapshot{}
	for name, d := range em.Devices {
		if d.FIB() != nil {
			out[name] = d.FIB().Snapshot()
		}
	}
	return out
}

// PullConfig renders every device's active configuration in its vendor
// dialect (for rollback backups).
func (em *Emulation) PullConfig() map[string]string {
	out := map[string]string{}
	for name, d := range em.Devices {
		c := d.Config()
		out[name] = config.Render(c, config.Dialect{Vendor: c.Vendor, Version: c.Version})
	}
	return out
}

// PullPackets drains telemetry captures from all devices.
func (em *Emulation) PullPackets() []firmware.CaptureRecord {
	var devs []*firmware.Device
	for _, name := range em.allNames() {
		devs = append(devs, em.Devices[name])
	}
	return telemetry.Collect(devs)
}

// Login opens a management session to a device (the paper's Login helper /
// IP access path).
func (em *Emulation) Login(name string) (*mgmt.Session, error) {
	return em.Mgmt.DialByName(name, em.orch.opts.Credential)
}

// List returns all emulated device names (the List helper).
func (em *Emulation) List() []string { return em.allNames() }

// State is a saved emulation snapshot (§3.2: "saving and restoring
// emulation state"): rendered configurations plus forwarding tables. It is
// the artifact a validation workflow saves before a risky step and diffs
// against after, and what a rollback restores from.
type State struct {
	// Configs are the rendered per-device configurations.
	Configs map[string]string
	// FIBs are per-device forwarding-table snapshots.
	FIBs map[string]rib.Snapshot
	// TakenAt is the virtual time of the snapshot.
	TakenAt sim.Time
}

// Save captures the emulation's current state.
func (em *Emulation) Save() *State {
	return &State{
		Configs: em.PullConfig(),
		FIBs:    em.PullFIBs(),
		TakenAt: em.orch.Eng.Now(),
	}
}

// DiffAgainst compares the emulation's current forwarding state to a saved
// snapshot with the §9 ECMP-aware comparator, returning differences by
// device. An empty map means the network forwards exactly as it did at the
// snapshot — the "no change in network behaviour" check of §7 Case 2.
func (em *Emulation) DiffAgainst(s *State) map[string][]rib.Diff {
	out := map[string][]rib.Diff{}
	live := map[string]bool{}
	for name, d := range em.Devices {
		if d.FIB() == nil {
			continue
		}
		live[name] = true
		// Merge-diff against the live table: no full FIB pull per check.
		if diffs := d.FIB().DiffAgainst(s.FIBs[name], rib.ECMPAware); len(diffs) > 0 {
			out[name] = diffs
		}
	}
	for n, snap := range s.FIBs {
		if !live[n] {
			if d := rib.Compare(snap, nil, rib.ECMPAware); len(d) > 0 {
				out[n] = d
			}
		}
	}
	return out
}

// RestoreConfigs rolls every device whose rendered configuration differs
// from the snapshot back to it via Reload, returning the devices reloaded.
func (em *Emulation) RestoreConfigs(s *State) ([]string, error) {
	var reloaded []string
	cur := em.PullConfig()
	names := make([]string, 0, len(s.Configs))
	for name := range s.Configs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if cur[name] == s.Configs[name] {
			continue
		}
		dev := em.Devices[name]
		if dev == nil {
			continue
		}
		c := dev.Config()
		parsed, err := config.Parse(s.Configs[name], config.Dialect{Vendor: c.Vendor, Version: c.Version})
		if err != nil {
			return reloaded, fmt.Errorf("core: restore %s: %w", name, err)
		}
		if err := em.ReloadDevice(name, parsed, nil); err != nil {
			return reloaded, err
		}
		reloaded = append(reloaded, name)
	}
	return reloaded, nil
}

// Configs returns the active configurations by device name (shared, not
// copied — callers must not mutate).
func (em *Emulation) Configs() map[string]*config.DeviceConfig { return em.prep.Configs }

// Network returns the emulated topology.
func (em *Emulation) Network() *topo.Network { return em.prep.Plan.Network }

// Plan returns the emulation's boundary plan.
func (em *Emulation) Plan() *boundary.Plan { return em.prep.Plan }

// ---- health monitor and recovery (§6.2) ----

func (em *Emulation) alert(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	em.orch.Eng.Recorder().Event("alert", msg)
	em.Alerts = append(em.Alerts, fmt.Sprintf("[%s] ", em.orch.Eng.Now())+msg)
}

func (em *Emulation) scheduleHealthCheck() {
	// The tick is a daemon event: an armed health monitor must not keep
	// Run/wait-converge from reaching quiescence.
	em.healthTick = em.orch.Eng.Daemon(em.orch.opts.HealthInterval, func() {
		if em.cleared {
			return
		}
		em.healthCheck()
		em.scheduleHealthCheck()
	})
}

// healthCheck verifies device liveness and link state. Crashed firmware is
// alerted and restarted — unless its VM is mid-recovery, which owns the
// restart. Link-down alerts are deduped per link (one alert when it goes
// down, one when it is restored) so Alerts stays bounded under long
// campaigns; both walks are in sorted order so the alert stream is
// deterministic per seed.
func (em *Emulation) healthCheck() {
	names := make([]string, 0, len(em.Devices))
	for n := range em.Devices {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if em.Devices[name].State() != firmware.DeviceCrashed {
			continue
		}
		if vm := em.vmOf[name]; vm != nil && em.recovering[vm] != nil {
			continue // VM recovery will rebuild and reboot it
		}
		em.alert("device %s crashed; restarting", name)
		if sp := em.Speakers[name]; sp != nil {
			// A restarted speaker is empty until its recorded routes are
			// replayed; re-inject once the reload completes.
			em.Devices[name].Reload(nil, sp.Inject)
		} else {
			em.Devices[name].Reload(nil, nil)
		}
	}
	keys := make([]linkKey, 0, len(em.vlinks))
	for k := range em.vlinks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	suppressed := em.orch.Eng.Recorder().Counter("health.alerts_suppressed", "")
	for _, k := range keys {
		if !em.vlinks[k].Up() {
			if em.linkDown[k] == 0 {
				em.alert("link %s <-> %s down", k.a, k.b)
			} else {
				suppressed.Inc()
			}
			em.linkDown[k]++
		} else if n := em.linkDown[k]; n > 0 {
			if n > 1 {
				em.alert("link %s <-> %s restored (down %d checks)", k.a, k.b, n)
			} else {
				em.alert("link %s <-> %s restored", k.a, k.b)
			}
			delete(em.linkDown, k)
		}
	}
}

// vmRecovery tracks one VM's §6.2 auto-recovery episode from first failure
// to all devices rebuilt. Re-failures mid-recovery re-arm the same episode:
// epoch invalidates rebuild jobs already in flight (instead of letting them
// double-decrement pending), and the optional deadline bounds the whole
// episode no matter how many times it re-fails.
type vmRecovery struct {
	affected []string
	start    sim.Time // first failure (episode start)
	reset    sim.Time // latest device-reset phase start (the §8.3 metric)
	epoch    int      // bumped on re-failure/abandon; stale jobs no-op
	pending  int
	refails  int
	deadline *sim.Timer
}

// onVMFailure is the §6.2 auto-recovery path: reboot the VM, then reset its
// devices and links (the 10-50 s phase measured in §8.3). A failure of a VM
// already under recovery — a queued fault firing the instant the VM came
// back, or a random MTBF draw landing mid-episode — re-arms the episode.
func (em *Emulation) onVMFailure(vm *cloud.VM) {
	if em.cleared {
		return
	}
	if rec := em.recovering[vm]; rec != nil {
		rec.epoch++ // in-flight rebuild jobs are now stale
		rec.refails++
		rec.pending = 0
		em.orch.Eng.Recorder().Counter("vm.recovery_refailures", "").Inc()
		em.alert("VM %s failed again during recovery (re-failure %d); re-arming", vm.Name, rec.refails)
		em.crashAffected(rec.affected)
		em.rebootForRecovery(vm, rec)
		return
	}
	em.alert("VM %s failed; rebooting", vm.Name)
	var affected []string
	for name, v := range em.vmOf {
		if v == vm {
			affected = append(affected, name)
		}
	}
	sort.Strings(affected)
	rec := &vmRecovery{affected: affected, start: em.orch.Eng.Now()}
	em.recovering[vm] = rec
	if d := em.orch.opts.RecoveryDeadline; d > 0 {
		rec.deadline = em.orch.Eng.After(d, func() {
			em.abandonRecovery(vm, rec, fmt.Sprintf("recovery deadline %s exceeded", d))
		})
	}
	em.crashAffected(affected)
	em.rebootForRecovery(vm, rec)
}

// crashAffected marks a failed VM's devices dead and drops their links.
// Safe to repeat on re-failure: Crash and SetLinkState(false) are no-ops
// on already-crashed devices and already-down links.
func (em *Emulation) crashAffected(affected []string) {
	for _, name := range affected {
		em.Devices[name].Crash("VM failure")
		em.dropDeviceLinks(name)
	}
}

// rebootForRecovery asks the cloud to bring the episode's VM back and, once
// some VM is Running for it (possibly a replacement), starts the device
// reset phase — unless the episode was re-armed or abandoned meanwhile.
func (em *Emulation) rebootForRecovery(vm *cloud.VM, rec *vmRecovery) {
	epoch := rec.epoch
	em.orch.Cloud.Reboot(vm, func(host *cloud.VM) {
		if em.cleared || rec.epoch != epoch {
			return
		}
		em.beginDeviceReset(host, rec)
	})
}

// beginDeviceReset rebuilds every affected device's container on the
// now-running host. Each job captures the episode epoch: a re-failure or
// abandon bumps it, turning jobs from the superseded wave into no-ops
// instead of double-decrementing pending.
func (em *Emulation) beginDeviceReset(host *cloud.VM, rec *vmRecovery) {
	rec.reset = em.orch.Eng.Now()
	rec.pending = len(rec.affected)
	epoch := rec.epoch
	if rec.pending == 0 {
		em.finishRecovery(host, rec)
		return
	}
	for _, name := range rec.affected {
		name := name
		host.Submit(recoverWorkPerBox, func() {
			if em.cleared || rec.epoch != epoch {
				return
			}
			em.rebuildContainer(name)
			// Speakers must replay their recorded announcements after the
			// reboot, or the boundary routes they stand in for are silently
			// lost until the run ends (Start = Boot + Inject).
			if sp := em.Speakers[name]; sp != nil {
				sp.Start(nil)
			} else {
				em.Devices[name].Boot(nil)
			}
			rec.pending--
			if rec.pending == 0 {
				em.finishRecovery(host, rec)
			}
		})
	}
}

// finishRecovery closes a recovery episode: records the device-reset
// latency (the §8.3 metric — VM boot time is excluded, matching how
// production measures the recovery agent), cancels the deadline, and
// retires the episode.
func (em *Emulation) finishRecovery(host *cloud.VM, rec *vmRecovery) {
	rec.deadline.Cancel()
	delete(em.recovering, host)
	dur := em.orch.Eng.Now().Sub(rec.reset)
	em.recoveries = append(em.recoveries, dur)
	em.orch.Eng.Recorder().Histogram("vm.recovery_seconds", "").Observe(dur.Seconds())
	em.orch.Eng.Recorder().SpanAt("recover", host.Name, int64(rec.reset), int64(em.orch.Eng.Now()))
	if rec.refails > 0 {
		em.alert("VM %s recovered (%d devices reset in %s, after %d re-failures)",
			host.Name, len(rec.affected), dur, rec.refails)
	} else {
		em.alert("VM %s recovered (%d devices reset in %s)",
			host.Name, len(rec.affected), dur)
	}
}

// abandonRecovery gives an episode up — the deadline expired, or the cloud
// reported the boot can never complete (VM deprovisioned mid-reboot,
// replacement abandoned). The affected devices stay crashed; instead of a
// silent deadlock, the episode lands in Degraded() and the alert stream,
// and wait-converge completes.
func (em *Emulation) abandonRecovery(vm *cloud.VM, rec *vmRecovery, why string) {
	if em.cleared || em.recovering[vm] != rec {
		return
	}
	rec.epoch++ // strand any in-flight rebuild jobs
	rec.deadline.Cancel()
	delete(em.recovering, vm)
	em.orch.Eng.Recorder().Counter("vm.recovery_abandoned", "").Inc()
	summary := fmt.Sprintf("VM %s: %s after %s; %d devices degraded: %s",
		vm.Name, why, em.orch.Eng.Now().Sub(rec.start), len(rec.affected), strings.Join(rec.affected, ", "))
	em.degraded = append(em.degraded, summary)
	em.alert("%s", summary)
}

// onVMReplaced re-points placement at a replacement VM: the fabric gains a
// host for it (same region), affected containers and devices move over,
// and the group/recovery/queued-fault bookkeeping is rekeyed so rebuilds
// and pending faults land on the VM that actually runs the workload.
func (em *Emulation) onVMReplaced(old, nv *cloud.VM) {
	if em.cleared {
		return
	}
	em.alert("VM %s gave up booting; replaced by %s", old.Name, nv.Name)
	oldHost := em.Fabric.Host(old.Name)
	h := em.Fabric.AddHost(nv.Name)
	if oldHost != nil {
		h.Region = oldHost.Region
		// The replacement inherits the failed VM's domain so its devices
		// keep draining on the engine that owns their state.
		h.Domain = oldHost.Domain
	}
	var moved []string
	for name, v := range em.vmOf {
		if v == old {
			moved = append(moved, name)
		}
	}
	sort.Strings(moved)
	for _, name := range moved {
		em.vmOf[name] = nv
		if oldHost != nil {
			oldHost.RemoveContainer(name)
		}
		if dev := em.Devices[name]; dev != nil {
			dev.AssignVM(nv)
		}
	}
	// In-place swap keeps prep.assignments' (group, index) addressing valid.
	for g, vms := range em.prep.groupVMs {
		for i, v := range vms {
			if v == old {
				em.prep.groupVMs[g][i] = nv
			}
		}
	}
	if rec := em.recovering[old]; rec != nil {
		delete(em.recovering, old)
		em.recovering[nv] = rec
	}
	if n := em.pendingFaults[old]; n > 0 {
		delete(em.pendingFaults, old)
		em.pendingFaults[nv] += n
	}
}

// onBootAborted handles the cloud's "this boot can never complete" signal:
// a VM deprovisioned during its (re)boot window, or a replacement VM that
// exhausted its own attempt budget. Without it the episode's onReady would
// simply never fire — the silent recovery deadlock this layer removes.
func (em *Emulation) onBootAborted(vm *cloud.VM) {
	if em.cleared {
		return
	}
	if rec := em.recovering[vm]; rec != nil {
		em.abandonRecovery(vm, rec, "VM boot aborted ("+vm.State().String()+")")
	}
}

// dropDeviceLinks cuts every emulated link touching the named device and
// notifies surviving neighbors.
func (em *Emulation) dropDeviceLinks(name string) {
	n := em.prep.Plan.Network
	for _, l := range n.Links {
		var remote *topo.Interface
		switch {
		case l.A.Device.Name == name:
			remote = l.B
		case l.B.Device.Name == name:
			remote = l.A
		default:
			continue
		}
		if vl := em.vlinks[keyFor(l.A, l.B)]; vl != nil {
			em.Fabric.SetLinkState(vl, false)
		}
		if rdev := em.Devices[remote.Device.Name]; rdev != nil {
			rdev.LinkDown(remote.Name)
		}
	}
}

// Recoveries returns measured VM-recovery durations (§8.3).
func (em *Emulation) Recoveries() []time.Duration { return em.recoveries }

// Degraded returns the degraded-mode summaries of recovery episodes that
// were abandoned (deadline exceeded or boot aborted) instead of completing.
func (em *Emulation) Degraded() []string { return em.degraded }

// FaultsPending returns how many injected VM faults are still queued,
// waiting for their VM to reach Running. A nonzero value at the end of a
// run means injected faults never actually happened — the scenario layer
// surfaces (and fails on) it rather than letting them vanish.
func (em *Emulation) FaultsPending() int {
	n := 0
	for _, c := range em.pendingFaults {
		n += c
	}
	return n
}

// FaultOutcome reports what InjectVMFailure did with a fault.
type FaultOutcome int

// Fault outcomes.
const (
	// FaultFired: the VM was Running and failed on the spot.
	FaultFired FaultOutcome = iota
	// FaultQueued: the VM was Provisioning or already Failed; the fault is
	// armed to fire on its next transition to Running (tracked by
	// FaultsPending until then).
	FaultQueued
)

// String names the outcome.
func (o FaultOutcome) String() string {
	if o == FaultQueued {
		return "queued"
	}
	return "fired"
}

// InjectVMFailure fails the VM hosting the named device — the §6.2 failure
// drill a scenario triggers on demand instead of waiting for the cloud's
// random failure process. Recovery is automatic (onVMFailure) and its
// latency lands in Recoveries().
//
// A fault is never silently dropped: if the VM is Running it fires now; if
// it is Provisioning or Failed (for example mid-recovery from an earlier
// fault) it is queued to fire the moment the VM — or its replacement — is
// Running again; if it is deprovisioned the fault is impossible and a
// distinct error says so.
func (em *Emulation) InjectVMFailure(device string) (FaultOutcome, error) {
	vm := em.vmOf[device]
	if vm == nil {
		return 0, fmt.Errorf("core: no VM hosts device %q", device)
	}
	if em.orch.Cloud.Fail(vm) {
		em.orch.Eng.Recorder().Counter("vm.faults_fired", "").Inc()
		return FaultFired, nil
	}
	if vm.State() == cloud.VMStopped {
		return 0, fmt.Errorf("core: VM %s hosting %q is deprovisioned; fault cannot fire", vm.Name, device)
	}
	em.queueFault(vm)
	em.orch.Eng.Recorder().Counter("vm.faults_queued", "").Inc()
	return FaultQueued, nil
}

// queueFault arms a fault to fire when vm next reaches Running. The waiter
// travels with the workload: if the boot is satisfied by a replacement VM,
// the fault fires on the replacement (and the pending count, rekeyed by
// onVMReplaced, is decremented on whichever VM delivered it).
func (em *Emulation) queueFault(vm *cloud.VM) {
	em.pendingFaults[vm]++
	vm.WhenRunning(func(running *cloud.VM) {
		if em.pendingFaults[running] > 0 {
			em.pendingFaults[running]--
			if em.pendingFaults[running] == 0 {
				delete(em.pendingFaults, running)
			}
		}
		if em.cleared {
			return
		}
		em.orch.Cloud.Fail(running)
	})
}

// VMName reports which VM hosts the named device ("" for hardware devices
// and unknown names) — scenario reports use it to label failure drills.
func (em *Emulation) VMName(device string) string {
	if vm := em.vmOf[device]; vm != nil {
		return vm.Name
	}
	return ""
}

// Clear stops all firmware and resets the VMs to a clean state (Table 2).
// onDone fires when every VM has finished clearing; ClearedAt records the
// completion time.
func (em *Emulation) Clear(onDone func()) {
	clearStart := em.orch.Eng.Now()
	// Faults still queued at teardown will never fire: say so loudly
	// (lost-fault detection) before marking the emulation cleared.
	if n := em.FaultsPending(); n > 0 {
		em.orch.Eng.Recorder().Counter("vm.faults_lost", "").Add(uint64(n))
		em.alert("clearing with %d queued VM fault(s) that never fired", n)
	}
	em.cleared = true
	em.healthArmed = false
	if em.healthTick != nil {
		em.healthTick.Cancel()
	}
	// Cancel recovery deadlines eagerly so teardown leaves no stray timers
	// (checkpointing after Clear requires a fully drained queue). Cancel
	// consumes no randomness, so map order is immaterial.
	for _, rec := range em.recovering {
		rec.deadline.Cancel()
	}
	// Iterate in sorted order everywhere below: teardown consumes engine RNG
	// (the per-VM clear jitter), and drawing it in map-iteration order would
	// make Clear latency differ between identically-seeded runs.
	devNames := make([]string, 0, len(em.Devices))
	for n := range em.Devices {
		devNames = append(devNames, n)
	}
	sort.Strings(devNames)
	for _, n := range devNames {
		em.Devices[n].Stop("clear")
	}
	boxNames := make([]string, 0, len(em.vmOf))
	for n := range em.vmOf {
		boxNames = append(boxNames, n)
	}
	sort.Strings(boxNames)
	byVM := map[*cloud.VM]int{}
	var vmOrder []*cloud.VM
	for _, name := range boxNames {
		vm := em.vmOf[name]
		if byVM[vm] == 0 {
			vmOrder = append(vmOrder, vm)
		}
		byVM[vm]++
		host := em.Fabric.Host(vm.Name)
		host.RemoveContainer(name)
	}
	pending := 0
	for _, vm := range vmOrder {
		boxes := byVM[vm]
		pending++
		vm := vm
		fixed := em.orch.Eng.Jitter(clearFixed, clearJitter)
		work := clearWorkPerBox * float64(boxes)
		em.orch.Eng.After(fixed, func() {
			vm.Submit(work, func() {
				pending--
				if pending == 0 {
					em.ClearedAt = em.orch.Eng.Now()
					em.orch.Eng.Recorder().SpanAt("phase", "clear", int64(clearStart), int64(em.ClearedAt))
					if onDone != nil {
						onDone()
					}
				}
			})
		})
	}
	if pending == 0 {
		em.ClearedAt = em.orch.Eng.Now()
		em.orch.Eng.Recorder().SpanAt("phase", "clear", int64(clearStart), int64(em.ClearedAt))
		if onDone != nil {
			onDone()
		}
	}
}
