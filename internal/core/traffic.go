package core

import (
	"crystalnet/internal/config"
	"crystalnet/internal/dataplane"
	"crystalnet/internal/traffic"
)

// AttachTraffic builds a traffic matrix from the spec against the
// emulation's current configurations and settles it once at the current
// state. From then on every convergence drive re-settles it, so the
// matrix's accounting samples user impact at each convergence point.
// Attaching replaces any previous matrix.
func (em *Emulation) AttachTraffic(spec traffic.Spec) error {
	m, err := traffic.NewMatrix(spec, em.liveConfigs())
	if err != nil {
		return err
	}
	em.traffic = m
	em.settleTraffic()
	return nil
}

// Traffic returns the attached traffic matrix (nil when none is attached).
func (em *Emulation) Traffic() *traffic.Matrix { return em.traffic }

// SettleTraffic forces one settle of the attached matrix at the current
// state. Convergence drives settle automatically; this hook exists for the
// traffic benchmark and crystalctl, which measure settles in isolation.
func (em *Emulation) SettleTraffic() { em.settleTraffic() }

// settleTraffic re-walks the attached matrix against the live FIBs. It
// runs outside the event queue — no events scheduled, no randomness drawn
// — so it never perturbs convergence order and the emulation stays
// checkpointable right after.
func (em *Emulation) settleTraffic() {
	if em.traffic == nil || em.cleared {
		return
	}
	em.traffic.Settle(traffic.View{
		Now: em.orch.Eng.Now(),
		Rec: em.orch.Eng.Recorder(),
		Forwarder: func(name string) *dataplane.Forwarder {
			if d := em.Devices[name]; d != nil {
				return d.Forwarder()
			}
			return nil
		},
		Configs: em.liveConfigs(),
	})
}

// liveConfigs returns the active per-device configurations. The prepared
// snapshot goes stale after reload-config and attach-device, so traffic
// walks (like the scenario layer's reachability sweeps) resolve against
// what each device is running now.
func (em *Emulation) liveConfigs() map[string]*config.DeviceConfig {
	cfgs := make(map[string]*config.DeviceConfig, len(em.Devices))
	for name, c := range em.prep.Configs {
		cfgs[name] = c
	}
	for name, d := range em.Devices {
		if c := d.Config(); c != nil {
			cfgs[name] = c
		}
	}
	return cfgs
}
