package vendors

import (
	"strings"
	"testing"

	"crystalnet/internal/bgp"
	"crystalnet/internal/firmware"
)

func TestCatalogCompleteness(t *testing.T) {
	keys := List()
	want := []string{
		"ctnra:1.0", "ctnra:2.0",
		"ctnrb:1.0", "ctnrb:dev-default-route", "ctnrb:dev-arp-trap", "ctnrb:dev-flap-crash",
		"vma:3.1", "vma:3.2",
		"vmb:7.2", "vmb:7.2-small-fib",
		"speaker:3.4.17",
	}
	have := map[string]bool{}
	for _, k := range keys {
		have[k] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("missing image %s", w)
		}
	}
}

func TestGetAndDefault(t *testing.T) {
	img, err := Get(CTNRA, "2.0")
	if err != nil {
		t.Fatal(err)
	}
	if !img.Bugs.ARPRefreshBroken {
		t.Fatal("ctnra 2.0 must carry the ARP-refresh bug")
	}
	if _, err := Get("nope", "1"); err == nil {
		t.Fatal("unknown image accepted")
	}
	def, err := Default(CTNRA)
	if err != nil || def.Version != "1.0" {
		t.Fatalf("default ctnra = %v, %v", def, err)
	}
	if _, err := Default("nope"); err == nil {
		t.Fatal("unknown vendor accepted")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustGet of unknown image did not panic")
			}
		}()
		MustGet("nope", "1")
	}()
}

func TestVendorDivergences(t *testing.T) {
	// The Figure 1 split: CTNR-A inherits a contributor path, VM-A bare.
	a := MustGet(CTNRA, "1.0")
	c := MustGet(VMA, "3.1")
	if a.AggregationMode != bgp.AggInheritSelected || c.AggregationMode != bgp.AggBarePath {
		t.Fatal("aggregation divergence lost")
	}
	// VM-packaged vendors need nested virtualization; containers do not.
	if !RequiresNestedVM(VMA) || !RequiresNestedVM(VMB) {
		t.Fatal("VM vendors must require nested virtualization")
	}
	if RequiresNestedVM(CTNRA) || RequiresNestedVM(CTNRB) {
		t.Fatal("container vendors must not require nested virtualization")
	}
	if RequiresNestedVM("nope") {
		t.Fatal("unknown vendor cannot require nested virt")
	}
	// VM images boot slower than container images (§8.2: boot speed of
	// vendor-provided software dominates Mockup).
	if c.BootFixed <= a.BootFixed {
		t.Fatal("VM image should boot slower")
	}
	// The known-buggy releases carry exactly their documented defect.
	if !MustGet(VMA, "3.2").Bugs.StopAnnouncingOddPrefixes {
		t.Fatal("vma 3.2 bug missing")
	}
	if !MustGet(VMB, "7.2").Bugs.SilentFIBOverflow || MustGet(VMB, "7.2").FIBCapacity == 0 {
		t.Fatal("vmb FIB profile missing")
	}
	for _, v := range []struct {
		ver   string
		check func(firmware.Bugs) bool
	}{
		{"dev-default-route", func(b firmware.Bugs) bool { return b.DefaultRouteBroken }},
		{"dev-arp-trap", func(b firmware.Bugs) bool { return b.ARPTrapBroken }},
		{"dev-flap-crash", func(b firmware.Bugs) bool { return b.CrashAfterFlaps > 0 }},
	} {
		if !v.check(MustGet(CTNRB, v.ver).Bugs) {
			t.Fatalf("ctnrb %s bug missing", v.ver)
		}
	}
	// The production releases carry none of the injectable bugs.
	for _, name := range []string{CTNRA, CTNRB, VMA} {
		img, _ := Default(name)
		if img.Bugs != (firmware.Bugs{}) {
			t.Fatalf("%s default image carries bugs: %+v", name, img.Bugs)
		}
	}
}

func TestSpeakerImage(t *testing.T) {
	sp := MustGet(Speaker, "3.4.17")
	if !sp.StaticSpeaker {
		t.Fatal("speaker image must be static")
	}
	// Speakers are lightweight (§8.4: 50 per VM); their boot must be far
	// quicker than any vendor image.
	for _, k := range List() {
		if strings.HasPrefix(k, "speaker") {
			continue
		}
		parts := strings.SplitN(k, ":", 2)
		img := MustGet(parts[0], parts[1])
		if sp.BootFixed >= img.BootFixed {
			t.Fatalf("speaker boot %v not lighter than %s %v", sp.BootFixed, k, img.BootFixed)
		}
	}
}

func TestCTNRBRunsSoftASIC(t *testing.T) {
	// §6.2: the open-source OS ships with the P4 behavioural-model ASIC.
	for _, v := range []string{"1.0", "dev-default-route", "dev-arp-trap", "dev-flap-crash"} {
		if !MustGet(CTNRB, v).SoftASIC {
			t.Fatalf("ctnrb %s missing the soft ASIC", v)
		}
	}
	// Closed-vendor images are fixed-function.
	for _, name := range []string{CTNRA, VMA, VMB} {
		img, _ := Default(name)
		if img.SoftASIC {
			t.Fatalf("%s should not run the P4 soft ASIC", name)
		}
	}
}
