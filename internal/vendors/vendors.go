// Package vendors defines the device software images available to the
// emulator — the synthetic equivalents of the paper's four sources of
// switch software (§4.1): two container-packaged vendor OSes (CTNR-A and
// the open-source CTNR-B), two VM-packaged vendor OSes (VM-A and VM-B),
// plus the boundary speaker image (§5.1) and a fanout image for real-
// hardware attachment.
//
// Behavioural divergences between images are deliberate and documented —
// they reproduce the incident classes of Table 1 and §7. Versioned variants
// carry the known-buggy releases so validation scenarios can boot them.
//
// DESIGN.md §1 (substitutions) and §4 (vendor divergences) document the
// image set.
package vendors

import (
	"fmt"
	"time"

	"crystalnet/internal/bgp"
	"crystalnet/internal/firmware"
)

// Image names.
const (
	CTNRA   = "ctnra"   // container vendor A: aggregation inherits a path
	CTNRB   = "ctnrb"   // container open-source OS (the §7 Case-2 subject)
	VMA     = "vma"     // VM vendor A: bare-path aggregation (Figure 1's R7)
	VMB     = "vmb"     // VM vendor B: small FIB, silent overflow
	Speaker = "speaker" // boundary speaker (ExaBGP equivalent)
)

// catalog maps image:version to its definition.
var catalog = map[string]firmware.VendorImage{}

func register(img firmware.VendorImage) {
	catalog[img.Name+":"+img.Version] = img
}

func init() {
	// CTNR-A — container image, fast boot. Its aggregation implementation
	// selects a contributor path (Figure 1's R6 behaviour).
	register(firmware.VendorImage{
		Name: CTNRA, Version: "1.0", Kind: firmware.ContainerImage,
		BootFixed: 3 * time.Minute, BootJitter: 2 * time.Minute, BootWork: 60,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
	})
	// CTNR-A 2.0 — the release with the undocumented ACL dialect change
	// (the config package's parser reproduces the drift) and a broken ARP
	// refresh after config reloads (§2).
	register(firmware.VendorImage{
		Name: CTNRA, Version: "2.0", Kind: firmware.ContainerImage,
		BootFixed: 3 * time.Minute, BootJitter: 2 * time.Minute, BootWork: 60,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
		Bugs:            firmware.Bugs{ARPRefreshBroken: true},
	})
	// CTNR-B — the open-source OS under in-house development (§7 Case 2).
	register(firmware.VendorImage{
		Name: CTNRB, Version: "1.0", Kind: firmware.ContainerImage, SoftASIC: true,
		BootFixed: 2 * time.Minute, BootJitter: time.Minute, BootWork: 40,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
	})
	// CTNR-B dev builds with the three §7 Case-2 bugs, individually
	// switchable for the validation pipeline.
	register(firmware.VendorImage{
		Name: CTNRB, Version: "dev-default-route", Kind: firmware.ContainerImage, SoftASIC: true,
		BootFixed: 2 * time.Minute, BootJitter: time.Minute, BootWork: 40,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
		Bugs:            firmware.Bugs{DefaultRouteBroken: true},
	})
	register(firmware.VendorImage{
		Name: CTNRB, Version: "dev-arp-trap", Kind: firmware.ContainerImage, SoftASIC: true,
		BootFixed: 2 * time.Minute, BootJitter: time.Minute, BootWork: 40,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
		Bugs:            firmware.Bugs{ARPTrapBroken: true},
	})
	register(firmware.VendorImage{
		Name: CTNRB, Version: "dev-flap-crash", Kind: firmware.ContainerImage, SoftASIC: true,
		BootFixed: 2 * time.Minute, BootJitter: time.Minute, BootWork: 40,
		MsgWork: 0.0003, RouteWork: 0.0015,
		AggregationMode: bgp.AggInheritSelected,
		Bugs:            firmware.Bugs{CrashAfterFlaps: 3},
	})
	// VM-A — VM image (needs nested virtualization), slower boot, more
	// memory. Aggregates with a bare AS path (Figure 1's R7 behaviour).
	register(firmware.VendorImage{
		Name: VMA, Version: "3.1", Kind: firmware.VMImage,
		BootFixed: 6 * time.Minute, BootJitter: 3 * time.Minute, BootWork: 120,
		MsgWork: 0.0005, RouteWork: 0.002,
		AggregationMode: bgp.AggBarePath,
	})
	// VM-A 3.2 — the release that "erroneously stopped announcing certain
	// IP prefixes" (§2).
	register(firmware.VendorImage{
		Name: VMA, Version: "3.2", Kind: firmware.VMImage,
		BootFixed: 6 * time.Minute, BootJitter: 3 * time.Minute, BootWork: 120,
		MsgWork: 0.0005, RouteWork: 0.002,
		AggregationMode: bgp.AggBarePath,
		Bugs:            firmware.Bugs{StopAnnouncingOddPrefixes: true},
	})
	// VM-B — VM image with a small hardware FIB whose overflow is silent
	// (the §2 load-balancer black-hole substrate).
	register(firmware.VendorImage{
		Name: VMB, Version: "7.2", Kind: firmware.VMImage,
		BootFixed: 6 * time.Minute, BootJitter: 3 * time.Minute, BootWork: 120,
		MsgWork: 0.0005, RouteWork: 0.002,
		AggregationMode: bgp.AggBarePath,
		FIBCapacity:     150_000,
		Bugs:            firmware.Bugs{SilentFIBOverflow: true},
	})
	// VM-B "compact" — a deliberately tiny-FIB variant for reproducing the
	// §2 incident at example scale.
	register(firmware.VendorImage{
		Name: VMB, Version: "7.2-small-fib", Kind: firmware.VMImage,
		BootFixed: 6 * time.Minute, BootJitter: 3 * time.Minute, BootWork: 120,
		MsgWork: 0.0005, RouteWork: 0.002,
		AggregationMode: bgp.AggBarePath,
		FIBCapacity:     64,
		Bugs:            firmware.Bugs{SilentFIBOverflow: true},
	})
	// Speaker — the static boundary speaker: trivial boot, negligible cost
	// (§8.4: one VM hosts at least 50 of them).
	register(firmware.VendorImage{
		Name: Speaker, Version: "3.4.17", Kind: firmware.ContainerImage,
		BootFixed: 5 * time.Second, BootJitter: 5 * time.Second, BootWork: 1,
		MsgWork: 0.0001, RouteWork: 0.0005,
		StaticSpeaker: true,
	})
}

// Get returns the image for name:version. It returns an error for unknown
// images — operators must pin exact firmware versions.
func Get(name, version string) (firmware.VendorImage, error) {
	img, ok := catalog[name+":"+version]
	if !ok {
		return firmware.VendorImage{}, fmt.Errorf("vendors: no image %s:%s", name, version)
	}
	return img, nil
}

// MustGet is Get for known-constant image references.
func MustGet(name, version string) firmware.VendorImage {
	img, err := Get(name, version)
	if err != nil {
		panic(err)
	}
	return img
}

// Default returns the production (non-buggy) image of a vendor.
func Default(name string) (firmware.VendorImage, error) {
	switch name {
	case CTNRA:
		return Get(CTNRA, "1.0")
	case CTNRB:
		return Get(CTNRB, "1.0")
	case VMA:
		return Get(VMA, "3.1")
	case VMB:
		return Get(VMB, "7.2")
	case Speaker:
		return Get(Speaker, "3.4.17")
	}
	return firmware.VendorImage{}, fmt.Errorf("vendors: unknown vendor %q", name)
}

// List returns all registered image keys ("name:version").
func List() []string {
	out := make([]string, 0, len(catalog))
	for k := range catalog {
		out = append(out, k)
	}
	return out
}

// RequiresNestedVM reports whether the vendor ships VM images (§4.1 —
// those need nested-virtualization SKUs or bare metal).
func RequiresNestedVM(name string) bool {
	img, err := Default(name)
	return err == nil && img.Kind == firmware.VMImage
}
