package dataplane

import (
	"reflect"
	"testing"

	"crystalnet/internal/netpkt"
	"crystalnet/internal/rib"
)

func ecmpHops() []rib.NextHop {
	return []rib.NextHop{
		{IP: ip("10.128.0.1"), Interface: "et0"},
		{IP: ip("10.128.0.3"), Interface: "et1"},
		{IP: ip("10.128.0.5"), Interface: "et2"},
		{IP: ip("10.128.0.7"), Interface: "et3"},
	}
}

func TestSpreadFlowsConserves(t *testing.T) {
	nhs := ecmpHops()
	for _, n := range []uint64{0, 1, 3, 4, 5, 1000, 1001, 1 << 40} {
		counts := SpreadFlows(9, nhs, n)
		if len(counts) != len(nhs) {
			t.Fatalf("n=%d: %d buckets, want %d", n, len(counts), len(nhs))
		}
		var sum uint64
		for _, c := range counts {
			sum += c
			if c > n/uint64(len(nhs))+1 {
				t.Fatalf("n=%d: bucket %d overloaded: %v", n, c, counts)
			}
		}
		if sum != n {
			t.Fatalf("n=%d: flows not conserved: %v sums to %d", n, counts, sum)
		}
	}
}

func TestSpreadFlowsStableUnderHopSharingAblation(t *testing.T) {
	// The spread is keyed on the group's *content* hash (rib.HashHops), so
	// interned and private hop-group layouts must split identically — the
	// §10 ablation cannot move traffic.
	nhs := ecmpHops()
	want := SpreadFlows(1234, nhs, 10)
	rib.SetHopSharing(false)
	defer rib.SetHopSharing(true)
	// A fresh, non-interned copy of the same hops.
	private := append([]rib.NextHop(nil), nhs...)
	if got := SpreadFlows(1234, private, 10); !reflect.DeepEqual(got, want) {
		t.Fatalf("spread moved under hop-sharing ablation: %v != %v", got, want)
	}
}

func TestSpreadFlowsReanchorsOnGroupChange(t *testing.T) {
	// Same key, different hop-group content: at least some key re-anchors
	// its remainder rotation — flows visibly re-spread after a FIB
	// reprogram, as real ECMP rehashing does.
	orig := ecmpHops()
	repro := ecmpHops()
	repro[3] = rib.NextHop{IP: ip("10.128.0.9"), Interface: "et4"}
	moved := false
	for key := uint64(0); key < 32; key++ {
		if !reflect.DeepEqual(SpreadFlows(key, orig, 5), SpreadFlows(key, repro, 5)) {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no key re-anchored its spread after the hop group changed")
	}
}

func TestForwardBatchSpreadsAcrossHops(t *testing.T) {
	f := newFwd(t)
	dec, shares := f.ForwardBatch("et9", meta("100.65.0.10"), 1000, 7)
	if dec.Verdict != VerdictForward {
		t.Fatalf("verdict = %v", dec.Verdict)
	}
	if len(shares) != 4 {
		t.Fatalf("%d shares, want 4 (all ECMP hops loaded)", len(shares))
	}
	var sum uint64
	for _, s := range shares {
		if s.Flows != 250 {
			t.Fatalf("uneven split of 1000 over 4: %+v", shares)
		}
		sum += s.Flows
	}
	if sum != 1000 {
		t.Fatalf("flows not conserved: %d", sum)
	}
}

func TestForwardBatchVerdictsMatchForward(t *testing.T) {
	f := newFwd(t)
	for _, tc := range []struct {
		name string
		m    *PacketMeta
	}{
		{"local", meta("10.0.0.1")},
		{"no-route", meta("203.0.113.9")},
		{"forward", meta("100.64.0.55")},
	} {
		want := f.Forward("et9", tc.m)
		got, _ := f.ForwardBatch("et9", tc.m, 10, 1)
		if got.Verdict != want.Verdict {
			t.Fatalf("%s: batch verdict %v != single %v", tc.name, got.Verdict, want.Verdict)
		}
	}
	expired := meta("100.64.0.55")
	expired.TTL = 1
	if got, _ := f.ForwardBatch("et9", expired, 10, 1); got.Verdict != VerdictTTLExpired {
		t.Fatalf("ttl: %v", got.Verdict)
	}
}

func TestForwardBatchEgressACLDeniesPerShare(t *testing.T) {
	// A deny on one ECMP branch must lose only that branch's flows.
	f := newFwd(t)
	src := pfx("192.0.2.0/24")
	f.SetOutACL("et1", &ACL{Name: "CUT", Rules: []ACLRule{{Action: ACLDeny, Src: &src}}, DefaultAction: ACLPermit})
	dec, shares := f.ForwardBatch("", meta("100.65.0.10"), 400, 7)
	if dec.Verdict != VerdictForward {
		t.Fatalf("verdict = %v", dec.Verdict)
	}
	denied := 0
	for _, s := range shares {
		if s.Denied {
			denied++
			if s.Hop.Interface != "et1" || s.ACL != "CUT" {
				t.Fatalf("wrong share denied: %+v", s)
			}
		}
	}
	if denied != 1 {
		t.Fatalf("%d shares denied, want exactly 1", denied)
	}
}

func TestForwardBatchIngressACLDropsWholeAggregate(t *testing.T) {
	f := newFwd(t)
	src := pfx("192.0.2.0/24")
	f.SetInACL("et9", &ACL{Name: "EDGE", Rules: []ACLRule{{Action: ACLDeny, Src: &src}}, DefaultAction: ACLPermit})
	dec, shares := f.ForwardBatch("et9", meta("100.65.0.10"), 400, 7)
	if dec.Verdict != VerdictACLDenied || dec.ACL != "EDGE" || shares != nil {
		t.Fatalf("decision = %+v shares = %v", dec, shares)
	}
}

// guard against unused import when test table shrinks
var _ = netpkt.ProtoTCP
